package oostream

import (
	"fmt"
	"io"

	"oostream/internal/engine"
	"oostream/internal/obsv"
	"oostream/internal/plan"
	"oostream/internal/queryset"
	"oostream/internal/recovery"
	"oostream/internal/runtime"
)

// QueryStats is one registered query's dispatch accounting inside a
// QuerySet: how many released events the type index offered to its engine
// and how many the prefix gate skipped.
type QueryStats = queryset.QueryStats

// QuerySetConfig configures a QuerySet — the multi-query engine that
// shares admission, reordering, and purge scheduling across every
// registered query. A single-query Engine (NewEngine) is the degenerate
// case: a QuerySet with one registered query computes the same results,
// paying a small dispatch overhead for the ability to add more.
type QuerySetConfig struct {
	// Strategy selects the per-query inner engine; default StrategyNative.
	// Inner engines run at K=0 — the shared reorder buffer carries all
	// disorder tolerance — so StrategyInOrder is exact under the bound
	// inside a QuerySet (equivalent to a single-query StrategyKSlack
	// engine), unlike the standalone in-order engine.
	Strategy Strategy
	// K is the shared disorder bound (slack) in logical milliseconds,
	// paid once at the shared buffer instead of once per query.
	K Time
	// AdvanceEvery is the watermark fan-out cadence in released events
	// (0 = default 256): every engine is advanced to the shared watermark
	// at this cadence, bounding negation-sealing latency and purge
	// staleness. It never affects final output.
	AdvanceEvery int
	// Provenance enables lineage records on every registered query's
	// matches, exactly as Config.Provenance does for a single engine.
	Provenance bool
	// Observer, when non-nil, publishes one "queryset" series with the
	// shared-admission counters plus one "qs/<id>" series per registered
	// query (the existing per-engine identity scheme).
	Observer *Observer
	// Trace, when non-nil, receives per-query lifecycle trace events,
	// tagged with the "qs/<id>" engine identity.
	Trace TraceHook
	// Latency configures sampled wall-clock latency attribution, exactly
	// as Config.Latency does for a single engine. The Set stamps
	// shared-buffer residency and construction on sampled spans, and —
	// with Observer set — mirrors each query's construct segment into its
	// "qs/<id>" series, so per-query attribution rides the same series the
	// query's counters already publish to.
	Latency Latency
}

func (cfg QuerySetConfig) withDefaults() QuerySetConfig {
	if cfg.Strategy == "" {
		cfg.Strategy = StrategyNative
	}
	return cfg
}

func (cfg QuerySetConfig) validate() error {
	switch cfg.Strategy {
	case StrategyNative, StrategyInOrder, StrategyKSlack, StrategySpeculate:
	case StrategyHybrid:
		// Inner engines see the shared buffer's sorted output, so the
		// meta-engine would never observe disorder and never switch.
		return fmt.Errorf("strategy %q is not meaningful inside a QuerySet: inner engines run behind the shared reorder buffer", StrategyHybrid)
	default:
		return fmt.Errorf("unknown strategy %q", cfg.Strategy)
	}
	if cfg.K < 0 {
		return fmt.Errorf("K must be >= 0, got %d", cfg.K)
	}
	if cfg.AdvanceEvery < 0 {
		return fmt.Errorf("AdvanceEvery must be >= 0, got %d", cfg.AdvanceEvery)
	}
	return cfg.Latency.validate()
}

// innerFactory builds per-query inner engines: the configured strategy at
// K=0 (the shared buffer reorders), observed under the "qs/<id>" identity.
func (cfg QuerySetConfig) innerFactory() func(id string, p *plan.Plan) (engine.Engine, error) {
	ecfg := Config{Strategy: cfg.Strategy}.withDefaults()
	obsCfg := Config{Observer: cfg.Observer, Trace: cfg.Trace}
	return func(id string, p *plan.Plan) (engine.Engine, error) {
		en, err := newSingle(&Query{plan: p}, ecfg)
		if err != nil {
			return nil, err
		}
		observeEngine(en, obsCfg, "qs/"+id)
		return en, nil
	}
}

// restoreFactory rebuilds per-query engines from checkpoint blobs; only
// the native strategy supports engine snapshots.
func (cfg QuerySetConfig) restoreFactory() func(id string, p *plan.Plan, r io.Reader) (engine.Engine, error) {
	if cfg.Strategy != StrategyNative {
		return nil
	}
	obsCfg := Config{Observer: cfg.Observer, Trace: cfg.Trace}
	return func(id string, p *plan.Plan, r io.Reader) (engine.Engine, error) {
		en, err := restoreSingle(p, r)
		if err != nil {
			return nil, err
		}
		observeEngine(en, obsCfg, "qs/"+id)
		return en, nil
	}
}

func (cfg QuerySetConfig) setOptions() queryset.Options {
	opts := queryset.Options{
		K:            cfg.K,
		AdvanceEvery: cfg.AdvanceEvery,
		NewEngine:    cfg.innerFactory(),
		Compile: func(src string) (*plan.Plan, error) {
			// The source was schema-checked when first compiled; restore
			// recompiles the canonical text without re-checking.
			return plan.ParseAndCompile(src, nil)
		},
		RestoreEngine: cfg.restoreFactory(),
	}
	if cfg.Observer != nil {
		// Per-query construct attribution lands in the same "qs/<id>"
		// series innerFactory binds the query's counters to.
		obs := cfg.Observer
		opts.QuerySeries = func(id string) *obsv.Series { return obs.Series("qs/" + id) }
	}
	return opts
}

// newSetSampler builds the Set's span sampler from cfg, or nil when
// disabled, reusing the single-engine builder (the sampler publishes into
// the Observer's "latency" series when one is configured).
func (cfg QuerySetConfig) newSetSampler() *obsv.LatencySampler {
	return newLatencySampler(Config{Latency: cfg.Latency, Observer: cfg.Observer})
}

// finishSet applies the config's provenance and observability bindings to
// a built (or restored) Set.
func (cfg QuerySetConfig) finishSet(set *queryset.Set) {
	if cfg.Provenance {
		set.EnableProvenance()
	}
	if cfg.Observer != nil || cfg.Trace != nil {
		var s *obsv.Series
		if cfg.Observer != nil {
			s = cfg.Observer.Series("queryset")
		}
		set.Observe(s, cfg.Trace)
	}
}

// QuerySet evaluates many registered queries over one event stream,
// processing each event once: a shared K-slack admission/reorder pass, an
// event-type index dispatching only to queries whose components can
// consume the event, and prefix gating that skips queries whose pattern
// cannot have started for the event's key group. Every emitted Match
// carries the owning query's id in Match.Query.
//
// Like Engine, a QuerySet is not safe for concurrent calls.
type QuerySet struct {
	set     *queryset.Set
	nextSeq Seq
	sealed  bool
	// lat is the wall-clock span sampler (nil unless Latency is set).
	lat *obsv.LatencySampler
}

// NewQuerySet builds an empty QuerySet; add queries with Register.
func NewQuerySet(cfg QuerySetConfig) (*QuerySet, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	set, err := queryset.New(cfg.setOptions())
	if err != nil {
		return nil, err
	}
	cfg.finishSet(set)
	lat := cfg.newSetSampler()
	if lat != nil {
		set.SetLatencySampler(lat)
	}
	return &QuerySet{set: set, lat: lat}, nil
}

// MustNewQuerySet is NewQuerySet for known-good configuration.
func MustNewQuerySet(cfg QuerySetConfig) *QuerySet {
	qs, err := NewQuerySet(cfg)
	if err != nil {
		panic(err)
	}
	return qs
}

// RestoreQuerySet rebuilds a QuerySet from a Checkpoint (format v2): the
// shared buffer, the full query registry (sources are recompiled), and
// every per-query engine state. Only StrategyNative supports it.
func RestoreQuerySet(cfg QuerySetConfig, r io.Reader) (*QuerySet, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Strategy != StrategyNative {
		return nil, fmt.Errorf("strategy %q does not support checkpointing", cfg.Strategy)
	}
	set, err := queryset.Restore(cfg.setOptions(), r)
	if err != nil {
		return nil, err
	}
	cfg.finishSet(set)
	lat := cfg.newSetSampler()
	if lat != nil {
		set.SetLatencySampler(lat)
	}
	return &QuerySet{set: set, lat: lat}, nil
}

// Register adds a compiled query under id. The query observes events the
// shared buffer releases after registration; it returns an error on a
// duplicate or empty id, or after Flush.
func (qs *QuerySet) Register(id string, q *Query) error {
	return qs.set.Register(id, q.plan)
}

// Unregister removes a query, finalizes it against the events released so
// far, and returns its final matches (tagged with the id). Events still
// held in the shared reorder buffer are not seen by the departing query;
// call Advance first to drain up to a known horizon when that matters.
func (qs *QuerySet) Unregister(id string) ([]Match, error) {
	return qs.set.Unregister(id)
}

// Queries returns the registered query ids in registration order.
func (qs *QuerySet) Queries() []string { return qs.set.Queries() }

// Process ingests one event, auto-assigning Seq exactly like
// Engine.Process, and returns the matches it releases across all
// registered queries, each tagged with its query id. Panics after Flush.
func (qs *QuerySet) Process(ev Event) []Match {
	if qs.sealed {
		panic("oostream: Process called after Flush; the stream is sealed")
	}
	qs.assignSeq(&ev)
	qs.lat.Begin(ev.Seq)
	ms := qs.set.Process(ev)
	qs.lat.Finish(ev.Seq)
	return ms
}

// ProcessBatch ingests a slice of events through the batch path. A nil or
// empty batch is a documented no-op returning nil. Output is identical to
// per-event Process calls. Seq auto-assignment matches Process and is
// written into the caller's slice in place.
func (qs *QuerySet) ProcessBatch(events []Event) []Match {
	if qs.sealed {
		panic("oostream: ProcessBatch called after Flush; the stream is sealed")
	}
	for i := range events {
		qs.assignSeq(&events[i])
		qs.lat.Begin(events[i].Seq)
	}
	ms := qs.set.ProcessBatch(events)
	for i := range events {
		qs.lat.Finish(events[i].Seq)
	}
	return ms
}

// ProcessAll ingests a finite slice and returns all matches, including
// the end-of-stream flush.
func (qs *QuerySet) ProcessAll(events []Event) []Match {
	var out []Match
	for _, ev := range events {
		out = append(out, qs.Process(ev)...)
	}
	return append(out, qs.Flush()...)
}

func (qs *QuerySet) assignSeq(ev *Event) {
	if ev.Seq == 0 {
		qs.nextSeq++
		ev.Seq = qs.nextSeq
	} else if ev.Seq > qs.nextSeq {
		qs.nextSeq = ev.Seq
	}
}

// Advance sends a heartbeat: stream time has reached ts. The shared
// buffer releases everything at or below ts − K and every registered
// engine advances to the new watermark, sealing pending negation output
// and purging state through silent periods.
func (qs *QuerySet) Advance(ts Time) []Match {
	if qs.sealed {
		panic("oostream: Advance called after Flush; the stream is sealed")
	}
	return qs.set.Advance(ts)
}

// Flush seals the stream: the shared buffer drains and every query is
// finalized in registration order. Process panics afterwards; a second
// Flush is a no-op returning nil.
func (qs *QuerySet) Flush() []Match {
	if qs.sealed {
		return nil
	}
	qs.sealed = true
	return qs.set.Flush()
}

// Metrics returns the shared-admission counters: events in, late drops at
// the shared buffer, irrelevant types, and the aggregate state gauge.
func (qs *QuerySet) Metrics() Metrics { return qs.set.Metrics() }

// QueryMetrics returns one registered query's inner-engine counters.
func (qs *QuerySet) QueryMetrics(id string) (Metrics, bool) { return qs.set.QueryMetrics(id) }

// Stats returns per-query dispatch/skip accounting in registration order.
func (qs *QuerySet) Stats() []QueryStats { return qs.set.Stats() }

// StateSize returns buffered events plus the state of every engine.
func (qs *QuerySet) StateSize() int { return qs.set.StateSize() }

// LatencyReport returns the sampled wall-clock latency attribution digest
// (see Engine.LatencyReport), or nil when Latency is disabled. Per-query
// construct segments additionally land in each query's "qs/<id>" series
// when an Observer is configured.
func (qs *QuerySet) LatencyReport() *LatencyReport { return qs.lat.Report() }

// Checkpoint serializes the QuerySet in checkpoint format v2: the shared
// reorder buffer plus one namespaced state blob per registered query, so
// a restore rebuilds the full registry (see RestoreQuerySet). Every inner
// engine must support checkpointing (StrategyNative).
func (qs *QuerySet) Checkpoint(w io.Writer) error { return qs.set.Checkpoint(w) }

// Raw exposes the engine behind the facade for harnesses that compose
// engines directly (the Set implements the same contract as any engine;
// matches are tagged with their query id).
func (qs *QuerySet) Raw() RawEngine { return qs.set }

// SupervisedQuerySet is a QuerySet wrapped in the fault-tolerant runtime:
// events are WAL-logged before processing, matches are committed to the
// exactly-once horizon on emission, and checkpoints use format v2 with
// per-query state namespaces — so live Register/Unregister survives a
// kill/recover (each mutation forces a checkpoint; the WAL replays events
// only).
//
// Like SupervisedEngine, events must carry caller-assigned unique Seq
// values. Live mutation requires the native strategy (per-query snapshots);
// other strategies run WAL-only with a fixed pre-Start registry.
//
// One caveat mirrors Supervisor.Mutate: the final flush returned by a
// live Unregister sits outside the exactly-once horizon — a crash racing
// the mutation re-runs it, making that output at-least-once.
type SupervisedQuerySet struct {
	sup     *runtime.Supervisor
	initial []namedQuery
	started bool
	// lat is the wall-clock span sampler (nil unless Latency is set); the
	// supervisor re-forwards it to the Set across crash restarts.
	lat *obsv.LatencySampler
}

type namedQuery struct {
	id string
	q  *Query
}

// NewSupervisedQuerySet builds a supervised QuerySet persisting to
// sc.Dir. Register initial queries before Start on a fresh directory; on
// a resumed directory the checkpointed registry wins and pre-Start
// registrations are ignored (reconcile via Queries after Start).
func NewSupervisedQuerySet(cfg QuerySetConfig, sc SupervisorConfig) (*SupervisedQuerySet, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := sc.validate(); err != nil {
		return nil, err
	}
	opts := cfg.setOptions()
	s := &SupervisedQuerySet{}
	newFn := func() (engine.Engine, error) {
		set, err := queryset.New(opts)
		if err != nil {
			return nil, err
		}
		cfg.finishSet(set)
		for _, nq := range s.initial {
			if err := set.Register(nq.id, nq.q.plan); err != nil {
				return nil, err
			}
		}
		return set, nil
	}
	var restoreFn func(io.Reader) (engine.Engine, error)
	if cfg.Strategy == StrategyNative {
		restoreFn = func(r io.Reader) (engine.Engine, error) {
			set, err := queryset.Restore(opts, r)
			if err != nil {
				return nil, err
			}
			cfg.finishSet(set)
			return set, nil
		}
	}
	store, err := recovery.Open(sc.Dir, sc.storeOptions())
	if err != nil {
		return nil, err
	}
	sup, err := runtime.NewSupervisor(store, runtime.SupervisorOptions{
		New:             newFn,
		Restore:         restoreFn,
		K:               cfg.K,
		Policy:          sc.Policy,
		DeadLetter:      sc.DeadLetter,
		CheckpointEvery: sc.CheckpointEvery,
		MaxRestarts:     sc.MaxRestarts,
	})
	if err != nil {
		store.Close()
		return nil, err
	}
	if cfg.Observer != nil || cfg.Trace != nil {
		var series *obsv.Series
		if cfg.Observer != nil {
			series = cfg.Observer.Series("supervised(queryset)")
		}
		sup.Observe(series, cfg.Trace)
	}
	s.lat = cfg.newSetSampler()
	if s.lat != nil {
		sup.SetLatencySampler(s.lat)
	}
	s.sup = sup
	return s, nil
}

// Start recovers durable state (restoring the checkpointed query registry
// when one exists) and readies the set; it returns the matches a previous
// crash interrupted.
func (s *SupervisedQuerySet) Start() ([]Match, error) {
	out, err := s.sup.Start()
	if err != nil {
		return nil, err
	}
	s.started = true
	return out, nil
}

// Register adds a query. Before Start it stages the query for the fresh
// registry; after Start it is a durable live mutation — applied to the
// running set and sealed with a forced v2 checkpoint, so it survives a
// kill/recover (native strategy only).
func (s *SupervisedQuerySet) Register(id string, q *Query) error {
	if !s.started {
		for _, nq := range s.initial {
			if nq.id == id {
				return fmt.Errorf("queryset: query id %q already registered", id)
			}
		}
		s.initial = append(s.initial, namedQuery{id: id, q: q})
		return nil
	}
	_, err := s.sup.Mutate(func(en engine.Engine) ([]plan.Match, error) {
		return nil, en.(*queryset.Set).Register(id, q.plan)
	})
	return err
}

// Unregister removes a query. After Start it is a durable live mutation;
// the returned final matches sit outside the exactly-once horizon (see
// the type comment).
func (s *SupervisedQuerySet) Unregister(id string) ([]Match, error) {
	if !s.started {
		for i, nq := range s.initial {
			if nq.id == id {
				s.initial = append(s.initial[:i], s.initial[i+1:]...)
				return nil, nil
			}
		}
		return nil, fmt.Errorf("queryset: query id %q is not registered", id)
	}
	return s.sup.Mutate(func(en engine.Engine) ([]plan.Match, error) {
		return en.(*queryset.Set).Unregister(id)
	})
}

// Queries returns the live registry in registration order (after Start).
func (s *SupervisedQuerySet) Queries() []string {
	if set, ok := s.sup.Engine().(*queryset.Set); ok {
		return set.Queries()
	}
	ids := make([]string, len(s.initial))
	for i, nq := range s.initial {
		ids[i] = nq.id
	}
	return ids
}

// Process offers one event; it must carry a unique non-zero Seq. Returned
// matches are committed as delivered before the call returns.
func (s *SupervisedQuerySet) Process(ev Event) ([]Match, error) {
	if ev.Seq == 0 {
		return nil, fmt.Errorf("supervised query set requires caller-assigned event Seq values")
	}
	return s.sup.ProcessE(ev)
}

// ProcessBatch offers a slice of events with per-event durability
// semantics (see SupervisedEngine.ProcessBatch). A nil or empty batch is
// a no-op.
func (s *SupervisedQuerySet) ProcessBatch(events []Event) ([]Match, error) {
	for _, ev := range events {
		if ev.Seq == 0 {
			return nil, fmt.Errorf("supervised query set requires caller-assigned event Seq values")
		}
	}
	return s.sup.ProcessBatchE(events)
}

// Flush seals the stream durably.
func (s *SupervisedQuerySet) Flush() ([]Match, error) { return s.sup.FlushE() }

// Metrics returns the shared-admission counters merged with the
// fault-tolerance counters.
func (s *SupervisedQuerySet) Metrics() Metrics { return s.sup.Metrics() }

// QueryMetrics returns one registered query's inner-engine counters.
func (s *SupervisedQuerySet) QueryMetrics(id string) (Metrics, bool) {
	if set, ok := s.sup.Engine().(*queryset.Set); ok {
		return set.QueryMetrics(id)
	}
	return Metrics{}, false
}

// MatchSeq returns the cumulative committed match-emission count.
func (s *SupervisedQuerySet) MatchSeq() uint64 { return s.sup.MatchSeq() }

// LatencyReport returns the sampled wall-clock latency attribution digest
// (see Engine.LatencyReport), or nil when Latency is disabled.
func (s *SupervisedQuerySet) LatencyReport() *LatencyReport { return s.lat.Report() }

// Err returns the sticky failure, if any.
func (s *SupervisedQuerySet) Err() error { return s.sup.Err() }

// Kill simulates a process crash for testing; reopen the directory with a
// fresh SupervisedQuerySet to recover.
func (s *SupervisedQuerySet) Kill() { s.sup.Kill() }

// Close cleanly seals the durable store.
func (s *SupervisedQuerySet) Close() error { return s.sup.Close() }
