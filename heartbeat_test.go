package oostream

import (
	"testing"

	"oostream/internal/gen"
)

// Heartbeats (punctuation) let engines make progress through stream
// silence: sealing pending negation output and purging state without a new
// event arriving.

func negationQuery(t *testing.T) *Query {
	t.Helper()
	return MustCompile("PATTERN SEQ(A a, !(N n), B b) WITHIN 100", nil)
}

func TestAdvanceSealsNativeNegation(t *testing.T) {
	q := negationQuery(t)
	en := MustNewEngine(q, Config{Strategy: StrategyNative, K: 50})
	en.Process(Event{Type: "A", TS: 10, Seq: 1})
	if out := en.Process(Event{Type: "B", TS: 30, Seq: 2}); len(out) != 0 {
		t.Fatal("must pend until the gap seals")
	}
	// Heartbeat at 79: safe clock 29 < 30, still pending.
	if out := en.Advance(79); len(out) != 0 {
		t.Fatalf("sealed too early: %v", out)
	}
	// Heartbeat at 80: safe clock 30 >= 30, seals.
	out := en.Advance(80)
	if len(out) != 1 || out[0].Key() != "1|2" {
		t.Fatalf("heartbeat should seal the match, got %v", out)
	}
	// Backwards heartbeat is a no-op.
	if out := en.Advance(5); len(out) != 0 {
		t.Fatalf("backward heartbeat emitted: %v", out)
	}
}

func TestAdvanceReleasesKSlackBuffer(t *testing.T) {
	q := MustCompile("PATTERN SEQ(A a, B b) WITHIN 100", nil)
	en := MustNewEngine(q, Config{Strategy: StrategyKSlack, K: 50})
	en.Process(Event{Type: "A", TS: 10, Seq: 1})
	if out := en.Process(Event{Type: "B", TS: 20, Seq: 2}); len(out) != 0 {
		t.Fatal("buffered events should not have been released yet")
	}
	out := en.Advance(100) // watermark 50: releases both, match emits
	if len(out) != 1 || out[0].Key() != "1|2" {
		t.Fatalf("heartbeat should flush the buffer into a match, got %v", out)
	}
}

func TestAdvanceForwardsThroughKSlackToTrailingNegation(t *testing.T) {
	q := MustCompile("PATTERN SEQ(A a, B b, !(N n)) WITHIN 40", nil)
	en := MustNewEngine(q, Config{Strategy: StrategyKSlack, K: 10})
	en.Process(Event{Type: "A", TS: 10, Seq: 1})
	en.Process(Event{Type: "B", TS: 20, Seq: 2})
	// Watermark must pass the trailing gap end (first+W = 50) inside the
	// inner engine, i.e. outer heartbeat 60+K.
	out := en.Advance(70)
	if len(out) != 1 || out[0].Key() != "1|2" {
		t.Fatalf("trailing negation not sealed through the levee: %v", out)
	}
}

func TestAdvanceExpiresSpeculativeVulnerability(t *testing.T) {
	q := negationQuery(t)
	en := MustNewEngine(q, Config{Strategy: StrategySpeculate, K: 50})
	en.Process(Event{Type: "A", TS: 10, Seq: 1})
	if out := en.Process(Event{Type: "B", TS: 30, Seq: 2}); len(out) != 1 {
		t.Fatal("speculative insert expected")
	}
	if out := en.Advance(80); len(out) != 0 {
		t.Fatalf("advance emitted: %v", out)
	}
	// The negative now violates the bound and cannot retract anything.
	if out := en.Process(Event{Type: "N", TS: 20, Seq: 3}); len(out) != 0 {
		t.Fatalf("sealed speculative match retracted: %v", out)
	}
}

func TestAdvancePurgesState(t *testing.T) {
	q := MustCompile("PATTERN SEQ(A a, B b) WITHIN 10", nil)
	en := MustNewEngine(q, Config{Strategy: StrategyNative, K: 10, PurgeEvery: 1_000_000})
	for i := 0; i < 100; i++ {
		en.Process(Event{Type: "A", TS: Time(i), Seq: Seq(i + 1)})
	}
	if en.StateSize() != 100 {
		t.Fatalf("setup state = %d", en.StateSize())
	}
	en.Advance(1_000) // far future: everything purgeable
	if en.StateSize() != 0 {
		t.Errorf("heartbeat did not purge: state = %d", en.StateSize())
	}
}

func TestAdvanceOnInorderSealsTrailingNegation(t *testing.T) {
	q := MustCompile("PATTERN SEQ(A a, B b, !(N n)) WITHIN 40", nil)
	en := MustNewEngine(q, Config{Strategy: StrategyInOrder})
	en.Process(Event{Type: "A", TS: 10, Seq: 1})
	en.Process(Event{Type: "B", TS: 20, Seq: 2})
	out := en.Advance(50)
	if len(out) != 1 {
		t.Fatalf("inorder heartbeat should seal trailing negation, got %v", out)
	}
}

func TestAdvanceEquivalentToEventDrivenRun(t *testing.T) {
	// Interleaving heartbeats must not change the result set.
	q := negationQuery(t)
	sorted := gen.Uniform(200, []string{"A", "B", "N"}, 3, 5, 31)
	shuffled := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.3, MaxDelay: 50, Seed: 32})

	plain := MustNewEngine(q, Config{K: 50}).ProcessAll(shuffled)

	en := MustNewEngine(q, Config{K: 50})
	var got []Match
	for i, e := range shuffled {
		got = append(got, en.Process(e)...)
		if i%10 == 0 {
			got = append(got, en.Advance(e.TS)...)
		}
	}
	got = append(got, en.Flush()...)
	if ok, diff := SameResults(plain, got); !ok {
		t.Fatalf("heartbeats changed results:\n%s", diff)
	}
}
