package oostream

import (
	"fmt"
	"testing"
	"time"

	"oostream/internal/gen"
)

func latencyStream(n int, seed int64) []Event {
	events := gen.RFID(gen.DefaultRFID(n, seed))
	return gen.Shuffle(events, gen.Disorder{Ratio: 0.25, MaxDelay: 2000, Seed: seed})
}

// TestLatencySamplerTransparent is the on/off differential at the facade:
// for every strategy, a densely sampled run (1-in-1 — every event carries
// a span — plus an SLO tracker) must produce output identical to the
// uninstrumented run, element for element. Sampling is observation only.
func TestLatencySamplerTransparent(t *testing.T) {
	q := MustCompile("PATTERN SEQ(SHELF s, EXIT e) WHERE s.id = e.id WITHIN 6s", nil)
	events := latencyStream(600, 31)
	for _, strat := range Strategies() {
		t.Run(string(strat), func(t *testing.T) {
			plain := MustNewEngine(q, Config{Strategy: strat, K: 2000}).ProcessAll(events)
			cfg := Config{Strategy: strat, K: 2000, Latency: Latency{
				SampleEvery: 1,
				SLO:         LatencySLO{Objective: 5 * time.Millisecond, Target: 0.99},
			}}
			sampled := MustNewEngine(q, cfg).ProcessAll(events)
			if len(plain) != len(sampled) {
				t.Fatalf("sampler changed match count: %d vs %d", len(plain), len(sampled))
			}
			for i := range plain {
				if fmt.Sprintf("%+v", plain[i]) != fmt.Sprintf("%+v", sampled[i]) {
					t.Fatalf("match %d differs:\n  plain:   %+v\n  sampled: %+v", i, plain[i], sampled[i])
				}
			}
		})
	}
}

// TestLatencyReportSurfaces checks the attribution digest reaches both
// public surfaces — LatencyReport and StateSnapshot — with a balanced span
// ledger and the SLO window state, on the buffering strategy (kslack holds
// spans through reorder residency, the protocol's hardest path).
func TestLatencyReportSurfaces(t *testing.T) {
	q := MustCompile("PATTERN SEQ(SHELF s, EXIT e) WHERE s.id = e.id WITHIN 6s", nil)
	events := latencyStream(600, 37)
	en := MustNewEngine(q, Config{Strategy: StrategyKSlack, K: 2000, Latency: Latency{
		SampleEvery: 1,
		SLO:         LatencySLO{Objective: 5 * time.Millisecond, Target: 0.99},
	}})
	en.ProcessAll(events)

	r := en.LatencyReport()
	if r == nil {
		t.Fatal("LatencyReport() = nil with sampling on")
	}
	if r.SampleEvery != 1 || r.SpansSampled == 0 {
		t.Fatalf("report accounting: %+v", r)
	}
	if got := r.Wall.Count + r.SpansAbandoned; got != r.SpansSampled {
		t.Fatalf("span ledger: %d completed + %d abandoned != %d sampled",
			r.Wall.Count, r.SpansAbandoned, r.SpansSampled)
	}
	for _, stage := range []string{"buffer", "construct", "emit"} {
		if r.Stages[stage].Count == 0 {
			t.Errorf("stage %q unattributed on kslack: %v", stage, r.Stages)
		}
	}
	if r.SLO == nil || len(r.SLO.Windows) == 0 {
		t.Fatalf("SLO windows missing: %+v", r.SLO)
	}

	snap := en.StateSnapshot()
	if snap == nil || snap.Latency == nil {
		t.Fatal("StateSnapshot did not carry the latency report")
	}
	if snap.Latency.SpansSampled != r.SpansSampled {
		t.Fatalf("snapshot report diverged: %d vs %d", snap.Latency.SpansSampled, r.SpansSampled)
	}

	// Off configuration: the report is absent, not zero-valued.
	off := MustNewEngine(q, Config{Strategy: StrategyNative, K: 2000})
	off.ProcessAll(events)
	if off.LatencyReport() != nil {
		t.Fatal("LatencyReport() must be nil with sampling off")
	}
	if snap := off.StateSnapshot(); snap != nil && snap.Latency != nil {
		t.Fatal("StateSnapshot must omit latency with sampling off")
	}
}
