package oostream

import (
	"strconv"
	"strings"
	"testing"

	"oostream/internal/gen"
)

func stageOneQuery(t *testing.T) *Query {
	t.Helper()
	return MustCompile(`
		PATTERN SEQ(SHELF s, !(COUNTER c), EXIT e)
		WHERE s.id = e.id AND s.id = c.id
		WITHIN 6s
		RETURN s.id AS item, e.gate AS gate`, gen.RFIDSchema())
}

func TestComposerEvent(t *testing.T) {
	q := stageOneQuery(t)
	comp, err := NewComposer("THEFT", q)
	if err != nil {
		t.Fatal(err)
	}
	if comp.TypeName() != "THEFT" {
		t.Errorf("TypeName = %q", comp.TypeName())
	}
	if cols := comp.Columns(); len(cols) != 2 || cols[0] != "item" || cols[1] != "gate" {
		t.Errorf("Columns = %v", cols)
	}
	m := Match{
		Kind: Insert,
		Events: []Event{
			{Type: "SHELF", TS: 10, Seq: 1},
			{Type: "EXIT", TS: 50, Seq: 2},
		},
		Fields: []Value{Int(7), Str("g1")},
	}
	ce, err := comp.Event(m)
	if err != nil {
		t.Fatal(err)
	}
	if ce.Type != "THEFT" || ce.TS != 50 {
		t.Errorf("composite = %v", ce)
	}
	if v, _ := ce.Attr("item"); !v.Equal(Int(7)) {
		t.Errorf("item attr = %v", v)
	}
	if v, _ := ce.Attr("gate"); !v.Equal(Str("g1")) {
		t.Errorf("gate attr = %v", v)
	}
}

func TestComposerRejections(t *testing.T) {
	q := stageOneQuery(t)
	if _, err := NewComposer("", q); err == nil {
		t.Error("empty type accepted")
	}
	noReturn := MustCompile("PATTERN SEQ(A a) WITHIN 10", nil)
	if _, err := NewComposer("X", noReturn); err == nil ||
		!strings.Contains(err.Error(), "RETURN") {
		t.Errorf("no-RETURN query: %v", err)
	}
	comp, err := NewComposer("THEFT", q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := comp.Event(Match{Kind: Retract, Events: []Event{{TS: 1}}}); err == nil {
		t.Error("retraction accepted")
	}
	if _, err := comp.Event(Match{Kind: Insert, Events: []Event{{TS: 1}}, Fields: []Value{Int(1)}}); err == nil {
		t.Error("field arity mismatch accepted")
	}
}

// TestChainTwoStageDetection runs the hierarchical scenario: stage one
// detects thefts; stage two detects repeat incidents at the same gate
// within a time window — over a disordered stream end to end.
func TestChainTwoStageDetection(t *testing.T) {
	stage1 := stageOneQuery(t)
	stage2 := MustCompile(`
		PATTERN SEQ(THEFT t1, THEFT t2)
		WHERE t1.gate = t2.gate
		WITHIN 60s`, nil)

	comp, err := NewComposer("THEFT", stage1)
	if err != nil {
		t.Fatal(err)
	}

	const k = 2_000
	sorted := gen.RFID(gen.DefaultRFID(400, 81))
	shuffled := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.2, MaxDelay: k, Seed: 82})

	// Ground truth: chain over the sorted stream with in-order engines.
	wantOut, err := Chain(
		MustNewEngine(stage1, Config{Strategy: StrategyInOrder}),
		comp,
		MustNewEngine(stage2, Config{Strategy: StrategyInOrder}),
		sorted)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantOut) == 0 {
		t.Fatal("scenario produced no second-stage matches; tune workload")
	}

	// Native engines over the disordered stream. Stage-two events inherit
	// stage-one sealing delay, so its bound is stage-one K plus window
	// slack; 2K is ample here.
	gotOut, err := Chain(
		MustNewEngine(stage1, Config{K: k}),
		comp,
		MustNewEngine(stage2, Config{K: 3 * k}),
		shuffled)
	if err != nil {
		t.Fatal(err)
	}
	// Composite events get fresh seqs per run, so compare by (gate,
	// timestamps) signature rather than keys.
	sig := func(ms []Match) map[string]int {
		out := map[string]int{}
		for _, m := range ms {
			var b strings.Builder
			for _, e := range m.Events {
				g, _ := e.Attrs["gate"].AsString()
				b.WriteString(g)
				b.WriteByte('@')
				b.WriteString(strconv.FormatInt(e.TS, 10))
				b.WriteByte('|')
			}
			out[b.String()]++
		}
		return out
	}
	w, g := sig(wantOut), sig(gotOut)
	if len(w) != len(g) {
		t.Fatalf("stage-two results differ: %d vs %d signatures", len(w), len(g))
	}
	for k2, n := range w {
		if g[k2] != n {
			t.Fatalf("signature %q: %d vs %d", k2, n, g[k2])
		}
	}
}
