// Package oostream is a complex event processing library for event streams
// with out-of-order data arrival, reproducing Li, Liu, Ding, Rundensteiner,
// and Mani, "Event Stream Processing with Out-of-Order Data Arrival"
// (ICDCS Workshops 2007).
//
// It evaluates SASE-style sequence pattern queries
//
//	PATTERN SEQ(SHELF s, !(COUNTER c), EXIT e)
//	WHERE   s.id = e.id AND s.id = c.id
//	WITHIN  12h
//
// over unbounded event streams whose events may arrive out of timestamp
// order, under a bounded-disorder (K-slack) assumption. Four interchangeable
// strategies implement the same query semantics:
//
//   - StrategyNative — the paper's contribution: timestamp-sorted active
//     instance stacks with out-of-order insertion and predecessor repair,
//     construction triggered by the out-of-order event itself, safe-clock
//     state purging, and deferred (exact) negation output.
//   - StrategyInOrder — the classic SASE engine. Exact on sorted input;
//     misses matches and emits premature negation results under disorder
//     (the paper's problem analysis).
//   - StrategyKSlack — a K-slack reorder buffer in front of the in-order
//     engine. Exact under the bound, but every result pays up to K latency
//     and the buffer holds the whole recent stream.
//   - StrategySpeculate — the aggressive extension: emits eagerly and
//     compensates wrong negation output with Retract matches.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduced evaluation.
package oostream

import (
	"context"
	"fmt"
	"io"

	"oostream/internal/adaptive"
	"oostream/internal/agg"
	"oostream/internal/core"
	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/hybrid"
	"oostream/internal/inorder"
	"oostream/internal/kslack"
	"oostream/internal/metrics"
	"oostream/internal/obsv"
	"oostream/internal/ordered"
	"oostream/internal/plan"
	"oostream/internal/runtime"
	"oostream/internal/shard"
	"oostream/internal/speculate"
)

// Re-exported event model types. Events carry an application timestamp in
// logical milliseconds and an arrival-independent sequence number used for
// identity and tie-breaking.
type (
	// Event is a single stream occurrence.
	Event = event.Event
	// Attrs is an event payload.
	Attrs = event.Attrs
	// Value is a dynamically typed attribute value.
	Value = event.Value
	// Time is a logical timestamp (milliseconds).
	Time = event.Time
	// Seq is an event sequence number.
	Seq = event.Seq
	// Schema declares event types for query checking.
	Schema = event.Schema
	// Kind enumerates value kinds.
	Kind = event.Kind
	// Match is one pattern occurrence (or a Retract compensation).
	Match = plan.Match
	// MatchKind distinguishes Insert results from Retract compensations.
	MatchKind = plan.MatchKind
	// Metrics is a snapshot of an engine's counters.
	Metrics = metrics.Snapshot
)

// Value constructors and kinds, re-exported.
var (
	// Int wraps an int64 attribute value.
	Int = event.Int
	// Float wraps a float64 attribute value.
	Float = event.Float
	// Str wraps a string attribute value.
	Str = event.Str
	// Bool wraps a bool attribute value.
	Bool = event.Bool
	// NewSchema creates an empty schema.
	NewSchema = event.NewSchema
	// NewEvent constructs an event with a copied attribute map.
	NewEvent = event.New
)

// Value kind constants, re-exported.
const (
	KindInt    = event.KindInt
	KindFloat  = event.KindFloat
	KindString = event.KindString
	KindBool   = event.KindBool
)

// Match kinds, re-exported.
const (
	Insert  = plan.Insert
	Retract = plan.Retract
)

// Query is a compiled pattern query, safe for use by multiple engines.
type Query struct {
	plan *plan.Plan
}

// Compile parses, analyzes, and plans a query. A non-nil schema enables
// attribute existence and kind checking at compile time.
func Compile(src string, schema *Schema) (*Query, error) {
	p, err := plan.ParseAndCompile(src, schema)
	if err != nil {
		return nil, err
	}
	return &Query{plan: p}, nil
}

// MustCompile is Compile for known-good query text; it panics on error.
func MustCompile(src string, schema *Schema) *Query {
	q, err := Compile(src, schema)
	if err != nil {
		panic(err)
	}
	return q
}

// Source returns the canonical text of the compiled query.
func (q *Query) Source() string { return q.plan.Source }

// Window returns the query's WITHIN length.
func (q *Query) Window() Time { return q.plan.Window }

// PatternLen returns the number of positive components.
func (q *Query) PatternLen() int { return q.plan.Len() }

// HasNegation reports whether the query has negated components.
func (q *Query) HasNegation() bool { return q.plan.HasNegation() }

// Explain renders a human-readable description of the compiled plan:
// sequence steps, predicate placement, negation gaps, projection, and the
// attributes the query can be partitioned by.
func (q *Query) Explain() string { return q.plan.Describe() }

// PartitionableBy reports whether hash-partitioning the stream on attr
// preserves the result set (see Config.Partition).
func (q *Query) PartitionableBy(attr string) bool { return q.plan.PartitionableBy(attr) }

// HasAggregate reports whether the query carries an AGGREGATE clause:
// its engines then emit windowed aggregate values instead of raw pattern
// matches (see Result).
func (q *Query) HasAggregate() bool { return q.plan.Agg != nil }

// AutoPartitionKey returns the equivalence attribute the planner selected
// for key-partitioned stacks (the partitionable attribute appearing in the
// most equality predicates), or "" when the query is not partitionable.
// The native engine keys its active instance stacks and negation stores by
// this attribute automatically, confining construction and negation probes
// to one key group per trigger; Config.DisableKeyedStacks turns it off.
func (q *Query) AutoPartitionKey() string { return q.plan.PartitionKey }

// SameResults compares two match slices as multisets (applying Retract
// compensations) and describes the difference when they diverge.
func SameResults(a, b []Match) (bool, string) { return plan.SameResults(a, b) }

// Engine evaluates one compiled query under a chosen strategy.
//
// Engines are not safe for concurrent Process calls; use Run (or the
// fan-out helpers) for channel-based concurrent plumbing.
type Engine struct {
	inner   engine.Engine
	nextSeq event.Seq
	sealed  bool
	batch   Batch
	// lat is the wall-clock span sampler (nil unless Config.Latency is
	// set): the facade opens spans at ingest and closes them after the
	// inner engine returns, with the layers in between stamping stage
	// boundaries. All sampler methods are nil-safe.
	lat *obsv.LatencySampler
}

// NewEngine builds an engine for the query. See Config for the strategy,
// disorder-bound, partitioning, and observability knobs. When
// Config.Partition.Attr is set the engine hash-partitions the stream across
// sub-engines.
func NewEngine(q *Query, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := validateQueryConfig(q, cfg); err != nil {
		return nil, err
	}
	inner, err := newInner(q, cfg)
	if err != nil {
		return nil, err
	}
	lat := newLatencySampler(cfg)
	if lat != nil {
		engine.SetLatencySampler(inner, lat)
	}
	return &Engine{inner: inner, batch: cfg.Batch, lat: lat}, nil
}

// newLatencySampler builds the span sampler from cfg.Latency, or nil when
// disabled. With an Observer configured it publishes into the registry's
// "latency" series, so the wall/stage histograms, span counters, and SLO
// windows ride the same /metrics and /varz surfaces as every other series;
// otherwise it records into a private series read via LatencyReport.
func newLatencySampler(cfg Config) *obsv.LatencySampler {
	if cfg.Latency.SampleEvery <= 0 {
		return nil
	}
	var series *obsv.Series
	if cfg.Observer != nil {
		series = cfg.Observer.Series("latency")
	}
	slo := obsv.NewSLOTracker(obsv.SLOConfig{
		Objective: cfg.Latency.SLO.Objective,
		Target:    cfg.Latency.SLO.Target,
		Windows:   cfg.Latency.SLO.Windows,
	})
	ls := obsv.NewLatencySampler(cfg.Latency.SampleEvery, series, slo)
	if cfg.Observer != nil && slo != nil {
		cfg.Observer.RegisterPrometheus(func(w io.Writer) error {
			return slo.WritePrometheus(w, "latency")
		})
	}
	return ls
}

// newInner builds the engine behind the facade: a single strategy engine,
// or a sharded composition of them when cfg.Partition is set. cfg must
// already have defaults applied and be validated.
func newInner(q *Query, cfg Config) (engine.Engine, error) {
	if cfg.Partition.Attr == "" {
		inner, err := newSingle(q, cfg)
		if err != nil {
			return nil, err
		}
		observeEngine(inner, cfg, string(cfg.Strategy))
		enableProvenance(inner, cfg)
		return inner, nil
	}
	if !q.plan.PartitionableBy(cfg.Partition.Attr) {
		return nil, fmt.Errorf("query is not partitionable by %q: every component must be linked by equality on it", cfg.Partition.Attr)
	}
	router, err := shard.NewRouter(cfg.Partition.Attr, cfg.Partition.Shards)
	if err != nil {
		return nil, err
	}
	inner, err := shard.New(router, func(i int) (engine.Engine, error) {
		sub, err := newSingle(q, cfg)
		if err != nil {
			return nil, err
		}
		observeEngine(sub, cfg, fmt.Sprintf("%s/shard%d", cfg.Strategy, i))
		return sub, nil
	})
	if err != nil {
		return nil, err
	}
	// The routing layer publishes its own series (route errors) and fans
	// the trace hook out to the shards; per-shard series were bound above
	// and survive the nil-series fan-out.
	observeEngine(inner, cfg, inner.Name())
	// Enabling provenance on the routing layer propagates to every shard
	// and turns on shard-index tagging of relayed records.
	enableProvenance(inner, cfg)
	return inner, nil
}

// enableProvenance turns on lineage-record construction when the config
// asks for it and the engine supports it (all built-in strategies do).
func enableProvenance(en engine.Engine, cfg Config) {
	if !cfg.Provenance {
		return
	}
	if pr, ok := en.(engine.Provenancer); ok {
		pr.EnableProvenance()
	}
}

// observeEngine binds an engine to cfg's observability layer: a registry
// series under the given name (when cfg.Observer is set) and the trace
// hook (when cfg.Trace is set). No-op when neither is configured or the
// engine is not Observable.
func observeEngine(en engine.Engine, cfg Config, name string) {
	if cfg.Observer == nil && cfg.Trace == nil {
		return
	}
	obs, ok := en.(engine.Observable)
	if !ok {
		return
	}
	var s *obsv.Series
	if cfg.Observer != nil {
		s = cfg.Observer.Series(name)
	}
	obs.Observe(s, cfg.Trace)
}

// newSingle builds one strategy engine (plus the ordered-output wrapper),
// ignoring cfg.Partition, Observer, and Trace — callers apply those.
func newSingle(q *Query, cfg Config) (engine.Engine, error) {
	// Each engine (each shard, under Partition) owns a fresh controller:
	// it feeds its own lag observations and state sizes, so K adapts to the
	// disorder each shard actually sees.
	ctrl, err := cfg.adaptiveController()
	if err != nil {
		return nil, err
	}
	var inner engine.Engine
	switch cfg.Strategy {
	case StrategyNative:
		opts := core.Options{
			K:                 cfg.K,
			LatePolicy:        cfg.corePolicy(),
			DisableTriggerOpt: cfg.DisableTriggerOpt,
			DisableKeying:     cfg.DisableKeyedStacks,
			PurgeEvery:        cfg.PurgeEvery,
		}
		if ctrl != nil {
			opts.Adaptive, opts.AdaptiveFeed = ctrl, true
		}
		en, err := core.New(q.plan, opts)
		if err != nil {
			return nil, err
		}
		inner = en
	case StrategyInOrder:
		inner = inorder.New(q.plan)
	case StrategyKSlack:
		if ctrl != nil {
			inner = kslack.NewAdaptiveEngine(ctrl, true, inorder.New(q.plan))
		} else {
			inner = kslack.NewEngine(cfg.K, inorder.New(q.plan))
		}
	case StrategySpeculate:
		opts := speculate.Options{K: cfg.K, PurgeEvery: cfg.PurgeEvery}
		if ctrl != nil {
			opts.Adaptive, opts.AdaptiveFeed = ctrl, true
		}
		en, err := speculate.New(q.plan, opts)
		if err != nil {
			return nil, err
		}
		inner = en
	case StrategyHybrid:
		// The hybrid meta-engine always runs a controller (it owns the
		// feed); with Adaptive disabled the effective K stays pinned at
		// Config.K and only the SLO switching logic runs.
		hctrl, err := adaptive.NewController(cfg.adaptiveConfig())
		if err != nil {
			return nil, err
		}
		en, err := hybrid.New(q.plan, hybrid.Options{Controller: hctrl, PurgeEvery: cfg.PurgeEvery})
		if err != nil {
			return nil, err
		}
		inner = en
	default:
		return nil, fmt.Errorf("unknown strategy %q", cfg.Strategy)
	}
	if cfg.OrderedOutput {
		wrapped, err := ordered.New(inner, cfg.K)
		if err != nil {
			return nil, err
		}
		inner = wrapped
	}
	if q.plan.Agg != nil {
		// The aggregation operator consumes the strategy's matches and emits
		// windowed aggregate values. It wraps outside the ordered-output
		// buffer (which releases within K, so the lateness bound still
		// dominates the matches it sees). The speculative strategy previews
		// windows eagerly and revises them as retract+insert pairs; every
		// other strategy seals windows on watermark advance.
		inner = agg.New(q.plan, inner, cfg.Strategy == StrategySpeculate, aggLateness(q, cfg))
	}
	return inner, nil
}

// aggLateness is the disorder bound the aggregation operator must absorb
// on top of the wrapped strategy: the strategy can surface a match whose
// last timestamp trails the stream clock by up to K (0 for the in-order
// baseline, which buffers nothing), plus one window length when a trailing
// negation defers emission until the gap seals.
func aggLateness(q *Query, cfg Config) Time {
	l := cfg.K
	if cfg.Strategy == StrategyInOrder {
		l = 0
	}
	if q.plan.HasTrailingNegation() {
		l += q.plan.Window
	}
	return l
}

// validateQueryConfig checks the constraints that need both the compiled
// query and the config — today, all about aggregation.
func validateQueryConfig(q *Query, cfg Config) error {
	p := q.plan
	if p.Agg == nil {
		return nil
	}
	if cfg.adaptiveActive() {
		return fmt.Errorf("aggregate queries need a fixed lateness bound; Adaptive disorder control cannot be combined with AGGREGATE")
	}
	if cfg.BestEffortLate {
		return fmt.Errorf("aggregate queries cannot run BestEffortLate: bound violators would mutate already-sealed windows")
	}
	if cfg.Partition.Attr != "" {
		if p.Agg.GroupSlot < 0 {
			return fmt.Errorf("an ungrouped aggregate cannot be partitioned: every shard would emit its own totals for the same window")
		}
		if p.Agg.GroupAttr != cfg.Partition.Attr {
			return fmt.Errorf("partitioned aggregation requires Partition.Attr to equal the GROUP BY attribute: %q != %q", cfg.Partition.Attr, p.Agg.GroupAttr)
		}
	}
	return nil
}

// MustNewEngine is NewEngine for known-good configuration.
func MustNewEngine(q *Query, cfg Config) *Engine {
	en, err := NewEngine(q, cfg)
	if err != nil {
		panic(err)
	}
	return en
}

// Strategy returns the engine's strategy name.
func (e *Engine) Strategy() string { return e.inner.Name() }

// RawEngine is the minimal contract of the engine behind the facade,
// exposed for harnesses that compose engines directly. It is the exported
// face of the internal engine interface; the concrete types live in
// internal packages.
type RawEngine interface {
	// Name identifies the strategy, e.g. "native" or "shard(native)".
	Name() string
	// Process ingests one event (Seq must be pre-assigned).
	Process(ev Event) []Match
	// Flush seals the stream and returns the final matches.
	Flush() []Match
	// Metrics returns a snapshot of the engine's counters.
	Metrics() Metrics
	// StateSize returns the current buffered-item count.
	StateSize() int
}

// Raw exposes the engine behind the facade for harnesses that compose
// engines directly. The returned value shares all state with e — use one
// or the other, not both. Unlike the facade, Raw().Process does not
// auto-assign Seq and does not guard against Process-after-Flush.
func (e *Engine) Raw() RawEngine { return e.inner }

// Process ingests one event and returns the matches it emits. Events with
// Seq zero are assigned the next arrival sequence number automatically;
// events carrying a Seq keep it (useful when the caller needs stable match
// identity across strategies).
//
// Process panics if called after Flush: the stream is sealed — pending
// negation output has been finalized, so further events would silently
// produce wrong results.
func (e *Engine) Process(ev Event) []Match {
	if e.sealed {
		panic("oostream: Process called after Flush; the stream is sealed")
	}
	if ev.Seq == 0 {
		e.nextSeq++
		ev.Seq = e.nextSeq
	} else if ev.Seq > e.nextSeq {
		e.nextSeq = ev.Seq
	}
	e.lat.Begin(ev.Seq)
	ms := e.inner.Process(ev)
	e.lat.Finish(ev.Seq)
	return ms
}

// ProcessBatch ingests a slice of events through the engine's batch path
// and returns the matches they emit, in the same order per-event Process
// calls would (the BatchProcessor contract, enforced by the differential
// harness). Batching amortizes per-event overhead — shared output slice,
// purge passes and gauge updates deferred to the batch boundary — without
// changing output, retractions, lineage, or trace semantics.
//
// A nil or empty batch is a documented no-op: it returns nil and leaves
// all subsequent output unchanged.
//
// Seq auto-assignment matches Process and is written into the caller's
// slice in place (events already carrying a Seq keep it). Like Process, it
// panics when called after Flush.
func (e *Engine) ProcessBatch(events []Event) []Match {
	if e.sealed {
		panic("oostream: ProcessBatch called after Flush; the stream is sealed")
	}
	for i := range events {
		if events[i].Seq == 0 {
			e.nextSeq++
			events[i].Seq = e.nextSeq
		} else if events[i].Seq > e.nextSeq {
			e.nextSeq = events[i].Seq
		}
		e.lat.Begin(events[i].Seq)
	}
	ms := engine.ProcessBatch(e.inner, events)
	for i := range events {
		e.lat.Finish(events[i].Seq)
	}
	return ms
}

// ProcessAll ingests a finite slice and returns all matches, including the
// end-of-stream flush.
func (e *Engine) ProcessAll(events []Event) []Match {
	var out []Match
	for _, ev := range events {
		out = append(out, e.Process(ev)...)
	}
	return append(out, e.Flush()...)
}

// Flush seals the stream: pending negation output is finalized. Process
// panics if called afterwards; a second Flush is a no-op returning nil.
func (e *Engine) Flush() []Match {
	if e.sealed {
		return nil
	}
	e.sealed = true
	return e.inner.Flush()
}

// Advance sends a heartbeat (punctuation): the source promises that stream
// time has reached ts, even if no event carries that timestamp. Engines use
// it to seal pending negation output and purge state through silent
// periods. Every built-in strategy supports it.
func (e *Engine) Advance(ts Time) []Match {
	if adv, ok := e.inner.(engine.Advancer); ok {
		return adv.Advance(ts)
	}
	return nil
}

// Metrics returns a snapshot of the engine's counters.
func (e *Engine) Metrics() Metrics { return e.inner.Metrics() }

// StateSize returns the engine's current buffered-item count.
func (e *Engine) StateSize() int { return e.inner.StateSize() }

// StateSnapshot returns a read-only view of the engine's live state:
// per-position stack depths, the heaviest key groups, negation-store
// sizes, buffer occupancy, clock and safe horizon, purge frontier, and
// lineage retention (see provenance.StateSnapshot re-exported as
// StateSnapshot). Partitioned engines return an aggregate with per-shard
// sub-snapshots. It is NOT synchronized with Process: call it from the
// processing goroutine (between events) or while the engine is idle.
// Returns nil when the strategy composition exposes no introspection.
func (e *Engine) StateSnapshot() *StateSnapshot {
	if intr, ok := e.inner.(engine.Introspectable); ok {
		snap := intr.StateSnapshot()
		if snap != nil && e.lat != nil {
			snap.Latency = e.lat.Report()
		}
		return snap
	}
	return nil
}

// LatencyReport returns the sampled wall-clock latency attribution digest:
// span accounting, the end-to-end wall histogram, the per-stage
// decomposition (whose sum equals the wall total by construction), and the
// SLO burn-rate windows when configured. Returns nil when Config.Latency
// is disabled.
func (e *Engine) LatencyReport() *LatencyReport { return e.lat.Report() }

// EnableProvenance turns on lineage-record construction, as
// Config.Provenance does at construction time. It exists for engines that
// bypass Config — primarily RestoreEngine/RestorePartitionedEngine, which
// rebuild from a checkpoint that (by design) carries no lineage: matches
// whose partial state predates the restore carry records marked
// Truncated. Call it before processing, not mid-stream.
func (e *Engine) EnableProvenance() {
	if pr, ok := e.inner.(engine.Provenancer); ok {
		pr.EnableProvenance()
	}
}

// Checkpoint serializes the engine's state for crash recovery. The native
// strategy and partitioned engines over native parts support it; other
// strategies return an error. A RestoreEngine'd engine continues the
// stream exactly where this one stopped. When combined with auto-assigned
// sequence numbers, feed events with explicit Seq values across the
// restore boundary (the auto-assign counter is not part of the
// checkpoint).
func (e *Engine) Checkpoint(w io.Writer) error {
	cp, ok := e.inner.(engine.Checkpointer)
	if !ok {
		return fmt.Errorf("strategy %q does not support checkpointing", e.inner.Name())
	}
	return cp.Checkpoint(w)
}

// restoreSingle rebuilds one checkpointed strategy engine for a plan: a
// native engine, wrapped in the sealed-mode aggregation operator when the
// query aggregates (the operator's envelope leads the byte stream, its
// lateness bound rides in the payload).
func restoreSingle(p *plan.Plan, r io.Reader) (engine.Engine, error) {
	if p.Agg != nil {
		return agg.Restore(p, r, func(ir io.Reader) (engine.Engine, error) {
			return core.Restore(p, ir)
		})
	}
	return core.Restore(p, r)
}

// RestoreEngine rebuilds a native engine from a Checkpoint. The query must
// be compiled from the same text the checkpointed engine ran.
func RestoreEngine(q *Query, r io.Reader) (*Engine, error) {
	inner, err := restoreSingle(q.plan, r)
	if err != nil {
		return nil, err
	}
	return &Engine{inner: inner}, nil
}

// RestorePartitionedEngine rebuilds a partitioned engine (over native
// parts) from a Checkpoint written by one. The attribute and shard count
// must match the checkpointed topology.
func RestorePartitionedEngine(q *Query, byAttr string, shards int, r io.Reader) (*Engine, error) {
	router, err := shard.NewRouter(byAttr, shards)
	if err != nil {
		return nil, err
	}
	inner, err := shard.Restore(router, func(_ int, pr io.Reader) (engine.Engine, error) {
		return restoreSingle(q.plan, pr)
	}, r)
	if err != nil {
		return nil, err
	}
	return &Engine{inner: inner}, nil
}

// Run consumes events from in until it closes or ctx is cancelled,
// forwarding matches to out; it flushes on end-of-stream and closes out
// before returning. Auto-assignment of Seq is NOT applied on this path —
// feed events with sequence numbers (generators assign them).
//
// When Config.Batch.Size > 1, Run drives the engine's batch path: events
// are accumulated (up to Size, waiting at most Linger for a partial batch)
// and handed to ProcessBatch in one call. Output is identical either way.
func (e *Engine) Run(ctx context.Context, in <-chan Event, out chan<- Match) error {
	p := runtime.NewPipeline(e.inner).WithLatency(e.lat)
	if e.batch.Size > 1 {
		return p.RunBatched(ctx, in, out, e.batch.Size, e.batch.Linger)
	}
	return p.Run(ctx, in, out)
}
