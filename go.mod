module oostream

go 1.22
