package oostream_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"oostream"
	"oostream/internal/engine"
	"oostream/internal/gen"
	"oostream/internal/oracle"
	"oostream/internal/plan"
	"oostream/internal/runtime"
	"oostream/internal/trace"
)

// integrationCase pairs a workload with the queries the examples and
// benchmarks run over it.
type integrationCase struct {
	name    string
	queries []string
	sorted  []oostream.Event
	k       oostream.Time
}

func integrationCases() []integrationCase {
	return []integrationCase{
		{
			name: "rfid",
			queries: []string{
				"PATTERN SEQ(SHELF s, EXIT e) WHERE s.id = e.id WITHIN 6s",
				"PATTERN SEQ(SHELF s, !(COUNTER c), EXIT e) WHERE s.id = e.id AND s.id = c.id WITHIN 6s",
			},
			sorted: gen.RFID(gen.DefaultRFID(150, 101)),
			k:      2_000,
		},
		{
			name: "intrusion",
			queries: []string{
				"PATTERN SEQ(SCAN a, LOGIN l, EXFIL x) WHERE a.src = l.src AND l.src = x.src WITHIN 5s",
				"PATTERN SEQ(SCAN a, !(LOGIN l), EXFIL x) WHERE a.src = x.src AND a.src = l.src WITHIN 3s",
			},
			sorted: gen.Intrusion(gen.DefaultIntrusion(60, 102)),
			k:      1_500,
		},
		{
			name: "stock",
			queries: []string{
				"PATTERN SEQ(TRADE a, TRADE b, TRADE c) WHERE a.sym = b.sym AND b.sym = c.sym AND b.price < a.price AND c.price > b.price WITHIN 150",
			},
			sorted: gen.Stock(gen.DefaultStock(600, 103)),
			k:      300,
		},
	}
}

// TestWorkloadStrategyMatrix is the end-to-end equivalence matrix: for
// every workload and query, every exact strategy on the disordered stream
// reproduces the in-order engine's results on the sorted stream, which in
// turn match the brute-force oracle.
func TestWorkloadStrategyMatrix(t *testing.T) {
	for _, tc := range integrationCases() {
		shuffled := gen.Shuffle(tc.sorted, gen.Disorder{Ratio: 0.25, MaxDelay: tc.k, Seed: 7})
		for qi, src := range tc.queries {
			t.Run(fmt.Sprintf("%s/q%d", tc.name, qi), func(t *testing.T) {
				q := oostream.MustCompile(src, nil)
				truth := oostream.MustNewEngine(q, oostream.Config{Strategy: oostream.StrategyInOrder}).
					ProcessAll(tc.sorted)

				// Cross-check the in-order engine against the oracle.
				p, err := plan.ParseAndCompile(src, nil)
				if err != nil {
					t.Fatal(err)
				}
				oracleMatches := oracle.Matches(p, tc.sorted)
				if ok, diff := oostream.SameResults(truth, oracleMatches); !ok {
					t.Fatalf("in-order engine vs oracle:\n%s", diff)
				}

				for _, strat := range []oostream.Strategy{
					oostream.StrategyKSlack, oostream.StrategyNative, oostream.StrategySpeculate,
				} {
					got := oostream.MustNewEngine(q, oostream.Config{Strategy: strat, K: tc.k}).
						ProcessAll(shuffled)
					if ok, diff := oostream.SameResults(truth, got); !ok {
						t.Errorf("%s under disorder (%d truth matches):\n%s", strat, len(truth), diff)
					}
				}
			})
		}
	}
}

// TestTraceRoundTripThroughEngine writes a disordered workload to the
// JSONL format and replays it: the engine must produce identical results
// from the replayed bytes.
func TestTraceRoundTripThroughEngine(t *testing.T) {
	tc := integrationCases()[0]
	shuffled := gen.Shuffle(tc.sorted, gen.Disorder{Ratio: 0.25, MaxDelay: tc.k, Seed: 9})
	q := oostream.MustCompile(tc.queries[1], nil)
	want := oostream.MustNewEngine(q, oostream.Config{K: tc.k}).ProcessAll(shuffled)

	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	if err := w.WriteAll(shuffled); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	replayed, err := trace.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	got := oostream.MustNewEngine(q, oostream.Config{K: tc.k}).ProcessAll(replayed)
	if ok, diff := oostream.SameResults(want, got); !ok {
		t.Fatalf("replay differs:\n%s", diff)
	}
}

// TestFanoutAllStrategies runs all four strategies concurrently over one
// disordered stream through the fan-out runtime and checks each against
// its sequential run.
func TestFanoutAllStrategies(t *testing.T) {
	tc := integrationCases()[0]
	shuffled := gen.Shuffle(tc.sorted, gen.Disorder{Ratio: 0.25, MaxDelay: tc.k, Seed: 11})
	q := oostream.MustCompile(tc.queries[1], nil)

	sequential := map[string][]oostream.Match{}
	var engines []engine.Engine
	for _, strat := range oostream.Strategies() {
		cfg := oostream.Config{Strategy: strat, K: tc.k}
		sequential[string(strat)] = oostream.MustNewEngine(q, cfg).ProcessAll(shuffled)
		engines = append(engines, oostream.MustNewEngine(q, cfg).Raw().(engine.Engine))
	}

	f := runtime.NewFanout(engines...)
	in := make(chan oostream.Event)
	out := make(chan runtime.Tagged, 1)
	ctx := context.Background()
	go func() { _ = runtime.FeedSlice(ctx, shuffled, in) }()
	byEngine := map[string][]oostream.Match{}
	errCh := make(chan error, 1)
	go func() { errCh <- f.Run(ctx, in, out) }()
	for tg := range out {
		byEngine[tg.Engine] = append(byEngine[tg.Engine], tg.Match)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	for name, want := range sequential {
		if ok, diff := oostream.SameResults(want, byEngine[name]); !ok {
			t.Errorf("%s via fanout differs:\n%s", name, diff)
		}
	}
}

// TestLateDropAccounting checks that when the true disorder exceeds the
// configured K, the native engine reports the violations rather than
// silently mis-answering.
func TestLateDropAccounting(t *testing.T) {
	tc := integrationCases()[0]
	// Disorder up to 2000ms but K configured at 200ms.
	shuffled := gen.Shuffle(tc.sorted, gen.Disorder{Ratio: 0.3, MaxDelay: 2_000, Seed: 13})
	q := oostream.MustCompile(tc.queries[0], nil)
	en := oostream.MustNewEngine(q, oostream.Config{K: 200})
	en.ProcessAll(shuffled)
	if en.Metrics().EventsLate == 0 {
		t.Fatal("under-configured K must surface late events")
	}
}
