// Benchmarks: one per experiment of the reproduced evaluation (DESIGN.md
// §4). Each benchmark measures engine processing cost (ns/op over a whole
// stream; derive events/sec as stream length / time) at representative
// sweep points; cmd/espbench regenerates the full tables with all points
// and the derived columns.
package oostream_test

import (
	"context"
	"fmt"
	"os"
	"sort"
	"testing"

	"oostream"
	"oostream/internal/engine"
	"oostream/internal/fiba"
	"oostream/internal/gen"
	"oostream/internal/kslack"
	"oostream/internal/netsim"
	"oostream/internal/shard"
)

const (
	benchItems  = 2_000
	benchK      = oostream.Time(2_000)
	benchWindow = "6s"
)

func benchSeqQuery(tb testing.TB) *oostream.Query {
	q, err := oostream.Compile(
		"PATTERN SEQ(SHELF s, EXIT e) WHERE s.id = e.id WITHIN "+benchWindow,
		gen.RFIDSchema())
	if err != nil {
		tb.Fatal(err)
	}
	return q
}

func benchNegQuery(tb testing.TB) *oostream.Query {
	q, err := oostream.Compile(`
		PATTERN SEQ(SHELF s, !(COUNTER c), EXIT e)
		WHERE s.id = e.id AND s.id = c.id
		WITHIN `+benchWindow, gen.RFIDSchema())
	if err != nil {
		tb.Fatal(err)
	}
	return q
}

func benchStream(ratio float64, k oostream.Time) []oostream.Event {
	sorted := gen.RFID(gen.DefaultRFID(benchItems, 1))
	return gen.Shuffle(sorted, gen.Disorder{Ratio: ratio, MaxDelay: k, Seed: 2})
}

// run measures one full pass of the stream per iteration and reports
// throughput.
func run(b *testing.B, q *oostream.Query, cfg oostream.Config, events []oostream.Event) {
	b.Helper()
	b.ReportAllocs()
	var matches int
	for i := 0; i < b.N; i++ {
		en, err := oostream.NewEngine(q, cfg)
		if err != nil {
			b.Fatal(err)
		}
		matches = len(en.ProcessAll(events))
	}
	b.ReportMetric(float64(len(events)*b.N)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(float64(matches), "matches")
}

// BenchmarkE1Correctness drives the correctness experiment's workload
// (negation query, every strategy) at 20% disorder. Precision/recall are
// asserted in internal/bench tests; here the cost of being correct is the
// measurement.
func BenchmarkE1Correctness(b *testing.B) {
	q := benchNegQuery(b)
	events := benchStream(0.20, benchK)
	for _, strat := range oostream.Strategies() {
		b.Run(string(strat), func(b *testing.B) {
			run(b, q, oostream.Config{Strategy: strat, K: benchK}, events)
		})
	}
}

// BenchmarkE2ThroughputVsDisorder sweeps the disorder ratio for the three
// strategies of the CPU-cost figure.
func BenchmarkE2ThroughputVsDisorder(b *testing.B) {
	q := benchSeqQuery(b)
	for _, ratio := range []float64{0, 0.10, 0.40} {
		events := benchStream(ratio, benchK)
		for _, strat := range []oostream.Strategy{oostream.StrategyInOrder, oostream.StrategyKSlack, oostream.StrategyNative} {
			b.Run(fmt.Sprintf("ooo=%.0f%%/%s", ratio*100, strat), func(b *testing.B) {
				run(b, q, oostream.Config{Strategy: strat, K: benchK}, events)
			})
		}
	}
}

// BenchmarkE3ThroughputVsK sweeps the slack bound.
func BenchmarkE3ThroughputVsK(b *testing.B) {
	q := benchSeqQuery(b)
	for _, k := range []oostream.Time{100, 2_000, 10_000} {
		events := benchStream(0.10, k)
		for _, strat := range []oostream.Strategy{oostream.StrategyKSlack, oostream.StrategyNative} {
			b.Run(fmt.Sprintf("K=%d/%s", k, strat), func(b *testing.B) {
				run(b, q, oostream.Config{Strategy: strat, K: k}, events)
			})
		}
	}
}

// BenchmarkE4MemoryVsK is E3's sweep with peak state reported as the
// metric of interest.
func BenchmarkE4MemoryVsK(b *testing.B) {
	q := benchSeqQuery(b)
	for _, k := range []oostream.Time{100, 10_000} {
		events := benchStream(0.10, k)
		for _, strat := range []oostream.Strategy{oostream.StrategyKSlack, oostream.StrategyNative} {
			b.Run(fmt.Sprintf("K=%d/%s", k, strat), func(b *testing.B) {
				b.ReportAllocs()
				peak := 0
				for i := 0; i < b.N; i++ {
					en := oostream.MustNewEngine(q, oostream.Config{Strategy: strat, K: k})
					en.ProcessAll(events)
					peak = en.Metrics().PeakState
				}
				b.ReportMetric(float64(peak), "peak_state")
			})
		}
	}
}

// BenchmarkE5Window sweeps the window size on the native engine.
func BenchmarkE5Window(b *testing.B) {
	events := benchStream(0.10, benchK)
	for _, w := range []int{1_000, 10_000, 100_000} {
		q, err := oostream.Compile(fmt.Sprintf(
			"PATTERN SEQ(SHELF s, EXIT e) WHERE s.id = e.id WITHIN %d", w),
			gen.RFIDSchema())
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("W=%d", w), func(b *testing.B) {
			run(b, q, oostream.Config{K: benchK}, events)
		})
	}
}

// BenchmarkE6PurgeAblation compares purge cadences.
func BenchmarkE6PurgeAblation(b *testing.B) {
	q := benchSeqQuery(b)
	events := benchStream(0.10, benchK)
	for _, pe := range []int{1, 64, -1} {
		name := fmt.Sprintf("purgeEvery=%d", pe)
		if pe < 0 {
			name = "purgeEvery=never"
		}
		b.Run(name, func(b *testing.B) {
			run(b, q, oostream.Config{K: benchK, PurgeEvery: pe}, events)
		})
	}
}

// BenchmarkE7OptAblation compares the optimized scan against probe-always.
func BenchmarkE7OptAblation(b *testing.B) {
	q := benchSeqQuery(b)
	for _, ratio := range []float64{0.01, 0.40} {
		events := benchStream(ratio, benchK)
		b.Run(fmt.Sprintf("ooo=%.0f%%/optimized", ratio*100), func(b *testing.B) {
			run(b, q, oostream.Config{K: benchK}, events)
		})
		b.Run(fmt.Sprintf("ooo=%.0f%%/probe-always", ratio*100), func(b *testing.B) {
			run(b, q, oostream.Config{K: benchK, DisableTriggerOpt: true}, events)
		})
	}
}

// BenchmarkE8Latency measures processing cost at the latency experiment's
// sweep points; the latency distributions themselves are summarized by
// cmd/espbench (they are outputs, not costs).
func BenchmarkE8Latency(b *testing.B) {
	q := benchSeqQuery(b)
	events := benchStream(0.10, 10_000)
	for _, strat := range []oostream.Strategy{oostream.StrategyKSlack, oostream.StrategyNative, oostream.StrategySpeculate} {
		b.Run(string(strat), func(b *testing.B) {
			b.ReportAllocs()
			var mean float64
			for i := 0; i < b.N; i++ {
				en := oostream.MustNewEngine(q, oostream.Config{Strategy: strat, K: 10_000})
				en.ProcessAll(events)
				mean = en.Metrics().LogicalLat.Mean()
			}
			b.ReportMetric(mean, "lat_mean_ms")
		})
	}
}

// BenchmarkE9PatternLength sweeps the pattern length on a uniform stream.
func BenchmarkE9PatternLength(b *testing.B) {
	allTypes := []string{"T1", "T2", "T3", "T4", "T5", "T6"}
	sorted := gen.Uniform(5_000, allTypes, 4, 10, 17)
	events := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.10, MaxDelay: 200, Seed: 18})
	for _, n := range []int{2, 4, 6} {
		src := "PATTERN SEQ("
		for i := 0; i < n; i++ {
			if i > 0 {
				src += ", "
			}
			src += fmt.Sprintf("T%d v%d", i+1, i+1)
		}
		src += ") WHERE v1.id = v2.id WITHIN 400"
		q, err := oostream.Compile(src, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			run(b, q, oostream.Config{K: 200}, events)
		})
	}
}

// BenchmarkE10Negation measures the shoplifting query per strategy.
func BenchmarkE10Negation(b *testing.B) {
	q := benchNegQuery(b)
	events := benchStream(0.10, benchK)
	for _, strat := range oostream.Strategies() {
		b.Run(string(strat), func(b *testing.B) {
			run(b, q, oostream.Config{Strategy: strat, K: benchK}, events)
		})
	}
}

// BenchmarkE11Speculation measures the aggressive engine across disorder,
// reporting the retraction rate.
func BenchmarkE11Speculation(b *testing.B) {
	q := benchNegQuery(b)
	for _, ratio := range []float64{0, 0.20, 0.40} {
		events := benchStream(ratio, benchK)
		b.Run(fmt.Sprintf("ooo=%.0f%%", ratio*100), func(b *testing.B) {
			b.ReportAllocs()
			var rate float64
			for i := 0; i < b.N; i++ {
				en := oostream.MustNewEngine(q, oostream.Config{Strategy: oostream.StrategySpeculate, K: benchK})
				en.ProcessAll(events)
				m := en.Metrics()
				if m.Matches > 0 {
					rate = float64(m.Retractions) / float64(m.Matches)
				}
			}
			b.ReportMetric(float64(len(events)*b.N)/b.Elapsed().Seconds(), "events/s")
			b.ReportMetric(rate, "retract_rate")
		})
	}
}

// BenchmarkComponents isolates the substrate hot paths so regressions can
// be localized below the engine level.
func BenchmarkComponents(b *testing.B) {
	b.Run("kslack-buffer", func(b *testing.B) {
		events := benchStream(0.20, benchK)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf := kslack.NewBuffer(benchK)
			for _, e := range events {
				buf.Push(e)
			}
			buf.Flush()
		}
	})
	b.Run("query-compile", func(b *testing.B) {
		schema := gen.RFIDSchema()
		for i := 0; i < b.N; i++ {
			_, err := oostream.Compile(
				"PATTERN SEQ(SHELF s, !(COUNTER c), EXIT e) WHERE s.id = e.id AND s.id = c.id WITHIN 6s",
				schema)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE12NetworkSim measures each strategy over a mechanistically
// delivered stream (link jitter + failure bursts) with K at the realized
// max delay.
func BenchmarkE12NetworkSim(b *testing.B) {
	q := benchSeqQuery(b)
	sorted := gen.RFID(gen.DefaultRFID(benchItems, 1))
	delivered, _, prof, err := netsim.Deliver(sorted, netsim.Config{
		Sources: 8,
		Link:    netsim.DefaultLink(),
		Failure: netsim.FailureConfig{MTBF: 60_000, OutageMean: 2_000},
		Seed:    24,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, strat := range []oostream.Strategy{oostream.StrategyKSlack, oostream.StrategyNative, oostream.StrategySpeculate} {
		b.Run(string(strat), func(b *testing.B) {
			run(b, q, oostream.Config{Strategy: strat, K: prof.MaxDelay}, delivered)
		})
	}
}

// BenchmarkE13Partitioned measures key-partitioned scale-out (sequential
// shard routing; the speed-up beyond bookkeeping comes from smaller
// per-shard state).
func BenchmarkE13Partitioned(b *testing.B) {
	q := benchNegQuery(b)
	events := benchStream(0.10, benchK)
	b.Run("shards=1", func(b *testing.B) {
		run(b, q, oostream.Config{K: benchK}, events)
	})
	for _, shards := range []int{4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			var matches int
			for i := 0; i < b.N; i++ {
				en, err := oostream.NewEngine(q, oostream.Config{K: benchK,
					Partition: oostream.Partition{Attr: "id", Shards: shards}})
				if err != nil {
					b.Fatal(err)
				}
				matches = len(en.ProcessAll(events))
			}
			b.ReportMetric(float64(len(events)*b.N)/b.Elapsed().Seconds(), "events/s")
			b.ReportMetric(float64(matches), "matches")
		})
	}
}

// BenchmarkE14KeyedStacks compares the native engine with key-partitioned
// stacks on (the default for this equality-linked query) and off across
// key cardinalities.
func BenchmarkE14KeyedStacks(b *testing.B) {
	q, err := oostream.Compile(
		"PATTERN SEQ(SHELF s, !(COUNTER c), EXIT e) WHERE s.id = e.id AND s.id = c.id WITHIN 400", nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, ids := range []int{1, 100, 1000} {
		sorted := gen.Uniform(5_000, []string{"SHELF", "COUNTER", "EXIT"}, ids, 10, int64(27+ids))
		events := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.10, MaxDelay: 200, Seed: 28})
		b.Run(fmt.Sprintf("ids=%d/keyed", ids), func(b *testing.B) {
			run(b, q, oostream.Config{K: 200}, events)
		})
		b.Run(fmt.Sprintf("ids=%d/unkeyed", ids), func(b *testing.B) {
			run(b, q, oostream.Config{K: 200, DisableKeyedStacks: true}, events)
		})
	}
}

// BenchmarkE15RecoveryOverhead measures the fault-tolerance tax: the
// supervised runtime (write-ahead log + admission control + periodic
// durable checkpoints) over the native engine, swept by checkpoint
// interval, against the unsupervised engine. "wal-only" logs events but
// never snapshots. Fsync is disabled so the numbers isolate protocol cost
// (serialization, CRC framing, admission bookkeeping) from disk sync
// latency, which SyncEveryEvent would make the only visible term.
func BenchmarkE15RecoveryOverhead(b *testing.B) {
	q := benchNegQuery(b)
	events := benchStream(0.10, benchK)
	b.Run("unsupervised", func(b *testing.B) {
		run(b, q, oostream.Config{K: benchK}, events)
	})
	for _, every := range []int{0, 100, 1000} {
		name := fmt.Sprintf("ckpt-every=%d", every)
		if every == 0 {
			name = "wal-only"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var matches int
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir, err := os.MkdirTemp("", "oobench-*")
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				en, err := oostream.NewSupervisedEngine(q, oostream.Config{K: benchK},
					oostream.SupervisorConfig{Dir: dir, CheckpointEvery: every, DisableFsync: true})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := en.Start(); err != nil {
					b.Fatal(err)
				}
				ms, err := en.ProcessAll(events)
				if err != nil {
					b.Fatal(err)
				}
				matches = len(ms)
				if err := en.Close(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				os.RemoveAll(dir)
				b.StartTimer()
			}
			b.ReportMetric(float64(len(events)*b.N)/b.Elapsed().Seconds(), "events/s")
			b.ReportMetric(float64(matches), "matches")
		})
	}
}

// BenchmarkE16ObsvOverhead prices the live observability layer: the native
// engine uninstrumented, with its counters bound to a registry series, and
// with a flight-recorder trace hook on top. The acceptance bar for the
// layer is the registry+trace case staying within a few percent of off.
func BenchmarkE16ObsvOverhead(b *testing.B) {
	q := benchSeqQuery(b)
	events := benchStream(0.20, benchK)
	b.Run("off", func(b *testing.B) {
		run(b, q, oostream.Config{K: benchK}, events)
	})
	b.Run("registry", func(b *testing.B) {
		run(b, q, oostream.Config{K: benchK, Observer: oostream.NewObserver()}, events)
	})
	b.Run("registry+trace", func(b *testing.B) {
		cfg := oostream.Config{K: benchK, Observer: oostream.NewObserver(),
			Trace: oostream.NewFlightRecorder(256)}
		run(b, q, cfg, events)
	})
}

// BenchmarkE18Batch prices the batched admission path: the native engine
// driven through ProcessBatch at sweep batch sizes (1 = the per-event
// degenerate case, paying only the dispatch wrapper) with key-partitioned
// stacks on and off. The wins are amortized purge/gauge work and deferred
// state reclamation; output is identical to per-event processing by the
// BatchProcessor contract (proved by internal/difftest.RunBatch).
func BenchmarkE18Batch(b *testing.B) {
	q := benchSeqQuery(b)
	events := benchStream(0.20, benchK)
	for _, size := range []int{1, 16, 256, 4096} {
		for _, mode := range []string{"keyed", "unkeyed"} {
			b.Run(fmt.Sprintf("batch=%d/%s", size, mode), func(b *testing.B) {
				cfg := oostream.Config{K: benchK, DisableKeyedStacks: mode == "unkeyed"}
				b.ReportAllocs()
				var matches int
				for i := 0; i < b.N; i++ {
					en := oostream.MustNewEngine(q, cfg)
					n := 0
					for start := 0; start < len(events); start += size {
						end := start + size
						if end > len(events) {
							end = len(events)
						}
						n += len(en.ProcessBatch(events[start:end]))
					}
					matches = n + len(en.Flush())
				}
				b.ReportMetric(float64(len(events)*b.N)/b.Elapsed().Seconds(), "events/s")
				b.ReportMetric(float64(matches), "matches")
			})
		}
	}
}

// BenchmarkE18BatchParallel measures the goroutine-per-shard topology fed
// through the batched MPSC ring handoff at a fixed batch size, swept by
// shard count. Scaling beyond bookkeeping requires spare cores; on a
// single-CPU host the sweep prices the coordination overhead instead.
func BenchmarkE18BatchParallel(b *testing.B) {
	q := benchNegQuery(b)
	events := benchStream(0.20, benchK)
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d/batch=256", shards), func(b *testing.B) {
			b.ReportAllocs()
			var matches int
			for i := 0; i < b.N; i++ {
				router, err := shard.NewRouter("id", shards)
				if err != nil {
					b.Fatal(err)
				}
				par, err := shard.NewParallel(router, func(int) (engine.Engine, error) {
					sub, err := oostream.NewEngine(q, oostream.Config{K: benchK})
					if err != nil {
						return nil, err
					}
					return sub.Raw().(engine.Engine), nil
				})
				if err != nil {
					b.Fatal(err)
				}
				ms, err := par.DrainBatches(context.Background(), events, 256)
				if err != nil {
					b.Fatal(err)
				}
				matches = len(ms)
			}
			b.ReportMetric(float64(len(events)*b.N)/b.Elapsed().Seconds(), "events/s")
			b.ReportMetric(float64(matches), "matches")
		})
	}
}

// BenchmarkE17Provenance prices match lineage: the negation workload with
// provenance off (the default — engines skip all record construction
// behind one predictable branch) and on (every emitted match carries a
// full lineage record, and pending matches retain theirs until sealing).
// The acceptance bar is off being indistinguishable from the E1 native
// baseline and on staying within ~10% of off.
func BenchmarkE17Provenance(b *testing.B) {
	q := benchNegQuery(b)
	events := benchStream(0.20, benchK)
	for _, strat := range []oostream.Strategy{oostream.StrategyNative, oostream.StrategySpeculate} {
		b.Run(string(strat)+"/off", func(b *testing.B) {
			run(b, q, oostream.Config{Strategy: strat, K: benchK}, events)
		})
		b.Run(string(strat)+"/on", func(b *testing.B) {
			run(b, q, oostream.Config{Strategy: strat, K: benchK, Provenance: true}, events)
		})
	}
}

// BenchmarkE19MultiQuery prices shared admission: a QuerySet holding N
// sparse two-step queries over a 200-type universe versus a loop of N
// independent native engines fed the same stream. The QuerySet pays
// reorder/purge once per event and dispatches through its type index; the
// loop pays full admission per (engine, event) pair. Per-query output
// equivalence is proved by internal/difftest.RunMulti; here the cost gap
// is the measurement.
func BenchmarkE19MultiQuery(b *testing.B) {
	const nTypes = 200
	types := make([]string, nTypes)
	for i := range types {
		types[i] = fmt.Sprintf("T%d", i)
	}
	events := gen.Shuffle(gen.Uniform(benchItems, types, 8, 10, 91),
		gen.Disorder{Ratio: 0.20, MaxDelay: 200, Seed: 92})
	for _, n := range []int{10, 100} {
		queries := make([]*oostream.Query, n)
		for i := range queries {
			a, c := (i*7)%nTypes, (i*13+1)%nTypes
			if a == c {
				c = (c + 1) % nTypes
			}
			queries[i] = oostream.MustCompile(fmt.Sprintf(
				"PATTERN SEQ(T%d x0, T%d x1) WHERE x0.id = x1.id WITHIN 400", a, c), nil)
		}
		b.Run(fmt.Sprintf("queries=%d/queryset", n), func(b *testing.B) {
			b.ReportAllocs()
			var matches int
			for i := 0; i < b.N; i++ {
				set := oostream.MustNewQuerySet(oostream.QuerySetConfig{K: 200})
				for j, q := range queries {
					if err := set.Register(fmt.Sprintf("q%d", j), q); err != nil {
						b.Fatal(err)
					}
				}
				matches = len(set.ProcessAll(events))
			}
			b.ReportMetric(float64(len(events)*b.N)/b.Elapsed().Seconds(), "events/s")
			b.ReportMetric(float64(matches), "matches")
		})
		b.Run(fmt.Sprintf("queries=%d/loop", n), func(b *testing.B) {
			b.ReportAllocs()
			var matches int
			for i := 0; i < b.N; i++ {
				matches = 0
				for _, q := range queries {
					en := oostream.MustNewEngine(q, oostream.Config{K: 200})
					matches += len(en.ProcessAll(events))
				}
			}
			b.ReportMetric(float64(len(events)*b.N)/b.Elapsed().Seconds(), "events/s")
			b.ReportMetric(float64(matches), "matches")
		})
	}
}

// BenchmarkE21Fiba compares the two ways to maintain a sliding MAX over an
// out-of-order element stream, data structures alone (no pattern engine):
// the FiBA tree answering each window from O(log n) cached partials, versus
// the brute-force sorted slice that rescans every in-window element at
// every seal. MAX has no subtract-on-evict shortcut, so the rescan is the
// honest alternative. At dense windows (many elements, fine slide) the
// rescan degenerates quadratically while the tree stays logarithmic; the
// elems/win axis locates the crossover. E21 in EXPERIMENTS.md runs the
// same comparison end-to-end through the aggregate operator.
func BenchmarkE21Fiba(b *testing.B) {
	const (
		n     = 100_000
		k     = 1_000 // disorder bound: late elements land within k of the clock
		slide = oostream.Time(10)
	)
	// Deterministic element stream: ts marches 1/element, ~10% delivered
	// late by up to k, values from a fixed LCG.
	type elem struct {
		ts  oostream.Time
		seq uint64
		val int64
	}
	elems := make([]elem, n)
	rng := uint64(1)
	for i := range elems {
		rng = rng*6364136223846793005 + 1442695040888963407
		elems[i] = elem{ts: oostream.Time(i), seq: uint64(i), val: int64(rng >> 40)}
	}
	for i := range elems {
		rng = rng*6364136223846793005 + 1442695040888963407
		if rng%10 == 0 {
			d := int(rng>>32) % k
			if j := i - d; j >= 0 {
				elems[i], elems[j] = elems[j], elems[i]
			}
		}
	}
	for _, window := range []oostream.Time{1_000, 16_000, 64_000} {
		label := fmt.Sprintf("elems/win=%d", window)
		b.Run(label+"/fiba", func(b *testing.B) {
			b.ReportAllocs()
			var sink int64
			for i := 0; i < b.N; i++ {
				t := fiba.New()
				var clock, nextEnd oostream.Time
				nextEnd = slide
				for _, e := range elems {
					t.Insert(fiba.Key{TS: e.ts, Seq: e.seq}, fiba.Of(oostream.Int(e.val)), nil)
					if e.ts > clock {
						clock = e.ts
						for nextEnd < clock-k {
							p := t.Query(fiba.Key{TS: nextEnd - window, Seq: fiba.MaxSeq},
								fiba.Key{TS: nextEnd, Seq: fiba.MaxSeq})
							if v, ok := p.Max.AsInt(); ok {
								sink ^= v
							}
							t.PurgeThrough(fiba.Key{TS: nextEnd + slide - window, Seq: fiba.MaxSeq}, nil)
							nextEnd += slide
						}
					}
				}
			}
			b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "elems/s")
			_ = sink
		})
		b.Run(label+"/rescan", func(b *testing.B) {
			b.ReportAllocs()
			var sink int64
			for i := 0; i < b.N; i++ {
				var buf []elem // sorted by ts
				var clock, nextEnd oostream.Time
				nextEnd = slide
				for _, e := range elems {
					at := sort.Search(len(buf), func(j int) bool { return buf[j].ts > e.ts })
					buf = append(buf, elem{})
					copy(buf[at+1:], buf[at:])
					buf[at] = e
					if e.ts > clock {
						clock = e.ts
						for nextEnd < clock-k {
							lo := sort.Search(len(buf), func(j int) bool { return buf[j].ts > nextEnd-window })
							hi := sort.Search(len(buf), func(j int) bool { return buf[j].ts > nextEnd })
							if lo < hi {
								max := buf[lo].val
								for _, x := range buf[lo+1 : hi] {
									if x.val > max {
										max = x.val
									}
								}
								sink ^= max
							}
							drop := sort.Search(len(buf), func(j int) bool { return buf[j].ts > nextEnd+slide-window })
							buf = buf[drop:]
							nextEnd += slide
						}
					}
				}
			}
			b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "elems/s")
			_ = sink
		})
	}
}
