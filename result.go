package oostream

import "context"

// ResultKind discriminates the two variants of a Result.
type ResultKind int

const (
	// ResultMatch is a pattern occurrence (or its Retract compensation
	// under the speculative strategy).
	ResultMatch ResultKind = iota + 1
	// ResultAggregate is one window's aggregate value for an AGGREGATE
	// query (or, under the speculative strategy, one half of a
	// retract+insert revision of a previously previewed window).
	ResultAggregate
)

// String names the kind.
func (k ResultKind) String() string {
	switch k {
	case ResultMatch:
		return "match"
	case ResultAggregate:
		return "aggregate"
	default:
		return "unknown"
	}
}

// Aggregate is the payload of an aggregate result: one window's value.
type Aggregate struct {
	// Func is the aggregation function name (COUNT/SUM/AVG/MIN/MAX).
	Func string
	// WindowStart and WindowEnd bound the half-open window
	// (WindowStart, WindowEnd]; WindowEnd is a multiple of the SLIDE pitch.
	WindowStart Time
	WindowEnd   Time
	// Group is the GROUP BY key; valid only when HasGroup.
	Group    Value
	HasGroup bool
	// Value is the aggregate result. COUNT and int-only SUM are KindInt;
	// AVG and float-tainted SUM are KindFloat; MIN/MAX keep the attribute's
	// kind.
	Value Value
	// Count is the number of pattern matches that contributed.
	Count int64
}

// Result is the unified engine output record: a pattern match or a
// windowed aggregate, distinguished by Kind. It is a view over Match —
// every Match-returning engine method has a Result-returning counterpart
// and both see the same stream of records.
type Result struct {
	m Match
}

// AsResult wraps one engine-emitted match in its Result view.
func AsResult(m Match) Result { return Result{m: m} }

// Results converts a slice of engine-emitted matches to the Result view.
func Results(ms []Match) []Result {
	if len(ms) == 0 {
		return nil
	}
	out := make([]Result, len(ms))
	for i, m := range ms {
		out[i] = Result{m: m}
	}
	return out
}

// Kind reports which variant this result is.
func (r Result) Kind() ResultKind {
	if r.m.Agg != nil {
		return ResultAggregate
	}
	return ResultMatch
}

// Retracted reports whether this result withdraws an earlier one: a
// speculative pattern retraction, or the retract half of an aggregate
// revision. Consumers that apply retractions (e.g. via SameResults'
// multiset semantics) converge to the exact result set.
func (r Result) Retracted() bool { return r.m.Kind == Retract }

// Match returns the underlying match record. It is always valid: aggregate
// results carry a placeholder window event (stamped with the window end)
// plus the Agg payload, so restamping, latency accounting, and lineage
// work uniformly across both kinds.
func (r Result) Match() Match { return r.m }

// Aggregate returns the window value of an aggregate result; ok is false
// for pattern matches.
func (r Result) Aggregate() (Aggregate, bool) {
	a := r.m.Agg
	if a == nil {
		return Aggregate{}, false
	}
	return Aggregate{
		Func:        a.Func,
		WindowStart: a.WindowStart,
		WindowEnd:   a.WindowEnd,
		Group:       a.Group,
		HasGroup:    a.HasGroup,
		Value:       a.Value,
		Count:       a.Count,
	}, true
}

// String renders the result on one line.
func (r Result) String() string {
	s := r.m.String()
	if r.Retracted() {
		return "retract " + s
	}
	return s
}

// ProcessResults is Process under the unified Result view.
func (e *Engine) ProcessResults(ev Event) []Result { return Results(e.Process(ev)) }

// ProcessBatchResults is ProcessBatch under the unified Result view.
func (e *Engine) ProcessBatchResults(events []Event) []Result {
	return Results(e.ProcessBatch(events))
}

// ProcessAllResults is ProcessAll under the unified Result view.
func (e *Engine) ProcessAllResults(events []Event) []Result {
	return Results(e.ProcessAll(events))
}

// AdvanceResults is Advance under the unified Result view.
func (e *Engine) AdvanceResults(ts Time) []Result { return Results(e.Advance(ts)) }

// FlushResults is Flush under the unified Result view.
func (e *Engine) FlushResults() []Result { return Results(e.Flush()) }

// RunResults is Run under the unified Result view: it consumes events from
// in until it closes or ctx is cancelled, forwards results to out, flushes
// on end-of-stream, and closes out before returning. Batched ingestion
// (Config.Batch) applies exactly as in Run.
func (e *Engine) RunResults(ctx context.Context, in <-chan Event, out chan<- Result) error {
	mid := make(chan Match, cap(out)+1)
	done := make(chan error, 1)
	go func() { done <- e.Run(ctx, in, mid) }()
	for m := range mid {
		out <- Result{m: m}
	}
	close(out)
	return <-done
}
