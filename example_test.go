package oostream_test

import (
	"fmt"

	"oostream"
)

// ExampleCompile shows the query language and the compile-time checks a
// schema enables.
func ExampleCompile() {
	schema := oostream.NewSchema()
	schema.Declare("LOW", map[string]oostream.Kind{"sensor": oostream.KindInt})
	schema.Declare("HIGH", map[string]oostream.Kind{"sensor": oostream.KindInt})

	q, err := oostream.Compile(`
		PATTERN SEQ(LOW l, HIGH h)
		WHERE   l.sensor = h.sensor
		WITHIN  10s`, schema)
	if err != nil {
		fmt.Println("compile error:", err)
		return
	}
	fmt.Println(q.Source())
	fmt.Println("window:", q.Window(), "ms; partitionable by sensor:", q.PartitionableBy("sensor"))
	// Output:
	// PATTERN SEQ(LOW l, HIGH h) WHERE (l.sensor = h.sensor) WITHIN 10000ms
	// window: 10000 ms; partitionable by sensor: true
}

// ExampleEngine_Process demonstrates native out-of-order handling: the
// match is emitted the moment its late first element arrives.
func ExampleEngine_Process() {
	q := oostream.MustCompile("PATTERN SEQ(A a, B b) WITHIN 100", nil)
	en := oostream.MustNewEngine(q, oostream.Config{
		Strategy: oostream.StrategyNative,
		K:        50,
	})
	// B arrives first even though A precedes it in event time.
	fmt.Println("after B:", len(en.Process(oostream.Event{Type: "B", TS: 20, Seq: 2})))
	matches := en.Process(oostream.Event{Type: "A", TS: 10, Seq: 1})
	fmt.Println("after late A:", len(matches))
	fmt.Println("match key:", matches[0].Key())
	// Output:
	// after B: 0
	// after late A: 1
	// match key: 1|2
}

// ExampleEngine_Advance shows heartbeats sealing negation output through
// stream silence.
func ExampleEngine_Advance() {
	q := oostream.MustCompile("PATTERN SEQ(A a, !(N n), B b) WITHIN 100", nil)
	en := oostream.MustNewEngine(q, oostream.Config{K: 50})
	en.Process(oostream.Event{Type: "A", TS: 10, Seq: 1})
	pending := en.Process(oostream.Event{Type: "B", TS: 30, Seq: 2})
	fmt.Println("on completion:", len(pending))
	sealed := en.Advance(80) // safe clock 30 reaches the gap's end
	fmt.Println("after heartbeat:", len(sealed))
	// Output:
	// on completion: 0
	// after heartbeat: 1
}

// ExampleEngine_ProcessAllResults builds a latency alert: the average
// response time per tumbling window, emitted only when it crosses the
// threshold in the HAVING clause.
func ExampleEngine_ProcessAllResults() {
	q := oostream.MustCompile(`
		AGGREGATE AVG(r.ms) OVER SEQ(REQ q, RESP r)
		WHERE  q.id = r.id
		WITHIN 100
		HAVING w.value > 50`, nil)
	en := oostream.MustNewEngine(q, oostream.Config{K: 20})
	stream := []oostream.Event{
		{Type: "REQ", TS: 10, Seq: 1, Attrs: oostream.Attrs{"id": oostream.Int(1)}},
		{Type: "RESP", TS: 20, Seq: 2, Attrs: oostream.Attrs{"id": oostream.Int(1), "ms": oostream.Int(80)}},
		{Type: "REQ", TS: 30, Seq: 3, Attrs: oostream.Attrs{"id": oostream.Int(2)}},
		{Type: "RESP", TS: 40, Seq: 4, Attrs: oostream.Attrs{"id": oostream.Int(2), "ms": oostream.Int(40)}},
		// Second window: both responses fast, so HAVING suppresses it.
		{Type: "REQ", TS: 110, Seq: 5, Attrs: oostream.Attrs{"id": oostream.Int(3)}},
		{Type: "RESP", TS: 120, Seq: 6, Attrs: oostream.Attrs{"id": oostream.Int(3), "ms": oostream.Int(10)}},
	}
	results := en.ProcessAllResults(stream)
	results = append(results, en.FlushResults()...)
	for _, r := range results {
		if a, ok := r.Aggregate(); ok {
			fmt.Printf("alert: avg %s ms over %d responses in (%d,%d]\n",
				a.Value, a.Count, a.WindowStart, a.WindowEnd)
		}
	}
	// Output:
	// alert: avg 60 ms over 2 responses in (0,100]
}

// ExampleConfig shows the strategy trade-off on one disordered stream.
func ExampleConfig() {
	q := oostream.MustCompile("PATTERN SEQ(A a, B b) WITHIN 100", nil)
	stream := []oostream.Event{
		{Type: "B", TS: 20, Seq: 2}, // out of order
		{Type: "A", TS: 10, Seq: 1},
		{Type: "A", TS: 200, Seq: 3},
		{Type: "B", TS: 210, Seq: 4},
	}
	for _, strat := range []oostream.Strategy{oostream.StrategyInOrder, oostream.StrategyNative} {
		en := oostream.MustNewEngine(q, oostream.Config{Strategy: strat, K: 50})
		fmt.Printf("%s: %d matches\n", strat, len(en.ProcessAll(stream)))
	}
	// Output:
	// inorder: 1 matches
	// native: 2 matches
}
