package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E1", "E11"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("list missing %s: %s", id, out.String())
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "E3", "-scale", "smoke"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "E3: Throughput vs. slack bound K") {
		t.Errorf("output: %s", out.String())
	}
}

func TestRunCSV(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "E3", "-csv"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "# E3,") {
		t.Errorf("CSV header missing: %s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "bogus"}, &out); err == nil {
		t.Error("bad scale accepted")
	}
	if err := run([]string{"-exp", "E99"}, &out); err == nil {
		t.Error("bad experiment accepted")
	}
}
