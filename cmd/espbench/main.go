// Command espbench regenerates the evaluation tables of the reproduced
// paper (see DESIGN.md §4 for the per-experiment index and EXPERIMENTS.md
// for recorded results).
//
// Usage:
//
//	espbench                 # every experiment at smoke scale
//	espbench -scale full     # paper-scale streams (slower)
//	espbench -exp E2,E8      # a subset
//	espbench -csv            # machine-readable output
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"oostream/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "espbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("espbench", flag.ContinueOnError)
	var (
		scaleName = fs.String("scale", "smoke", "workload scale: smoke or full")
		expList   = fs.String("exp", "", "comma-separated experiment IDs (default: all)")
		csv       = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		list      = fs.Bool("list", false, "list experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Fprintf(stdout, "%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}

	var scale bench.Scale
	switch *scaleName {
	case "smoke":
		scale = bench.Smoke
	case "full":
		scale = bench.Full
	default:
		return fmt.Errorf("unknown scale %q (want smoke or full)", *scaleName)
	}

	experiments := bench.All()
	if *expList != "" {
		experiments = experiments[:0]
		for _, id := range strings.Split(*expList, ",") {
			e, err := bench.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			experiments = append(experiments, e)
		}
	}

	for _, e := range experiments {
		tbl := e.Run(scale)
		var err error
		if *csv {
			err = tbl.RenderCSV(stdout)
		} else {
			err = tbl.Render(stdout)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
