// Command espbench regenerates the evaluation tables of the reproduced
// paper (see DESIGN.md §4 for the per-experiment index and EXPERIMENTS.md
// for recorded results).
//
// Usage:
//
//	espbench                       # every experiment at smoke scale
//	espbench -scale full           # paper-scale streams (slower)
//	espbench -exp E2,E8            # a subset
//	espbench -csv                  # machine-readable output
//	espbench -json                 # JSON output (one array of tables)
//	espbench -cpuprofile cpu.out   # pprof CPU profile of the run
//	espbench -memprofile mem.out   # pprof heap profile after the run
//	espbench -queries 100          # multi-query benchmark at one query count
//
// -queries N runs only the multi-query shared-admission benchmark (E19's
// harness) at the single given query count — the cheap CI smoke form of
// the full E19 sweep.
//
// JSON output stamps each table with host metadata (CPU count,
// GOMAXPROCS, Go version) so recorded baselines carry provenance.
//
// The committed BENCH_native.json baseline is regenerated with:
//
//	go run ./cmd/espbench -exp E2,E10,E14,E18,E19,E20,E21,E22 -json > BENCH_native.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"oostream"
	"oostream/internal/bench"
	"oostream/internal/obsv/httpx"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "espbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("espbench", flag.ContinueOnError)
	var (
		scaleName  = fs.String("scale", "smoke", "workload scale: smoke or full")
		expList    = fs.String("exp", "", "comma-separated experiment IDs (default: all)")
		csv        = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonOut    = fs.Bool("json", false, "emit one JSON array of tables")
		list       = fs.Bool("list", false, "list experiments and exit")
		cpuprofile = fs.String("cpuprofile", "", "write a pprof CPU profile of the experiment run to this file")
		memprofile = fs.String("memprofile", "", "write a pprof heap profile taken after the run to this file")
		listen     = fs.String("listen", "", "serve live observability HTTP on this address while experiments run (/metrics, /varz, /healthz, /debug/pprof)")
		queries    = fs.Int("queries", 0, "run only the multi-query benchmark at this registered-query count (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *csv && *jsonOut {
		return fmt.Errorf("-csv and -json are mutually exclusive")
	}
	if *listen != "" {
		reg := oostream.NewObserver()
		bench.Observer = reg
		srv, err := httpx.Listen(*listen, reg, nil, nil, nil)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "espbench: observability on http://%s/metrics\n", srv.Addr())
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Fprintf(stdout, "%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}

	var scale bench.Scale
	switch *scaleName {
	case "smoke":
		scale = bench.Smoke
	case "full":
		scale = bench.Full
	default:
		return fmt.Errorf("unknown scale %q (want smoke or full)", *scaleName)
	}

	if *queries > 0 {
		if *expList != "" {
			return fmt.Errorf("-queries is exclusive with -exp")
		}
		tbl := bench.MultiQuery(scale, []int{*queries})
		tbl.Host = bench.HostInfo()
		if *jsonOut {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			return enc.Encode([]*bench.Table{tbl})
		}
		if *csv {
			return tbl.RenderCSV(stdout)
		}
		return tbl.Render(stdout)
	}

	experiments := bench.All()
	if *expList != "" {
		experiments = experiments[:0]
		for _, id := range strings.Split(*expList, ",") {
			e, err := bench.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			experiments = append(experiments, e)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	var tables []*bench.Table
	host := bench.HostInfo()
	for _, e := range experiments {
		tbl := e.Run(scale)
		tbl.Host = host
		var err error
		switch {
		case *jsonOut:
			tables = append(tables, tbl) // encoded together below
		case *csv:
			err = tbl.RenderCSV(stdout)
		default:
			err = tbl.Render(stdout)
		}
		if err != nil {
			return err
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tables); err != nil {
			return err
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
	}
	return nil
}
