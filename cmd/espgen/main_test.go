package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"oostream/internal/trace"
)

func TestRunWorkloads(t *testing.T) {
	for _, w := range []string{"rfid", "intrusion", "stock", "uniform"} {
		t.Run(w, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run([]string{"-workload", w, "-n", "20", "-seed", "3"}, &buf); err != nil {
				t.Fatal(err)
			}
			events, err := trace.NewReader(&buf).ReadAll()
			if err != nil {
				t.Fatal(err)
			}
			if len(events) == 0 {
				t.Fatal("no events generated")
			}
		})
	}
}

func TestRunDisorderInjection(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-workload", "uniform", "-n", "500", "-ooo", "0.3", "-k", "100"}, &buf); err != nil {
		t.Fatal(err)
	}
	events, err := trace.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	ooo := 0
	maxTS := events[0].TS
	for _, e := range events[1:] {
		if e.TS < maxTS {
			ooo++
		} else {
			maxTS = e.TS
		}
	}
	if ooo == 0 {
		t.Fatal("disorder requested but stream is sorted")
	}
}

func TestRunToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.jsonl")
	var buf bytes.Buffer
	if err := run([]string{"-workload", "uniform", "-n", "10", "-out", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Error("stdout should be empty when -out is set")
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		args    []string
		wantErr string
	}{
		{[]string{"-workload", "bogus"}, "unknown workload"},
		{[]string{"-ooo", "2"}, "-ooo must be"},
		{[]string{"-ooo", "0.5"}, "requires -k"},
	}
	for _, tt := range tests {
		var buf bytes.Buffer
		err := run(tt.args, &buf)
		if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
			t.Errorf("run(%v) = %v, want %q", tt.args, err, tt.wantErr)
		}
	}
}

func TestRunGzipOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.jsonl.gz")
	var buf bytes.Buffer
	if err := run([]string{"-workload", "uniform", "-n", "50", "-out", path}, &buf); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, closer, err := trace.NewAutoReader(f)
	if err != nil {
		t.Fatal(err)
	}
	if closer == nil {
		t.Fatal("output not gzip-compressed")
	}
	defer closer.Close()
	events, err := r.ReadAll()
	if err != nil || len(events) != 50 {
		t.Fatalf("events=%d err=%v", len(events), err)
	}
}

func TestRunNetworkSim(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-workload", "uniform", "-n", "300", "-net", "-mtbf", "2000"}, &buf); err != nil {
		t.Fatal(err)
	}
	events, err := trace.NewReader(&buf).ReadAll()
	if err != nil || len(events) != 300 {
		t.Fatalf("events=%d err=%v", len(events), err)
	}
	if err := run([]string{"-net", "-ooo", "0.5", "-k", "10"}, &buf); err == nil {
		t.Fatal("-net with -ooo should be rejected")
	}
}
