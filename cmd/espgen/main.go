// Command espgen generates synthetic event-stream traces (JSON Lines) for
// the workloads of the evaluation, with optional bounded disorder
// injection. Traces replay byte-identically through cmd/esprun.
//
// Usage:
//
//	espgen -workload rfid -n 10000 -ooo 0.1 -k 2000 -seed 1 -out trace.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"oostream/internal/event"
	"oostream/internal/gen"
	"oostream/internal/netsim"
	"oostream/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "espgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("espgen", flag.ContinueOnError)
	var (
		workload = fs.String("workload", "rfid", "workload: rfid, intrusion, stock, uniform")
		n        = fs.Int("n", 10_000, "size parameter (items, attacks, ticks, or events)")
		seed     = fs.Int64("seed", 1, "generator seed")
		ooo      = fs.Float64("ooo", 0, "fraction of events to delay (0..1)")
		k        = fs.Int64("k", 0, "max delay (logical ms) for disorder injection")
		net      = fs.Bool("net", false, "derive disorder from a network delivery simulation instead of -ooo/-k")
		sources  = fs.Int("sources", 4, "with -net: number of producing sources")
		mtbf     = fs.Int64("mtbf", 0, "with -net: mean time between source failures (0 = none)")
		outage   = fs.Int64("outage", 500, "with -net: mean outage duration")
		out      = fs.String("out", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *ooo < 0 || *ooo > 1 {
		return fmt.Errorf("-ooo must be in [0,1], got %f", *ooo)
	}
	if *ooo > 0 && *k <= 0 {
		return fmt.Errorf("-ooo > 0 requires -k > 0")
	}
	if *net && *ooo > 0 {
		return fmt.Errorf("-net and -ooo are mutually exclusive")
	}

	var events []event.Event
	switch *workload {
	case "rfid":
		events = gen.RFID(gen.DefaultRFID(*n, *seed))
	case "intrusion":
		events = gen.Intrusion(gen.DefaultIntrusion(*n, *seed))
	case "stock":
		events = gen.Stock(gen.DefaultStock(*n, *seed))
	case "uniform":
		events = gen.Uniform(*n, []string{"A", "B", "C", "D"}, 8, 10, *seed)
	default:
		return fmt.Errorf("unknown workload %q", *workload)
	}
	if *net {
		delivered, _, prof, err := netsim.Deliver(events, netsim.Config{
			Sources: *sources,
			Link:    netsim.DefaultLink(),
			Failure: netsim.FailureConfig{MTBF: event.Time(*mtbf), OutageMean: event.Time(*outage)},
			Seed:    *seed + 1,
		})
		if err != nil {
			return err
		}
		events = delivered
		fmt.Fprintf(os.Stderr, "espgen: network profile %v\n", prof)
	} else {
		events = gen.Shuffle(events, gen.Disorder{Ratio: *ooo, MaxDelay: event.Time(*k), Seed: *seed + 1})
	}

	var dst io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	if strings.HasSuffix(*out, ".gz") {
		w := trace.NewGzipWriter(dst)
		if err := w.WriteAll(events); err != nil {
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
	} else {
		w := trace.NewWriter(dst)
		if err := w.WriteAll(events); err != nil {
			return err
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "espgen: %d events (ooo ratio %.3f, max delay %d)\n",
		len(events), gen.OOORatio(events), gen.MaxDelay(events))
	return nil
}
