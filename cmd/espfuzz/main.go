// Command espfuzz runs long differential soak sessions: it draws trial
// seeds sequentially, runs each through the full differential harness
// (every strategy, both shard modes, a checkpoint round-trip, and a
// latency-sampler on/off differential — all against the brute-force
// oracle), shrinks any divergence, and prints a JSON summary. Exit status
// is non-zero when any trial diverged.
//
//	go run ./cmd/espfuzz -budget 30s
//	go run ./cmd/espfuzz -budget 10m -seed 1000000 -maxfail 5
//	go run ./cmd/espfuzz -budget 30s -crash
//	go run ./cmd/espfuzz -budget 30s -batch
//	go run ./cmd/espfuzz -budget 30s -adaptive
//	go run ./cmd/espfuzz -budget 30s -agg
//
// With -batch each trial runs the batch≡per-event differential instead:
// every strategy is driven once per event and again through ProcessBatch
// under singleton, whole-stream, and random batch partitions, and the runs
// must agree exactly — matches, lineage records, trace-op multisets, and
// heartbeats injected at batch boundaries.
//
// With -multi each trial runs the multi-query differential instead: a
// QuerySet with several registered queries (shared admission, event-type
// index, prefix gating) must equal, per query, both the oracle and
// independent single-query engines — across strategies, batch ingestion,
// lineage, live Register/Unregister, and supervised kill/recover with the
// v2 checkpoint format.
//
// With -adaptive each trial runs the adaptive disorder-control
// differential instead: dynamic-K engines must equal the oracle over
// exactly the events they admitted (and a static run at K = max observed),
// overload shedding must be fully accounted, and the hybrid meta-engine
// must survive forced strategy switches with the net multiset intact.
//
// With -agg each trial runs the windowed-aggregation differential
// instead: a random AGGREGATE query (COUNT/SUM/AVG/MIN/MAX, sliding
// windows, GROUP BY, HAVING) runs through every strategy — the
// speculative engine's preview/revision pairs must net out — plus
// heartbeats, batching, lineage, a checkpoint round-trip, and partitioned
// execution on grouped trials, all against a brute-force window oracle.
//
// With -crash each trial instead runs the crash-point differential: the
// supervised fault-tolerant runtime is killed at seed-derived offsets and
// recovered from its durable store (checkpoints + write-ahead log), and
// the recovered run must reproduce the uninterrupted run's exact ordered
// match sequence across every strategy, the partitioned topology, and
// corrupted-checkpoint fallback. Half the crash trials draw their arrival
// stream from the fault-injecting delivery simulator (drops, duplicate
// deliveries, source stalls).
//
// Unlike `go test -fuzz`, which hunts coverage, espfuzz hunts wall-clock
// volume: tens of thousands of independent seed-reproducible trials per
// minute, suitable for overnight soaks and CI time boxes. Every failure
// line carries the seed and a minimized Go-source repro for
// internal/difftest/regress_test.go.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"time"

	"oostream/internal/difftest"
	"oostream/internal/obsv"
	"oostream/internal/obsv/httpx"
)

// summary is the machine-readable soak result printed to stdout.
type summary struct {
	Trials    int     `json:"trials"`
	Failures  int     `json:"failures"`
	ElapsedMS int64   `json:"elapsed_ms"`
	TrialsSec float64 `json:"trials_per_sec"`
	FirstSeed int64   `json:"first_seed"`
	LastSeed  int64   `json:"last_seed"`
	FailSeeds []int64 `json:"fail_seeds,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry: parses flags, soaks, prints, returns the exit
// status.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("espfuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		budget  = fs.Duration("budget", 30*time.Second, "wall-clock time budget for the soak")
		seed    = fs.Int64("seed", 1, "first trial seed; trials use seed, seed+1, …")
		trials  = fs.Int("trials", 0, "max trials (0 = unlimited within budget)")
		maxfail = fs.Int("maxfail", 3, "stop after this many failures")
		quiet   = fs.Bool("q", false, "suppress per-failure reports (summary only)")
		crash   = fs.Bool("crash", false, "run the crash-recovery differential instead of the strategy differential")
		batch   = fs.Bool("batch", false, "run the batch≡per-event differential instead of the strategy differential")
		multi   = fs.Bool("multi", false, "run the multi-query QuerySet differential instead of the strategy differential")
		adapt   = fs.Bool("adaptive", false, "run the adaptive disorder-control differential (dynamic K, shedding, hybrid switching) instead of the strategy differential")
		agg     = fs.Bool("agg", false, "run the windowed-aggregation differential (FiBA operator, all strategies, checkpoint, partitioning) instead of the strategy differential")
		listen  = fs.String("listen", "", "serve live soak progress over HTTP (/varz, /healthz, /debug/pprof) on this address")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Soak progress counters, published on -listen. Atomics because the
	// HTTP handlers read them from other goroutines mid-soak.
	var liveTrials, liveFailures, liveSeed atomic.Int64
	if *listen != "" {
		reg := obsv.NewRegistry()
		reg.RegisterVarz("soak", func() any {
			return map[string]any{
				"trials":    liveTrials.Load(),
				"failures":  liveFailures.Load(),
				"last_seed": liveSeed.Load(),
			}
		})
		srv, err := httpx.Listen(*listen, reg, nil, nil, nil)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "espfuzz: observability on http://%s/varz\n", srv.Addr())
	}

	start := time.Now()
	deadline := start.Add(*budget)
	s := summary{FirstSeed: *seed, LastSeed: *seed - 1}
	for next := *seed; time.Now().Before(deadline); next++ {
		if *trials > 0 && s.Trials >= *trials {
			break
		}
		s.Trials++
		s.LastSeed = next
		liveTrials.Store(int64(s.Trials))
		liveSeed.Store(next)
		var fail *difftest.Failure
		switch {
		case *crash:
			// Alternate plain and fault-injected arrival streams so both
			// the crash machinery and the duplicate-admission path soak.
			c := difftest.Generate(next)
			if next%2 == 0 {
				c = difftest.GenerateFaulty(next)
			}
			fail = difftest.RunCrash(c)
		case *batch:
			fail = difftest.RunBatch(difftest.Generate(next))
		case *multi:
			fail = difftest.RunMulti(difftest.Generate(next))
		case *adapt:
			fail = difftest.RunAdaptive(difftest.Generate(next))
		case *agg:
			fail = difftest.RunAgg(difftest.GenerateAgg(next))
		default:
			fail = difftest.Run(difftest.Generate(next))
		}
		if fail != nil {
			s.Failures++
			liveFailures.Store(int64(s.Failures))
			s.FailSeeds = append(s.FailSeeds, next)
			if !*quiet {
				switch {
				case *crash:
					// Crash failures are reported unshrunk: Shrink re-runs
					// the strategy differential, not the crash one.
					fmt.Fprintf(stderr, "%v\n", fail)
				case *batch:
					fmt.Fprintf(stderr, "%s\n", difftest.ShrinkBatch(fail).Report())
				case *multi:
					fmt.Fprintf(stderr, "%s\n", difftest.ShrinkMulti(fail).Report())
				case *adapt, *agg:
					// Adaptive and aggregation failures are reported unshrunk:
					// Shrink re-runs the strategy differential, not these.
					fmt.Fprintf(stderr, "%s\n", fail.Report())
				default:
					fmt.Fprintf(stderr, "%s\n", difftest.Shrink(fail).Report())
				}
			}
			if s.Failures >= *maxfail {
				break
			}
		}
	}
	elapsed := time.Since(start)
	s.ElapsedMS = elapsed.Milliseconds()
	if elapsed > 0 {
		s.TrialsSec = float64(s.Trials) / elapsed.Seconds()
	}
	enc := json.NewEncoder(stdout)
	if err := enc.Encode(s); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if s.Failures > 0 {
		return 1
	}
	return 0
}
