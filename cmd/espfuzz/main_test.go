package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestSoakSmoke(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-budget", "2s", "-seed", "1"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
	}
	var s summary
	if err := json.Unmarshal(out.Bytes(), &s); err != nil {
		t.Fatalf("summary not JSON: %v\n%s", err, out.String())
	}
	if s.Trials < 50 {
		t.Fatalf("only %d trials in 2s; harness slowed drastically", s.Trials)
	}
	if s.Failures != 0 {
		t.Fatalf("%d failures on clean seeds: %s", s.Failures, errOut.String())
	}
	if s.LastSeed < s.FirstSeed {
		t.Fatalf("bad seed accounting: %+v", s)
	}
}

func TestTrialCap(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-budget", "30s", "-trials", "7"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	var s summary
	if err := json.Unmarshal(out.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.Trials != 7 {
		t.Fatalf("trials = %d, want 7", s.Trials)
	}
}

func TestBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-nope"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestCrashSoakSmoke(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-budget", "2s", "-seed", "1", "-crash"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
	}
	var s summary
	if err := json.Unmarshal(out.Bytes(), &s); err != nil {
		t.Fatalf("summary not JSON: %v\n%s", err, out.String())
	}
	if s.Trials < 10 {
		t.Fatalf("only %d crash trials in 2s; harness slowed drastically", s.Trials)
	}
	if s.Failures != 0 {
		t.Fatalf("%d failures on clean seeds: %s", s.Failures, errOut.String())
	}
}

func TestAdaptiveSoakSmoke(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-budget", "2s", "-seed", "1", "-adaptive"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
	}
	var s summary
	if err := json.Unmarshal(out.Bytes(), &s); err != nil {
		t.Fatalf("summary not JSON: %v\n%s", err, out.String())
	}
	if s.Trials < 10 {
		t.Fatalf("only %d adaptive trials in 2s; harness slowed drastically", s.Trials)
	}
	if s.Failures != 0 {
		t.Fatalf("%d failures on clean seeds: %s", s.Failures, errOut.String())
	}
}
