package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"oostream"
	"oostream/internal/event"
	"oostream/internal/trace"
)

func writeTrace(t *testing.T, events []event.Event) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := trace.NewWriter(f)
	if err := w.WriteAll(events); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return path
}

func sampleEvents() []event.Event {
	return []event.Event{
		{Type: "B", TS: 20, Seq: 2}, // out of order vs. the A below
		{Type: "A", TS: 10, Seq: 1},
		{Type: "A", TS: 100, Seq: 3},
		{Type: "B", TS: 110, Seq: 4},
	}
}

func TestRunFindsMatches(t *testing.T) {
	path := writeTrace(t, sampleEvents())
	var out bytes.Buffer
	err := run([]string{
		"-query", "PATTERN SEQ(A a, B b) WITHIN 50",
		"-trace", path, "-k", "100",
	}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "matches=2") {
		t.Errorf("output: %s", out.String())
	}
	if !strings.Contains(out.String(), "strategy=native") {
		t.Errorf("output: %s", out.String())
	}
}

func TestRunFromStdin(t *testing.T) {
	var traceBuf bytes.Buffer
	w := trace.NewWriter(&traceBuf)
	if err := w.WriteAll(sampleEvents()); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{
		"-query", "PATTERN SEQ(A a, B b) WITHIN 50",
		"-strategy", "kslack", "-k", "100", "-quiet",
	}, &traceBuf, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "matches=2") {
		t.Errorf("output: %s", out.String())
	}
}

func TestRunQueryFile(t *testing.T) {
	qPath := filepath.Join(t.TempDir(), "q.esp")
	if err := os.WriteFile(qPath, []byte("PATTERN SEQ(A a, B b) WITHIN 50"), 0o644); err != nil {
		t.Fatal(err)
	}
	path := writeTrace(t, sampleEvents())
	var out bytes.Buffer
	if err := run([]string{"-query-file", qPath, "-trace", path}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
}

func TestRunMaxPrint(t *testing.T) {
	path := writeTrace(t, sampleEvents())
	var out bytes.Buffer
	err := run([]string{
		"-query", "PATTERN SEQ(A a, B b) WITHIN 50",
		"-trace", path, "-k", "100", "-max-print", "1",
	}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "1 more matches") {
		t.Errorf("truncation notice missing: %s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"no query", []string{}},
		{"bad query", []string{"-query", "PATTERN"}},
		{"bad strategy", []string{"-query", "PATTERN SEQ(A a) WITHIN 5", "-strategy", "bogus"}},
		{"missing trace", []string{"-query", "PATTERN SEQ(A a) WITHIN 5", "-trace", "/nonexistent"}},
		{"missing query file", []string{"-query-file", "/nonexistent"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(tt.args, strings.NewReader(""), &out); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestRunPlan(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-query", "PATTERN SEQ(A a, B b) WHERE a.id = b.id WITHIN 50",
		"-plan",
	}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"plan for:", "sequence:", "partitionable by: id"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("plan missing %q: %s", want, out.String())
		}
	}
}

// TestRunExplain: -explain enables provenance and prints one lineage line
// under each match, citing the contributing events.
func TestRunExplain(t *testing.T) {
	path := writeTrace(t, sampleEvents())
	var out bytes.Buffer
	err := run([]string{
		"-query", "PATTERN SEQ(A a, B b) WITHIN 50",
		"-trace", path, "-k", "100", "-explain",
	}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "matches=2") {
		t.Fatalf("output: %s", got)
	}
	if n := strings.Count(got, "lineage: insert"); n != 2 {
		t.Errorf("want 2 lineage lines, got %d:\n%s", n, got)
	}
	for _, want := range []string{"A@10#1", "B@20#2", "window=[10,60]"} {
		if !strings.Contains(got, want) {
			t.Errorf("lineage missing %q:\n%s", want, got)
		}
	}
}

// TestRunResume: a supervised run killed mid-stream resumes from its
// checkpoint directory over the same trace, printing only the matches the
// first run never delivered — exactly-once output across invocations.
func TestRunResume(t *testing.T) {
	events := sampleEvents()
	path := writeTrace(t, events)
	dir := filepath.Join(t.TempDir(), "state")
	const query = "PATTERN SEQ(A a, B b) WITHIN 50"

	// First "invocation": drive the supervised engine over a prefix and
	// crash it (the CLI path always flushes at EOF, which would seal the
	// stream; a real kill leaves no flush marker, which is what Kill
	// simulates).
	q, err := oostream.Compile(query, nil)
	if err != nil {
		t.Fatal(err)
	}
	sen, err := oostream.NewSupervisedEngine(q, oostream.Config{K: 100},
		oostream.SupervisorConfig{Dir: dir, CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sen.Start(); err != nil {
		t.Fatal(err)
	}
	pre := 0
	for _, e := range events[:2] {
		ms, err := sen.Process(e)
		if err != nil {
			t.Fatal(err)
		}
		pre += len(ms)
	}
	if pre != 1 {
		t.Fatalf("prefix emitted %d matches, want 1", pre)
	}
	sen.Kill()

	// Without -resume the CLI must refuse the non-empty directory.
	var out bytes.Buffer
	err = run([]string{"-query", query, "-trace", path, "-k", "100", "-checkpoint-dir", dir},
		strings.NewReader(""), &out)
	if err == nil || !strings.Contains(err.Error(), "-resume") {
		t.Fatalf("non-empty dir accepted without -resume: %v", err)
	}

	// Resume over the FULL trace: already-processed events are skipped by
	// admission control, so only the second match is printed.
	out.Reset()
	err = run([]string{"-query", query, "-trace", path, "-k", "100",
		"-checkpoint-dir", dir, "-resume"}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "matches=1") {
		t.Errorf("resume output: %s", out.String())
	}
	if !strings.Contains(out.String(), "strategy=supervised(native)") {
		t.Errorf("resume output: %s", out.String())
	}
}

func TestRunAdaptiveFlags(t *testing.T) {
	path := writeTrace(t, sampleEvents())
	var out bytes.Buffer
	err := run([]string{
		"-query", "PATTERN SEQ(A a, B b) WITHIN 50",
		"-trace", path, "-k", "100", "-adaptive",
		"-limits", `{"maxBufferedEvents":100000}`,
	}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "matches=2") {
		t.Errorf("output: %s", out.String())
	}
	if !strings.Contains(out.String(), "adaptive: k=") {
		t.Errorf("adaptive summary missing: %s", out.String())
	}
}

func TestRunHybridStrategy(t *testing.T) {
	path := writeTrace(t, sampleEvents())
	var out bytes.Buffer
	err := run([]string{
		"-query", "PATTERN SEQ(A a, B b) WITHIN 50",
		"-trace", path, "-k", "100", "-strategy", "hybrid",
		"-slo", `{"maxLatency":2000,"maxRetractionRate":0.05}`,
	}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "strategy=hybrid matches=2") {
		t.Errorf("output: %s", out.String())
	}
	if !strings.Contains(out.String(), "mode=") {
		t.Errorf("hybrid mode missing from adaptive summary: %s", out.String())
	}
}

func TestRunAdaptiveFlagErrors(t *testing.T) {
	path := writeTrace(t, sampleEvents())
	for _, args := range [][]string{
		{"-query", "PATTERN SEQ(A a, B b) WITHIN 50", "-trace", path, "-adaptive-config", "{not json"},
		{"-query", "PATTERN SEQ(A a, B b) WITHIN 50", "-trace", path, "-slo", "{not json"},
		{"-query", "PATTERN SEQ(A a, B b) WITHIN 50", "-trace", path, "-limits", "{not json"},
		{"-query", "PATTERN SEQ(A a, B b) WITHIN 50", "-trace", path, "-strategy", "inorder", "-adaptive"},
	} {
		if err := run(args, strings.NewReader(""), &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
