package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"oostream/internal/event"
	"oostream/internal/trace"
)

func writeTrace(t *testing.T, events []event.Event) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := trace.NewWriter(f)
	if err := w.WriteAll(events); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return path
}

func sampleEvents() []event.Event {
	return []event.Event{
		{Type: "B", TS: 20, Seq: 2}, // out of order vs. the A below
		{Type: "A", TS: 10, Seq: 1},
		{Type: "A", TS: 100, Seq: 3},
		{Type: "B", TS: 110, Seq: 4},
	}
}

func TestRunFindsMatches(t *testing.T) {
	path := writeTrace(t, sampleEvents())
	var out bytes.Buffer
	err := run([]string{
		"-query", "PATTERN SEQ(A a, B b) WITHIN 50",
		"-trace", path, "-k", "100",
	}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "matches=2") {
		t.Errorf("output: %s", out.String())
	}
	if !strings.Contains(out.String(), "strategy=native") {
		t.Errorf("output: %s", out.String())
	}
}

func TestRunFromStdin(t *testing.T) {
	var traceBuf bytes.Buffer
	w := trace.NewWriter(&traceBuf)
	if err := w.WriteAll(sampleEvents()); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{
		"-query", "PATTERN SEQ(A a, B b) WITHIN 50",
		"-strategy", "kslack", "-k", "100", "-quiet",
	}, &traceBuf, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "matches=2") {
		t.Errorf("output: %s", out.String())
	}
}

func TestRunQueryFile(t *testing.T) {
	qPath := filepath.Join(t.TempDir(), "q.esp")
	if err := os.WriteFile(qPath, []byte("PATTERN SEQ(A a, B b) WITHIN 50"), 0o644); err != nil {
		t.Fatal(err)
	}
	path := writeTrace(t, sampleEvents())
	var out bytes.Buffer
	if err := run([]string{"-query-file", qPath, "-trace", path}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
}

func TestRunMaxPrint(t *testing.T) {
	path := writeTrace(t, sampleEvents())
	var out bytes.Buffer
	err := run([]string{
		"-query", "PATTERN SEQ(A a, B b) WITHIN 50",
		"-trace", path, "-k", "100", "-max-print", "1",
	}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "1 more matches") {
		t.Errorf("truncation notice missing: %s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"no query", []string{}},
		{"bad query", []string{"-query", "PATTERN"}},
		{"bad strategy", []string{"-query", "PATTERN SEQ(A a) WITHIN 5", "-strategy", "bogus"}},
		{"missing trace", []string{"-query", "PATTERN SEQ(A a) WITHIN 5", "-trace", "/nonexistent"}},
		{"missing query file", []string{"-query-file", "/nonexistent"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(tt.args, strings.NewReader(""), &out); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestRunExplain(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-query", "PATTERN SEQ(A a, B b) WHERE a.id = b.id WITHIN 50",
		"-explain",
	}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"plan for:", "sequence:", "partitionable by: id"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("explain missing %q: %s", want, out.String())
		}
	}
}
