// Command esprun evaluates a pattern query over an event trace (JSON
// Lines, as produced by cmd/espgen) under a chosen out-of-order handling
// strategy, printing matches and an engine metrics summary.
//
// Usage:
//
//	esprun -query 'PATTERN SEQ(SHELF s, EXIT e) WHERE s.id = e.id WITHIN 6s' \
//	       -strategy native -k 2000 -trace trace.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"oostream"
	"oostream/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "esprun:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("esprun", flag.ContinueOnError)
	var (
		queryText = fs.String("query", "", "query text (required unless -query-file)")
		queryFile = fs.String("query-file", "", "file containing the query text")
		traceFile = fs.String("trace", "", "trace file (default stdin)")
		strategy  = fs.String("strategy", "native", "strategy: native, inorder, kslack, speculate")
		k         = fs.Int64("k", 1000, "disorder bound K (logical ms)")
		quiet     = fs.Bool("quiet", false, "suppress per-match output")
		maxPrint  = fs.Int("max-print", 20, "print at most this many matches (0 = all)")
		explain   = fs.Bool("explain", false, "print the compiled plan and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	src := *queryText
	if src == "" && *queryFile != "" {
		raw, err := os.ReadFile(*queryFile)
		if err != nil {
			return err
		}
		src = string(raw)
	}
	if src == "" {
		return fmt.Errorf("a query is required (-query or -query-file)")
	}

	q, err := oostream.Compile(src, nil)
	if err != nil {
		return err
	}
	if *explain {
		_, err := fmt.Fprint(stdout, q.Explain())
		return err
	}
	en, err := oostream.NewEngine(q, oostream.Config{
		Strategy: oostream.Strategy(*strategy),
		K:        oostream.Time(*k),
	})
	if err != nil {
		return err
	}

	in := stdin
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	r, closer, err := trace.NewAutoReader(in)
	if err != nil {
		return err
	}
	if closer != nil {
		defer closer.Close()
	}
	printed := 0
	total := 0
	emit := func(matches []oostream.Match) {
		for _, m := range matches {
			total++
			if *quiet || (*maxPrint > 0 && printed >= *maxPrint) {
				continue
			}
			fmt.Fprintln(stdout, m)
			printed++
		}
	}
	for {
		e, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		emit(en.Process(e))
	}
	emit(en.Flush())
	if !*quiet && *maxPrint > 0 && total > printed {
		fmt.Fprintf(stdout, "… %d more matches (raise -max-print)\n", total-printed)
	}
	fmt.Fprintf(stdout, "strategy=%s matches=%d %s\n", en.Strategy(), total, en.Metrics())
	return nil
}
