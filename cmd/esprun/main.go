// Command esprun evaluates a pattern query over an event trace (JSON
// Lines, as produced by cmd/espgen) under a chosen out-of-order handling
// strategy, printing matches and an engine metrics summary.
//
// Usage:
//
//	esprun -query 'PATTERN SEQ(SHELF s, EXIT e) WHERE s.id = e.id WITHIN 6s' \
//	       -strategy native -k 2000 -trace trace.jsonl
//
// With -checkpoint-dir the run is supervised by the fault-tolerant
// runtime: every event is logged to a write-ahead log before processing
// and the engine state is checkpointed every -checkpoint-every events. A
// killed run resumes with -resume over the same trace — admission control
// skips everything already processed, so matches are printed exactly once
// across the two invocations:
//
//	esprun -query ... -trace trace.jsonl -checkpoint-dir state/
//	^C (or crash)
//	esprun -query ... -trace trace.jsonl -checkpoint-dir state/ -resume
//
// With -queries the run is multi-query: the file holds one query per line
// (optionally "id: QUERY ..."; blank lines and #-comments skipped), all
// evaluated over the single stream by a shared-admission QuerySet, and
// every match is printed with its owning query id. Combined with
// -checkpoint-dir the whole registry is supervised under the v2
// checkpoint format.
//
// With -explain every emitted match is followed by its lineage record —
// the contributing events, key group, window bounds, and (for
// retractions) the late event that invalidated the result. With -listen
// the live engine state is additionally served on /debug/state, refreshed
// from the processing loop; cmd/espexplain renders both.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"oostream"
	"oostream/internal/obsv/httpx"
	"oostream/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "esprun:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("esprun", flag.ContinueOnError)
	var (
		queryText = fs.String("query", "", "query text (required unless -query-file or -queries)")
		queryFile = fs.String("query-file", "", "file containing the query text")
		queries   = fs.String("queries", "", "multi-query file: one query per line (optionally \"id: QUERY ...\"), run as a shared QuerySet")
		traceFile = fs.String("trace", "", "trace file (default stdin)")
		strategy  = fs.String("strategy", "native", "strategy: native, inorder, kslack, speculate, hybrid")
		k         = fs.Int64("k", 1000, "disorder bound K (logical ms)")
		adaptOn   = fs.Bool("adaptive", false, "derive K online as a lag quantile (-k then only seeds the controller)")
		adaptJSON = fs.String("adaptive-config", "", `full adaptive controller config as JSON, e.g. '{"enabled":true,"quantile":0.99,"margin":1.5}' (overrides -adaptive)`)
		sloJSON   = fs.String("slo", "", `hybrid switch policy as JSON, e.g. '{"maxLatency":2000,"maxRetractionRate":0.05}'`)
		limJSON   = fs.String("limits", "", `overload degradation limits as JSON, e.g. '{"maxBufferedEvents":100000,"maxLag":5000}'`)
		quiet     = fs.Bool("quiet", false, "suppress per-match output")
		maxPrint  = fs.Int("max-print", 20, "print at most this many matches (0 = all)")
		planOnly  = fs.Bool("plan", false, "print the compiled plan and exit")
		explain   = fs.Bool("explain", false, "enable match provenance and print each match's lineage record")
		ckptDir   = fs.String("checkpoint-dir", "", "run supervised: durable checkpoint+WAL directory")
		ckptEvery = fs.Int("checkpoint-every", 1000, "checkpoint every N events (with -checkpoint-dir)")
		resume    = fs.Bool("resume", false, "resume a previous run from -checkpoint-dir")
		partAttr  = fs.String("partition", "", "hash-partition the stream on this attribute")
		shards    = fs.Int("shards", 0, "shard count with -partition (default 1)")
		listen    = fs.String("listen", "", "serve live observability HTTP on this address (/metrics, /varz, /healthz, /debug/flight, /debug/state, /debug/latency, /debug/pprof), e.g. :9090")
		linger    = fs.Duration("linger", 0, "with -listen: keep the HTTP endpoint up this long after the trace completes")
		batchSize = fs.Int("batch", 0, "ingest in batches of this many events (0/1 = per event; output is identical)")
		latSample = fs.Int("latency-sample", 0, "sample 1 in N events for wall-clock latency attribution (0 = off; rounded up to a power of two)")
		latSLO    = fs.Duration("latency-slo", 0, "wall-clock latency objective per event, e.g. 5ms (requires -latency-sample); enables SLO burn-rate tracking")
		latTarget = fs.Float64("latency-slo-target", 0.99, "fraction of sampled events that must meet -latency-slo")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	src := *queryText
	if src == "" && *queryFile != "" {
		raw, err := os.ReadFile(*queryFile)
		if err != nil {
			return err
		}
		src = string(raw)
	}
	if src == "" && *queries == "" {
		return fmt.Errorf("a query is required (-query, -query-file, or -queries)")
	}
	if src != "" && *queries != "" {
		return fmt.Errorf("-queries is exclusive with -query/-query-file")
	}

	var q *oostream.Query
	var registry []namedQuery
	if *queries != "" {
		var err error
		if registry, err = readQueries(*queries); err != nil {
			return err
		}
		if *planOnly {
			for _, nq := range registry {
				if _, err := fmt.Fprintf(stdout, "-- %s --\n%s", nq.id, nq.q.Explain()); err != nil {
					return err
				}
			}
			return nil
		}
		if *partAttr != "" {
			return fmt.Errorf("-partition is not supported with -queries")
		}
	} else {
		var err error
		if q, err = oostream.Compile(src, nil); err != nil {
			return err
		}
		if *planOnly {
			_, err := fmt.Fprint(stdout, q.Explain())
			return err
		}
	}
	cfg := oostream.Config{
		Strategy:   oostream.Strategy(*strategy),
		K:          oostream.Time(*k),
		Partition:  oostream.Partition{Attr: *partAttr, Shards: *shards},
		Provenance: *explain,
		Batch:      oostream.Batch{Size: *batchSize},
		Latency: oostream.Latency{
			SampleEvery: *latSample,
			SLO:         oostream.LatencySLO{Objective: *latSLO, Target: *latTarget},
		},
	}
	var ac oostream.Adaptive
	if *adaptJSON != "" {
		if err := json.Unmarshal([]byte(*adaptJSON), &ac); err != nil {
			return fmt.Errorf("-adaptive-config: %w", err)
		}
	} else {
		ac.Enabled = *adaptOn
	}
	if *sloJSON != "" {
		if err := json.Unmarshal([]byte(*sloJSON), &ac.SLO); err != nil {
			return fmt.Errorf("-slo: %w", err)
		}
	}
	if *limJSON != "" {
		if err := json.Unmarshal([]byte(*limJSON), &ac.Limits); err != nil {
			return fmt.Errorf("-limits: %w", err)
		}
	}
	cfg.Adaptive = ac
	adaptiveSet := ac != (oostream.Adaptive{})
	if adaptiveSet && *queries != "" {
		return fmt.Errorf("adaptive disorder control is per-engine; not supported with -queries")
	}
	if *resume && *ckptDir == "" {
		return fmt.Errorf("-resume requires -checkpoint-dir")
	}
	// The /debug/state and /debug/latency documents, republished from the
	// processing loop. Neither snapshot call is synchronized with Process,
	// so the HTTP handlers never touch the engine: they read the last
	// document the loop stored.
	var stateDoc atomic.Pointer[oostream.StateSnapshot]
	var latDoc atomic.Pointer[oostream.LatencyReport]
	if *listen != "" {
		reg := oostream.NewObserver()
		flight := oostream.NewFlightRecorder(512)
		cfg.Observer = reg
		cfg.Trace = flight
		state := func() any {
			if s := stateDoc.Load(); s != nil {
				return s
			}
			return nil
		}
		latency := func() any {
			if r := latDoc.Load(); r != nil {
				return r
			}
			return nil
		}
		srv, err := httpx.Listen(*listen, reg, flight, state, latency)
		if err != nil {
			return err
		}
		defer srv.Close()
		// Linger runs before the deferred Close (LIFO), holding the
		// endpoint up for scrapes after a short trace finishes.
		defer func() {
			if *linger > 0 {
				fmt.Fprintf(os.Stderr, "esprun: lingering %s on http://%s/metrics\n", *linger, srv.Addr())
				time.Sleep(*linger)
			}
		}()
		fmt.Fprintf(os.Stderr, "esprun: observability on http://%s/metrics\n", srv.Addr())
	}

	in := stdin
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	r, closer, err := trace.NewAutoReader(in)
	if err != nil {
		return err
	}
	if closer != nil {
		defer closer.Close()
	}
	printed := 0
	total := 0
	emit := func(matches []oostream.Match) {
		for _, m := range matches {
			total++
			if *quiet || (*maxPrint > 0 && printed >= *maxPrint) {
				continue
			}
			if m.Query != "" {
				fmt.Fprintf(stdout, "[%s] %s\n", m.Query, m)
			} else {
				fmt.Fprintln(stdout, m)
			}
			if *explain && m.Prov != nil {
				fmt.Fprintf(stdout, "  lineage: %s\n", m.Prov)
			}
			printed++
		}
	}

	var process func(oostream.Event) ([]oostream.Match, error)
	var processBatch func([]oostream.Event) ([]oostream.Match, error)
	var flush func() ([]oostream.Match, error)
	var name string
	var stats func() oostream.Metrics
	var snapshot func() *oostream.StateSnapshot
	var latReport func() *oostream.LatencyReport
	if *ckptDir != "" && !*resume {
		if entries, err := os.ReadDir(*ckptDir); err == nil && len(entries) > 0 {
			return fmt.Errorf("%s already holds state; pass -resume to continue it (or point at an empty directory)", *ckptDir)
		}
	}
	switch {
	case registry != nil && *ckptDir != "":
		qcfg := oostream.QuerySetConfig{
			Strategy: cfg.Strategy, K: cfg.K,
			Provenance: cfg.Provenance, Observer: cfg.Observer, Trace: cfg.Trace,
			Latency: cfg.Latency,
		}
		s, err := oostream.NewSupervisedQuerySet(qcfg, oostream.SupervisorConfig{
			Dir:             *ckptDir,
			CheckpointEvery: *ckptEvery,
		})
		if err != nil {
			return err
		}
		defer s.Close()
		for _, nq := range registry {
			if err := s.Register(nq.id, nq.q); err != nil {
				return err
			}
		}
		recovered, err := s.Start()
		if err != nil {
			return err
		}
		emit(recovered)
		process, processBatch, flush, stats = s.Process, s.ProcessBatch, s.Flush, s.Metrics
		latReport = s.LatencyReport
		name = fmt.Sprintf("queryset(%s)×%d", cfg.Strategy, len(registry))
	case registry != nil:
		qcfg := oostream.QuerySetConfig{
			Strategy: cfg.Strategy, K: cfg.K,
			Provenance: cfg.Provenance, Observer: cfg.Observer, Trace: cfg.Trace,
			Latency: cfg.Latency,
		}
		set, err := oostream.NewQuerySet(qcfg)
		if err != nil {
			return err
		}
		for _, nq := range registry {
			if err := set.Register(nq.id, nq.q); err != nil {
				return err
			}
		}
		process = func(e oostream.Event) ([]oostream.Match, error) { return set.Process(e), nil }
		processBatch = func(evs []oostream.Event) ([]oostream.Match, error) { return set.ProcessBatch(evs), nil }
		flush = func() ([]oostream.Match, error) { return set.Flush(), nil }
		stats = set.Metrics
		latReport = set.LatencyReport
		name = fmt.Sprintf("queryset(%s)×%d", cfg.Strategy, len(registry))
	case *ckptDir != "":
		sen, err := oostream.NewSupervisedEngine(q, cfg, oostream.SupervisorConfig{
			Dir:             *ckptDir,
			CheckpointEvery: *ckptEvery,
		})
		if err != nil {
			return err
		}
		defer sen.Close()
		recovered, err := sen.Start()
		if err != nil {
			return err
		}
		emit(recovered)
		process, processBatch, flush, name, stats = sen.Process, sen.ProcessBatch, sen.Flush, sen.Strategy(), sen.Metrics
		snapshot = sen.StateSnapshot
		latReport = sen.LatencyReport
	default:
		en, err := oostream.NewEngine(q, cfg)
		if err != nil {
			return err
		}
		process = func(e oostream.Event) ([]oostream.Match, error) { return en.Process(e), nil }
		processBatch = func(evs []oostream.Event) ([]oostream.Match, error) { return en.ProcessBatch(evs), nil }
		flush = func() ([]oostream.Match, error) { return en.Flush(), nil }
		name, stats = en.Strategy(), en.Metrics
		snapshot = en.StateSnapshot
		latReport = en.LatencyReport
	}
	publish := func() {
		if *listen == "" {
			return
		}
		if snapshot != nil {
			if s := snapshot(); s != nil {
				stateDoc.Store(s)
			}
		}
		if latReport != nil {
			if r := latReport(); r != nil {
				latDoc.Store(r)
			}
		}
	}

	// The supervised path needs stable event identity across invocations:
	// trace positions are deterministic, so events without a Seq get their
	// 1-based trace position. On -resume, admission control then drops or
	// deduplicates everything already processed before the crash.
	var pos oostream.Seq
	var batch []oostream.Event
	if *batchSize > 1 {
		batch = make([]oostream.Event, 0, *batchSize)
	}
	drainBatch := func() error {
		if len(batch) == 0 {
			return nil
		}
		ms, err := processBatch(batch)
		batch = batch[:0]
		if err != nil {
			return err
		}
		emit(ms)
		return nil
	}
	for {
		e, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		pos++
		if e.Seq == 0 {
			e.Seq = pos
		}
		if *batchSize > 1 {
			batch = append(batch, e)
			if len(batch) >= *batchSize {
				if err := drainBatch(); err != nil {
					return err
				}
			}
		} else {
			ms, err := process(e)
			if err != nil {
				return err
			}
			emit(ms)
		}
		// Refresh /debug/state from the processing goroutine (snapshots are
		// not synchronized with Process) at a coarse cadence.
		if pos%64 == 0 && len(batch) == 0 {
			publish()
		}
	}
	if err := drainBatch(); err != nil {
		return err
	}
	ms, err := flush()
	if err != nil {
		return err
	}
	emit(ms)
	publish()
	if !*quiet && *maxPrint > 0 && total > printed {
		fmt.Fprintf(stdout, "… %d more matches (raise -max-print)\n", total-printed)
	}
	fmt.Fprintf(stdout, "strategy=%s matches=%d %s\n", name, total, stats())
	if *latSample > 0 && latReport != nil {
		if r := latReport(); r != nil {
			printLatency(stdout, r)
		}
	}
	if (adaptiveSet || cfg.Strategy == oostream.StrategyHybrid) && snapshot != nil {
		if s := snapshot(); s != nil && s.Adaptive != nil {
			a := s.Adaptive
			fmt.Fprintf(stdout, "adaptive: k=%d nominal=%d max=%d resizes=%d shed=%d degraded=%v",
				a.EffectiveK, a.NominalK, a.MaxKObserved, a.Resizes, a.Shedded, a.Degraded)
			if a.Mode != "" {
				fmt.Fprintf(stdout, " mode=%s switches=%d", a.Mode, a.Switches)
			}
			fmt.Fprintln(stdout)
		}
	}
	return nil
}

// printLatency renders the end-of-run wall-clock attribution summary: the
// sample accounting, wall quantiles, the per-stage decomposition in
// pipeline order, and the SLO windows when tracked.
func printLatency(w io.Writer, r *oostream.LatencyReport) {
	fmt.Fprintf(w, "latency: 1/%d sampled=%d abandoned=%d dropped=%d wall{p50=%dµs p95=%dµs p99=%dµs max=%dµs}\n",
		r.SampleEvery, r.SpansSampled, r.SpansAbandoned, r.SpansDropped,
		r.Wall.P50Us, r.Wall.P95Us, r.Wall.P99Us, r.Wall.MaxUs)
	for _, stage := range []string{"queue", "buffer", "wal", "construct", "emit"} {
		s, ok := r.Stages[stage]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "  stage %-9s n=%d p50=%dµs p95=%dµs max=%dµs sum=%dµs\n",
			stage, s.Count, s.P50Us, s.P95Us, s.MaxUs, s.SumUs)
	}
	if r.SLO != nil {
		for _, win := range r.SLO.Windows {
			fmt.Fprintf(w, "  slo %s: good=%d bad=%d ratio=%.4f burn=%.2f (objective %gms, target %g)\n",
				win.Window, win.Good, win.Bad, win.GoodRatio, win.BurnRate, r.SLO.ObjectiveMs, r.SLO.Target)
		}
	}
}

// namedQuery is one entry of a -queries file.
type namedQuery struct {
	id string
	q  *oostream.Query
}

// readQueries parses a multi-query file: one query per line, blank lines
// and #-comments skipped. A line may carry an explicit id as "id: QUERY
// ..."; otherwise ids are assigned as q1, q2, … by position.
func readQueries(path string) ([]namedQuery, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []namedQuery
	for i, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		id := fmt.Sprintf("q%d", len(out)+1)
		if !strings.HasPrefix(line, "PATTERN") {
			head, rest, ok := strings.Cut(line, ":")
			if !ok || strings.TrimSpace(head) == "" {
				return nil, fmt.Errorf("%s:%d: want \"PATTERN ...\" or \"id: PATTERN ...\"", path, i+1)
			}
			id, line = strings.TrimSpace(head), strings.TrimSpace(rest)
		}
		q, err := oostream.Compile(line, nil)
		if err != nil {
			return nil, fmt.Errorf("%s:%d (%s): %w", path, i+1, id, err)
		}
		out = append(out, namedQuery{id: id, q: q})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no queries found", path)
	}
	return out, nil
}
