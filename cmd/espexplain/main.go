// Command espexplain answers diagnosis questions about a running (or
// finished) engine from its observability artifacts alone: the live state
// snapshot served on /debug/state and the flight recorder's trace dump
// served on /debug/flight?format=json (both also writable to files).
//
// Usage:
//
//	espexplain -state http://127.0.0.1:9090/debug/state
//	espexplain -flight http://127.0.0.1:9090/debug/flight
//	espexplain -state state.json -flight flight.jsonl
//	espexplain -flight flight.jsonl -match "3|7|12"   # why did match M emit?
//	espexplain -flight flight.jsonl -event 42         # what happened to event E?
//
// Without -match or -event it prints a state summary (stack depths,
// heaviest key groups, negation stores, buffers, clocks, lineage
// retention) and a trace-op histogram. Match identities ("|"-joined event
// sequence numbers) appear on emit/retract trace events only when the
// producing run had provenance enabled (esprun -explain, or
// Config.Provenance). Windowed-aggregate emissions are addressed the same
// way — their identity cites the events of every pattern match
// contributing to the window, and the verdict reports the window end and
// contributing-match count instead of a binding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"

	"oostream/internal/event"
	"oostream/internal/obsv"
	"oostream/internal/provenance"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "espexplain:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("espexplain", flag.ContinueOnError)
	var (
		stateSrc  = fs.String("state", "", "state snapshot: file path or URL (the /debug/state document)")
		flightSrc = fs.String("flight", "", "flight dump: file path or URL (JSON Lines; URLs are fetched with ?format=json)")
		matchKey  = fs.String("match", "", `explain one match by its identity: "|"-joined event sequence numbers`)
		eventSeq  = fs.Int64("event", 0, "explain one event by its sequence number")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *stateSrc == "" && *flightSrc == "" {
		return fmt.Errorf("nothing to explain: pass -state and/or -flight")
	}

	var snap *provenance.StateSnapshot
	if *stateSrc != "" {
		raw, err := fetch(*stateSrc)
		if err != nil {
			return err
		}
		snap = new(provenance.StateSnapshot)
		if err := json.Unmarshal(raw, snap); err != nil {
			return fmt.Errorf("decode state snapshot from %s: %w", *stateSrc, err)
		}
	}
	var fl []obsv.TraceEvent
	if *flightSrc != "" {
		raw, err := fetch(flightURL(*flightSrc))
		if err != nil {
			return err
		}
		fl, err = parseFlight(raw)
		if err != nil {
			return fmt.Errorf("decode flight dump from %s: %w", *flightSrc, err)
		}
	}

	switch {
	case *matchKey != "":
		if fl == nil {
			return fmt.Errorf("-match needs a flight dump (-flight)")
		}
		return explainMatch(stdout, *matchKey, fl, snap)
	case *eventSeq != 0:
		if fl == nil {
			return fmt.Errorf("-event needs a flight dump (-flight)")
		}
		return explainEvent(stdout, event.Seq(*eventSeq), fl, snap)
	default:
		if snap != nil {
			printState(stdout, snap, "")
		}
		if fl != nil {
			printFlightSummary(stdout, fl)
		}
		return nil
	}
}

// fetch loads a file path or an http(s) URL.
func fetch(src string) ([]byte, error) {
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		resp, err := http.Get(src)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s: %s: %s", src, resp.Status, strings.TrimSpace(string(body)))
		}
		return body, nil
	}
	return os.ReadFile(src)
}

// flightURL makes a /debug/flight URL ask for the JSON Lines rendering.
func flightURL(src string) string {
	if !strings.HasPrefix(src, "http://") && !strings.HasPrefix(src, "https://") {
		return src
	}
	if strings.Contains(src, "format=") {
		return src
	}
	if strings.Contains(src, "?") {
		return src + "&format=json"
	}
	return src + "?format=json"
}

// parseFlight decodes a JSON Lines trace dump, oldest first.
func parseFlight(raw []byte) ([]obsv.TraceEvent, error) {
	var out []obsv.TraceEvent
	for i, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var te obsv.TraceEvent
		if err := json.Unmarshal([]byte(line), &te); err != nil {
			return nil, fmt.Errorf("line %d: %w (is this the text dump? fetch /debug/flight?format=json)", i+1, err)
		}
		out = append(out, te)
	}
	return out, nil
}

// printState renders a snapshot (and its shards / inner engine,
// indented).
func printState(w io.Writer, s *provenance.StateSnapshot, indent string) {
	p := func(format string, args ...any) { fmt.Fprintf(w, indent+format+"\n", args...) }
	p("engine: %s", s.Engine)
	if !s.Started {
		p("  (no events processed yet)")
	}
	p("  clock=%d safe=%d purgeFrontier=%d", s.Clock, s.Safe, s.PurgeFrontier)
	if len(s.StackDepths) > 0 {
		depths := make([]string, len(s.StackDepths))
		for i, d := range s.StackDepths {
			depths[i] = strconv.Itoa(d)
		}
		p("  stack depths by position: [%s]", strings.Join(depths, " "))
	}
	if s.KeyGroups > 0 {
		p("  key groups: %d (keyed by %q)", s.KeyGroups, s.KeyAttr)
		for _, g := range s.TopKeyGroups {
			p("    %-12s %d instances", g.Key, g.Size)
		}
	}
	if len(s.NegStoreSizes) > 0 {
		sizes := make([]string, len(s.NegStoreSizes))
		for i, n := range s.NegStoreSizes {
			sizes[i] = strconv.Itoa(n)
		}
		p("  negation stores: [%s]", strings.Join(sizes, " "))
	}
	if s.BufferLen > 0 {
		p("  buffered events/matches: %d", s.BufferLen)
	}
	if s.Pending > 0 {
		p("  pending (awaiting seal): %d", s.Pending)
	}
	if s.Vulnerable > 0 {
		p("  vulnerable (retractable) results: %d", s.Vulnerable)
	}
	if s.MatchSeq > 0 || s.Committed > 0 {
		p("  match seq=%d committed=%d", s.MatchSeq, s.Committed)
	}
	if s.Lineage.Enabled {
		trunc := ""
		if s.Lineage.Truncated {
			trunc = " provenance=truncated (restored from a checkpoint)"
		}
		p("  lineage: %d records live, %d bytes retained%s", s.Lineage.Live, s.Lineage.Bytes, trunc)
	} else {
		p("  lineage: disabled (run with provenance to record it)")
	}
	if s.Inner != nil {
		printState(w, s.Inner, indent+"  ")
	}
	for _, sub := range s.Shards {
		if sub != nil {
			printState(w, sub, indent+"  ")
		}
	}
}

// printFlightSummary renders a per-op histogram of the retained trace.
func printFlightSummary(w io.Writer, fl []obsv.TraceEvent) {
	counts := map[obsv.Op]int{}
	for _, te := range fl {
		counts[te.Op]++
	}
	ops := make([]obsv.Op, 0, len(counts))
	for op := range counts {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	fmt.Fprintf(w, "flight: %d retained trace events\n", len(fl))
	for _, op := range ops {
		fmt.Fprintf(w, "  %-10s %d\n", op, counts[op])
	}
}

// parseMatchKey splits a "|"-joined identity into event sequence numbers.
func parseMatchKey(key string) ([]event.Seq, error) {
	parts := strings.Split(key, "|")
	seqs := make([]event.Seq, len(parts))
	for i, p := range parts {
		n, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("match identity %q: %q is not an event sequence number", key, p)
		}
		seqs[i] = event.Seq(n)
	}
	return seqs, nil
}

// explainMatch answers "why did match M emit?" from the trace: the
// per-event admission/stack history of every contributing event, the
// construction trigger, and the emit (and any retract) itself.
func explainMatch(w io.Writer, key string, fl []obsv.TraceEvent, snap *provenance.StateSnapshot) error {
	seqs, err := parseMatchKey(key)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "match %s:\n", key)
	inMatch := make(map[event.Seq]bool, len(seqs))
	for _, s := range seqs {
		inMatch[s] = true
	}
	var emits, retracts []obsv.TraceEvent
	shown := 0
	for _, te := range fl {
		switch {
		case te.Match == key && te.Op == obsv.OpEmit:
			emits = append(emits, te)
		case te.Match == key && te.Op == obsv.OpRetract:
			retracts = append(retracts, te)
		case lifecycleOp(te.Op) && te.Seq != 0 && inMatch[te.Seq]:
			// Emission events are matched by identity above, never by Seq:
			// their Seq is the emission counter, which shares the numbering
			// space with (and can collide with) event sequence numbers.
			fmt.Fprintf(w, "  %s\n", te)
			shown++
		}
	}
	if shown == 0 {
		fmt.Fprintf(w, "  (no per-event trace retained for its events — they may have rotated out of the flight window)\n")
	}
	switch {
	case len(emits) > 0:
		for _, te := range emits {
			fmt.Fprintf(w, "  %s\n", te)
			if isAggregate(te.Engine) {
				// Aggregate emissions cite the events of every contributing
				// pattern match; TS is the window end and N the match count.
				fmt.Fprintf(w, "verdict: window aggregate emitted by %s — %d contributing matches over the window ending ts=%d, citing %d events\n",
					te.Engine, te.N, te.TS, len(seqs))
				continue
			}
			fmt.Fprintf(w, "verdict: emitted by %s — all %d events admitted, stacked, and joined within the window; last event ts=%d\n",
				te.Engine, len(seqs), te.TS)
		}
		for _, te := range retracts {
			fmt.Fprintf(w, "  %s\n", te)
			if isAggregate(te.Engine) {
				fmt.Fprintf(w, "verdict: later RETRACTED by %s at seq=%d — a revision replaced the previewed window value\n", te.Engine, te.Seq)
				continue
			}
			fmt.Fprintf(w, "verdict: later RETRACTED by %s at seq=%d — a late event invalidated the speculative result\n", te.Engine, te.Seq)
		}
	case len(retracts) > 0:
		for _, te := range retracts {
			fmt.Fprintf(w, "  %s\n", te)
		}
		fmt.Fprintf(w, "verdict: only a retraction is retained; the emit rotated out of the flight window\n")
	default:
		fmt.Fprintf(w, "verdict: no emit or retract for this identity in the retained trace")
		if provenanceOff(fl, snap) {
			fmt.Fprintf(w, " — provenance looks disabled (emit events carry no match identity); rerun with esprun -explain or Config.Provenance")
		} else {
			fmt.Fprintf(w, " — it may have rotated out of the flight window, or never emitted")
		}
		fmt.Fprintln(w)
	}
	return nil
}

// provenanceOff reports whether the artifacts indicate lineage was never
// recorded: the snapshot says so, or every retained emit lacks an
// identity.
func provenanceOff(fl []obsv.TraceEvent, snap *provenance.StateSnapshot) bool {
	if snap != nil {
		return !snap.Lineage.Enabled
	}
	for _, te := range fl {
		if (te.Op == obsv.OpEmit || te.Op == obsv.OpRetract) && te.Match != "" {
			return false
		}
	}
	return true
}

// explainEvent answers "what happened to event E?": its retained
// lifecycle timeline, whether it was dropped, and which matches cite it.
func explainEvent(w io.Writer, seq event.Seq, fl []obsv.TraceEvent, snap *provenance.StateSnapshot) error {
	fmt.Fprintf(w, "event #%d:\n", seq)
	var timeline []obsv.TraceEvent
	matchesCiting := map[string]bool{}
	for _, te := range fl {
		if lifecycleOp(te.Op) && te.Seq == seq {
			timeline = append(timeline, te)
		}
		if te.Match != "" && (te.Op == obsv.OpEmit || te.Op == obsv.OpRetract) {
			if cites(te.Match, seq) {
				matchesCiting[te.Match] = true
				timeline = append(timeline, te)
			}
		}
	}
	dropped, admitted := false, false
	for _, te := range timeline {
		fmt.Fprintf(w, "  %s\n", te)
		switch te.Op {
		case obsv.OpDrop:
			dropped = true
		case obsv.OpAdmit:
			admitted = true
		}
	}
	switch {
	case dropped:
		fmt.Fprintf(w, "verdict: DROPPED at admission — its timestamp violated the disorder bound (below clock−K when it arrived), or a supervised runtime rejected it as a duplicate\n")
	case len(matchesCiting) > 0:
		keys := make([]string, 0, len(matchesCiting))
		for k := range matchesCiting {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(w, "verdict: admitted and cited by %d match(es): %s\n", len(matchesCiting), strings.Join(keys, ", "))
	case admitted:
		fmt.Fprintf(w, "verdict: admitted but cited by no retained match — it may be irrelevant to the pattern, still pending, or its matches rotated out of the flight window\n")
	case len(timeline) == 0:
		fmt.Fprintf(w, "verdict: not in the retained trace — it arrived before the flight window%s\n", orNever(snap))
	default:
		fmt.Fprintf(w, "verdict: traced but never admitted into a stack\n")
	}
	return nil
}

func orNever(snap *provenance.StateSnapshot) string {
	if snap == nil {
		return ", or never arrived"
	}
	return fmt.Sprintf(", or never arrived (engine clock is at %d)", snap.Clock)
}

// lifecycleOp reports whether an op's Seq field is an event sequence
// number (admission/stack lifecycle) rather than an emission counter
// (emit/retract) or unrelated bookkeeping.
func lifecycleOp(op obsv.Op) bool {
	switch op {
	case obsv.OpAdmit, obsv.OpDrop, obsv.OpStackPush, obsv.OpRepair, obsv.OpTrigger:
		return true
	}
	return false
}

// isAggregate reports whether an emitting engine is the windowed
// aggregation operator (its name wraps the inner strategy, e.g.
// "agg(native)"): such emissions are window values whose identity cites
// the events of every contributing pattern match.
func isAggregate(engine string) bool { return strings.HasPrefix(engine, "agg(") }

// cites reports whether a "|"-joined match identity contains seq.
func cites(key string, seq event.Seq) bool {
	want := strconv.FormatUint(uint64(seq), 10)
	for _, p := range strings.Split(key, "|") {
		if p == want {
			return true
		}
	}
	return false
}
