package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"oostream"
)

// harvest runs a provenance-enabled engine over a small disordered stream
// and writes the two espexplain inputs: the state snapshot (JSON) and the
// flight dump (JSON Lines).
func harvest(t *testing.T) (statePath, flightPath string, matchKeys []string) {
	t.Helper()
	q := oostream.MustCompile("PATTERN SEQ(A a, B b) WHERE a.id = b.id WITHIN 50", nil)
	flight := oostream.NewFlightRecorder(256)
	en := oostream.MustNewEngine(q, oostream.Config{
		K:          100,
		Provenance: true,
		Trace:      flight,
	})
	events := []oostream.Event{
		oostream.NewEvent("B", 20, map[string]oostream.Value{"id": oostream.Int(1)}),
		oostream.NewEvent("A", 10, map[string]oostream.Value{"id": oostream.Int(1)}),
		oostream.NewEvent("A", 100, map[string]oostream.Value{"id": oostream.Int(2)}),
		oostream.NewEvent("B", 110, map[string]oostream.Value{"id": oostream.Int(2)}),
	}
	var ms []oostream.Match
	for i, e := range events {
		e.Seq = oostream.Seq(i + 1)
		ms = append(ms, en.Process(e)...)
	}
	ms = append(ms, en.Flush()...)
	for _, m := range ms {
		if m.Prov == nil {
			t.Fatalf("provenance enabled but match %s carries no lineage", m.Key())
		}
		matchKeys = append(matchKeys, m.Prov.MatchKey())
	}
	if len(matchKeys) == 0 {
		t.Fatal("no matches emitted")
	}

	dir := t.TempDir()
	statePath = filepath.Join(dir, "state.json")
	raw, err := json.Marshal(en.StateSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(statePath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	flightPath = filepath.Join(dir, "flight.jsonl")
	var buf bytes.Buffer
	if err := flight.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(flightPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return statePath, flightPath, matchKeys
}

func TestSummary(t *testing.T) {
	statePath, flightPath, _ := harvest(t)
	var out bytes.Buffer
	if err := run([]string{"-state", statePath, "-flight", flightPath}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"engine: native", "clock=110", "lineage:", "flight:", "emit"} {
		if !strings.Contains(got, want) {
			t.Errorf("summary missing %q:\n%s", want, got)
		}
	}
}

func TestExplainMatch(t *testing.T) {
	statePath, flightPath, keys := harvest(t)
	var out bytes.Buffer
	err := run([]string{"-state", statePath, "-flight", flightPath, "-match", keys[0]}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "verdict: emitted by") {
		t.Errorf("match verdict missing:\n%s", got)
	}
	if !strings.Contains(got, "admit") || !strings.Contains(got, "push") {
		t.Errorf("contributing-event timeline missing:\n%s", got)
	}
}

func TestExplainMatchUnknown(t *testing.T) {
	_, flightPath, _ := harvest(t)
	var out bytes.Buffer
	if err := run([]string{"-flight", flightPath, "-match", "998|999"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no emit or retract for this identity") {
		t.Errorf("unknown-match verdict missing:\n%s", out.String())
	}
}

func TestExplainEvent(t *testing.T) {
	_, flightPath, keys := harvest(t)
	firstSeq := strings.Split(keys[0], "|")[0]
	var out bytes.Buffer
	if err := run([]string{"-flight", flightPath, "-event", firstSeq}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "verdict: admitted and cited by") {
		t.Errorf("event verdict missing:\n%s", out.String())
	}
}

func TestExplainDroppedEvent(t *testing.T) {
	q := oostream.MustCompile("PATTERN SEQ(A a, B b) WITHIN 50", nil)
	flight := oostream.NewFlightRecorder(64)
	en := oostream.MustNewEngine(q, oostream.Config{K: 5, Provenance: true, Trace: flight})
	en.Process(oostream.Event{Type: "A", TS: 100, Seq: 1})
	en.Process(oostream.Event{Type: "A", TS: 10, Seq: 2}) // far below clock−K: dropped
	en.Flush()

	dir := t.TempDir()
	flightPath := filepath.Join(dir, "flight.jsonl")
	var buf bytes.Buffer
	if err := flight.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(flightPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-flight", flightPath, "-event", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "verdict: DROPPED at admission") {
		t.Errorf("drop verdict missing:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"no inputs", []string{}},
		{"match without flight", []string{"-state", "x.json", "-match", "1|2"}},
		{"missing file", []string{"-flight", "/nonexistent.jsonl"}},
		{"bad match key", []string{"-flight", "f", "-match", "a|b"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(tt.args, &out); err == nil {
				t.Fatal("want error")
			}
		})
	}
}
