package oostream

import (
	"strings"
	"testing"
)

func pairQuery(t *testing.T) *Query {
	t.Helper()
	return MustCompile("PATTERN SEQ(A a, B b) WHERE a.id = b.id WITHIN 100", nil)
}

func pairEvent(typ string, ts Time, seq Seq, id int64) Event {
	return Event{Type: typ, TS: ts, Seq: seq, Attrs: Attrs{"id": Int(id)}}
}

func TestProcessAfterFlushPanics(t *testing.T) {
	q := pairQuery(t)
	for _, strat := range Strategies() {
		t.Run(string(strat), func(t *testing.T) {
			en := MustNewEngine(q, Config{Strategy: strat, K: 10})
			en.Process(pairEvent("A", 1, 1, 7))
			en.Flush()
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("Process after Flush did not panic")
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, "sealed") {
					t.Fatalf("panic message = %v", r)
				}
			}()
			en.Process(pairEvent("B", 2, 2, 7))
		})
	}
}

func TestFlushIsIdempotent(t *testing.T) {
	q := pairQuery(t)
	en := MustNewEngine(q, Config{K: 10})
	en.Process(pairEvent("A", 1, 1, 7))
	en.Process(pairEvent("B", 2, 2, 7))
	first := en.Flush()
	if len(first) != 0 {
		// The match was emitted during Process for this query; Flush output
		// depends on pending negation state, so only the second call is
		// pinned down.
		t.Logf("first Flush returned %d matches", len(first))
	}
	if again := en.Flush(); again != nil {
		t.Fatalf("second Flush returned %d matches, want nil", len(again))
	}
}

// TestHeartbeatReleasesOrderedOutput drives an ordered-output engine into a
// state where a completed match is held by the order buffer (its timestamp
// is above the watermark), then checks a heartbeat alone releases it.
func TestHeartbeatReleasesOrderedOutput(t *testing.T) {
	q := pairQuery(t)
	en := MustNewEngine(q, Config{K: 50, OrderedOutput: true})
	var got []Match
	got = append(got, en.Process(pairEvent("A", 10, 1, 7))...)
	got = append(got, en.Process(pairEvent("B", 20, 2, 7))...)
	if len(got) != 0 {
		t.Fatalf("match released before the watermark reached it: %d matches", len(got))
	}
	released := en.Advance(100)
	if len(released) != 1 {
		t.Fatalf("Advance released %d matches, want 1", len(released))
	}
	if ms := en.Flush(); len(ms) != 0 {
		t.Fatalf("Flush re-emitted %d matches after the heartbeat released them", len(ms))
	}
}

func TestConfigPartitionValidation(t *testing.T) {
	q := pairQuery(t)
	if _, err := NewEngine(q, Config{K: 5, Partition: Partition{Shards: 3}}); err == nil ||
		!strings.Contains(err.Error(), "Partition.Shards") {
		t.Fatalf("Shards without Attr: err = %v", err)
	}
	unpart := MustCompile("PATTERN SEQ(A a, B b) WITHIN 10", nil)
	if _, err := NewEngine(unpart, Config{K: 5, Partition: Partition{Attr: "id", Shards: 2}}); err == nil ||
		!strings.Contains(err.Error(), "not partitionable") {
		t.Fatalf("unpartitionable query: err = %v", err)
	}
	// Shards defaults to 1 when only Attr is set.
	en, err := NewEngine(q, Config{K: 5, Partition: Partition{Attr: "id"}})
	if err != nil {
		t.Fatal(err)
	}
	if en.Strategy() != "shard(native)" {
		t.Fatalf("Strategy() = %q, want shard(native)", en.Strategy())
	}
}

func TestConfigObserverAndTrace(t *testing.T) {
	q := pairQuery(t)
	reg := NewObserver()
	var emits int
	cfg := Config{
		K:        10,
		Observer: reg,
		Trace: TraceFunc(func(ev TraceEvent) {
			if ev.Op == OpEmit {
				emits++
			}
		}),
	}
	en := MustNewEngine(q, cfg)
	en.Process(pairEvent("A", 1, 1, 7))
	en.Process(pairEvent("B", 2, 2, 7))
	en.Flush()
	if emits != 1 {
		t.Fatalf("trace hook saw %d emits, want 1", emits)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`oostream_events_in_total{engine="native"} 2`,
		`oostream_matches_total{engine="native"} 1`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("prometheus output missing %q\n%s", want, sb.String())
		}
	}
}

func TestConfigObserverPartitioned(t *testing.T) {
	q := pairQuery(t)
	reg := NewObserver()
	cfg := Config{K: 10, Observer: reg, Partition: Partition{Attr: "id", Shards: 2}}
	en := MustNewEngine(q, cfg)
	for i := int64(0); i < 6; i++ {
		en.Process(pairEvent("A", Time(10*i+1), Seq(2*i+1), i))
		en.Process(pairEvent("B", Time(10*i+2), Seq(2*i+2), i))
	}
	en.Flush()
	names := reg.Names()
	joined := strings.Join(names, ",")
	for _, want := range []string{"native/shard0", "native/shard1", "shard(native)"} {
		if !strings.Contains(joined, want) {
			t.Errorf("registry names %v missing %q", names, want)
		}
	}
	var perShard uint64
	for _, name := range []string{"native/shard0", "native/shard1"} {
		perShard += reg.Series(name).EventsIn.Load()
	}
	if perShard != 12 {
		t.Fatalf("per-shard EventsIn sums to %d, want 12", perShard)
	}
}

func TestRawAccessor(t *testing.T) {
	q := pairQuery(t)
	en := MustNewEngine(q, Config{K: 10})
	raw := en.Raw()
	if raw.Name() != en.Strategy() {
		t.Fatalf("Raw().Name() = %q, Strategy() = %q", raw.Name(), en.Strategy())
	}
	if raw.StateSize() != en.StateSize() {
		t.Fatal("Raw() does not share state with the facade")
	}
}
