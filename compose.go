package oostream

import (
	"fmt"
)

// Composer turns matches into composite events, the CEP "transformation"
// stage: a query's RETURN columns become the attributes of a new event
// type, timestamped at the match's last element, so one query's detections
// feed the next query's pattern (hierarchical CEP).
//
// Composite events inherit stream time from their matches, so disorder
// propagates naturally: a match completed by a late event yields a
// composite event that is itself late by the same amount. Stage-two
// engines therefore need a disorder bound of at least the stage-one bound
// (plus stage-one sealing delay for negation queries).
type Composer struct {
	typeName string
	cols     []string
}

// NewComposer builds a composer emitting events of the given type from
// matches of q. The query must have a RETURN clause; its column names
// become the attribute names.
func NewComposer(typeName string, q *Query) (*Composer, error) {
	if typeName == "" {
		return nil, fmt.Errorf("composite type name must not be empty")
	}
	if len(q.plan.Return) == 0 {
		return nil, fmt.Errorf("query has no RETURN clause; composite events need attributes")
	}
	cols := make([]string, len(q.plan.Return))
	for i, col := range q.plan.Return {
		cols[i] = col.Name
	}
	return &Composer{typeName: typeName, cols: cols}, nil
}

// TypeName returns the composite event type.
func (c *Composer) TypeName() string { return c.typeName }

// Columns returns the attribute names, in RETURN order.
func (c *Composer) Columns() []string {
	out := make([]string, len(c.cols))
	copy(out, c.cols)
	return out
}

// Event converts one match. Retractions are rejected: a downstream engine
// cannot un-see an event, so speculative stage-one output cannot be
// chained — use the native (conservative) strategy upstream.
func (c *Composer) Event(m Match) (Event, error) {
	if m.Kind == Retract {
		return Event{}, fmt.Errorf("cannot compose a retraction; chain from a conservative strategy")
	}
	if len(m.Fields) != len(c.cols) {
		return Event{}, fmt.Errorf("match has %d fields, composer expects %d", len(m.Fields), len(c.cols))
	}
	attrs := make(Attrs, len(c.cols))
	for i, name := range c.cols {
		attrs[name] = m.Fields[i]
	}
	return Event{
		Type:  c.typeName,
		TS:    m.Last().TS,
		Attrs: attrs,
	}, nil
}

// Chain wires a two-stage detection: stage-one matches become composite
// events processed by the stage-two engine, and stage-two's matches are
// returned. Both engines are flushed. Composite events receive sequence
// numbers from the stage-two engine's auto-assignment, offset past the
// input's to keep them unique.
func Chain(stage1 *Engine, composer *Composer, stage2 *Engine, events []Event) ([]Match, error) {
	var out []Match
	feed := func(matches []Match) error {
		for _, m := range matches {
			ce, err := composer.Event(m)
			if err != nil {
				return err
			}
			out = append(out, stage2.Process(ce)...)
		}
		return nil
	}
	for _, e := range events {
		if err := feed(stage1.Process(e)); err != nil {
			return nil, err
		}
	}
	if err := feed(stage1.Flush()); err != nil {
		return nil, err
	}
	return append(out, stage2.Flush()...), nil
}
