// Package predicate compiles query expression trees into evaluators over
// event bindings. A binding is a slice of events indexed by slot; the
// compiler is handed a resolver that maps pattern variable names to slots,
// so the same expression machinery serves positive sequence predicates,
// negation predicates, and RETURN projections.
//
// Evaluation is dynamically typed with the same coercion rules the analyzer
// enforces statically: ints and floats mix in arithmetic and comparisons,
// everything else must match kinds. Errors (missing attribute, type
// mismatch, division by zero) are reported to the caller, which typically
// treats a failed predicate as "no match" while counting the error.
package predicate

import (
	"errors"
	"fmt"

	"oostream/internal/event"
	"oostream/internal/query"
)

// TSAttr is the pseudo-attribute resolving to an event's timestamp when the
// payload does not define an attribute of the same name.
const TSAttr = "ts"

// Eval errors.
var (
	// ErrMissingAttr is wrapped when an event lacks a referenced attribute.
	ErrMissingAttr = errors.New("missing attribute")
	// ErrType is wrapped on dynamic type mismatches.
	ErrType = errors.New("type error")
	// ErrDivZero is wrapped on integer division or modulo by zero.
	ErrDivZero = errors.New("division by zero")
	// ErrUnboundSlot is wrapped when a binding slot holds no event.
	ErrUnboundSlot = errors.New("unbound slot")
)

// SlotResolver maps a pattern variable name to its binding slot.
type SlotResolver func(varName string) (slot int, ok bool)

// Compiled is an executable expression.
type Compiled struct {
	eval func(binding []event.Event) (event.Value, error)
	// refs is the set of slots the expression reads.
	refs []int
	// mask is the slot set as a bitmask (slots < 64).
	mask uint64
	src  string
}

// Refs returns the slots the expression reads, in ascending order.
func (c *Compiled) Refs() []int { return c.refs }

// Mask returns the referenced slots as a bitmask.
func (c *Compiled) Mask() uint64 { return c.mask }

// String returns the source form of the compiled expression.
func (c *Compiled) String() string { return c.src }

// Eval computes the expression value under the binding.
func (c *Compiled) Eval(binding []event.Event) (event.Value, error) {
	return c.eval(binding)
}

// EvalBool evaluates and requires a boolean result.
func (c *Compiled) EvalBool(binding []event.Event) (bool, error) {
	v, err := c.eval(binding)
	if err != nil {
		return false, err
	}
	b, ok := v.AsBool()
	if !ok {
		return false, fmt.Errorf("predicate %s yielded %s, want bool: %w", c.src, v.Kind(), ErrType)
	}
	return b, nil
}

// Compile builds an evaluator for the expression. Variable references are
// resolved through the resolver; unknown variables are compile errors.
// Slots must be below 64 (patterns are far shorter in practice).
func Compile(e query.Expr, resolve SlotResolver) (*Compiled, error) {
	c := &compiler{resolve: resolve, refSet: make(map[int]bool)}
	fn, err := c.compile(e)
	if err != nil {
		return nil, err
	}
	refs := make([]int, 0, len(c.refSet))
	var mask uint64
	for s := range c.refSet {
		refs = append(refs, s)
		mask |= 1 << uint(s)
	}
	sortInts(refs)
	return &Compiled{eval: fn, refs: refs, mask: mask, src: e.String()}, nil
}

type compiler struct {
	resolve SlotResolver
	refSet  map[int]bool
}

type evalFn func(binding []event.Event) (event.Value, error)

func (c *compiler) compile(e query.Expr) (evalFn, error) {
	switch n := e.(type) {
	case *query.Literal:
		v := n.Val
		return func([]event.Event) (event.Value, error) { return v, nil }, nil
	case *query.AttrRef:
		return c.compileAttrRef(n)
	case *query.UnaryExpr:
		return c.compileUnary(n)
	case *query.BinaryExpr:
		return c.compileBinary(n)
	default:
		return nil, fmt.Errorf("unsupported expression node %T at %s", e, e.Pos())
	}
}

func (c *compiler) compileAttrRef(n *query.AttrRef) (evalFn, error) {
	slot, ok := c.resolve(n.Var)
	if !ok {
		return nil, fmt.Errorf("unknown variable %q at %s", n.Var, n.At)
	}
	if slot < 0 || slot >= 64 {
		return nil, fmt.Errorf("slot %d out of range for %q", slot, n.Var)
	}
	c.refSet[slot] = true
	attr := n.Attr
	ref := n.String()
	return func(binding []event.Event) (event.Value, error) {
		if slot >= len(binding) {
			return event.Value{}, fmt.Errorf("%s: slot %d: %w", ref, slot, ErrUnboundSlot)
		}
		ev := binding[slot]
		if v, ok := ev.Attr(attr); ok {
			return v, nil
		}
		if attr == TSAttr {
			return event.Int(ev.TS), nil
		}
		return event.Value{}, fmt.Errorf("%s on %s: %w", ref, ev.Type, ErrMissingAttr)
	}, nil
}

func (c *compiler) compileUnary(n *query.UnaryExpr) (evalFn, error) {
	x, err := c.compile(n.X)
	if err != nil {
		return nil, err
	}
	if n.Not {
		return func(binding []event.Event) (event.Value, error) {
			v, err := x(binding)
			if err != nil {
				return event.Value{}, err
			}
			b, ok := v.AsBool()
			if !ok {
				return event.Value{}, fmt.Errorf("NOT on %s: %w", v.Kind(), ErrType)
			}
			return event.Bool(!b), nil
		}, nil
	}
	return func(binding []event.Event) (event.Value, error) {
		v, err := x(binding)
		if err != nil {
			return event.Value{}, err
		}
		switch v.Kind() {
		case event.KindInt:
			i, _ := v.AsInt()
			return event.Int(-i), nil
		case event.KindFloat:
			f, _ := v.AsFloat()
			return event.Float(-f), nil
		default:
			return event.Value{}, fmt.Errorf("negation on %s: %w", v.Kind(), ErrType)
		}
	}, nil
}

func (c *compiler) compileBinary(n *query.BinaryExpr) (evalFn, error) {
	left, err := c.compile(n.Left)
	if err != nil {
		return nil, err
	}
	right, err := c.compile(n.Right)
	if err != nil {
		return nil, err
	}
	op := n.Op
	switch {
	case op.IsLogical():
		return compileLogical(op, left, right), nil
	case op.IsComparison():
		return compileComparison(op, left, right), nil
	case op.IsArithmetic():
		return compileArithmetic(op, left, right), nil
	default:
		return nil, fmt.Errorf("unknown operator %s at %s", op, n.At)
	}
}

func compileLogical(op query.BinaryOp, left, right evalFn) evalFn {
	// AND/OR short-circuit: the right operand is not evaluated (and cannot
	// error) when the left operand decides the result.
	return func(binding []event.Event) (event.Value, error) {
		lv, err := left(binding)
		if err != nil {
			return event.Value{}, err
		}
		lb, ok := lv.AsBool()
		if !ok {
			return event.Value{}, fmt.Errorf("%s on %s: %w", op, lv.Kind(), ErrType)
		}
		if op == query.OpAnd && !lb {
			return event.Bool(false), nil
		}
		if op == query.OpOr && lb {
			return event.Bool(true), nil
		}
		rv, err := right(binding)
		if err != nil {
			return event.Value{}, err
		}
		rb, ok := rv.AsBool()
		if !ok {
			return event.Value{}, fmt.Errorf("%s on %s: %w", op, rv.Kind(), ErrType)
		}
		return event.Bool(rb), nil
	}
}

func compileComparison(op query.BinaryOp, left, right evalFn) evalFn {
	return func(binding []event.Event) (event.Value, error) {
		lv, err := left(binding)
		if err != nil {
			return event.Value{}, err
		}
		rv, err := right(binding)
		if err != nil {
			return event.Value{}, err
		}
		switch op {
		case query.OpEq:
			return event.Bool(lv.Equal(rv)), nil
		case query.OpNeq:
			return event.Bool(!lv.Equal(rv)), nil
		}
		cmp, err := lv.Compare(rv)
		if err != nil {
			return event.Value{}, fmt.Errorf("%s: %w", op, err)
		}
		switch op {
		case query.OpLt:
			return event.Bool(cmp < 0), nil
		case query.OpLte:
			return event.Bool(cmp <= 0), nil
		case query.OpGt:
			return event.Bool(cmp > 0), nil
		default: // OpGte
			return event.Bool(cmp >= 0), nil
		}
	}
}

func compileArithmetic(op query.BinaryOp, left, right evalFn) evalFn {
	return func(binding []event.Event) (event.Value, error) {
		lv, err := left(binding)
		if err != nil {
			return event.Value{}, err
		}
		rv, err := right(binding)
		if err != nil {
			return event.Value{}, err
		}
		if !lv.IsNumeric() || !rv.IsNumeric() {
			return event.Value{}, fmt.Errorf("%s on %s and %s: %w", op, lv.Kind(), rv.Kind(), ErrType)
		}
		if op == query.OpMod {
			li, lok := lv.AsInt()
			ri, rok := rv.AsInt()
			if !lok || !rok {
				return event.Value{}, fmt.Errorf("%% needs integers, got %s and %s: %w", lv.Kind(), rv.Kind(), ErrType)
			}
			if ri == 0 {
				return event.Value{}, fmt.Errorf("%%: %w", ErrDivZero)
			}
			return event.Int(li % ri), nil
		}
		if lv.Kind() == event.KindInt && rv.Kind() == event.KindInt {
			li, _ := lv.AsInt()
			ri, _ := rv.AsInt()
			switch op {
			case query.OpAdd:
				return event.Int(li + ri), nil
			case query.OpSub:
				return event.Int(li - ri), nil
			case query.OpMul:
				return event.Int(li * ri), nil
			default: // OpDiv
				if ri == 0 {
					return event.Value{}, fmt.Errorf("/: %w", ErrDivZero)
				}
				return event.Int(li / ri), nil
			}
		}
		lf, _ := lv.AsFloat()
		rf, _ := rv.AsFloat()
		switch op {
		case query.OpAdd:
			return event.Float(lf + rf), nil
		case query.OpSub:
			return event.Float(lf - rf), nil
		case query.OpMul:
			return event.Float(lf * rf), nil
		default: // OpDiv
			if rf == 0 {
				return event.Value{}, fmt.Errorf("/: %w", ErrDivZero)
			}
			return event.Float(lf / rf), nil
		}
	}
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
