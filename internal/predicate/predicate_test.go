package predicate

import (
	"errors"
	"testing"
	"testing/quick"

	"oostream/internal/event"
	"oostream/internal/query"
)

// twoSlots resolves a->0, b->1.
func twoSlots(name string) (int, bool) {
	switch name {
	case "a":
		return 0, true
	case "b":
		return 1, true
	default:
		return 0, false
	}
}

func compileSrc(t *testing.T, src string) *Compiled {
	t.Helper()
	e, err := query.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	c, err := Compile(e, twoSlots)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return c
}

func binding(aAttrs, bAttrs event.Attrs) []event.Event {
	return []event.Event{
		event.New("A", 100, aAttrs),
		event.New("B", 200, bAttrs),
	}
}

func TestEvalComparisonsAndLogic(t *testing.T) {
	bind := binding(
		event.Attrs{"x": event.Int(5), "s": event.Str("hi"), "f": event.Float(2.5), "ok": event.Bool(true)},
		event.Attrs{"x": event.Int(7)},
	)
	tests := []struct {
		src  string
		want bool
	}{
		{"a.x = 5", true},
		{"a.x = 6", false},
		{"a.x != 6", true},
		{"a.x < b.x", true},
		{"a.x <= 5", true},
		{"a.x > b.x", false},
		{"a.x >= 5", true},
		{"a.f = 2.5", true},
		{"a.f > 2", true},
		{"a.x = 5.0", true},
		{"a.s = 'hi'", true},
		{"a.s != 'ho'", true},
		{"a.s < 'hj'", true},
		{"a.ok = TRUE", true},
		{"NOT a.ok", false},
		{"a.x = 5 AND b.x = 7", true},
		{"a.x = 5 AND b.x = 8", false},
		{"a.x = 9 OR b.x = 7", true},
		{"a.x = 9 OR b.x = 8", false},
		{"a.x + 2 = b.x", true},
		{"b.x - a.x = 2", true},
		{"a.x * 2 > b.x", true},
		{"b.x / a.x = 1", true}, // integer division
		{"b.x % a.x = 2", true},
		{"-a.x = -5", true},
		{"-a.f < 0", true},
		{"a.f * 2 = 5.0", true},
		{"a.x / 2.0 = 2.5", true},
		{"a.ts = 100", true}, // pseudo-attribute
		{"b.ts - a.ts = 100", true},
	}
	for _, tt := range tests {
		c := compileSrc(t, tt.src)
		got, err := c.EvalBool(bind)
		if err != nil {
			t.Errorf("%q: %v", tt.src, err)
			continue
		}
		if got != tt.want {
			t.Errorf("%q = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	bind := binding(
		event.Attrs{"x": event.Int(5), "s": event.Str("hi"), "z": event.Int(0)},
		event.Attrs{"x": event.Int(7)},
	)
	tests := []struct {
		src     string
		wantErr error
	}{
		{"a.nope = 1", ErrMissingAttr},
		{"a.s + 1 = 2", ErrType},
		{"a.s < 1", event.ErrIncomparable},
		{"NOT a.x", ErrType},
		{"-a.s = 1", ErrType},
		{"a.x AND a.x = 5", ErrType},
		{"a.x = 5 AND a.x", ErrType},
		{"a.x / a.z = 1", ErrDivZero},
		{"a.x % a.z = 1", ErrDivZero},
		{"a.x % 2.0 = 1", ErrType},
	}
	for _, tt := range tests {
		c := compileSrc(t, tt.src)
		_, err := c.EvalBool(bind)
		if err == nil {
			t.Errorf("%q: want error %v, got nil", tt.src, tt.wantErr)
			continue
		}
		if !errors.Is(err, tt.wantErr) {
			t.Errorf("%q: error = %v, want %v", tt.src, err, tt.wantErr)
		}
	}
}

func TestEvalBoolOnNonBool(t *testing.T) {
	c := compileSrc(t, "a.x + 1")
	if _, err := c.EvalBool(binding(event.Attrs{"x": event.Int(1)}, nil)); !errors.Is(err, ErrType) {
		t.Errorf("want ErrType, got %v", err)
	}
}

func TestShortCircuit(t *testing.T) {
	// The right operand errors (missing attr) but must not be reached.
	bind := binding(event.Attrs{"x": event.Int(5)}, event.Attrs{})
	c := compileSrc(t, "a.x = 9 AND b.nope = 1")
	got, err := c.EvalBool(bind)
	if err != nil || got {
		t.Errorf("AND short-circuit: got %v, %v", got, err)
	}
	c = compileSrc(t, "a.x = 5 OR b.nope = 1")
	got, err = c.EvalBool(bind)
	if err != nil || !got {
		t.Errorf("OR short-circuit: got %v, %v", got, err)
	}
}

func TestUnboundSlot(t *testing.T) {
	c := compileSrc(t, "b.x = 1")
	_, err := c.EvalBool([]event.Event{event.New("A", 1, nil)})
	if !errors.Is(err, ErrUnboundSlot) {
		t.Errorf("want ErrUnboundSlot, got %v", err)
	}
}

func TestCompileUnknownVar(t *testing.T) {
	e, err := query.ParseExpr("z.x = 1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(e, twoSlots); err == nil {
		t.Fatal("want compile error for unknown var")
	}
}

func TestRefsAndMask(t *testing.T) {
	c := compileSrc(t, "b.x = 1 AND a.y = 2 AND b.z = 3")
	refs := c.Refs()
	if len(refs) != 2 || refs[0] != 0 || refs[1] != 1 {
		t.Errorf("Refs() = %v", refs)
	}
	if c.Mask() != 0b11 {
		t.Errorf("Mask() = %b", c.Mask())
	}
	c = compileSrc(t, "a.x = 1")
	if c.Mask() != 0b01 || len(c.Refs()) != 1 {
		t.Errorf("single-var: refs=%v mask=%b", c.Refs(), c.Mask())
	}
	c = compileSrc(t, "1 = 1")
	if c.Mask() != 0 || len(c.Refs()) != 0 {
		t.Errorf("constant: refs=%v mask=%b", c.Refs(), c.Mask())
	}
}

func TestTSAttrShadowedByPayload(t *testing.T) {
	// A payload attribute named "ts" wins over the pseudo-attribute.
	bind := []event.Event{event.New("A", 100, event.Attrs{"ts": event.Int(42)})}
	resolve := func(string) (int, bool) { return 0, true }
	e, err := query.ParseExpr("a.ts = 42")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(e, resolve)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.EvalBool(bind)
	if err != nil || !got {
		t.Errorf("payload ts should shadow pseudo-attr: %v, %v", got, err)
	}
}

func TestArithmeticIntFloatProperty(t *testing.T) {
	add := compileSrc(t, "a.x + b.x")
	f := func(x, y int32) bool {
		bind := binding(event.Attrs{"x": event.Int(int64(x))}, event.Attrs{"x": event.Int(int64(y))})
		v, err := add.Eval(bind)
		if err != nil {
			return false
		}
		got, ok := v.AsInt()
		return ok && got == int64(x)+int64(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComparisonTotalityProperty(t *testing.T) {
	lt := compileSrc(t, "a.x < b.x")
	gte := compileSrc(t, "a.x >= b.x")
	f := func(x, y int64) bool {
		bind := binding(event.Attrs{"x": event.Int(x)}, event.Attrs{"x": event.Int(y)})
		a, err1 := lt.EvalBool(bind)
		b, err2 := gte.EvalBool(bind)
		return err1 == nil && err2 == nil && a != b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
