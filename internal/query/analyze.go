package query

import (
	"fmt"

	"oostream/internal/event"
)

// Analyzed is the semantically checked form of a query, ready for planning.
type Analyzed struct {
	// Query is the underlying parse tree.
	Query *Query
	// Positives are the positive components in sequence order.
	Positives []Component
	// Negatives are the negated components with their gap placement.
	Negatives []Negative
	// VarPosition maps a variable name to its positive sequence position
	// (0-based); negative variables are absent.
	VarPosition map[string]int
	// NegVarIndex maps a negative variable name to its index in Negatives.
	NegVarIndex map[string]int
}

// Negative is a negated component anchored to a gap in the positive sequence.
type Negative struct {
	Component Component
	// GapAfter is the number of positive components that precede the
	// negation: 0 means before the first positive (leading negation),
	// len(Positives) means after the last (trailing negation).
	GapAfter int
}

// SemanticError reports a semantic (not syntactic) query problem.
type SemanticError struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *SemanticError) Error() string {
	return fmt.Sprintf("semantic error at %s: %s", e.Pos, e.Msg)
}

func semanticErrorf(pos Pos, format string, args ...any) error {
	return &SemanticError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Analyze checks a parsed query and returns its analyzed form. If schema is
// non-nil, event types and attribute references are checked against it and
// expressions are kind-checked; with a nil schema only structural checks run.
func Analyze(q *Query, schema *event.Schema) (*Analyzed, error) {
	if len(q.Components) == 0 {
		return nil, semanticErrorf(Pos{1, 1}, "pattern has no components")
	}
	a := &Analyzed{
		Query:       q,
		VarPosition: make(map[string]int),
		NegVarIndex: make(map[string]int),
	}
	seen := make(map[string]Pos)
	for _, c := range q.Components {
		if prev, dup := seen[c.Var]; dup {
			return nil, semanticErrorf(c.Pos, "variable %q already bound at %s", c.Var, prev)
		}
		seen[c.Var] = c.Pos
		if schema != nil {
			if _, ok := schema.Type(c.Type); !ok {
				return nil, semanticErrorf(c.Pos, "event type %q not declared in schema", c.Type)
			}
		}
		if c.Negated {
			a.NegVarIndex[c.Var] = len(a.Negatives)
			a.Negatives = append(a.Negatives, Negative{
				Component: c,
				GapAfter:  len(a.Positives),
			})
		} else {
			a.VarPosition[c.Var] = len(a.Positives)
			a.Positives = append(a.Positives, c)
		}
	}
	if len(a.Positives) == 0 {
		return nil, semanticErrorf(q.Components[0].Pos, "pattern needs at least one positive component")
	}
	if q.Within <= 0 {
		return nil, semanticErrorf(Pos{1, 1}, "WITHIN clause is required (unbounded patterns need unbounded state)")
	}

	varTypes := make(map[string]string, len(q.Components))
	for _, c := range q.Components {
		varTypes[c.Var] = c.Type
	}
	if q.Where != nil {
		kind, err := checkExpr(q.Where, varTypes, schema)
		if err != nil {
			return nil, err
		}
		if schema != nil && kind != event.KindBool {
			return nil, semanticErrorf(q.Where.Pos(), "WHERE clause must be boolean, got %s", kind)
		}
	}
	for _, item := range q.Return {
		if _, err := checkExpr(item.Expr, varTypes, schema); err != nil {
			return nil, err
		}
		for v := range Vars(item.Expr) {
			if _, isNeg := a.NegVarIndex[v]; isNeg {
				return nil, semanticErrorf(item.Expr.Pos(),
					"RETURN cannot reference negated variable %q (it does not occur in a match)", v)
			}
		}
	}
	if q.Agg != nil {
		if err := checkAggregate(q, a, varTypes, schema); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// windowType is the synthetic event type backing HAVING kind checks.
const windowType = "$window"

// checkAggregate validates the AGGREGATE clause: function arity, argument
// and GROUP BY references (positive components only, numeric argument under
// a schema), SLIDE bounds, and the HAVING expression over the reserved
// window pseudo-variable.
func checkAggregate(q *Query, a *Analyzed, varTypes map[string]string, schema *event.Schema) error {
	agg := q.Agg
	if len(q.Return) > 0 {
		return semanticErrorf(agg.At, "RETURN cannot be combined with AGGREGATE (aggregates emit window values, not event tuples)")
	}
	if _, bound := varTypes[HavingVar]; bound {
		return semanticErrorf(agg.At, "variable %q is reserved for HAVING window references", HavingVar)
	}
	argKind := event.KindInvalid
	switch agg.Func {
	case AggCount:
		if agg.Arg != nil {
			return semanticErrorf(agg.Arg.At, "COUNT counts matches; write COUNT(*)")
		}
	default:
		if agg.Arg == nil {
			return semanticErrorf(agg.At, "%s needs an attribute argument, e.g. %s(x.amount)", agg.Func, agg.Func)
		}
		if _, ok := a.VarPosition[agg.Arg.Var]; !ok {
			if _, neg := a.NegVarIndex[agg.Arg.Var]; neg {
				return semanticErrorf(agg.Arg.At, "cannot aggregate over negated variable %q (it does not occur in a match)", agg.Arg.Var)
			}
			return semanticErrorf(agg.Arg.At, "unknown variable %q", agg.Arg.Var)
		}
		if schema != nil {
			kind, err := checkExpr(agg.Arg, varTypes, schema)
			if err != nil {
				return err
			}
			if kind != event.KindInt && kind != event.KindFloat {
				return semanticErrorf(agg.Arg.At, "%s needs a numeric attribute, but %s is %s", agg.Func, agg.Arg, kind)
			}
			argKind = kind
		}
	}
	if agg.GroupBy != nil {
		if _, ok := a.VarPosition[agg.GroupBy.Var]; !ok {
			if _, neg := a.NegVarIndex[agg.GroupBy.Var]; neg {
				return semanticErrorf(agg.GroupBy.At, "cannot GROUP BY negated variable %q (it does not occur in a match)", agg.GroupBy.Var)
			}
			return semanticErrorf(agg.GroupBy.At, "unknown variable %q", agg.GroupBy.Var)
		}
		if schema != nil {
			if _, err := checkExpr(agg.GroupBy, varTypes, schema); err != nil {
				return err
			}
		}
	}
	if agg.Slide < 0 {
		return semanticErrorf(agg.At, "SLIDE must be positive, got %dms", agg.Slide)
	}
	if agg.Slide > q.Within {
		return semanticErrorf(agg.At, "SLIDE %dms exceeds WITHIN %dms (windows would skip events)", agg.Slide, q.Within)
	}
	if agg.Having != nil {
		if err := checkHaving(agg, argKind, varTypes, schema); err != nil {
			return err
		}
	}
	return nil
}

// checkHaving validates the HAVING expression. Reference checks (only
// w.value/count/start/end/key, key only under GROUP BY) always run; with a
// schema the expression is additionally kind-checked against the window's
// synthetic type and must be boolean.
func checkHaving(agg *AggClause, argKind event.Kind, varTypes map[string]string, schema *event.Schema) error {
	if err := checkHavingRefs(agg.Having, agg.GroupBy != nil); err != nil {
		return err
	}
	if schema == nil {
		return nil
	}
	var valueKind event.Kind
	switch agg.Func {
	case AggCount:
		valueKind = event.KindInt
	case AggAvg:
		valueKind = event.KindFloat
	default: // SUM/MIN/MAX take the argument's kind
		valueKind = argKind
	}
	fields := map[string]event.Kind{
		HavingValue: valueKind,
		HavingCount: event.KindInt,
		HavingStart: event.KindInt,
		HavingEnd:   event.KindInt,
	}
	if agg.GroupBy != nil {
		// GroupBy was reference-checked by the caller, so the lookup succeeds.
		kind, ok := schema.Field(varTypes[agg.GroupBy.Var], agg.GroupBy.Attr)
		if ok {
			fields[HavingKey] = kind
		}
	}
	win := event.NewSchema()
	win.Declare(windowType, fields)
	kind, err := checkExpr(agg.Having, map[string]string{HavingVar: windowType}, win)
	if err != nil {
		return err
	}
	if kind != event.KindBool {
		return semanticErrorf(agg.Having.Pos(), "HAVING must be boolean, got %s", kind)
	}
	return nil
}

func checkHavingRefs(e Expr, grouped bool) error {
	switch n := e.(type) {
	case *BinaryExpr:
		if err := checkHavingRefs(n.Left, grouped); err != nil {
			return err
		}
		return checkHavingRefs(n.Right, grouped)
	case *UnaryExpr:
		return checkHavingRefs(n.X, grouped)
	case *AttrRef:
		if n.Var != HavingVar {
			return semanticErrorf(n.At, "HAVING references windows through %q (w.value, w.count, w.start, w.end, w.key), not pattern variables", HavingVar)
		}
		switch n.Attr {
		case HavingValue, HavingCount, HavingStart, HavingEnd:
		case HavingKey:
			if !grouped {
				return semanticErrorf(n.At, "w.key requires a GROUP BY clause")
			}
		default:
			return semanticErrorf(n.At, "window has no attribute %q (want value, count, start, end, or key)", n.Attr)
		}
	}
	return nil
}

// checkExpr verifies variable references and, when a schema is provided,
// infers and checks value kinds. With a nil schema the returned kind is
// KindInvalid and only reference checks are performed.
func checkExpr(e Expr, varTypes map[string]string, schema *event.Schema) (event.Kind, error) {
	switch n := e.(type) {
	case *Literal:
		return n.Val.Kind(), nil
	case *AttrRef:
		typ, ok := varTypes[n.Var]
		if !ok {
			return event.KindInvalid, semanticErrorf(n.At, "unknown variable %q", n.Var)
		}
		if schema == nil {
			return event.KindInvalid, nil
		}
		kind, ok := schema.Field(typ, n.Attr)
		if !ok {
			return event.KindInvalid, semanticErrorf(n.At, "type %s has no attribute %q", typ, n.Attr)
		}
		return kind, nil
	case *UnaryExpr:
		kind, err := checkExpr(n.X, varTypes, schema)
		if err != nil {
			return event.KindInvalid, err
		}
		if schema == nil {
			return event.KindInvalid, nil
		}
		if n.Not {
			if kind != event.KindBool {
				return event.KindInvalid, semanticErrorf(n.At, "NOT needs a boolean operand, got %s", kind)
			}
			return event.KindBool, nil
		}
		if kind != event.KindInt && kind != event.KindFloat {
			return event.KindInvalid, semanticErrorf(n.At, "negation needs a numeric operand, got %s", kind)
		}
		return kind, nil
	case *BinaryExpr:
		lk, err := checkExpr(n.Left, varTypes, schema)
		if err != nil {
			return event.KindInvalid, err
		}
		rk, err := checkExpr(n.Right, varTypes, schema)
		if err != nil {
			return event.KindInvalid, err
		}
		if schema == nil {
			return event.KindInvalid, nil
		}
		return checkBinaryKinds(n, lk, rk)
	default:
		return event.KindInvalid, semanticErrorf(e.Pos(), "unsupported expression node %T", e)
	}
}

func checkBinaryKinds(n *BinaryExpr, lk, rk event.Kind) (event.Kind, error) {
	numeric := func(k event.Kind) bool { return k == event.KindInt || k == event.KindFloat }
	switch {
	case n.Op.IsLogical():
		if lk != event.KindBool || rk != event.KindBool {
			return event.KindInvalid, semanticErrorf(n.At, "%s needs boolean operands, got %s and %s", n.Op, lk, rk)
		}
		return event.KindBool, nil
	case n.Op.IsComparison():
		comparable := (numeric(lk) && numeric(rk)) || lk == rk
		if !comparable {
			return event.KindInvalid, semanticErrorf(n.At, "cannot compare %s with %s", lk, rk)
		}
		if lk == event.KindBool && n.Op != OpEq && n.Op != OpNeq {
			return event.KindInvalid, semanticErrorf(n.At, "booleans only support = and !=")
		}
		return event.KindBool, nil
	case n.Op.IsArithmetic():
		if !numeric(lk) || !numeric(rk) {
			return event.KindInvalid, semanticErrorf(n.At, "%s needs numeric operands, got %s and %s", n.Op, lk, rk)
		}
		if n.Op == OpMod {
			if lk != event.KindInt || rk != event.KindInt {
				return event.KindInvalid, semanticErrorf(n.At, "%% needs integer operands, got %s and %s", lk, rk)
			}
			return event.KindInt, nil
		}
		if lk == event.KindFloat || rk == event.KindFloat {
			return event.KindFloat, nil
		}
		return event.KindInt, nil
	default:
		return event.KindInvalid, semanticErrorf(n.At, "unknown operator %s", n.Op)
	}
}
