package query

import "testing"

// Native fuzz targets (run the seed corpus in ordinary `go test`; explore
// with `go test -fuzz=FuzzParse ./internal/query`).

func FuzzParse(f *testing.F) {
	seeds := []string{
		"PATTERN SEQ(A a, B b) WITHIN 100",
		"PATTERN SEQ(SHELF s, !(COUNTER c), EXIT e) WHERE s.id = e.id AND s.id = c.id WITHIN 12h RETURN s.id AS item",
		"PATTERN SEQ(T a, T b) WHERE b.x > a.x + 1 * 2 WITHIN 5s",
		"PATTERN SEQ(!(N n), A a) WHERE NOT (a.ok = TRUE OR n.x != 0.5) WITHIN 3m",
		"PATTERN SEQ(A a) WHERE a.s = 'quo\\'te' WITHIN 1d -- comment",
		"pattern seq(a a) within 1",
		"PATTERN SEQ(A a) WITHIN 100 garbage",
		"PATTERN SEQ(",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		// Accepted input must round-trip through the canonical form.
		again, err := Parse(q.String())
		if err != nil {
			t.Fatalf("canonical form of %q unparseable: %v", src, err)
		}
		if q.String() != again.String() {
			t.Fatalf("canonical form unstable:\n%q\n%q", q.String(), again.String())
		}
	})
}

func FuzzParseExpr(f *testing.F) {
	for _, s := range []string{
		"a.x = 1", "a.x + b.y * 2 <= 3.5", "NOT (a.b = 'x') AND c.d != FALSE",
		"-a.x % 2 = 0", "((a.x))", "1 = ", ". .", "5s + 1",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := ParseExpr(src)
		if err != nil {
			return
		}
		if _, err := ParseExpr(e.String()); err != nil {
			t.Fatalf("canonical expr %q unparseable: %v", e.String(), err)
		}
	})
}
