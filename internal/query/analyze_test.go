package query

import (
	"strings"
	"testing"

	"oostream/internal/event"
)

func testSchema() *event.Schema {
	s := event.NewSchema()
	s.Declare("SHELF", map[string]event.Kind{"id": event.KindInt, "price": event.KindFloat, "aisle": event.KindString})
	s.Declare("COUNTER", map[string]event.Kind{"id": event.KindInt})
	s.Declare("EXIT", map[string]event.Kind{"id": event.KindInt, "gate": event.KindString, "open": event.KindBool})
	return s
}

func analyzeSrc(t *testing.T, src string, schema *event.Schema) (*Analyzed, error) {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return Analyze(q, schema)
}

func TestAnalyzeStructure(t *testing.T) {
	a, err := analyzeSrc(t, `
		PATTERN SEQ(SHELF s, !(COUNTER c), EXIT e)
		WHERE s.id = e.id AND s.id = c.id
		WITHIN 1h`, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Positives) != 2 {
		t.Fatalf("positives = %d", len(a.Positives))
	}
	if len(a.Negatives) != 1 || a.Negatives[0].GapAfter != 1 {
		t.Fatalf("negatives = %+v", a.Negatives)
	}
	if a.VarPosition["s"] != 0 || a.VarPosition["e"] != 1 {
		t.Errorf("VarPosition = %v", a.VarPosition)
	}
	if _, ok := a.VarPosition["c"]; ok {
		t.Error("negative var should not have a positive position")
	}
	if a.NegVarIndex["c"] != 0 {
		t.Errorf("NegVarIndex = %v", a.NegVarIndex)
	}
}

func TestAnalyzeNegationPlacement(t *testing.T) {
	tests := []struct {
		src  string
		gaps []int
	}{
		{"PATTERN SEQ(!(A n), B b, C c) WITHIN 5", []int{0}},
		{"PATTERN SEQ(B b, C c, !(A n)) WITHIN 5", []int{2}},
		{"PATTERN SEQ(B b, !(A n), !(D m), C c) WITHIN 5", []int{1, 1}},
	}
	for _, tt := range tests {
		a, err := analyzeSrc(t, tt.src, nil)
		if err != nil {
			t.Errorf("%q: %v", tt.src, err)
			continue
		}
		if len(a.Negatives) != len(tt.gaps) {
			t.Errorf("%q: negatives = %d, want %d", tt.src, len(a.Negatives), len(tt.gaps))
			continue
		}
		for i, g := range tt.gaps {
			if a.Negatives[i].GapAfter != g {
				t.Errorf("%q: gap[%d] = %d, want %d", tt.src, i, a.Negatives[i].GapAfter, g)
			}
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	schema := testSchema()
	tests := []struct {
		name, src, wantErr string
		schema             *event.Schema
	}{
		{"dup var", "PATTERN SEQ(SHELF a, EXIT a) WITHIN 5", "already bound", schema},
		{"no positives", "PATTERN SEQ(!(SHELF a)) WITHIN 5", "at least one positive", schema},
		{"no window", "PATTERN SEQ(SHELF a, EXIT b)", "WITHIN clause is required", schema},
		{"unknown type", "PATTERN SEQ(NOPE a) WITHIN 5", "not declared in schema", schema},
		{"unknown var in where", "PATTERN SEQ(SHELF s) WHERE z.id = 1 WITHIN 5", `unknown variable "z"`, schema},
		{"unknown var no schema", "PATTERN SEQ(SHELF s) WHERE z.id = 1 WITHIN 5", `unknown variable "z"`, nil},
		{"unknown attr", "PATTERN SEQ(SHELF s) WHERE s.nope = 1 WITHIN 5", `no attribute "nope"`, schema},
		{"non-bool where", "PATTERN SEQ(SHELF s) WHERE s.id + 1 WITHIN 5", "must be boolean", schema},
		{"return negative var", "PATTERN SEQ(SHELF s, !(COUNTER c), EXIT e) WITHIN 5 RETURN c.id", "negated variable", schema},
		{"compare string to int", "PATTERN SEQ(SHELF s) WHERE s.aisle = 1 WITHIN 5", "cannot compare", schema},
		{"bool ordering", "PATTERN SEQ(EXIT e) WHERE e.open < TRUE WITHIN 5", "only support", schema},
		{"and of non-bool", "PATTERN SEQ(SHELF s) WHERE s.id AND s.price > 0 WITHIN 5", "boolean operands", schema},
		{"arith on string", "PATTERN SEQ(SHELF s) WHERE s.aisle + 1 > 2 WITHIN 5", "numeric operands", schema},
		{"mod on float", "PATTERN SEQ(SHELF s) WHERE s.price % 2 = 0 WITHIN 5", "integer operands", schema},
		{"not on number", "PATTERN SEQ(SHELF s) WHERE NOT s.id WITHIN 5", "boolean operand", schema},
		{"negate string", "PATTERN SEQ(SHELF s) WHERE -s.aisle = 1 WITHIN 5", "numeric operand", schema},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := analyzeSrc(t, tt.src, tt.schema)
			if err == nil {
				t.Fatalf("Analyze(%q) should fail", tt.src)
			}
			if !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("error = %v, want containing %q", err, tt.wantErr)
			}
		})
	}
}

func TestAnalyzeValidWithoutSchema(t *testing.T) {
	a, err := analyzeSrc(t, "PATTERN SEQ(A a, B b) WHERE a.anything = b.whatever WITHIN 5", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Positives) != 2 {
		t.Errorf("positives = %d", len(a.Positives))
	}
}

func TestAnalyzeKindInference(t *testing.T) {
	valid := []string{
		"PATTERN SEQ(SHELF s, EXIT e) WHERE s.price * 2 + s.id > 10 WITHIN 5",
		"PATTERN SEQ(SHELF s) WHERE s.id % 2 = 0 WITHIN 5",
		"PATTERN SEQ(EXIT e) WHERE e.open = TRUE AND NOT e.open WITHIN 5",
		"PATTERN SEQ(SHELF s) WHERE s.aisle = 'a1' WITHIN 5",
		"PATTERN SEQ(SHELF s) WHERE -s.price < 0 WITHIN 5",
		"PATTERN SEQ(SHELF s, EXIT e) WITHIN 5 RETURN s.price * 2 AS doubled, e.gate",
	}
	for _, src := range valid {
		if _, err := analyzeSrc(t, src, testSchema()); err != nil {
			t.Errorf("Analyze(%q): %v", src, err)
		}
	}
}
