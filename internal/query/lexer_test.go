package query

import (
	"strings"
	"testing"
)

func kinds(tokens []Token) []TokenKind {
	out := make([]TokenKind, len(tokens))
	for i, t := range tokens {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasicQuery(t *testing.T) {
	tokens, err := Lex("PATTERN SEQ(A a, B b) WHERE a.x = b.y WITHIN 100ms")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{
		TokenPattern, TokenSeq, TokenLParen, TokenIdent, TokenIdent, TokenComma,
		TokenIdent, TokenIdent, TokenRParen, TokenWhere, TokenIdent, TokenDot,
		TokenIdent, TokenEq, TokenIdent, TokenDot, TokenIdent, TokenWithin,
		TokenDur, TokenEOF,
	}
	got := kinds(tokens)
	if len(got) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexKeywordsCaseInsensitive(t *testing.T) {
	tokens, err := Lex("pattern Seq wHeRe and OR not true FALSE within return as")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{
		TokenPattern, TokenSeq, TokenWhere, TokenAnd, TokenOr, TokenNot,
		TokenTrue, TokenFalse, TokenWithin, TokenReturn, TokenAs, TokenEOF,
	}
	got := kinds(tokens)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	tokens, err := Lex("= == != <> < <= > >= + - * / % ! ( ) , .")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{
		TokenEq, TokenEq, TokenNeq, TokenNeq, TokenLt, TokenLte, TokenGt,
		TokenGte, TokenPlus, TokenMinus, TokenStar, TokenSlash, TokenPercent,
		TokenBang, TokenLParen, TokenRParen, TokenComma, TokenDot, TokenEOF,
	}
	got := kinds(tokens)
	if len(got) != len(want) {
		t.Fatalf("token count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexNumbers(t *testing.T) {
	tests := []struct {
		src  string
		kind TokenKind
		text string
	}{
		{"42", TokenInt, "42"},
		{"3.14", TokenFloat, "3.14"},
		{"0", TokenInt, "0"},
		{"100ms", TokenDur, "100ms"},
		{"5s", TokenDur, "5s"},
		{"12H", TokenDur, "12h"},
		{"7d", TokenDur, "7d"},
		{"3m", TokenDur, "3m"},
	}
	for _, tt := range tests {
		tokens, err := Lex(tt.src)
		if err != nil {
			t.Errorf("Lex(%q): %v", tt.src, err)
			continue
		}
		if tokens[0].Kind != tt.kind || tokens[0].Text != tt.text {
			t.Errorf("Lex(%q) = %s %q, want %s %q", tt.src, tokens[0].Kind, tokens[0].Text, tt.kind, tt.text)
		}
	}
}

func TestLexBadDurationUnit(t *testing.T) {
	if _, err := Lex("100q"); err == nil || !strings.Contains(err.Error(), "duration unit") {
		t.Errorf("want duration unit error, got %v", err)
	}
}

func TestLexStrings(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{`'hello'`, "hello"},
		{`"hello"`, "hello"},
		{`'it\'s'`, "it's"},
		{`"tab\there"`, "tab\there"},
		{`"line\nbreak"`, "line\nbreak"},
		{`"back\\slash"`, `back\slash`},
		{`''`, ""},
	}
	for _, tt := range tests {
		tokens, err := Lex(tt.src)
		if err != nil {
			t.Errorf("Lex(%q): %v", tt.src, err)
			continue
		}
		if tokens[0].Kind != TokenString || tokens[0].Text != tt.want {
			t.Errorf("Lex(%q) = %q, want %q", tt.src, tokens[0].Text, tt.want)
		}
	}
}

func TestLexStringErrors(t *testing.T) {
	for _, src := range []string{`'unterminated`, `'bad \q escape'`, `'trailing \`} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) should fail", src)
		}
	}
}

func TestLexComments(t *testing.T) {
	tokens, err := Lex("a -- line comment\n b /* block\ncomment */ c")
	if err != nil {
		t.Fatal(err)
	}
	if len(tokens) != 4 { // a b c EOF
		t.Fatalf("got %d tokens: %v", len(tokens), tokens)
	}
	if tokens[2].Text != "c" {
		t.Errorf("third token = %q, want c", tokens[2].Text)
	}
}

func TestLexUnterminatedBlockComment(t *testing.T) {
	if _, err := Lex("a /* never closed"); err == nil {
		t.Fatal("want error for unterminated block comment")
	}
}

func TestLexPositions(t *testing.T) {
	tokens, err := Lex("ab\n  cd")
	if err != nil {
		t.Fatal(err)
	}
	if tokens[0].Pos != (Pos{1, 1}) {
		t.Errorf("ab at %v, want 1:1", tokens[0].Pos)
	}
	if tokens[1].Pos != (Pos{2, 3}) {
		t.Errorf("cd at %v, want 2:3", tokens[1].Pos)
	}
}

func TestLexUnexpectedChar(t *testing.T) {
	_, err := Lex("a @ b")
	if err == nil || !strings.Contains(err.Error(), "unexpected character") {
		t.Errorf("want unexpected character error, got %v", err)
	}
}
