package query

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func TestParseMinimal(t *testing.T) {
	q := mustParse(t, "PATTERN SEQ(A a) WITHIN 10")
	if len(q.Components) != 1 || q.Components[0].Type != "A" || q.Components[0].Var != "a" {
		t.Errorf("components = %+v", q.Components)
	}
	if q.Within != 10 {
		t.Errorf("within = %d, want 10", q.Within)
	}
	if q.Where != nil || len(q.Return) != 0 {
		t.Error("unexpected WHERE/RETURN")
	}
}

func TestParseFullQuery(t *testing.T) {
	q := mustParse(t, `
		PATTERN SEQ(SHELF s, !(COUNTER c), EXIT e)
		WHERE s.id = e.id AND s.id = c.id AND s.price > 100
		WITHIN 12h
		RETURN s.id AS item, e.gate
	`)
	if len(q.Components) != 3 {
		t.Fatalf("components = %d", len(q.Components))
	}
	neg := q.Components[1]
	if !neg.Negated || neg.Type != "COUNTER" || neg.Var != "c" {
		t.Errorf("negated component = %+v", neg)
	}
	if q.Within != 12*60*60*1000 {
		t.Errorf("within = %d", q.Within)
	}
	if len(q.Return) != 2 {
		t.Fatalf("return items = %d", len(q.Return))
	}
	if q.Return[0].Name != "item" {
		t.Errorf("return[0].Name = %q", q.Return[0].Name)
	}
	if q.Return[1].Name != "e_gate" {
		t.Errorf("return[1].Name = %q (synthesized)", q.Return[1].Name)
	}
}

func TestParsePrecedence(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{"a.x + b.y * c.z", "(a.x + (b.y * c.z))"},
		{"a.x * b.y + c.z", "((a.x * b.y) + c.z)"},
		{"a.x = 1 AND b.y = 2 OR c.z = 3", "(((a.x = 1) AND (b.y = 2)) OR (c.z = 3))"},
		{"NOT a.x = 1 AND b.y = 2", "((NOT (a.x = 1)) AND (b.y = 2))"},
		{"a.x - b.y - c.z", "((a.x - b.y) - c.z)"},
		{"-a.x + b.y", "((-a.x) + b.y)"},
		{"(a.x + b.y) * c.z", "((a.x + b.y) * c.z)"},
		{"a.x % 2 = 0", "((a.x % 2) = 0)"},
		{"a.x != b.y", "(a.x != b.y)"},
		{"a.x <> b.y", "(a.x != b.y)"},
		{"a.x <= 5s", "(a.x <= 5000)"},
	}
	for _, tt := range tests {
		e, err := ParseExpr(tt.src)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", tt.src, err)
			continue
		}
		if got := e.String(); got != tt.want {
			t.Errorf("ParseExpr(%q) = %s, want %s", tt.src, got, tt.want)
		}
	}
}

func TestParseLiterals(t *testing.T) {
	tests := []struct {
		src, want string
	}{
		{"1", "1"},
		{"2.5", "2.5"},
		{"'str'", `"str"`},
		{"TRUE", "true"},
		{"false", "false"},
	}
	for _, tt := range tests {
		e, err := ParseExpr(tt.src)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", tt.src, err)
			continue
		}
		if got := e.String(); got != tt.want {
			t.Errorf("ParseExpr(%q) = %s, want %s", tt.src, got, tt.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		src     string
		wantErr string
	}{
		{"", "expected PATTERN"},
		{"PATTERN SEQ", "expected '('"},
		{"PATTERN SEQ()", "expected identifier"},
		{"PATTERN SEQ(A a", "expected ')'"},
		{"PATTERN SEQ(A a,) WITHIN 5", "expected identifier"},
		{"PATTERN SEQ(A a) WITHIN", "expected duration"},
		{"PATTERN SEQ(A a) WITHIN x", "expected duration"},
		{"PATTERN SEQ(!(A) b) WITHIN 5", "expected identifier"},
		{"PATTERN SEQ(A a) WITHIN 5 garbage", "expected end of input"},
		{"PATTERN SEQ(A a) WHERE WITHIN 5", "expected expression"},
		{"PATTERN SEQ(A a) WHERE a. WITHIN 5", "expected identifier"},
		{"PATTERN SEQ(A a) WHERE bare WITHIN 5", "attribute references"},
		{"PATTERN SEQ(A a) WHERE (a.x = 1 WITHIN 5", "expected ')'"},
		{"PATTERN SEQ(A a) WHERE a.x = 1 RETURN WITHIN 5", "expected expression"},
		{"PATTERN SEQ(A a) WITHIN 5 RETURN a.x AS", "expected identifier"},
	}
	for _, tt := range tests {
		_, err := Parse(tt.src)
		if err == nil {
			t.Errorf("Parse(%q) should fail", tt.src)
			continue
		}
		if !strings.Contains(err.Error(), tt.wantErr) {
			t.Errorf("Parse(%q) error = %v, want containing %q", tt.src, err, tt.wantErr)
		}
	}
}

func TestParseQueryStringRoundTrip(t *testing.T) {
	srcs := []string{
		"PATTERN SEQ(A a, B b) WHERE (a.x = b.x) WITHIN 100ms",
		"PATTERN SEQ(SHELF s, !(COUNTER c), EXIT e) WITHIN 1h",
		"PATTERN SEQ(A a, B b) WITHIN 50ms RETURN a.x AS out",
	}
	for _, src := range srcs {
		q1 := mustParse(t, src)
		q2 := mustParse(t, q1.String())
		if q1.String() != q2.String() {
			t.Errorf("round trip changed query:\n  %s\n  %s", q1, q2)
		}
	}
}

func TestParseDurationForms(t *testing.T) {
	tests := []struct {
		src  string
		want int64
	}{
		{"PATTERN SEQ(A a) WITHIN 250", 250},
		{"PATTERN SEQ(A a) WITHIN 250ms", 250},
		{"PATTERN SEQ(A a) WITHIN 2s", 2000},
		{"PATTERN SEQ(A a) WITHIN 3m", 180000},
		{"PATTERN SEQ(A a) WITHIN 1h", 3600000},
		{"PATTERN SEQ(A a) WITHIN 1d", 86400000},
	}
	for _, tt := range tests {
		q := mustParse(t, tt.src)
		if q.Within != tt.want {
			t.Errorf("%q: within = %d, want %d", tt.src, q.Within, tt.want)
		}
	}
}

func TestConjuncts(t *testing.T) {
	e, err := ParseExpr("a.x = 1 AND b.y = 2 AND (c.z = 3 OR c.z = 4)")
	if err != nil {
		t.Fatal(err)
	}
	cs := Conjuncts(e)
	if len(cs) != 3 {
		t.Fatalf("conjuncts = %d, want 3", len(cs))
	}
	if Conjuncts(nil) != nil {
		t.Error("Conjuncts(nil) should be nil")
	}
}

func TestVars(t *testing.T) {
	e, err := ParseExpr("a.x = 1 AND b.y + c.z > -a.w")
	if err != nil {
		t.Fatal(err)
	}
	vars := Vars(e)
	for _, v := range []string{"a", "b", "c"} {
		if !vars[v] {
			t.Errorf("missing var %q", v)
		}
	}
	if len(vars) != 3 {
		t.Errorf("vars = %v", vars)
	}
}
