// Package query implements the event pattern query language: lexer, parser,
// abstract syntax tree, and semantic analysis. The language follows the
// SASE-style surface syntax used by the paper:
//
//	PATTERN SEQ(SHELF s, !(COUNTER c), EXIT e)
//	WHERE   s.id = e.id AND s.id = c.id
//	WITHIN  12h
//	RETURN  s.id AS item, e.ts AS leftAt
//
// Timestamps and windows are logical milliseconds; duration literals accept
// the suffixes ms, s, m, h, d (no suffix means milliseconds).
package query

import "fmt"

// TokenKind identifies a lexical token class.
type TokenKind int

// Token kinds.
const (
	TokenInvalid TokenKind = iota
	TokenEOF
	TokenIdent   // names: event types, variables, attributes
	TokenInt     // integer literal
	TokenFloat   // float literal
	TokenString  // 'single' or "double" quoted
	TokenDur     // duration literal with suffix, e.g. 12h
	TokenLParen  // (
	TokenRParen  // )
	TokenComma   // ,
	TokenDot     // .
	TokenBang    // !
	TokenEq      // = or ==
	TokenNeq     // !=
	TokenLt      // <
	TokenLte     // <=
	TokenGt      // >
	TokenGte     // >=
	TokenPlus    // +
	TokenMinus   // -
	TokenStar    // *
	TokenSlash   // /
	TokenPercent // %
	// Keywords (case-insensitive in source).
	TokenPattern
	TokenSeq
	TokenWhere
	TokenWithin
	TokenReturn
	TokenAs
	TokenAnd
	TokenOr
	TokenNot
	TokenTrue
	TokenFalse
	TokenAggregate
	TokenOver
	TokenSlide
	TokenGroup
	TokenBy
	TokenHaving
)

var tokenNames = map[TokenKind]string{
	TokenInvalid:   "invalid",
	TokenEOF:       "end of input",
	TokenIdent:     "identifier",
	TokenInt:       "integer",
	TokenFloat:     "float",
	TokenString:    "string",
	TokenDur:       "duration",
	TokenLParen:    "'('",
	TokenRParen:    "')'",
	TokenComma:     "','",
	TokenDot:       "'.'",
	TokenBang:      "'!'",
	TokenEq:        "'='",
	TokenNeq:       "'!='",
	TokenLt:        "'<'",
	TokenLte:       "'<='",
	TokenGt:        "'>'",
	TokenGte:       "'>='",
	TokenPlus:      "'+'",
	TokenMinus:     "'-'",
	TokenStar:      "'*'",
	TokenSlash:     "'/'",
	TokenPercent:   "'%'",
	TokenPattern:   "PATTERN",
	TokenSeq:       "SEQ",
	TokenWhere:     "WHERE",
	TokenWithin:    "WITHIN",
	TokenReturn:    "RETURN",
	TokenAs:        "AS",
	TokenAnd:       "AND",
	TokenOr:        "OR",
	TokenNot:       "NOT",
	TokenTrue:      "TRUE",
	TokenFalse:     "FALSE",
	TokenAggregate: "AGGREGATE",
	TokenOver:      "OVER",
	TokenSlide:     "SLIDE",
	TokenGroup:     "GROUP",
	TokenBy:        "BY",
	TokenHaving:    "HAVING",
}

// String returns a human-readable token kind name.
func (k TokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// Pos is a 1-based line/column source position.
type Pos struct {
	Line int
	Col  int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token with its source text and position.
type Token struct {
	Kind TokenKind
	// Text is the raw source text; for strings it is the unquoted content,
	// for durations the full literal including the suffix.
	Text string
	Pos  Pos
}

// keywords maps upper-cased identifier text to keyword kinds.
var keywords = map[string]TokenKind{
	"PATTERN":   TokenPattern,
	"SEQ":       TokenSeq,
	"WHERE":     TokenWhere,
	"WITHIN":    TokenWithin,
	"RETURN":    TokenReturn,
	"AS":        TokenAs,
	"AND":       TokenAnd,
	"OR":        TokenOr,
	"NOT":       TokenNot,
	"TRUE":      TokenTrue,
	"FALSE":     TokenFalse,
	"AGGREGATE": TokenAggregate,
	"OVER":      TokenOver,
	"SLIDE":     TokenSlide,
	"GROUP":     TokenGroup,
	"BY":        TokenBy,
	"HAVING":    TokenHaving,
}

// SyntaxError describes a lexical or parse failure with its position.
type SyntaxError struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("syntax error at %s: %s", e.Pos, e.Msg)
}

func syntaxErrorf(pos Pos, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
