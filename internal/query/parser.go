package query

import (
	"strconv"
	"strings"

	"oostream/internal/event"
)

// Parse lexes and parses a full query text.
func Parse(src string) (*Query, error) {
	tokens, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{tokens: tokens}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

// ParseExpr parses a standalone expression (used by tests and tools).
func ParseExpr(src string) (Expr, error) {
	tokens, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{tokens: tokens}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokenEOF); err != nil {
		return nil, err
	}
	return e, nil
}

type parser struct {
	tokens []Token
	pos    int
}

func (p *parser) peek() Token { return p.tokens[p.pos] }

func (p *parser) advance() Token {
	tok := p.tokens[p.pos]
	if tok.Kind != TokenEOF {
		p.pos++
	}
	return tok
}

func (p *parser) accept(kind TokenKind) (Token, bool) {
	if p.peek().Kind == kind {
		return p.advance(), true
	}
	return Token{}, false
}

func (p *parser) expect(kind TokenKind) (Token, error) {
	tok := p.peek()
	if tok.Kind != kind {
		return Token{}, syntaxErrorf(tok.Pos, "expected %s, found %s %q", kind, tok.Kind, tok.Text)
	}
	return p.advance(), nil
}

// parseQuery := PATTERN SEQ(...) [WHERE expr] [WITHIN dur] [RETURN items]
//
//	| AGGREGATE fn(arg) OVER (SEQ(...) | Type var) [WHERE expr]
//	  WITHIN dur [SLIDE dur] [GROUP BY var.attr] [HAVING expr]
func (p *parser) parseQuery() (*Query, error) {
	if head, ok := p.accept(TokenAggregate); ok {
		return p.parseAggregateQuery(head)
	}
	if _, err := p.expect(TokenPattern); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokenSeq); err != nil {
		return nil, err
	}
	components, err := p.parseComponents()
	if err != nil {
		return nil, err
	}
	q := &Query{Components: components}

	if _, ok := p.accept(TokenWhere); ok {
		q.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if _, ok := p.accept(TokenWithin); ok {
		q.Within, err = p.parseDuration()
		if err != nil {
			return nil, err
		}
	}
	if _, ok := p.accept(TokenReturn); ok {
		q.Return, err = p.parseReturnItems()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokenEOF); err != nil {
		return nil, err
	}
	return q, nil
}

// parseAggregateQuery parses the AGGREGATE form after its head keyword. The
// OVER pattern is either a full SEQ(...) or the single-component sugar
// `Type var`; clause order is WHERE, WITHIN, SLIDE, GROUP BY, HAVING.
func (p *parser) parseAggregateQuery(head Token) (*Query, error) {
	agg := &AggClause{At: head.Pos}
	fn, err := p.expect(TokenIdent)
	if err != nil {
		return nil, err
	}
	switch f := AggFunc(strings.ToUpper(fn.Text)); f {
	case AggCount, AggSum, AggAvg, AggMin, AggMax:
		agg.Func = f
	default:
		return nil, syntaxErrorf(fn.Pos, "unknown aggregation function %q (want COUNT, SUM, AVG, MIN, or MAX)", fn.Text)
	}
	if _, err := p.expect(TokenLParen); err != nil {
		return nil, err
	}
	if _, ok := p.accept(TokenStar); !ok {
		agg.Arg, err = p.parseAttrRef()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokenRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokenOver); err != nil {
		return nil, err
	}
	q := &Query{Agg: agg}
	if _, ok := p.accept(TokenSeq); ok {
		q.Components, err = p.parseComponents()
		if err != nil {
			return nil, err
		}
	} else {
		typ, err := p.expect(TokenIdent)
		if err != nil {
			return nil, err
		}
		v, err := p.expect(TokenIdent)
		if err != nil {
			return nil, err
		}
		q.Components = []Component{{Type: typ.Text, Var: v.Text, Pos: typ.Pos}}
	}
	if _, ok := p.accept(TokenWhere); ok {
		q.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if _, ok := p.accept(TokenWithin); ok {
		q.Within, err = p.parseDuration()
		if err != nil {
			return nil, err
		}
	}
	if _, ok := p.accept(TokenSlide); ok {
		agg.Slide, err = p.parseDuration()
		if err != nil {
			return nil, err
		}
		if agg.Slide <= 0 {
			return nil, syntaxErrorf(head.Pos, "SLIDE must be positive")
		}
	}
	if _, ok := p.accept(TokenGroup); ok {
		if _, err := p.expect(TokenBy); err != nil {
			return nil, err
		}
		agg.GroupBy, err = p.parseAttrRef()
		if err != nil {
			return nil, err
		}
	}
	if _, ok := p.accept(TokenHaving); ok {
		agg.Having, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokenEOF); err != nil {
		return nil, err
	}
	return q, nil
}

// parseAttrRef parses a mandatory var.attr reference.
func (p *parser) parseAttrRef() (*AttrRef, error) {
	id, err := p.expect(TokenIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokenDot); err != nil {
		return nil, syntaxErrorf(id.Pos, "bare identifier %q; attribute references are written var.attr", id.Text)
	}
	attr, err := p.expect(TokenIdent)
	if err != nil {
		return nil, err
	}
	return &AttrRef{Var: id.Text, Attr: attr.Text, At: id.Pos}, nil
}

func (p *parser) parseComponents() ([]Component, error) {
	if _, err := p.expect(TokenLParen); err != nil {
		return nil, err
	}
	var components []Component
	for {
		c, err := p.parseComponent()
		if err != nil {
			return nil, err
		}
		components = append(components, c)
		if _, ok := p.accept(TokenComma); ok {
			continue
		}
		break
	}
	if _, err := p.expect(TokenRParen); err != nil {
		return nil, err
	}
	return components, nil
}

func (p *parser) parseComponent() (Component, error) {
	if bang, ok := p.accept(TokenBang); ok {
		if _, err := p.expect(TokenLParen); err != nil {
			return Component{}, err
		}
		typ, err := p.expect(TokenIdent)
		if err != nil {
			return Component{}, err
		}
		v, err := p.expect(TokenIdent)
		if err != nil {
			return Component{}, err
		}
		if _, err := p.expect(TokenRParen); err != nil {
			return Component{}, err
		}
		return Component{Type: typ.Text, Var: v.Text, Negated: true, Pos: bang.Pos}, nil
	}
	typ, err := p.expect(TokenIdent)
	if err != nil {
		return Component{}, err
	}
	v, err := p.expect(TokenIdent)
	if err != nil {
		return Component{}, err
	}
	return Component{Type: typ.Text, Var: v.Text, Pos: typ.Pos}, nil
}

// parseDuration := INT | DURATION (suffixed)
func (p *parser) parseDuration() (event.Time, error) {
	tok := p.peek()
	switch tok.Kind {
	case TokenInt:
		p.advance()
		n, err := strconv.ParseInt(tok.Text, 10, 64)
		if err != nil {
			return 0, syntaxErrorf(tok.Pos, "invalid duration %q: %v", tok.Text, err)
		}
		return n, nil
	case TokenDur:
		p.advance()
		return parseDurationLiteral(tok)
	default:
		return 0, syntaxErrorf(tok.Pos, "expected duration, found %s %q", tok.Kind, tok.Text)
	}
}

func parseDurationLiteral(tok Token) (event.Time, error) {
	text := tok.Text
	i := 0
	for i < len(text) && text[i] >= '0' && text[i] <= '9' {
		i++
	}
	n, err := strconv.ParseInt(text[:i], 10, 64)
	if err != nil {
		return 0, syntaxErrorf(tok.Pos, "invalid duration %q: %v", text, err)
	}
	unit, ok := durationUnits[strings.ToLower(text[i:])]
	if !ok {
		return 0, syntaxErrorf(tok.Pos, "invalid duration unit in %q", text)
	}
	return n * unit, nil
}

func (p *parser) parseReturnItems() ([]ReturnItem, error) {
	var items []ReturnItem
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		name := ""
		if _, ok := p.accept(TokenAs); ok {
			id, err := p.expect(TokenIdent)
			if err != nil {
				return nil, err
			}
			name = id.Text
		} else if ref, ok := e.(*AttrRef); ok {
			name = ref.Var + "_" + ref.Attr
		} else {
			name = "col" + strconv.Itoa(len(items)+1)
		}
		items = append(items, ReturnItem{Expr: e, Name: name})
		if _, ok := p.accept(TokenComma); !ok {
			return items, nil
		}
	}
}

// Expression grammar (precedence climbing):
//
//	expr   := or
//	or     := and (OR and)*
//	and    := not (AND not)*
//	not    := NOT not | cmp
//	cmp    := add ((=|!=|<|<=|>|>=) add)?
//	add    := mul ((+|-) mul)*
//	mul    := unary ((*|/|%) unary)*
//	unary  := - unary | primary
//	primary:= literal | var.attr | ( expr )
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		tok, ok := p.accept(TokenOr)
		if !ok {
			return left, nil
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpOr, Left: left, Right: right, At: tok.Pos}
	}
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for {
		tok, ok := p.accept(TokenAnd)
		if !ok {
			return left, nil
		}
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpAnd, Left: left, Right: right, At: tok.Pos}
	}
}

func (p *parser) parseNot() (Expr, error) {
	if tok, ok := p.accept(TokenNot); ok {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Not: true, X: x, At: tok.Pos}, nil
	}
	return p.parseCmp()
}

var cmpOps = map[TokenKind]BinaryOp{
	TokenEq: OpEq, TokenNeq: OpNeq,
	TokenLt: OpLt, TokenLte: OpLte,
	TokenGt: OpGt, TokenGte: OpGte,
}

func (p *parser) parseCmp() (Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	op, ok := cmpOps[p.peek().Kind]
	if !ok {
		return left, nil
	}
	tok := p.advance()
	right, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	return &BinaryExpr{Op: op, Left: left, Right: right, At: tok.Pos}, nil
}

func (p *parser) parseAdd() (Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch p.peek().Kind {
		case TokenPlus:
			op = OpAdd
		case TokenMinus:
			op = OpSub
		default:
			return left, nil
		}
		tok := p.advance()
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right, At: tok.Pos}
	}
}

func (p *parser) parseMul() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch p.peek().Kind {
		case TokenStar:
			op = OpMul
		case TokenSlash:
			op = OpDiv
		case TokenPercent:
			op = OpMod
		default:
			return left, nil
		}
		tok := p.advance()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right, At: tok.Pos}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if tok, ok := p.accept(TokenMinus); ok {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Not: false, X: x, At: tok.Pos}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	tok := p.peek()
	switch tok.Kind {
	case TokenInt:
		p.advance()
		n, err := strconv.ParseInt(tok.Text, 10, 64)
		if err != nil {
			return nil, syntaxErrorf(tok.Pos, "invalid integer %q: %v", tok.Text, err)
		}
		return &Literal{Val: event.Int(n), At: tok.Pos}, nil
	case TokenFloat:
		p.advance()
		f, err := strconv.ParseFloat(tok.Text, 64)
		if err != nil {
			return nil, syntaxErrorf(tok.Pos, "invalid float %q: %v", tok.Text, err)
		}
		return &Literal{Val: event.Float(f), At: tok.Pos}, nil
	case TokenDur:
		p.advance()
		ms, err := parseDurationLiteral(tok)
		if err != nil {
			return nil, err
		}
		return &Literal{Val: event.Int(ms), At: tok.Pos}, nil
	case TokenString:
		p.advance()
		return &Literal{Val: event.Str(tok.Text), At: tok.Pos}, nil
	case TokenTrue:
		p.advance()
		return &Literal{Val: event.Bool(true), At: tok.Pos}, nil
	case TokenFalse:
		p.advance()
		return &Literal{Val: event.Bool(false), At: tok.Pos}, nil
	case TokenIdent:
		p.advance()
		if _, err := p.expect(TokenDot); err != nil {
			return nil, syntaxErrorf(tok.Pos, "bare identifier %q; attribute references are written var.attr", tok.Text)
		}
		attr, err := p.expect(TokenIdent)
		if err != nil {
			return nil, err
		}
		return &AttrRef{Var: tok.Text, Attr: attr.Text, At: tok.Pos}, nil
	case TokenLParen:
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokenRParen); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, syntaxErrorf(tok.Pos, "expected expression, found %s %q", tok.Kind, tok.Text)
	}
}
