package query

import (
	"fmt"
	"strings"

	"oostream/internal/event"
)

// Query is the parsed form of a pattern or aggregation query.
type Query struct {
	// Components are the SEQ components in source order, positive and
	// negative interleaved. For an AGGREGATE query these are the OVER
	// pattern's components (a bare `OVER Type var` desugars to a single
	// positive component).
	Components []Component
	// Where is the predicate expression, or nil if absent.
	Where Expr
	// Within is the window length in logical milliseconds; 0 means the
	// WITHIN clause was absent (engines treat that as an error at plan
	// time: unbounded sequence queries need unbounded state).
	Within event.Time
	// Return lists the projection items; empty means "return the events".
	// Mutually exclusive with Agg.
	Return []ReturnItem
	// Agg is the AGGREGATE clause, or nil for a plain pattern query. When
	// set, the query emits (window, value) aggregates over the match stream
	// of Components instead of the matches themselves.
	Agg *AggClause
}

// AggFunc enumerates the window aggregation functions.
type AggFunc string

// Aggregation functions. COUNT takes `*`; the rest take one numeric
// attribute reference.
const (
	AggCount AggFunc = "COUNT"
	AggSum   AggFunc = "SUM"
	AggAvg   AggFunc = "AVG"
	AggMin   AggFunc = "MIN"
	AggMax   AggFunc = "MAX"
)

// AggFuncs lists the aggregation functions in canonical order.
func AggFuncs() []AggFunc { return []AggFunc{AggCount, AggSum, AggAvg, AggMin, AggMax} }

// AggClause is the AGGREGATE head of a windowed aggregation query:
//
//	AGGREGATE AVG(p.amount) OVER SEQ(PAY p) WHERE p.amount > 0
//	WITHIN 1m SLIDE 10s GROUP BY p.card HAVING w.value > 500
//
// Each emitted value covers the half-open window (end−WITHIN, end] for a
// window end on the SLIDE grid. HAVING filters windows through the reserved
// pseudo-variable w with attributes value, count, start, end, and (under
// GROUP BY) key.
type AggClause struct {
	// Func is the aggregation function.
	Func AggFunc
	// Arg is the aggregated attribute; nil for COUNT(*).
	Arg *AttrRef
	// Slide is the window-end grid pitch in logical milliseconds; 0 means
	// the SLIDE clause was absent (plan time defaults it to WITHIN,
	// i.e. tumbling windows).
	Slide event.Time
	// GroupBy partitions windows by one attribute of a positive component;
	// nil aggregates the whole stream.
	GroupBy *AttrRef
	// Having filters emitted windows; nil emits every non-empty window.
	Having Expr
	// At is the source position of the AGGREGATE keyword.
	At Pos
}

// HavingVar is the reserved pseudo-variable HAVING expressions use to
// reference the candidate window.
const HavingVar = "w"

// Window pseudo-attributes available on HavingVar.
const (
	HavingValue = "value" // the aggregate value
	HavingCount = "count" // elements in the window
	HavingStart = "start" // exclusive window start, ms
	HavingEnd   = "end"   // inclusive window end, ms
	HavingKey   = "key"   // GROUP BY key (only with GROUP BY)
)

// Component is one element of the SEQ pattern.
type Component struct {
	// Type is the event type name to match.
	Type string
	// Var is the variable bound to the matched event.
	Var string
	// Negated marks a !() component.
	Negated bool
	// Pos is the source position of the component.
	Pos Pos
}

// ReturnItem is one projection in the RETURN clause.
type ReturnItem struct {
	// Expr computes the output value.
	Expr Expr
	// Name is the output column name (from AS, or synthesized).
	Name string
}

// String reconstructs a canonical query text (normalized keywords/spacing).
// The canonical form round-trips through Parse, which checkpoint source
// matching and multi-query admission rely on; aggregate queries always
// render the explicit `OVER SEQ(...)` form.
func (q *Query) String() string {
	var b strings.Builder
	if q.Agg != nil {
		fmt.Fprintf(&b, "AGGREGATE %s(", q.Agg.Func)
		if q.Agg.Arg != nil {
			b.WriteString(q.Agg.Arg.String())
		} else {
			b.WriteString("*")
		}
		b.WriteString(") OVER ")
	} else {
		b.WriteString("PATTERN ")
	}
	b.WriteString("SEQ(")
	for i, c := range q.Components {
		if i > 0 {
			b.WriteString(", ")
		}
		if c.Negated {
			fmt.Fprintf(&b, "!(%s %s)", c.Type, c.Var)
		} else {
			fmt.Fprintf(&b, "%s %s", c.Type, c.Var)
		}
	}
	b.WriteString(")")
	if q.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(q.Where.String())
	}
	if q.Within > 0 {
		fmt.Fprintf(&b, " WITHIN %dms", q.Within)
	}
	if q.Agg != nil {
		if q.Agg.Slide > 0 {
			fmt.Fprintf(&b, " SLIDE %dms", q.Agg.Slide)
		}
		if q.Agg.GroupBy != nil {
			fmt.Fprintf(&b, " GROUP BY %s", q.Agg.GroupBy)
		}
		if q.Agg.Having != nil {
			fmt.Fprintf(&b, " HAVING %s", q.Agg.Having)
		}
	}
	if len(q.Return) > 0 {
		b.WriteString(" RETURN ")
		for i, r := range q.Return {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s AS %s", r.Expr.String(), r.Name)
		}
	}
	return b.String()
}

// Expr is a node of the predicate/projection expression tree.
type Expr interface {
	fmt.Stringer
	// Pos returns the source position of the expression.
	Pos() Pos
	exprNode()
}

// BinaryOp enumerates binary operators.
type BinaryOp int

// Binary operators.
const (
	OpInvalid BinaryOp = iota
	OpAnd
	OpOr
	OpEq
	OpNeq
	OpLt
	OpLte
	OpGt
	OpGte
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
)

var binaryOpNames = map[BinaryOp]string{
	OpAnd: "AND", OpOr: "OR",
	OpEq: "=", OpNeq: "!=", OpLt: "<", OpLte: "<=", OpGt: ">", OpGte: ">=",
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
}

// String returns the operator's source spelling.
func (op BinaryOp) String() string {
	if s, ok := binaryOpNames[op]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// IsComparison reports whether the operator yields a boolean from two
// comparable operands.
func (op BinaryOp) IsComparison() bool {
	switch op {
	case OpEq, OpNeq, OpLt, OpLte, OpGt, OpGte:
		return true
	default:
		return false
	}
}

// IsArithmetic reports whether the operator is numeric.
func (op BinaryOp) IsArithmetic() bool {
	switch op {
	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		return true
	default:
		return false
	}
}

// IsLogical reports whether the operator combines booleans.
func (op BinaryOp) IsLogical() bool { return op == OpAnd || op == OpOr }

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Op          BinaryOp
	Left, Right Expr
	At          Pos
}

// UnaryExpr is NOT x or -x.
type UnaryExpr struct {
	// Op is OpSub for negation or OpAnd is never used; Not distinguishes.
	Not bool // true: logical NOT; false: arithmetic negation
	X   Expr
	At  Pos
}

// AttrRef is a variable.attribute reference.
type AttrRef struct {
	Var  string
	Attr string
	At   Pos
}

// Literal is a constant value.
type Literal struct {
	Val event.Value
	At  Pos
}

func (e *BinaryExpr) exprNode() {}
func (e *UnaryExpr) exprNode()  {}
func (e *AttrRef) exprNode()    {}
func (e *Literal) exprNode()    {}

// Pos returns the operator position.
func (e *BinaryExpr) Pos() Pos { return e.At }

// Pos returns the operator position.
func (e *UnaryExpr) Pos() Pos { return e.At }

// Pos returns the reference position.
func (e *AttrRef) Pos() Pos { return e.At }

// Pos returns the literal position.
func (e *Literal) Pos() Pos { return e.At }

// String renders the expression with full parenthesization.
func (e *BinaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.Left, e.Op, e.Right)
}

// String renders the expression.
func (e *UnaryExpr) String() string {
	if e.Not {
		return fmt.Sprintf("(NOT %s)", e.X)
	}
	return fmt.Sprintf("(-%s)", e.X)
}

// String renders var.attr.
func (e *AttrRef) String() string { return e.Var + "." + e.Attr }

// String renders the constant.
func (e *Literal) String() string { return e.Val.String() }

// Vars returns the set of pattern variables an expression references.
func Vars(e Expr) map[string]bool {
	out := make(map[string]bool)
	collectVars(e, out)
	return out
}

func collectVars(e Expr, out map[string]bool) {
	switch n := e.(type) {
	case *BinaryExpr:
		collectVars(n.Left, out)
		collectVars(n.Right, out)
	case *UnaryExpr:
		collectVars(n.X, out)
	case *AttrRef:
		out[n.Var] = true
	case *Literal:
	}
}

// Conjuncts splits an expression on top-level ANDs into its conjuncts.
// For a nil expression it returns nil.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinaryExpr); ok && b.Op == OpAnd {
		return append(Conjuncts(b.Left), Conjuncts(b.Right)...)
	}
	return []Expr{e}
}
