package query

import (
	"fmt"
	"strings"

	"oostream/internal/event"
)

// Query is the parsed form of a pattern query.
type Query struct {
	// Components are the SEQ components in source order, positive and
	// negative interleaved.
	Components []Component
	// Where is the predicate expression, or nil if absent.
	Where Expr
	// Within is the window length in logical milliseconds; 0 means the
	// WITHIN clause was absent (engines treat that as an error at plan
	// time: unbounded sequence queries need unbounded state).
	Within event.Time
	// Return lists the projection items; empty means "return the events".
	Return []ReturnItem
}

// Component is one element of the SEQ pattern.
type Component struct {
	// Type is the event type name to match.
	Type string
	// Var is the variable bound to the matched event.
	Var string
	// Negated marks a !() component.
	Negated bool
	// Pos is the source position of the component.
	Pos Pos
}

// ReturnItem is one projection in the RETURN clause.
type ReturnItem struct {
	// Expr computes the output value.
	Expr Expr
	// Name is the output column name (from AS, or synthesized).
	Name string
}

// String reconstructs a canonical query text (normalized keywords/spacing).
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("PATTERN SEQ(")
	for i, c := range q.Components {
		if i > 0 {
			b.WriteString(", ")
		}
		if c.Negated {
			fmt.Fprintf(&b, "!(%s %s)", c.Type, c.Var)
		} else {
			fmt.Fprintf(&b, "%s %s", c.Type, c.Var)
		}
	}
	b.WriteString(")")
	if q.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(q.Where.String())
	}
	if q.Within > 0 {
		fmt.Fprintf(&b, " WITHIN %dms", q.Within)
	}
	if len(q.Return) > 0 {
		b.WriteString(" RETURN ")
		for i, r := range q.Return {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s AS %s", r.Expr.String(), r.Name)
		}
	}
	return b.String()
}

// Expr is a node of the predicate/projection expression tree.
type Expr interface {
	fmt.Stringer
	// Pos returns the source position of the expression.
	Pos() Pos
	exprNode()
}

// BinaryOp enumerates binary operators.
type BinaryOp int

// Binary operators.
const (
	OpInvalid BinaryOp = iota
	OpAnd
	OpOr
	OpEq
	OpNeq
	OpLt
	OpLte
	OpGt
	OpGte
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
)

var binaryOpNames = map[BinaryOp]string{
	OpAnd: "AND", OpOr: "OR",
	OpEq: "=", OpNeq: "!=", OpLt: "<", OpLte: "<=", OpGt: ">", OpGte: ">=",
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
}

// String returns the operator's source spelling.
func (op BinaryOp) String() string {
	if s, ok := binaryOpNames[op]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// IsComparison reports whether the operator yields a boolean from two
// comparable operands.
func (op BinaryOp) IsComparison() bool {
	switch op {
	case OpEq, OpNeq, OpLt, OpLte, OpGt, OpGte:
		return true
	default:
		return false
	}
}

// IsArithmetic reports whether the operator is numeric.
func (op BinaryOp) IsArithmetic() bool {
	switch op {
	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		return true
	default:
		return false
	}
}

// IsLogical reports whether the operator combines booleans.
func (op BinaryOp) IsLogical() bool { return op == OpAnd || op == OpOr }

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Op          BinaryOp
	Left, Right Expr
	At          Pos
}

// UnaryExpr is NOT x or -x.
type UnaryExpr struct {
	// Op is OpSub for negation or OpAnd is never used; Not distinguishes.
	Not bool // true: logical NOT; false: arithmetic negation
	X   Expr
	At  Pos
}

// AttrRef is a variable.attribute reference.
type AttrRef struct {
	Var  string
	Attr string
	At   Pos
}

// Literal is a constant value.
type Literal struct {
	Val event.Value
	At  Pos
}

func (e *BinaryExpr) exprNode() {}
func (e *UnaryExpr) exprNode()  {}
func (e *AttrRef) exprNode()    {}
func (e *Literal) exprNode()    {}

// Pos returns the operator position.
func (e *BinaryExpr) Pos() Pos { return e.At }

// Pos returns the operator position.
func (e *UnaryExpr) Pos() Pos { return e.At }

// Pos returns the reference position.
func (e *AttrRef) Pos() Pos { return e.At }

// Pos returns the literal position.
func (e *Literal) Pos() Pos { return e.At }

// String renders the expression with full parenthesization.
func (e *BinaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.Left, e.Op, e.Right)
}

// String renders the expression.
func (e *UnaryExpr) String() string {
	if e.Not {
		return fmt.Sprintf("(NOT %s)", e.X)
	}
	return fmt.Sprintf("(-%s)", e.X)
}

// String renders var.attr.
func (e *AttrRef) String() string { return e.Var + "." + e.Attr }

// String renders the constant.
func (e *Literal) String() string { return e.Val.String() }

// Vars returns the set of pattern variables an expression references.
func Vars(e Expr) map[string]bool {
	out := make(map[string]bool)
	collectVars(e, out)
	return out
}

func collectVars(e Expr, out map[string]bool) {
	switch n := e.(type) {
	case *BinaryExpr:
		collectVars(n.Left, out)
		collectVars(n.Right, out)
	case *UnaryExpr:
		collectVars(n.X, out)
	case *AttrRef:
		out[n.Var] = true
	case *Literal:
	}
}

// Conjuncts splits an expression on top-level ANDs into its conjuncts.
// For a nil expression it returns nil.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinaryExpr); ok && b.Op == OpAnd {
		return append(Conjuncts(b.Left), Conjuncts(b.Right)...)
	}
	return []Expr{e}
}
