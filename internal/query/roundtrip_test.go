package query

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// randomQuerySrc builds a random but valid query text.
func randomQuerySrc(rng *rand.Rand) string {
	var b strings.Builder
	b.WriteString("PATTERN SEQ(")
	n := rng.Intn(4) + 1
	vars := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		v := fmt.Sprintf("v%d", i)
		vars = append(vars, v)
		if rng.Intn(4) == 0 && i > 0 {
			fmt.Fprintf(&b, "!(T%d %s)", rng.Intn(3), v)
		} else {
			fmt.Fprintf(&b, "T%d %s", rng.Intn(3), v)
		}
	}
	b.WriteString(")")
	if rng.Intn(2) == 0 {
		b.WriteString(" WHERE ")
		conjuncts := rng.Intn(3) + 1
		for i := 0; i < conjuncts; i++ {
			if i > 0 {
				b.WriteString(" AND ")
			}
			v1 := vars[rng.Intn(len(vars))]
			switch rng.Intn(4) {
			case 0:
				fmt.Fprintf(&b, "%s.x = %d", v1, rng.Intn(100))
			case 1:
				v2 := vars[rng.Intn(len(vars))]
				fmt.Fprintf(&b, "%s.id = %s.id", v1, v2)
			case 2:
				fmt.Fprintf(&b, "%s.p > %d.%d", v1, rng.Intn(10), rng.Intn(10))
			default:
				fmt.Fprintf(&b, "(%s.a + %d) * 2 <= %s.b", v1, rng.Intn(5), v1)
			}
		}
	}
	fmt.Fprintf(&b, " WITHIN %d", rng.Intn(1000)+1)
	if rng.Intn(3) == 0 {
		fmt.Fprintf(&b, " RETURN %s.out AS o1", vars[0])
	}
	return b.String()
}

// TestParseStringRoundTripProperty: parsing a query's canonical String()
// reproduces the same canonical form (parse ∘ print is idempotent).
func TestParseStringRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := randomQuerySrc(rng)
		q1, err := Parse(src)
		if err != nil {
			t.Logf("generator produced invalid query %q: %v", src, err)
			return false
		}
		q2, err := Parse(q1.String())
		if err != nil {
			t.Logf("canonical form unparseable %q: %v", q1.String(), err)
			return false
		}
		return q1.String() == q2.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestLexerNeverPanicsOnGarbage: arbitrary byte soup must produce a token
// stream or an error, never a panic or an infinite loop.
func TestLexerNeverPanicsOnGarbage(t *testing.T) {
	f := func(src string) bool {
		tokens, err := Lex(src)
		if err != nil {
			return true
		}
		return len(tokens) > 0 && tokens[len(tokens)-1].Kind == TokenEOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestParserNeverPanicsOnGarbage: same for the parser.
func TestParserNeverPanicsOnGarbage(t *testing.T) {
	f := func(src string) bool {
		_, _ = Parse(src)
		_, _ = ParseExpr(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestParserNeverPanicsOnTokenSoup: sequences of VALID tokens in random
// order exercise deeper parser paths than byte soup.
func TestParserNeverPanicsOnTokenSoup(t *testing.T) {
	words := []string{
		"PATTERN", "SEQ", "WHERE", "WITHIN", "RETURN", "AS", "AND", "OR",
		"NOT", "TRUE", "FALSE", "(", ")", ",", ".", "!", "=", "!=", "<",
		"<=", ">", ">=", "+", "-", "*", "/", "%", "ident", "42", "2.5",
		"'str'", "5s",
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(20) + 1
		parts := make([]string, n)
		for i := range parts {
			parts[i] = words[rng.Intn(len(words))]
		}
		src := strings.Join(parts, " ")
		_, _ = Parse(src)
		_, _ = ParseExpr(src)
	}
}
