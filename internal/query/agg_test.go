package query

import (
	"strings"
	"testing"

	"oostream/internal/event"
)

func aggSchema() *event.Schema {
	s := event.NewSchema()
	s.Declare("PAY", map[string]event.Kind{
		"card":   event.KindInt,
		"amount": event.KindFloat,
		"memo":   event.KindString,
	})
	s.Declare("LOGIN", map[string]event.Kind{"card": event.KindInt})
	return s
}

func TestParseAggregateForms(t *testing.T) {
	cases := []struct {
		src  string
		want string // canonical String() output
	}{
		{
			"aggregate count(*) over PAY p within 10s",
			"AGGREGATE COUNT(*) OVER SEQ(PAY p) WITHIN 10000ms",
		},
		{
			"AGGREGATE SUM(p.amount) OVER SEQ(LOGIN l, PAY p) WHERE l.card = p.card WITHIN 1m SLIDE 10s",
			"AGGREGATE SUM(p.amount) OVER SEQ(LOGIN l, PAY p) WHERE (l.card = p.card) WITHIN 60000ms SLIDE 10000ms",
		},
		{
			"AGGREGATE AVG(p.amount) OVER PAY p WITHIN 1m SLIDE 5s GROUP BY p.card HAVING w.value > 500 AND w.count >= 3",
			"AGGREGATE AVG(p.amount) OVER SEQ(PAY p) WITHIN 60000ms SLIDE 5000ms GROUP BY p.card HAVING ((w.value > 500) AND (w.count >= 3))",
		},
		{
			"AGGREGATE MIN(p.amount) OVER SEQ(PAY p, !(LOGIN l)) WITHIN 500 HAVING w.value < 10",
			"AGGREGATE MIN(p.amount) OVER SEQ(PAY p, !(LOGIN l)) WITHIN 500ms HAVING (w.value < 10)",
		},
	}
	for _, c := range cases {
		q, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		if got := q.String(); got != c.want {
			t.Errorf("Parse(%q).String()\n got %q\nwant %q", c.src, got, c.want)
		}
		// Canonical text must round-trip to itself (checkpoint/queryset
		// admission depends on this).
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", q.String(), err)
		}
		if q2.String() != q.String() {
			t.Errorf("canonical form not a fixpoint: %q -> %q", q.String(), q2.String())
		}
	}
}

func TestParseAggregateErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{"AGGREGATE MEDIAN(p.amount) OVER PAY p WITHIN 1s", "unknown aggregation function"},
		{"AGGREGATE SUM(amount) OVER PAY p WITHIN 1s", "var.attr"},
		{"AGGREGATE COUNT(*) OVER PAY p WITHIN 1s SLIDE 0", "SLIDE must be positive"},
		{"AGGREGATE COUNT(*) PAY p WITHIN 1s", "expected OVER"},
		{"AGGREGATE COUNT(*) OVER PAY p WITHIN 1s GROUP p.card", "expected BY"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q) error = %v, want containing %q", c.src, err, c.wantSub)
		}
	}
}

func TestAnalyzeAggregate(t *testing.T) {
	schema := aggSchema()
	ok := []string{
		"AGGREGATE COUNT(*) OVER PAY p WITHIN 1s HAVING w.count > 2",
		"AGGREGATE SUM(p.amount) OVER PAY p WITHIN 1s SLIDE 1s",
		"AGGREGATE MAX(p.card) OVER PAY p WITHIN 1s HAVING w.value = 7",
		"AGGREGATE AVG(p.amount) OVER SEQ(LOGIN l, PAY p) WHERE l.card = p.card WITHIN 1m GROUP BY l.card HAVING w.key != 0",
	}
	for _, src := range ok {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if _, err := Analyze(q, schema); err != nil {
			t.Errorf("Analyze(%q): %v", src, err)
		}
		// Structural analysis without a schema must pass too.
		if _, err := Analyze(q, nil); err != nil {
			t.Errorf("Analyze(%q, nil): %v", src, err)
		}
	}

	bad := []struct {
		src     string
		wantSub string
	}{
		{"AGGREGATE COUNT(p.card) OVER PAY p WITHIN 1s", "COUNT counts matches"},
		{"AGGREGATE SUM(*) OVER PAY p WITHIN 1s", "needs an attribute argument"},
		{"AGGREGATE SUM(p.memo) OVER PAY p WITHIN 1s", "needs a numeric attribute"},
		{"AGGREGATE SUM(x.amount) OVER PAY p WITHIN 1s", "unknown variable"},
		{"AGGREGATE SUM(l.card) OVER SEQ(PAY p, !(LOGIN l)) WITHIN 1s", "negated variable"},
		{"AGGREGATE COUNT(*) OVER PAY p WITHIN 1s GROUP BY x.card", "unknown variable"},
		{"AGGREGATE COUNT(*) OVER SEQ(PAY p, !(LOGIN l)) WITHIN 1s GROUP BY l.card", "negated variable"},
		{"AGGREGATE COUNT(*) OVER PAY p WITHIN 1s SLIDE 2s", "SLIDE 2000ms exceeds WITHIN 1000ms"},
		{"AGGREGATE COUNT(*) OVER PAY p WITHIN 1s HAVING w.key > 0", "w.key requires a GROUP BY"},
		{"AGGREGATE COUNT(*) OVER PAY p WITHIN 1s HAVING p.card > 0", "not pattern variables"},
		{"AGGREGATE COUNT(*) OVER PAY p WITHIN 1s HAVING w.median > 0", "window has no attribute"},
		{"AGGREGATE COUNT(*) OVER PAY p WITHIN 1s HAVING w.value + 1", "HAVING must be boolean"},
		{"AGGREGATE COUNT(*) OVER PAY p WITHIN 1s HAVING w.value = 'x'", "cannot compare"},
		{"AGGREGATE COUNT(*) OVER PAY w WITHIN 1s", "reserved"},
		{"AGGREGATE COUNT(*) OVER PAY p WITHIN 1s HAVING w.count > 0 AND p.card = 1", "not pattern variables"},
	}
	for _, c := range bad {
		q, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		if _, err := Analyze(q, schema); err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Analyze(%q) error = %v, want containing %q", c.src, err, c.wantSub)
		}
	}

	// Reference errors in HAVING surface even without a schema.
	q, err := Parse("AGGREGATE COUNT(*) OVER PAY p WITHIN 1s HAVING w.nope = 1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(q, nil); err == nil || !strings.Contains(err.Error(), "window has no attribute") {
		t.Errorf("nil-schema HAVING ref check: %v", err)
	}
}

func TestAggregateKeywordsStayCaseInsensitive(t *testing.T) {
	q, err := Parse("aggregate Count(*) over seq(PAY p) within 1s slide 1s group by p.card having w.count > 1")
	if err != nil {
		t.Fatal(err)
	}
	if q.Agg == nil || q.Agg.Func != AggCount || q.Agg.GroupBy == nil || q.Agg.Having == nil {
		t.Fatalf("lower-case parse incomplete: %+v", q.Agg)
	}
}
