package query

import (
	"strings"
	"unicode"
)

// durationUnits maps suffixes to their length in logical milliseconds.
var durationUnits = map[string]int64{
	"ms": 1,
	"s":  1000,
	"m":  60 * 1000,
	"h":  60 * 60 * 1000,
	"d":  24 * 60 * 60 * 1000,
}

// lexer produces tokens from query source text.
type lexer struct {
	src  []rune
	pos  int // index into src
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

// Lex tokenizes the whole input, returning the token list ending in a
// TokenEOF, or the first lexical error.
func Lex(src string) ([]Token, error) {
	lx := newLexer(src)
	var tokens []Token
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		tokens = append(tokens, tok)
		if tok.Kind == TokenEOF {
			return tokens, nil
		}
	}
}

func (lx *lexer) peek() rune {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) peekAt(off int) rune {
	if lx.pos+off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+off]
}

func (lx *lexer) advance() rune {
	r := lx.src[lx.pos]
	lx.pos++
	if r == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return r
}

func (lx *lexer) here() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *lexer) skipSpaceAndComments() error {
	for lx.pos < len(lx.src) {
		r := lx.peek()
		switch {
		case unicode.IsSpace(r):
			lx.advance()
		case r == '-' && lx.peekAt(1) == '-':
			// SQL-style line comment.
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case r == '/' && lx.peekAt(1) == '*':
			start := lx.here()
			lx.advance()
			lx.advance()
			closed := false
			for lx.pos < len(lx.src) {
				if lx.peek() == '*' && lx.peekAt(1) == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return syntaxErrorf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func (lx *lexer) next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := lx.here()
	if lx.pos >= len(lx.src) {
		return Token{Kind: TokenEOF, Pos: pos}, nil
	}
	r := lx.peek()
	switch {
	case isIdentStart(r):
		return lx.lexIdent(pos), nil
	case unicode.IsDigit(r):
		return lx.lexNumber(pos)
	case r == '\'' || r == '"':
		return lx.lexString(pos)
	}

	lx.advance()
	simple := func(kind TokenKind, text string) (Token, error) {
		return Token{Kind: kind, Text: text, Pos: pos}, nil
	}
	switch r {
	case '(':
		return simple(TokenLParen, "(")
	case ')':
		return simple(TokenRParen, ")")
	case ',':
		return simple(TokenComma, ",")
	case '.':
		return simple(TokenDot, ".")
	case '+':
		return simple(TokenPlus, "+")
	case '-':
		return simple(TokenMinus, "-")
	case '*':
		return simple(TokenStar, "*")
	case '/':
		return simple(TokenSlash, "/")
	case '%':
		return simple(TokenPercent, "%")
	case '!':
		if lx.peek() == '=' {
			lx.advance()
			return simple(TokenNeq, "!=")
		}
		return simple(TokenBang, "!")
	case '=':
		if lx.peek() == '=' {
			lx.advance()
			return simple(TokenEq, "==")
		}
		return simple(TokenEq, "=")
	case '<':
		if lx.peek() == '=' {
			lx.advance()
			return simple(TokenLte, "<=")
		}
		if lx.peek() == '>' {
			lx.advance()
			return simple(TokenNeq, "<>")
		}
		return simple(TokenLt, "<")
	case '>':
		if lx.peek() == '=' {
			lx.advance()
			return simple(TokenGte, ">=")
		}
		return simple(TokenGt, ">")
	}
	return Token{}, syntaxErrorf(pos, "unexpected character %q", r)
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (lx *lexer) lexIdent(pos Pos) Token {
	var sb strings.Builder
	for lx.pos < len(lx.src) && isIdentPart(lx.peek()) {
		sb.WriteRune(lx.advance())
	}
	text := sb.String()
	if kind, ok := keywords[strings.ToUpper(text)]; ok {
		return Token{Kind: kind, Text: text, Pos: pos}
	}
	return Token{Kind: TokenIdent, Text: text, Pos: pos}
}

func (lx *lexer) lexNumber(pos Pos) (Token, error) {
	var sb strings.Builder
	for lx.pos < len(lx.src) && unicode.IsDigit(lx.peek()) {
		sb.WriteRune(lx.advance())
	}
	isFloat := false
	if lx.peek() == '.' && unicode.IsDigit(lx.peekAt(1)) {
		isFloat = true
		sb.WriteRune(lx.advance())
		for lx.pos < len(lx.src) && unicode.IsDigit(lx.peek()) {
			sb.WriteRune(lx.advance())
		}
	}
	// Duration suffix: ms, s, m, h, d directly after the digits.
	if !isFloat && isIdentStart(lx.peek()) {
		var suffix strings.Builder
		for lx.pos < len(lx.src) && isIdentPart(lx.peek()) {
			suffix.WriteRune(lx.advance())
		}
		sfx := strings.ToLower(suffix.String())
		if _, ok := durationUnits[sfx]; !ok {
			return Token{}, syntaxErrorf(pos, "invalid duration unit %q (want ms, s, m, h, or d)", suffix.String())
		}
		return Token{Kind: TokenDur, Text: sb.String() + sfx, Pos: pos}, nil
	}
	kind := TokenInt
	if isFloat {
		kind = TokenFloat
	}
	return Token{Kind: kind, Text: sb.String(), Pos: pos}, nil
}

func (lx *lexer) lexString(pos Pos) (Token, error) {
	quote := lx.advance()
	var sb strings.Builder
	for {
		if lx.pos >= len(lx.src) {
			return Token{}, syntaxErrorf(pos, "unterminated string literal")
		}
		r := lx.advance()
		if r == quote {
			return Token{Kind: TokenString, Text: sb.String(), Pos: pos}, nil
		}
		if r == '\\' {
			if lx.pos >= len(lx.src) {
				return Token{}, syntaxErrorf(pos, "unterminated string escape")
			}
			esc := lx.advance()
			switch esc {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '\\', '\'', '"':
				sb.WriteRune(esc)
			default:
				return Token{}, syntaxErrorf(pos, "invalid string escape \\%c", esc)
			}
			continue
		}
		sb.WriteRune(r)
	}
}
