package kslack

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/inorder"
	"oostream/internal/oracle"
	"oostream/internal/plan"
)

func TestReleaseInOrder(t *testing.T) {
	b := NewBuffer(10)
	var released []event.Event
	push := func(ts event.Time, seq event.Seq) {
		released = append(released, b.Push(event.Event{Type: "T", TS: ts, Seq: seq})...)
	}
	push(5, 1)
	push(3, 2) // out of order, within slack
	push(8, 3)
	if len(released) != 0 {
		t.Fatalf("nothing should release before watermark moves: %v", released)
	}
	push(20, 4) // watermark = 10: releases 3,5,8
	if len(released) != 3 {
		t.Fatalf("released = %v", released)
	}
	if released[0].TS != 3 || released[1].TS != 5 || released[2].TS != 8 {
		t.Errorf("release order wrong: %v", released)
	}
	released = append(released, b.Flush()...)
	if len(released) != 4 || released[3].TS != 20 {
		t.Errorf("flush wrong: %v", released)
	}
	if b.Len() != 0 {
		t.Error("buffer not empty after flush")
	}
}

func TestWatermarkBoundaryInclusive(t *testing.T) {
	b := NewBuffer(10)
	b.Push(event.Event{TS: 5, Seq: 1})
	out := b.Push(event.Event{TS: 15, Seq: 2}) // watermark = 5: releases ts<=5
	if len(out) != 1 || out[0].TS != 5 {
		t.Fatalf("watermark release: %v", out)
	}
}

func TestLateEventDropped(t *testing.T) {
	b := NewBuffer(10)
	b.Push(event.Event{TS: 100, Seq: 1}) // watermark 90
	out := b.Push(event.Event{TS: 89, Seq: 2})
	if out != nil || b.Dropped() != 1 {
		t.Fatalf("below-watermark event should drop: out=%v dropped=%d", out, b.Dropped())
	}
	// Delay of exactly K (ts == watermark) is still within the bound: the
	// event is accepted and releasable immediately.
	out = b.Push(event.Event{TS: 90, Seq: 3})
	if b.Dropped() != 1 {
		t.Fatal("at-watermark event must be accepted")
	}
	if len(out) != 1 || out[0].TS != 90 {
		t.Fatalf("at-watermark event should release immediately: %v", out)
	}
	if out := b.Push(event.Event{TS: 91, Seq: 4}); b.Dropped() != 1 || len(out) != 0 {
		t.Fatalf("91 > watermark should be accepted and buffered: %v", out)
	}
}

func TestAdvanceHeartbeat(t *testing.T) {
	b := NewBuffer(10)
	b.Push(event.Event{TS: 5, Seq: 1})
	out := b.Advance(20)
	if len(out) != 1 || out[0].TS != 5 {
		t.Fatalf("Advance should release: %v", out)
	}
	// Advance backwards is a no-op.
	if out := b.Advance(1); len(out) != 0 {
		t.Fatalf("backward advance released: %v", out)
	}
	if b.Watermark() != 10 {
		t.Errorf("watermark = %d", b.Watermark())
	}
}

func TestEmptyBufferWatermark(t *testing.T) {
	b := NewBuffer(5)
	if b.Watermark() != minTime {
		t.Error("fresh buffer should have minimal watermark")
	}
	// First event with very small ts must not be treated as late.
	if out := b.Push(event.Event{TS: -1000, Seq: 1}); out != nil {
		t.Fatalf("first push released: %v", out)
	}
	if b.Dropped() != 0 {
		t.Error("first event dropped")
	}
}

func TestZeroSlackPassthrough(t *testing.T) {
	b := NewBuffer(0)
	out := b.Push(event.Event{TS: 5, Seq: 1})
	// Watermark = 5 releases ts<=5 immediately.
	if len(out) != 1 {
		t.Fatalf("K=0 should release immediately: %v", out)
	}
}

// shuffleBounded shuffles events such that no event is displaced by more
// than K time units relative to the max timestamp seen before it arrives.
// It does so by adding a random delay in [0, K] to each event's timestamp
// as a sort key.
func shuffleBounded(rng *rand.Rand, events []event.Event, k event.Time) []event.Event {
	type keyed struct {
		e   event.Event
		key event.Time
	}
	ks := make([]keyed, len(events))
	for i, e := range events {
		ks[i] = keyed{e: e, key: e.TS + event.Time(rng.Int63n(int64(k)+1))}
	}
	for i := 1; i < len(ks); i++ {
		for j := i; j > 0 && ks[j].key < ks[j-1].key; j-- {
			ks[j], ks[j-1] = ks[j-1], ks[j]
		}
	}
	out := make([]event.Event, len(ks))
	for i, kv := range ks {
		out[i] = kv.e
	}
	return out
}

func sortedStream(rng *rand.Rand, n int, types []string) []event.Event {
	events := make([]event.Event, n)
	ts := event.Time(0)
	for i := range events {
		ts += event.Time(rng.Intn(5) + 1)
		events[i] = event.Event{
			Type:  types[rng.Intn(len(types))],
			TS:    ts,
			Seq:   event.Seq(i + 1),
			Attrs: event.Attrs{"id": event.Int(int64(rng.Intn(3)))},
		}
	}
	return events
}

func TestBufferSortsAnyBoundedShuffleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := event.Time(rng.Intn(40) + 1)
		events := sortedStream(rng, 100, []string{"A", "B"})
		shuffled := shuffleBounded(rng, events, k)
		b := NewBuffer(k)
		var released []event.Event
		for _, e := range shuffled {
			released = append(released, b.Push(e)...)
		}
		released = append(released, b.Flush()...)
		if len(released)+int(b.Dropped()) != len(events) {
			return false
		}
		return event.IsSortedByTime(released)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineMatchesOracleOnDisorderedStreams(t *testing.T) {
	p, err := plan.ParseAndCompile(
		"PATTERN SEQ(A a, !(N n), B b) WHERE a.id = b.id WITHIN 40", nil)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		events := sortedStream(rng, 150, []string{"A", "B", "N"})
		k := event.Time(30)
		shuffled := shuffleBounded(rng, events, k)
		want := oracle.Matches(p, events)
		en := NewEngine(k, inorder.New(p))
		got := engine.Drain(en, shuffled)
		if ok, diff := plan.SameResults(want, got); !ok {
			t.Fatalf("seed %d: levee engine wrong (%d vs %d):\n%s", seed, len(want), len(got), diff)
		}
		if en.Metrics().EventsLate != 0 {
			t.Fatalf("seed %d: bounded shuffle produced late drops", seed)
		}
	}
}

func TestEngineLatencyReflectsBuffering(t *testing.T) {
	p, err := plan.ParseAndCompile("PATTERN SEQ(A a, B b) WITHIN 100", nil)
	if err != nil {
		t.Fatal(err)
	}
	en := NewEngine(50, inorder.New(p))
	en.Process(event.Event{Type: "A", TS: 10, Seq: 1})
	en.Process(event.Event{Type: "B", TS: 20, Seq: 2})
	// Nothing released yet; push the watermark past 20.
	out := en.Process(event.Event{Type: "A", TS: 75, Seq: 3})
	if len(out) != 1 {
		out = append(out, en.Flush()...)
	}
	if len(out) != 1 {
		t.Fatalf("matches = %v", out)
	}
	s := en.Metrics()
	if s.LogicalLat.Max() < 50 {
		t.Errorf("levee latency should be >= K-ish, got %d", s.LogicalLat.Max())
	}
	if s.EventsIn != 3 {
		t.Errorf("EventsIn = %d", s.EventsIn)
	}
}

func TestEngineStateCountsBuffer(t *testing.T) {
	p, err := plan.ParseAndCompile("PATTERN SEQ(A a, B b) WITHIN 100", nil)
	if err != nil {
		t.Fatal(err)
	}
	en := NewEngine(1000, inorder.New(p))
	for i := 1; i <= 10; i++ {
		en.Process(event.Event{Type: "A", TS: event.Time(i), Seq: event.Seq(i)})
	}
	if en.StateSize() != 10 {
		t.Errorf("StateSize = %d, want 10 buffered", en.StateSize())
	}
	if en.Metrics().PeakState != 10 {
		t.Errorf("PeakState = %d", en.Metrics().PeakState)
	}
}
