package kslack

import (
	"math/rand"
	"sync"
	"testing"

	"oostream/internal/adaptive"
	"oostream/internal/event"
	"oostream/internal/inorder"
	"oostream/internal/plan"
)

// TestConcurrentSetKDuringProcess hammers Controller.SetK from a resizer
// goroutine while the owning engine processes a disordered stream. Run
// under -race this pins the controller's contract: external resizes are
// atomic publishes that never tear against the engine's per-push
// EffectiveK reads. Correctness of the output is NOT asserted — an
// external resize mid-stream legitimately changes what is late — only
// race-freedom and basic sanity (the engine never deadlocks or panics).
func TestConcurrentSetKDuringProcess(t *testing.T) {
	p, err := plan.ParseAndCompile("PATTERN SEQ(A a, B b) WITHIN 40", nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	events := shuffleBounded(rng, sortedStream(rng, 4_000, []string{"A", "B"}), 30)

	ctrl := adaptive.MustController(adaptive.Config{InitialK: 30})
	en := NewAdaptiveEngine(ctrl, true, inorder.New(p))

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		k := event.Time(1)
		for {
			select {
			case <-done:
				return
			default:
			}
			ctrl.SetK(1 + k%60)
			k++
		}
	}()

	for i, e := range events {
		if i%64 == 0 {
			en.ProcessBatch(events[i : i+1])
		} else {
			en.Process(e)
		}
		// Interleave reader-side accessors the way an introspection
		// endpoint would.
		if i%128 == 0 {
			_ = ctrl.EffectiveK()
			_ = ctrl.Snapshot()
			_ = en.StateSnapshot()
		}
	}
	en.Flush()
	close(done)
	wg.Wait()

	if got := en.Metrics().EventsIn; got == 0 {
		t.Fatal("engine processed nothing")
	}
	if ctrl.MaxKObserved() < 1 {
		t.Fatalf("MaxKObserved = %d, want ≥ 1", ctrl.MaxKObserved())
	}
}
