package kslack

import (
	"oostream/internal/adaptive"
	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/metrics"
	"oostream/internal/obsv"
	"oostream/internal/plan"
	"oostream/internal/provenance"
)

// Engine is the buffer-and-reorder levee strategy: a K-slack buffer in
// front of any in-order engine. It is the second baseline of the
// evaluation: exact under the disorder bound, but it pays the full K in
// result latency and buffers the entire recent stream, relevant or not.
type Engine struct {
	buf   *Buffer
	inner engine.Engine
	met   metrics.Collector
	// clock is the outer (arrival-side) max timestamp, used to measure
	// true result latency including the buffering delay.
	clock   event.Time
	arrival uint64
	// trace observes the levee's own lifecycle steps (admit, drop, emit)
	// when non-nil; the inner engine keeps its own hook off — its view is
	// delayed by K and would double-report.
	trace     obsv.TraceHook
	traceName string
	// prov mirrors the inner engine's provenance flag; restamp then
	// rewrites each relayed record's emit clock to the outer clock (the
	// inner engine's clock lags by K).
	prov bool
	// adapt, when non-nil, makes the slack dynamic: the buffer re-reads
	// the controller's effective K at every push. adaptFeed marks this
	// engine as the controller's owner — it feeds lag observations and
	// buffer occupancy; a follower (one shard of a partitioned engine
	// sharing a controller, or a hybrid sub-engine) only reads.
	adapt     *adaptive.Controller
	adaptFeed bool
	shedded   uint64
	// lat, when non-nil, stamps wall-clock stage boundaries on sampled
	// spans. The levee owns the buffer-residency stage: admitted events
	// are Held (so the facade's unconditional Finish cannot close a span
	// still sitting in the reorder buffer) and FinishHeld at release,
	// after the inner engine has processed them. The sampler is NOT
	// forwarded to the inner engine — the levee stamps StageConstruct
	// around the inner batch itself, keeping one stamp per stage.
	lat *obsv.LatencySampler
}

var _ engine.Engine = (*Engine)(nil)

// NewEngine wraps inner with a K-slack reorder buffer.
func NewEngine(k event.Time, inner engine.Engine) *Engine {
	return &Engine{buf: NewBuffer(k), inner: inner}
}

// NewAdaptiveEngine wraps inner with a reorder buffer whose slack is the
// controller's effective K, re-read at every push. When feed is true this
// engine owns the controller: it feeds watermark-lag observations and
// buffer occupancy (driving K derivation and overload degradation); pass
// false for engines sharing a controller someone else feeds.
func NewAdaptiveEngine(ctrl *adaptive.Controller, feed bool, inner engine.Engine) *Engine {
	return &Engine{buf: NewBufferDynamic(ctrl.EffectiveK), inner: inner, adapt: ctrl, adaptFeed: feed}
}

// Name implements engine.Engine.
func (en *Engine) Name() string { return "kslack" }

// SetLatencySampler implements engine.LatencySampled (see the lat field).
func (en *Engine) SetLatencySampler(ls *obsv.LatencySampler) { en.lat = ls }

// Observe implements engine.Observable. The series and hook bind to the
// levee itself: the inner engine's ingestion view is delayed by K, so the
// outer collector is the one that reflects the live stream.
func (en *Engine) Observe(s *obsv.Series, hook obsv.TraceHook) {
	en.met.Bind(s)
	en.trace = hook
	if s != nil && s.Name() != "" {
		en.traceName = s.Name()
	} else if en.traceName == "" {
		en.traceName = en.Name()
	}
}

// EnableProvenance implements engine.Provenancer, forwarding to the inner
// engine (which builds the records; the levee restamps their emit clock).
func (en *Engine) EnableProvenance() {
	en.prov = true
	if pr, ok := en.inner.(engine.Provenancer); ok {
		pr.EnableProvenance()
	}
}

// StateSnapshot implements engine.Introspectable: the levee's buffer
// occupancy and watermark wrap the inner engine's snapshot.
func (en *Engine) StateSnapshot() *provenance.StateSnapshot {
	name := en.traceName
	if name == "" {
		name = en.Name()
	}
	s := &provenance.StateSnapshot{
		Engine:    name,
		Started:   en.arrival > 0,
		Clock:     en.clock,
		Safe:      en.buf.Watermark(),
		BufferLen: en.buf.Len(),
		Lineage:   provenance.LineageStats{Enabled: en.prov},
	}
	if en.adapt != nil {
		cs := en.adapt.Snapshot()
		s.Adaptive = &provenance.AdaptiveStats{
			Enabled:      cs.Enabled,
			EffectiveK:   cs.EffectiveK,
			NominalK:     cs.NominalK,
			MaxKObserved: cs.MaxKObserved,
			Degraded:     cs.Degraded,
			Shedded:      en.shedded,
			Resizes:      cs.Resizes,
		}
	}
	if intr, ok := en.inner.(engine.Introspectable); ok {
		inner := intr.StateSnapshot()
		s.Inner = inner
		s.PurgeFrontier = inner.PurgeFrontier
		s.StackDepths = inner.StackDepths
		s.NegStoreSizes = inner.NegStoreSizes
		s.Pending = inner.Pending
		s.Lineage.Live = inner.Lineage.Live
		s.Lineage.Bytes = inner.Lineage.Bytes
		s.Lineage.Truncated = inner.Lineage.Truncated
	}
	return s
}

// StateSize implements engine.Engine: buffered events plus inner state.
func (en *Engine) StateSize() int { return en.buf.Len() + en.inner.StateSize() }

// Process implements engine.Engine.
func (en *Engine) Process(e event.Event) []plan.Match {
	out := en.processOne(e, nil)
	en.met.SetLiveState(en.StateSize())
	en.publishAdaptive()
	return out
}

// publishAdaptive refreshes the controller-derived gauges (batch cadence,
// like the live-state gauge).
func (en *Engine) publishAdaptive() {
	if en.adapt == nil {
		return
	}
	en.met.SetCurrentK(en.adapt.EffectiveK())
	en.met.SetDegraded(en.adapt.Degraded())
}

// ProcessBatch implements engine.BatchProcessor. The levee MUST admit
// outer events one at a time — each push can move the watermark and
// release buffered events whose restamped emission metadata (EmitSeq,
// EmitClock) is defined by the outer clock at that moment — so the batch
// path loops the per-event pipeline, handing each released run to the
// inner engine's batch path and sharing one output slice; only the state
// gauge is deferred to the batch boundary.
func (en *Engine) ProcessBatch(batch []event.Event) []plan.Match {
	var out []plan.Match
	for i := range batch {
		out = en.processOne(batch[i], out)
	}
	en.met.SetLiveState(en.StateSize())
	en.publishAdaptive()
	return out
}

// processOne admits one outer event and feeds whatever the buffer
// releases to the inner engine.
func (en *Engine) processOne(e event.Event, out []plan.Match) []plan.Match {
	en.arrival++
	var lag event.Time
	if e.TS < en.clock {
		lag = en.clock - e.TS
	}
	en.met.IncIn(e.TS < en.clock, lag)
	if en.adaptFeed {
		// Same observation point as Series.WatermarkLag — bound violators
		// included, so a late storm is evidence to grow K, not invisible.
		en.adapt.ObserveLag(lag)
	}
	if en.trace != nil {
		en.trace.Trace(obsv.TraceEvent{Op: obsv.OpAdmit, Engine: en.traceName, Type: e.Type, TS: e.TS, Seq: e.Seq})
	}
	if e.TS > en.clock {
		en.clock = e.TS
	}
	en.lat.Hold(e.Seq)
	before := en.buf.Dropped()
	released := en.buf.Push(e)
	if en.buf.Dropped() > before {
		en.met.IncLate()
		en.lat.Abandon(e.Seq)
		if en.trace != nil {
			en.trace.Trace(obsv.TraceEvent{Op: obsv.OpDrop, Engine: en.traceName, Type: e.Type, TS: e.TS, Seq: e.Seq})
		}
	}
	out = en.feedInto(released, out)
	if en.adapt != nil {
		// Degradation check runs on the post-push occupancy (before
		// shedding trims it) so the controller sees the overload; shedding
		// then bounds the buffer deterministically, oldest first.
		if en.adaptFeed {
			en.adapt.NoteState(en.buf.Len())
		}
		if limit := en.adapt.Limits().MaxBufferedEvents; limit > 0 {
			for _, shed := range en.buf.ShedOldest(limit) {
				en.shedded++
				en.met.IncShedded()
				en.lat.Abandon(shed.Seq)
				if en.trace != nil {
					en.trace.Trace(obsv.TraceEvent{Op: obsv.OpShed, Engine: en.traceName, Type: shed.Type, TS: shed.TS, Seq: shed.Seq})
				}
			}
		}
	}
	return out
}

// Advance implements engine.Advancer: a heartbeat moves the reorder
// buffer's watermark to ts − K, releasing (and processing) everything at or
// below it, and forwards the heartbeat to the inner engine when it supports
// punctuation.
func (en *Engine) Advance(ts event.Time) []plan.Match {
	if ts > en.clock {
		en.clock = ts
	}
	if en.trace != nil {
		en.trace.Trace(obsv.TraceEvent{Op: obsv.OpHeartbeat, Engine: en.traceName, TS: ts})
	}
	out := en.feed(en.buf.Advance(ts))
	if adv, ok := en.inner.(engine.Advancer); ok {
		out = append(out, en.restamp(adv.Advance(en.buf.Watermark()))...)
	}
	return out
}

// Flush implements engine.Engine.
func (en *Engine) Flush() []plan.Match {
	out := en.feed(en.buf.Flush())
	out = append(out, en.restamp(en.inner.Flush())...)
	en.met.SetLiveState(en.StateSize())
	if en.trace != nil {
		en.trace.Trace(obsv.TraceEvent{Op: obsv.OpFlush, Engine: en.traceName, TS: en.clock})
	}
	return out
}

func (en *Engine) feed(released []event.Event) []plan.Match {
	out := en.feedInto(released, nil)
	en.met.SetLiveState(en.StateSize())
	return out
}

// feedInto runs a released run through the inner engine's batch path
// (identical to per-event feeding by the BatchProcessor contract — the
// outer clock and arrival counter are fixed for the whole run, so every
// restamp is unchanged) and appends the restamped matches to out.
func (en *Engine) feedInto(released []event.Event, out []plan.Match) []plan.Match {
	if len(released) == 0 {
		return out
	}
	// Stage accounting for the released run: close each span's buffer
	// residency at release, attribute the inner batch to construction,
	// and close the (held) spans once their matches are restamped. Every
	// call is a one-branch no-op for unsampled seqs or a nil sampler.
	for i := range released {
		en.lat.StageEnd(released[i].Seq, obsv.StageBuffer)
	}
	ms := engine.ProcessBatch(en.inner, released)
	for i := range released {
		en.lat.StageEnd(released[i].Seq, obsv.StageConstruct)
	}
	out = append(out, en.restamp(ms)...)
	for i := range released {
		en.lat.FinishHeld(released[i].Seq)
	}
	return out
}

// restamp rewrites emission metadata to the outer clock so latency reflects
// the buffering delay, and records the matches in the outer collector.
func (en *Engine) restamp(ms []plan.Match) []plan.Match {
	for i := range ms {
		ms[i].EmitClock = en.clock
		ms[i].EmitSeq = event.Seq(en.arrival)
		if ms[i].Prov != nil {
			ms[i].Prov.EmitClock = en.clock
		}
		retract := ms[i].Kind == plan.Retract
		en.met.AddMatch(retract, en.clock-ms[i].Last().TS, 0)
		if en.trace != nil {
			op := obsv.OpEmit
			if retract {
				op = obsv.OpRetract
			}
			te := obsv.TraceEvent{Op: op, Engine: en.traceName, TS: ms[i].Last().TS, Seq: ms[i].EmitSeq, N: len(ms[i].Events)}
			if ms[i].Prov != nil {
				te.Match = ms[i].Prov.MatchKey()
			}
			en.trace.Trace(te)
		}
	}
	return ms
}

// Metrics implements engine.Engine: ingestion, state, and latency figures
// come from the levee's own collector (the inner engine's view is delayed
// by K and its state is only part of the total); predicate errors and purge
// counters pass through from the inner engine.
func (en *Engine) Metrics() metrics.Snapshot {
	outer := en.met.Snapshot()
	inner := en.inner.Metrics()
	outer.PredErrors = inner.PredErrors
	outer.Purged = inner.Purged
	outer.PurgeCalls = inner.PurgeCalls
	outer.Irrelevant = inner.Irrelevant
	return outer
}
