// Package kslack implements the K-slack reorder buffer: the classic
// "levee" defense against out-of-order arrival that the paper contrasts
// with its native approach. Events are buffered in a min-heap on
// (timestamp, sequence) and released in timestamp order once the watermark
// maxSeen − K passes them. Under the disorder bound (no event delayed more
// than K time units) the released stream is perfectly sorted, so an
// unmodified in-order engine downstream produces exact results — at the
// price of buffering memory and up to K added latency on every result.
package kslack

import (
	"container/heap"

	"oostream/internal/event"
)

// Buffer is a K-slack reorder buffer. The zero value is not usable; use
// NewBuffer or NewBufferDynamic.
type Buffer struct {
	k event.Time
	// bound, when non-nil, makes the slack dynamic: it is loaded (one
	// atomic read in the adaptive controller) at every push/advance and
	// folded into a monotone frontier, so a shrinking bound can never move
	// the watermark backwards — releases stay sorted no matter how K moves.
	bound    func() event.Time
	frontier event.Time
	heap     eventHeap
	maxSeen  event.Time
	started  bool
	dropped  uint64
}

// NewBuffer creates a reorder buffer with static slack k (logical
// milliseconds).
func NewBuffer(k event.Time) *Buffer {
	return &Buffer{k: k}
}

// NewBufferDynamic creates a reorder buffer whose slack is re-read from
// bound at every push/advance (typically adaptive.Controller.EffectiveK).
// The release watermark is the monotone frontier max over history of
// (maxSeen − bound()): a growing bound takes effect immediately (the
// frontier stops advancing), a shrinking bound only lets future arrivals
// advance it faster. Every admitted event's timestamp is ≥ the frontier at
// admission ≥ maxSeen − max bound ever returned, so the released stream
// equals what a static buffer with K = max bound observed would release
// over the same admitted events.
func NewBufferDynamic(bound func() event.Time) *Buffer {
	return &Buffer{bound: bound, frontier: minTime}
}

// K returns the configured slack (the current bound for dynamic buffers).
func (b *Buffer) K() event.Time {
	if b.bound != nil {
		return b.bound()
	}
	return b.k
}

// MaxSeen returns the maximum timestamp observed (via Push or Advance) and
// whether anything has been observed at all.
func (b *Buffer) MaxSeen() (event.Time, bool) { return b.maxSeen, b.started }

// Pending returns a sorted copy of the still-buffered events, for
// checkpointing. The buffer is unchanged.
func (b *Buffer) Pending() []event.Event {
	out := make([]event.Event, len(b.heap))
	copy(out, b.heap)
	event.SortByTime(out)
	return out
}

// restoreInto loads checkpointed state: the watermark position
// (maxSeen/started) and the still-buffered events — all above the implied
// watermark, as Pending returned them.
func (b *Buffer) restoreInto(maxSeen event.Time, started bool, pending []event.Event) {
	b.maxSeen, b.started = maxSeen, started
	b.heap = append(b.heap[:0], pending...)
	heap.Init(&b.heap)
}

// RestoreBuffer rebuilds a buffer from checkpointed state (see Pending and
// MaxSeen for the capture side).
func RestoreBuffer(k event.Time, maxSeen event.Time, started bool, pending []event.Event) *Buffer {
	b := NewBuffer(k)
	b.restoreInto(maxSeen, started, pending)
	return b
}

// Len returns the number of buffered events.
func (b *Buffer) Len() int { return len(b.heap) }

// Dropped returns how many events were discarded for violating the bound.
func (b *Buffer) Dropped() uint64 { return b.dropped }

// Watermark returns the current release watermark: maxSeen − K for static
// buffers, the monotone frontier for dynamic ones. Events at or below the
// watermark have been released (or dropped).
func (b *Buffer) Watermark() event.Time {
	if !b.started {
		// Nothing seen: nothing is releasable yet.
		return minTime
	}
	if b.bound != nil {
		return b.frontier
	}
	return b.maxSeen - b.k
}

// syncFrontier folds the current dynamic bound into the monotone frontier.
// Called after every maxSeen move (and bound read): the frontier only ever
// advances.
func (b *Buffer) syncFrontier() {
	if b.bound == nil || !b.started {
		return
	}
	if cand := b.maxSeen - b.bound(); cand > b.frontier {
		b.frontier = cand
	}
}

const minTime = event.Time(-1 << 62)

// Push inserts an event and returns the events that become releasable, in
// nondecreasing timestamp order. An event arriving strictly below the
// current watermark violates the disorder bound and is dropped (counted
// via Dropped); an event exactly at the watermark (delay exactly K) is
// still safe — everything already released has a timestamp at or below it,
// so it is accepted and released immediately, matching the native engine's
// inclusive interpretation of the bound.
func (b *Buffer) Push(e event.Event) []event.Event {
	if b.started && e.TS < b.Watermark() {
		b.dropped++
		return nil
	}
	heap.Push(&b.heap, e)
	if !b.started || e.TS > b.maxSeen {
		b.maxSeen = e.TS
		b.started = true
	}
	b.syncFrontier()
	return b.release()
}

// Advance moves the watermark as if an event with timestamp ts had been
// seen, releasing everything at or below ts − K. Sources use this to
// propagate heartbeats/punctuation through silent periods.
func (b *Buffer) Advance(ts event.Time) []event.Event {
	if !b.started || ts > b.maxSeen {
		b.maxSeen = ts
		b.started = true
	}
	b.syncFrontier()
	return b.release()
}

// ShedOldest pops and returns the oldest buffered events until at most
// limit remain — the overload-degradation path. Shed events are discarded
// outright, never delivered downstream: the remaining heap minimum only
// rises, so subsequent releases stay sorted, and the net output over the
// surviving events is exactly what a run fed only the survivors produces.
func (b *Buffer) ShedOldest(limit int) []event.Event {
	if limit < 0 || len(b.heap) <= limit {
		return nil
	}
	out := make([]event.Event, 0, len(b.heap)-limit)
	for len(b.heap) > limit {
		out = append(out, heap.Pop(&b.heap).(event.Event))
	}
	return out
}

// Flush releases everything regardless of the watermark (end of stream).
func (b *Buffer) Flush() []event.Event {
	out := make([]event.Event, 0, len(b.heap))
	for len(b.heap) > 0 {
		out = append(out, heap.Pop(&b.heap).(event.Event))
	}
	return out
}

func (b *Buffer) release() []event.Event {
	var out []event.Event
	wm := b.Watermark()
	for len(b.heap) > 0 && b.heap[0].TS <= wm {
		out = append(out, heap.Pop(&b.heap).(event.Event))
	}
	return out
}

// eventHeap is a min-heap of events on (TS, Seq).
type eventHeap []event.Event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].Before(h[j]) }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(event.Event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	out := old[n-1]
	old[n-1] = event.Event{}
	*h = old[:n-1]
	return out
}
