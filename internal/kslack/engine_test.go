package kslack

import (
	"testing"

	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/metrics"
	"oostream/internal/plan"
)

// stubEngine is a minimal engine.Engine that does NOT implement
// engine.Advancer, to exercise the levee's punctuation fallback.
type stubEngine struct {
	processed []event.Event
	flushed   bool
}

var _ engine.Engine = (*stubEngine)(nil)

func (s *stubEngine) Name() string { return "stub" }
func (s *stubEngine) Process(e event.Event) []plan.Match {
	s.processed = append(s.processed, e)
	// Emit one single-event "match" per processed event so restamping has
	// something to rewrite.
	return []plan.Match{{Kind: plan.Insert, Events: []event.Event{e}}}
}
func (s *stubEngine) Flush() []plan.Match       { s.flushed = true; return nil }
func (s *stubEngine) Metrics() metrics.Snapshot { return metrics.Snapshot{} }
func (s *stubEngine) StateSize() int            { return 0 }

func TestEngineAdvanceWithNonAdvancerInner(t *testing.T) {
	stub := &stubEngine{}
	en := NewEngine(10, stub)
	en.Process(event.Event{Type: "A", TS: 5, Seq: 1})
	if len(stub.processed) != 0 {
		t.Fatal("event released before watermark")
	}
	out := en.Advance(100)
	if len(stub.processed) != 1 {
		t.Fatalf("heartbeat did not release: %d", len(stub.processed))
	}
	if len(out) != 1 {
		t.Fatalf("released event's match not forwarded: %v", out)
	}
	// The inner engine is not an Advancer: no panic, no extra output.
	if out2 := en.Advance(200); len(out2) != 0 {
		t.Fatalf("second heartbeat produced %v", out2)
	}
}

func TestEngineRestampsEmissionMetadata(t *testing.T) {
	stub := &stubEngine{}
	en := NewEngine(10, stub)
	en.Process(event.Event{Type: "A", TS: 5, Seq: 1})
	out := en.Process(event.Event{Type: "A", TS: 50, Seq: 2}) // releases ts=5
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
	if out[0].EmitClock != 50 {
		t.Errorf("EmitClock = %d, want outer clock 50", out[0].EmitClock)
	}
	if out[0].EmitSeq != 2 {
		t.Errorf("EmitSeq = %d, want arrival 2", out[0].EmitSeq)
	}
	s := en.Metrics()
	if s.Matches != 1 {
		t.Errorf("outer collector matches = %d", s.Matches)
	}
	if s.LogicalLat.Max() != 45 {
		t.Errorf("latency = %d, want 50-5", s.LogicalLat.Max())
	}
}

func TestEngineRestampCountsRetractions(t *testing.T) {
	en := NewEngine(0, &stubEngine{})
	ms := en.restamp([]plan.Match{
		{Kind: plan.Retract, Events: []event.Event{{TS: 1}}},
		{Kind: plan.Insert, Events: []event.Event{{TS: 1}}},
	})
	if len(ms) != 2 {
		t.Fatal("restamp dropped matches")
	}
	s := en.Metrics()
	if s.Matches != 1 || s.Retractions != 1 {
		t.Errorf("counters: %+v", s)
	}
}

func TestEngineFlushFlushesInner(t *testing.T) {
	stub := &stubEngine{}
	en := NewEngine(1000, stub)
	en.Process(event.Event{Type: "A", TS: 5, Seq: 1})
	out := en.Flush()
	if !stub.flushed {
		t.Error("inner not flushed")
	}
	if len(stub.processed) != 1 {
		t.Error("buffer not drained into inner on flush")
	}
	if len(out) != 1 {
		t.Errorf("flush output: %v", out)
	}
}
