package ring

import (
	"sync"
	"testing"
)

// TestWraparoundExactCapacity drives the queue through many full-capacity
// cycles so the power-of-two head/tail indices wrap while the queue sits
// exactly at the full/empty boundary — the spot where an off-by-one in the
// sequence arithmetic would lose or duplicate a slot. A concurrent
// consumer drains in heartbeat-style batches (PopWait then PopBatch, the
// shard.Parallel flush shape) while the producer refills, so the boundary
// is crossed under contention rather than in lockstep. Run with -race.
func TestWraparoundExactCapacity(t *testing.T) {
	const cycles = 2000
	q := New[int](4)
	capacity := q.Cap()
	total := cycles * capacity

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		next := 0
		for c := 0; c < cycles; c++ {
			// Fill to exactly capacity before yielding: TryPush must accept
			// precisely Cap() items from empty and refuse the next.
			for i := 0; i < capacity; i++ {
				if !q.Push(next, nil) {
					t.Errorf("cycle %d: push %d failed", c, next)
					return
				}
				next++
			}
		}
	}()

	got := make([]int, 0, total)
	buf := make([]int, capacity)
	for len(got) < total {
		v, ok := q.PopWait(nil)
		if !ok {
			t.Fatal("PopWait reported closed mid-stream")
		}
		got = append(got, v)
		n := q.PopBatch(buf)
		if n > capacity {
			t.Fatalf("PopBatch returned %d items from a %d-cap queue", n, capacity)
		}
		got = append(got, buf[:n]...)
	}
	wg.Wait()

	if len(got) != total {
		t.Fatalf("drained %d items, want %d", len(got), total)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("item %d = %d; wraparound broke FIFO order", i, v)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue not empty after drain: Len=%d", q.Len())
	}
}

// TestPushAfterClose pins the close semantics producers rely on: after
// Close, TryPush and Push refuse new items (Push returns instead of
// parking forever), Closed reports true, items queued before the close
// stay poppable, and a second Close is a no-op.
func TestPushAfterClose(t *testing.T) {
	q := New[int](4)
	if !q.TryPush(1) || !q.TryPush(2) {
		t.Fatal("pushes before close failed")
	}
	q.Close()
	q.Close() // idempotent
	if !q.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	if q.TryPush(3) {
		t.Fatal("TryPush after Close succeeded")
	}
	if q.Push(3, nil) {
		t.Fatal("Push after Close succeeded")
	}
	for want := 1; want <= 2; want++ {
		if v, ok := q.TryPop(); !ok || v != want {
			t.Fatalf("TryPop after Close = %d, %v; want %d, true", v, ok, want)
		}
	}
	if _, ok := q.PopWait(nil); ok {
		t.Fatal("PopWait returned an item from a closed, drained queue")
	}
}
