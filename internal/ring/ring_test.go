package ring

import (
	"runtime"
	"sync"
	"testing"
)

// TestFIFOSingleProducer checks strict ordering through wraparound.
func TestFIFOSingleProducer(t *testing.T) {
	q := New[int](4)
	next := 0
	for round := 0; round < 10; round++ {
		for q.TryPush(next) {
			next++
		}
		want := next - q.Len()
		for {
			v, ok := q.TryPop()
			if !ok {
				break
			}
			if v != want {
				t.Fatalf("round %d: popped %d, want %d", round, v, want)
			}
			want++
		}
	}
}

func TestCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {256, 256}, {300, 512},
	} {
		if got := New[int](tc.ask).Cap(); got != tc.want {
			t.Errorf("New(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

func TestTryPushFullTryPopEmpty(t *testing.T) {
	q := New[string](2)
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on empty queue returned ok")
	}
	if !q.TryPush("a") || !q.TryPush("b") {
		t.Fatal("pushes within capacity failed")
	}
	if q.TryPush("c") {
		t.Fatal("TryPush on full queue succeeded")
	}
	if v, ok := q.TryPop(); !ok || v != "a" {
		t.Fatalf("TryPop = %q, %v; want \"a\", true", v, ok)
	}
	if !q.TryPush("c") {
		t.Fatal("TryPush after a pop failed")
	}
}

// TestCloseDrains checks PopWait returns queued items after Close and only
// then reports closed.
func TestCloseDrains(t *testing.T) {
	q := New[int](8)
	for i := 0; i < 5; i++ {
		if !q.Push(i, nil) {
			t.Fatalf("Push(%d) failed", i)
		}
	}
	q.Close()
	if q.Push(99, nil) {
		t.Fatal("Push after Close succeeded")
	}
	for i := 0; i < 5; i++ {
		v, ok := q.PopWait(nil)
		if !ok || v != i {
			t.Fatalf("PopWait = %d, %v; want %d, true", v, ok, i)
		}
	}
	if _, ok := q.PopWait(nil); ok {
		t.Fatal("PopWait after drain returned ok")
	}
}

// TestMPSCStress drives the queue the way shard.Parallel does — several
// producers racing event pushes with interleaved heartbeat messages, one
// consumer batch-draining, a Close-then-drain "Flush" at the end — and
// verifies no item is lost, duplicated, or reordered per producer. Run
// with -race.
func TestMPSCStress(t *testing.T) {
	const (
		producers = 4
		perProd   = 5000
		heartbeat = -1 // sentinel mixed into the stream like Advance msgs
	)
	q := New[[2]int](64) // {producer, value}; small cap forces blocking

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				v := i
				if i%97 == 0 {
					v = heartbeat
				}
				if !q.Push([2]int{p, v}, nil) {
					t.Errorf("producer %d: push %d failed", p, i)
					return
				}
			}
		}(p)
	}

	done := make(chan struct{})
	var got [producers][]int
	var hbs int
	go func() {
		defer close(done)
		buf := make([][2]int, 32)
		for {
			v, ok := q.PopWait(nil)
			if !ok {
				return // closed and drained: the consumer's Flush point
			}
			n := 1
			buf[0] = v
			n += q.PopBatch(buf[1:])
			for _, it := range buf[:n] {
				if it[1] == heartbeat {
					hbs++
					continue
				}
				got[it[0]] = append(got[it[0]], it[1])
			}
		}
	}()

	wg.Wait()
	q.Close()
	<-done

	wantHbs := 0
	for p := 0; p < producers; p++ {
		want := 0
		for i := 0; i < perProd; i++ {
			if i%97 == 0 {
				wantHbs++
				continue
			}
			if want >= len(got[p]) {
				t.Fatalf("producer %d: lost items after %d", p, want)
			}
			if got[p][want] != i {
				t.Fatalf("producer %d: item %d = %d, want %d", p, want, got[p][want], i)
			}
			want++
		}
		if want != len(got[p]) {
			t.Fatalf("producer %d: got %d items, want %d", p, len(got[p]), want)
		}
	}
	if hbs != wantHbs {
		t.Fatalf("heartbeats seen = %d, want %d", hbs, wantHbs)
	}
}

// TestPushAbort checks the done channel unblocks a producer parked on a
// full queue.
func TestPushAbort(t *testing.T) {
	q := New[int](2)
	q.TryPush(1)
	q.TryPush(2)
	done := make(chan struct{})
	close(done)
	if q.Push(3, done) {
		t.Fatal("Push into full queue with closed done succeeded")
	}
}

// TestStatsBackpressureCounters drives the queue through occupancy, a
// full-ring TryPush rejection, and a parked Push, and checks Stats
// accounts each: Len/Cap track occupancy, FullRejects counts rejected
// non-blocking pushes, BlockedPushes counts producer stalls (one per
// parked call, not per wakeup).
func TestStatsBackpressureCounters(t *testing.T) {
	q := New[int](4)
	for i := 0; i < 4; i++ {
		if !q.TryPush(i) {
			t.Fatalf("push %d rejected on a non-full ring", i)
		}
	}
	st := q.Stats()
	if st.Len != 4 || st.Cap != 4 || st.Pushes != 4 || st.Pops != 0 {
		t.Fatalf("stats after fill = %+v", st)
	}
	if q.TryPush(99) {
		t.Fatal("TryPush succeeded on a full ring")
	}
	if got := q.Stats().FullRejects; got != 1 {
		t.Fatalf("FullRejects = %d, want 1", got)
	}

	// A blocking Push on the full ring must park, be counted once, and
	// complete when the consumer frees a slot.
	pushed := make(chan struct{})
	go func() {
		defer close(pushed)
		if !q.Push(42, nil) {
			t.Error("parked Push failed")
		}
	}()
	for q.Stats().BlockedPushes == 0 {
		// Yield until the producer has parked (counted before waiting).
		runtime.Gosched()
	}
	if _, ok := q.TryPop(); !ok {
		t.Fatal("pop failed on a full ring")
	}
	<-pushed
	st = q.Stats()
	if st.BlockedPushes != 1 {
		t.Fatalf("BlockedPushes = %d, want 1", st.BlockedPushes)
	}
	if st.Pushes != 5 || st.Pops != 1 || st.Len != 4 {
		t.Fatalf("stats after unblock = %+v", st)
	}
}
