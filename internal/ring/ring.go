// Package ring provides a bounded multi-producer single-consumer queue
// used to hand events from the routing goroutine (and, in stress tests,
// many producers) to per-shard consumers without a per-item channel
// rendezvous. The fast path is the classic bounded array queue of Vyukov:
// each cell carries an atomic sequence stamp that encodes whose turn the
// cell is — producers claim cells by CAS on the enqueue cursor, publish by
// bumping the stamp, and the consumer observes published cells in order
// with plain atomic loads. Blocking is layered on top with one-slot notify
// channels, so the uncontended path never touches the Go scheduler.
package ring

import "sync/atomic"

// cell is one slot of the ring. seq encodes the cell's turn:
//
//	seq == pos            the cell is free for the producer whose claim
//	                      position is pos
//	seq == pos+1          the cell holds the value published at pos and is
//	                      ready for the consumer
//	seq == pos+capacity   the cell has been consumed and is free for the
//	                      producer one lap ahead
type cell[T any] struct {
	seq atomic.Uint64
	val T
}

// Queue is a bounded MPSC queue. Producers may call TryPush/Push
// concurrently; TryPop/PopWait must only be called from one consumer
// goroutine. Close must happen after every producer has returned from its
// final Push (the usual shape: producers finish, then the owner closes).
type Queue[T any] struct {
	mask  uint64
	cells []cell[T]

	enqPos atomic.Uint64
	deqPos atomic.Uint64

	closed atomic.Bool
	// closedCh unblocks parked producers and the consumer on Close.
	closedCh chan struct{}
	// notEmpty/notFull are one-slot wakeup tokens: a push signals notEmpty,
	// a pop signals notFull. Waiters re-check the ring after every wakeup,
	// so a dropped token (channel already full) is never a lost update.
	notEmpty chan struct{}
	notFull  chan struct{}

	// Backpressure accounting. full counts TryPush rejections on a full
	// ring; blocked counts Push calls that had to park at least once
	// before enqueueing (one per call, not per wakeup, so the counter
	// reads as "producer stalls").
	full    atomic.Uint64
	blocked atomic.Uint64
}

// Stats is a point-in-time view of the queue's backpressure counters and
// occupancy.
type Stats struct {
	// Len/Cap are instantaneous occupancy and capacity.
	Len, Cap int
	// Pushes/Pops are cumulative successful enqueues and dequeues.
	Pushes, Pops uint64
	// FullRejects counts TryPush calls rejected on a full ring.
	FullRejects uint64
	// BlockedPushes counts Push calls that parked before enqueueing.
	BlockedPushes uint64
}

// Stats reads the queue's counters. Loads are individually atomic, not
// mutually consistent — a monitoring view, like Len.
func (q *Queue[T]) Stats() Stats {
	enq, deq := q.enqPos.Load(), q.deqPos.Load()
	n := int64(enq) - int64(deq)
	if n < 0 {
		n = 0
	}
	return Stats{
		Len:           int(n),
		Cap:           len(q.cells),
		Pushes:        enq,
		Pops:          deq,
		FullRejects:   q.full.Load(),
		BlockedPushes: q.blocked.Load(),
	}
}

// New builds a queue with at least the requested capacity (rounded up to a
// power of two, minimum 2).
func New[T any](capacity int) *Queue[T] {
	n := uint64(2)
	for n < uint64(capacity) {
		n <<= 1
	}
	q := &Queue[T]{
		mask:     n - 1,
		cells:    make([]cell[T], n),
		closedCh: make(chan struct{}),
		notEmpty: make(chan struct{}, 1),
		notFull:  make(chan struct{}, 1),
	}
	for i := range q.cells {
		q.cells[i].seq.Store(uint64(i))
	}
	return q
}

// Cap returns the queue's capacity.
func (q *Queue[T]) Cap() int { return len(q.cells) }

// Len returns an instantaneous (racy) item count.
func (q *Queue[T]) Len() int {
	n := int64(q.enqPos.Load()) - int64(q.deqPos.Load())
	if n < 0 {
		return 0
	}
	return int(n)
}

func signal(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// TryPush enqueues v if a slot is free, returning false when the queue is
// full or closed. Safe for concurrent producers.
func (q *Queue[T]) TryPush(v T) bool {
	if q.closed.Load() {
		return false
	}
	for {
		pos := q.enqPos.Load()
		c := &q.cells[pos&q.mask]
		dif := int64(c.seq.Load()) - int64(pos)
		switch {
		case dif == 0:
			if q.enqPos.CompareAndSwap(pos, pos+1) {
				c.val = v
				c.seq.Store(pos + 1)
				signal(q.notEmpty)
				return true
			}
		case dif < 0:
			// The consumer has not yet freed this cell: full.
			q.full.Add(1)
			return false
		default:
			// Another producer claimed pos between our loads; retry.
		}
	}
}

// Push blocks until v is enqueued, the queue is closed, or done is closed
// (nil done never fires). Returns false when the value was NOT enqueued.
func (q *Queue[T]) Push(v T, done <-chan struct{}) bool {
	parked := false
	for {
		if q.closed.Load() {
			return false
		}
		if q.TryPush(v) {
			return true
		}
		if !parked {
			parked = true
			q.blocked.Add(1)
		}
		select {
		case <-q.notFull:
		case <-q.closedCh:
			return false
		case <-done:
			return false
		}
	}
}

// TryPop dequeues the oldest item, returning false when the queue is
// momentarily empty. Single consumer only.
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	pos := q.deqPos.Load()
	c := &q.cells[pos&q.mask]
	if c.seq.Load() != pos+1 {
		return zero, false
	}
	v := c.val
	c.val = zero
	c.seq.Store(pos + q.mask + 1)
	q.deqPos.Store(pos + 1)
	signal(q.notFull)
	return v, true
}

// PopWait blocks until an item is available, done is closed, or the queue
// is closed AND fully drained — so a Close never loses items already
// pushed. The second return is false only on done/closed-and-drained.
func (q *Queue[T]) PopWait(done <-chan struct{}) (T, bool) {
	for {
		if v, ok := q.TryPop(); ok {
			return v, true
		}
		if q.closed.Load() {
			// Re-check: a publish may have landed between TryPop and the
			// closed read (Close happens after producers finish, but a
			// producer's final store can still be racing the flag read).
			if v, ok := q.TryPop(); ok {
				return v, true
			}
			var zero T
			return zero, false
		}
		select {
		case <-q.notEmpty:
		case <-q.closedCh:
		case <-done:
			var zero T
			return zero, false
		}
	}
}

// PopBatch dequeues up to len(buf) immediately-available items without
// blocking and returns how many it wrote — the consumer's run-draining
// primitive: one PopWait for the first item, then a PopBatch to sweep the
// backlog into a batch.
func (q *Queue[T]) PopBatch(buf []T) int {
	n := 0
	for n < len(buf) {
		v, ok := q.TryPop()
		if !ok {
			break
		}
		buf[n] = v
		n++
	}
	return n
}

// Close marks the queue closed and wakes all waiters. Items already queued
// remain poppable; subsequent Push calls fail. Close is idempotent and
// must happen after the last producer's Push has returned.
func (q *Queue[T]) Close() {
	if q.closed.CompareAndSwap(false, true) {
		close(q.closedCh)
	}
}

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed.Load() }
