package shard

import (
	"context"
	"fmt"
	"testing"

	"oostream/internal/gen"
	"oostream/internal/obsv"
)

// TestParallelShardQueueGauges binds per-shard backpressure series and
// checks every consumer published its feed-ring stats: occupancy peaked at
// least once while the stream was in flight and settled to zero at drain,
// with blocked/full counters carried over as deltas.
func TestParallelShardQueueGauges(t *testing.T) {
	const shards = 3
	router, factory := newNativeParts(t, shards)
	par, err := NewParallel(router, factory)
	if err != nil {
		t.Fatal(err)
	}
	reg := obsv.NewRegistry()
	par.ObserveShards(func(i int) *obsv.Series {
		return reg.Series(fmt.Sprintf("native/shard%d", i))
	})

	events := gen.RFID(gen.DefaultRFID(800, 13))
	events = gen.Shuffle(events, gen.Disorder{Ratio: 0.3, MaxDelay: 2000, Seed: 13})
	if _, err := par.Drain(context.Background(), events); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < shards; i++ {
		s := reg.Series(fmt.Sprintf("native/shard%d", i))
		if s.QueueDepth.Load() != 0 {
			t.Errorf("shard %d: queue depth %d after drain, want 0", i, s.QueueDepth.Load())
		}
		if s.QueueDepth.Peak() == 0 {
			t.Errorf("shard %d: queue-depth peak never rose above 0", i)
		}
	}
}

// TestParallelSamplerSpansAccounted runs the parallel composition with a
// dense sampler and checks the span ledger balances: every opened span is
// either completed (wall observations) or abandoned, none leak, and the
// queue stage was actually attributed by the consumers.
func TestParallelSamplerSpansAccounted(t *testing.T) {
	router, factory := newNativeParts(t, 3)
	par, err := NewParallel(router, factory)
	if err != nil {
		t.Fatal(err)
	}
	series := obsv.NewSeries("latency")
	ls := obsv.NewLatencySampler(2, series, nil)
	par.SetLatencySampler(ls)

	events := gen.RFID(gen.DefaultRFID(600, 17))
	events = gen.Shuffle(events, gen.Disorder{Ratio: 0.2, MaxDelay: 2000, Seed: 17})
	if _, err := par.Drain(context.Background(), events); err != nil {
		t.Fatal(err)
	}

	r := ls.Report()
	if r.SpansSampled == 0 {
		t.Fatal("no spans sampled at 1-in-2")
	}
	if got := r.Wall.Count + r.SpansAbandoned; got != r.SpansSampled {
		t.Fatalf("span ledger: %d completed + %d abandoned != %d sampled",
			r.Wall.Count, r.SpansAbandoned, r.SpansSampled)
	}
	if r.Stages["queue"].Count == 0 {
		t.Fatalf("consumers never attributed ring wait: %+v", r.Stages)
	}
}
