package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/metrics"
	"oostream/internal/obsv"
	"oostream/internal/plan"
	"oostream/internal/provenance"
)

// Parallel runs each shard's engine on its own goroutine, connected by
// one-slot channels. Output order across shards is nondeterministic but
// the match multiset equals the sequential Engine's.
type Parallel struct {
	router *Router
	parts  []engine.Engine
	// prov marks provenance enabled: each shard goroutine tags its own
	// matches' lineage records with its shard index before sending them to
	// the merge channel (single-goroutine ownership, so no race).
	prov bool
}

// NewParallel wraps per-shard engines for concurrent execution.
func NewParallel(router *Router, factory func(shard int) (engine.Engine, error)) (*Parallel, error) {
	parts := make([]engine.Engine, router.Shards())
	for i := range parts {
		en, err := factory(i)
		if err != nil {
			return nil, err
		}
		parts[i] = en
	}
	return &Parallel{router: router, parts: parts}, nil
}

// Metrics sums the per-shard snapshots, merging histograms exactly. It is
// safe to call while Run is processing: collectors publish through atomics,
// so a concurrent snapshot is merely a moment-in-time read (it may miss
// the event in flight on each shard).
func (p *Parallel) Metrics() metrics.Snapshot {
	return aggregate(p.parts)
}

// Observe fans a trace hook out to every shard engine. The hook must be
// safe for concurrent use: shards run on separate goroutines. Series
// binding is per shard (wired by the facade when the parts are built), so
// s is unused here beyond the engine.Observable contract.
func (p *Parallel) Observe(_ *obsv.Series, hook obsv.TraceHook) {
	for _, part := range p.parts {
		if obs, ok := part.(engine.Observable); ok {
			obs.Observe(nil, hook)
		}
	}
}

// EnableProvenance implements engine.Provenancer for the parallel mode:
// every shard builds records; runShard tags them with the shard index.
func (p *Parallel) EnableProvenance() {
	p.prov = true
	for _, part := range p.parts {
		if pr, ok := part.(engine.Provenancer); ok {
			pr.EnableProvenance()
		}
	}
}

// StateSnapshot aggregates per-shard snapshots. Like every StateSnapshot
// it is not synchronized with processing: call it only while the pipeline
// is idle (before Run, or after Run/Drain returns).
func (p *Parallel) StateSnapshot() *provenance.StateSnapshot {
	subs := make([]*provenance.StateSnapshot, len(p.parts))
	for i, part := range p.parts {
		if intr, ok := part.(engine.Introspectable); ok {
			subs[i] = intr.StateSnapshot()
		}
	}
	return provenance.Aggregate("parallel("+p.parts[0].Name()+")", subs)
}

// shardMsg is one item on a shard's feed: an event to process or a
// heartbeat to broadcast.
type shardMsg struct {
	ev        event.Event
	heartbeat bool
	ts        event.Time
}

// Run consumes events from in until closed or cancelled, routing each to
// its shard's goroutine, and forwards all matches to out (closed before
// returning). Route errors (missing key attribute) drop the event.
func (p *Parallel) Run(ctx context.Context, in <-chan event.Event, out chan<- plan.Match) error {
	return p.RunWithHeartbeats(ctx, in, nil, out)
}

// RunWithHeartbeats is Run with an optional heartbeat channel: every
// timestamp received on hb is broadcast to all shards as an Advance call,
// interleaved with event delivery — re-synchronizing the per-shard clocks
// through stream silence exactly as the sequential Engine's Advance does.
// A nil hb makes it equivalent to Run. hb is never closed by the caller's
// contract; the feed loop stops reading it once in closes.
func (p *Parallel) RunWithHeartbeats(ctx context.Context, in <-chan event.Event, hb <-chan event.Time, out chan<- plan.Match) error {
	defer close(out)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	feeds := make([]chan shardMsg, len(p.parts))
	merged := make(chan plan.Match, 1)
	errs := make(chan error, len(p.parts))
	var wg sync.WaitGroup
	for i, part := range p.parts {
		feeds[i] = make(chan shardMsg, 1)
		wg.Add(1)
		go func(shard int, en engine.Engine, feed <-chan shardMsg) {
			defer wg.Done()
			err := p.runShard(ctx, shard, en, feed, merged)
			if err != nil {
				// A dead shard stops reading its feed; cancel the group so
				// the feeder never wedges delivering to it.
				cancel()
			}
			errs <- err
		}(i, part, feeds[i])
	}
	// Closer: ends the merge loop when every shard is done.
	mergeDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(mergeDone)
	}()

	forwardErr := make(chan error, 1)
	go func() {
		defer close(forwardErr)
		for {
			select {
			case m := <-merged:
				select {
				case out <- m:
				case <-ctx.Done():
					forwardErr <- ctx.Err()
					return
				}
			case <-mergeDone:
				for {
					select {
					case m := <-merged:
						select {
						case out <- m:
						case <-ctx.Done():
							forwardErr <- ctx.Err()
							return
						}
					default:
						return
					}
				}
			}
		}
	}()

	var runErr error
feed:
	for {
		select {
		case <-ctx.Done():
			runErr = ctx.Err()
			break feed
		case ts := <-hb:
			for _, feed := range feeds {
				select {
				case feed <- shardMsg{heartbeat: true, ts: ts}:
				case <-ctx.Done():
					runErr = ctx.Err()
					break feed
				}
			}
		case e, ok := <-in:
			if !ok {
				break feed
			}
			shard, err := p.router.Route(e)
			if err != nil {
				continue // drop: cannot belong to any partitioned match
			}
			select {
			case feeds[shard] <- shardMsg{ev: e}:
			case <-ctx.Done():
				runErr = ctx.Err()
				break feed
			}
		}
	}
	for _, feed := range feeds {
		close(feed)
	}
	// A shard failure (engine panic) cancels the group, so plain
	// cancellation errors from sibling shards must not mask the root
	// cause: prefer a non-cancellation error over context.Canceled.
	setErr := func(err error) {
		if err == nil {
			return
		}
		if runErr == nil || (errors.Is(runErr, context.Canceled) && !errors.Is(err, context.Canceled)) {
			runErr = err
		}
	}
	for range p.parts {
		setErr(<-errs)
	}
	setErr(<-forwardErr)
	return runErr
}

// guard isolates an engine call: a panic becomes an error on this shard
// instead of crashing the whole process. (A supervised part recovers its
// own panics and restarts from a checkpoint before this backstop fires.)
func guard(f func() []plan.Match) (out []plan.Match, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine panic: %v", r)
		}
	}()
	return f(), nil
}

func (p *Parallel) runShard(ctx context.Context, shard int, en engine.Engine, feed <-chan shardMsg, merged chan<- plan.Match) error {
	send := func(matches []plan.Match, err error) error {
		if err != nil {
			return fmt.Errorf("shard %d: %w", shard, err)
		}
		if p.prov {
			tagShard(matches, shard)
		}
		for _, m := range matches {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case merged <- m:
			}
		}
		return nil
	}
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case msg, ok := <-feed:
			if !ok {
				return send(guard(en.Flush))
			}
			if msg.heartbeat {
				if adv, isAdv := en.(engine.Advancer); isAdv {
					if err := send(guard(func() []plan.Match { return adv.Advance(msg.ts) })); err != nil {
						return err
					}
				}
				continue
			}
			if err := send(guard(func() []plan.Match { return en.Process(msg.ev) })); err != nil {
				return err
			}
		}
	}
}

// Drain runs a finite event slice through the parallel engine and returns
// the complete match multiset (Process results plus the end-of-stream
// Flush). It is the channel-free convenience entry used by tests and the
// differential harness; output order across shards is nondeterministic.
func (p *Parallel) Drain(ctx context.Context, events []event.Event) ([]plan.Match, error) {
	in := make(chan event.Event)
	out := make(chan plan.Match, 16)
	errCh := make(chan error, 1)
	go func() { errCh <- p.Run(ctx, in, out) }()
	go func() {
		defer close(in)
		for _, e := range events {
			select {
			case in <- e:
			case <-ctx.Done():
				return
			}
		}
	}()
	var matches []plan.Match
	for m := range out {
		matches = append(matches, m)
	}
	if err := <-errCh; err != nil {
		return nil, err
	}
	return matches, nil
}
