package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/metrics"
	"oostream/internal/obsv"
	"oostream/internal/plan"
	"oostream/internal/provenance"
	"oostream/internal/ring"
)

// shardRingCap is the per-shard feed ring's capacity. Deep enough that the
// router stays ahead of a momentarily busy shard, small enough that a
// stalled shard applies backpressure quickly.
const shardRingCap = 256

// shardMaxBatch bounds how many events a shard consumer accumulates before
// it must run the engine: the run-draining consumer batches whatever is
// already queued, and this caps the resulting ProcessBatch size (and the
// latency of the first match behind it).
const shardMaxBatch = 128

// Parallel runs each shard's engine on its own goroutine, fed through a
// bounded MPSC ring instead of a per-event channel rendezvous: the router
// enqueues, and each shard consumer drains whatever run has accumulated
// into one ProcessBatch call — batching adapts to the backlog, so a slow
// shard amortizes per-call overhead exactly when it needs to. Output order
// across shards is nondeterministic but the match multiset equals the
// sequential Engine's.
type Parallel struct {
	router *Router
	parts  []engine.Engine
	// prov marks provenance enabled: each shard goroutine tags its own
	// matches' lineage records with its shard index before sending them to
	// the merge channel (single-goroutine ownership, so no race).
	prov bool
	// lat, when non-nil, stamps wall-clock stage boundaries on sampled
	// spans: Begin at ring push (router side), StageQueue at consumer
	// pop, Finish after the batch's matches reach the merge channel. The
	// slot table is atomic, so the router→consumer handoff is race-free.
	lat *obsv.LatencySampler
	// shardSeries, when set, receives per-shard backpressure gauges:
	// feed-ring occupancy and blocked/full counter deltas, published by
	// each consumer at batch boundaries.
	shardSeries []*obsv.Series
}

// NewParallel wraps per-shard engines for concurrent execution.
func NewParallel(router *Router, factory func(shard int) (engine.Engine, error)) (*Parallel, error) {
	parts := make([]engine.Engine, router.Shards())
	for i := range parts {
		en, err := factory(i)
		if err != nil {
			return nil, err
		}
		parts[i] = en
	}
	return &Parallel{router: router, parts: parts}, nil
}

// Metrics sums the per-shard snapshots, merging histograms exactly. It is
// safe to call while Run is processing: collectors publish through atomics,
// so a concurrent snapshot is merely a moment-in-time read (it may miss
// the event in flight on each shard).
func (p *Parallel) Metrics() metrics.Snapshot {
	return aggregate(p.parts)
}

// Observe fans a trace hook out to every shard engine. The hook must be
// safe for concurrent use: shards run on separate goroutines. Series
// binding is per shard (wired by the facade when the parts are built), so
// s is unused here beyond the engine.Observable contract.
func (p *Parallel) Observe(_ *obsv.Series, hook obsv.TraceHook) {
	for _, part := range p.parts {
		if obs, ok := part.(engine.Observable); ok {
			obs.Observe(nil, hook)
		}
	}
}

// SetLatencySampler implements engine.LatencySampled: the parallel
// wrapper owns the queue stage (ring wait) and the span open/close; the
// per-shard engines stamp their own construction stage.
func (p *Parallel) SetLatencySampler(ls *obsv.LatencySampler) {
	p.lat = ls
	for _, part := range p.parts {
		engine.SetLatencySampler(part, ls)
	}
}

// ObserveShards binds per-shard backpressure series: seriesFor returns the
// series shard i publishes its feed-ring occupancy (QueueDepth) and
// blocked-push/full-reject counters into. Must be called before Run.
func (p *Parallel) ObserveShards(seriesFor func(shard int) *obsv.Series) {
	p.shardSeries = make([]*obsv.Series, len(p.parts))
	for i := range p.parts {
		p.shardSeries[i] = seriesFor(i)
	}
}

// EnableProvenance implements engine.Provenancer for the parallel mode:
// every shard builds records; runShard tags them with the shard index.
func (p *Parallel) EnableProvenance() {
	p.prov = true
	for _, part := range p.parts {
		if pr, ok := part.(engine.Provenancer); ok {
			pr.EnableProvenance()
		}
	}
}

// StateSnapshot aggregates per-shard snapshots. Like every StateSnapshot
// it is not synchronized with processing: call it only while the pipeline
// is idle (before Run, or after Run/Drain returns).
func (p *Parallel) StateSnapshot() *provenance.StateSnapshot {
	subs := make([]*provenance.StateSnapshot, len(p.parts))
	for i, part := range p.parts {
		if intr, ok := part.(engine.Introspectable); ok {
			subs[i] = intr.StateSnapshot()
		}
	}
	return provenance.Aggregate("parallel("+p.parts[0].Name()+")", subs)
}

// shardMsg is one item on a shard's feed: an event to process or a
// heartbeat to broadcast.
type shardMsg struct {
	ev        event.Event
	heartbeat bool
	ts        event.Time
}

// Run consumes events from in until closed or cancelled, routing each to
// its shard's goroutine, and forwards all matches to out (closed before
// returning). Route errors (missing key attribute) drop the event.
func (p *Parallel) Run(ctx context.Context, in <-chan event.Event, out chan<- plan.Match) error {
	return p.RunWithHeartbeats(ctx, in, nil, out)
}

// RunWithHeartbeats is Run with an optional heartbeat channel: every
// timestamp received on hb is broadcast to all shards as an Advance call,
// interleaved with event delivery — re-synchronizing the per-shard clocks
// through stream silence exactly as the sequential Engine's Advance does.
// A heartbeat also flushes each consumer's accumulated batch first, so it
// sequences at a batch boundary and never releases matches early relative
// to events routed before it. A nil hb makes it equivalent to Run. hb is
// never closed by the caller's contract; the feed loop stops reading it
// once in closes.
func (p *Parallel) RunWithHeartbeats(ctx context.Context, in <-chan event.Event, hb <-chan event.Time, out chan<- plan.Match) error {
	return p.runLoop(ctx, out, func(ctx context.Context, push func(int, shardMsg) bool, broadcast func(shardMsg) bool) error {
		for {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case ts := <-hb:
				if !broadcast(shardMsg{heartbeat: true, ts: ts}) {
					return ctx.Err()
				}
			case e, ok := <-in:
				if !ok {
					return nil
				}
				shard, err := p.router.Route(e)
				if err != nil {
					continue // drop: cannot belong to any partitioned match
				}
				if !push(shard, shardMsg{ev: e}) {
					return ctx.Err()
				}
			}
		}
	})
}

// RunBatches is Run for a pre-batched input stream: each received slice is
// routed event by event onto the shard rings in one pass, preserving the
// slice's arrival order per shard. The consumers re-batch per shard, so
// upstream batch boundaries don't constrain engine batch sizes.
func (p *Parallel) RunBatches(ctx context.Context, in <-chan []event.Event, out chan<- plan.Match) error {
	return p.runLoop(ctx, out, func(ctx context.Context, push func(int, shardMsg) bool, _ func(shardMsg) bool) error {
		for {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case batch, ok := <-in:
				if !ok {
					return nil
				}
				for _, e := range batch {
					shard, err := p.router.Route(e)
					if err != nil {
						continue // drop: cannot belong to any partitioned match
					}
					if !push(shard, shardMsg{ev: e}) {
						return ctx.Err()
					}
				}
			}
		}
	})
}

// runLoop owns the shared plumbing: shard goroutines fed by MPSC rings, a
// merge channel with a forwarder, and the feeder callback supplied by the
// Run variants (its push/broadcast return false once the group is
// cancelled). Rings are closed when the feeder returns, letting consumers
// drain their backlog and Flush.
func (p *Parallel) runLoop(ctx context.Context, out chan<- plan.Match, feeder func(context.Context, func(int, shardMsg) bool, func(shardMsg) bool) error) error {
	defer close(out)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	feeds := make([]*ring.Queue[shardMsg], len(p.parts))
	merged := make(chan plan.Match, 1)
	errs := make(chan error, len(p.parts))
	var wg sync.WaitGroup
	for i, part := range p.parts {
		feeds[i] = ring.New[shardMsg](shardRingCap)
		wg.Add(1)
		go func(shard int, en engine.Engine, feed *ring.Queue[shardMsg]) {
			defer wg.Done()
			err := p.runShard(ctx, shard, en, feed, merged)
			if err != nil {
				// A dead shard stops draining its ring; cancel the group so
				// the feeder never wedges delivering to it.
				cancel()
			}
			errs <- err
		}(i, part, feeds[i])
	}
	// Closer: ends the merge loop when every shard is done.
	mergeDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(mergeDone)
	}()

	forwardErr := make(chan error, 1)
	go func() {
		defer close(forwardErr)
		for {
			select {
			case m := <-merged:
				select {
				case out <- m:
				case <-ctx.Done():
					forwardErr <- ctx.Err()
					return
				}
			case <-mergeDone:
				for {
					select {
					case m := <-merged:
						select {
						case out <- m:
						case <-ctx.Done():
							forwardErr <- ctx.Err()
							return
						}
					default:
						return
					}
				}
			}
		}
	}()

	push := func(shard int, msg shardMsg) bool {
		// The span opens before the ring push so StageQueue (stamped at
		// the consumer's pop) covers the full ring wait, backpressure
		// parking included.
		p.lat.Begin(msg.ev.Seq)
		if feeds[shard].Push(msg, ctx.Done()) {
			return true
		}
		p.lat.Abandon(msg.ev.Seq)
		return false
	}
	broadcast := func(msg shardMsg) bool {
		for _, feed := range feeds {
			if !feed.Push(msg, ctx.Done()) {
				return false
			}
		}
		return true
	}
	runErr := feeder(ctx, push, broadcast)
	for _, feed := range feeds {
		feed.Close()
	}
	// A shard failure (engine panic) cancels the group, so plain
	// cancellation errors from sibling shards must not mask the root
	// cause: prefer a non-cancellation error over context.Canceled.
	setErr := func(err error) {
		if err == nil {
			return
		}
		if runErr == nil || (errors.Is(runErr, context.Canceled) && !errors.Is(err, context.Canceled)) {
			runErr = err
		}
	}
	for range p.parts {
		setErr(<-errs)
	}
	setErr(<-forwardErr)
	return runErr
}

// guard isolates an engine call: a panic becomes an error on this shard
// instead of crashing the whole process. (A supervised part recovers its
// own panics and restarts from a checkpoint before this backstop fires.)
func guard(f func() []plan.Match) (out []plan.Match, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine panic: %v", r)
		}
	}()
	return f(), nil
}

// runShard is one shard's consumer: it blocks for the next message, then
// sweeps whatever else is already queued, accumulating contiguous events
// into a batch that runs through the engine's batch path in one call.
// Heartbeats flush the accumulated batch before advancing, so they take
// effect exactly at a batch boundary (events routed before the heartbeat
// are fully processed first; matches are never released early).
func (p *Parallel) runShard(ctx context.Context, shard int, en engine.Engine, feed *ring.Queue[shardMsg], merged chan<- plan.Match) error {
	send := func(matches []plan.Match, err error) error {
		if err != nil {
			return fmt.Errorf("shard %d: %w", shard, err)
		}
		if p.prov {
			tagShard(matches, shard)
		}
		for _, m := range matches {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case merged <- m:
			}
		}
		return nil
	}
	var series *obsv.Series
	if p.shardSeries != nil {
		series = p.shardSeries[shard]
	}
	var lastStats ring.Stats
	publishRing := func() {
		if series == nil {
			return
		}
		st := feed.Stats()
		series.QueueDepth.Set(int64(st.Len))
		series.BlockedPushes.Add(st.BlockedPushes - lastStats.BlockedPushes)
		series.FullRejects.Add(st.FullRejects - lastStats.FullRejects)
		lastStats = st
	}
	batch := make([]event.Event, 0, shardMaxBatch)
	flushBatch := func() error {
		if len(batch) == 0 {
			return nil
		}
		err := send(guard(func() []plan.Match { return engine.ProcessBatch(en, batch) }))
		// Spans close only after the batch's matches reached the merge
		// channel: the emit stage covers merge-send backpressure. A
		// buffering part (kslack) holds its spans, making these no-ops.
		for i := range batch {
			p.lat.Finish(batch[i].Seq)
		}
		batch = batch[:0]
		publishRing()
		return err
	}
	for {
		msg, ok := feed.PopWait(ctx.Done())
		if !ok {
			if err := ctx.Err(); err != nil {
				return err
			}
			// Ring closed and drained: end of stream.
			if err := flushBatch(); err != nil {
				return err
			}
			publishRing()
			return send(guard(en.Flush))
		}
		for {
			if msg.heartbeat {
				if err := flushBatch(); err != nil {
					return err
				}
				if adv, isAdv := en.(engine.Advancer); isAdv {
					if err := send(guard(func() []plan.Match { return adv.Advance(msg.ts) })); err != nil {
						return err
					}
				}
			} else {
				// The pop ends the event's ring wait.
				p.lat.StageEnd(msg.ev.Seq, obsv.StageQueue)
				batch = append(batch, msg.ev)
				if len(batch) >= shardMaxBatch {
					if err := flushBatch(); err != nil {
						return err
					}
				}
			}
			msg, ok = feed.TryPop()
			if !ok {
				break
			}
		}
		// The ring is momentarily empty: run what accumulated rather than
		// waiting for more (batching adapts to backlog, idle streams keep
		// per-event latency).
		if err := flushBatch(); err != nil {
			return err
		}
	}
}

// Drain runs a finite event slice through the parallel engine and returns
// the complete match multiset (Process results plus the end-of-stream
// Flush). It is the channel-free convenience entry used by tests and the
// differential harness; output order across shards is nondeterministic.
func (p *Parallel) Drain(ctx context.Context, events []event.Event) ([]plan.Match, error) {
	in := make(chan event.Event)
	out := make(chan plan.Match, 16)
	errCh := make(chan error, 1)
	go func() { errCh <- p.Run(ctx, in, out) }()
	go func() {
		defer close(in)
		for _, e := range events {
			select {
			case in <- e:
			case <-ctx.Done():
				return
			}
		}
	}()
	var matches []plan.Match
	for m := range out {
		matches = append(matches, m)
	}
	if err := <-errCh; err != nil {
		return nil, err
	}
	return matches, nil
}

// DrainBatches is Drain over the batched entry: the finite event slice is
// delivered in batchSize chunks through RunBatches (batchSize <= 0 sends
// one whole-stream batch) and the complete match multiset returned.
func (p *Parallel) DrainBatches(ctx context.Context, events []event.Event, batchSize int) ([]plan.Match, error) {
	if batchSize <= 0 {
		batchSize = len(events)
		if batchSize == 0 {
			batchSize = 1
		}
	}
	in := make(chan []event.Event)
	out := make(chan plan.Match, 16)
	errCh := make(chan error, 1)
	go func() { errCh <- p.RunBatches(ctx, in, out) }()
	go func() {
		defer close(in)
		for start := 0; start < len(events); start += batchSize {
			end := start + batchSize
			if end > len(events) {
				end = len(events)
			}
			select {
			case in <- events[start:end]:
			case <-ctx.Done():
				return
			}
		}
	}()
	var matches []plan.Match
	for m := range out {
		matches = append(matches, m)
	}
	if err := <-errCh; err != nil {
		return nil, err
	}
	return matches, nil
}
