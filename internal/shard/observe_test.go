package shard

import (
	"context"
	"sync"
	"testing"

	"oostream/internal/core"
	"oostream/internal/engine"
	"oostream/internal/gen"
	"oostream/internal/obsv"
	"oostream/internal/plan"
)

func newNativeParts(t *testing.T, shards int) (*Router, func(int) (engine.Engine, error)) {
	t.Helper()
	p, err := plan.ParseAndCompile(
		"PATTERN SEQ(SHELF s, EXIT e) WHERE s.id = e.id WITHIN 6s", gen.RFIDSchema())
	if err != nil {
		t.Fatal(err)
	}
	router, err := NewRouter("id", shards)
	if err != nil {
		t.Fatal(err)
	}
	return router, func(int) (engine.Engine, error) {
		return core.New(p, core.Options{K: 2000})
	}
}

// TestParallelMetricsDuringProcess reads aggregated metrics from another
// goroutine while the shard goroutines are mid-stream. The collector is
// built on atomics, so this must be clean under -race.
func TestParallelMetricsDuringProcess(t *testing.T) {
	router, factory := newNativeParts(t, 4)
	par, err := NewParallel(router, factory)
	if err != nil {
		t.Fatal(err)
	}
	events := gen.RFID(gen.DefaultRFID(800, 7))
	events = gen.Shuffle(events, gen.Disorder{Ratio: 0.3, MaxDelay: 2000, Seed: 7})

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				_ = par.Metrics()
			}
		}
	}()
	got, err := par.Drain(context.Background(), events)
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("expected matches from the drained stream")
	}
	snap := par.Metrics()
	// EventsIn counts relevant ingests; irrelevant events are tallied
	// separately. Together they must cover the whole stream.
	if snap.EventsIn+snap.Irrelevant != uint64(len(events)) {
		t.Fatalf("EventsIn+Irrelevant = %d+%d, want %d", snap.EventsIn, snap.Irrelevant, len(events))
	}
	if snap.Matches == 0 {
		t.Fatal("aggregated snapshot lost the match count")
	}
}

// TestParallelObserveFansTraceOut installs a trace hook on the parallel
// composition and checks every shard reports lifecycle steps through it.
func TestParallelObserveFansTraceOut(t *testing.T) {
	router, factory := newNativeParts(t, 3)
	par, err := NewParallel(router, factory)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	admits := 0
	par.Observe(nil, obsv.TraceFunc(func(ev obsv.TraceEvent) {
		if ev.Op == obsv.OpAdmit {
			mu.Lock()
			admits++
			mu.Unlock()
		}
	}))
	events := gen.RFID(gen.DefaultRFID(200, 11))
	if _, err := par.Drain(context.Background(), events); err != nil {
		t.Fatal(err)
	}
	// Irrelevant events (COUNTER, for this query) are counted but not
	// admitted into the stacks, so they never reach the trace hook.
	want := len(events) - int(par.Metrics().Irrelevant)
	if admits != want {
		t.Fatalf("trace hook saw %d admits, want %d", admits, want)
	}
}
