package shard

import (
	"context"
	"sync"
	"testing"

	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/gen"
	"oostream/internal/plan"
)

// raceStream builds a disordered RFID stream and the safe heartbeat
// schedule for it: after arrival i, a source may promise time
// min(remaining timestamps) + k without making any later arrival late.
func raceStream(t *testing.T, items int, k event.Time) ([]event.Event, []event.Time) {
	t.Helper()
	sorted := gen.RFID(gen.DefaultRFID(items, 424242))
	shuffled := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.3, MaxDelay: k, Seed: 31})
	minFuture := make([]event.Time, len(shuffled)+1)
	const maxTime = event.Time(1<<62 - 1)
	minFuture[len(shuffled)] = maxTime
	for i := len(shuffled) - 1; i >= 0; i-- {
		minFuture[i] = minFuture[i+1]
		if shuffled[i].TS < minFuture[i] {
			minFuture[i] = shuffled[i].TS
		}
	}
	hbs := make([]event.Time, len(shuffled))
	for i := range hbs {
		if minFuture[i+1] == maxTime {
			hbs[i] = shuffled[i].TS // last events: heartbeat at own time
		} else {
			hbs[i] = minFuture[i+1] + k
		}
	}
	return shuffled, hbs
}

// TestParallelConcurrentHeartbeats drives the goroutine-per-shard engine
// with a heartbeat pumper racing the event feeder — Advance broadcasts
// interleave arbitrarily with Process and the end-of-stream Flush across
// shard goroutines. Run under -race this is the memory-safety check for
// the Parallel heartbeat path; the result multiset must additionally equal
// the sequential engine's (heartbeat neutrality, I9).
func TestParallelConcurrentHeartbeats(t *testing.T) {
	const k = event.Time(2_000)
	p := compile(t, shopQuery)
	events, hbs := raceStream(t, 120, k)

	seq, err := New(mustRouter(t, "id", 4), nativeFactory(p, k))
	if err != nil {
		t.Fatal(err)
	}
	want := engine.Drain(seq, events)

	par, err := NewParallel(mustRouter(t, "id", 4), nativeFactory(p, k))
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan event.Event)
	hb := make(chan event.Time)
	out := make(chan plan.Match, 8)
	errCh := make(chan error, 1)
	ctx := context.Background()
	go func() { errCh <- par.RunWithHeartbeats(ctx, in, hb, out) }()

	// Feeder and heartbeat pumper run concurrently. A heartbeat hbs[i] is
	// only safe once event i has been delivered (its promise is computed
	// from the timestamps after i), so the feeder publishes its progress
	// and the pumper fires from behind that frontier — still racing the
	// delivery of later events and the end-of-stream Flush arbitrarily.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	ready := make(chan int, 16)
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer close(in)
		defer close(ready)
		for i, e := range events {
			in <- e
			if i%5 == 0 {
				select {
				case ready <- i:
				default: // pumper lagging; skip rather than stall the feed
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := range ready {
			select {
			case hb <- hbs[i]:
			case <-stop:
				return
			}
		}
	}()

	var got []plan.Match
	for m := range out {
		got = append(got, m)
	}
	close(stop)
	wg.Wait()
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if ok, diff := plan.SameResults(want, got); !ok {
		t.Fatalf("parallel+heartbeats differs from sequential (%d want, %d got):\n%s", len(want), len(got), diff)
	}
}

// TestParallelDrain covers the channel-free convenience entry against the
// sequential engine.
func TestParallelDrain(t *testing.T) {
	const k = event.Time(2_000)
	p := compile(t, shopQuery)
	events, _ := raceStream(t, 80, k)

	seq, err := New(mustRouter(t, "id", 3), nativeFactory(p, k))
	if err != nil {
		t.Fatal(err)
	}
	want := engine.Drain(seq, events)

	par, err := NewParallel(mustRouter(t, "id", 3), nativeFactory(p, k))
	if err != nil {
		t.Fatal(err)
	}
	got, err := par.Drain(context.Background(), events)
	if err != nil {
		t.Fatal(err)
	}
	if ok, diff := plan.SameResults(want, got); !ok {
		t.Fatalf("Drain differs from sequential:\n%s", diff)
	}
}

func mustRouter(t *testing.T, attr string, n int) *Router {
	t.Helper()
	r, err := NewRouter(attr, n)
	if err != nil {
		t.Fatal(err)
	}
	return r
}
