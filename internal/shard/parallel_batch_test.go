package shard

import (
	"context"
	"testing"

	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/plan"
)

func shopEvent(typ string, ts event.Time, seq event.Seq, id int64) event.Event {
	e := event.New(typ, ts, event.Attrs{"id": event.Int(id)})
	e.Seq = seq
	return e
}

// TestParallelHeartbeatFlushesPendingBatch pins the batch-boundary
// contract of the ring consumers: a heartbeat popped while events sit in a
// consumer's accumulated batch must flush the batch first and Advance
// second. The stream makes the wrong order lose the match — the heartbeat
// promises a time far past the pending events, so admitting them after the
// Advance would late-drop them (their timestamps fall below clock−K) and
// the SHELF→EXIT match would never emit. Ring delivery preserves feed
// order; iterating covers the interleaving where the consumer sweeps
// events and heartbeat up in one run with the events still batched.
func TestParallelHeartbeatFlushesPendingBatch(t *testing.T) {
	const k = event.Time(5)
	p := compile(t, shopQuery)
	events := []event.Event{
		shopEvent("SHELF", 1, 1, 1),
		shopEvent("EXIT", 3, 2, 1),
	}
	iterations := 200
	if testing.Short() {
		iterations = 40
	}
	for it := 0; it < iterations; it++ {
		par, err := NewParallel(mustRouter(t, "id", 2), nativeFactory(p, k))
		if err != nil {
			t.Fatal(err)
		}
		in := make(chan event.Event)
		hb := make(chan event.Time)
		out := make(chan plan.Match, 8)
		errCh := make(chan error, 1)
		go func() { errCh <- par.RunWithHeartbeats(context.Background(), in, hb, out) }()
		for _, e := range events {
			in <- e
		}
		hb <- 1_000 // far beyond both events + K
		close(in)
		var got []plan.Match
		for m := range out {
			got = append(got, m)
		}
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 {
			t.Fatalf("iteration %d: want 1 match, got %d — a heartbeat advanced the shard clock past events still pending in the consumer batch", it, len(got))
		}
	}
}

// TestParallelHeartbeatDoesNotReleaseEarly drives the complementary
// hazard: a heartbeat must not release a negation-sealed match while
// events routed before it are still pending. COUNTER invalidates the
// SHELF→EXIT match; if the consumer Advanced past the negation window
// before admitting the batched COUNTER, the native engine would seal and
// emit a match the stream forbids.
func TestParallelHeartbeatDoesNotReleaseEarly(t *testing.T) {
	const k = event.Time(5)
	p := compile(t, shopQuery)
	events := []event.Event{
		shopEvent("SHELF", 1, 1, 1),
		shopEvent("EXIT", 3, 2, 1),
		shopEvent("COUNTER", 2, 3, 1), // late negation: invalidates the match
	}
	iterations := 200
	if testing.Short() {
		iterations = 40
	}
	for it := 0; it < iterations; it++ {
		par, err := NewParallel(mustRouter(t, "id", 2), nativeFactory(p, k))
		if err != nil {
			t.Fatal(err)
		}
		in := make(chan event.Event)
		hb := make(chan event.Time)
		out := make(chan plan.Match, 8)
		errCh := make(chan error, 1)
		go func() { errCh <- par.RunWithHeartbeats(context.Background(), in, hb, out) }()
		for _, e := range events {
			in <- e
		}
		hb <- 1_000
		close(in)
		var got []plan.Match
		for m := range out {
			got = append(got, m)
		}
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Fatalf("iteration %d: want 0 matches, got %d — a heartbeat released a match before the pending negation was admitted", it, len(got))
		}
	}
}

// TestDrainBatchesEqualsDrain covers the batched convenience entry for a
// spread of batch sizes, including singletons and one whole-stream batch,
// against the per-event Drain.
func TestDrainBatchesEqualsDrain(t *testing.T) {
	const k = event.Time(2_000)
	p := compile(t, shopQuery)
	events, _ := raceStream(t, 100, k)

	seq, err := New(mustRouter(t, "id", 3), nativeFactory(p, k))
	if err != nil {
		t.Fatal(err)
	}
	want := engine.Drain(seq, events)

	for _, bs := range []int{1, 7, 64, 0} {
		par, err := NewParallel(mustRouter(t, "id", 3), nativeFactory(p, k))
		if err != nil {
			t.Fatal(err)
		}
		got, err := par.DrainBatches(context.Background(), events, bs)
		if err != nil {
			t.Fatal(err)
		}
		if ok, diff := plan.SameResults(want, got); !ok {
			t.Fatalf("DrainBatches(batchSize=%d) differs from sequential:\n%s", bs, diff)
		}
	}
}
