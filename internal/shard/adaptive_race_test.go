package shard

import (
	"context"
	"sync"
	"testing"

	"oostream/internal/adaptive"
	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/inorder"
	"oostream/internal/kslack"
)

// TestParallelSharedControllerSetKRace runs a partitioned engine whose
// shards are kslack followers of ONE shared controller, while a resizer
// goroutine hammers SetK and a reader polls the published bounds. Under
// -race this pins the multi-reader contract: every shard re-reads
// EffectiveK on its own goroutine at every push, concurrently with the
// external writer. Output correctness is not asserted (resizes mid-stream
// change admission); the run must simply complete clean.
func TestParallelSharedControllerSetKRace(t *testing.T) {
	const k = event.Time(2_000)
	p := compile(t, shopQuery)
	events, _ := raceStream(t, 400, k)

	ctrl := adaptive.MustController(adaptive.Config{InitialK: k})
	par, err := NewParallel(mustRouter(t, "id", 4), func(int) (engine.Engine, error) {
		return kslack.NewAdaptiveEngine(ctrl, false, inorder.New(p)), nil
	})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		i := event.Time(0)
		for {
			select {
			case <-done:
				return
			default:
			}
			ctrl.SetK(1 + i%k)
			i++
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			_ = ctrl.EffectiveK()
			_ = ctrl.NominalK()
			_ = ctrl.MaxKObserved()
			_ = ctrl.Degraded()
			_ = ctrl.Snapshot()
		}
	}()

	if _, err := par.Drain(context.Background(), events); err != nil {
		t.Fatal(err)
	}
	close(done)
	wg.Wait()

	if got := par.Metrics().EventsIn; got != uint64(len(events)) {
		t.Fatalf("EventsIn = %d, want %d", got, len(events))
	}
}
