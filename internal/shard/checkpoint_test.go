package shard

import (
	"bytes"
	"context"
	"io"
	"strings"
	"testing"

	"oostream/internal/core"
	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/gen"
	"oostream/internal/plan"
)

func shopStream(t *testing.T, items int, seed int64) []event.Event {
	t.Helper()
	sorted := gen.RFID(gen.DefaultRFID(items, seed))
	return gen.Shuffle(sorted, gen.Disorder{Ratio: 0.3, MaxDelay: 2_000, Seed: seed + 1})
}

// TestShardCheckpointRestoreContinuesExactly: cutting a stream at a
// checkpoint/restore boundary of the sequential sharded engine yields the
// same matches as an uninterrupted run.
func TestShardCheckpointRestoreContinuesExactly(t *testing.T) {
	const k = event.Time(2_000)
	p := compile(t, shopQuery)
	events := shopStream(t, 150, 77)

	full, err := New(mustRouter(t, "id", 3), nativeFactory(p, k))
	if err != nil {
		t.Fatal(err)
	}
	want := engine.Drain(full, events)

	for _, cut := range []int{0, 1, 75, len(events)} {
		first, err := New(mustRouter(t, "id", 3), nativeFactory(p, k))
		if err != nil {
			t.Fatal(err)
		}
		var got []plan.Match
		for _, e := range events[:cut] {
			got = append(got, first.Process(e)...)
		}
		var buf bytes.Buffer
		if err := first.Checkpoint(&buf); err != nil {
			t.Fatal(err)
		}
		second, err := Restore(mustRouter(t, "id", 3),
			func(_ int, r io.Reader) (engine.Engine, error) { return core.Restore(p, r) },
			&buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range events[cut:] {
			got = append(got, second.Process(e)...)
		}
		got = append(got, second.Flush()...)
		if ok, diff := plan.SameResults(want, got); !ok {
			t.Fatalf("cut at %d:\n%s", cut, diff)
		}
	}
}

// TestShardRestoreTopologyMismatch: a checkpoint must not restore into a
// different partitioning.
func TestShardRestoreTopologyMismatch(t *testing.T) {
	const k = event.Time(2_000)
	p := compile(t, shopQuery)
	en, err := New(mustRouter(t, "id", 3), nativeFactory(p, k))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := en.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restoreCore := func(_ int, r io.Reader) (engine.Engine, error) { return core.Restore(p, r) }
	if _, err := Restore(mustRouter(t, "id", 4), restoreCore, bytes.NewReader(buf.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "shards") {
		t.Errorf("shard-count mismatch: %v", err)
	}
	if _, err := Restore(mustRouter(t, "tag", 3), restoreCore, bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("attribute mismatch accepted")
	}
}

// panicEngine wraps an engine and panics when it sees the poison Seq.
type panicEngine struct {
	engine.Engine
	poison uint64
}

func (pe *panicEngine) Process(e event.Event) []plan.Match {
	if e.Seq == pe.poison {
		panic("injected shard fault")
	}
	return pe.Engine.Process(e)
}

// TestParallelShardPanicIsolated: a panic inside one shard's engine must
// surface as an error from Run — not crash the process — and must not
// wedge the feeder on the dead shard's channel.
func TestParallelShardPanicIsolated(t *testing.T) {
	const k = event.Time(2_000)
	p := compile(t, shopQuery)
	events := shopStream(t, 200, 88)
	poison := events[120].Seq

	par, err := NewParallel(mustRouter(t, "id", 3), func(int) (engine.Engine, error) {
		en, err := core.New(p, core.Options{K: k})
		if err != nil {
			return nil, err
		}
		return &panicEngine{Engine: en, poison: poison}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = par.Drain(context.Background(), events)
	if err == nil || !strings.Contains(err.Error(), "engine panic") {
		t.Fatalf("shard panic not isolated into an error: %v", err)
	}
}

// TestParallelFlushPanicIsolated: a panic during the end-of-stream Flush
// is isolated the same way.
func TestParallelFlushPanicIsolated(t *testing.T) {
	const k = event.Time(2_000)
	p := compile(t, shopQuery)
	events := shopStream(t, 50, 99)

	par, err := NewParallel(mustRouter(t, "id", 3), func(shard int) (engine.Engine, error) {
		en, err := core.New(p, core.Options{K: k})
		if err != nil {
			return nil, err
		}
		if shard == 1 {
			return &flushPanicEngine{Engine: en}, nil
		}
		return en, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = par.Drain(context.Background(), events)
	if err == nil || !strings.Contains(err.Error(), "engine panic") {
		t.Fatalf("flush panic not isolated: %v", err)
	}
}

type flushPanicEngine struct{ engine.Engine }

func (fe *flushPanicEngine) Flush() []plan.Match { panic("flush fault") }
