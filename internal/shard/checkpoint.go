package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"oostream/internal/engine"
)

// shardCheckpoint is the serialized form of a sequential sharded engine:
// the routing configuration (validated on restore) and one opaque
// sub-checkpoint per shard. Each part's blob is whatever its engine's own
// Checkpoint wrote — for native parts, the enveloped, CRC-protected core
// format.
type shardCheckpoint struct {
	Attr        string   `json:"attr"`
	Shards      int      `json:"shards"`
	RouteErrors uint64   `json:"routeErrors"`
	Parts       [][]byte `json:"parts"`
}

// Checkpoint implements engine.Checkpointer by serializing every shard.
// Every part must itself implement engine.Checkpointer (the facade only
// builds checkpointable sharded engines from native parts).
func (en *Engine) Checkpoint(w io.Writer) error {
	ck := shardCheckpoint{
		Attr:        en.router.attr,
		Shards:      en.router.shards,
		RouteErrors: en.routeErrors,
		Parts:       make([][]byte, len(en.parts)),
	}
	for i, p := range en.parts {
		cp, ok := p.(engine.Checkpointer)
		if !ok {
			return fmt.Errorf("shard %d: engine %q does not support checkpointing", i, p.Name())
		}
		var buf bytes.Buffer
		if err := cp.Checkpoint(&buf); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		ck.Parts[i] = buf.Bytes()
	}
	return json.NewEncoder(w).Encode(ck)
}

var _ engine.Checkpointer = (*Engine)(nil)

// Restore rebuilds a sequential sharded engine from a Checkpoint. The
// router must match the checkpointed topology (attribute and shard count:
// re-hashing state into a different partitioning would strand events), and
// restore is called once per shard with that shard's serialized state.
func Restore(router *Router, restore func(shard int, r io.Reader) (engine.Engine, error), r io.Reader) (*Engine, error) {
	var ck shardCheckpoint
	if err := json.NewDecoder(r).Decode(&ck); err != nil {
		return nil, fmt.Errorf("decode shard checkpoint: %w", err)
	}
	if ck.Attr != router.attr || ck.Shards != router.shards {
		return nil, fmt.Errorf("shard checkpoint is for %d shards on %q, not %d on %q",
			ck.Shards, ck.Attr, router.shards, router.attr)
	}
	if len(ck.Parts) != router.shards {
		return nil, fmt.Errorf("shard checkpoint has %d parts, want %d", len(ck.Parts), router.shards)
	}
	parts := make([]engine.Engine, router.shards)
	for i, blob := range ck.Parts {
		sub, err := restore(i, bytes.NewReader(blob))
		if err != nil {
			return nil, fmt.Errorf("restore shard %d: %w", i, err)
		}
		parts[i] = sub
	}
	return &Engine{router: router, parts: parts, routeErrors: ck.RouteErrors}, nil
}
