package shard

import (
	"context"
	"testing"

	"oostream/internal/core"
	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/gen"
	"oostream/internal/plan"
)

func compile(t *testing.T, src string) *plan.Plan {
	t.Helper()
	p, err := plan.ParseAndCompile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const shopQuery = `
	PATTERN SEQ(SHELF s, !(COUNTER c), EXIT e)
	WHERE s.id = e.id AND s.id = c.id
	WITHIN 6s`

func nativeFactory(p *plan.Plan, k event.Time) func(int) (engine.Engine, error) {
	return func(int) (engine.Engine, error) {
		return core.New(p, core.Options{K: k})
	}
}

func TestRouterDeterministicAndBalanced(t *testing.T) {
	r, err := NewRouter("id", 4)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for i := 0; i < 1000; i++ {
		e := event.New("T", 1, event.Attrs{"id": event.Int(int64(i))})
		s1, err := r.Route(e)
		if err != nil {
			t.Fatal(err)
		}
		s2, _ := r.Route(e)
		if s1 != s2 {
			t.Fatal("routing not deterministic")
		}
		counts[s1]++
	}
	for i, c := range counts {
		if c < 100 {
			t.Errorf("shard %d badly underloaded: %d/1000", i, c)
		}
	}
}

func TestRouterIntFloatAgree(t *testing.T) {
	r, _ := NewRouter("id", 7)
	a, _ := r.Route(event.New("T", 1, event.Attrs{"id": event.Int(42)}))
	b, _ := r.Route(event.New("T", 1, event.Attrs{"id": event.Float(42)}))
	if a != b {
		t.Error("Int(42) and Float(42) must route identically (they compare equal)")
	}
}

func TestRouterAllKinds(t *testing.T) {
	r, _ := NewRouter("k", 3)
	for _, v := range []event.Value{
		event.Int(-5), event.Float(2.5), event.Str("x"), event.Bool(true), event.Bool(false),
	} {
		if _, err := r.Route(event.New("T", 1, event.Attrs{"k": v})); err != nil {
			t.Errorf("route %v: %v", v, err)
		}
	}
}

func TestRouterErrors(t *testing.T) {
	if _, err := NewRouter("id", 0); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := NewRouter("", 2); err == nil {
		t.Error("empty attr accepted")
	}
	r, _ := NewRouter("id", 2)
	if _, err := r.Route(event.New("T", 1, nil)); err == nil {
		t.Error("missing attr should error")
	}
}

func TestPartitionedEqualsSingleEngine(t *testing.T) {
	p := compile(t, shopQuery)
	if !p.PartitionableBy("id") {
		t.Fatal("shop query should be partitionable by id")
	}
	sorted := gen.RFID(gen.DefaultRFID(300, 55))
	shuffled := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.2, MaxDelay: 2000, Seed: 56})

	single := engine.Drain(core.MustNew(p, core.Options{K: 2000}), shuffled)

	for _, shards := range []int{1, 2, 4, 7} {
		r, err := NewRouter("id", shards)
		if err != nil {
			t.Fatal(err)
		}
		en, err := New(r, nativeFactory(p, 2000))
		if err != nil {
			t.Fatal(err)
		}
		got := engine.Drain(en, shuffled)
		if ok, diff := plan.SameResults(single, got); !ok {
			t.Fatalf("%d shards differ from single engine:\n%s", shards, diff)
		}
		if en.RouteErrors() != 0 {
			t.Errorf("%d shards: route errors %d", shards, en.RouteErrors())
		}
	}
}

func TestPartitionedMetricsAggregate(t *testing.T) {
	p := compile(t, shopQuery)
	r, _ := NewRouter("id", 3)
	en, err := New(r, nativeFactory(p, 2000))
	if err != nil {
		t.Fatal(err)
	}
	sorted := gen.RFID(gen.DefaultRFID(100, 57))
	engine.Drain(en, sorted)
	m := en.Metrics()
	if m.EventsIn == 0 || m.Matches == 0 {
		t.Errorf("aggregated metrics empty: %+v", m)
	}
	if en.Name() != "shard(native)" {
		t.Errorf("Name() = %q", en.Name())
	}
	if en.StateSize() < 0 {
		t.Error("state size")
	}
}

func TestPartitionedDropsKeylessEvents(t *testing.T) {
	p := compile(t, shopQuery)
	r, _ := NewRouter("id", 2)
	en, err := New(r, nativeFactory(p, 2000))
	if err != nil {
		t.Fatal(err)
	}
	en.Process(event.New("SHELF", 1, event.Attrs{"other": event.Int(1)}))
	if en.RouteErrors() != 1 {
		t.Errorf("route errors = %d", en.RouteErrors())
	}
}

func TestPartitionedAdvance(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, !(N n), B b) WHERE a.id = b.id AND a.id = n.id WITHIN 100")
	r, _ := NewRouter("id", 2)
	en, err := New(r, nativeFactory(p, 50))
	if err != nil {
		t.Fatal(err)
	}
	en.Process(event.New("A", 10, event.Attrs{"id": event.Int(1)}))
	if out := en.Process(event.New("B", 30, event.Attrs{"id": event.Int(1)})); len(out) != 0 {
		t.Fatal("should pend")
	}
	out := en.Advance(90) // safe = 40 >= gap end 30 on every shard
	if len(out) != 1 {
		t.Fatalf("heartbeat should seal across shards, got %v", out)
	}
}

func TestParallelEqualsSequential(t *testing.T) {
	p := compile(t, shopQuery)
	sorted := gen.RFID(gen.DefaultRFID(300, 58))
	shuffled := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.2, MaxDelay: 2000, Seed: 59})
	single := engine.Drain(core.MustNew(p, core.Options{K: 2000}), shuffled)

	r, _ := NewRouter("id", 4)
	par, err := NewParallel(r, nativeFactory(p, 2000))
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan event.Event)
	out := make(chan plan.Match, 1)
	ctx := context.Background()
	go func() {
		defer close(in)
		for _, e := range shuffled {
			in <- e
		}
	}()
	var got []plan.Match
	errCh := make(chan error, 1)
	go func() { errCh <- par.Run(ctx, in, out) }()
	for m := range out {
		got = append(got, m)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if ok, diff := plan.SameResults(single, got); !ok {
		t.Fatalf("parallel shards differ:\n%s", diff)
	}
}

func TestParallelCancellation(t *testing.T) {
	p := compile(t, shopQuery)
	r, _ := NewRouter("id", 2)
	par, err := NewParallel(r, nativeFactory(p, 100))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan event.Event)
	out := make(chan plan.Match)
	errCh := make(chan error, 1)
	go func() { errCh <- par.Run(ctx, in, out) }()
	go func() {
		for range out {
		}
	}()
	in <- event.New("SHELF", 1, event.Attrs{"id": event.Int(1)})
	cancel()
	if err := <-errCh; err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
}

func TestPartitionableByChecks(t *testing.T) {
	tests := []struct {
		src  string
		attr string
		want bool
	}{
		{shopQuery, "id", true},
		{shopQuery, "gate", false},
		{"PATTERN SEQ(A a, B b) WITHIN 10", "id", false},
		{"PATTERN SEQ(A a, B b) WHERE a.id = b.id WITHIN 10", "id", true},
		{"PATTERN SEQ(A a, B b, C c) WHERE a.id = b.id WITHIN 10", "id", false}, // c unlinked
		{"PATTERN SEQ(A a, B b, C c) WHERE a.id = b.id AND b.id = c.id WITHIN 10", "id", true},
		{"PATTERN SEQ(A a, !(N n), B b) WHERE a.id = b.id WITHIN 10", "id", false}, // negation unlinked
		{"PATTERN SEQ(A a) WITHIN 10", "anything", true},                           // single positive
		{"PATTERN SEQ(A a, B b) WHERE a.id = b.x WITHIN 10", "id", false},          // different attrs
	}
	for _, tt := range tests {
		p := compile(t, tt.src)
		if got := p.PartitionableBy(tt.attr); got != tt.want {
			t.Errorf("PartitionableBy(%q) on %q = %v, want %v", tt.attr, tt.src, got, tt.want)
		}
	}
}
