// Package shard scales pattern matching across key partitions: when every
// component of a query is linked by equality on one attribute (checked by
// plan.PartitionableBy), the stream can be hash-partitioned on that
// attribute and each partition matched independently — the classic
// scale-out for CEP engines, here applied to the out-of-order setting
// (each shard keeps its own stacks, clock, and purge horizon; disorder
// bounds hold per shard because each shard sees a subsequence of the
// arrival order, which can only shrink delays... see note on Clock below).
//
// Two execution modes are provided: Engine (sequential routing, implements
// engine.Engine, deterministic output order) and Parallel (one goroutine
// per shard over channels, multiset-equal output).
//
// Clock note: a shard only observes its own partition's max timestamp, so
// its safe clock lags the global one — pending negation output seals later
// than a single engine would, but never incorrectly. Routing heartbeats
// (Advance) to every shard, as both modes do on Flush, re-synchronizes
// them.
package shard

import (
	"fmt"
	"hash/fnv"
	"math"

	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/metrics"
	"oostream/internal/obsv"
	"oostream/internal/plan"
	"oostream/internal/provenance"
)

// Router assigns events to shards by hashing a key attribute.
type Router struct {
	attr   string
	shards int
}

// NewRouter builds a router over n shards keyed on attr.
func NewRouter(attr string, n int) (*Router, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shard count must be positive, got %d", n)
	}
	if attr == "" {
		return nil, fmt.Errorf("partition attribute must not be empty")
	}
	return &Router{attr: attr, shards: n}, nil
}

// Shards returns the shard count.
func (r *Router) Shards() int { return r.shards }

// Route returns the shard for an event, or an error when the event lacks
// the key attribute.
func (r *Router) Route(e event.Event) (int, error) {
	v, ok := e.Attr(r.attr)
	if !ok {
		return 0, fmt.Errorf("event %s lacks partition attribute %q", e.Type, r.attr)
	}
	return int(hashValue(v) % uint64(r.shards)), nil
}

// hashValue hashes an attribute value. Int(k) and Float(k) hash equal for
// integral k, matching Value.Equal's cross-kind semantics.
func hashValue(v event.Value) uint64 {
	h := fnv.New64a()
	switch v.Kind() {
	case event.KindInt:
		i, _ := v.AsInt()
		writeU64(h, uint64(i))
	case event.KindFloat:
		f, _ := v.AsFloat()
		if f == math.Trunc(f) && f >= math.MinInt64 && f <= math.MaxInt64 {
			writeU64(h, uint64(int64(f)))
		} else {
			writeU64(h, math.Float64bits(f))
		}
	case event.KindString:
		s, _ := v.AsString()
		h.Write([]byte(s))
	case event.KindBool:
		b, _ := v.AsBool()
		if b {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	return h.Sum64()
}

func writeU64(h interface{ Write([]byte) (int, error) }, v uint64) {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	h.Write(buf[:])
}

// Engine partitions a stream across sub-engines, sequentially. It
// implements engine.Engine and, when the sub-engines support heartbeats,
// engine.Advancer.
type Engine struct {
	router *Router
	parts  []engine.Engine
	met    metrics.Collector
	// routeErrors counts events lacking the key attribute (dropped).
	routeErrors uint64
	// prov marks provenance enabled: relayed matches get their lineage
	// records tagged with the emitting shard's index.
	prov bool
}

var _ engine.Engine = (*Engine)(nil)
var _ engine.Advancer = (*Engine)(nil)

// New builds a partitioned engine. The factory is called once per shard;
// p must be PartitionableBy the router's attribute — callers (the facade)
// validate that.
func New(router *Router, factory func(shard int) (engine.Engine, error)) (*Engine, error) {
	parts := make([]engine.Engine, router.Shards())
	for i := range parts {
		en, err := factory(i)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		parts[i] = en
	}
	return &Engine{router: router, parts: parts}, nil
}

// Name implements engine.Engine.
func (en *Engine) Name() string { return "shard(" + en.parts[0].Name() + ")" }

// Process implements engine.Engine: routes to one shard. Events without
// the key attribute are counted and dropped (they cannot participate in
// any match of a partitionable query).
func (en *Engine) Process(e event.Event) []plan.Match {
	shard, err := en.router.Route(e)
	if err != nil {
		en.routeErrors++
		en.met.IncPredError(err)
		return nil
	}
	ms := en.parts[shard].Process(e)
	if en.prov {
		tagShard(ms, shard)
	}
	return ms
}

// ProcessBatch implements engine.BatchProcessor: consecutive events that
// route to the same shard are handed to that shard's batch path as one
// subslice. Because shards are independent (an event only ever affects its
// own shard's matches), regrouping consecutive same-shard runs emits
// exactly the per-event concatenation.
func (en *Engine) ProcessBatch(batch []event.Event) []plan.Match {
	var out []plan.Match
	start := 0
	cur := -1
	flush := func(end int) {
		if cur < 0 || start == end {
			return
		}
		ms := engine.ProcessBatch(en.parts[cur], batch[start:end])
		if en.prov {
			tagShard(ms, cur)
		}
		out = append(out, ms...)
	}
	for i := range batch {
		shard, err := en.router.Route(batch[i])
		if err != nil {
			flush(i)
			start, cur = i+1, -1
			en.routeErrors++
			en.met.IncPredError(err)
			continue
		}
		if shard != cur {
			flush(i)
			start, cur = i, shard
		}
	}
	flush(len(batch))
	return out
}

// tagShard stamps the emitting shard's index into relayed lineage records.
func tagShard(ms []plan.Match, shard int) {
	for i := range ms {
		if ms[i].Prov != nil {
			ms[i].Prov.Shard = shard
		}
	}
}

// Advance implements engine.Advancer: heartbeats go to every shard,
// re-synchronizing their clocks.
func (en *Engine) Advance(ts event.Time) []plan.Match {
	var out []plan.Match
	for i, p := range en.parts {
		if adv, ok := p.(engine.Advancer); ok {
			ms := adv.Advance(ts)
			if en.prov {
				tagShard(ms, i)
			}
			out = append(out, ms...)
		}
	}
	return out
}

// Flush implements engine.Engine.
func (en *Engine) Flush() []plan.Match {
	var out []plan.Match
	for i, p := range en.parts {
		ms := p.Flush()
		if en.prov {
			tagShard(ms, i)
		}
		out = append(out, ms...)
	}
	return out
}

// EnableProvenance implements engine.Provenancer: every shard builds
// records, and the routing layer tags them with the shard index.
func (en *Engine) EnableProvenance() {
	en.prov = true
	for _, p := range en.parts {
		if pr, ok := p.(engine.Provenancer); ok {
			pr.EnableProvenance()
		}
	}
}

// SetLatencySampler implements engine.LatencySampled by forwarding to
// every shard: sequential routing adds no queue stage, so the parts'
// construction stamps are the only boundaries.
func (en *Engine) SetLatencySampler(ls *obsv.LatencySampler) {
	for _, p := range en.parts {
		engine.SetLatencySampler(p, ls)
	}
}

// StateSnapshot implements engine.Introspectable: per-shard snapshots
// aggregated under the routing engine's name.
func (en *Engine) StateSnapshot() *provenance.StateSnapshot {
	subs := make([]*provenance.StateSnapshot, len(en.parts))
	for i, p := range en.parts {
		if intr, ok := p.(engine.Introspectable); ok {
			subs[i] = intr.StateSnapshot()
		}
	}
	return provenance.Aggregate(en.Name(), subs)
}

// RouteErrors returns how many events lacked the partition attribute.
func (en *Engine) RouteErrors() uint64 { return en.routeErrors }

// StateSize implements engine.Engine: the sum over shards.
func (en *Engine) StateSize() int {
	total := 0
	for _, p := range en.parts {
		total += p.StateSize()
	}
	return total
}

// Metrics implements engine.Engine by summing shard counters. PeakState is
// the sum of per-shard peaks (an upper bound on the true simultaneous
// peak); latency histograms are merged exactly.
func (en *Engine) Metrics() metrics.Snapshot {
	agg := aggregate(en.parts)
	agg.PredErrors += en.routeErrors
	return agg
}

// Observe implements engine.Observable: the trace hook fans out to every
// shard. Series binding is per shard (each part publishes its own named
// series — the facade wires that when it builds the parts), so s only
// receives the routing layer's own counters (route errors).
func (en *Engine) Observe(s *obsv.Series, hook obsv.TraceHook) {
	en.met.Bind(s)
	for _, p := range en.parts {
		if obs, ok := p.(engine.Observable); ok {
			obs.Observe(nil, hook)
		}
	}
}

// aggregate sums per-shard snapshots into one. Latency and watermark-lag
// histograms merge exactly (identical bucket layouts); per-shard peak
// gauges sum to an upper bound on the true simultaneous peak.
func aggregate(parts []engine.Engine) metrics.Snapshot {
	var agg metrics.Snapshot
	for _, p := range parts {
		s := p.Metrics()
		agg.EventsIn += s.EventsIn
		agg.EventsLate += s.EventsLate
		agg.EventsOOO += s.EventsOOO
		agg.Irrelevant += s.Irrelevant
		agg.Matches += s.Matches
		agg.Retractions += s.Retractions
		agg.PredErrors += s.PredErrors
		agg.Purged += s.Purged
		agg.PurgeCalls += s.PurgeCalls
		agg.Probes += s.Probes
		agg.EmptyProbes += s.EmptyProbes
		agg.Repairs += s.Repairs
		agg.LiveState += s.LiveState
		agg.PeakState += s.PeakState
		agg.KeyGroups += s.KeyGroups
		agg.PeakKeyGroups += s.PeakKeyGroups
		agg.LogicalLat.Merge(s.LogicalLat)
		agg.ArrivalLat.Merge(s.ArrivalLat)
		agg.WatermarkLag.Merge(s.WatermarkLag)
		agg.EventsDropped += s.EventsDropped
		agg.EventsDeadLettered += s.EventsDeadLettered
		agg.DuplicatesSuppressed += s.DuplicatesSuppressed
		agg.Restarts += s.Restarts
		agg.Checkpoints += s.Checkpoints
		agg.CheckpointBytes += s.CheckpointBytes
		if s.CheckpointDuration > agg.CheckpointDuration {
			agg.CheckpointDuration = s.CheckpointDuration
		}
		agg.LineageRecords += s.LineageRecords
		agg.LineageLive += s.LineageLive
		agg.LineageBytes += s.LineageBytes
	}
	return agg
}
