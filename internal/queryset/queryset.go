// Package queryset implements the shared-admission multi-query runtime:
// many compiled queries evaluated over one event stream, with each event
// admitted, reordered, and purge-scheduled once instead of once per query.
//
// The naive tenant-scale deployment — one engine per query, every event
// offered to every engine — pays N admission checks, N reorder buffers,
// and N clock advances per event. A Set shares that work:
//
//   - One K-slack reorder buffer admits the stream. Released events are in
//     (timestamp, sequence) order, so every per-query inner engine runs
//     with K=0: disorder tolerance is paid once, at the shared buffer, and
//     the engines run in cheap near-in-order mode with a tight purge
//     horizon. Bound violators are dropped once, under the same inclusive
//     watermark rule the single-engine admission layers use.
//   - An event-type index maps each event type to the queries whose
//     positive or negated components can consume it; an event whose type no
//     registered query mentions costs one map lookup.
//   - Prefix gating skips queries whose pattern cannot have started: a
//     query is probed with a non-initial component type only once its first
//     positive component type has been seen in-window for that event's key
//     group. Gating is sound only because the dispatched stream is sorted
//     (the shared buffer guarantees it); leading negations (GapAfter 0)
//     are exempt, since their events precede the anchor they guard.
//   - One watermark computation fans a periodic Advance to every engine,
//     sealing deferred negation output and driving state purges — one
//     clock, one purge frontier, N consumers.
//
// Correctness is differential: internal/difftest.RunMulti proves a Set's
// per-query output equals N independent single-query engines (and the
// brute-force oracle), across strategies, live Register/Unregister, batch
// ingestion, and supervised kill/recover via the v2 checkpoint format
// (see checkpoint.go).
package queryset

import (
	"fmt"
	"io"

	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/kslack"
	"oostream/internal/metrics"
	"oostream/internal/obsv"
	"oostream/internal/plan"
)

// DefaultAdvanceEvery is the default fan-out cadence: after this many
// released events the Set advances every engine to the shared watermark,
// sealing negation output and purging state through quiet queries.
const DefaultAdvanceEvery = 256

// Options configure a Set.
type Options struct {
	// K is the shared disorder bound (slack) in logical milliseconds. The
	// Set's reorder buffer tolerates arrivals up to K behind the maximum
	// timestamp seen; inner engines run at K=0 on the sorted output.
	K event.Time
	// AdvanceEvery is the watermark fan-out cadence in released events;
	// 0 means DefaultAdvanceEvery. It trades sealing/purge latency for
	// per-event cost and never affects final output.
	AdvanceEvery int
	// NewEngine builds the inner engine for a registered query. Required.
	// It MUST build the engine with a zero disorder bound (the shared
	// buffer carries all slack); the id is for observability naming.
	NewEngine func(id string, p *plan.Plan) (engine.Engine, error)
	// Compile recompiles a query source during Restore. Only required by
	// Restore.
	Compile func(src string) (*plan.Plan, error)
	// RestoreEngine rebuilds an inner engine from its checkpoint blob.
	// Only required by Restore.
	RestoreEngine func(id string, p *plan.Plan, r io.Reader) (engine.Engine, error)
	// QuerySeries resolves a registered query's observability series, used
	// to attribute per-query construct time when a latency sampler is
	// installed. Optional; nil keeps attribution on the shared series only.
	QuerySeries func(id string) *obsv.Series
}

// Set is the multi-query runtime. It implements the internal engine
// contract (Process/Flush/Metrics/StateSize plus the Advancer, Batch,
// Observable, Provenancer, and Checkpointer extensions), with every
// emitted match tagged with the owning query's id (Match.Query), so it
// drops into the supervised runtime and pipelines unchanged.
//
// Sets are not safe for concurrent use, like every engine.
type Set struct {
	opts    Options
	buf     *kslack.Buffer
	queries map[string]*queryState
	order   []*queryState // registration order (dispatch determinism)
	index   map[string][]dispatch
	nextReg uint64

	lastDropped  uint64 // buffer drop count at last Push, for metrics
	sinceAdvance int
	sealed       bool
	prov         bool
	met          metrics.Collector
	// lat, when non-nil, stamps shared-buffer residency and per-query
	// construct segments on sampled spans. Inner engines never see the
	// sampler: they run at K=0 on the sorted stream, so the Set's own
	// boundaries are the only meaningful ones.
	lat *obsv.LatencySampler
}

// dispatch is one (event type → query) index entry.
type dispatch struct {
	q *queryState
	// opens marks the query's first positive component type: seeing it
	// opens the prefix gate for the event's key group.
	opens bool
	// gated marks types dispatched only when the gate is open.
	gated bool
}

// queryState is one registered query's runtime state.
type queryState struct {
	id  string
	reg uint64 // registration sequence, monotone per Set
	p   *plan.Plan
	en  engine.Engine
	// series receives this query's construct-stage attribution (resolved
	// via Options.QuerySeries; nil when unconfigured).
	series *obsv.Series

	// Prefix gate: the last timestamp the first positive component type
	// was seen, per key group (keyAttr != "") or globally. An event opens
	// the gate for queries probed by later component types within Window.
	keyAttr    string
	gateByKey  map[event.Value]event.Time
	gateAll    event.Time
	gateAllSet bool

	dispatched uint64
	skipped    uint64
}

// New builds an empty Set.
func New(opts Options) (*Set, error) {
	if opts.NewEngine == nil {
		return nil, fmt.Errorf("queryset: Options.NewEngine is required")
	}
	if opts.K < 0 {
		return nil, fmt.Errorf("queryset: K must be >= 0, got %d", opts.K)
	}
	if opts.AdvanceEvery < 0 {
		return nil, fmt.Errorf("queryset: AdvanceEvery must be >= 0, got %d", opts.AdvanceEvery)
	}
	if opts.AdvanceEvery == 0 {
		opts.AdvanceEvery = DefaultAdvanceEvery
	}
	return &Set{
		opts:    opts,
		buf:     kslack.NewBuffer(opts.K),
		queries: make(map[string]*queryState),
		index:   make(map[string][]dispatch),
	}, nil
}

// Register adds a compiled query under the given id and returns an error
// on a duplicate or empty id or a sealed Set. The query observes events
// released from the shared buffer after registration; buffered and
// already-released events are not replayed into it.
func (s *Set) Register(id string, p *plan.Plan) error {
	if s.sealed {
		return fmt.Errorf("queryset: Register after Flush; the stream is sealed")
	}
	if id == "" {
		return fmt.Errorf("queryset: query id must be non-empty")
	}
	if p == nil {
		return fmt.Errorf("queryset: query plan must be non-nil")
	}
	if _, dup := s.queries[id]; dup {
		return fmt.Errorf("queryset: query id %q already registered", id)
	}
	en, err := s.opts.NewEngine(id, p)
	if err != nil {
		return err
	}
	s.attach(&queryState{id: id, p: p, en: en})
	return nil
}

// attach wires a built queryState into the registry and type index,
// assigning its registration sequence. Shared by Register and Restore.
func (s *Set) attach(q *queryState) {
	s.nextReg++
	q.reg = s.nextReg
	q.keyAttr = q.p.PartitionKey
	if s.opts.QuerySeries != nil {
		q.series = s.opts.QuerySeries(q.id)
	}
	if q.keyAttr != "" {
		q.gateByKey = make(map[event.Value]event.Time)
	}
	if s.prov {
		if pr, ok := q.en.(engine.Provenancer); ok {
			pr.EnableProvenance()
		}
	}
	s.queries[q.id] = q
	s.order = append(s.order, q) // nextReg is monotone: stays reg-sorted

	// Index the query's relevant types. The first positive component type
	// and leading-negation types are never gated: the former starts
	// patterns (and opens the gate), the latter precede the anchor whose
	// gap they guard, so gating them would lose invalidations.
	first := q.p.Positives[0].Type
	ungated := map[string]bool{first: true}
	for _, n := range q.p.Negatives {
		if n.GapAfter == 0 {
			ungated[n.Type] = true
		}
	}
	entries := make(map[string]dispatch)
	for _, step := range q.p.Positives {
		entries[step.Type] = dispatch{q: q, opens: step.Type == first, gated: !ungated[step.Type]}
	}
	for _, n := range q.p.Negatives {
		if _, done := entries[n.Type]; !done {
			entries[n.Type] = dispatch{q: q, opens: false, gated: !ungated[n.Type]}
		}
	}
	for typ, d := range entries {
		s.index[typ] = append(s.index[typ], d)
	}
}

// Unregister removes a query, finalizes it against the events released so
// far (events still held in the shared reorder buffer are not seen — call
// Advance first to drain up to a known horizon), and returns its final
// matches, tagged. Unknown ids and sealed Sets return an error.
func (s *Set) Unregister(id string) ([]plan.Match, error) {
	if s.sealed {
		return nil, fmt.Errorf("queryset: Unregister after Flush; the stream is sealed")
	}
	q, ok := s.queries[id]
	if !ok {
		return nil, fmt.Errorf("queryset: query id %q is not registered", id)
	}
	var out []plan.Match
	s.tag(q, q.en.Flush(), &out)
	delete(s.queries, id)
	for i, o := range s.order {
		if o == q {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	for typ, ds := range s.index {
		kept := ds[:0]
		for _, d := range ds {
			if d.q != q {
				kept = append(kept, d)
			}
		}
		if len(kept) == 0 {
			delete(s.index, typ)
		} else {
			s.index[typ] = kept
		}
	}
	return out, nil
}

// Queries returns the registered query ids in registration order.
func (s *Set) Queries() []string {
	ids := make([]string, len(s.order))
	for i, q := range s.order {
		ids[i] = q.id
	}
	return ids
}

// Len returns the number of registered queries.
func (s *Set) Len() int { return len(s.order) }

// Plan returns the registered query's compiled plan.
func (s *Set) Plan(id string) (*plan.Plan, bool) {
	q, ok := s.queries[id]
	if !ok {
		return nil, false
	}
	return q.p, true
}

// QueryMetrics returns the inner engine counters of one registered query.
func (s *Set) QueryMetrics(id string) (metrics.Snapshot, bool) {
	q, ok := s.queries[id]
	if !ok {
		return metrics.Snapshot{}, false
	}
	return q.en.Metrics(), true
}

// QueryStats is one query's dispatch accounting: how many released events
// the index offered to its engine and how many the prefix gate skipped.
type QueryStats struct {
	ID         string
	Dispatched uint64
	Skipped    uint64
}

// Stats returns per-query dispatch accounting in registration order.
func (s *Set) Stats() []QueryStats {
	out := make([]QueryStats, len(s.order))
	for i, q := range s.order {
		out[i] = QueryStats{ID: q.id, Dispatched: q.dispatched, Skipped: q.skipped}
	}
	return out
}

// Name implements engine.Engine.
func (s *Set) Name() string { return "queryset" }

// Process admits one event: it enters the shared reorder buffer, and
// every event the watermark releases is dispatched through the type index
// to the gated subset of registered engines. Returned matches are tagged
// with their query id (Match.Query). Panics after Flush.
func (s *Set) Process(e event.Event) []plan.Match {
	var out []plan.Match
	s.process(e, &out)
	return out
}

// ProcessBatch implements engine.BatchProcessor. A nil or empty batch is
// a documented no-op returning nil. Output is identical to per-event
// Process calls, including the watermark fan-out cadence, so the batch
// path amortizes only call and output-slice overhead.
func (s *Set) ProcessBatch(batch []event.Event) []plan.Match {
	if len(batch) == 0 {
		return nil
	}
	var out []plan.Match
	for _, e := range batch {
		s.process(e, &out)
	}
	return out
}

func (s *Set) process(e event.Event, out *[]plan.Match) {
	if s.sealed {
		panic("queryset: Process called after Flush; the stream is sealed")
	}
	maxSeen, started := s.buf.MaxSeen()
	ooo := started && e.TS < maxSeen
	var lag event.Time
	if ooo {
		lag = maxSeen - e.TS
	}
	s.met.IncIn(ooo, lag)
	s.lat.Hold(e.Seq)
	released := s.buf.Push(e)
	if d := s.buf.Dropped(); d != s.lastDropped {
		s.lastDropped = d
		s.lat.Abandon(e.Seq)
		s.met.IncLate()
		s.met.IncDropped()
		return
	}
	for _, r := range released {
		s.dispatch(r, out)
	}
	// The cadence check sits here — between release batches, never inside
	// one. fan advances inner engines to the shared watermark, and every
	// event of the current batch is at or below that watermark: advancing
	// mid-batch would make the K=0 inner buffers drop the batch's
	// still-undispatched tail as late.
	if s.sinceAdvance >= s.opts.AdvanceEvery {
		s.fan(out)
	}
}

// dispatch routes one released (sorted-order) event through the type
// index. Inner engines run at K=0 and never see disorder, so no per-query
// clock synchronization is needed before Process.
func (s *Set) dispatch(e event.Event, out *[]plan.Match) {
	// Release closes the buffer stage; each query's Process closes a
	// construct segment mirrored into that query's own series; FinishHeld
	// seals the span here at dispatch end (the residual send time after the
	// Set returns is not observable from inside it).
	s.lat.StageEnd(e.Seq, obsv.StageBuffer)
	ds := s.index[e.Type]
	if len(ds) == 0 {
		s.met.IncIrrelevant()
	}
	for _, d := range ds {
		q := d.q
		if d.opens {
			q.openGate(e)
		}
		if d.gated && !q.gateOpen(e) {
			q.skipped++
			continue
		}
		q.dispatched++
		s.tag(q, q.en.Process(e), out)
		s.lat.StageInto(q.series, e.Seq, obsv.StageConstruct)
	}
	s.sinceAdvance++
	s.lat.FinishHeld(e.Seq)
}

// openGate records a first-component occurrence for the event's key group.
func (q *queryState) openGate(e event.Event) {
	if q.keyAttr == "" {
		q.gateAll, q.gateAllSet = e.TS, true
		return
	}
	if key, ok := plan.KeyOf(e, q.keyAttr); ok {
		q.gateByKey[key] = e.TS
	}
}

// gateOpen reports whether the query can be probed with e: its first
// positive component type was seen within Window for e's key group.
// Events without the key attribute pass ungated — they cannot be proven
// irrelevant cheaply, and correctness beats a skipped probe.
func (q *queryState) gateOpen(e event.Event) bool {
	horizon := e.TS - q.p.Window
	if q.keyAttr == "" {
		return q.gateAllSet && q.gateAll >= horizon
	}
	key, ok := plan.KeyOf(e, q.keyAttr)
	if !ok {
		return true
	}
	ts, seen := q.gateByKey[key]
	return seen && ts >= horizon
}

// fan advances every engine to the shared watermark — one clock and purge
// frontier computation fanned out to N consumers — and prunes dead prefix
// gate entries. Purely a latency/memory action: it never changes output
// multisets (heartbeat-insertion invariance, I9).
func (s *Set) fan(out *[]plan.Match) {
	s.sinceAdvance = 0
	_, started := s.buf.MaxSeen()
	if !started {
		return
	}
	wm := s.buf.Watermark()
	for _, q := range s.order {
		if adv, ok := q.en.(engine.Advancer); ok {
			s.tag(q, adv.Advance(wm), out)
		}
		// A gate entry opens probes for events with TS ≤ entry + Window;
		// future releases have TS ≥ wm, so older entries are dead.
		if q.keyAttr != "" {
			for key, ts := range q.gateByKey {
				if ts+q.p.Window < wm {
					delete(q.gateByKey, key)
				}
			}
		}
	}
	s.met.SetLiveState(s.StateSize())
}

// Advance implements engine.Advancer: the source promises stream time has
// reached ts. The shared buffer releases everything at or below ts − K,
// and every engine is immediately advanced to the new watermark (sealing
// deferred negation output through silent periods).
func (s *Set) Advance(ts event.Time) []plan.Match {
	if s.sealed {
		panic("queryset: Advance called after Flush; the stream is sealed")
	}
	var out []plan.Match
	for _, r := range s.buf.Advance(ts) {
		s.dispatch(r, &out)
	}
	s.fan(&out)
	return out
}

// Flush implements engine.Engine: the shared buffer drains in sorted
// order and every query is finalized, in registration order. The Set is
// sealed afterwards.
func (s *Set) Flush() []plan.Match {
	if s.sealed {
		return nil
	}
	var out []plan.Match
	for _, r := range s.buf.Flush() {
		s.dispatch(r, &out)
	}
	for _, q := range s.order {
		s.tag(q, q.en.Flush(), &out)
	}
	s.sealed = true
	s.met.SetLiveState(0)
	return out
}

// tag stamps matches with the owning query id, counts them on the Set's
// aggregate series, and appends them.
func (s *Set) tag(q *queryState, ms []plan.Match, out *[]plan.Match) {
	for _, m := range ms {
		m.Query = q.id
		lat := m.EmitClock - m.Last().TS
		s.met.AddMatch(m.Kind == plan.Retract, lat, 0)
		*out = append(*out, m)
	}
}

// Metrics implements engine.Engine with the Set's shared-admission
// counters: events in/late/dropped at the shared buffer, irrelevant types,
// and the live-state gauge (buffer plus engines, refreshed at fan-out
// cadence). Per-query engine counters are available via QueryMetrics.
func (s *Set) Metrics() metrics.Snapshot { return s.met.Snapshot() }

// StateSize implements engine.Engine: buffered events plus the state of
// every registered engine.
func (s *Set) StateSize() int {
	n := s.buf.Len()
	for _, q := range s.order {
		n += q.en.StateSize()
	}
	return n
}

// Observe implements engine.Observable for the Set's own shared-admission
// series. Per-query engine series are bound by the NewEngine factory
// (the facade names them "qs/<id>").
func (s *Set) Observe(series *obsv.Series, _ obsv.TraceHook) {
	s.met.Bind(series)
}

// SetLatencySampler implements engine.LatencySampled. The sampler is not
// forwarded to inner engines: the Set owns the buffer and construct
// boundaries (inner engines run at K=0 on the sorted stream and add no
// further buffering), and per-query construct segments are mirrored into
// the series resolved by Options.QuerySeries.
func (s *Set) SetLatencySampler(ls *obsv.LatencySampler) { s.lat = ls }

// EnableProvenance implements engine.Provenancer: lineage construction is
// turned on for every registered engine and every future registration.
func (s *Set) EnableProvenance() {
	s.prov = true
	for _, q := range s.order {
		if pr, ok := q.en.(engine.Provenancer); ok {
			pr.EnableProvenance()
		}
	}
}
