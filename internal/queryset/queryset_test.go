package queryset

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"oostream/internal/core"
	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/plan"
)

// testOptions wires native K=0 inner engines, the contract the Set
// requires (the shared buffer carries all slack).
func testOptions(k event.Time) Options {
	return Options{
		K: k,
		NewEngine: func(id string, p *plan.Plan) (engine.Engine, error) {
			return core.New(p, core.Options{})
		},
		Compile: func(src string) (*plan.Plan, error) {
			return plan.ParseAndCompile(src, nil)
		},
		RestoreEngine: func(id string, p *plan.Plan, r io.Reader) (engine.Engine, error) {
			return core.Restore(p, r)
		},
	}
}

func compile(t *testing.T, src string) *plan.Plan {
	t.Helper()
	p, err := plan.ParseAndCompile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestIndexGating pins the index construction rules: the first positive
// component's type opens the gate and is never gated; leading negation
// types are indexed ungated (they precede the anchor whose gap they
// guard); later component types are gated; unreferenced types are absent.
func TestIndexGating(t *testing.T) {
	s, err := New(testOptions(10))
	if err != nil {
		t.Fatal(err)
	}
	p := compile(t, "PATTERN SEQ(!(Z z), A a, !(B b), C c) WHERE a.id = c.id AND a.id = z.id AND a.id = b.id WITHIN 100")
	if err := s.Register("q", p); err != nil {
		t.Fatal(err)
	}
	want := map[string]struct{ opens, gated bool }{
		"Z": {false, false}, // leading negation: ungated
		"A": {true, false},  // first positive: opens, ungated
		"B": {false, true},  // interior negation: gated
		"C": {false, true},  // later positive: gated
	}
	for typ, w := range want {
		ds := s.index[typ]
		if len(ds) != 1 {
			t.Fatalf("index[%s] has %d entries, want 1", typ, len(ds))
		}
		if ds[0].opens != w.opens || ds[0].gated != w.gated {
			t.Errorf("index[%s] = {opens:%v gated:%v}, want %+v", typ, ds[0].opens, ds[0].gated, w)
		}
	}
	if ds := s.index["UNUSED"]; ds != nil {
		t.Errorf("unreferenced type indexed: %v", ds)
	}
	// Unregister must remove the query from every type bucket.
	if _, err := s.Unregister("q"); err != nil {
		t.Fatal(err)
	}
	for typ := range want {
		if len(s.index[typ]) != 0 {
			t.Errorf("index[%s] not emptied by Unregister", typ)
		}
	}
}

// TestCheckpointDeterministicBytes checkpoints the same state twice and
// requires identical bytes: gate tables are map-backed, so the encoder
// must canonicalize their order.
func TestCheckpointDeterministicBytes(t *testing.T) {
	mk := func() *Set {
		s, err := New(testOptions(5))
		if err != nil {
			t.Fatal(err)
		}
		p := compile(t, "PATTERN SEQ(A a, B b) WHERE a.id = b.id WITHIN 50")
		if err := s.Register("q", p); err != nil {
			t.Fatal(err)
		}
		// Many keys at one timestamp forces tie-breaking on the key.
		for i := 0; i < 20; i++ {
			s.Process(event.Event{Type: "A", TS: 10, Seq: event.Seq(i + 1),
				Attrs: event.Attrs{"id": event.Int(int64(i))}})
		}
		s.Process(event.Event{Type: "A", TS: 40, Seq: 99,
			Attrs: event.Attrs{"id": event.Int(0)}})
		return s
	}
	var a, b bytes.Buffer
	if err := mk().Checkpoint(&a); err != nil {
		t.Fatal(err)
	}
	if err := mk().Checkpoint(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("identical state produced different checkpoint bytes:\n%s\n%s", a.String(), b.String())
	}
}

// TestRestoreRejects pins the Restore error surface: version and K
// mismatches, and missing factories.
func TestRestoreRejects(t *testing.T) {
	s, err := New(testOptions(5))
	if err != nil {
		t.Fatal(err)
	}
	var blob bytes.Buffer
	if err := s.Checkpoint(&blob); err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(testOptions(7), bytes.NewReader(blob.Bytes())); err == nil {
		t.Error("Restore accepted a K mismatch")
	}
	bad := testOptions(5)
	bad.Compile = nil
	if _, err := Restore(bad, bytes.NewReader(blob.Bytes())); err == nil {
		t.Error("Restore accepted nil Compile")
	}
	if _, err := Restore(testOptions(5), bytes.NewReader([]byte(`{"version":1}`))); err == nil {
		t.Error("Restore accepted a version-1 checkpoint")
	}
}

// TestGatePruning fills gates for keys that go quiet and checks the
// fan-out prunes them without costing matches that are still reachable.
func TestGatePruning(t *testing.T) {
	opts := testOptions(10)
	opts.AdvanceEvery = 1 // prune at every release
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	p := compile(t, "PATTERN SEQ(A a, B b) WHERE a.id = b.id WITHIN 20")
	if err := s.Register("q", p); err != nil {
		t.Fatal(err)
	}
	var out []plan.Match
	ts := event.Time(0)
	seq := event.Seq(0)
	push := func(typ string, id int64) {
		ts += 5
		seq++
		out = append(out, s.Process(event.Event{Type: typ, TS: ts, Seq: seq,
			Attrs: event.Attrs{"id": event.Int(id)}})...)
	}
	// Key 1 opens then goes silent far past the window; key 2 opens late
	// and completes inside it.
	push("A", 1)
	for i := 0; i < 20; i++ {
		push("X", 3) // irrelevant type, drives the watermark forward
	}
	push("A", 2)
	push("B", 2)
	push("B", 1) // key 1's gate expired with the window: must be skipped
	out = append(out, s.Flush()...)
	if len(out) != 1 || out[0].Query != "q" {
		t.Fatalf("got %d matches, want exactly the key-2 match", len(out))
	}
	q := s.queries["q"]
	if len(q.gateByKey) > 1 {
		t.Errorf("gate table not pruned: %d entries live", len(q.gateByKey))
	}
	st := s.Stats()
	if st[0].Skipped == 0 {
		t.Error("expired gate never skipped a probe")
	}
}

// TestRegistrationOrderStable registers out of lexical order and checks
// order, Queries, and Stats all follow registration order.
func TestRegistrationOrderStable(t *testing.T) {
	s, err := New(testOptions(5))
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"zeta", "alpha", "mid"}
	for i, id := range ids {
		p := compile(t, fmt.Sprintf("PATTERN SEQ(A%d a, B%d b) WITHIN 10", i, i))
		if err := s.Register(id, p); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Queries()
	for i, id := range ids {
		if got[i] != id {
			t.Fatalf("Queries() = %v, want registration order %v", got, ids)
		}
		if s.Stats()[i].ID != id {
			t.Fatalf("Stats()[%d].ID = %q, want %q", i, s.Stats()[i].ID, id)
		}
	}
}
