package queryset

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/kslack"
)

// checkpointVersion is the Set's durable format version. Version 1 is the
// single-engine native envelope (internal/core, wrapped in the OOCKPT
// magic); the multi-query format is version 2: the shared reorder buffer
// plus one namespaced record per registered query — identity, canonical
// source, prefix-gate table, and the inner engine's own opaque state blob
// — so live Register/Unregister survives a kill/recover: the recovered
// Set rebuilds exactly the query registry the checkpoint captured.
const checkpointVersion = 2

// setCheckpoint is the serialized form of a Set.
type setCheckpoint struct {
	Version int        `json:"version"`
	K       event.Time `json:"k"`
	// MaxSeen/Started position the shared buffer's watermark; Buffer holds
	// the still-unreleased events in sorted order.
	MaxSeen event.Time    `json:"maxSeen"`
	Started bool          `json:"started"`
	Buffer  []event.Event `json:"buffer,omitempty"`
	// SinceAdvance is the fan-out cadence position, captured so a restored
	// Set advances its engines at exactly the original points — recovery
	// replay must reproduce the original emission order, not merely the
	// multiset.
	SinceAdvance int `json:"sinceAdvance,omitempty"`
	// Queries are the per-query namespaces, in registration order.
	Queries []queryCheckpoint `json:"queries"`
}

// queryCheckpoint is one query's namespace: identity, the canonical query
// source (recompiled on restore), the prefix-gate state, and the inner
// engine's own opaque checkpoint blob.
type queryCheckpoint struct {
	ID     string `json:"id"`
	Source string `json:"source"`
	Engine []byte `json:"engine"`
	// Gates is the keyed prefix-gate table; GateAll the unkeyed gate. Both
	// are captured verbatim: a conservative reconstruction would dispatch
	// events the original Set's gates skipped, advancing inner-engine
	// clocks at different points and reordering negation-sealing emissions
	// relative to an uninterrupted run.
	Gates   []gateEntry `json:"gates,omitempty"`
	GateAll *event.Time `json:"gateAll,omitempty"`
}

// gateEntry is one keyed prefix-gate record: the last timestamp the
// query's first positive component type was seen for the key group.
type gateEntry struct {
	Key event.Value `json:"key"`
	TS  event.Time  `json:"ts"`
}

// Checkpoint implements engine.Checkpointer, serializing the Set in the
// v2 format. Every inner engine must itself support checkpointing (the
// native strategy does); otherwise an error is returned and nothing is
// written.
func (s *Set) Checkpoint(w io.Writer) error {
	maxSeen, started := s.buf.MaxSeen()
	cp := setCheckpoint{
		Version:      checkpointVersion,
		K:            s.opts.K,
		MaxSeen:      maxSeen,
		Started:      started,
		Buffer:       s.buf.Pending(),
		SinceAdvance: s.sinceAdvance,
		Queries:      make([]queryCheckpoint, 0, len(s.order)),
	}
	for _, q := range s.order {
		ck, ok := q.en.(engine.Checkpointer)
		if !ok {
			return fmt.Errorf("queryset: query %q engine %q does not support checkpointing", q.id, q.en.Name())
		}
		var blob bytes.Buffer
		if err := ck.Checkpoint(&blob); err != nil {
			return fmt.Errorf("queryset: checkpoint query %q: %w", q.id, err)
		}
		qc := queryCheckpoint{ID: q.id, Source: q.p.Source, Engine: blob.Bytes()}
		for key, ts := range q.gateByKey {
			qc.Gates = append(qc.Gates, gateEntry{Key: key, TS: ts})
		}
		// Map iteration order is random; canonicalize for stable bytes.
		sortGates(qc.Gates)
		if q.gateAllSet {
			ts := q.gateAll
			qc.GateAll = &ts
		}
		cp.Queries = append(cp.Queries, qc)
	}
	return json.NewEncoder(w).Encode(&cp)
}

// sortGates orders gate entries by (TS, canonical key string) so
// checkpoint bytes are deterministic for identical state.
func sortGates(gs []gateEntry) {
	less := func(a, b gateEntry) bool {
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		return a.Key.String() < b.Key.String()
	}
	for i := 1; i < len(gs); i++ {
		for j := i; j > 0 && less(gs[j], gs[j-1]); j-- {
			gs[j], gs[j-1] = gs[j-1], gs[j]
		}
	}
}

// Restore rebuilds a Set from a v2 checkpoint. opts must carry the same K
// the checkpointed Set ran with, plus the Compile and RestoreEngine
// factories. The restored Set is an exact continuation: registry, shared
// buffer, prefix gates, and fan-out cadence all resume where the
// checkpoint was taken, so a recovered run emits the same matches in the
// same order as an uninterrupted one.
func Restore(opts Options, r io.Reader) (*Set, error) {
	s, err := New(opts)
	if err != nil {
		return nil, err
	}
	if opts.Compile == nil || opts.RestoreEngine == nil {
		return nil, fmt.Errorf("queryset: Restore requires Options.Compile and Options.RestoreEngine")
	}
	var cp setCheckpoint
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("queryset: decode checkpoint: %w", err)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("queryset: checkpoint version %d, want %d", cp.Version, checkpointVersion)
	}
	if cp.K != opts.K {
		return nil, fmt.Errorf("queryset: checkpoint was written with K=%d, restoring with K=%d", cp.K, opts.K)
	}
	s.buf = kslack.RestoreBuffer(opts.K, cp.MaxSeen, cp.Started, cp.Buffer)
	s.sinceAdvance = cp.SinceAdvance
	for _, qc := range cp.Queries {
		p, err := opts.Compile(qc.Source)
		if err != nil {
			return nil, fmt.Errorf("queryset: recompile query %q: %w", qc.ID, err)
		}
		en, err := opts.RestoreEngine(qc.ID, p, bytes.NewReader(qc.Engine))
		if err != nil {
			return nil, fmt.Errorf("queryset: restore query %q: %w", qc.ID, err)
		}
		s.attach(&queryState{id: qc.ID, p: p, en: en})
		q := s.queries[qc.ID]
		for _, g := range qc.Gates {
			if q.gateByKey != nil {
				// MapKey re-canonicalizes after the JSON round-trip so the
				// restored key is identical to what KeyOf will produce.
				q.gateByKey[g.Key.MapKey()] = g.TS
			}
		}
		if qc.GateAll != nil {
			q.gateAll, q.gateAllSet = *qc.GateAll, true
		}
	}
	return s, nil
}
