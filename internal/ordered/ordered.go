// Package ordered wraps any exact engine so that matches are *emitted* in
// timestamp order (by last element, ties broken by match key), despite
// out-of-order processing inside. Native out-of-order construction emits
// matches in completion order — a match completed by a very late event
// appears after matches that are later in stream time; some consumers
// (sequenced logs, downstream in-order operators) need the emission order
// to follow stream time instead.
//
// The wrapper holds finished matches in a min-heap and releases one once
// the safe clock (maxTS − K, tracked from the events it forwards) passes
// the match's last timestamp: every match still to come ends at or after
// the safe clock, so nothing can precede a released match. The cost is the
// same kind of latency the engine's negation sealing already pays —
// bounded by K — applied to all results.
package ordered

import (
	"container/heap"
	"fmt"

	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/metrics"
	"oostream/internal/obsv"
	"oostream/internal/plan"
	"oostream/internal/provenance"
)

// Engine wraps an inner engine with ordered emission.
type Engine struct {
	inner   engine.Engine
	k       event.Time
	clock   event.Time
	started bool
	buf     matchHeap
}

var (
	_ engine.Engine   = (*Engine)(nil)
	_ engine.Advancer = (*Engine)(nil)
)

// New wraps inner. K must match the inner engine's disorder bound. The
// inner engine must not produce retractions (speculative engines cannot be
// order-buffered: a retraction may refer to an already-released match);
// Process panics if one appears — configuration errors, not data errors.
func New(inner engine.Engine, k event.Time) (*Engine, error) {
	if k < 0 {
		return nil, fmt.Errorf("K must be >= 0, got %d", k)
	}
	return &Engine{inner: inner, k: k}, nil
}

// Name implements engine.Engine.
func (en *Engine) Name() string { return "ordered(" + en.inner.Name() + ")" }

// Metrics implements engine.Engine (the inner engine's counters; emission
// reordering does not change what was measured).
func (en *Engine) Metrics() metrics.Snapshot { return en.inner.Metrics() }

// Observe implements engine.Observable by delegating to the inner engine
// (the wrapper measures nothing of its own; its buffered matches show up
// in StateSize, which the inner engine's collector reports).
func (en *Engine) Observe(s *obsv.Series, hook obsv.TraceHook) {
	if obs, ok := en.inner.(engine.Observable); ok {
		obs.Observe(s, hook)
	}
}

// SetLatencySampler implements engine.LatencySampled by delegating to the
// inner engine (the wrapper adds no stage boundary of its own; the time a
// match waits in the order buffer is match latency, not event latency).
func (en *Engine) SetLatencySampler(ls *obsv.LatencySampler) {
	engine.SetLatencySampler(en.inner, ls)
}

// EnableProvenance implements engine.Provenancer by delegating to the
// inner engine; released matches carry the records it attached.
func (en *Engine) EnableProvenance() {
	if pr, ok := en.inner.(engine.Provenancer); ok {
		pr.EnableProvenance()
	}
}

// StateSnapshot implements engine.Introspectable: the inner engine's view,
// with the order buffer's occupancy added and the wrapper's name.
func (en *Engine) StateSnapshot() *provenance.StateSnapshot {
	intr, ok := en.inner.(engine.Introspectable)
	if !ok {
		return nil
	}
	s := intr.StateSnapshot()
	s.Engine = en.Name()
	s.BufferLen += en.buf.Len()
	return s
}

// StateSize implements engine.Engine: inner state plus buffered matches.
func (en *Engine) StateSize() int { return en.inner.StateSize() + en.buf.Len() }

// Process implements engine.Engine.
func (en *Engine) Process(e event.Event) []plan.Match {
	matches := en.inner.Process(e)
	if e.TS > en.clock || !en.started {
		en.clock = e.TS
		en.started = true
	}
	return en.pushInto(matches, nil)
}

// ProcessBatch implements engine.BatchProcessor. Release must interleave
// with admission per event: the inner engine can emit a match whose last
// timestamp lies below an *earlier* event's safe point (a drained pending,
// for example), so releasing only at the batch boundary against the final
// clock would order the batch's emissions differently than the per-event
// path. The wrapper therefore advances the clock and drains the heap after
// every event, amortizing only the output slice.
func (en *Engine) ProcessBatch(batch []event.Event) []plan.Match {
	var out []plan.Match
	for i := range batch {
		e := batch[i]
		matches := en.inner.Process(e)
		if e.TS > en.clock || !en.started {
			en.clock = e.TS
			en.started = true
		}
		out = en.pushInto(matches, out)
	}
	return out
}

// Advance implements engine.Advancer.
func (en *Engine) Advance(ts event.Time) []plan.Match {
	var matches []plan.Match
	if adv, ok := en.inner.(engine.Advancer); ok {
		matches = adv.Advance(ts)
	}
	if ts > en.clock || !en.started {
		en.clock = ts
		en.started = true
	}
	return en.pushInto(matches, nil)
}

// Flush implements engine.Engine: everything remaining is released in
// order.
func (en *Engine) Flush() []plan.Match {
	out := en.pushInto(en.inner.Flush(), nil)
	for en.buf.Len() > 0 {
		out = append(out, heap.Pop(&en.buf).(plan.Match))
	}
	return out
}

func (en *Engine) pushInto(matches []plan.Match, out []plan.Match) []plan.Match {
	for _, m := range matches {
		if m.Kind == plan.Retract {
			panic("ordered: inner engine produced a retraction; wrap a conservative strategy")
		}
		heap.Push(&en.buf, m)
	}
	safe := en.clock - en.k
	for en.buf.Len() > 0 && en.buf[0].Last().TS < safe {
		out = append(out, heap.Pop(&en.buf).(plan.Match))
	}
	return out
}

// matchHeap orders matches by (last TS, key).
type matchHeap []plan.Match

func (h matchHeap) Len() int { return len(h) }
func (h matchHeap) Less(i, j int) bool {
	ti, tj := h[i].Last().TS, h[j].Last().TS
	if ti != tj {
		return ti < tj
	}
	return h[i].Key() < h[j].Key()
}
func (h matchHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *matchHeap) Push(x any)   { *h = append(*h, x.(plan.Match)) }
func (h *matchHeap) Pop() any {
	old := *h
	n := len(old)
	out := old[n-1]
	old[n-1] = plan.Match{}
	*h = old[:n-1]
	return out
}
