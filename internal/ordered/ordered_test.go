package ordered

import (
	"testing"
	"testing/quick"

	"oostream/internal/core"
	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/gen"
	"oostream/internal/plan"
)

func compile(t *testing.T, src string) *plan.Plan {
	t.Helper()
	p, err := plan.ParseAndCompile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func wrap(t *testing.T, p *plan.Plan, k event.Time) *Engine {
	t.Helper()
	en, err := New(core.MustNew(p, core.Options{K: k}), k)
	if err != nil {
		t.Fatal(err)
	}
	return en
}

func isOrdered(ms []plan.Match) bool {
	for i := 1; i < len(ms); i++ {
		a, b := ms[i-1], ms[i]
		if a.Last().TS > b.Last().TS {
			return false
		}
		if a.Last().TS == b.Last().TS && a.Key() > b.Key() {
			return false
		}
	}
	return true
}

func TestOrderedEmission(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 50")
	const k = 40
	sorted := gen.Uniform(300, []string{"A", "B"}, 3, 5, 51)
	shuffled := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.4, MaxDelay: k, Seed: 52})

	plain := engine.Drain(core.MustNew(p, core.Options{K: k}), shuffled)
	if isOrdered(plain) {
		t.Log("note: unwrapped output happened to be ordered on this seed")
	}
	got := engine.Drain(wrap(t, p, k), shuffled)
	if !isOrdered(got) {
		t.Fatal("wrapped output not in timestamp order")
	}
	if ok, diff := plan.SameResults(plain, got); !ok {
		t.Fatalf("wrapper changed the result set:\n%s", diff)
	}
}

func TestOrderedProperty(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b, C c) WITHIN 60")
	f := func(seed int64) bool {
		const k = 30
		sorted := gen.Uniform(120, []string{"A", "B", "C"}, 2, 4, seed)
		shuffled := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.5, MaxDelay: k, Seed: seed + 1})
		en, err := New(core.MustNew(p, core.Options{K: k}), k)
		if err != nil {
			return false
		}
		got := engine.Drain(en, shuffled)
		want := engine.Drain(core.MustNew(p, core.Options{K: k}), shuffled)
		same, _ := plan.SameResults(want, got)
		return same && isOrdered(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestOrderedWithNegationAndHeartbeat(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, !(N n), B b) WITHIN 100")
	en := wrap(t, p, 20)
	en.Process(event.Event{Type: "A", TS: 10, Seq: 1})
	if out := en.Process(event.Event{Type: "B", TS: 30, Seq: 2}); len(out) != 0 {
		t.Fatal("premature")
	}
	// Heartbeat seals the negation gap AND passes the order horizon.
	out := en.Advance(100)
	if len(out) != 1 || out[0].Key() != "1|2" {
		t.Fatalf("heartbeat release: %v", out)
	}
}

func TestOrderedNameStateAndValidation(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a) WITHIN 10")
	en := wrap(t, p, 5)
	if en.Name() != "ordered(native)" {
		t.Errorf("Name = %q", en.Name())
	}
	en.Process(event.Event{Type: "A", TS: 10, Seq: 1})
	if en.StateSize() < 1 {
		t.Error("buffered match not counted in state")
	}
	if _, err := New(core.MustNew(p, core.Options{K: 5}), -1); err == nil {
		t.Error("negative K accepted")
	}
}

func TestOrderedPanicsOnRetraction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on retraction")
		}
	}()
	en := &Engine{inner: nil, k: 0}
	en.pushInto([]plan.Match{{Kind: plan.Retract, Events: []event.Event{{TS: 1}}}}, nil)
}
