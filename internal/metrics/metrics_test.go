package metrics

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestCollectorCounters(t *testing.T) {
	var c Collector
	c.IncIn(false, 0)
	c.IncIn(true, 3)
	c.IncIn(true, 3)
	c.IncLate()
	c.IncIrrelevant()
	c.IncPredError(errors.New("x"))
	c.AddMatch(false, 10, 2)
	c.AddMatch(false, 30, 4)
	c.AddMatch(true, 0, 0)
	c.ObservePurge(5)
	c.ObservePurge(3)
	c.SetLiveState(7)
	c.SetLiveState(3)

	s := c.Snapshot()
	if s.EventsIn != 3 || s.EventsOOO != 2 || s.EventsLate != 1 {
		t.Errorf("event counters: %+v", s)
	}
	if s.Irrelevant != 1 || s.PredErrors != 1 {
		t.Errorf("aux counters: %+v", s)
	}
	if s.Matches != 2 || s.Retractions != 1 {
		t.Errorf("match counters: %+v", s)
	}
	if s.Purged != 8 || s.PurgeCalls != 2 {
		t.Errorf("purge counters: %+v", s)
	}
	if s.LiveState != 3 || s.PeakState != 7 {
		t.Errorf("state counters: %+v", s)
	}
	if s.LogicalLat.Count() != 2 || s.LogicalLat.Sum() != 40 {
		t.Errorf("latency: count=%d sum=%d", s.LogicalLat.Count(), s.LogicalLat.Sum())
	}
	if s.LogicalLat.Mean() != 20 {
		t.Errorf("mean = %v", s.LogicalLat.Mean())
	}
}

func TestNegativeLatencyClamped(t *testing.T) {
	var c Collector
	c.AddMatch(false, -5, 0)
	s := c.Snapshot()
	if s.LogicalLat.Sum() != 0 || s.LogicalLat.Count() != 1 {
		t.Errorf("negative latency not clamped: %+v", s.LogicalLat)
	}
}

func TestSnapshotString(t *testing.T) {
	var c Collector
	c.IncIn(false, 0)
	c.AddMatch(false, 8, 1)
	out := c.Snapshot().String()
	for _, part := range []string{"in=1", "matches=1"} {
		if !strings.Contains(out, part) {
			t.Errorf("String() = %q missing %q", out, part)
		}
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Error("empty histogram should be all zeros")
	}
	for _, v := range []uint64{0, 1, 2, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 106 || h.Max() != 100 {
		t.Errorf("count=%d sum=%d max=%d", h.Count(), h.Sum(), h.Max())
	}
	if q := h.Quantile(1.0); q != 100 {
		t.Errorf("Quantile(1.0) = %d, want max", q)
	}
	if q := h.Quantile(0.2); q != 0 {
		t.Errorf("Quantile(0.2) = %d, want 0", q)
	}
	// Quantile clamps q.
	if h.Quantile(-1) != 0 {
		t.Error("negative q should clamp to min bucket")
	}
	if h.Quantile(2) != 100 {
		t.Error("q>1 should clamp to max")
	}
}

func TestHistogramQuantileIsUpperBoundProperty(t *testing.T) {
	f := func(values []uint16, qRaw uint8) bool {
		if len(values) == 0 {
			return true
		}
		var h Histogram
		for _, v := range values {
			h.Observe(uint64(v))
		}
		q := float64(qRaw%101) / 100
		bound := h.Quantile(q)
		// At least ceil(q*n) observations must be <= bound.
		need := int(q * float64(len(values)))
		if need == 0 {
			need = 1
		}
		got := 0
		for _, v := range values {
			if uint64(v) <= bound {
				got++
			}
		}
		return got >= need && bound <= h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectorConcurrentSnapshot(t *testing.T) {
	var c Collector
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = c.Snapshot()
			}
		}
	}()
	for i := 0; i < 1000; i++ {
		c.IncIn(i%2 == 0, 1)
		c.AddMatch(false, int64(i), uint64(i))
		c.SetLiveState(i)
	}
	close(stop)
	wg.Wait()
	s := c.Snapshot()
	if s.EventsIn != 1000 || s.Matches != 1000 || s.PeakState != 999 {
		t.Errorf("final snapshot: %+v", s)
	}
}
