// Package metrics collects the measurements the paper's evaluation reports:
// CPU cost (throughput is derived by the harness from wall time), memory
// consumption (live and peak instance counts), result latency (in logical
// time and in arrival distance), output counts, and correctness counters.
//
// A Collector is owned by one engine instance and is a thin veneer over an
// obsv.Series — the atomic instrument set of the live observability layer.
// Engines are single-writer, so every publication is one uncontended
// atomic operation; Snapshot loads the same words from any goroutine
// without stopping the writer (no mutex on either side). Bind re-points
// the collector at a registry-owned series, which turns the engine's
// counters into named, scrapeable time series (Prometheus /metrics, /varz)
// with zero extra hot-path cost.
package metrics

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"

	"oostream/internal/event"
	"oostream/internal/obsv"
)

// Collector accumulates engine measurements. The zero value is ready to
// use (it lazily allocates a private, unregistered series).
type Collector struct {
	s atomic.Pointer[obsv.Series]
}

// Bind publishes this collector's measurements into s — typically a series
// obtained from an obsv.Registry, so scrapes see the engine live. Call
// before processing starts: counts recorded earlier stay on the private
// series. A nil s is ignored.
func (c *Collector) Bind(s *obsv.Series) {
	if s != nil {
		c.s.Store(s)
	}
}

// Series returns the series this collector publishes into, allocating a
// private one on first use.
func (c *Collector) Series() *obsv.Series {
	if s := c.s.Load(); s != nil {
		return s
	}
	s := obsv.NewSeries("")
	if c.s.CompareAndSwap(nil, s) {
		return s
	}
	return c.s.Load()
}

// Snapshot is a consistent-enough copy of all counters: each field is
// loaded atomically; a snapshot racing the writer may be off by the
// in-flight event, which every consumer (harness, monitors) tolerates.
type Snapshot struct {
	EventsIn    uint64
	EventsLate  uint64
	EventsOOO   uint64
	Irrelevant  uint64
	Matches     uint64
	Retractions uint64
	PredErrors  uint64
	Purged      uint64
	PurgeCalls  uint64
	Probes      uint64
	EmptyProbes uint64
	// Repairs counts predecessor (RIP) pointer repairs caused by
	// out-of-order insertions — the structural work disorder forces.
	Repairs   uint64
	LiveState int
	PeakState int
	// KeyGroups and PeakKeyGroups gauge the live/peak number of key groups
	// when the engine runs with key-partitioned stacks (0 when unkeyed).
	KeyGroups     int
	PeakKeyGroups int
	LogicalLat    Histogram
	ArrivalLat    Histogram
	// WatermarkLag is the per-event lag behind the watermark (the max
	// timestamp seen): 0 for in-order arrivals, the measured disorder for
	// out-of-order ones. Its quantiles are what adaptive K selection reads.
	WatermarkLag Histogram

	// EventsDropped counts events the admission-control layer rejected
	// under the Drop policy (bound violators and duplicates).
	EventsDropped uint64
	// EventsDeadLettered counts events routed to the dead-letter channel.
	EventsDeadLettered uint64
	// DuplicatesSuppressed counts duplicate work suppressed by the
	// fault-tolerance layer: duplicate input events turned away at
	// admission plus replayed match emissions that had already been
	// delivered before a crash.
	DuplicatesSuppressed uint64
	// Restarts counts supervised restarts from a checkpoint after a panic.
	Restarts uint64
	// Checkpoints counts durable checkpoints written.
	Checkpoints uint64
	// CheckpointBytes gauges the size of the most recent checkpoint.
	CheckpointBytes uint64
	// CheckpointDuration gauges the wall time of the most recent checkpoint.
	CheckpointDuration time.Duration

	// LineageRecords counts lineage records built (provenance enabled).
	LineageRecords uint64
	// LineageLive gauges lineage records currently retained (attached to
	// pending matches awaiting negation sealing).
	LineageLive int
	// LineageBytes gauges the estimated heap retained by live records.
	LineageBytes int

	// SheddedEvents counts events discarded by overload degradation (the
	// Limits policy) — distinct from EventsLate (bound violators).
	SheddedEvents uint64
	// Switches counts hybrid meta-engine strategy switches.
	Switches uint64
	// CurrentK gauges the effective disorder bound being enforced; MaxK is
	// its peak (the static K the adaptive run is equivalent to).
	CurrentK int64
	MaxK     int64
	// Degraded reports whether overload degradation is active.
	Degraded bool

	// AggWindows counts emitted aggregate window values; AggRevisions the
	// speculative retract+insert pairs that replaced an earlier value.
	AggWindows   uint64
	AggRevisions uint64
	// AggInserts counts elements inserted into the aggregation tree and
	// AggFingerHits the subset absorbed directly by a finger leaf, so
	// AggFingerHits/AggInserts is the finger hit rate.
	AggInserts    uint64
	AggFingerHits uint64
	// AggTreeHeight gauges the tallest live aggregation tree across groups;
	// AggElements the live elements across all trees.
	AggTreeHeight int
	AggElements   int
}

// IncIn counts an ingested event; ooo marks it out of timestamp order and
// lag is its distance behind the watermark (max timestamp seen; 0 for
// in-order arrivals).
func (c *Collector) IncIn(ooo bool, lag event.Time) {
	s := c.Series()
	s.EventsIn.Inc()
	if ooo {
		s.EventsOOO.Inc()
	}
	if lag < 0 {
		lag = 0
	}
	s.WatermarkLag.Observe(uint64(lag))
}

// IncLate counts an event rejected for violating the disorder bound.
func (c *Collector) IncLate() { c.Series().EventsLate.Inc() }

// IncIrrelevant counts an event whose type the pattern does not mention.
func (c *Collector) IncIrrelevant() { c.Series().Irrelevant.Inc() }

// IncPredError counts a predicate evaluation error (treated as non-match).
func (c *Collector) IncPredError(error) { c.Series().PredErrors.Inc() }

// AddMatch records an emitted match with its latencies: logical is
// emission clock minus the match's last event timestamp; arrival is the
// number of arrivals between the match's completion and its emission.
func (c *Collector) AddMatch(retract bool, logical event.Time, arrival uint64) {
	s := c.Series()
	if retract {
		s.Retractions.Inc()
		return
	}
	s.Matches.Inc()
	if logical < 0 {
		logical = 0
	}
	s.LogicalLat.Observe(uint64(logical))
	s.ArrivalLat.Observe(arrival)
}

// ObserveProbe records a construction probe; empty marks one that
// enumerated no match (the waste the scan optimization avoids).
func (c *Collector) ObserveProbe(empty bool) {
	s := c.Series()
	s.Probes.Inc()
	if empty {
		s.EmptyProbes.Inc()
	}
}

// ObservePurge records a purge pass that removed n instances.
func (c *Collector) ObservePurge(n int) {
	s := c.Series()
	s.PurgeCalls.Inc()
	s.Purged.Add(uint64(n))
}

// AddRepairs records n predecessor-pointer repairs from one insertion.
func (c *Collector) AddRepairs(n int) {
	if n > 0 {
		c.Series().Repairs.Add(uint64(n))
	}
}

// SetLiveState records the current total state size (stack instances plus
// any auxiliary buffers) and updates the peak.
func (c *Collector) SetLiveState(n int) { c.Series().LiveState.Set(int64(n)) }

// SetKeyGroups records the current number of key-partitioned stack groups
// and updates the peak.
func (c *Collector) SetKeyGroups(n int) { c.Series().KeyGroups.Set(int64(n)) }

// IncDropped counts an event rejected by admission control (Drop policy).
func (c *Collector) IncDropped() { c.Series().Dropped.Inc() }

// IncDeadLettered counts an event routed to the dead-letter channel.
func (c *Collector) IncDeadLettered() { c.Series().DeadLettered.Inc() }

// IncDupSuppressed counts one suppressed duplicate: a duplicate input
// event turned away at admission, or a replayed match emission that was
// already delivered before a crash.
func (c *Collector) IncDupSuppressed() { c.Series().DupSuppressed.Inc() }

// IncRestart counts a supervised restart from a checkpoint.
func (c *Collector) IncRestart() { c.Series().Restarts.Inc() }

// ObserveCheckpoint records a completed durable checkpoint: its size and
// how long writing it took.
func (c *Collector) ObserveCheckpoint(bytes int, d time.Duration) {
	s := c.Series()
	s.Checkpoints.Inc()
	s.CheckpointBytes.Set(int64(bytes))
	s.CheckpointNanos.Set(int64(d))
}

// IncShedded counts one event discarded by overload degradation.
func (c *Collector) IncShedded() { c.Series().SheddedEvents.Inc() }

// IncSwitch counts one hybrid strategy switch.
func (c *Collector) IncSwitch() { c.Series().Switches.Inc() }

// SetCurrentK gauges the effective disorder bound being enforced.
func (c *Collector) SetCurrentK(k event.Time) { c.Series().CurrentK.Set(int64(k)) }

// SetDegraded gauges the overload-degradation flag.
func (c *Collector) SetDegraded(on bool) {
	var v int64
	if on {
		v = 1
	}
	c.Series().Degraded.Set(v)
}

// IncLineage counts one lineage record built by the provenance layer.
func (c *Collector) IncLineage() { c.Series().LineageRecords.Inc() }

// SetLineageRetained gauges the lineage records currently retained by the
// engine and their estimated heap footprint.
func (c *Collector) SetLineageRetained(live, bytes int) {
	s := c.Series()
	s.LineageLive.Set(int64(live))
	s.LineageBytes.Set(int64(bytes))
}

// IncAggWindow counts one emitted aggregate window value.
func (c *Collector) IncAggWindow() { c.Series().AggWindows.Inc() }

// IncAggRevision counts one speculative aggregate revision (a
// retract+insert pair replacing a previously emitted window value).
func (c *Collector) IncAggRevision() { c.Series().AggRevisions.Inc() }

// IncAggInsert counts one aggregation-tree element insert; fingerHit marks
// it as absorbed directly by a finger leaf.
func (c *Collector) IncAggInsert(fingerHit bool) {
	s := c.Series()
	s.AggInserts.Inc()
	if fingerHit {
		s.AggFingerHits.Inc()
	}
}

// SetAggTree gauges the aggregation-tree shape: the tallest live tree
// across groups and the total live elements.
func (c *Collector) SetAggTree(height, elements int) {
	s := c.Series()
	s.AggTreeHeight.Set(int64(height))
	s.AggElements.Set(int64(elements))
}

// Snapshot returns a copy of all counters.
func (c *Collector) Snapshot() Snapshot {
	s := c.Series()
	return Snapshot{
		EventsIn:      s.EventsIn.Load(),
		EventsLate:    s.EventsLate.Load(),
		EventsOOO:     s.EventsOOO.Load(),
		Irrelevant:    s.Irrelevant.Load(),
		Matches:       s.Matches.Load(),
		Retractions:   s.Retractions.Load(),
		PredErrors:    s.PredErrors.Load(),
		Purged:        s.Purged.Load(),
		PurgeCalls:    s.PurgeCalls.Load(),
		Probes:        s.Probes.Load(),
		EmptyProbes:   s.EmptyProbes.Load(),
		Repairs:       s.Repairs.Load(),
		LiveState:     int(s.LiveState.Load()),
		PeakState:     int(s.LiveState.Peak()),
		KeyGroups:     int(s.KeyGroups.Load()),
		PeakKeyGroups: int(s.KeyGroups.Peak()),
		LogicalLat:    histFromView(s.LogicalLat.View()),
		ArrivalLat:    histFromView(s.ArrivalLat.View()),
		WatermarkLag:  histFromView(s.WatermarkLag.View()),

		EventsDropped:        s.Dropped.Load(),
		EventsDeadLettered:   s.DeadLettered.Load(),
		DuplicatesSuppressed: s.DupSuppressed.Load(),
		Restarts:             s.Restarts.Load(),
		Checkpoints:          s.Checkpoints.Load(),
		CheckpointBytes:      uint64(s.CheckpointBytes.Load()),
		CheckpointDuration:   time.Duration(s.CheckpointNanos.Load()),

		LineageRecords: s.LineageRecords.Load(),
		LineageLive:    int(s.LineageLive.Load()),
		LineageBytes:   int(s.LineageBytes.Load()),

		SheddedEvents: s.SheddedEvents.Load(),
		Switches:      s.Switches.Load(),
		CurrentK:      s.CurrentK.Load(),
		MaxK:          s.CurrentK.Peak(),
		Degraded:      s.Degraded.Load() != 0,

		AggWindows:    s.AggWindows.Load(),
		AggRevisions:  s.AggRevisions.Load(),
		AggInserts:    s.AggInserts.Load(),
		AggFingerHits: s.AggFingerHits.Load(),
		AggTreeHeight: int(s.AggTreeHeight.Load()),
		AggElements:   int(s.AggElements.Load()),
	}
}

// String summarizes the snapshot on one line.
func (s Snapshot) String() string {
	return fmt.Sprintf("in=%d ooo=%d late=%d matches=%d retract=%d peak=%d lat(mean=%.1f p99=%d)",
		s.EventsIn, s.EventsOOO, s.EventsLate, s.Matches, s.Retractions,
		s.PeakState, s.LogicalLat.Mean(), s.LogicalLat.Quantile(0.99))
}

// Histogram is a fixed power-of-two-bucket histogram of uint64 observations.
// Bucket i counts values whose bit length is i (bucket 0: value 0). It is a
// value type: copying it snapshots it.
type Histogram struct {
	buckets [65]uint64
	count   uint64
	sum     uint64
	max     uint64
}

// histFromView converts an atomic obsv histogram view into the snapshot
// value type (identical bucket layout).
func histFromView(v obsv.HistView) Histogram {
	return Histogram{buckets: v.Buckets, count: v.Count, sum: v.Sum, max: v.Max}
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bits.Len64(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Merge adds another histogram's observations into h (exact: the bucket
// layouts are identical). Shard aggregation uses it.
func (h *Histogram) Merge(o Histogram) {
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Count returns the number of observations.
func (h Histogram) Count() uint64 { return h.count }

// Sum returns the sum of observations.
func (h Histogram) Sum() uint64 { return h.sum }

// Max returns the largest observation.
func (h Histogram) Max() uint64 { return h.max }

// Mean returns the average observation, or 0 with no observations.
func (h Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the
// upper edge of the bucket containing it. Returns 0 with no observations.
func (h Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(h.count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, n := range h.buckets {
		cum += n
		if cum >= target {
			if i == 0 {
				return 0
			}
			upper := uint64(1)<<uint(i) - 1
			if upper > h.max {
				upper = h.max
			}
			return upper
		}
	}
	return h.max
}
