// Package metrics collects the measurements the paper's evaluation reports:
// CPU cost (throughput is derived by the harness from wall time), memory
// consumption (live and peak instance counts), result latency (in logical
// time and in arrival distance), output counts, and correctness counters.
//
// A Collector is owned by one engine instance. Engines are single-writer;
// the mutex makes snapshots safe from other goroutines (harness, monitors).
package metrics

import (
	"fmt"
	"math/bits"
	"sync"
	"time"

	"oostream/internal/event"
)

// Collector accumulates engine measurements.
type Collector struct {
	mu sync.Mutex

	eventsIn    uint64
	eventsLate  uint64 // beyond the disorder bound K
	eventsOOO   uint64 // out of timestamp order (but within K)
	irrelevant  uint64 // type not in the pattern
	matches     uint64
	retractions uint64
	predErrors  uint64
	purged      uint64
	purgeCalls  uint64
	probes      uint64
	emptyProbes uint64
	liveState   int
	peakState   int
	keyGroups   int
	peakGroups  int
	logicalLat  Histogram
	arrivalLat  Histogram

	// Fault-tolerance counters (owned by the supervised runtime layer).
	eventsDropped     uint64
	eventsDeadLetter  uint64
	dupSuppressed     uint64
	restarts          uint64
	checkpoints       uint64
	checkpointBytes   uint64
	checkpointLastDur time.Duration
}

// Snapshot is a consistent copy of all counters.
type Snapshot struct {
	EventsIn    uint64
	EventsLate  uint64
	EventsOOO   uint64
	Irrelevant  uint64
	Matches     uint64
	Retractions uint64
	PredErrors  uint64
	Purged      uint64
	PurgeCalls  uint64
	Probes      uint64
	EmptyProbes uint64
	LiveState   int
	PeakState   int
	// KeyGroups and PeakKeyGroups gauge the live/peak number of key groups
	// when the engine runs with key-partitioned stacks (0 when unkeyed).
	KeyGroups     int
	PeakKeyGroups int
	LogicalLat    Histogram
	ArrivalLat    Histogram

	// EventsDropped counts events the admission-control layer rejected
	// under the Drop policy (bound violators and duplicates).
	EventsDropped uint64
	// EventsDeadLettered counts events routed to the dead-letter channel.
	EventsDeadLettered uint64
	// DuplicatesSuppressed counts duplicate work suppressed by the
	// fault-tolerance layer: duplicate input events turned away at
	// admission plus replayed match emissions that had already been
	// delivered before a crash.
	DuplicatesSuppressed uint64
	// Restarts counts supervised restarts from a checkpoint after a panic.
	Restarts uint64
	// Checkpoints counts durable checkpoints written.
	Checkpoints uint64
	// CheckpointBytes gauges the size of the most recent checkpoint.
	CheckpointBytes uint64
	// CheckpointDuration gauges the wall time of the most recent checkpoint.
	CheckpointDuration time.Duration
}

// IncIn counts an ingested event; ooo marks it out of timestamp order.
func (c *Collector) IncIn(ooo bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.eventsIn++
	if ooo {
		c.eventsOOO++
	}
}

// IncLate counts an event rejected for violating the disorder bound.
func (c *Collector) IncLate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.eventsLate++
}

// IncIrrelevant counts an event whose type the pattern does not mention.
func (c *Collector) IncIrrelevant() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.irrelevant++
}

// IncPredError counts a predicate evaluation error (treated as non-match).
func (c *Collector) IncPredError(error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.predErrors++
}

// AddMatch records an emitted match with its latencies: logical is
// emission clock minus the match's last event timestamp; arrival is the
// number of arrivals between the match's completion and its emission.
func (c *Collector) AddMatch(retract bool, logical event.Time, arrival uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if retract {
		c.retractions++
		return
	}
	c.matches++
	if logical < 0 {
		logical = 0
	}
	c.logicalLat.Observe(uint64(logical))
	c.arrivalLat.Observe(arrival)
}

// ObserveProbe records a construction probe; empty marks one that
// enumerated no match (the waste the scan optimization avoids).
func (c *Collector) ObserveProbe(empty bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.probes++
	if empty {
		c.emptyProbes++
	}
}

// ObservePurge records a purge pass that removed n instances.
func (c *Collector) ObservePurge(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.purgeCalls++
	c.purged += uint64(n)
}

// SetLiveState records the current total state size (stack instances plus
// any auxiliary buffers) and updates the peak.
func (c *Collector) SetLiveState(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.liveState = n
	if n > c.peakState {
		c.peakState = n
	}
}

// SetKeyGroups records the current number of key-partitioned stack groups
// and updates the peak.
func (c *Collector) SetKeyGroups(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.keyGroups = n
	if n > c.peakGroups {
		c.peakGroups = n
	}
}

// IncDropped counts an event rejected by admission control (Drop policy).
func (c *Collector) IncDropped() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.eventsDropped++
}

// IncDeadLettered counts an event routed to the dead-letter channel.
func (c *Collector) IncDeadLettered() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.eventsDeadLetter++
}

// IncDupSuppressed counts one suppressed duplicate: a duplicate input
// event turned away at admission, or a replayed match emission that was
// already delivered before a crash.
func (c *Collector) IncDupSuppressed() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dupSuppressed++
}

// IncRestart counts a supervised restart from a checkpoint.
func (c *Collector) IncRestart() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.restarts++
}

// ObserveCheckpoint records a completed durable checkpoint: its size and
// how long writing it took.
func (c *Collector) ObserveCheckpoint(bytes int, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.checkpoints++
	c.checkpointBytes = uint64(bytes)
	c.checkpointLastDur = d
}

// Snapshot returns a copy of all counters.
func (c *Collector) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Snapshot{
		EventsIn:      c.eventsIn,
		EventsLate:    c.eventsLate,
		EventsOOO:     c.eventsOOO,
		Irrelevant:    c.irrelevant,
		Matches:       c.matches,
		Retractions:   c.retractions,
		PredErrors:    c.predErrors,
		Purged:        c.purged,
		PurgeCalls:    c.purgeCalls,
		Probes:        c.probes,
		EmptyProbes:   c.emptyProbes,
		LiveState:     c.liveState,
		PeakState:     c.peakState,
		KeyGroups:     c.keyGroups,
		PeakKeyGroups: c.peakGroups,
		LogicalLat:    c.logicalLat,
		ArrivalLat:    c.arrivalLat,

		EventsDropped:        c.eventsDropped,
		EventsDeadLettered:   c.eventsDeadLetter,
		DuplicatesSuppressed: c.dupSuppressed,
		Restarts:             c.restarts,
		Checkpoints:          c.checkpoints,
		CheckpointBytes:      c.checkpointBytes,
		CheckpointDuration:   c.checkpointLastDur,
	}
}

// String summarizes the snapshot on one line.
func (s Snapshot) String() string {
	return fmt.Sprintf("in=%d ooo=%d late=%d matches=%d retract=%d peak=%d lat(mean=%.1f p99=%d)",
		s.EventsIn, s.EventsOOO, s.EventsLate, s.Matches, s.Retractions,
		s.PeakState, s.LogicalLat.Mean(), s.LogicalLat.Quantile(0.99))
}

// Histogram is a fixed power-of-two-bucket histogram of uint64 observations.
// Bucket i counts values whose bit length is i (bucket 0: value 0). It is a
// value type: copying it snapshots it.
type Histogram struct {
	buckets [65]uint64
	count   uint64
	sum     uint64
	max     uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bits.Len64(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h Histogram) Count() uint64 { return h.count }

// Sum returns the sum of observations.
func (h Histogram) Sum() uint64 { return h.sum }

// Max returns the largest observation.
func (h Histogram) Max() uint64 { return h.max }

// Mean returns the average observation, or 0 with no observations.
func (h Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the
// upper edge of the bucket containing it. Returns 0 with no observations.
func (h Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(h.count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, n := range h.buckets {
		cum += n
		if cum >= target {
			if i == 0 {
				return 0
			}
			upper := uint64(1)<<uint(i) - 1
			if upper > h.max {
				upper = h.max
			}
			return upper
		}
	}
	return h.max
}
