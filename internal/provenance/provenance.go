// Package provenance defines the lineage and state-introspection model of
// the observability layer: per-match lineage records (which events a match
// cites, which key group it came from, what triggered its construction,
// and — for retractions — which late event invalidated it) and read-only
// engine state snapshots (per-position stack depths, heaviest key groups,
// negation-store sizes, buffer occupancy, clocks, purge frontier).
//
// The package sits below every engine: it imports only internal/event and
// internal/obsv (both leaf packages), so plan.Match can carry a *Record
// and internal/engine can expose snapshot interfaces without import
// cycles. Engines build records only when provenance is enabled
// (Config.Provenance); the disabled path constructs nothing.
package provenance

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"oostream/internal/event"
	"oostream/internal/obsv"
)

// Record kinds, mirroring plan.MatchKind as strings so the record is
// self-describing in JSON without importing plan.
const (
	KindInsert  = "insert"
	KindRetract = "retract"
)

// EventRef cites one event that contributed to a match.
type EventRef struct {
	// Pos is the positive pattern position the event bound; -1 for a
	// negative (invalidating) event.
	Pos int `json:"pos"`
	// Type is the event type.
	Type string `json:"type"`
	// TS is the event timestamp.
	TS event.Time `json:"ts"`
	// Seq is the event's arrival-independent sequence number — the stable
	// identity lineage is keyed on.
	Seq event.Seq `json:"seq"`
}

// Ref cites e at pattern position pos (-1 for negatives).
func Ref(e event.Event, pos int) EventRef {
	return EventRef{Pos: pos, Type: e.Type, TS: e.TS, Seq: e.Seq}
}

// Refs cites a complete positive binding, position by position.
func Refs(events []event.Event) []EventRef {
	out := make([]EventRef, len(events))
	for i, e := range events {
		out[i] = Ref(e, i)
	}
	return out
}

// String renders the reference compactly: TYPE@ts#seq.
func (r EventRef) String() string {
	return fmt.Sprintf("%s@%d#%d", r.Type, r.TS, r.Seq)
}

// Record is the lineage of one emitted (or retracted) match.
type Record struct {
	// Kind is KindInsert or KindRetract.
	Kind string `json:"kind"`
	// Events cites the match's events, one per positive position.
	Events []EventRef `json:"events"`
	// Key is the rendered partition-key value of the key group the match
	// was constructed in ("" when the engine ran unkeyed).
	Key string `json:"key,omitempty"`
	// KeyAttr is the partition attribute Key was read from.
	KeyAttr string `json:"keyAttr,omitempty"`
	// Shard is the shard index the match came from; -1 when unsharded.
	Shard int `json:"shard"`
	// WindowLo/WindowHi bound the match's window: [first.TS, first.TS+W].
	WindowLo event.Time `json:"windowLo"`
	WindowHi event.Time `json:"windowHi"`
	// SealTS is the timestamp the safe clock had to pass before the
	// match's negation gaps were sealed (minTime when no negation).
	SealTS event.Time `json:"sealTS"`
	// TriggerSeq/TriggerTS/TriggerPos identify the arrival whose insertion
	// triggered the construction that enumerated this match.
	TriggerSeq event.Seq  `json:"triggerSeq,omitempty"`
	TriggerTS  event.Time `json:"triggerTS,omitempty"`
	TriggerPos int        `json:"triggerPos,omitempty"`
	// Traversed counts the AIS instances examined while constructing the
	// binding (the candidates the enumeration walked, productive or not).
	Traversed int `json:"traversed,omitempty"`
	// EmitClock is the engine clock at emission.
	EmitClock event.Time `json:"emitClock"`
	// InvalidatedBy, on retractions, cites the late negative event that
	// invalidated the speculative match.
	InvalidatedBy *EventRef `json:"invalidatedBy,omitempty"`
	// Truncated marks a record rebuilt after a checkpoint restore: lineage
	// is not checkpointed, so trigger and traversal details are lost and
	// only the event citations (recoverable from the restored binding)
	// remain.
	Truncated bool `json:"truncated,omitempty"`
}

// MatchKey returns the "|"-joined event Seqs — the same canonical match
// identity plan.Match.Key computes, so lineage joins against trace events
// and multiset checks without importing plan.
func (r *Record) MatchKey() string {
	var b strings.Builder
	for i, e := range r.Events {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(strconv.FormatUint(e.Seq, 10))
	}
	return b.String()
}

// SizeBytes estimates the retained heap footprint of the record, for the
// lineage-bytes gauge. It is an estimate (struct sizes, slice headers, and
// small strings), not an exact accounting.
func (r *Record) SizeBytes() int {
	const recBase = 160 // Record struct + pointer + padding, rounded up
	const refSize = 40  // EventRef struct + type-string header
	n := recBase + len(r.Events)*refSize + len(r.Key) + len(r.KeyAttr)
	for _, e := range r.Events {
		n += len(e.Type)
	}
	if r.InvalidatedBy != nil {
		n += refSize + len(r.InvalidatedBy.Type)
	}
	return n
}

// String renders the lineage on one line (the esprun -explain format).
func (r *Record) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s match %s: events=[", r.Kind, r.MatchKey())
	for i, e := range r.Events {
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString(e.String())
	}
	fmt.Fprintf(&b, "] window=[%d,%d]", r.WindowLo, r.WindowHi)
	if r.Key != "" {
		fmt.Fprintf(&b, " key=%s=%s", r.KeyAttr, r.Key)
	}
	if r.Shard >= 0 {
		fmt.Fprintf(&b, " shard=%d", r.Shard)
	}
	if r.Truncated {
		b.WriteString(" provenance=truncated")
	} else if r.Kind == KindInsert {
		fmt.Fprintf(&b, " trigger=#%d@pos%d traversed=%d", r.TriggerSeq, r.TriggerPos, r.Traversed)
	}
	if r.InvalidatedBy != nil {
		fmt.Fprintf(&b, " invalidatedBy=%s", r.InvalidatedBy)
	}
	return b.String()
}

// KeyGroupStat is one key group's live state size, for the top-K heaviest
// listing in a snapshot.
type KeyGroupStat struct {
	Key  string `json:"key"`
	Size int    `json:"size"`
}

// TopK returns the k heaviest groups, ties broken by key for determinism.
func TopK(groups []KeyGroupStat, k int) []KeyGroupStat {
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].Size != groups[j].Size {
			return groups[i].Size > groups[j].Size
		}
		return groups[i].Key < groups[j].Key
	})
	if len(groups) > k {
		groups = groups[:k]
	}
	return groups
}

// LineageStats reports the provenance subsystem's own footprint.
type LineageStats struct {
	// Enabled reports whether the engine builds lineage records.
	Enabled bool `json:"enabled"`
	// Live counts lineage records currently retained by the engine
	// (attached to pending matches awaiting negation sealing).
	Live int `json:"live"`
	// Bytes estimates the heap retained by live records.
	Bytes int `json:"bytes"`
	// Truncated reports that the engine was restored from a checkpoint:
	// lineage is not checkpointed, so records for state predating the
	// restore carry Truncated.
	Truncated bool `json:"truncated,omitempty"`
}

// StateSnapshot is a read-only view of one engine's live state, the
// payload of the /debug/state endpoint and the espexplain CLI. Taking a
// snapshot is not safe concurrently with Process — callers serving HTTP
// publish snapshots from the processing goroutine (see cmd/esprun).
type StateSnapshot struct {
	// Engine names the strategy ("native", "kslack", "shard(native)", …).
	Engine string `json:"engine"`
	// Started reports whether the engine has seen an event.
	Started bool `json:"started"`
	// Clock is the engine's current clock (max timestamp seen for the
	// disorder-tolerant engines; last arrival's timestamp for inorder).
	Clock event.Time `json:"clock"`
	// Safe is the safe clock / watermark (Clock − K): everything below it
	// has arrived under the disorder bound.
	Safe event.Time `json:"safe"`
	// PurgeFrontier is the horizon below which intermediate state has been
	// (or will next be) reclaimed — Safe minus the query window.
	PurgeFrontier event.Time `json:"purgeFrontier"`
	// StackDepths is the live instance count per positive pattern
	// position, summed across key groups when the engine is keyed.
	StackDepths []int `json:"stackDepths"`
	// KeyAttr is the partition attribute the stacks are keyed on ("" when
	// unkeyed).
	KeyAttr string `json:"keyAttr,omitempty"`
	// KeyGroups counts live key groups (0 when unkeyed).
	KeyGroups int `json:"keyGroups"`
	// TopKeyGroups lists the heaviest key groups by live state size.
	TopKeyGroups []KeyGroupStat `json:"topKeyGroups,omitempty"`
	// NegStoreSizes is the buffered-negative count per negation component.
	NegStoreSizes []int `json:"negStoreSizes"`
	// BufferLen is auxiliary buffer occupancy: the reorder buffer for
	// kslack, the emission-order buffer for OrderedOutput.
	BufferLen int `json:"bufferLen,omitempty"`
	// Pending counts complete bindings parked until their negation gaps
	// seal.
	Pending int `json:"pending,omitempty"`
	// Vulnerable counts speculatively emitted matches that can still be
	// retracted (speculate strategy only).
	Vulnerable int `json:"vulnerable,omitempty"`
	// MatchSeq and Committed are the supervised runtime's commit horizon:
	// cumulative match emissions and the highest WAL-committed emission.
	MatchSeq  uint64 `json:"matchSeq,omitempty"`
	Committed uint64 `json:"committed,omitempty"`
	// Lineage reports the provenance subsystem's own footprint.
	Lineage LineageStats `json:"lineage"`
	// Adaptive reports the disorder controller's state when the engine runs
	// with dynamic K, SLO-driven switching, or overload degradation.
	Adaptive *AdaptiveStats `json:"adaptive,omitempty"`
	// Latency is the sampled wall-clock latency attribution digest, set by
	// the facade when Config.Latency is enabled.
	Latency *obsv.LatencyReport `json:"latency,omitempty"`
	// Inner is the wrapped engine's snapshot (kslack's in-order engine).
	Inner *StateSnapshot `json:"inner,omitempty"`
	// Shards holds per-shard snapshots for partitioned engines; the parent
	// aggregates them.
	Shards []*StateSnapshot `json:"shards,omitempty"`
}

// AdaptiveStats is the disorder controller's introspection view: what
// bound the engine is enforcing right now, the largest bound ever enforced
// (the static K the run is output-equivalent to), and the degradation and
// hybrid-switch counters.
type AdaptiveStats struct {
	// Enabled reports whether K is being derived dynamically.
	Enabled bool `json:"enabled"`
	// EffectiveK is the bound being enforced right now; NominalK the
	// quantile-derived bound before degradation clamping.
	EffectiveK event.Time `json:"effectiveK"`
	NominalK   event.Time `json:"nominalK"`
	// MaxKObserved is the largest effective K ever published.
	MaxKObserved event.Time `json:"maxKObserved"`
	// Degraded reports whether overload degradation is shedding.
	Degraded bool `json:"degraded"`
	// Shedded counts events discarded by degradation.
	Shedded uint64 `json:"shedded"`
	// Resizes counts how many times the derived K changed.
	Resizes uint64 `json:"resizes"`
	// Mode is the hybrid meta-engine's current strategy ("speculate" or
	// "native"; empty for non-hybrid engines); Switches counts handoffs.
	Mode     string `json:"mode,omitempty"`
	Switches uint64 `json:"switches,omitempty"`
}

// Aggregate sums sub-snapshots into a parent named engine, keeping the
// parts under Shards. Clock is the max over parts, Safe the min (the shard
// whose safe clock lags gates global sealing), depths and sizes sum, and
// the heaviest key groups across all parts are kept.
func Aggregate(engine string, subs []*StateSnapshot) *StateSnapshot {
	agg := &StateSnapshot{Engine: engine, Shards: subs}
	var groups []KeyGroupStat
	for _, s := range subs {
		if s == nil {
			continue
		}
		if !s.Started {
			continue
		}
		if !agg.Started || s.Clock > agg.Clock {
			agg.Clock = s.Clock
		}
		if !agg.Started || s.Safe < agg.Safe {
			agg.Safe = s.Safe
		}
		if !agg.Started || s.PurgeFrontier < agg.PurgeFrontier {
			agg.PurgeFrontier = s.PurgeFrontier
		}
		agg.Started = true
	}
	for _, s := range subs {
		if s == nil {
			continue
		}
		if len(agg.StackDepths) < len(s.StackDepths) {
			agg.StackDepths = append(agg.StackDepths, make([]int, len(s.StackDepths)-len(agg.StackDepths))...)
		}
		for i, d := range s.StackDepths {
			agg.StackDepths[i] += d
		}
		if len(agg.NegStoreSizes) < len(s.NegStoreSizes) {
			agg.NegStoreSizes = append(agg.NegStoreSizes, make([]int, len(s.NegStoreSizes)-len(agg.NegStoreSizes))...)
		}
		for i, n := range s.NegStoreSizes {
			agg.NegStoreSizes[i] += n
		}
		agg.KeyGroups += s.KeyGroups
		agg.BufferLen += s.BufferLen
		agg.Pending += s.Pending
		agg.Vulnerable += s.Vulnerable
		agg.Lineage.Enabled = agg.Lineage.Enabled || s.Lineage.Enabled
		agg.Lineage.Live += s.Lineage.Live
		agg.Lineage.Bytes += s.Lineage.Bytes
		agg.Lineage.Truncated = agg.Lineage.Truncated || s.Lineage.Truncated
		if s.Adaptive != nil {
			if agg.Adaptive == nil {
				agg.Adaptive = &AdaptiveStats{}
			}
			a := agg.Adaptive
			a.Enabled = a.Enabled || s.Adaptive.Enabled
			// Per-shard bounds can differ; report the largest (the bound
			// that gates the slowest shard).
			if s.Adaptive.EffectiveK > a.EffectiveK {
				a.EffectiveK = s.Adaptive.EffectiveK
			}
			if s.Adaptive.NominalK > a.NominalK {
				a.NominalK = s.Adaptive.NominalK
			}
			if s.Adaptive.MaxKObserved > a.MaxKObserved {
				a.MaxKObserved = s.Adaptive.MaxKObserved
			}
			a.Degraded = a.Degraded || s.Adaptive.Degraded
			a.Shedded += s.Adaptive.Shedded
			a.Resizes += s.Adaptive.Resizes
			a.Switches += s.Adaptive.Switches
			if a.Mode == "" {
				a.Mode = s.Adaptive.Mode
			}
		}
		groups = append(groups, s.TopKeyGroups...)
	}
	agg.TopKeyGroups = TopK(groups, defaultTopK)
	return agg
}

// defaultTopK is how many heaviest key groups a snapshot lists.
const defaultTopK = 8
