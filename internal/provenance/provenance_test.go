package provenance

import (
	"encoding/json"
	"strings"
	"testing"

	"oostream/internal/event"
)

func ref(typ string, ts event.Time, seq event.Seq) EventRef {
	return EventRef{Pos: 0, Type: typ, TS: ts, Seq: seq}
}

func TestRecordMatchKey(t *testing.T) {
	r := &Record{Events: []EventRef{ref("A", 1, 7), ref("B", 2, 9), ref("C", 3, 12)}}
	if got, want := r.MatchKey(), "7|9|12"; got != want {
		t.Fatalf("MatchKey = %q, want %q", got, want)
	}
	empty := &Record{}
	if got := empty.MatchKey(); got != "" {
		t.Fatalf("empty MatchKey = %q, want empty", got)
	}
}

func TestRefs(t *testing.T) {
	events := []event.Event{
		{Type: "A", TS: 10, Seq: 1},
		{Type: "B", TS: 20, Seq: 2},
	}
	refs := Refs(events)
	if len(refs) != 2 {
		t.Fatalf("Refs len = %d, want 2", len(refs))
	}
	for i, r := range refs {
		if r.Pos != i || r.Type != events[i].Type || r.TS != events[i].TS || r.Seq != events[i].Seq {
			t.Fatalf("ref %d = %+v, want event %+v at pos %d", i, r, events[i], i)
		}
	}
}

func TestRecordString(t *testing.T) {
	neg := ref("N", 15, 5)
	r := &Record{
		Kind:     KindInsert,
		Events:   []EventRef{ref("A", 10, 1), ref("B", 20, 2)},
		Key:      "3",
		KeyAttr:  "id",
		Shard:    -1,
		WindowLo: 10, WindowHi: 60,
		TriggerSeq: 2, TriggerPos: 1, Traversed: 4,
	}
	s := r.String()
	for _, want := range []string{"insert match 1|2", "A@10#1", "B@20#2", "window=[10,60]", "key=id=3", "trigger=#2@pos1", "traversed=4"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
	if strings.Contains(s, "shard=") {
		t.Fatalf("unsharded record should omit shard: %q", s)
	}

	rt := &Record{
		Kind:          KindRetract,
		Events:        []EventRef{ref("A", 10, 1)},
		Shard:         2,
		InvalidatedBy: &neg,
	}
	s = rt.String()
	for _, want := range []string{"retract match 1", "shard=2", "invalidatedBy=N@15#5"} {
		if !strings.Contains(s, want) {
			t.Fatalf("retract String() = %q, missing %q", s, want)
		}
	}

	tr := &Record{Kind: KindInsert, Events: []EventRef{ref("A", 10, 1)}, Shard: -1, Truncated: true}
	if s := tr.String(); !strings.Contains(s, "provenance=truncated") || strings.Contains(s, "trigger=") {
		t.Fatalf("truncated String() = %q, want truncated marker and no trigger", s)
	}
}

func TestSizeBytesMonotone(t *testing.T) {
	small := &Record{Events: []EventRef{ref("A", 1, 1)}}
	big := &Record{Events: []EventRef{ref("A", 1, 1), ref("B", 2, 2)}, Key: "somekey", KeyAttr: "id"}
	if small.SizeBytes() <= 0 {
		t.Fatal("SizeBytes must be positive")
	}
	if big.SizeBytes() <= small.SizeBytes() {
		t.Fatalf("bigger record should estimate more bytes: %d vs %d", big.SizeBytes(), small.SizeBytes())
	}
	inv := ref("N", 3, 3)
	withInv := &Record{Events: small.Events, InvalidatedBy: &inv}
	if withInv.SizeBytes() <= small.SizeBytes() {
		t.Fatal("InvalidatedBy should add to the estimate")
	}
}

func TestTopK(t *testing.T) {
	groups := []KeyGroupStat{
		{Key: "b", Size: 5}, {Key: "a", Size: 5}, {Key: "c", Size: 9}, {Key: "d", Size: 1},
	}
	top := TopK(groups, 3)
	if len(top) != 3 {
		t.Fatalf("TopK len = %d, want 3", len(top))
	}
	if top[0].Key != "c" || top[1].Key != "a" || top[2].Key != "b" {
		t.Fatalf("TopK order = %v, want c,a,b (size desc, key asc ties)", top)
	}
	if got := TopK([]KeyGroupStat{{Key: "x", Size: 1}}, 3); len(got) != 1 {
		t.Fatalf("TopK under k should keep all, got %v", got)
	}
}

func TestAggregate(t *testing.T) {
	subs := []*StateSnapshot{
		{
			Engine: "native", Started: true, Clock: 100, Safe: 80, PurgeFrontier: 20,
			StackDepths: []int{3, 1}, KeyGroups: 2, NegStoreSizes: []int{4},
			Pending: 1, Lineage: LineageStats{Enabled: true, Live: 1, Bytes: 200},
			TopKeyGroups: []KeyGroupStat{{Key: "1", Size: 3}},
		},
		nil, // a shard that produced no snapshot must be skipped
		{
			Engine: "native", Started: true, Clock: 120, Safe: 70, PurgeFrontier: 10,
			StackDepths: []int{2, 2}, KeyGroups: 1, NegStoreSizes: []int{1},
			Pending: 2, Vulnerable: 3, BufferLen: 5,
			Lineage:      LineageStats{Enabled: true, Live: 2, Bytes: 300, Truncated: true},
			TopKeyGroups: []KeyGroupStat{{Key: "2", Size: 7}},
		},
	}
	agg := Aggregate("shard(native)", subs)
	if agg.Engine != "shard(native)" || !agg.Started {
		t.Fatalf("agg header wrong: %+v", agg)
	}
	if agg.Clock != 120 || agg.Safe != 70 || agg.PurgeFrontier != 10 {
		t.Fatalf("clock/safe/frontier = %d/%d/%d, want 120/70/10", agg.Clock, agg.Safe, agg.PurgeFrontier)
	}
	if agg.StackDepths[0] != 5 || agg.StackDepths[1] != 3 {
		t.Fatalf("StackDepths = %v, want [5 3]", agg.StackDepths)
	}
	if agg.KeyGroups != 3 || agg.NegStoreSizes[0] != 5 || agg.Pending != 3 || agg.Vulnerable != 3 || agg.BufferLen != 5 {
		t.Fatalf("sums wrong: %+v", agg)
	}
	if !agg.Lineage.Enabled || agg.Lineage.Live != 3 || agg.Lineage.Bytes != 500 || !agg.Lineage.Truncated {
		t.Fatalf("lineage agg wrong: %+v", agg.Lineage)
	}
	if len(agg.TopKeyGroups) != 2 || agg.TopKeyGroups[0].Key != "2" {
		t.Fatalf("TopKeyGroups = %v, want key 2 first", agg.TopKeyGroups)
	}
	if len(agg.Shards) != 3 {
		t.Fatalf("Shards must keep all parts incl. nil, got %d", len(agg.Shards))
	}
}

func TestAggregateAllUnstarted(t *testing.T) {
	agg := Aggregate("shard(native)", []*StateSnapshot{{Engine: "native"}, {Engine: "native"}})
	if agg.Started || agg.Clock != 0 || agg.Safe != 0 {
		t.Fatalf("unstarted aggregate should stay zero: %+v", agg)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	s := &StateSnapshot{
		Engine: "native", Started: true, Clock: 50, Safe: 30, PurgeFrontier: -10,
		StackDepths:   []int{1, 2},
		KeyGroups:     4,
		TopKeyGroups:  []KeyGroupStat{{Key: "7", Size: 3}},
		NegStoreSizes: []int{0},
		Lineage:       LineageStats{Enabled: true, Live: 2, Bytes: 400},
		Inner:         &StateSnapshot{Engine: "inorder", StackDepths: []int{1, 2}, NegStoreSizes: []int{0}},
	}
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"stackDepths":[1,2]`, `"keyGroups":4`, `"topKeyGroups"`, `"lineage"`, `"inner"`} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("JSON %s missing %q", raw, want)
		}
	}
	var back StateSnapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Engine != "native" || back.Inner == nil || back.Inner.Engine != "inorder" || back.Lineage.Live != 2 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}
