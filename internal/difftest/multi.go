package difftest

import (
	"fmt"
	"math/rand"
	"os"

	"oostream"
	"oostream/internal/event"
	"oostream/internal/oracle"
	"oostream/internal/plan"
	"oostream/internal/recovery"
)

// multiQueryCount is how many queries RunMulti registers per trial: the
// case's own query plus extras derived from the seed alone — never from
// the arrival list — so shrinking the arrival keeps the registry fixed
// and shrinking stays sound.
const multiQueryCount = 4

// multiQuery is one registered query of a multi-query trial with its
// per-query oracle truth.
type multiQuery struct {
	id    string
	p     *plan.Plan
	q     *oostream.Query
	truth []plan.Match
}

// RunMulti executes the multi-query differential: a QuerySet with several
// registered queries must equal, per query, both the oracle and an
// independent single-query engine — the shared admission pass, the
// event-type index, and the prefix gates must be pure optimizations.
// Beyond the all-strategies check it verifies batch-ingestion exactness,
// per-query lineage, live Register/Unregister at heartbeat boundaries,
// and supervised kill/recover with the v2 (per-query namespaced)
// checkpoint format, including live mutations across crashes.
//
// Like Run it is a pure function of the Case (temp-directory naming
// aside), so shrinking against it is sound.
func RunMulti(c Case) *Failure {
	if len(c.Arrival) == 0 {
		return nil
	}
	queries, f := multiQueries(c)
	if f != nil {
		return f
	}
	sorted := make([]event.Event, len(c.Arrival))
	copy(sorted, c.Arrival)
	event.SortByTime(sorted)
	for i := range queries {
		queries[i].truth = oracle.Matches(queries[i].p, sorted)
	}
	if f := multiStrategies(c, queries); f != nil {
		return f
	}
	if f := multiBatch(c, queries); f != nil {
		return f
	}
	if f := multiProvenance(c, queries); f != nil {
		return f
	}
	if f := multiLive(c, queries); f != nil {
		return f
	}
	return multiCrash(c, queries)
}

// ShrinkMulti minimizes a failing multi-query case's arrival list while
// preserving failure, exactly as Shrink does for Run. The registered
// queries are a function of the seed, which minimization never changes.
func ShrinkMulti(f *Failure) *Failure {
	best := f
	runs := 0
	minimize(best.Case.Arrival, func(sub []event.Event) bool {
		if runs >= maxShrinkRuns {
			return false
		}
		runs++
		c := best.Case
		c.Arrival = sub
		if fail := RunMulti(c); fail != nil {
			best = fail
			return true
		}
		return false
	})
	return best
}

// multiQueries compiles the trial's registry: q0 is the case's query,
// q1..q3 derive from the seed.
func multiQueries(c Case) ([]multiQuery, *Failure) {
	rng := rand.New(rand.NewSource(c.Seed ^ 0x5e7a11))
	queries := make([]multiQuery, 0, multiQueryCount)
	for i := 0; i < multiQueryCount; i++ {
		src := c.Query
		if i > 0 {
			src, _ = genQuery(rng)
		}
		p, err := plan.ParseAndCompile(src, Schema())
		if err != nil {
			return nil, &Failure{Case: c, Check: fmt.Sprintf("multi-compile/q%d", i), Diff: err.Error()}
		}
		q, err := oostream.Compile(src, Schema())
		if err != nil {
			return nil, &Failure{Case: c, Check: fmt.Sprintf("multi-compile/q%d", i), Diff: err.Error()}
		}
		queries = append(queries, multiQuery{id: fmt.Sprintf("q%d", i), p: p, q: q})
	}
	return queries, nil
}

// multiAdvanceEvery derives a small fan-out cadence from the seed so the
// AdvanceEvery path actually fires on difftest-sized streams — the default
// 256 releases would never trigger here, leaving the periodic fan (and its
// between-batches placement) unsoaked. By heartbeat-insertion invariance
// (I9) the cadence must never change any query's output.
func multiAdvanceEvery(c Case) int { return 1 + int(uint64(c.Seed)%7) }

// newMultiSet builds a QuerySet with the full registry registered.
func newMultiSet(cfg oostream.QuerySetConfig, queries []multiQuery) (*oostream.QuerySet, error) {
	set, err := oostream.NewQuerySet(cfg)
	if err != nil {
		return nil, err
	}
	for _, mq := range queries {
		if err := set.Register(mq.id, mq.q); err != nil {
			return nil, err
		}
	}
	return set, nil
}

// byQuery splits a tagged match stream into per-query slices.
func byQuery(ms []plan.Match) map[string][]plan.Match {
	out := make(map[string][]plan.Match)
	for _, m := range ms {
		out[m.Query] = append(out[m.Query], m)
	}
	return out
}

// sameOrderedTagged compares two tagged match sequences exactly (kind,
// key, and owning query, in emission order).
func sameOrderedTagged(want, got []plan.Match) string {
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if want[i].Kind != got[i].Kind || want[i].Key() != got[i].Key() || want[i].Query != got[i].Query {
			return fmt.Sprintf("emission %d: want %v %s (%s), got %v %s (%s)",
				i, want[i].Kind, want[i].Key(), want[i].Query, got[i].Kind, got[i].Key(), got[i].Query)
		}
	}
	if len(want) != len(got) {
		return fmt.Sprintf("want %d matches, got %d", len(want), len(got))
	}
	return ""
}

// multiStrategies checks every strategy's QuerySet against the per-query
// oracle and against an independent single-query engine on the same
// arrival order. The independent baseline for the in-order strategy is
// kslack: inside a QuerySet the shared reorder buffer sorts the stream,
// which makes the in-order inner engine exact under the bound — the
// standalone equivalent of a K-slack engine.
func multiStrategies(c Case, queries []multiQuery) *Failure {
	for _, st := range oostream.Strategies() {
		if st == oostream.StrategyHybrid {
			// QuerySet rejects the hybrid strategy: inner engines run behind
			// the shared reorder buffer, so the meta-engine never observes
			// disorder. Hybrid is covered by the single-engine adaptive
			// differential instead.
			continue
		}
		set, err := newMultiSet(oostream.QuerySetConfig{Strategy: st, K: c.K, AdvanceEvery: multiAdvanceEvery(c)}, queries)
		if err != nil {
			return &Failure{Case: c, Check: "multi-" + string(st), Diff: err.Error()}
		}
		got := byQuery(set.ProcessAll(c.Arrival))
		base := st
		if st == oostream.StrategyInOrder {
			base = oostream.StrategyKSlack
		}
		for _, mq := range queries {
			check := fmt.Sprintf("multi-%s/%s", st, mq.id)
			if ok, diff := plan.SameResults(mq.truth, got[mq.id]); !ok {
				return &Failure{Case: c, Check: check, Diff: diff, Truth: len(mq.truth)}
			}
			ind := run(mq.q, oostream.Config{Strategy: base, K: c.K}, c.Arrival)
			if ok, diff := plan.SameResults(ind, got[mq.id]); !ok {
				return &Failure{Case: c, Check: check + "-independent", Diff: diff, Truth: len(ind)}
			}
		}
	}
	return nil
}

// multiBatch checks batch-ingestion exactness on the QuerySet: a
// seed-drawn batch partition of the arrival (with nil and empty no-op
// batches interleaved) must produce the identical tagged emission
// sequence as per-event calls — not merely the same multiset.
func multiBatch(c Case, queries []multiQuery) *Failure {
	cfg := oostream.QuerySetConfig{Strategy: oostream.StrategyNative, K: c.K, AdvanceEvery: multiAdvanceEvery(c)}
	perSet, err := newMultiSet(cfg, queries)
	if err != nil {
		return &Failure{Case: c, Check: "multi-batch", Diff: err.Error()}
	}
	want := perSet.ProcessAll(c.Arrival)

	batchSet, err := newMultiSet(cfg, queries)
	if err != nil {
		return &Failure{Case: c, Check: "multi-batch", Diff: err.Error()}
	}
	rng := rand.New(rand.NewSource(c.Seed ^ 0x6ba7c9))
	var got []plan.Match
	i := 0
	for _, n := range randomSizes(rng, len(c.Arrival)) {
		got = append(got, batchSet.ProcessBatch(nil)...) // documented no-op
		got = append(got, batchSet.ProcessBatch(c.Arrival[i:i+n])...)
		got = append(got, batchSet.ProcessBatch([]event.Event{})...) // ditto
		i += n
	}
	got = append(got, batchSet.Flush()...)
	if diff := sameOrderedTagged(want, got); diff != "" {
		return &Failure{Case: c, Check: "multi-batch", Diff: diff, Truth: len(want)}
	}
	return nil
}

// multiProvenance checks that lineage records survive the multi-query
// path: every tagged match's record must validate against its own query's
// plan, and enabling provenance must not change any query's multiset.
func multiProvenance(c Case, queries []multiQuery) *Failure {
	cfg := oostream.QuerySetConfig{Strategy: oostream.StrategyNative, K: c.K, Provenance: true, AdvanceEvery: multiAdvanceEvery(c)}
	set, err := newMultiSet(cfg, queries)
	if err != nil {
		return &Failure{Case: c, Check: "multi-prov", Diff: err.Error()}
	}
	got := byQuery(set.ProcessAll(c.Arrival))
	universe := seqUniverse(c.Arrival)
	for _, mq := range queries {
		if ok, diff := plan.SameResults(mq.truth, got[mq.id]); !ok {
			return &Failure{Case: c, Check: "multi-prov/" + mq.id, Diff: diff, Truth: len(mq.truth)}
		}
		if msg := validateLineage(mq.p, universe, got[mq.id]); msg != "" {
			return &Failure{Case: c, Check: "multi-prov/" + mq.id + "-lineage", Diff: msg, Truth: len(mq.truth)}
		}
	}
	return nil
}

// multiLive checks live Register/Unregister semantics: a query joining or
// leaving at a seed-drawn heartbeat boundary must see exactly the events
// the shared buffer releases while it is registered — its results equal
// the oracle over that visible substream — while undisturbed queries
// still equal the full-stream oracle (the boundary heartbeats are safe,
// so I9 applies).
func multiLive(c Case, queries []multiQuery) *Failure {
	n := len(c.Arrival)
	rng := rand.New(rand.NewSource(c.Seed ^ 0x11fe7a))
	regAt, unregAt := rng.Intn(n+1), rng.Intn(n+1)

	// minFuture[i] is the smallest timestamp at or after arrival i; the
	// strongest safe heartbeat before offering event i is minFuture[i]+K
	// (anything higher could make a future arrival late). It drains the
	// buffer down to exactly the events above minFuture[i].
	const maxTime = event.Time(1<<62 - 1)
	minFuture := make([]event.Time, n+1)
	minFuture[n] = maxTime
	for i := n - 1; i >= 0; i-- {
		minFuture[i] = minFuture[i+1]
		if c.Arrival[i].TS < minFuture[i] {
			minFuture[i] = c.Arrival[i].TS
		}
	}
	// wmAt is the shared watermark right after the boundary work at offset
	// i. The watermark is monotone, so it is the natural maxSeen−K
	// frontier over the processed prefix joined with every boundary
	// heartbeat at or before i. For i < n the boundary at i dominates both
	// (K-boundedness bounds the natural frontier; minFuture is
	// nondecreasing, so earlier boundaries sit below it) — but at i == n
	// no heartbeat fires, and an earlier boundary may have pushed the
	// watermark above the natural end-of-stream frontier.
	wmAt := func(i int) event.Time {
		wm, started := event.Time(0), false
		for _, e := range c.Arrival[:i] {
			if !started || e.TS > wm {
				wm, started = e.TS, true
			}
		}
		if !started {
			// Nothing processed: nothing released either way.
			return c.Arrival[0].TS - c.K - 1
		}
		wm -= c.K
		for _, b := range []int{regAt, unregAt} {
			if b <= i && minFuture[b] != maxTime && minFuture[b] > wm {
				wm = minFuture[b]
			}
		}
		return wm
	}

	set, err := oostream.NewQuerySet(oostream.QuerySetConfig{Strategy: oostream.StrategyNative, K: c.K, AdvanceEvery: multiAdvanceEvery(c)})
	if err != nil {
		return &Failure{Case: c, Check: "multi-live", Diff: err.Error()}
	}
	for _, mq := range queries[:3] {
		if err := set.Register(mq.id, mq.q); err != nil {
			return &Failure{Case: c, Check: "multi-live", Diff: err.Error()}
		}
	}
	lateQ, goneQ := queries[3], queries[1]
	var out, goneFinal []plan.Match
	for i := 0; i <= n; i++ {
		if i == regAt || i == unregAt {
			if minFuture[i] != maxTime {
				out = append(out, set.Advance(minFuture[i]+c.K)...)
			}
		}
		if i == regAt {
			if err := set.Register(lateQ.id, lateQ.q); err != nil {
				return &Failure{Case: c, Check: "multi-live-register", Diff: err.Error()}
			}
		}
		if i == unregAt {
			fin, err := set.Unregister(goneQ.id)
			if err != nil {
				return &Failure{Case: c, Check: "multi-live-unregister", Diff: err.Error()}
			}
			goneFinal = fin
		}
		if i == n {
			break
		}
		out = append(out, set.Process(c.Arrival[i])...)
	}
	out = append(out, set.Flush()...)
	got := byQuery(out)

	// Queries registered for the whole stream are untouched by the
	// boundary heartbeats and the neighbors' churn.
	for _, mq := range []multiQuery{queries[0], queries[2]} {
		if ok, diff := plan.SameResults(mq.truth, got[mq.id]); !ok {
			return &Failure{Case: c, Check: "multi-live/" + mq.id, Diff: diff, Truth: len(mq.truth)}
		}
	}

	// The departing query saw exactly the events released before its
	// removal: arrivals before the boundary at or below the watermark.
	wm := wmAt(unregAt)
	var visGone []event.Event
	for j, e := range c.Arrival {
		if j < unregAt && e.TS <= wm {
			visGone = append(visGone, e)
		}
	}
	sortedGone := make([]event.Event, len(visGone))
	copy(sortedGone, visGone)
	event.SortByTime(sortedGone)
	goneTruth := oracle.Matches(goneQ.p, sortedGone)
	goneGot := append(append([]plan.Match{}, got[goneQ.id]...), goneFinal...)
	if ok, diff := plan.SameResults(goneTruth, goneGot); !ok {
		return &Failure{Case: c, Check: "multi-live/" + goneQ.id + "-departed", Diff: diff, Truth: len(goneTruth)}
	}

	// The late query sees exactly the events released after it joined:
	// later arrivals plus earlier ones still buffered above the watermark.
	wm = wmAt(regAt)
	var visLate []event.Event
	for j, e := range c.Arrival {
		if j >= regAt || e.TS > wm {
			visLate = append(visLate, e)
		}
	}
	sortedLate := make([]event.Event, len(visLate))
	copy(sortedLate, visLate)
	event.SortByTime(sortedLate)
	lateTruth := oracle.Matches(lateQ.p, sortedLate)
	if ok, diff := plan.SameResults(lateTruth, got[lateQ.id]); !ok {
		return &Failure{Case: c, Check: "multi-live/" + lateQ.id + "-joined", Diff: diff, Truth: len(lateTruth)}
	}
	// And equals an independent engine over that substream (a subsequence
	// of a K-bounded arrival is K-bounded, so the bound still holds).
	ind := run(lateQ.q, oostream.Config{Strategy: oostream.StrategyNative, K: c.K}, visLate)
	if ok, diff := plan.SameResults(ind, got[lateQ.id]); !ok {
		return &Failure{Case: c, Check: "multi-live/" + lateQ.id + "-independent", Diff: diff, Truth: len(ind)}
	}
	return nil
}

// multiCrash checks the supervised QuerySet across kill/recover cycles
// with the v2 checkpoint format: the crashed run's tagged emission
// sequence must equal the uninterrupted baseline exactly, including live
// Register/Unregister mutations performed at offsets away from the
// crashes (each mutation forces a checkpoint, so the mutated registry
// must survive recovery). A second pair runs without mutations and with
// the newest checkpoint corrupted after each crash, which must fall back
// to the previous valid one transparently.
func multiCrash(c Case, queries []multiQuery) *Failure {
	n := len(c.Arrival)
	rng := rand.New(rand.NewSource(c.Seed ^ 0x7c4a5e))
	regAt, unregAt := rng.Intn(n+1), rng.Intn(n+1)
	var crashes []int
	for _, off := range drawOffsets(rng, n, crashPoints+2) {
		if off != regAt && off != unregAt && len(crashes) < crashPoints {
			crashes = append(crashes, off)
		}
	}
	mk := func(dir string) (*oostream.SupervisedQuerySet, error) {
		s, err := oostream.NewSupervisedQuerySet(
			oostream.QuerySetConfig{Strategy: oostream.StrategyNative, K: c.K, AdvanceEvery: multiAdvanceEvery(c)},
			oostream.SupervisorConfig{Dir: dir, CheckpointEvery: 5, DisableFsync: true})
		if err != nil {
			return nil, err
		}
		for _, mq := range queries[:3] {
			if err := s.Register(mq.id, mq.q); err != nil {
				s.Close()
				return nil, err
			}
		}
		return s, nil
	}

	// Live mutations, no corruption.
	want, err := runSupervisedSet(mk, c.Arrival, queries, regAt, unregAt, nil, false)
	if err != nil {
		return &Failure{Case: c, Check: "multi-crash-baseline", Diff: err.Error()}
	}
	wq := byQuery(want)
	for _, mq := range []multiQuery{queries[0], queries[2]} {
		if ok, diff := plan.SameResults(mq.truth, wq[mq.id]); !ok {
			return &Failure{Case: c, Check: "multi-crash-truth/" + mq.id, Diff: diff, Truth: len(mq.truth)}
		}
	}
	got, err := runSupervisedSet(mk, c.Arrival, queries, regAt, unregAt, crashes, false)
	if err != nil {
		return &Failure{Case: c, Check: "multi-crash", Diff: err.Error()}
	}
	if diff := sameOrderedTagged(want, got); diff != "" {
		return &Failure{Case: c, Check: "multi-crash", Diff: diff, Truth: len(want)}
	}

	// Checkpoint corruption with a static registry. (Corruption and live
	// mutation are exclusive by design: a mutation's durability lives in
	// the checkpoint it forces — the WAL replays only events — so losing
	// that checkpoint legitimately loses the mutation.)
	want, err = runSupervisedSet(mk, c.Arrival, queries, -1, -1, nil, false)
	if err != nil {
		return &Failure{Case: c, Check: "multi-crash-corrupt-baseline", Diff: err.Error()}
	}
	got, err = runSupervisedSet(mk, c.Arrival, queries, -1, -1, crashes, true)
	if err != nil {
		return &Failure{Case: c, Check: "multi-crash-corrupt", Diff: err.Error()}
	}
	if diff := sameOrderedTagged(want, got); diff != "" {
		return &Failure{Case: c, Check: "multi-crash-corrupt", Diff: diff, Truth: len(want)}
	}
	return nil
}

// runSupervisedSet drives one supervised multi-query run: queries[3] is
// live-registered before offering arrival regAt, queries[1] is
// live-unregistered before offering arrival unregAt (−1 disables either),
// and the process is killed and recovered at each crash offset,
// re-delivering the previous event (an at-least-once source) which must
// emit nothing.
func runSupervisedSet(mk func(string) (*oostream.SupervisedQuerySet, error), events []event.Event, queries []multiQuery, regAt, unregAt int, crashes []int, corrupt bool) ([]plan.Match, error) {
	dir, err := os.MkdirTemp("", "oomulti-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	s, err := mk(dir)
	if err != nil {
		return nil, err
	}
	out, err := s.Start()
	if err != nil {
		return nil, err
	}
	ci := 0
	for i := 0; i <= len(events); i++ {
		for ci < len(crashes) && crashes[ci] == i {
			ci++
			s.Kill()
			if corrupt && recovery.CountValidCheckpoints(dir) >= 2 {
				_ = recovery.CorruptNewestCheckpoint(dir)
			}
			s, err = mk(dir)
			if err != nil {
				return nil, err
			}
			ms, err := s.Start()
			if err != nil {
				return nil, fmt.Errorf("recover after crash at %d: %w", i, err)
			}
			out = append(out, ms...)
			if i > 0 {
				dup, err := s.Process(events[i-1])
				if err != nil {
					return nil, fmt.Errorf("redeliver %d: %w", i-1, err)
				}
				if len(dup) != 0 {
					return nil, fmt.Errorf("redelivered event %d emitted %d matches", i-1, len(dup))
				}
			}
		}
		if i == regAt {
			if err := s.Register(queries[3].id, queries[3].q); err != nil {
				return nil, fmt.Errorf("live register: %w", err)
			}
		}
		if i == unregAt {
			ms, err := s.Unregister(queries[1].id)
			if err != nil {
				return nil, fmt.Errorf("live unregister: %w", err)
			}
			out = append(out, ms...)
		}
		if i == len(events) {
			break
		}
		ms, err := s.Process(events[i])
		if err != nil {
			return nil, fmt.Errorf("process %d: %w", i, err)
		}
		out = append(out, ms...)
	}
	ms, err := s.Flush()
	if err != nil {
		return nil, err
	}
	out = append(out, ms...)
	if err := s.Close(); err != nil {
		return nil, err
	}
	return out, nil
}
