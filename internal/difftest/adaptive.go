package difftest

import (
	"bytes"
	"fmt"

	"oostream"
	"oostream/internal/adaptive"
	"oostream/internal/event"
	"oostream/internal/hybrid"
	"oostream/internal/obsv"
	"oostream/internal/oracle"
	"oostream/internal/plan"
)

// RunAdaptive is the adaptive-disorder-control differential: for a trial's
// (query, arrival, K) it checks the three correctness claims the adaptive
// subsystem makes, each reducible to the oracle on a sorted event set.
//
//   - Dynamic K (native): an adaptive engine's net output equals the
//     oracle over exactly the events it admitted (everything minus the
//     traced drops and sheds), AND equals a static-K run with
//     K = MaxKObserved fed only the admitted events — the monotone
//     frontier makes dynamic K a pure admission filter.
//   - Shedding (kslack): with a tiny buffer limit, the shed events are
//     exactly those traced and counted, and the net output equals the
//     oracle over the surviving events.
//   - Hybrid switching: with a static bound dominating the disorder, the
//     net output across forced switches (at len/3 and 2·len/3) equals the
//     full oracle; with adaptive K on top, it equals the admitted-events
//     oracle. The facade StrategyHybrid run and the adaptive-native
//     checkpoint round-trip must agree too.
//
// Like Run it is a pure function of the Case, so shrinking is sound.
func RunAdaptive(c Case) *Failure {
	if len(c.Arrival) == 0 {
		return nil
	}
	p, err := plan.ParseAndCompile(c.Query, Schema())
	if err != nil {
		return &Failure{Case: c, Check: "compile", Diff: err.Error()}
	}
	q, err := oostream.Compile(c.Query, Schema())
	if err != nil {
		return &Failure{Case: c, Check: "compile", Diff: err.Error()}
	}
	sorted := make([]event.Event, len(c.Arrival))
	copy(sorted, c.Arrival)
	event.SortByTime(sorted)
	truth := oracle.Matches(p, sorted)

	// An adaptive config that must genuinely adapt: it starts at a quarter
	// of the case bound and may grow back up to it, with a fast decision
	// cadence so even short trials make several decisions.
	acfg := oostream.Adaptive{
		Enabled:       true,
		InitialK:      1 + c.K/4,
		MinK:          1,
		MaxK:          c.K,
		DecisionEvery: 16,
		GrowAfter:     1,
		ShrinkAfter:   2,
	}

	if f := adaptiveNative(c, p, q, acfg); f != nil {
		return f
	}
	if f := adaptiveShedding(c, p, q, acfg); f != nil {
		return f
	}
	if f := hybridSwitches(c, p, truth); f != nil {
		return f
	}
	if ok, diff := plan.SameResults(truth, run(q, oostream.Config{Strategy: oostream.StrategyHybrid, K: c.K}, c.Arrival)); !ok {
		return &Failure{Case: c, Check: "hybrid-facade", Diff: diff, Truth: len(truth)}
	}
	if f := adaptiveCheckpoint(c, q, acfg); f != nil {
		return f
	}
	return nil
}

// rejectedCollector gathers the Seq numbers of dropped (late) and shed
// events from the trace stream.
type rejectedCollector struct {
	dropped map[event.Seq]bool
	shed    map[event.Seq]bool
}

func newRejectedCollector() *rejectedCollector {
	return &rejectedCollector{dropped: map[event.Seq]bool{}, shed: map[event.Seq]bool{}}
}

func (rc *rejectedCollector) Trace(te obsv.TraceEvent) {
	switch te.Op {
	case obsv.OpDrop:
		rc.dropped[te.Seq] = true
	case obsv.OpShed:
		rc.shed[te.Seq] = true
	}
}

// admitted returns the arrival subsequence that survived admission.
func (rc *rejectedCollector) admitted(arrival []event.Event) []event.Event {
	out := make([]event.Event, 0, len(arrival))
	for _, e := range arrival {
		if !rc.dropped[e.Seq] && !rc.shed[e.Seq] {
			out = append(out, e)
		}
	}
	return out
}

// oracleOn computes the oracle over an arbitrary event subset, sorted.
func oracleOn(p *plan.Plan, events []event.Event) []plan.Match {
	s := make([]event.Event, len(events))
	copy(s, events)
	event.SortByTime(s)
	return oracle.Matches(p, s)
}

// adaptiveNative checks the dynamic-K claims on the native engine.
func adaptiveNative(c Case, p *plan.Plan, q *oostream.Query, acfg oostream.Adaptive) *Failure {
	rc := newRejectedCollector()
	en := oostream.MustNewEngine(q, oostream.Config{Strategy: oostream.StrategyNative, Adaptive: acfg, Trace: rc})
	got := en.ProcessAll(c.Arrival)
	admitted := rc.admitted(c.Arrival)
	wantAdm := oracleOn(p, admitted)
	if ok, diff := plan.SameResults(wantAdm, got); !ok {
		return &Failure{Case: c, Check: "adaptive-native", Diff: diff, Truth: len(wantAdm)}
	}
	// Accounting: the trace and the counters must agree on every rejection.
	m := en.Metrics()
	if int(m.EventsLate) != len(rc.dropped) || int(m.SheddedEvents) != len(rc.shed) {
		return &Failure{Case: c, Check: "adaptive-native-counts",
			Diff: fmt.Sprintf("late counter %d vs %d traced drops, shed counter %d vs %d traced sheds",
				m.EventsLate, len(rc.dropped), m.SheddedEvents, len(rc.shed))}
	}
	// The static-max-K equivalence: a plain native engine at K =
	// MaxKObserved, fed only the admitted events, reproduces the net
	// multiset (and drops nothing — every admitted event was within the
	// max bound of the clock at admission).
	snap := en.StateSnapshot()
	if snap == nil || snap.Adaptive == nil {
		return &Failure{Case: c, Check: "adaptive-native-snapshot", Diff: "no adaptive state in snapshot"}
	}
	sen := oostream.MustNewEngine(q, oostream.Config{Strategy: oostream.StrategyNative, K: oostream.Time(snap.Adaptive.MaxKObserved)})
	staticGot := sen.ProcessAll(admitted)
	if sm := sen.Metrics(); sm.EventsLate != 0 {
		return &Failure{Case: c, Check: "adaptive-native-staticmax",
			Diff: fmt.Sprintf("static K=MaxKObserved=%d run dropped %d admitted events", snap.Adaptive.MaxKObserved, sm.EventsLate)}
	}
	if ok, diff := plan.SameResults(staticGot, got); !ok {
		return &Failure{Case: c, Check: "adaptive-native-staticmax", Diff: diff, Truth: len(staticGot)}
	}
	return nil
}

// adaptiveShedding checks overload degradation on the kslack strategy: a
// deliberately tiny buffer limit forces sheds, which must be exactly the
// traced/counted events, with the net output exact over the survivors.
func adaptiveShedding(c Case, p *plan.Plan, q *oostream.Query, acfg oostream.Adaptive) *Failure {
	acfg.Limits = oostream.Limits{MaxBufferedEvents: 3}
	rc := newRejectedCollector()
	en := oostream.MustNewEngine(q, oostream.Config{Strategy: oostream.StrategyKSlack, Adaptive: acfg, Trace: rc})
	got := en.ProcessAll(c.Arrival)
	m := en.Metrics()
	if int(m.SheddedEvents) != len(rc.shed) {
		return &Failure{Case: c, Check: "adaptive-kslack-counts",
			Diff: fmt.Sprintf("shed counter %d vs %d traced sheds", m.SheddedEvents, len(rc.shed))}
	}
	survivors := rc.admitted(c.Arrival)
	want := oracleOn(p, survivors)
	if ok, diff := plan.SameResults(want, got); !ok {
		return &Failure{Case: c, Check: "adaptive-kslack-shed", Diff: diff, Truth: len(want)}
	}
	return nil
}

// hybridSwitches checks the meta-engine's switch protocol: forced switches
// at len/3 and 2·len/3 with a dominating static bound must not perturb the
// net multiset; with adaptive K the result is exact over the admitted set.
func hybridSwitches(c Case, p *plan.Plan, truth []plan.Match) *Failure {
	for _, startNative := range []bool{false, true} {
		ctrl, err := adaptive.NewController(adaptive.Config{InitialK: c.K})
		if err != nil {
			return &Failure{Case: c, Check: "hybrid-switch", Diff: err.Error()}
		}
		en, err := hybrid.New(p, hybrid.Options{Controller: ctrl, StartNative: startNative})
		if err != nil {
			return &Failure{Case: c, Check: "hybrid-switch", Diff: err.Error()}
		}
		var got []plan.Match
		for i, e := range c.Arrival {
			got = append(got, en.Process(e)...)
			if i == len(c.Arrival)/3 || i == 2*len(c.Arrival)/3 {
				got = append(got, en.ForceSwitch()...)
			}
		}
		got = append(got, en.Flush()...)
		if ok, diff := plan.SameResults(truth, got); !ok {
			return &Failure{Case: c, Check: fmt.Sprintf("hybrid-switch(startNative=%v)", startNative), Diff: diff, Truth: len(truth)}
		}
	}

	// Adaptive K inside the hybrid: net output equals the oracle over the
	// events the meta-engine admitted, across forced switches.
	ctrl, err := adaptive.NewController(adaptive.Config{
		Enabled: true, InitialK: 1 + c.K/4, MinK: 1, MaxK: c.K,
		DecisionEvery: 16, GrowAfter: 1, ShrinkAfter: 2,
	})
	if err != nil {
		return &Failure{Case: c, Check: "hybrid-adaptive", Diff: err.Error()}
	}
	en, err := hybrid.New(p, hybrid.Options{Controller: ctrl})
	if err != nil {
		return &Failure{Case: c, Check: "hybrid-adaptive", Diff: err.Error()}
	}
	rc := newRejectedCollector()
	en.Observe(nil, rc)
	var got []plan.Match
	for i, e := range c.Arrival {
		got = append(got, en.Process(e)...)
		if i == len(c.Arrival)/3 || i == 2*len(c.Arrival)/3 {
			got = append(got, en.ForceSwitch()...)
		}
	}
	got = append(got, en.Flush()...)
	want := oracleOn(p, rc.admitted(c.Arrival))
	if ok, diff := plan.SameResults(want, got); !ok {
		return &Failure{Case: c, Check: "hybrid-adaptive", Diff: diff, Truth: len(want)}
	}
	return nil
}

// adaptiveCheckpoint checks that the controller's state (estimator,
// frontier, published bounds) round-trips through a mid-stream
// checkpoint: the restored engine must finish the stream with the exact
// output of the uninterrupted run.
func adaptiveCheckpoint(c Case, q *oostream.Query, acfg oostream.Adaptive) *Failure {
	cfg := oostream.Config{Strategy: oostream.StrategyNative, Adaptive: acfg}
	full := run(q, cfg, c.Arrival)

	en := oostream.MustNewEngine(q, cfg)
	half := len(c.Arrival) / 2
	var got []plan.Match
	for _, e := range c.Arrival[:half] {
		got = append(got, en.Process(e)...)
	}
	var buf bytes.Buffer
	if err := en.Checkpoint(&buf); err != nil {
		return &Failure{Case: c, Check: "adaptive-checkpoint", Diff: err.Error()}
	}
	restored, err := oostream.RestoreEngine(q, &buf)
	if err != nil {
		return &Failure{Case: c, Check: "adaptive-checkpoint", Diff: err.Error()}
	}
	for _, e := range c.Arrival[half:] {
		got = append(got, restored.Process(e)...)
	}
	got = append(got, restored.Flush()...)
	if ok, diff := plan.SameResults(full, got); !ok {
		return &Failure{Case: c, Check: "adaptive-checkpoint", Diff: diff, Truth: len(full)}
	}
	return nil
}
