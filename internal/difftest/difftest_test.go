package difftest

import (
	"fmt"
	"testing"

	"oostream/internal/event"
	"oostream/internal/gen"
	"oostream/internal/oracle"
	"oostream/internal/plan"
)

// trialCount is the randomized-trial budget of the main differential test.
// The acceptance bar is ≥500 trials in well under a minute; trials run as
// parallel subtests.
const trialCount = 500

// TestDifferentialTrials is the harness's front door: trialCount seeds,
// each generating a random query × stream × disorder trial and running
// every engine configuration against the oracle. Failures are shrunk and
// reported with a paste-ready repro.
func TestDifferentialTrials(t *testing.T) {
	n := trialCount
	if testing.Short() {
		n = 60
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%04d", seed), func(t *testing.T) {
			t.Parallel()
			if fail := Run(Generate(seed)); fail != nil {
				t.Fatalf("%s", Shrink(fail).Report())
			}
		})
	}
}

// TestGeneratorCoverage asserts the trial distribution actually exercises
// the interesting regions: negation, disorder, partitionable queries (the
// shard checks only run on those), timestamp ties, and non-empty truth.
// Without this, a generator regression could silently hollow out the
// differential test.
func TestGeneratorCoverage(t *testing.T) {
	var negated, partitionable, disordered, ties, nonEmptyTruth int
	n := trialCount
	if testing.Short() {
		n = 60
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		c := Generate(seed)
		p, err := plan.ParseAndCompile(c.Query, Schema())
		if err != nil {
			t.Fatalf("seed %d: generated invalid query %q: %v", seed, c.Query, err)
		}
		if p.HasNegation() {
			negated++
		}
		if p.PartitionableBy(PartitionAttr) {
			partitionable++
		}
		if gen.OOORatio(c.Arrival) > 0 {
			disordered++
		}
		if gen.MaxDelay(c.Arrival) > c.K {
			t.Fatalf("seed %d: K=%d below realized disorder %d", seed, c.K, gen.MaxDelay(c.Arrival))
		}
		seen := map[event.Time]bool{}
		for _, e := range c.Arrival {
			if seen[e.TS] {
				ties++
				break
			}
			seen[e.TS] = true
		}
		sorted := make([]event.Event, len(c.Arrival))
		copy(sorted, c.Arrival)
		event.SortByTime(sorted)
		if len(oracle.Matches(p, sorted)) > 0 {
			nonEmptyTruth++
		}
	}
	// Each class must be a solid fraction of the run, not a fluke.
	min := n / 10
	for name, got := range map[string]int{
		"negated":       negated,
		"partitionable": partitionable,
		"disordered":    disordered,
		"ts-ties":       ties,
		"nonempty":      nonEmptyTruth,
	} {
		if got < min {
			t.Errorf("only %d/%d trials are %s; generator drifted", got, n, name)
		}
	}
}

// TestMinimizeFindsOneMinimal checks the list minimizer against a known
// predicate: "contains the poison event" must shrink to exactly that event.
func TestMinimizeFindsOneMinimal(t *testing.T) {
	var events []event.Event
	for i := 0; i < 37; i++ {
		events = append(events, Ev("A", event.Time(i), event.Seq(i+1), int64(i%3), 0))
	}
	poison := Ev("B", 100, 99, 7, 7)
	events = append(events[:20], append([]event.Event{poison}, events[20:]...)...)
	got := minimize(events, func(sub []event.Event) bool {
		for _, e := range sub {
			if e.Seq == 99 {
				return true
			}
		}
		return false
	})
	if len(got) != 1 || got[0].Seq != 99 {
		t.Fatalf("minimize kept %d events, want just the poison one: %v", len(got), got)
	}
}

// TestMinimizePairMinimal checks the minimizer on a conjunctive predicate
// (two events must both survive), the shape real divergences have.
func TestMinimizePairMinimal(t *testing.T) {
	var events []event.Event
	for i := 0; i < 24; i++ {
		events = append(events, Ev("A", event.Time(i), event.Seq(i+1), 0, 0))
	}
	has := func(sub []event.Event, seq event.Seq) bool {
		for _, e := range sub {
			if e.Seq == seq {
				return true
			}
		}
		return false
	}
	got := minimize(events, func(sub []event.Event) bool {
		return has(sub, 5) && has(sub, 19)
	})
	if len(got) != 2 {
		t.Fatalf("minimize kept %d events, want 2: %v", len(got), got)
	}
}

// TestShrinkPreservesFailure manufactures a failing case by breaking the
// bound (K below the realized disorder drops events from the native
// engine) and checks Shrink returns a smaller case that still fails.
func TestShrinkPreservesFailure(t *testing.T) {
	c := findBoundViolation(t)
	fail := Run(c)
	if fail == nil {
		t.Skip("no under-K failure manufactured; generator changed")
	}
	shrunk := Shrink(fail)
	if len(shrunk.Case.Arrival) > len(fail.Case.Arrival) {
		t.Fatalf("shrink grew the case: %d -> %d", len(fail.Case.Arrival), len(shrunk.Case.Arrival))
	}
	if rerun := Run(shrunk.Case); rerun == nil {
		t.Fatalf("shrunk case no longer fails:\n%s", shrunk.Report())
	}
	if len(shrunk.Case.Arrival) >= len(fail.Case.Arrival) && len(fail.Case.Arrival) > 4 {
		t.Fatalf("shrink made no progress on a %d-event case", len(fail.Case.Arrival))
	}
}

// findBoundViolation searches seeds for a disordered trial with matches and
// returns it with K forced below the real disorder — a guaranteed-unsound
// configuration the harness must catch and shrink.
func findBoundViolation(t *testing.T) Case {
	t.Helper()
	for seed := int64(1); seed < 400; seed++ {
		c := Generate(seed)
		d := gen.MaxDelay(c.Arrival)
		if d < 3 {
			continue
		}
		c.K = d - 2
		if Run(c) != nil {
			return c
		}
	}
	t.Skip("no seed produced an under-K divergence")
	return Case{}
}
