package difftest

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"oostream"
	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/obsv"
	"oostream/internal/plan"
	"oostream/internal/shard"
)

// RunBatch executes the batch≡per-event differential: every engine
// configuration is driven once per event (the reference) and again through
// ProcessBatch under several partition schemes — all-singleton batches, one
// whole-stream batch, and seed-derived random batch sizes — and the runs
// must agree exactly:
//
//   - the same matches in the same order, compared field by field with
//     lineage records dereferenced (insertions, retractions, provenance
//     citations, window bounds, trigger identity);
//   - the same multiset of trace operations, purges excepted — batch
//     admission defers purge scans to batch boundaries by contract, which
//     changes when state is reclaimed, never what the engine emits;
//   - with heartbeats injected at batch boundaries, identical output to
//     the per-event run advancing at the same stream positions (a
//     heartbeat at a boundary must not release matches the per-event run
//     would still be holding, and vice versa);
//   - the goroutine-per-shard execution mode fed whole batches must
//     produce the sequential topology's exact match multiset.
//
// Like Run it is a pure function of the Case, so it can serve as a fuzz
// target (espfuzz -batch) and failures shrink soundly.
func RunBatch(c Case) *Failure {
	q, err := oostream.Compile(c.Query, Schema())
	if err != nil {
		return &Failure{Case: c, Check: "compile", Diff: err.Error()}
	}

	type batchCfg struct {
		name string
		cfg  oostream.Config
	}
	// K in generated cases always covers the realized disorder, so the
	// c.K configurations never see a bound violation. The halved-K
	// variants force genuine late arrivals, exercising the drop path and
	// the BestEffort path — where deferral is NOT safe (a bound-violating
	// event can bind to stale instances a per-event purge would have
	// removed) and the batch entry must keep the per-event cadence.
	// Generated streams (12–48 events) never reach the default purge
	// cadence (64) either, so the deferral-sensitive configurations run
	// with PurgeEvery=1: the per-event reference then purges after every
	// event while the batch run purges once per batch — the maximal
	// divergence the deferral-safety argument has to survive.
	lateK := c.K / 2
	cfgs := []batchCfg{
		{"batch-inorder", oostream.Config{Strategy: oostream.StrategyInOrder, PurgeEvery: 1}},
		{"batch-native", oostream.Config{Strategy: oostream.StrategyNative, K: c.K}},
		{"batch-native-purge1", oostream.Config{Strategy: oostream.StrategyNative, K: c.K, PurgeEvery: 1}},
		{"batch-native-latedrop", oostream.Config{Strategy: oostream.StrategyNative, K: lateK, PurgeEvery: 1}},
		{"batch-native-besteffort", oostream.Config{Strategy: oostream.StrategyNative, K: lateK, BestEffortLate: true, PurgeEvery: 1}},
		{"batch-native-ordered", oostream.Config{Strategy: oostream.StrategyNative, K: c.K, OrderedOutput: true}},
		{"batch-native-prov", oostream.Config{Strategy: oostream.StrategyNative, K: c.K, Provenance: true, PurgeEvery: 1}},
		{"batch-kslack", oostream.Config{Strategy: oostream.StrategyKSlack, K: c.K}},
		{"batch-kslack-late", oostream.Config{Strategy: oostream.StrategyKSlack, K: lateK, PurgeEvery: 1}},
		{"batch-speculate", oostream.Config{Strategy: oostream.StrategySpeculate, K: c.K, PurgeEvery: 1}},
		{"batch-speculate-late", oostream.Config{Strategy: oostream.StrategySpeculate, K: lateK, PurgeEvery: 1}},
		{"batch-speculate-prov", oostream.Config{Strategy: oostream.StrategySpeculate, K: c.K, Provenance: true, PurgeEvery: 1}},
	}
	if q.PartitionableBy(PartitionAttr) {
		part := oostream.Partition{Attr: PartitionAttr, Shards: shardCount}
		cfgs = append(cfgs,
			batchCfg{"batch-shard", oostream.Config{Strategy: oostream.StrategyNative, K: c.K, Partition: part}},
			batchCfg{"batch-shard-prov", oostream.Config{Strategy: oostream.StrategyNative, K: c.K, Partition: part, Provenance: true}},
		)
	}

	// Partition schemes are a pure function of the seed. Singleton batches
	// pin ProcessBatch([e]) ≡ Process(e); the whole-stream batch maximizes
	// deferral; random sizes exercise every boundary in between.
	rng := rand.New(rand.NewSource(c.Seed ^ 0xba7c4))
	schemes := [][]int{singletonSizes(len(c.Arrival))}
	if len(c.Arrival) > 0 {
		schemes = append(schemes, []int{len(c.Arrival)})
	}
	for i := 0; i < 2; i++ {
		schemes = append(schemes, randomSizes(rng, len(c.Arrival)))
	}

	for _, bc := range cfgs {
		want, wantOps := runTracedPerEvent(q, bc.cfg, c.Arrival)
		for si, sizes := range schemes {
			check := fmt.Sprintf("%s-scheme%d", bc.name, si)
			got, gotOps := runTracedBatched(q, bc.cfg, c.Arrival, sizes)
			if diff := sameMatchSequence(want, got); diff != "" {
				return &Failure{Case: c, Check: check, Diff: diff + "\nbatch sizes: " + sizesString(sizes), Truth: len(want)}
			}
			if diff := sameOpBags(wantOps, gotOps); diff != "" {
				return &Failure{Case: c, Check: check + "-trace", Diff: diff + "\nbatch sizes: " + sizesString(sizes), Truth: len(want)}
			}
		}
		// Heartbeats at batch boundaries: the per-event run advancing after
		// the same stream positions must emit the same matches in the same
		// order. This pins the boundary contract — a heartbeat sequences
		// after the batch it trails, never inside it.
		sizes := randomSizes(rng, len(c.Arrival))
		hbWant := runHeartbeatsAtBoundaries(q, bc.cfg, c.Arrival, c.K, sizes, false)
		hbGot := runHeartbeatsAtBoundaries(q, bc.cfg, c.Arrival, c.K, sizes, true)
		if diff := sameMatchSequence(hbWant, hbGot); diff != "" {
			return &Failure{Case: c, Check: bc.name + "-heartbeat", Diff: diff + "\nbatch sizes: " + sizesString(sizes), Truth: len(hbWant)}
		}
	}

	// Parallel shards: batches delivered through the MPSC rings must
	// reproduce the sequential topology's match multiset (output order
	// across shards is scheduling-dependent, so the comparison is the same
	// multiset check the per-event parallel path uses).
	if q.PartitionableBy(PartitionAttr) {
		cfg := oostream.Config{Strategy: oostream.StrategyNative, K: c.K}
		want := run(q, oostream.Config{Strategy: oostream.StrategyNative, K: c.K,
			Partition: oostream.Partition{Attr: PartitionAttr, Shards: shardCount}}, c.Arrival)
		for _, bs := range []int{1, 0, 2 + rng.Intn(7)} {
			got, err := runParallelBatched(q, cfg, c.Arrival, bs)
			if err != nil {
				return &Failure{Case: c, Check: "batch-shard-parallel", Diff: err.Error(), Truth: len(want)}
			}
			if ok, diff := plan.SameResults(want, got); !ok {
				return &Failure{Case: c, Check: "batch-shard-parallel",
					Diff: fmt.Sprintf("batchSize=%d: %s", bs, diff), Truth: len(want)}
			}
		}
	}
	return nil
}

// ShrinkBatch minimizes a RunBatch failure's arrival list, mirroring
// Shrink (which minimizes against Run).
func ShrinkBatch(f *Failure) *Failure {
	best := f
	runs := 0
	minimize(best.Case.Arrival, func(sub []event.Event) bool {
		if runs >= maxShrinkRuns {
			return false
		}
		runs++
		c := best.Case
		c.Arrival = sub
		if fail := RunBatch(c); fail != nil {
			best = fail
			return true
		}
		return false
	})
	return best
}

// opBag is a multiset of trace operations. TraceEvent is a comparable
// struct of scalars, so it keys a map directly; counting collapses
// ordering, which batch execution legitimately perturbs (an event's drain
// may run while a later event has already been admitted).
type opBag map[obsv.TraceEvent]int

// tracing returns a copy of cfg with a hook that counts every trace op
// except purges into bag. Purge timing is the one batch-visible
// difference the contract permits: deferral changes when (and in how many
// sweeps) state is reclaimed, never the match output.
func tracing(cfg oostream.Config, bag opBag) oostream.Config {
	cfg.Trace = obsv.TraceFunc(func(te obsv.TraceEvent) {
		if te.Op == obsv.OpPurge {
			return
		}
		bag[te]++
	})
	return cfg
}

// runTracedPerEvent drives the reference: one Process call per event, then
// Flush, collecting the trace-op multiset alongside the matches.
func runTracedPerEvent(q *oostream.Query, cfg oostream.Config, events []event.Event) ([]plan.Match, opBag) {
	bag := opBag{}
	en := oostream.MustNewEngine(q, tracing(cfg, bag))
	var out []plan.Match
	for _, e := range events {
		out = append(out, en.Process(e)...)
	}
	return append(out, en.Flush()...), bag
}

// runTracedBatched drives the same stream through ProcessBatch, one call
// per partition-scheme chunk.
func runTracedBatched(q *oostream.Query, cfg oostream.Config, events []event.Event, sizes []int) ([]plan.Match, opBag) {
	bag := opBag{}
	en := oostream.MustNewEngine(q, tracing(cfg, bag))
	var out []plan.Match
	pos := 0
	for _, n := range sizes {
		out = append(out, en.ProcessBatch(events[pos:pos+n])...)
		pos += n
	}
	return append(out, en.Flush()...), bag
}

// runHeartbeatsAtBoundaries drives the stream in the given chunks —
// batched through ProcessBatch or per event — issuing the strongest safe
// Advance (min future timestamp + K, as runWithHeartbeats derives it)
// after each chunk boundary. Both modes see the identical punctuation
// sequence at identical stream positions.
func runHeartbeatsAtBoundaries(q *oostream.Query, cfg oostream.Config, events []event.Event, k event.Time, sizes []int, batched bool) []plan.Match {
	const maxTime = event.Time(1<<62 - 1)
	minFuture := make([]event.Time, len(events)+1)
	minFuture[len(events)] = maxTime
	for i := len(events) - 1; i >= 0; i-- {
		minFuture[i] = minFuture[i+1]
		if events[i].TS < minFuture[i] {
			minFuture[i] = events[i].TS
		}
	}
	en := oostream.MustNewEngine(q, cfg)
	var out []plan.Match
	pos := 0
	for _, n := range sizes {
		if batched {
			out = append(out, en.ProcessBatch(events[pos:pos+n])...)
		} else {
			for _, e := range events[pos : pos+n] {
				out = append(out, en.Process(e)...)
			}
		}
		pos += n
		if minFuture[pos] != maxTime {
			out = append(out, en.Advance(minFuture[pos]+k)...)
		}
	}
	return append(out, en.Flush()...)
}

// runParallelBatched drives the goroutine-per-shard mode through the
// batched ring handoff (batchSize <= 0 delivers one whole-stream batch).
func runParallelBatched(q *oostream.Query, cfg oostream.Config, events []event.Event, batchSize int) ([]plan.Match, error) {
	router, err := shard.NewRouter(PartitionAttr, shardCount)
	if err != nil {
		return nil, err
	}
	par, err := shard.NewParallel(router, func(int) (engine.Engine, error) {
		sub, err := oostream.NewEngine(q, cfg)
		if err != nil {
			return nil, err
		}
		return sub.Raw().(engine.Engine), nil
	})
	if err != nil {
		return nil, err
	}
	return par.DrainBatches(context.Background(), events, batchSize)
}

// sameMatchSequence compares two match sequences element-wise in emission
// order, lineage included, and describes the first divergence.
func sameMatchSequence(want, got []plan.Match) string {
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		wr, gr := renderMatch(want[i]), renderMatch(got[i])
		if wr != gr {
			return fmt.Sprintf("emission %d differs:\n  per-event: %s\n  batched:   %s", i, wr, gr)
		}
	}
	if len(want) != len(got) {
		return fmt.Sprintf("per-event run emitted %d matches, batched run %d", len(want), len(got))
	}
	return ""
}

// renderMatch renders a match field by field with its lineage record (and
// the record's InvalidatedBy citation) dereferenced, so pointer identity
// never leaks into the comparison.
func renderMatch(m plan.Match) string {
	prov := "<nil>"
	if m.Prov != nil {
		r := *m.Prov
		inv := "<nil>"
		if r.InvalidatedBy != nil {
			inv = fmt.Sprintf("%+v", *r.InvalidatedBy)
		}
		r.InvalidatedBy = nil
		prov = fmt.Sprintf("{%+v invalidatedBy=%s}", r, inv)
	}
	m.Prov = nil
	return fmt.Sprintf("%+v prov=%s", m, prov)
}

// sameOpBags compares two trace-op multisets and describes the first
// divergence deterministically (keys are rendered and sorted).
func sameOpBags(want, got opBag) string {
	type diff struct{ key, detail string }
	var diffs []diff
	for te, n := range want {
		if got[te] != n {
			diffs = append(diffs, diff{te.String(), fmt.Sprintf("per-event saw %d, batched %d: %s", n, got[te], te)})
		}
	}
	for te, n := range got {
		if _, ok := want[te]; !ok {
			diffs = append(diffs, diff{te.String(), fmt.Sprintf("per-event saw 0, batched %d: %s", n, te)})
		}
	}
	if len(diffs) == 0 {
		return ""
	}
	sort.Slice(diffs, func(i, j int) bool { return diffs[i].key < diffs[j].key })
	return diffs[0].detail
}

// singletonSizes is the all-size-1 partition scheme.
func singletonSizes(n int) []int {
	sizes := make([]int, n)
	for i := range sizes {
		sizes[i] = 1
	}
	return sizes
}

// randomSizes partitions n into random chunks of 1..maxChunk, where
// maxChunk scales with the stream so both tiny and near-whole batches
// occur.
func randomSizes(rng *rand.Rand, n int) []int {
	var sizes []int
	maxChunk := n/2 + 1
	for n > 0 {
		s := 1 + rng.Intn(maxChunk)
		if s > n {
			s = n
		}
		sizes = append(sizes, s)
		n -= s
	}
	return sizes
}

func sizesString(sizes []int) string {
	parts := make([]string, len(sizes))
	for i, s := range sizes {
		parts[i] = fmt.Sprint(s)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
