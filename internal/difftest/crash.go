package difftest

import (
	"fmt"
	"math/rand"
	"os"

	"oostream"
	"oostream/internal/event"
	"oostream/internal/gen"
	"oostream/internal/netsim"
	"oostream/internal/oracle"
	"oostream/internal/plan"
	"oostream/internal/recovery"
)

// crashPoints is how many kill/recover cycles RunCrash injects per
// configuration.
const crashPoints = 3

// RunCrash executes the crash-point differential: for every strategy (and
// the partitioned topology when the query allows it) it runs the
// supervised engine uninterrupted, then again with the process killed at
// seed-derived offsets and recovered from durable state — re-delivering
// the event before each crash point to exercise duplicate admission — and
// requires the exact ordered match sequence of the two runs to agree,
// with zero duplicate or lost emissions. The native configuration is also
// run with its newest checkpoint corrupted after each crash, which must
// fall back to the previous valid one (or the log) transparently.
//
// Like Run it is a pure function of the Case (temp-directory naming
// aside), so shrinking against it is sound.
func RunCrash(c Case) *Failure {
	p, err := plan.ParseAndCompile(c.Query, Schema())
	if err != nil {
		return &Failure{Case: c, Check: "compile", Diff: err.Error()}
	}
	q, err := oostream.Compile(c.Query, Schema())
	if err != nil {
		return &Failure{Case: c, Check: "compile", Diff: err.Error()}
	}

	// Truth is the oracle over the sorted first occurrence of each Seq:
	// admission control deduplicates by Seq, so a fault-injected arrival
	// stream (GenerateFaulty) reduces to its first-occurrence substream.
	// For a duplicate-free stream this is the plain sorted stream.
	seen := make(map[event.Seq]bool, len(c.Arrival))
	sorted := make([]event.Event, 0, len(c.Arrival))
	for _, e := range c.Arrival {
		if !seen[e.Seq] {
			seen[e.Seq] = true
			sorted = append(sorted, e)
		}
	}
	event.SortByTime(sorted)
	truth := oracle.Matches(p, sorted)

	// Crash offsets are a pure function of the seed: offset i kills the
	// process right before offering arrival i (len(Arrival) = before the
	// flush).
	rng := rand.New(rand.NewSource(c.Seed ^ 0x0ff5e75))
	crashes := drawOffsets(rng, len(c.Arrival), crashPoints)

	type crashCfg struct {
		name    string
		truth   bool // also compare the baseline against the oracle
		corrupt bool
		make    func(dir string) (*oostream.SupervisedEngine, error)
	}
	superv := func(cfg oostream.Config, every int) func(string) (*oostream.SupervisedEngine, error) {
		return func(dir string) (*oostream.SupervisedEngine, error) {
			return oostream.NewSupervisedEngine(q, cfg, oostream.SupervisorConfig{
				Dir: dir, CheckpointEvery: every, DisableFsync: true,
			})
		}
	}
	native := oostream.Config{Strategy: oostream.StrategyNative, K: c.K}
	cfgs := []crashCfg{
		{name: "crash-native", truth: true, make: superv(native, 7)},
		{name: "crash-native-corrupt", truth: true, corrupt: true, make: superv(native, 5)},
		{name: "crash-inorder", make: superv(oostream.Config{Strategy: oostream.StrategyInOrder}, 0)},
		{name: "crash-kslack", truth: true, make: superv(oostream.Config{Strategy: oostream.StrategyKSlack, K: c.K}, 0)},
		{name: "crash-speculate", make: superv(oostream.Config{Strategy: oostream.StrategySpeculate, K: c.K}, 0)},
	}
	if q.PartitionableBy(PartitionAttr) {
		sharded := native
		sharded.Partition = oostream.Partition{Attr: PartitionAttr, Shards: shardCount}
		cfgs = append(cfgs, crashCfg{name: "crash-shard", truth: true,
			make: func(dir string) (*oostream.SupervisedEngine, error) {
				return oostream.NewSupervisedEngine(q, sharded,
					oostream.SupervisorConfig{Dir: dir, CheckpointEvery: 5, DisableFsync: true})
			}})
	}

	for _, cfg := range cfgs {
		want, err := runSupervised(cfg.make, c.Arrival)
		if err != nil {
			return &Failure{Case: c, Check: cfg.name + "-baseline", Diff: err.Error(), Truth: len(truth)}
		}
		if cfg.truth {
			if ok, diff := plan.SameResults(truth, want); !ok {
				return &Failure{Case: c, Check: cfg.name + "-truth", Diff: diff, Truth: len(truth)}
			}
		}
		got, err := runCrashed(cfg.make, c.Arrival, crashes, cfg.corrupt)
		if err != nil {
			return &Failure{Case: c, Check: cfg.name, Diff: err.Error(), Truth: len(truth)}
		}
		if diff := sameOrdered(want, got); diff != "" {
			return &Failure{Case: c, Check: cfg.name, Diff: diff, Truth: len(truth)}
		}
	}
	return nil
}

// GenerateFaulty derives a crash trial whose arrival stream passed
// through the fault-injecting delivery simulator: deliveries are dropped,
// duplicated (same Seq, later arrival), and held by stalled sources. The
// duplicates make the admission layer's dedup load-bearing — without it
// the crashed and uninterrupted runs would both double-count, but truth
// (first occurrences) would diverge.
func GenerateFaulty(seed int64) Case {
	rng := rand.New(rand.NewSource(seed))
	query, qtypes := genQuery(rng)
	sorted := genStream(rng, qtypes)
	cfg := netsim.Config{
		Sources: 1 + rng.Intn(3),
		Link: netsim.LinkConfig{
			BaseDelay:  event.Time(rng.Intn(3)),
			JitterMean: 1 + 5*rng.Float64(),
			HeavyTailP: 0.1,
			HeavyTailX: 4,
		},
	}
	f := netsim.FaultConfig{
		DropP:        0.05 * rng.Float64(),
		DupP:         0.05 + 0.15*rng.Float64(),
		DupDelayMean: 10,
		StallP:       0.03 * rng.Float64(),
		StallMean:    20,
	}
	arrival, _, _, _, err := netsim.DeliverFaults(sorted, cfg, f, rng)
	if err != nil { // unreachable for the ranges above
		panic(err)
	}
	k := gen.MaxDelay(arrival)
	if k == 0 {
		k = 1
	}
	return Case{Seed: seed, Query: query, K: k, Arrival: arrival}
}

// drawOffsets picks up to n distinct offsets in [0, limit], sorted.
func drawOffsets(rng *rand.Rand, limit, n int) []int {
	picked := make(map[int]bool, n)
	for len(picked) < n && len(picked) <= limit {
		picked[rng.Intn(limit+1)] = true
	}
	offs := make([]int, 0, len(picked))
	for off := range picked {
		offs = append(offs, off)
	}
	for i := 1; i < len(offs); i++ {
		for j := i; j > 0 && offs[j] < offs[j-1]; j-- {
			offs[j], offs[j-1] = offs[j-1], offs[j]
		}
	}
	return offs
}

// runSupervised drives one uninterrupted supervised run in a fresh
// directory.
func runSupervised(mk func(string) (*oostream.SupervisedEngine, error), events []event.Event) ([]plan.Match, error) {
	dir, err := os.MkdirTemp("", "oocrash-base-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	en, err := mk(dir)
	if err != nil {
		return nil, err
	}
	defer en.Close()
	out, err := en.Start()
	if err != nil {
		return nil, err
	}
	ms, err := en.ProcessAll(events)
	if err != nil {
		return nil, err
	}
	return append(out, ms...), nil
}

// runCrashed drives the same stream but kills the engine at each crash
// offset, recovers from the directory, and re-delivers the previous event
// (an at-least-once source) before continuing.
func runCrashed(mk func(string) (*oostream.SupervisedEngine, error), events []event.Event, crashes []int, corrupt bool) ([]plan.Match, error) {
	dir, err := os.MkdirTemp("", "oocrash-kill-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	en, err := mk(dir)
	if err != nil {
		return nil, err
	}
	out, err := en.Start()
	if err != nil {
		return nil, err
	}
	ci := 0
	for i := 0; i <= len(events); i++ {
		for ci < len(crashes) && crashes[ci] == i {
			ci++
			en.Kill()
			if corrupt && recovery.CountValidCheckpoints(dir) >= 2 {
				// Exercise the fallback path. Corrupting the last valid
				// checkpoint is legitimately unrecoverable (its WAL prefix
				// was pruned when it was written), so damage is only
				// injected while a valid fallback remains.
				_ = recovery.CorruptNewestCheckpoint(dir)
			}
			en, err = mk(dir)
			if err != nil {
				return nil, err
			}
			ms, err := en.Start()
			if err != nil {
				return nil, fmt.Errorf("recover after crash at %d: %w", i, err)
			}
			out = append(out, ms...)
			if i > 0 {
				// Source retransmission: the event before the crash arrives
				// again; admission must suppress it without new emissions.
				dup, err := en.Process(events[i-1])
				if err != nil {
					return nil, fmt.Errorf("redeliver %d: %w", i-1, err)
				}
				if len(dup) != 0 {
					return nil, fmt.Errorf("redelivered event %d emitted %d matches", i-1, len(dup))
				}
			}
		}
		if i == len(events) {
			break
		}
		ms, err := en.Process(events[i])
		if err != nil {
			return nil, fmt.Errorf("process %d: %w", i, err)
		}
		out = append(out, ms...)
	}
	ms, err := en.Flush()
	if err != nil {
		return nil, err
	}
	out = append(out, ms...)
	if err := en.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// sameOrdered compares two match sequences exactly (kind and key, in
// emission order) and describes the first divergence.
func sameOrdered(want, got []plan.Match) string {
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if want[i].Kind != got[i].Kind || want[i].Key() != got[i].Key() {
			return fmt.Sprintf("emission %d: baseline %v %s, crashed %v %s",
				i, want[i].Kind, want[i].Key(), got[i].Kind, got[i].Key())
		}
	}
	if len(want) != len(got) {
		return fmt.Sprintf("baseline emitted %d matches, crashed run %d", len(want), len(got))
	}
	return ""
}
