package difftest

import (
	"oostream/internal/event"
)

// maxShrinkRuns bounds the number of Run invocations one Shrink may spend.
// Streams are ≤ ~50 events, so ddmin converges far below this; the bound
// is a backstop against pathological oscillation.
const maxShrinkRuns = 4000

// Shrink minimizes a failing case's arrival list while preserving failure
// (of any check, not necessarily the original one — a smaller stream often
// shifts which comparison trips first, and any divergence is a bug). The
// arrival order of surviving events is preserved, as are their Seq
// numbers, so the disorder pattern that provoked the failure survives
// minimization; K is left untouched (removing events can only shrink
// realized delays, so the bound keeps holding). Returns the smallest
// failure found.
func Shrink(f *Failure) *Failure {
	best := f
	runs := 0
	minimize(best.Case.Arrival, func(sub []event.Event) bool {
		if runs >= maxShrinkRuns {
			return false
		}
		runs++
		c := best.Case
		c.Arrival = sub
		if fail := Run(c); fail != nil {
			best = fail
			return true
		}
		return false
	})
	return best
}

// minimize is a ddmin-style list minimizer: it removes contiguous chunks
// of halving size while pred keeps holding, then single elements, until a
// fixpoint. pred must hold for the input list; the returned list is
// 1-minimal with respect to single-element removal (bounded by the
// caller's budget via pred returning false).
func minimize(list []event.Event, pred func([]event.Event) bool) []event.Event {
	cur := list
	chunk := len(cur) / 2
	if chunk < 1 {
		chunk = 1
	}
	for chunk >= 1 {
		removed := false
		for start := 0; start < len(cur); {
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			candidate := make([]event.Event, 0, len(cur)-(end-start))
			candidate = append(candidate, cur[:start]...)
			candidate = append(candidate, cur[end:]...)
			if len(candidate) > 0 && pred(candidate) {
				cur = candidate
				removed = true
				// keep start: the next chunk slid into this position
			} else {
				start = end
			}
		}
		if !removed {
			if chunk == 1 {
				break
			}
			chunk /= 2
		}
	}
	return cur
}
