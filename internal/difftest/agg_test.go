package difftest

import (
	"fmt"
	"testing"

	"oostream/internal/event"
	"oostream/internal/plan"
)

// TestAggDifferentialTrials soaks the aggregation differential: every
// strategy (plus heartbeats, batching, provenance, a checkpoint
// round-trip, and partitioned execution on grouped trials) against the
// brute-force window truth. The acceptance bar is ≥200 trials.
func TestAggDifferentialTrials(t *testing.T) {
	n := 300
	if testing.Short() {
		n = 60
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%04d", seed), func(t *testing.T) {
			t.Parallel()
			if fail := RunAgg(GenerateAgg(seed)); fail != nil {
				t.Fatalf("%s", fail.Report())
			}
		})
	}
}

// TestAggGeneratorCoverage asserts the aggregate trial distribution
// exercises the interesting regions: every function, SLIDE, GROUP BY,
// HAVING, trailing negation (the widened lateness bound), partitionable
// grouped trials (the shard check only runs on those), and non-empty
// window truth.
func TestAggGeneratorCoverage(t *testing.T) {
	funcs := map[string]int{}
	var slide, grouped, having, trailingNeg, shardable, nonEmpty int
	n := 300
	if testing.Short() {
		n = 60
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		c := GenerateAgg(seed)
		p, err := plan.ParseAndCompile(c.Query, Schema())
		if err != nil {
			t.Fatalf("seed %d: generated invalid query %q: %v", seed, c.Query, err)
		}
		if p.Agg == nil {
			t.Fatalf("seed %d: query %q has no aggregate spec", seed, c.Query)
		}
		funcs[string(p.Agg.Func)]++
		if p.Agg.Slide != p.Window {
			slide++
		}
		if p.Agg.GroupSlot >= 0 {
			grouped++
		}
		if p.Agg.Having != nil {
			having++
		}
		if p.HasTrailingNegation() {
			trailingNeg++
		}
		if p.Agg.GroupAttr == PartitionAttr && p.PartitionableBy(PartitionAttr) {
			shardable++
		}
		if len(aggTruth(p, sortedCopy(c))) > 0 {
			nonEmpty++
		}
	}
	for _, fn := range []string{"COUNT", "SUM", "AVG", "MIN", "MAX"} {
		if funcs[fn] == 0 {
			t.Errorf("no trial used %s", fn)
		}
	}
	for name, got := range map[string]int{
		"SLIDE": slide, "GROUP BY": grouped, "HAVING": having,
		"trailing negation": trailingNeg, "shardable grouped": shardable,
	} {
		if got < n/20 {
			t.Errorf("only %d/%d trials exercise %s", got, n, name)
		}
	}
	if nonEmpty < n/3 {
		t.Errorf("only %d/%d trials have non-empty window truth", nonEmpty, n)
	}
}

func sortedCopy(c Case) []event.Event {
	s := make([]event.Event, len(c.Arrival))
	copy(s, c.Arrival)
	event.SortByTime(s)
	return s
}
