package difftest

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"oostream"
	"oostream/internal/event"
	"oostream/internal/plan"
)

// batchCrashTrialCount bounds the crash-point batch differential; each
// trial spins up several supervised engines with temp directories, so the
// budget is smaller than the in-memory trials'.
const batchCrashTrialCount = 25

// TestBatchDifferentialTrials is the batch≡per-event front door: for
// trialCount random (query, stream, disorder) cases, every strategy run
// through ProcessBatch under singleton, whole-stream, and random partition
// schemes must reproduce the per-event run exactly — matches, lineage, and
// trace-op multisets.
func TestBatchDifferentialTrials(t *testing.T) {
	n := trialCount
	if testing.Short() {
		n = 60
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%04d", seed), func(t *testing.T) {
			t.Parallel()
			if fail := RunBatch(Generate(seed)); fail != nil {
				t.Fatalf("%s", ShrinkBatch(fail).Report())
			}
		})
	}
}

// TestBatchCrashNoDoubleEmit pins the supervised batch entry's durability
// contract: a run whose process is killed between batches — with the
// entire previous batch redelivered after each recovery, simulating an
// at-least-once batch source — must reproduce the uninterrupted batched
// run's exact ordered match sequence, and every redelivered event must be
// suppressed by admission (zero emissions past the commit horizon). The
// uninterrupted batched run is itself checked against the per-event
// supervised run first, so the batch entry cannot hide behind a
// consistently-wrong baseline.
func TestBatchCrashNoDoubleEmit(t *testing.T) {
	n := batchCrashTrialCount
	if testing.Short() {
		n = 6
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%04d", seed), func(t *testing.T) {
			t.Parallel()
			c := Generate(seed)
			rng := rand.New(rand.NewSource(seed ^ 0xbc7a5))
			sizes := randomSizes(rng, len(c.Arrival))
			mk := func(dir string) (*oostream.SupervisedEngine, error) {
				q, err := oostream.Compile(c.Query, Schema())
				if err != nil {
					return nil, err
				}
				return oostream.NewSupervisedEngine(q,
					oostream.Config{Strategy: oostream.StrategyNative, K: c.K},
					oostream.SupervisorConfig{Dir: dir, CheckpointEvery: 7, DisableFsync: true})
			}

			perEvent, err := runSupervised(mk, c.Arrival)
			if err != nil {
				t.Fatalf("per-event baseline: %v", err)
			}
			baseline, err := runSupervisedBatched(mk, c.Arrival, sizes, nil)
			if err != nil {
				t.Fatalf("batched baseline: %v", err)
			}
			if diff := sameOrdered(perEvent, baseline); diff != "" {
				t.Fatalf("batched vs per-event supervised run: %s\nbatch sizes: %s", diff, sizesString(sizes))
			}

			// Kill before up to three seed-derived batch indices.
			crashes := drawOffsets(rng, len(sizes), crashPoints)
			crashed, err := runSupervisedBatched(mk, c.Arrival, sizes, crashes)
			if err != nil {
				t.Fatalf("crashed batched run: %v", err)
			}
			if diff := sameOrdered(baseline, crashed); diff != "" {
				t.Fatalf("crashed vs uninterrupted batched run: %s\nbatch sizes: %s crashes: %v",
					diff, sizesString(sizes), crashes)
			}
		})
	}
}

// runSupervisedBatched drives the stream through SupervisedEngine
// ProcessBatch in the given chunks. When crashes is non-nil, the engine is
// killed before each listed batch index and recovered from the same
// directory; the previous batch is then redelivered whole and must emit
// nothing (its matches were committed before the crash).
func runSupervisedBatched(mk func(string) (*oostream.SupervisedEngine, error), events []event.Event, sizes []int, crashes []int) ([]plan.Match, error) {
	dir, err := os.MkdirTemp("", "oobatchcrash-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	en, err := mk(dir)
	if err != nil {
		return nil, err
	}
	out, err := en.Start()
	if err != nil {
		return nil, err
	}
	pos, ci := 0, 0
	var prev []event.Event
	for bi := 0; bi <= len(sizes); bi++ {
		for ci < len(crashes) && crashes[ci] == bi {
			ci++
			en.Kill()
			en, err = mk(dir)
			if err != nil {
				return nil, err
			}
			ms, err := en.Start()
			if err != nil {
				return nil, fmt.Errorf("recover before batch %d: %w", bi, err)
			}
			out = append(out, ms...)
			if len(prev) > 0 {
				dup, err := en.ProcessBatch(prev)
				if err != nil {
					return nil, fmt.Errorf("redeliver batch %d: %w", bi-1, err)
				}
				if len(dup) != 0 {
					return nil, fmt.Errorf("redelivered batch %d emitted %d matches past the commit horizon", bi-1, len(dup))
				}
			}
		}
		if bi == len(sizes) {
			break
		}
		batch := events[pos : pos+sizes[bi]]
		pos += sizes[bi]
		ms, err := en.ProcessBatch(batch)
		if err != nil {
			return nil, fmt.Errorf("batch %d: %w", bi, err)
		}
		out = append(out, ms...)
		prev = batch
	}
	ms, err := en.Flush()
	if err != nil {
		return nil, err
	}
	out = append(out, ms...)
	if err := en.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// TestBatchBestEffortPurgeCadence pins the one place deferring purges to
// the batch boundary is NOT output-invisible: under BestEffortLate a
// bound-violating event may bind to a window-expired instance that a
// per-event purge pass would already have removed. The stream is built so
// the divergence is forced if the batch path defers: A@0's window (4)
// expires once B@10 lifts the safe clock; the late B@2 then only matches
// A@0 if the purge between them was skipped. RunBatch's
// batch-native-besteffort configuration (halved K, PurgeEvery=1) must
// therefore keep the per-event cadence — random trials rarely compose
// this exact shape, so it is checked here deterministically.
func TestBatchBestEffortPurgeCadence(t *testing.T) {
	c := Case{
		Seed:  -1,
		Query: "PATTERN SEQ(A x0, B x1) WHERE x0.id = x1.id WITHIN 4",
		K:     2,
		Arrival: []event.Event{
			Ev("A", 0, 1, 1, 0),
			Ev("B", 10, 2, 99, 0), // lifts the clock; expires A@0's window
			Ev("B", 2, 3, 1, 0),   // bound violator: binds A@0 only if unpurged
		},
	}
	if fail := RunBatch(c); fail != nil {
		t.Fatalf("%s", fail.Report())
	}
}

// TestBatchSchemeCoverage asserts the random partition scheme actually
// mixes chunk sizes — singleton and multi-event batches both occur — so a
// generator regression cannot hollow the differential out to one shape.
func TestBatchSchemeCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var ones, big, total int
	for trial := 0; trial < 200; trial++ {
		n := 12 + rng.Intn(37)
		sizes := randomSizes(rng, n)
		sum := 0
		for _, s := range sizes {
			sum += s
			total++
			if s == 1 {
				ones++
			}
			if s > 1 {
				big++
			}
		}
		if sum != n {
			t.Fatalf("sizes %v sum to %d, want %d", sizes, sum, n)
		}
	}
	if ones == 0 || big == 0 {
		t.Fatalf("degenerate scheme distribution: %d singleton, %d larger chunks of %d", ones, big, total)
	}
}
