package difftest

import (
	"fmt"

	"oostream/internal/event"
	"oostream/internal/plan"
	"oostream/internal/provenance"
)

// validateLineage checks every emitted match's lineage record against the
// query plan and the event universe: the citations must resolve to real
// stream events, bind the pattern in strictly increasing timestamp order
// inside the window, satisfy every local and cross predicate, agree on
// the key group, and — for retractions — cite an invalidating negative
// event that actually falls in one of the match's negation gaps. It
// returns the first violation as text, or "".
func validateLineage(p *plan.Plan, universe map[event.Seq]event.Event, ms []plan.Match) string {
	for _, m := range ms {
		if m.Prov == nil {
			return fmt.Sprintf("match %s: provenance enabled but no lineage record", m.Key())
		}
		if msg := validateRecord(p, universe, m); msg != "" {
			return fmt.Sprintf("match %s: %s\n  lineage: %s", m.Key(), msg, m.Prov)
		}
	}
	return ""
}

func validateRecord(p *plan.Plan, universe map[event.Seq]event.Event, m plan.Match) string {
	rec := m.Prov
	wantKind := provenance.KindInsert
	if m.Kind == plan.Retract {
		wantKind = provenance.KindRetract
	}
	if rec.Kind != wantKind {
		return fmt.Sprintf("lineage kind %q does not match match kind %q", rec.Kind, wantKind)
	}
	if rec.MatchKey() != m.Key() {
		return fmt.Sprintf("lineage identity %q does not match match identity %q", rec.MatchKey(), m.Key())
	}
	if len(rec.Events) != p.Len() {
		return fmt.Sprintf("lineage cites %d events, pattern has %d positions", len(rec.Events), p.Len())
	}

	// Citations resolve against the stream, in position order.
	binding := make([]event.Event, len(rec.Events))
	for i, ref := range rec.Events {
		ev, ok := universe[ref.Seq]
		if !ok {
			return fmt.Sprintf("cited event #%d does not exist in the stream", ref.Seq)
		}
		if ev.Type != ref.Type || ev.TS != ref.TS {
			return fmt.Sprintf("citation %s disagrees with stream event %s", ref, ev)
		}
		if ref.Pos != i {
			return fmt.Sprintf("citation %d carries position %d", i, ref.Pos)
		}
		if ev.Type != p.Positives[i].Type {
			return fmt.Sprintf("position %d wants type %q, lineage cites %q", i, p.Positives[i].Type, ev.Type)
		}
		binding[i] = ev
	}

	// Sequence order and window bounds.
	for i := 1; i < len(binding); i++ {
		if binding[i].TS <= binding[i-1].TS {
			return fmt.Sprintf("cited events not in strictly increasing timestamp order at position %d", i)
		}
	}
	if rec.WindowLo != binding[0].TS || rec.WindowHi != binding[0].TS+p.Window {
		return fmt.Sprintf("window [%d,%d] does not equal [first.TS, first.TS+W] = [%d,%d]",
			rec.WindowLo, rec.WindowHi, binding[0].TS, binding[0].TS+p.Window)
	}
	if span := binding[len(binding)-1].TS - binding[0].TS; span > p.Window {
		return fmt.Sprintf("cited span %d exceeds window %d", span, p.Window)
	}

	// Every predicate the query places must hold on the cited binding.
	var perr error
	sink := func(err error) { perr = err }
	for i, ev := range binding {
		if !plan.EvalLocal(p.Positives[i].Local, ev, sink) {
			return fmt.Sprintf("cited event at position %d fails a local predicate (%v)", i, perr)
		}
	}
	for i := range binding {
		mask := uint64(1)<<(i+1) - 1 // slots 0..i bound, the engines' build order
		if !p.CrossSatisfiedAt(i, mask, binding, sink) {
			return fmt.Sprintf("cited binding fails a cross predicate at slot %d (%v)", i, perr)
		}
	}

	// Key-group consistency: when the record names a key group, every
	// cited event must agree on the key attribute.
	if rec.Key != "" {
		if rec.KeyAttr == "" {
			return "lineage names a key group but no key attribute"
		}
		first, ok := binding[0].Attr(rec.KeyAttr)
		if !ok {
			return fmt.Sprintf("cited event lacks the key attribute %q", rec.KeyAttr)
		}
		for i := 1; i < len(binding); i++ {
			v, ok := binding[i].Attr(rec.KeyAttr)
			if !ok || !v.Equal(first) {
				return fmt.Sprintf("cited events disagree on key attribute %q", rec.KeyAttr)
			}
		}
	}

	// Retractions must cite the invalidating negative event, and it must
	// really fall in one of this match's negation gaps.
	if rec.Kind == provenance.KindRetract {
		inv := rec.InvalidatedBy
		if inv == nil {
			return "retraction lineage lacks InvalidatedBy"
		}
		ev, ok := universe[inv.Seq]
		if !ok {
			return fmt.Sprintf("invalidating event #%d does not exist in the stream", inv.Seq)
		}
		if ev.Type != inv.Type || ev.TS != inv.TS {
			return fmt.Sprintf("invalidating citation %s disagrees with stream event %s", inv, ev)
		}
		negs := p.NegativesForType(ev.Type)
		if len(negs) == 0 {
			return fmt.Sprintf("invalidating event type %q matches no negation component", ev.Type)
		}
		inGap := false
		for _, negIdx := range negs {
			lo, hi := p.GapBounds(negIdx, binding)
			if ev.TS > lo && ev.TS < hi {
				inGap = true
				break
			}
		}
		if !inGap {
			return fmt.Sprintf("invalidating event %s falls in none of the match's negation gaps", inv)
		}
	} else if rec.InvalidatedBy != nil {
		return "insert lineage carries InvalidatedBy"
	}
	return ""
}

// seqUniverse indexes a stream by sequence number for citation lookup.
func seqUniverse(events []event.Event) map[event.Seq]event.Event {
	out := make(map[event.Seq]event.Event, len(events))
	for _, e := range events {
		out[e.Seq] = e
	}
	return out
}
