package difftest

import (
	"testing"
)

// FuzzDifferential is the seed-driven fuzz entry: the fuzzer explores the
// 64-bit seed space of Generate, each execution being one full differential
// trial (all strategies, both shard modes, checkpoint round-trip vs the
// oracle). Failures are shrunk before reporting, so a crash artifact's
// output contains a paste-ready regression fixture.
func FuzzDifferential(f *testing.F) {
	for seed := int64(1); seed <= 16; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if fail := Run(Generate(seed)); fail != nil {
			t.Fatalf("%s", Shrink(fail).Report())
		}
	})
}

// FuzzArrival lets the coverage engine control the arrival permutation
// directly: the byte string drives a Fisher–Yates shuffle of the sorted
// stream, K is measured from the realized disorder, and the trial must
// still agree with the oracle. This reaches adversarial orders (full
// reversals, block swaps) that no stochastic disorder model generates.
func FuzzArrival(f *testing.F) {
	f.Add(int64(1), []byte{0})
	f.Add(int64(7), []byte{3, 1, 4, 1, 5, 9, 2, 6})
	f.Add(int64(42), []byte{255, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Fuzz(func(t *testing.T, seed int64, perm []byte) {
		if fail := Run(GeneratePermuted(seed, perm)); fail != nil {
			t.Fatalf("%s", Shrink(fail).Report())
		}
	})
}
