// Package difftest is the randomized differential-testing harness that
// guards the library's central claim: every strategy computes the same
// match multiset. For a generated (query, stream, disorder) triple it runs
// all four strategies, the ordered-output wrapper, both shard execution
// modes, and a mid-stream checkpoint/restore round-trip, and compares
// every result multiset against the brute-force oracle on the sorted
// stream — which is, by I1, the normative semantics.
//
// The harness is deterministic: a trial is a pure function of its seed
// (Generate), and a trial's verdict is a pure function of its Case (Run),
// so any failure reproduces from a single printed seed or, after
// Shrink, from a minimized Go-source literal suitable for checking in as
// a regression test (see regress_test.go).
//
// Properties checked per trial, beyond plain oracle equality:
//
//   - arrival-permutation invariance: truth is computed once from the
//     sorted stream; the engines see an arbitrary K-bounded arrival order
//     (none, Shuffle, or netsim delivery), so agreement with truth is
//     agreement across permutations;
//   - heartbeat-insertion invariance (I9): interleaving safe Advance calls
//     between events never changes the final multiset;
//   - speculation convergence (I7): the speculative engine's inserts minus
//     retracts equal the exact result set after sealing;
//   - partitioning soundness (I8): sequential and goroutine-per-shard
//     partitioned execution equal the single engine, as multisets;
//   - keyed-stacks soundness: on partitionable queries the native engine
//     runs with key-partitioned stacks by default; the same engine with
//     keying disabled must produce the identical multiset;
//   - checkpoint transparency: native state serialized and restored
//     mid-stream continues to the identical result set (through keyed
//     stacks whenever the query is partitionable, since keying is the
//     default);
//   - latency-sampler transparency: a densely sampled wall-clock
//     attribution run (Config.Latency, 1-in-4 with an SLO tracker) emits
//     the identical output sequence as the uninstrumented run, on both the
//     native fast path and the kslack held-span path.
package difftest

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"oostream"
	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/oracle"
	"oostream/internal/plan"
	"oostream/internal/shard"
)

// PartitionAttr is the attribute every generated event carries and
// partitionable generated queries link on; the shard checks route by it.
const PartitionAttr = "id"

// shardCount is the shard fan-out used by the partitioned checks. Three
// shards with small id ranges guarantees both co-located and separated
// keys occur.
const shardCount = 3

// Case is one differential trial: a query, a disorder bound, and a
// concrete arrival order. Sorted truth is derived, not stored — the
// arrival order IS the test input. Event Seq numbers give events identity
// across orders and must be unique; Generate assigns them in sorted order.
type Case struct {
	// Seed reproduces the case via Generate; 0 for hand-written cases.
	Seed int64
	// Query is the pattern query source text.
	Query string
	// K is the disorder bound configured on every bounded strategy. It
	// must dominate the arrival order's real disorder (gen.MaxDelay).
	K event.Time
	// Arrival is the stream in arrival order.
	Arrival []event.Event
}

// Failure describes a divergence found by Run.
type Failure struct {
	// Case is the failing trial (possibly shrunk).
	Case Case
	// Check names the property that failed, e.g. "native" or "shard-parallel".
	Check string
	// Diff is the multiset diff (oracle vs engine) or error text.
	Diff string
	// Truth is the oracle's match count, for the report.
	Truth int
}

// Error renders the failure on one line.
func (f *Failure) Error() string {
	return fmt.Sprintf("seed %d: check %q diverged (%d truth matches): %s", f.Case.Seed, f.Check, f.Truth, f.Diff)
}

// Run executes every engine configuration over the case and returns the
// first divergence from the oracle, or nil when all agree. It is a pure
// function of the case, which is what makes shrinking sound.
func Run(c Case) *Failure {
	p, err := plan.ParseAndCompile(c.Query, Schema())
	if err != nil {
		return &Failure{Case: c, Check: "compile", Diff: err.Error()}
	}
	q, err := oostream.Compile(c.Query, Schema())
	if err != nil {
		return &Failure{Case: c, Check: "compile", Diff: err.Error()}
	}

	sorted := make([]event.Event, len(c.Arrival))
	copy(sorted, c.Arrival)
	event.SortByTime(sorted)
	truth := oracle.Matches(p, sorted)

	fail := func(check string, got []plan.Match) *Failure {
		if ok, diff := plan.SameResults(truth, got); !ok {
			return &Failure{Case: c, Check: check, Diff: diff, Truth: len(truth)}
		}
		return nil
	}
	errf := func(check string, err error) *Failure {
		return &Failure{Case: c, Check: check, Diff: err.Error(), Truth: len(truth)}
	}

	// The in-order engine is exact only on sorted input: cross-check the
	// engine lineage against the oracle lineage.
	if f := fail("inorder-sorted", run(q, oostream.Config{Strategy: oostream.StrategyInOrder}, sorted)); f != nil {
		return f
	}

	// The three disorder-tolerant strategies on the arrival order.
	native := oostream.Config{Strategy: oostream.StrategyNative, K: c.K}
	if f := fail("native", run(q, native, c.Arrival)); f != nil {
		return f
	}
	// Keyed vs unkeyed native: when the planner keys the stacks (any
	// partitionable query), the ablated engine must agree. The default
	// "native" run above exercises the keyed path; this one re-runs with
	// key-partitioned stacks disabled.
	if q.AutoPartitionKey() != "" {
		unkeyed := oostream.Config{Strategy: oostream.StrategyNative, K: c.K, DisableKeyedStacks: true}
		if f := fail("native-unkeyed", run(q, unkeyed, c.Arrival)); f != nil {
			return f
		}
	}
	if f := fail("kslack", run(q, oostream.Config{Strategy: oostream.StrategyKSlack, K: c.K}, c.Arrival)); f != nil {
		return f
	}
	if f := fail("speculate", run(q, oostream.Config{Strategy: oostream.StrategySpeculate, K: c.K}, c.Arrival)); f != nil {
		return f
	}

	// Provenance-enabled runs: the multiset must be unchanged (lineage is
	// observation, not computation), and every emitted match's lineage
	// record must validate against the oracle's event universe — citations
	// resolve, order and window hold, predicates pass, retractions cite a
	// real invalidating event inside a negation gap.
	universe := seqUniverse(c.Arrival)
	for _, pc := range []struct {
		check string
		cfg   oostream.Config
	}{
		{"native-prov", oostream.Config{Strategy: oostream.StrategyNative, K: c.K, Provenance: true}},
		{"kslack-prov", oostream.Config{Strategy: oostream.StrategyKSlack, K: c.K, Provenance: true}},
		{"speculate-prov", oostream.Config{Strategy: oostream.StrategySpeculate, K: c.K, Provenance: true}},
	} {
		got := run(q, pc.cfg, c.Arrival)
		if f := fail(pc.check, got); f != nil {
			return f
		}
		if msg := validateLineage(p, universe, got); msg != "" {
			return &Failure{Case: c, Check: pc.check + "-lineage", Diff: msg, Truth: len(truth)}
		}
	}

	// Ordered-output wrapper must reorder, never drop or duplicate.
	if f := fail("native-ordered", run(q, oostream.Config{Strategy: oostream.StrategyNative, K: c.K, OrderedOutput: true}, c.Arrival)); f != nil {
		return f
	}

	// Latency-sampling transparency: the wall-clock attribution sampler is
	// observation only, so a densely sampled run (1-in-4, SLO tracker on,
	// exercising the span fast path, the kslack Hold/FinishHeld protocol,
	// and the burn-rate buckets) must emit the identical output sequence as
	// the uninstrumented run — element for element, not merely the same
	// multiset.
	samplerOn := oostream.Latency{SampleEvery: 4,
		SLO: oostream.LatencySLO{Objective: time.Millisecond, Target: 0.99}}
	for _, lc := range []struct {
		check string
		cfg   oostream.Config
	}{
		{"native-latency", native},
		{"kslack-latency", oostream.Config{Strategy: oostream.StrategyKSlack, K: c.K}},
	} {
		sampled := lc.cfg
		sampled.Latency = samplerOn
		if diff := identicalMatches(run(q, lc.cfg, c.Arrival), run(q, sampled, c.Arrival)); diff != "" {
			return &Failure{Case: c, Check: lc.check, Diff: diff, Truth: len(truth)}
		}
	}

	// Heartbeat-insertion invariance (I9): interleave the strongest safe
	// Advance between events.
	if f := fail("native-heartbeat", runWithHeartbeats(q, native, c.Arrival, c.K)); f != nil {
		return f
	}

	// Checkpoint/restore round-trip at mid-stream.
	got, err := runCheckpointed(q, native, c.Arrival)
	if err != nil {
		return errf("checkpoint", err)
	}
	if f := fail("checkpoint", got); f != nil {
		return f
	}

	// Partitioning soundness (I8), both execution modes, when the query
	// confines matches to one key.
	if q.PartitionableBy(PartitionAttr) {
		sharded := native
		sharded.Partition = oostream.Partition{Attr: PartitionAttr, Shards: shardCount}
		se, err := oostream.NewEngine(q, sharded)
		if err != nil {
			return errf("shard-seq", err)
		}
		if f := fail("shard-seq", se.ProcessAll(c.Arrival)); f != nil {
			return f
		}
		pgot, err := runParallel(q, native, c.Arrival)
		if err != nil {
			return errf("shard-parallel", err)
		}
		if f := fail("shard-parallel", pgot); f != nil {
			return f
		}

		// Partitioned execution under ordered output must be deterministic:
		// two engines built from the identical Config.Partition must emit
		// the identical output sequence — same routing, same shard
		// topology, same order, not merely multiset-equal.
		ocfg := sharded
		ocfg.OrderedOutput = true
		ea, err := oostream.NewEngine(q, ocfg)
		if err != nil {
			return errf("partition-config", err)
		}
		eb, err := oostream.NewEngine(q, ocfg)
		if err != nil {
			return errf("partition-config", err)
		}
		if diff := identicalMatches(ea.ProcessAll(c.Arrival), eb.ProcessAll(c.Arrival)); diff != "" {
			return &Failure{Case: c, Check: "partition-config", Diff: diff, Truth: len(truth)}
		}
	}
	return nil
}

// identicalMatches reports the first difference between two match
// sequences compared element-wise (order-sensitive), or "" when they are
// identical.
func identicalMatches(a, b []plan.Match) string {
	if len(a) != len(b) {
		return fmt.Sprintf("first run emitted %d matches, second %d", len(a), len(b))
	}
	for i := range a {
		sa, sb := fmt.Sprintf("%+v", a[i]), fmt.Sprintf("%+v", b[i])
		if sa != sb {
			return fmt.Sprintf("match %d differs:\n  first:  %s\n  second: %s", i, sa, sb)
		}
	}
	return ""
}

// run drives a fresh facade engine over the events.
func run(q *oostream.Query, cfg oostream.Config, events []event.Event) []plan.Match {
	return oostream.MustNewEngine(q, cfg).ProcessAll(events)
}

// runWithHeartbeats interleaves the strongest safe Advance between events:
// after event i, the source can promise time min(future timestamps) + K —
// anything higher could make a future arrival late. Heartbeats below the
// engine's clock are exercised too (they must be no-ops).
func runWithHeartbeats(q *oostream.Query, cfg oostream.Config, events []event.Event, k event.Time) []plan.Match {
	// minFuture[i] is the smallest timestamp at or after arrival i.
	minFuture := make([]event.Time, len(events)+1)
	const maxTime = event.Time(1<<62 - 1)
	minFuture[len(events)] = maxTime
	for i := len(events) - 1; i >= 0; i-- {
		minFuture[i] = minFuture[i+1]
		if events[i].TS < minFuture[i] {
			minFuture[i] = events[i].TS
		}
	}
	en := oostream.MustNewEngine(q, cfg)
	var out []plan.Match
	for i, e := range events {
		out = append(out, en.Process(e)...)
		if minFuture[i+1] != maxTime {
			out = append(out, en.Advance(minFuture[i+1]+k)...)
		}
	}
	return append(out, en.Flush()...)
}

// runCheckpointed processes half the arrival order, serializes the native
// engine, restores it, and finishes the stream on the restored engine.
func runCheckpointed(q *oostream.Query, cfg oostream.Config, events []event.Event) ([]plan.Match, error) {
	en := oostream.MustNewEngine(q, cfg)
	half := len(events) / 2
	var out []plan.Match
	for _, e := range events[:half] {
		out = append(out, en.Process(e)...)
	}
	var buf bytes.Buffer
	if err := en.Checkpoint(&buf); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	restored, err := oostream.RestoreEngine(q, &buf)
	if err != nil {
		return nil, fmt.Errorf("restore: %w", err)
	}
	for _, e := range events[half:] {
		out = append(out, restored.Process(e)...)
	}
	return append(out, restored.Flush()...), nil
}

// runParallel drives the goroutine-per-shard execution mode.
func runParallel(q *oostream.Query, cfg oostream.Config, events []event.Event) ([]plan.Match, error) {
	router, err := shard.NewRouter(PartitionAttr, shardCount)
	if err != nil {
		return nil, err
	}
	par, err := shard.NewParallel(router, func(int) (engine.Engine, error) {
		sub, err := oostream.NewEngine(q, cfg)
		if err != nil {
			return nil, err
		}
		return sub.Raw().(engine.Engine), nil
	})
	if err != nil {
		return nil, err
	}
	return par.Drain(context.Background(), events)
}
