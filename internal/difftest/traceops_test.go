package difftest

import (
	"fmt"
	"testing"

	"oostream"
	"oostream/internal/event"
	"oostream/internal/obsv"
	"oostream/internal/plan"
)

// traceRun drives one provenance-enabled strategy over events with a
// collecting trace hook and returns the matches and the trace.
func traceRun(t *testing.T, query string, strategy oostream.Strategy, k event.Time, events []event.Event) ([]plan.Match, []obsv.TraceEvent) {
	t.Helper()
	q, err := oostream.Compile(query, Schema())
	if err != nil {
		t.Fatal(err)
	}
	var tr []obsv.TraceEvent
	hook := oostream.TraceFunc(func(te oostream.TraceEvent) { tr = append(tr, te) })
	en := oostream.MustNewEngine(q, oostream.Config{
		Strategy:   strategy,
		K:          k,
		Provenance: true,
		Trace:      hook,
	})
	ms := en.ProcessAll(events)
	purged := uint64(0)
	for _, te := range tr {
		if te.Op == obsv.OpPurge {
			purged += uint64(te.N)
		}
	}
	// OpPurge completeness: every reclaimed item is traced. The kslack
	// levee keeps the inner engine's hook unbound (its view is delayed by
	// K and would double-report admissions), so its purges are not traced.
	if strategy != oostream.StrategyKSlack && purged != en.Metrics().Purged {
		t.Errorf("%s: OpPurge traces account for %d items, Metrics().Purged = %d",
			strategy, purged, en.Metrics().Purged)
	}
	return ms, tr
}

// netEmits folds a trace into the emit-minus-retract multiset of match
// identities (OpEmit adds, OpRetract subtracts), dropping zero entries.
func netEmits(t *testing.T, strategy oostream.Strategy, tr []obsv.TraceEvent) map[string]int {
	t.Helper()
	net := map[string]int{}
	for _, te := range tr {
		switch te.Op {
		case obsv.OpEmit, obsv.OpRetract:
			if te.Match == "" {
				t.Fatalf("%s: %s trace event without a match identity under provenance", strategy, te.Op)
			}
			if te.Op == obsv.OpEmit {
				net[te.Match]++
			} else {
				net[te.Match]--
			}
		}
	}
	for k, v := range net {
		if v == 0 {
			delete(net, k)
		}
	}
	return net
}

// TestTraceOpsDifferential asserts trace-stream/output consistency per
// strategy and trace-stream equivalence across strategies on sorted
// input:
//
//   - every OpEmit / OpRetract trace event corresponds 1:1 to a returned
//     Insert / Retract match, identity for identity;
//   - OpPurge events account for exactly Metrics().Purged items;
//   - the emit-minus-retract identity multiset is the same for every
//     strategy (on sorted input all four compute the same results, so
//     their trace streams must agree once speculation's compensations
//     cancel).
func TestTraceOpsDifferential(t *testing.T) {
	strategies := []oostream.Strategy{
		oostream.StrategyNative,
		oostream.StrategyInOrder,
		oostream.StrategyKSlack,
		oostream.StrategySpeculate,
	}
	for seed := int64(1); seed <= 40; seed++ {
		c := Generate(seed)
		sorted := make([]event.Event, len(c.Arrival))
		copy(sorted, c.Arrival)
		event.SortByTime(sorted)

		nets := make([]map[string]int, len(strategies))
		for si, strategy := range strategies {
			ms, tr := traceRun(t, c.Query, strategy, c.K, sorted)

			// Trace/output 1:1: the multiset of emitted identities in the
			// trace equals the multiset of returned Insert matches, and
			// likewise for retractions.
			wantEmit, wantRetract := map[string]int{}, map[string]int{}
			for _, m := range ms {
				if m.Kind == plan.Retract {
					wantRetract[m.Key()]++
				} else {
					wantEmit[m.Key()]++
				}
			}
			gotEmit, gotRetract := map[string]int{}, map[string]int{}
			for _, te := range tr {
				switch te.Op {
				case obsv.OpEmit:
					gotEmit[te.Match]++
				case obsv.OpRetract:
					gotRetract[te.Match]++
				}
			}
			if diff := diffMultiset(wantEmit, gotEmit); diff != "" {
				t.Fatalf("seed %d %s: OpEmit trace vs Insert output: %s", seed, strategy, diff)
			}
			if diff := diffMultiset(wantRetract, gotRetract); diff != "" {
				t.Fatalf("seed %d %s: OpRetract trace vs Retract output: %s", seed, strategy, diff)
			}
			nets[si] = netEmits(t, strategy, tr)
		}

		// Cross-strategy: net trace streams agree on sorted input.
		for si := 1; si < len(strategies); si++ {
			if diff := diffMultiset(nets[0], nets[si]); diff != "" {
				t.Fatalf("seed %d: net emit trace of %s diverges from %s: %s",
					seed, strategies[si], strategies[0], diff)
			}
		}
	}
}

// diffMultiset describes the first difference between two multisets, or
// returns "".
func diffMultiset(want, got map[string]int) string {
	for k, w := range want {
		if g := got[k]; g != w {
			return fmt.Sprintf("identity %q: want %d, got %d", k, w, g)
		}
	}
	for k, g := range got {
		if _, ok := want[k]; !ok {
			return fmt.Sprintf("identity %q: want 0, got %d", k, g)
		}
	}
	return ""
}
