package difftest

import (
	"fmt"
	"testing"

	"oostream/internal/event"
)

// crashTrialCount is the randomized budget of the crash differential:
// each trial runs every supervised configuration twice (uninterrupted and
// killed/recovered at three seed-derived offsets), so trials are ~10x the
// cost of a plain Run trial.
const crashTrialCount = 60

// TestCrashDifferentialTrials: for random (query, stream, disorder)
// trials, killing and recovering the supervised engine at arbitrary
// offsets must reproduce the uninterrupted run's exact ordered match
// sequence — no lost and no duplicated emissions — across all four
// strategies, the partitioned topology, and a corrupted-checkpoint
// fallback.
func TestCrashDifferentialTrials(t *testing.T) {
	n := crashTrialCount
	if testing.Short() {
		n = 12
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%04d", seed), func(t *testing.T) {
			t.Parallel()
			if fail := RunCrash(Generate(seed)); fail != nil {
				t.Fatalf("%v", fail)
			}
		})
	}
}

// TestCrashDifferentialFaulty runs the crash differential over streams
// from the fault-injecting delivery simulator: dropped deliveries,
// duplicated deliveries (which admission must suppress on both runs), and
// source stalls.
func TestCrashDifferentialFaulty(t *testing.T) {
	n := crashTrialCount
	if testing.Short() {
		n = 12
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%04d", seed), func(t *testing.T) {
			t.Parallel()
			if fail := RunCrash(GenerateFaulty(seed)); fail != nil {
				t.Fatalf("%v", fail)
			}
		})
	}
}

// TestGenerateFaultyInjects: the faulty generator actually produces
// duplicate deliveries in a solid fraction of trials (otherwise the dedup
// property above is vacuous).
func TestGenerateFaultyInjects(t *testing.T) {
	withDups := 0
	for seed := int64(1); seed <= 50; seed++ {
		c := GenerateFaulty(seed)
		seen := make(map[event.Seq]bool)
		for _, e := range c.Arrival {
			if seen[e.Seq] {
				withDups++
				break
			}
			seen[e.Seq] = true
		}
	}
	if withDups < 20 {
		t.Fatalf("only %d/50 faulty trials contain a duplicate delivery", withDups)
	}
}
