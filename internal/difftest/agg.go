package difftest

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"oostream"
	"oostream/internal/event"
	"oostream/internal/fiba"
	"oostream/internal/oracle"
	"oostream/internal/plan"
)

// GenerateAgg derives an aggregate trial from a seed: a random AGGREGATE
// query (every function, optional SLIDE / GROUP BY / HAVING, optional
// negation including the trailing position that widens the lateness
// bound) over the shared trial universe, plus a disordered arrival order.
func GenerateAgg(seed int64) Case {
	rng := rand.New(rand.NewSource(seed))
	query, qtypes := genAggQuery(rng)
	sorted := genStream(rng, qtypes)
	arrival, k := genDisorder(rng, sorted)
	return Case{Seed: seed, Query: query, K: k, Arrival: arrival}
}

// genAggQuery builds a random AGGREGATE query over the trial universe.
func genAggQuery(rng *rand.Rand) (string, map[string]bool) {
	n := 2 + rng.Intn(2)
	comps := make([]string, n)
	used := make(map[string]bool)
	for i := range comps {
		comps[i] = types[rng.Intn(len(types))]
		used[comps[i]] = true
	}

	negated := rng.Float64() < 0.4
	negType, negVar := "", ""
	negGap := 0
	if negated {
		negType = types[rng.Intn(len(types))]
		used[negType] = true
		negVar = "n0"
		// Biased toward the trailing gap: it defers emission by a full
		// window, the widest lateness the operator must absorb.
		negGap = rng.Intn(n + 1)
		if rng.Float64() < 0.4 {
			negGap = n
		}
	}

	var parts []string
	for i := 0; i < n; i++ {
		if negated && negGap == i {
			parts = append(parts, fmt.Sprintf("!(%s %s)", negType, negVar))
		}
		parts = append(parts, fmt.Sprintf("%s x%d", comps[i], i))
	}
	if negated && negGap == n {
		parts = append(parts, fmt.Sprintf("!(%s %s)", negType, negVar))
	}
	pattern := strings.Join(parts, ", ")

	// The id-equality chain makes the query PartitionableBy("id"); the
	// partitioned check only runs on linked + grouped trials.
	linked := rng.Float64() < 0.7
	var conjuncts []string
	if linked {
		for i := 1; i < n; i++ {
			conjuncts = append(conjuncts, fmt.Sprintf("x0.id = x%d.id", i))
		}
		if negated {
			conjuncts = append(conjuncts, fmt.Sprintf("x0.id = %s.id", negVar))
		}
	}
	if rng.Float64() < 0.3 {
		i := rng.Intn(n)
		op := [...]string{"<", ">", "!="}[rng.Intn(3)]
		conjuncts = append(conjuncts, fmt.Sprintf("x%d.v %s %d", i, op, rng.Intn(valRange)))
	}

	fn := [...]string{"COUNT", "SUM", "AVG", "MIN", "MAX"}[rng.Intn(5)]
	arg := "*"
	if fn != "COUNT" {
		arg = fmt.Sprintf("x%d.v", rng.Intn(n))
	}

	window := 4 + rng.Intn(60)
	var q strings.Builder
	fmt.Fprintf(&q, "AGGREGATE %s(%s) OVER SEQ(%s)", fn, arg, pattern)
	if len(conjuncts) > 0 {
		fmt.Fprintf(&q, " WHERE %s", strings.Join(conjuncts, " AND "))
	}
	fmt.Fprintf(&q, " WITHIN %d", window)
	if rng.Float64() < 0.5 {
		fmt.Fprintf(&q, " SLIDE %d", 1+rng.Intn(window))
	}
	if rng.Float64() < 0.5 {
		fmt.Fprintf(&q, " GROUP BY x%d.id", rng.Intn(n))
	}
	if rng.Float64() < 0.4 {
		switch rng.Intn(3) {
		case 0:
			fmt.Fprintf(&q, " HAVING w.count >= %d", 1+rng.Intn(3))
		case 1:
			fmt.Fprintf(&q, " HAVING w.value >= %d", rng.Intn(valRange))
		default:
			fmt.Fprintf(&q, " HAVING w.value != %d", rng.Intn(valRange))
		}
	}
	return q.String(), used
}

// aggTruth computes the normative aggregate output by brute force: oracle
// pattern matches on the sorted stream, bucketed into every grid window
// that contains them with the same spec helpers the operator uses.
func aggTruth(p *plan.Plan, sorted []event.Event) []plan.Match {
	spec := p.Agg
	type elem struct {
		ts    event.Time
		part  fiba.Partial
		group event.Value
	}
	var elems []elem
	for _, m := range oracle.Matches(p, sorted) {
		ts, part, g, ok := spec.ElementOf(m, nil)
		if !ok {
			continue
		}
		elems = append(elems, elem{ts, part, g})
	}
	endSet := map[event.Time]bool{}
	for _, el := range elems {
		for end := plan.AlignUp(el.ts, spec.Slide); end-p.Window < el.ts; end += spec.Slide {
			endSet[end] = true
		}
	}
	ends := make([]event.Time, 0, len(endSet))
	for end := range endSet {
		ends = append(ends, end)
	}
	sort.Slice(ends, func(i, j int) bool { return ends[i] < ends[j] })

	var out []plan.Match
	for _, end := range ends {
		var keys []event.Value
		seen := map[event.Value]bool{}
		parts := map[event.Value]fiba.Partial{}
		for _, el := range elems {
			if el.ts <= end-p.Window || el.ts > end {
				continue
			}
			gk := event.Value{}
			if spec.GroupSlot >= 0 {
				gk = el.group.MapKey()
			}
			if !seen[gk] {
				seen[gk] = true
				keys = append(keys, gk)
			}
			parts[gk] = parts[gk].Merge(el.part)
		}
		for _, gk := range keys {
			v, count, ok := spec.Result(parts[gk])
			if !ok {
				continue
			}
			av := &plan.AggValue{
				Func:        string(spec.Func),
				WindowStart: end - p.Window,
				WindowEnd:   end,
				Group:       gk,
				HasGroup:    spec.GroupSlot >= 0,
				Value:       v,
				Count:       count,
			}
			if !spec.EvalHaving(av, nil) {
				continue
			}
			out = append(out, plan.Match{Kind: plan.Insert, Events: []event.Event{plan.WindowEvent(end)}, Agg: av})
		}
	}
	return out
}

// RunAgg executes every engine configuration over an aggregate case and
// returns the first divergence from the brute-force window truth, or nil.
// Like Run it is a pure function of the case.
func RunAgg(c Case) *Failure {
	p, err := plan.ParseAndCompile(c.Query, Schema())
	if err != nil {
		return &Failure{Case: c, Check: "agg-compile", Diff: err.Error()}
	}
	if p.Agg == nil {
		return &Failure{Case: c, Check: "agg-compile", Diff: "query compiled without an aggregate spec"}
	}
	q, err := oostream.Compile(c.Query, Schema())
	if err != nil {
		return &Failure{Case: c, Check: "agg-compile", Diff: err.Error()}
	}

	sorted := make([]event.Event, len(c.Arrival))
	copy(sorted, c.Arrival)
	event.SortByTime(sorted)
	truth := aggTruth(p, sorted)

	fail := func(check string, got []plan.Match) *Failure {
		if ok, diff := plan.SameResults(truth, got); !ok {
			return &Failure{Case: c, Check: check, Diff: diff, Truth: len(truth)}
		}
		return nil
	}
	errf := func(check string, err error) *Failure {
		return &Failure{Case: c, Check: check, Diff: err.Error(), Truth: len(truth)}
	}

	// The in-order baseline is exact on sorted input.
	if f := fail("agg-inorder-sorted", run(q, oostream.Config{Strategy: oostream.StrategyInOrder}, sorted)); f != nil {
		return f
	}

	// Every disorder-tolerant strategy on the arrival order. The
	// speculative run emits preview + revision pairs; SameResults applies
	// the retractions, so the check asserts net convergence (I7 lifted to
	// windows).
	native := oostream.Config{Strategy: oostream.StrategyNative, K: c.K}
	for _, sc := range []struct {
		check string
		cfg   oostream.Config
	}{
		{"agg-native", native},
		{"agg-kslack", oostream.Config{Strategy: oostream.StrategyKSlack, K: c.K}},
		{"agg-speculate", oostream.Config{Strategy: oostream.StrategySpeculate, K: c.K}},
		{"agg-hybrid", oostream.Config{Strategy: oostream.StrategyHybrid, K: c.K}},
	} {
		if f := fail(sc.check, run(q, sc.cfg, c.Arrival)); f != nil {
			return f
		}
	}

	// Heartbeat-insertion invariance (I9) holds through the operator.
	if f := fail("agg-native-heartbeat", runWithHeartbeats(q, native, c.Arrival, c.K)); f != nil {
		return f
	}

	// The batch path must agree (BatchProcessor contract through the
	// operator); the partition sizes derive from the seed, keeping the
	// trial pure.
	if f := fail("agg-native-batch", runAggBatched(q, native, c.Arrival, c.Seed)); f != nil {
		return f
	}

	// Provenance on: observation must not change the window multiset, and
	// every emitted window must carry a lineage record.
	pgot := run(q, oostream.Config{Strategy: oostream.StrategyNative, K: c.K, Provenance: true}, c.Arrival)
	if f := fail("agg-native-prov", pgot); f != nil {
		return f
	}
	for _, m := range pgot {
		if m.Prov == nil {
			return &Failure{Case: c, Check: "agg-native-prov", Diff: fmt.Sprintf("window %s has no lineage record", m.Agg), Truth: len(truth)}
		}
	}

	// Checkpoint/restore transparency: the operator tree serializes with
	// the native engine's state and the restored run continues exactly.
	got, err := runCheckpointed(q, native, c.Arrival)
	if err != nil {
		return errf("agg-checkpoint", err)
	}
	if f := fail("agg-checkpoint", got); f != nil {
		return f
	}

	// Partitioning soundness: when the stream partitions by the GROUP BY
	// attribute, per-shard aggregation must union to the same windows.
	if p.Agg.GroupAttr == PartitionAttr && q.PartitionableBy(PartitionAttr) {
		sharded := native
		sharded.Partition = oostream.Partition{Attr: PartitionAttr, Shards: shardCount}
		se, err := oostream.NewEngine(q, sharded)
		if err != nil {
			return errf("agg-partitioned", err)
		}
		if f := fail("agg-partitioned", se.ProcessAll(c.Arrival)); f != nil {
			return f
		}
	}
	return nil
}

// runAggBatched drives the facade batch path with seed-derived batch
// boundaries (1–6 events per call).
func runAggBatched(q *oostream.Query, cfg oostream.Config, events []event.Event, seed int64) []plan.Match {
	rng := rand.New(rand.NewSource(seed ^ 0x5eedba7c4))
	en := oostream.MustNewEngine(q, cfg)
	var out []plan.Match
	for i := 0; i < len(events); {
		n := 1 + rng.Intn(6)
		if i+n > len(events) {
			n = len(events) - i
		}
		out = append(out, en.ProcessBatch(events[i:i+n])...)
		i += n
	}
	return append(out, en.Flush()...)
}
