package difftest

import (
	"testing"

	"oostream/internal/event"
)

// Regression fixtures: shrunk repros the differential harness found and
// minimized on real soak runs. Each one made a strategy diverge from the
// oracle before its bug was fixed; they are pinned here so the divergence
// can never quietly return. Add new entries by pasting a Failure's
// ReproSource() output and naming the scenario.
//
// All three cases below are minimized repros of the in-order engine's
// equal-timestamp/RIP bug (fixed in internal/inorder): the classic RIP
// walk checked candidates only against the *last* event's timestamp, so a
// candidate equal to its immediate successor — or, for repeated-type
// patterns, the successor event itself, reachable through the RIP it
// recorded a moment earlier — could chain into a match, violating the
// strict-timestamp sequencing semantics (DESIGN.md §3) the oracle
// implements.
var regressions = []struct {
	name string
	c    Case
}{
	{
		// SEQ(A, D, D, A) over three events: the old walk bound the single
		// arrival-adjacent D at both middle positions via its self-recorded
		// RIP, fabricating a match from fewer events than positions.
		name: "same-event-reuse-repeated-type",
		c: Case{
			Query: "PATTERN SEQ(A x0, D x1, D x2, A x3) WHERE x0.id = x1.id AND x0.id = x2.id AND x0.id = x3.id WITHIN 62",
			K:     2,
			Arrival: []event.Event{
				Ev("A", 73, 36, 1, 6),
				Ev("D", 75, 37, 1, 7),
				Ev("A", 78, 38, 1, 4),
			},
		},
	},
	{
		// D@33 and B@33 tie on timestamp; strict sequencing forbids the
		// pair from chaining as adjacent components, but the old walk let
		// the tie through (it only compared against the final B@71).
		// Negation and a disordered arrival (Seq 17 before 16) ride along.
		name: "equal-ts-tie-with-negation",
		c: Case{
			Query: "PATTERN SEQ(B x0, !(D n0), D x1, B x2, B x3) WHERE x3.id != x1.id WITHIN 75",
			K:     16,
			Arrival: []event.Event{
				Ev("D", 33, 17, 0, 5),
				Ev("B", 33, 16, 2, 7),
				Ev("B", 68, 31, 2, 2),
				Ev("B", 71, 32, 2, 1),
			},
		},
	},
	{
		// Leading negation plus a partial (non-partitionable) id link; the
		// old walk reused B@19 across both B positions. The arrival order
		// is disordered (C before D) to exercise the full strategy matrix.
		name: "leading-negation-partial-link",
		c: Case{
			Query: "PATTERN SEQ(!(D n0), B x0, B x1, D x2, C x3) WHERE x2.id = x0.id AND x0.v != x3.v AND x1.v != 6 WITHIN 10",
			K:     20,
			Arrival: []event.Event{
				Ev("B", 19, 12, 0, 0),
				Ev("C", 25, 18, 1, 6),
				Ev("D", 23, 15, 0, 7),
			},
		},
	},
}

// TestRegressions replays every pinned repro through the full differential
// check set; any divergence fails with the same shrunk report a fresh find
// would produce.
func TestRegressions(t *testing.T) {
	for _, r := range regressions {
		r := r
		t.Run(r.name, func(t *testing.T) {
			if fail := Run(r.c); fail != nil {
				t.Fatalf("regression resurfaced:\n%s", fail.Report())
			}
		})
	}
}
