package difftest

import (
	"fmt"
	"strings"
)

// Report renders a failure for humans: the verdict, the stream, and a
// ready-to-paste Go repro. Everything needed to reproduce is in the text;
// nothing depends on process state.
func (f *Failure) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DIVERGENCE seed=%d check=%s truth=%d\n", f.Case.Seed, f.Check, f.Truth)
	fmt.Fprintf(&b, "query: %s\n", f.Case.Query)
	fmt.Fprintf(&b, "K=%d arrival (%d events):\n", f.Case.K, len(f.Case.Arrival))
	for _, e := range f.Case.Arrival {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	fmt.Fprintf(&b, "diff (oracle vs engine):\n%s\n", indent(f.Diff))
	fmt.Fprintf(&b, "repro:\n%s", indent(f.ReproSource()))
	return b.String()
}

// ReproSource renders the failing case as a Go composite literal using the
// difftest.Ev helper, directly usable as a regress_test.go fixture.
func (f *Failure) ReproSource() string {
	var b strings.Builder
	fmt.Fprintf(&b, "// seed %d, check %q\n", f.Case.Seed, f.Check)
	b.WriteString("difftest.Case{\n")
	fmt.Fprintf(&b, "\tQuery: %q,\n", f.Case.Query)
	fmt.Fprintf(&b, "\tK:     %d,\n", f.Case.K)
	b.WriteString("\tArrival: []event.Event{\n")
	for _, e := range f.Case.Arrival {
		id, v := int64(0), int64(0)
		if x, ok := e.Attr("id"); ok {
			id, _ = x.AsInt()
		}
		if x, ok := e.Attr("v"); ok {
			v, _ = x.AsInt()
		}
		fmt.Fprintf(&b, "\t\tdifftest.Ev(%q, %d, %d, %d, %d),\n", e.Type, e.TS, e.Seq, id, v)
	}
	b.WriteString("\t},\n}")
	return b.String()
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "  " + l
	}
	return strings.Join(lines, "\n")
}
