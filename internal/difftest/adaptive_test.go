package difftest

import (
	"fmt"
	"testing"
)

// adaptiveTrialCount is the randomized-trial budget for the adaptive
// differential. Each trial runs six adaptive engine configurations, so
// the budget is smaller than the main differential's.
const adaptiveTrialCount = 200

// TestAdaptiveDifferentialTrials drives RunAdaptive over random trials:
// dynamic-K admission equivalence, shedding accounting, hybrid switch
// protocol, facade wiring, and checkpoint round-trips, all against the
// oracle.
func TestAdaptiveDifferentialTrials(t *testing.T) {
	n := adaptiveTrialCount
	if testing.Short() {
		n = 40
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%04d", seed), func(t *testing.T) {
			t.Parallel()
			if fail := RunAdaptive(Generate(seed)); fail != nil {
				t.Fatalf("%s", fail.Report())
			}
		})
	}
}
