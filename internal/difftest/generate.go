package difftest

import (
	"fmt"
	"math/rand"
	"strings"

	"oostream/internal/event"
	"oostream/internal/gen"
	"oostream/internal/netsim"
)

// types is the event-type universe trials draw from. Four types keeps
// candidate lists dense (collisions and repeated-type patterns are the
// hard cases) while leaving room for irrelevant-type noise.
var types = [...]string{"A", "B", "C", "D"}

// Attribute ranges. Small domains force key collisions, which is where
// predicate and partition bugs live.
const (
	maxIDRange = 4 // ids drawn from [0, 1+rng.Intn(maxIDRange))
	valRange   = 8 // "v" drawn from [0, valRange)
)

// Schema declares the trial universe: every type carries an integer
// partition key "id" and an integer value "v".
func Schema() *event.Schema {
	s := event.NewSchema()
	for _, t := range types {
		s.Declare(t, map[string]event.Kind{
			"id": event.KindInt,
			"v":  event.KindInt,
		})
	}
	return s
}

// Ev builds a trial-universe event; regression fixtures and repro output
// use it to keep checked-in cases one line per event.
func Ev(typ string, ts event.Time, seq event.Seq, id, v int64) event.Event {
	e := event.New(typ, ts, event.Attrs{"id": event.Int(id), "v": event.Int(v)})
	e.Seq = seq
	return e
}

// Generate derives a complete trial — query, sorted stream, disorder — from
// a single seed. Every random choice flows through one *rand.Rand, so the
// seed alone reproduces the case bit-for-bit.
func Generate(seed int64) Case {
	rng := rand.New(rand.NewSource(seed))
	query, qtypes := genQuery(rng)
	sorted := genStream(rng, qtypes)
	arrival, k := genDisorder(rng, sorted)
	return Case{Seed: seed, Query: query, K: k, Arrival: arrival}
}

// GeneratePermuted derives query and sorted stream from the seed but takes
// the arrival order from an arbitrary byte string (a Fisher–Yates drive),
// with K measured from the realized disorder. This is the adversarial
// entry the FuzzArrival target uses: the coverage engine explores
// permutations no stochastic disorder model would produce.
func GeneratePermuted(seed int64, perm []byte) Case {
	rng := rand.New(rand.NewSource(seed))
	query, qtypes := genQuery(rng)
	sorted := genStream(rng, qtypes)
	arrival := make([]event.Event, len(sorted))
	copy(arrival, sorted)
	for i, b := len(arrival)-1, 0; i > 0; i-- {
		if len(perm) == 0 {
			break
		}
		j := int(perm[b%len(perm)]) % (i + 1)
		b++
		arrival[i], arrival[j] = arrival[j], arrival[i]
	}
	k := gen.MaxDelay(arrival)
	if k == 0 {
		k = 1
	}
	return Case{Seed: seed, Query: query, K: k, Arrival: arrival}
}

// genQuery builds a random SEQ query: 2–4 positive components, optional
// negation at a random gap, an id-equality chain most of the time (so the
// shard checks run), and occasional value predicates. It returns the query
// text and the set of types the pattern references (stream generation
// biases toward them).
func genQuery(rng *rand.Rand) (string, map[string]bool) {
	n := 2 + rng.Intn(3)
	comps := make([]string, n) // component types
	used := make(map[string]bool)
	for i := range comps {
		comps[i] = types[rng.Intn(len(types))]
		used[comps[i]] = true
	}
	vars := make([]string, n)
	for i := range vars {
		vars[i] = fmt.Sprintf("x%d", i)
	}

	negated := rng.Float64() < 0.5
	negType, negVar := "", ""
	negGap := 0
	if negated {
		negType = types[rng.Intn(len(types))]
		used[negType] = true
		negVar = "n0"
		negGap = rng.Intn(n + 1)
	}

	var parts []string
	for i := 0; i < n; i++ {
		if negated && negGap == i {
			parts = append(parts, fmt.Sprintf("!(%s %s)", negType, negVar))
		}
		parts = append(parts, fmt.Sprintf("%s %s", comps[i], vars[i]))
	}
	if negated && negGap == n {
		parts = append(parts, fmt.Sprintf("!(%s %s)", negType, negVar))
	}
	pattern := strings.Join(parts, ", ")

	var conjuncts []string
	// Partition chain on id: links every component (incl. the negation) to
	// x0, making the query PartitionableBy("id"). High probability — the
	// shard checks only run on these.
	if rng.Float64() < 0.8 {
		for i := 1; i < n; i++ {
			conjuncts = append(conjuncts, fmt.Sprintf("x0.id = x%d.id", i))
		}
		if negated {
			conjuncts = append(conjuncts, fmt.Sprintf("x0.id = %s.id", negVar))
		}
	} else if rng.Float64() < 0.5 && n >= 2 {
		// A partial link or an id-inequality: not partitionable, exercises
		// the non-sharded lineage with cross predicates.
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			op := "="
			if rng.Float64() < 0.4 {
				op = "!="
			}
			conjuncts = append(conjuncts, fmt.Sprintf("x%d.id %s x%d.id", a, op, b))
		}
	}
	// Value predicates: variable-vs-variable comparisons and literal bounds.
	if rng.Float64() < 0.45 && n >= 2 {
		a := rng.Intn(n - 1)
		b := a + 1 + rng.Intn(n-a-1)
		op := [...]string{"<", "<=", ">", ">=", "!="}[rng.Intn(5)]
		conjuncts = append(conjuncts, fmt.Sprintf("x%d.v %s x%d.v", a, op, b))
	}
	if rng.Float64() < 0.35 {
		i := rng.Intn(n)
		op := [...]string{"<", ">", "=", "!="}[rng.Intn(4)]
		conjuncts = append(conjuncts, fmt.Sprintf("x%d.v %s %d", i, op, rng.Intn(valRange)))
	}
	if negated && rng.Float64() < 0.3 {
		op := [...]string{"!=", "<", ">"}[rng.Intn(3)]
		conjuncts = append(conjuncts, fmt.Sprintf("%s.v %s %d", negVar, op, rng.Intn(valRange)))
	}

	window := 4 + rng.Intn(80)
	var q strings.Builder
	fmt.Fprintf(&q, "PATTERN SEQ(%s)", pattern)
	if len(conjuncts) > 0 {
		fmt.Fprintf(&q, " WHERE %s", strings.Join(conjuncts, " AND "))
	}
	fmt.Fprintf(&q, " WITHIN %d", window)
	return q.String(), used
}

// genStream builds a sorted, sequence-numbered stream of 12–48 events with
// small timestamp gaps (including zero gaps: equal-timestamp ties are a
// historic bug class) and small id/v domains.
func genStream(rng *rand.Rand, qtypes map[string]bool) []event.Event {
	biased := make([]string, 0, len(qtypes))
	for _, t := range types {
		if qtypes[t] {
			biased = append(biased, t)
		}
	}
	nEv := 12 + rng.Intn(37)
	idRange := 1 + rng.Intn(maxIDRange)
	// Key-skew spectrum for the keyed-stacks checks: occasionally force one
	// hot key (every event in one group), a medium spread, or a cardinality
	// far above the stream length (every key group near-singleton).
	switch rng.Intn(8) {
	case 0:
		idRange = 1
	case 1:
		idRange = 10
	case 2:
		idRange = 1000
	}
	events := make([]event.Event, 0, nEv)
	ts := event.Time(0)
	for i := 0; i < nEv; i++ {
		ts += event.Time(rng.Intn(5)) // 0..4: zero gaps make TS ties
		typ := types[rng.Intn(len(types))]
		if len(biased) > 0 && rng.Float64() < 0.7 {
			typ = biased[rng.Intn(len(biased))]
		}
		events = append(events, Ev(typ, ts, 0, int64(rng.Intn(idRange)), int64(rng.Intn(valRange))))
	}
	event.SortByTime(events)
	for i := range events {
		events[i].Seq = event.Seq(i + 1)
	}
	return events
}

// genDisorder picks an arrival order: sorted, synthetic bounded shuffle, or
// network-delivery simulation, all driven by the trial's rng. K is the
// measured realized disorder (so the bound always holds), occasionally
// padded (engines must tolerate a slack K above the true disorder).
func genDisorder(rng *rand.Rand, sorted []event.Event) ([]event.Event, event.Time) {
	var arrival []event.Event
	switch rng.Intn(4) {
	case 0: // in-order arrival: disorder-handling must be transparent
		arrival = make([]event.Event, len(sorted))
		copy(arrival, sorted)
	case 1, 2:
		arrival = gen.ShuffleRand(sorted, gen.Disorder{
			Ratio:    0.15 + 0.6*rng.Float64(),
			MaxDelay: 1 + event.Time(rng.Intn(30)),
		}, rng)
	default:
		cfg := netsim.Config{
			Sources: 1 + rng.Intn(3),
			Link: netsim.LinkConfig{
				BaseDelay:  event.Time(rng.Intn(3)),
				JitterMean: 1 + 6*rng.Float64(),
				HeavyTailP: 0.1,
				HeavyTailX: 4,
			},
		}
		if rng.Float64() < 0.3 {
			cfg.Failure = netsim.FailureConfig{MTBF: 40, OutageMean: 15}
		}
		if rng.Float64() < 0.5 {
			cfg.PartitionAttr = PartitionAttr
		}
		var err error
		arrival, _, _, err = netsim.DeliverRand(sorted, cfg, rng)
		if err != nil { // unreachable for the configs above
			panic(err)
		}
	}
	k := gen.MaxDelay(arrival)
	if k == 0 {
		k = 1
	}
	if rng.Float64() < 0.3 {
		k += event.Time(rng.Intn(6))
	}
	return arrival, k
}
