package difftest

import (
	"fmt"
	"testing"
)

// multiTrialCount is the randomized-trial budget of the multi-query
// differential test; the acceptance bar is ≥500 trials.
const multiTrialCount = 500

// TestMultiDifferentialTrials runs the multi-query QuerySet differential
// over generated trials: per-query equivalence with the oracle and with
// independent engines across all strategies, batch exactness, lineage,
// live Register/Unregister, and supervised kill/recover with checkpoint
// v2 — including live mutations across crashes.
func TestMultiDifferentialTrials(t *testing.T) {
	n := multiTrialCount
	if testing.Short() {
		n = 40
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%04d", seed), func(t *testing.T) {
			t.Parallel()
			if fail := RunMulti(Generate(seed)); fail != nil {
				t.Fatalf("%s", ShrinkMulti(fail).Report())
			}
		})
	}
}

// TestShrinkMultiPreservesFailure plants a deliberate divergence by
// corrupting K below the stream's real disorder (so the shared buffer
// drops events the oracle sees) and checks the multi-query shrinker keeps
// a failing, no-larger case.
func TestShrinkMultiPreservesFailure(t *testing.T) {
	var planted *Failure
	for seed := int64(1); seed <= 400 && planted == nil; seed++ {
		c := Generate(seed)
		if c.K < 2 {
			continue
		}
		c.K = 1
		if fail := RunMulti(c); fail != nil {
			planted = fail
		}
	}
	if planted == nil {
		t.Skip("no K-violation failure found in 400 seeds")
	}
	shrunk := ShrinkMulti(planted)
	if shrunk == nil {
		t.Fatal("ShrinkMulti returned nil for a failing case")
	}
	if RunMulti(shrunk.Case) == nil {
		t.Fatalf("shrunk case no longer fails:\n%s", shrunk.Report())
	}
	if len(shrunk.Case.Arrival) > len(planted.Case.Arrival) {
		t.Fatalf("shrunk case grew: %d > %d events", len(shrunk.Case.Arrival), len(planted.Case.Arrival))
	}
}
