// Package gen produces the synthetic workloads of the evaluation and the
// controlled disorder injection that turns a sorted stream into an
// out-of-order arrival sequence with a known bound.
//
// The paper evaluated on RFID supply-chain style streams (its motivating
// application, after Wu et al. SIGMOD'06); the original traces are not
// available, so the generators here synthesize equivalents: an RFID
// shop-floor trace (SHELF/COUNTER/EXIT readings per item), a network
// intrusion trace, a stock tick trace, and a uniform typed stream for
// scaling experiments. All generators are deterministic in their seed,
// emit events in nondecreasing timestamp order, and assign the stable
// sequence numbers that give events identity across arrival orders.
package gen

import (
	"math/rand"
	"sort"

	"oostream/internal/event"
)

// Disorder configures bounded disorder injection.
type Disorder struct {
	// Ratio is the fraction of events to delay, in [0, 1].
	Ratio float64
	// MaxDelay is the maximum timestamp displacement a delayed event
	// suffers; the resulting stream is K-slack-bounded with K = MaxDelay.
	MaxDelay event.Time
	// Seed drives the random choices.
	Seed int64
}

// Shuffle returns the events in an arrival order where a Ratio fraction is
// delayed by up to MaxDelay time units: each selected event's arrival key
// is its timestamp plus a uniform delay in [1, MaxDelay]; the stream is
// then stably sorted by arrival key. The input must be sorted by (TS, Seq)
// and is not modified.
//
// The output satisfies the K-slack bound for K = MaxDelay: when an event e
// arrives, every earlier arrival has timestamp at most e.TS + MaxDelay, so
// e's delay against the max-seen clock never exceeds MaxDelay.
func Shuffle(events []event.Event, d Disorder) []event.Event {
	return ShuffleRand(events, d, rand.New(rand.NewSource(d.Seed)))
}

// ShuffleRand is Shuffle driven by an explicit random source instead of
// d.Seed, so a composite experiment (query generation, stream generation,
// disorder injection) can derive every random choice from one master seed.
// The rand state is advanced; d.Seed is ignored.
func ShuffleRand(events []event.Event, d Disorder, rng *rand.Rand) []event.Event {
	out := make([]event.Event, len(events))
	copy(out, events)
	if d.Ratio <= 0 || d.MaxDelay <= 0 {
		return out
	}
	keys := make([]event.Time, len(out))
	for i, e := range out {
		keys[i] = e.TS
		if rng.Float64() < d.Ratio {
			keys[i] += event.Time(rng.Int63n(int64(d.MaxDelay))) + 1
		}
	}
	idx := make([]int, len(out))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	shuffled := make([]event.Event, len(out))
	for i, j := range idx {
		shuffled[i] = out[j]
	}
	return shuffled
}

// OOORatio measures the fraction of events that arrive with a timestamp
// below the maximum seen before them.
func OOORatio(events []event.Event) float64 {
	if len(events) == 0 {
		return 0
	}
	ooo := 0
	maxTS := events[0].TS
	for _, e := range events[1:] {
		if e.TS < maxTS {
			ooo++
		} else {
			maxTS = e.TS
		}
	}
	return float64(ooo) / float64(len(events))
}

// MaxDelay measures the largest delay of any event against the running max
// timestamp: the smallest K for which the stream is K-slack-bounded.
func MaxDelay(events []event.Event) event.Time {
	var maxSeen, maxDelay event.Time
	for i, e := range events {
		if i == 0 || e.TS > maxSeen {
			maxSeen = e.TS
			continue
		}
		if d := maxSeen - e.TS; d > maxDelay {
			maxDelay = d
		}
	}
	return maxDelay
}

// assignSeqs numbers events 1..n in their (sorted) order.
func assignSeqs(events []event.Event) []event.Event {
	for i := range events {
		events[i].Seq = event.Seq(i + 1)
	}
	return events
}
