package gen

import (
	"math"
	"testing"
	"testing/quick"

	"oostream/internal/event"
)

func TestShuffleDeterministic(t *testing.T) {
	events := Uniform(200, []string{"A", "B"}, 4, 10, 1)
	d := Disorder{Ratio: 0.2, MaxDelay: 100, Seed: 7}
	a := Shuffle(events, d)
	b := Shuffle(events, d)
	for i := range a {
		if a[i].Seq != b[i].Seq {
			t.Fatalf("shuffle not deterministic at %d", i)
		}
	}
}

func TestShuffleZeroRatioIsIdentity(t *testing.T) {
	events := Uniform(100, []string{"A"}, 4, 10, 1)
	out := Shuffle(events, Disorder{Ratio: 0, MaxDelay: 100, Seed: 1})
	for i := range out {
		if out[i].Seq != events[i].Seq {
			t.Fatal("zero ratio must not reorder")
		}
	}
	if OOORatio(out) != 0 {
		t.Error("OOORatio of sorted stream must be 0")
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	events := Uniform(300, []string{"A", "B", "C"}, 4, 10, 2)
	out := Shuffle(events, Disorder{Ratio: 0.5, MaxDelay: 200, Seed: 3})
	if len(out) != len(events) {
		t.Fatal("length changed")
	}
	seen := make(map[event.Seq]bool, len(out))
	for _, e := range out {
		if seen[e.Seq] {
			t.Fatal("duplicate event after shuffle")
		}
		seen[e.Seq] = true
	}
}

func TestShuffleRespectsBoundProperty(t *testing.T) {
	f := func(seed int64, ratioRaw uint8, delayRaw uint16) bool {
		events := Uniform(150, []string{"A", "B"}, 4, 8, seed)
		d := Disorder{
			Ratio:    float64(ratioRaw%101) / 100,
			MaxDelay: event.Time(delayRaw%500) + 1,
			Seed:     seed + 1,
		}
		out := Shuffle(events, d)
		return MaxDelay(out) <= d.MaxDelay
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleProducesDisorder(t *testing.T) {
	events := Uniform(2000, []string{"A", "B"}, 4, 10, 1)
	out := Shuffle(events, Disorder{Ratio: 0.3, MaxDelay: 200, Seed: 2})
	got := OOORatio(out)
	if got < 0.05 {
		t.Errorf("OOORatio = %f, want substantial disorder", got)
	}
	// Higher ratio, more disorder (sanity, not exact).
	out2 := Shuffle(events, Disorder{Ratio: 0.9, MaxDelay: 200, Seed: 2})
	if OOORatio(out2) <= got {
		t.Errorf("ratio 0.9 gave %f, not more than %f", OOORatio(out2), got)
	}
}

func TestOOORatioAndMaxDelay(t *testing.T) {
	events := []event.Event{
		{TS: 10, Seq: 1}, {TS: 30, Seq: 2}, {TS: 20, Seq: 3}, {TS: 40, Seq: 4}, {TS: 5, Seq: 5},
	}
	if got := OOORatio(events); math.Abs(got-0.4) > 1e-9 {
		t.Errorf("OOORatio = %f, want 0.4", got)
	}
	if got := MaxDelay(events); got != 35 {
		t.Errorf("MaxDelay = %d, want 35", got)
	}
	if OOORatio(nil) != 0 || MaxDelay(nil) != 0 {
		t.Error("empty stream should measure zero")
	}
}

func TestRFIDWorkload(t *testing.T) {
	cfg := DefaultRFID(100, 42)
	events := RFID(cfg)
	if !event.IsSortedByTime(events) {
		t.Fatal("RFID output not sorted")
	}
	schema := RFIDSchema()
	counts := map[string]int{}
	for i, e := range events {
		if e.Seq != event.Seq(i+1) {
			t.Fatal("seqs not dense")
		}
		if err := schema.Validate(e); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		counts[e.Type]++
	}
	if counts["SHELF"] != 100 || counts["EXIT"] != 100 {
		t.Errorf("counts = %v", counts)
	}
	if counts["COUNTER"] == 0 || counts["COUNTER"] == 100 {
		t.Errorf("PayRatio 0.8 should give some but not all counters: %d", counts["COUNTER"])
	}
	// Determinism.
	again := RFID(cfg)
	if len(again) != len(events) || again[10].TS != events[10].TS {
		t.Error("RFID not deterministic")
	}
}

func TestRFIDPerItemOrder(t *testing.T) {
	events := RFID(DefaultRFID(50, 7))
	shelf := map[int64]event.Time{}
	exit := map[int64]event.Time{}
	for _, e := range events {
		id, _ := e.Attrs["id"].AsInt()
		switch e.Type {
		case "SHELF":
			shelf[id] = e.TS
		case "EXIT":
			exit[id] = e.TS
		}
	}
	for id, sTS := range shelf {
		if eTS, ok := exit[id]; !ok || eTS <= sTS {
			t.Fatalf("item %d: shelf@%d exit@%d", id, sTS, exit[id])
		}
	}
}

func TestIntrusionWorkload(t *testing.T) {
	events := Intrusion(DefaultIntrusion(40, 9))
	if !event.IsSortedByTime(events) {
		t.Fatal("intrusion output not sorted")
	}
	counts := map[string]int{}
	for _, e := range events {
		counts[e.Type]++
		if _, ok := e.Attrs["src"]; !ok {
			t.Fatal("missing src")
		}
	}
	if counts["SCAN"] < 40 || counts["LOGIN"] < 40 || counts["EXFIL"] < 40 {
		t.Errorf("counts = %v", counts)
	}
}

func TestStockWorkload(t *testing.T) {
	events := Stock(DefaultStock(500, 11))
	if len(events) != 500 || !event.IsSortedByTime(events) {
		t.Fatal("stock output wrong")
	}
	for _, e := range events {
		p, ok := e.Attrs["price"].AsFloat()
		if !ok || p < 1 {
			t.Fatalf("bad price %v", e.Attrs["price"])
		}
	}
}

func TestUniformWorkload(t *testing.T) {
	events := Uniform(100, []string{"X", "Y", "Z"}, 5, 10, 3)
	if len(events) != 100 || !event.IsSortedByTime(events) {
		t.Fatal("uniform output wrong")
	}
	types := map[string]bool{}
	for _, e := range events {
		types[e.Type] = true
		id, ok := e.Attrs["id"].AsInt()
		if !ok || id < 0 || id >= 5 {
			t.Fatalf("bad id %v", e.Attrs["id"])
		}
	}
	if len(types) != 3 {
		t.Errorf("types = %v", types)
	}
}
