package gen

import (
	"math/rand"
	"strconv"

	"oostream/internal/event"
)

// RFIDConfig configures the RFID supply-chain workload. Items move through
// a shop: a SHELF reading when picked up, optionally a COUNTER reading when
// paid, and an EXIT reading when carried out. The shoplifting query
// SEQ(SHELF s, !(COUNTER c), EXIT e) WHERE s.id = e.id AND s.id = c.id
// detects items that left without being paid for.
type RFIDConfig struct {
	// Items is the number of item journeys to generate.
	Items int
	// PayRatio is the fraction of items that pass the counter.
	PayRatio float64
	// ShelfToExit is the maximum time from shelf to exit per item.
	ShelfToExit event.Time
	// InterArrival is the mean gap between consecutive item pickups.
	InterArrival event.Time
	// NoiseRatio adds unrelated reader events (type MISC) per item event.
	NoiseRatio float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultRFID is the configuration the experiment tables use.
func DefaultRFID(items int, seed int64) RFIDConfig {
	return RFIDConfig{
		Items:        items,
		PayRatio:     0.8,
		ShelfToExit:  5_000,
		InterArrival: 20,
		NoiseRatio:   0.3,
		Seed:         seed,
	}
}

// RFIDSchema declares the workload's event types.
func RFIDSchema() *event.Schema {
	s := event.NewSchema()
	intField := map[string]event.Kind{"id": event.KindInt}
	s.Declare("SHELF", map[string]event.Kind{"id": event.KindInt, "aisle": event.KindString})
	s.Declare("COUNTER", intField)
	s.Declare("EXIT", map[string]event.Kind{"id": event.KindInt, "gate": event.KindString})
	s.Declare("MISC", map[string]event.Kind{"id": event.KindInt})
	return s
}

// RFID generates the workload, sorted by timestamp with sequence numbers
// assigned.
func RFID(cfg RFIDConfig) []event.Event {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var events []event.Event
	start := event.Time(0)
	for item := 0; item < cfg.Items; item++ {
		start += event.Time(rng.Int63n(int64(cfg.InterArrival)*2) + 1)
		id := event.Int(int64(item))
		shelfTS := start
		exitTS := shelfTS + event.Time(rng.Int63n(int64(cfg.ShelfToExit))) + 2
		events = append(events, event.New("SHELF", shelfTS, event.Attrs{
			"id":    id,
			"aisle": event.Str("a" + strconv.Itoa(rng.Intn(12))),
		}))
		if rng.Float64() < cfg.PayRatio {
			counterTS := shelfTS + (exitTS-shelfTS)/2
			events = append(events, event.New("COUNTER", counterTS, event.Attrs{"id": id}))
		}
		events = append(events, event.New("EXIT", exitTS, event.Attrs{
			"id":   id,
			"gate": event.Str("g" + strconv.Itoa(rng.Intn(4))),
		}))
		for rng.Float64() < cfg.NoiseRatio {
			events = append(events, event.New("MISC", shelfTS+event.Time(rng.Int63n(int64(cfg.ShelfToExit))), event.Attrs{
				"id": event.Int(rng.Int63n(int64(cfg.Items) + 1)),
			}))
		}
	}
	event.SortByTime(events)
	return assignSeqs(events)
}

// IntrusionConfig configures the network-intrusion workload: port SCANs
// possibly followed by a LOGIN and an EXFIL transfer from the same source
// address. The detection query is
// SEQ(SCAN a, LOGIN l, EXFIL x) WHERE a.src = l.src AND l.src = x.src.
type IntrusionConfig struct {
	// Attackers is the number of attack sequences.
	Attackers int
	// Hosts is the size of the address pool (as int ids).
	Hosts int
	// BackgroundPerAttack is the number of benign events per attack.
	BackgroundPerAttack int
	// AttackSpan is the max duration of an attack sequence.
	AttackSpan event.Time
	// Seed drives all randomness.
	Seed int64
}

// DefaultIntrusion is the configuration the experiment tables use.
func DefaultIntrusion(attackers int, seed int64) IntrusionConfig {
	return IntrusionConfig{
		Attackers:           attackers,
		Hosts:               64,
		BackgroundPerAttack: 8,
		AttackSpan:          2_000,
		Seed:                seed,
	}
}

// Intrusion generates the workload, sorted with sequence numbers assigned.
func Intrusion(cfg IntrusionConfig) []event.Event {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var events []event.Event
	ts := event.Time(0)
	host := func() event.Value { return event.Int(int64(rng.Intn(cfg.Hosts))) }
	for a := 0; a < cfg.Attackers; a++ {
		ts += event.Time(rng.Int63n(50) + 1)
		src := host()
		t0 := ts
		t1 := t0 + event.Time(rng.Int63n(int64(cfg.AttackSpan)/2)+1)
		t2 := t1 + event.Time(rng.Int63n(int64(cfg.AttackSpan)/2)+1)
		events = append(events,
			event.New("SCAN", t0, event.Attrs{"src": src, "port": event.Int(int64(rng.Intn(1024)))}),
			event.New("LOGIN", t1, event.Attrs{"src": src, "ok": event.Bool(rng.Float64() < 0.5)}),
			event.New("EXFIL", t2, event.Attrs{"src": src, "bytes": event.Int(rng.Int63n(1 << 20))}),
		)
		for i := 0; i < cfg.BackgroundPerAttack; i++ {
			typ := [3]string{"SCAN", "LOGIN", "EXFIL"}[rng.Intn(3)]
			attrs := event.Attrs{"src": host()}
			switch typ {
			case "SCAN":
				attrs["port"] = event.Int(int64(rng.Intn(1024)))
			case "LOGIN":
				attrs["ok"] = event.Bool(true)
			case "EXFIL":
				attrs["bytes"] = event.Int(rng.Int63n(1 << 10))
			}
			events = append(events, event.New(typ, t0+event.Time(rng.Int63n(int64(cfg.AttackSpan))), attrs))
		}
	}
	event.SortByTime(events)
	return assignSeqs(events)
}

// StockConfig configures the stock tick workload: TRADE events per symbol
// with a random-walk price, for V-shape (rebound) pattern queries like
// SEQ(TRADE a, TRADE b, TRADE c) WHERE a.sym = b.sym AND b.sym = c.sym AND
// b.price < a.price AND c.price > b.price.
type StockConfig struct {
	// Ticks is the number of trades.
	Ticks int
	// Symbols is the number of distinct instruments.
	Symbols int
	// TickGap is the mean inter-trade gap.
	TickGap event.Time
	// Seed drives all randomness.
	Seed int64
}

// DefaultStock is the configuration the experiment tables use.
func DefaultStock(ticks int, seed int64) StockConfig {
	return StockConfig{Ticks: ticks, Symbols: 8, TickGap: 10, Seed: seed}
}

// Stock generates the workload, sorted with sequence numbers assigned.
func Stock(cfg StockConfig) []event.Event {
	rng := rand.New(rand.NewSource(cfg.Seed))
	prices := make([]float64, cfg.Symbols)
	for i := range prices {
		prices[i] = 50 + rng.Float64()*100
	}
	events := make([]event.Event, 0, cfg.Ticks)
	ts := event.Time(0)
	for i := 0; i < cfg.Ticks; i++ {
		ts += event.Time(rng.Int63n(int64(cfg.TickGap)*2) + 1)
		sym := rng.Intn(cfg.Symbols)
		prices[sym] += rng.NormFloat64()
		if prices[sym] < 1 {
			prices[sym] = 1
		}
		events = append(events, event.New("TRADE", ts, event.Attrs{
			"sym":   event.Int(int64(sym)),
			"price": event.Float(prices[sym]),
			"vol":   event.Int(rng.Int63n(1000) + 1),
		}))
	}
	return assignSeqs(events)
}

// Uniform generates n events drawn uniformly from the given types, with an
// integer "id" attribute in [0, idRange), mean inter-arrival gap, sorted
// and sequence-numbered. Used by the pattern-length scaling experiment.
func Uniform(n int, types []string, idRange int, gap event.Time, seed int64) []event.Event {
	rng := rand.New(rand.NewSource(seed))
	events := make([]event.Event, 0, n)
	ts := event.Time(0)
	for i := 0; i < n; i++ {
		ts += event.Time(rng.Int63n(int64(gap)*2) + 1)
		events = append(events, event.New(types[rng.Intn(len(types))], ts, event.Attrs{
			"id": event.Int(int64(rng.Intn(idRange))),
		}))
	}
	return assignSeqs(events)
}
