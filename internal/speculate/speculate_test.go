package speculate

import (
	"testing"
	"testing/quick"

	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/gen"
	"oostream/internal/oracle"
	"oostream/internal/plan"
)

func compile(t *testing.T, src string) *plan.Plan {
	t.Helper()
	p, err := plan.ParseAndCompile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConvergesToOracleUnderDisorder(t *testing.T) {
	// Invariant I7: inserts minus retracts equals the exact result set.
	queries := []string{
		"PATTERN SEQ(A a, B b) WITHIN 50",
		"PATTERN SEQ(A a, !(N n), B b) WITHIN 60",
		"PATTERN SEQ(A a, B b, !(N n)) WITHIN 40",
		"PATTERN SEQ(!(N n), A a, B b) WITHIN 60",
		"PATTERN SEQ(A a, !(N n), B b) WHERE a.id = n.id WITHIN 60",
	}
	for _, q := range queries {
		p := compile(t, q)
		for seed := int64(0); seed < 8; seed++ {
			sorted := gen.Uniform(150, []string{"A", "B", "N"}, 3, 6, seed)
			shuffled := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.4, MaxDelay: 40, Seed: seed + 1})
			want := oracle.Matches(p, sorted)
			got := engine.Drain(MustNew(p, Options{K: 40}), shuffled)
			if ok, diff := plan.SameResults(want, got); !ok {
				t.Fatalf("%s seed %d: converged set wrong:\n%s", q, seed, diff)
			}
		}
	}
}

func TestConvergenceProperty(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, !(N n), B b) WITHIN 50")
	f := func(seed int64) bool {
		sorted := gen.Uniform(80, []string{"A", "B", "N"}, 2, 5, seed)
		shuffled := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.5, MaxDelay: 30, Seed: seed})
		want := oracle.Matches(p, sorted)
		got := engine.Drain(MustNew(p, Options{K: 30}), shuffled)
		ok, _ := plan.SameResults(want, got)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEmitsImmediatelyThenRetracts(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, !(N n), B b) WITHIN 100")
	en := MustNew(p, Options{K: 50})
	en.Process(event.Event{Type: "A", TS: 10, Seq: 1})
	out := en.Process(event.Event{Type: "B", TS: 30, Seq: 2})
	if len(out) != 1 || out[0].Kind != plan.Insert {
		t.Fatalf("speculative insert expected, got %v", out)
	}
	// The negative arrives late: a retraction must follow.
	out = en.Process(event.Event{Type: "N", TS: 20, Seq: 3})
	if len(out) != 1 || out[0].Kind != plan.Retract || out[0].Key() != "1|2" {
		t.Fatalf("retract expected, got %v", out)
	}
	// A second identical negative must not retract twice.
	out = en.Process(event.Event{Type: "N", TS: 25, Seq: 4})
	if len(out) != 0 {
		t.Fatalf("double retraction: %v", out)
	}
	s := en.Metrics()
	if s.Matches != 1 || s.Retractions != 1 {
		t.Errorf("counters: %+v", s)
	}
}

func TestNegativeKnownAtConstructionSuppressesInsert(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, !(N n), B b) WITHIN 100")
	en := MustNew(p, Options{K: 50})
	en.Process(event.Event{Type: "A", TS: 10, Seq: 1})
	en.Process(event.Event{Type: "N", TS: 20, Seq: 2})
	out := en.Process(event.Event{Type: "B", TS: 30, Seq: 3})
	if len(out) != 0 {
		t.Fatalf("known negative must suppress insert, got %v", out)
	}
	if en.Metrics().Retractions != 0 {
		t.Error("nothing to retract")
	}
}

func TestSealedMatchNotRetractable(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, !(N n), B b) WITHIN 100")
	en := MustNew(p, Options{K: 10})
	en.Process(event.Event{Type: "A", TS: 10, Seq: 1})
	out := en.Process(event.Event{Type: "B", TS: 30, Seq: 2})
	if len(out) != 1 {
		t.Fatal("insert expected")
	}
	// Advance safe clock past the gap's seal (30): clock 45 => safe 35.
	en.Process(event.Event{Type: "A", TS: 45, Seq: 3})
	if len(en.vulnerable) != 0 {
		t.Error("vulnerability should have expired")
	}
	// A bound-violating negative (delay > K) is dropped, no retraction.
	out = en.Process(event.Event{Type: "N", TS: 20, Seq: 4})
	if len(out) != 0 {
		t.Fatalf("sealed match retracted: %v", out)
	}
	if en.Metrics().EventsLate != 1 {
		t.Error("late negative not counted")
	}
}

func TestNoRetractionsWithoutNegation(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 50")
	sorted := gen.Uniform(300, []string{"A", "B"}, 3, 5, 7)
	shuffled := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.4, MaxDelay: 30, Seed: 2})
	got := engine.Drain(MustNew(p, Options{K: 30}), shuffled)
	for _, m := range got {
		if m.Kind == plan.Retract {
			t.Fatal("positive-only query produced a retraction")
		}
	}
	if en := MustNew(p, Options{K: 30}); en.Name() != "speculate" {
		t.Error("name wrong")
	}
}

func TestLowerLatencyThanConservative(t *testing.T) {
	// The whole point of speculation: results appear with zero sealing
	// delay on the happy path.
	p := compile(t, "PATTERN SEQ(A a, !(N n), B b) WITHIN 100")
	en := MustNew(p, Options{K: 1000})
	en.Process(event.Event{Type: "A", TS: 10, Seq: 1})
	out := en.Process(event.Event{Type: "B", TS: 30, Seq: 2})
	if len(out) != 1 {
		t.Fatal("speculation should not wait for sealing")
	}
	if en.Metrics().LogicalLat.Max() != 0 {
		t.Errorf("latency = %d, want 0", en.Metrics().LogicalLat.Max())
	}
}

func TestInvalidOptions(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a) WITHIN 10")
	if _, err := New(p, Options{K: -1}); err == nil {
		t.Error("negative K accepted")
	}
}

func TestStateBoundedByPurge(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, !(N n), B b) WITHIN 50")
	sorted := gen.Uniform(10_000, []string{"A", "B", "N"}, 10, 5, 3)
	shuffled := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.2, MaxDelay: 100, Seed: 4})
	en := MustNew(p, Options{K: 100, PurgeEvery: 16})
	for _, e := range shuffled {
		en.Process(e)
	}
	if s := en.Metrics(); s.PeakState > 2000 {
		t.Errorf("peak state = %d", s.PeakState)
	}
}
