// Package speculate implements the aggressive/speculative output strategy
// sketched as the alternative design point to the paper's conservative
// negation handling (and developed fully in the authors' ICDE'09 follow-up):
// matches are emitted the moment their positive binding completes, without
// waiting for negation gaps to seal; if a qualifying negative event later
// arrives, a compensating Retract match is emitted for each invalidated
// result.
//
// For queries without negation the speculative engine behaves exactly like
// the native engine (which already emits eagerly). With negation it trades
// output finality for latency: downstream consumers must handle revisions.
// Invariant I7: the insert stream minus the retract stream converges to the
// exact result set once the stream is sealed.
package speculate

import (
	"container/heap"
	"fmt"
	"sort"

	"oostream/internal/adaptive"
	"oostream/internal/ais"
	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/metrics"
	"oostream/internal/obsv"
	"oostream/internal/plan"
	"oostream/internal/provenance"
)

// Options configure the speculative engine.
type Options struct {
	// K is the disorder bound, as in the native engine. It controls purge
	// horizons and when an emitted match stops being retractable.
	K event.Time
	// PurgeEvery runs a purge pass every PurgeEvery events (0 = default
	// 64, negative = never).
	PurgeEvery int
	// Adaptive, when non-nil, makes K dynamic exactly as in the native
	// engine: the safe clock becomes a monotone frontier over
	// (clock − controller's effective K). AdaptiveFeed marks this engine as
	// the controller's owner (it feeds lag observations and state sizes).
	Adaptive     *adaptive.Controller
	AdaptiveFeed bool
}

const defaultPurgeEvery = 64

// Engine is the aggressive out-of-order SSC engine with compensation.
type Engine struct {
	plan      *plan.Plan
	opts      Options
	stacks    *ais.Stacks
	negStores []*negStore
	// vulnerable tracks emitted matches that can still be retracted,
	// keyed by match key, with a heap for sealing-time expiry.
	vulnerable map[string]*vulnEntry
	expiry     vulnHeap
	vulnSeq    uint64
	clock      event.Time
	started    bool
	// frontier is the adaptive safe clock (see core.Engine.frontier):
	// monotone max over history of (clock − effective K). minTime when
	// opts.Adaptive is nil.
	frontier event.Time
	// shedded counts events discarded by overload degradation.
	shedded uint64
	arrival uint64
	since   int
	met     metrics.Collector
	// trace observes lifecycle steps when non-nil (nil-checked per site).
	trace     obsv.TraceHook
	traceName string
	// lat, when non-nil, stamps wall-clock stage boundaries on sampled
	// event spans.
	lat *obsv.LatencySampler

	// prov enables lineage records (flag-checked per site, like trace).
	// trig*/visited carry the current trigger through construction.
	prov    bool
	trigSeq event.Seq
	trigTS  event.Time
	trigPos int
	visited int
}

type vulnEntry struct {
	events []event.Event
	key    string
	sealTS event.Time
	// order is the entry's registration number: retractions are emitted in
	// original emission order, keeping the engine's output a deterministic
	// function of the event sequence (which exactly-once crash recovery
	// replays against).
	order uint64
	// retracted marks entries already compensated (lazily removed from
	// the expiry heap).
	retracted bool
}

var _ engine.Engine = (*Engine)(nil)

// New builds a speculative engine.
func New(p *plan.Plan, opts Options) (*Engine, error) {
	if opts.K < 0 {
		return nil, fmt.Errorf("K must be >= 0, got %d", opts.K)
	}
	if opts.PurgeEvery == 0 {
		opts.PurgeEvery = defaultPurgeEvery
	}
	en := &Engine{
		plan:       p,
		opts:       opts,
		frontier:   minTime,
		stacks:     ais.New(p.Len()),
		negStores:  make([]*negStore, len(p.Negatives)),
		vulnerable: make(map[string]*vulnEntry),
	}
	for i := range en.negStores {
		en.negStores[i] = &negStore{}
	}
	return en, nil
}

// MustNew is New for known-good options.
func MustNew(p *plan.Plan, opts Options) *Engine {
	en, err := New(p, opts)
	if err != nil {
		panic(err)
	}
	return en
}

// Name implements engine.Engine.
func (en *Engine) Name() string { return "speculate" }

// Observe implements engine.Observable.
func (en *Engine) Observe(s *obsv.Series, hook obsv.TraceHook) {
	en.met.Bind(s)
	en.trace = hook
	if s != nil && s.Name() != "" {
		en.traceName = s.Name()
	} else if en.traceName == "" {
		en.traceName = en.Name()
	}
}

// EnableProvenance implements engine.Provenancer.
func (en *Engine) EnableProvenance() { en.prov = true }

// Metrics implements engine.Engine.
func (en *Engine) Metrics() metrics.Snapshot { return en.met.Snapshot() }

// StateSnapshot implements engine.Introspectable. The speculative engine
// retains no lineage (output is eager; records leave with their match), so
// Lineage.Live stays 0; Vulnerable is the still-retractable match count.
func (en *Engine) StateSnapshot() *provenance.StateSnapshot {
	name := en.traceName
	if name == "" {
		name = en.Name()
	}
	s := &provenance.StateSnapshot{
		Engine:        name,
		Started:       en.started,
		Clock:         en.clock,
		Safe:          en.safe(),
		StackDepths:   make([]int, en.plan.Len()),
		NegStoreSizes: make([]int, len(en.negStores)),
		Vulnerable:    len(en.vulnerable),
		Lineage:       provenance.LineageStats{Enabled: en.prov},
	}
	s.PurgeFrontier = s.Safe - en.plan.Window
	if ad := en.opts.Adaptive; ad != nil {
		cs := ad.Snapshot()
		s.Adaptive = &provenance.AdaptiveStats{
			Enabled:      cs.Enabled,
			EffectiveK:   cs.EffectiveK,
			NominalK:     cs.NominalK,
			MaxKObserved: cs.MaxKObserved,
			Degraded:     cs.Degraded,
			Shedded:      en.shedded,
			Resizes:      cs.Resizes,
		}
	}
	for pos := 0; pos < en.plan.Len(); pos++ {
		s.StackDepths[pos] = en.stacks.Stack(pos).Len()
	}
	for i, ns := range en.negStores {
		s.NegStoreSizes[i] = ns.len()
	}
	return s
}

// StateSize implements engine.Engine.
func (en *Engine) StateSize() int {
	total := en.stacks.Size() + len(en.vulnerable)
	for _, ns := range en.negStores {
		total += ns.len()
	}
	return total
}

const minTime = event.Time(-1 << 62)

func (en *Engine) safe() event.Time {
	if !en.started {
		return minTime
	}
	if en.opts.Adaptive != nil {
		return en.frontier
	}
	return en.clock - en.opts.K
}

// advanceFrontier folds the controller's current effective K into the
// monotone frontier (see core.Engine.advanceFrontier).
func (en *Engine) advanceFrontier() {
	if en.opts.Adaptive == nil || !en.started {
		return
	}
	if cand := en.clock - en.opts.Adaptive.EffectiveK(); cand > en.frontier {
		en.frontier = cand
	}
}

// Process implements engine.Engine.
func (en *Engine) Process(e event.Event) []plan.Match {
	out := en.processOne(e, nil)
	en.lat.StageEnd(e.Seq, obsv.StageConstruct)
	en.maybePurge()
	en.met.SetLiveState(en.StateSize())
	en.publishAdaptive()
	return out
}

// SetLatencySampler implements engine.LatencySampled.
func (en *Engine) SetLatencySampler(ls *obsv.LatencySampler) { en.lat = ls }

// publishAdaptive refreshes the controller-derived gauges.
func (en *Engine) publishAdaptive() {
	if ad := en.opts.Adaptive; ad != nil {
		en.met.SetCurrentK(ad.EffectiveK())
		en.met.SetDegraded(ad.Degraded())
	}
}

// ProcessBatch implements engine.BatchProcessor. Vulnerable-entry expiry
// stays per event (it is cheap and keeps the retraction scan small), but
// the purge pass — output-invisible here for the same window-bound reason
// as the native engine's, and this engine always drops bound violators —
// and the state gauge are deferred to the batch boundary.
func (en *Engine) ProcessBatch(batch []event.Event) []plan.Match {
	var out []plan.Match
	for i := range batch {
		out = en.processOne(batch[i], out)
		en.lat.StageEnd(batch[i].Seq, obsv.StageConstruct)
	}
	en.maybePurge()
	en.met.SetLiveState(en.StateSize())
	en.publishAdaptive()
	return out
}

// processOne is the per-event pipeline shared by Process and ProcessBatch:
// admission, negative-store insertion with retraction of invalidated
// matches, AIS insertion with trigger-based construction, and vulnerable
// expiry. Purging and the gauge are the caller's responsibility.
func (en *Engine) processOne(e event.Event, out []plan.Match) []plan.Match {
	en.arrival++
	if !en.plan.Relevant(e.Type) {
		en.met.IncIrrelevant()
		return out
	}
	isOOO := en.started && e.TS < en.clock
	var lag event.Time
	if isOOO {
		lag = en.clock - e.TS
	}
	en.met.IncIn(isOOO, lag)
	if en.opts.AdaptiveFeed {
		en.opts.Adaptive.ObserveLag(lag)
	}
	if en.trace != nil {
		en.trace.Trace(obsv.TraceEvent{Op: obsv.OpAdmit, Engine: en.traceName, Type: e.Type, TS: e.TS, Seq: e.Seq})
	}
	en.advanceFrontier()
	if en.started && e.TS < en.safe() {
		if ad := en.opts.Adaptive; ad != nil && ad.Degraded() && e.TS >= en.clock-ad.NominalK() {
			en.shedded++
			en.met.IncShedded()
			if en.trace != nil {
				en.trace.Trace(obsv.TraceEvent{Op: obsv.OpShed, Engine: en.traceName, Type: e.Type, TS: e.TS, Seq: e.Seq})
			}
			return out
		}
		en.met.IncLate()
		if en.trace != nil {
			en.trace.Trace(obsv.TraceEvent{Op: obsv.OpDrop, Engine: en.traceName, Type: e.Type, TS: e.TS, Seq: e.Seq})
		}
		return out
	}
	if e.TS > en.clock || !en.started {
		en.clock = e.TS
		en.started = true
		en.advanceFrontier()
	}
	if !en.plan.ConstFalse {
		for _, negIdx := range en.plan.NegativesForType(e.Type) {
			if plan.EvalLocal(en.plan.Negatives[negIdx].Local, e, en.met.IncPredError) {
				en.negStores[negIdx].insert(e)
				out = en.retractInvalidated(negIdx, e, out)
			}
		}
		last := en.plan.Len() - 1
		for _, pos := range en.plan.PositionsForType(e.Type) {
			if !plan.EvalLocal(en.plan.Positives[pos].Local, e, en.met.IncPredError) {
				continue
			}
			inst := en.stacks.Insert(pos, e)
			en.met.AddRepairs(en.stacks.LastFixups())
			if en.trace != nil {
				en.trace.Trace(obsv.TraceEvent{Op: obsv.OpStackPush, Engine: en.traceName, Type: e.Type, TS: e.TS, Seq: e.Seq, N: pos})
				if fix := en.stacks.LastFixups(); fix > 0 {
					en.trace.Trace(obsv.TraceEvent{Op: obsv.OpRepair, Engine: en.traceName, Type: e.Type, TS: e.TS, Seq: e.Seq, N: fix})
				}
			}
			if pos == last || isOOO {
				if en.trace != nil {
					en.trace.Trace(obsv.TraceEvent{Op: obsv.OpTrigger, Engine: en.traceName, Type: e.Type, TS: e.TS, Seq: e.Seq, N: pos})
				}
				out = en.construct(inst, pos, out)
			}
		}
	}
	en.expireVulnerable()
	en.since++
	if en.opts.AdaptiveFeed {
		en.opts.Adaptive.NoteState(en.StateSize())
	}
	return out
}

// Advance implements engine.Advancer: a heartbeat moves the clock forward,
// finalizing (expiring) vulnerable matches whose gaps it seals and purging
// state. Speculative output was already emitted, so no matches result.
func (en *Engine) Advance(ts event.Time) []plan.Match {
	if !en.started || ts > en.clock {
		en.clock = ts
		en.started = true
	}
	en.advanceFrontier()
	if en.trace != nil {
		en.trace.Trace(obsv.TraceEvent{Op: obsv.OpHeartbeat, Engine: en.traceName, TS: ts})
	}
	en.expireVulnerable()
	en.since = en.opts.PurgeEvery
	en.maybePurge()
	en.met.SetLiveState(en.StateSize())
	return nil
}

// Flush implements engine.Engine: everything was already emitted eagerly;
// remaining vulnerable entries simply become final.
func (en *Engine) Flush() []plan.Match {
	en.vulnerable = make(map[string]*vulnEntry)
	en.expiry = nil
	en.met.SetLiveState(en.StateSize())
	if en.trace != nil {
		en.trace.Trace(obsv.TraceEvent{Op: obsv.OpFlush, Engine: en.traceName, TS: en.clock})
	}
	return nil
}

// RetractVulnerable compensates every still-vulnerable match whose seal
// timestamp lies above cut, in original emission order, and finalizes
// (silently drops) the rest. The hybrid meta-engine calls this when
// switching away from speculation at a sealed watermark C = cut: matches
// sealing at or below the cut are final — no event that could invalidate
// them will ever be admitted again, and the replacement engine's replay
// of the tail suppresses re-emissions at or below the cut, so retracting
// them would lose results. Matches sealing above the cut are retracted
// here and re-derived (or not) by the replay. The vulnerable set is
// emptied either way.
func (en *Engine) RetractVulnerable(cut event.Time) []plan.Match {
	var hit []*vulnEntry
	for _, v := range en.vulnerable {
		if v.retracted || v.sealTS <= cut {
			continue
		}
		hit = append(hit, v)
	}
	sort.Slice(hit, func(i, j int) bool { return hit[i].order < hit[j].order })
	var out []plan.Match
	for _, v := range hit {
		m := plan.Match{
			Kind:      plan.Retract,
			Events:    v.events,
			EmitSeq:   event.Seq(en.arrival),
			EmitClock: en.clock,
		}
		if en.prov {
			m.Prov = &provenance.Record{
				Kind:      provenance.KindRetract,
				Events:    provenance.Refs(v.events),
				Shard:     -1,
				WindowLo:  v.events[0].TS,
				WindowHi:  v.events[0].TS + en.plan.Window,
				SealTS:    v.sealTS,
				EmitClock: en.clock,
				// InvalidatedBy stays nil: no negative event invalidated the
				// match — the strategy switch withdrew it for re-derivation.
			}
			en.met.IncLineage()
		}
		en.met.AddMatch(true, 0, 0)
		if en.trace != nil {
			te := obsv.TraceEvent{Op: obsv.OpRetract, Engine: en.traceName, TS: m.Last().TS, Seq: m.EmitSeq, N: len(m.Events)}
			if m.Prov != nil {
				te.Match = m.Prov.MatchKey()
			}
			en.trace.Trace(te)
		}
		out = append(out, m)
	}
	en.vulnerable = make(map[string]*vulnEntry)
	en.expiry = nil
	en.met.SetLiveState(en.StateSize())
	return out
}

// retractInvalidated compensates emitted matches whose gap the new negative
// event falls into.
func (en *Engine) retractInvalidated(negIdx int, neg event.Event, out []plan.Match) []plan.Match {
	var hit []*vulnEntry
	for _, v := range en.vulnerable {
		if v.retracted {
			continue
		}
		lo, hi := en.plan.GapBounds(negIdx, v.events)
		if neg.TS <= lo || neg.TS >= hi {
			continue
		}
		if !en.plan.NegMatches(negIdx, neg, v.events, en.met.IncPredError) {
			continue
		}
		hit = append(hit, v)
	}
	// Map iteration order is random; emit compensations in original
	// emission order so the output stays deterministic across runs.
	sort.Slice(hit, func(i, j int) bool { return hit[i].order < hit[j].order })
	for _, v := range hit {
		v.retracted = true
		delete(en.vulnerable, v.key)
		m := plan.Match{
			Kind:      plan.Retract,
			Events:    v.events,
			EmitSeq:   event.Seq(en.arrival),
			EmitClock: en.clock,
		}
		if en.prov {
			inv := provenance.Ref(neg, -1)
			m.Prov = &provenance.Record{
				Kind:          provenance.KindRetract,
				Events:        provenance.Refs(v.events),
				Shard:         -1,
				WindowLo:      v.events[0].TS,
				WindowHi:      v.events[0].TS + en.plan.Window,
				SealTS:        v.sealTS,
				EmitClock:     en.clock,
				InvalidatedBy: &inv,
			}
			en.met.IncLineage()
		}
		en.met.AddMatch(true, 0, 0)
		if en.trace != nil {
			te := obsv.TraceEvent{Op: obsv.OpRetract, Engine: en.traceName, TS: m.Last().TS, Seq: m.EmitSeq, N: len(m.Events)}
			if m.Prov != nil {
				te.Match = m.Prov.MatchKey()
			}
			en.trace.Trace(te)
		}
		out = append(out, m)
	}
	return out
}

// construct is the same middle-out enumeration as the native engine's.
func (en *Engine) construct(trigger *ais.Instance, pos int, out []plan.Match) []plan.Match {
	n := en.plan.Len()
	binding := make([]event.Event, n)
	binding[pos] = trigger.Event
	mask := uint64(1) << uint(pos)
	if !en.plan.CrossSatisfiedAt(pos, mask, binding, en.met.IncPredError) {
		return out
	}
	if en.prov {
		en.trigSeq = trigger.Event.Seq
		en.trigTS = trigger.Event.TS
		en.trigPos = pos
		en.visited = 0
	}
	var down func(p int, mask uint64)
	var up func(p int, mask uint64)
	down = func(p int, mask uint64) {
		if p < 0 {
			up(pos+1, mask)
			return
		}
		s := en.stacks.Stack(p)
		lowTS := trigger.Event.TS - en.plan.Window
		for i := s.UpperBound(binding[p+1].TS) - 1; i >= 0; i-- {
			cand := s.At(i)
			if cand.Event.TS < lowTS {
				break
			}
			if en.prov {
				en.visited++
			}
			binding[p] = cand.Event
			m := mask | 1<<uint(p)
			if en.plan.CrossSatisfiedAt(p, m, binding, en.met.IncPredError) {
				down(p-1, m)
			}
		}
	}
	up = func(p int, mask uint64) {
		if p >= n {
			out = en.emit(binding, out)
			return
		}
		s := en.stacks.Stack(p)
		highTS := binding[0].TS + en.plan.Window
		for i := s.FirstAfter(binding[p-1].TS); i < s.Len(); i++ {
			cand := s.At(i)
			if cand.Event.TS > highTS {
				break
			}
			if en.prov {
				en.visited++
			}
			binding[p] = cand.Event
			m := mask | 1<<uint(p)
			if en.plan.CrossSatisfiedAt(p, m, binding, en.met.IncPredError) {
				up(p+1, m)
			}
		}
	}
	down(pos-1, mask)
	return out
}

// emit checks the negatives known so far and, if none invalidates the
// binding, emits immediately — registering the match as vulnerable while
// any of its gaps is still unsealed.
func (en *Engine) emit(binding []event.Event, out []plan.Match) []plan.Match {
	events := make([]event.Event, len(binding))
	copy(events, binding)
	sealTS := minTime
	for negIdx := range en.plan.Negatives {
		lo, hi := en.plan.GapBounds(negIdx, events)
		if en.negStores[negIdx].anyInGap(lo, hi, func(t event.Event) bool {
			return en.plan.NegMatches(negIdx, t, events, en.met.IncPredError)
		}) {
			return out
		}
		if hi > sealTS {
			sealTS = hi
		}
	}
	fields, err := en.plan.Project(events)
	if err != nil {
		en.met.IncPredError(err)
		return out
	}
	m := plan.Match{
		Kind:      plan.Insert,
		Events:    events,
		Fields:    fields,
		EmitSeq:   event.Seq(en.arrival),
		EmitClock: en.clock,
	}
	if en.prov {
		m.Prov = &provenance.Record{
			Kind:       provenance.KindInsert,
			Events:     provenance.Refs(events),
			Shard:      -1,
			WindowLo:   events[0].TS,
			WindowHi:   events[0].TS + en.plan.Window,
			SealTS:     sealTS,
			TriggerSeq: en.trigSeq,
			TriggerTS:  en.trigTS,
			TriggerPos: en.trigPos,
			Traversed:  en.visited,
			EmitClock:  en.clock,
		}
		en.met.IncLineage()
	}
	en.met.AddMatch(false, en.clock-m.Last().TS, 0)
	if en.trace != nil {
		te := obsv.TraceEvent{Op: obsv.OpEmit, Engine: en.traceName, TS: m.Last().TS, Seq: m.EmitSeq, N: len(m.Events)}
		if m.Prov != nil {
			te.Match = m.Prov.MatchKey()
		}
		en.trace.Trace(te)
	}
	out = append(out, m)
	if sealTS > en.safe() {
		v := &vulnEntry{events: events, key: m.Key(), sealTS: sealTS, order: en.vulnSeq}
		en.vulnSeq++
		en.vulnerable[v.key] = v
		heap.Push(&en.expiry, v)
	}
	return out
}

// expireVulnerable drops entries whose gaps the safe clock sealed: they can
// no longer be invalidated.
func (en *Engine) expireVulnerable() {
	safe := en.safe()
	for en.expiry.Len() > 0 {
		top := en.expiry[0]
		if !top.retracted && top.sealTS > safe {
			break
		}
		heap.Pop(&en.expiry)
		if !top.retracted {
			delete(en.vulnerable, top.key)
		}
	}
}

// maybePurge runs the purge rules once the processed-event counter
// (advanced by processOne) reaches opts.PurgeEvery; ProcessBatch checks
// only at batch boundaries.
func (en *Engine) maybePurge() {
	if en.opts.PurgeEvery < 0 {
		return
	}
	if en.since < en.opts.PurgeEvery {
		return
	}
	en.since = 0
	safe := en.safe()
	last := en.plan.Len() - 1
	purged := en.stacks.PurgeBefore(func(pos int) event.Time {
		if pos == last {
			return safe
		}
		return safe - en.plan.Window
	})
	for _, ns := range en.negStores {
		purged += ns.purgeBefore(safe - 2*en.plan.Window)
	}
	if purged > 0 {
		en.met.ObservePurge(purged)
		if en.trace != nil {
			en.trace.Trace(obsv.TraceEvent{Op: obsv.OpPurge, Engine: en.traceName, TS: safe, N: purged})
		}
	}
}

// vulnHeap is a min-heap of vulnerable entries on sealTS.
type vulnHeap []*vulnEntry

func (h vulnHeap) Len() int           { return len(h) }
func (h vulnHeap) Less(i, j int) bool { return h[i].sealTS < h[j].sealTS }
func (h vulnHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *vulnHeap) Push(x any)        { *h = append(*h, x.(*vulnEntry)) }
func (h *vulnHeap) Pop() any {
	old := *h
	n := len(old)
	out := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return out
}

// negStore is a sorted buffer of negative events (same structure as the
// native engine's; kept package-local so each engine stays self-contained).
type negStore struct {
	items []event.Event
}

func (s *negStore) len() int { return len(s.items) }

func (s *negStore) insert(e event.Event) {
	idx := sort.Search(len(s.items), func(i int) bool {
		return e.Before(s.items[i])
	})
	s.items = append(s.items, event.Event{})
	copy(s.items[idx+1:], s.items[idx:])
	s.items[idx] = e
}

func (s *negStore) anyInGap(lo, hi event.Time, check func(event.Event) bool) bool {
	start := sort.Search(len(s.items), func(i int) bool {
		return s.items[i].TS > lo
	})
	for i := start; i < len(s.items) && s.items[i].TS < hi; i++ {
		if check(s.items[i]) {
			return true
		}
	}
	return false
}

func (s *negStore) purgeBefore(horizon event.Time) int {
	cut := sort.Search(len(s.items), func(i int) bool {
		return s.items[i].TS >= horizon
	})
	if cut == 0 {
		return 0
	}
	n := copy(s.items, s.items[cut:])
	for i := n; i < len(s.items); i++ {
		s.items[i] = event.Event{}
	}
	s.items = s.items[:n]
	return cut
}
