package fiba

import (
	"math/rand"
	"testing"

	"oostream/internal/event"
)

// naive is the reference model: a flat list of (key, partial) pairs.
type naive struct {
	keys  []Key
	parts []Partial
}

func (n *naive) insert(k Key, p Partial) {
	i := 0
	for i < len(n.keys) && n.keys[i].Less(k) {
		i++
	}
	n.keys = append(n.keys, Key{})
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = k
	n.parts = append(n.parts, Partial{})
	copy(n.parts[i+1:], n.parts[i:])
	n.parts[i] = p
}

func (n *naive) delete(k Key) bool {
	for i := range n.keys {
		if n.keys[i] == k {
			n.keys = append(n.keys[:i], n.keys[i+1:]...)
			n.parts = append(n.parts[:i], n.parts[i+1:]...)
			return true
		}
	}
	return false
}

func (n *naive) purgeThrough(k Key) int {
	i := 0
	for i < len(n.keys) && !k.Less(n.keys[i]) {
		i++
	}
	n.keys = append([]Key(nil), n.keys[i:]...)
	n.parts = append([]Partial(nil), n.parts[i:]...)
	return i
}

func (n *naive) query(lo, hi Key) Partial {
	var p Partial
	for i, k := range n.keys {
		if lo.Less(k) && !hi.Less(k) {
			p = p.Merge(n.parts[i])
		}
	}
	return p
}

func samePartial(a, b Partial) bool {
	if a.Count != b.Count || a.SumI != b.SumI || a.Floaty != b.Floaty {
		return false
	}
	if a.SumF != b.SumF {
		return false
	}
	if a.Min.Valid() != b.Min.Valid() || (a.Min.Valid() && !a.Min.Equal(b.Min)) {
		return false
	}
	if a.Max.Valid() != b.Max.Valid() || (a.Max.Valid() && !a.Max.Equal(b.Max)) {
		return false
	}
	return true
}

func TestPartialMonoid(t *testing.T) {
	id := Partial{}
	a := Of(event.Int(3))
	b := Of(event.Float(1.5))
	c := Of(event.Int(-7))
	if got := id.Merge(a); !samePartial(got, a) {
		t.Fatalf("left identity broken: %+v", got)
	}
	if got := a.Merge(id); !samePartial(got, a) {
		t.Fatalf("right identity broken: %+v", got)
	}
	ab := a.Merge(b)
	if ab.Count != 2 || ab.SumF != 4.5 || !ab.Floaty {
		t.Fatalf("merge int+float: %+v", ab)
	}
	if mn, _ := ab.Min.AsFloat(); mn != 1.5 {
		t.Fatalf("min: %v", ab.Min)
	}
	if mx, _ := ab.Max.AsFloat(); mx != 3 {
		t.Fatalf("max: %v", ab.Max)
	}
	// Associativity on a small sample.
	left := a.Merge(b).Merge(c)
	right := a.Merge(b.Merge(c))
	if !samePartial(left, right) {
		t.Fatalf("associativity: %+v vs %+v", left, right)
	}
	// COUNT-only partials (invalid Min/Max) stay well-formed through merges.
	cnt := CountOnly().Merge(CountOnly())
	if cnt.Count != 2 || cnt.Min.Valid() || cnt.Max.Valid() {
		t.Fatalf("count merge: %+v", cnt)
	}
}

func TestInOrderAppendUsesFingers(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		tr.Insert(Key{TS: event.Time(i), Seq: uint64(i)}, Of(event.Int(int64(i))), nil)
	}
	st := tr.Stats()
	if st.FingerHits != 1000 {
		t.Fatalf("in-order appends should all be finger hits, got %d/1000", st.FingerHits)
	}
	if tr.Size() != 1000 {
		t.Fatalf("size: %d", tr.Size())
	}
	if tot := tr.Total(); tot.Count != 1000 || tot.SumI != 999*1000/2 {
		t.Fatalf("total: %+v", tot)
	}
	if tr.Height() < 3 {
		t.Fatalf("1000 keys at fanout %d should be at least 3 levels, got %d", maxKeys, tr.Height())
	}
}

func TestPurgeThroughRemovesPrefix(t *testing.T) {
	tr := New()
	for i := 0; i < 200; i++ {
		tr.Insert(Key{TS: event.Time(i), Seq: uint64(i)}, Of(event.Int(1)), i)
	}
	var seen []int
	n := tr.PurgeThrough(Key{TS: 99, Seq: MaxSeq}, func(aux any) { seen = append(seen, aux.(int)) })
	if n != 100 || len(seen) != 100 {
		t.Fatalf("purged %d (%d aux)", n, len(seen))
	}
	for i, v := range seen {
		if v != i {
			t.Fatalf("aux order: seen[%d] = %d", i, v)
		}
	}
	if tr.Size() != 100 {
		t.Fatalf("size after purge: %d", tr.Size())
	}
	if first, ok := tr.First(); !ok || first.TS != 100 {
		t.Fatalf("first after purge: %v %v", first, ok)
	}
}

func TestDeleteToEmpty(t *testing.T) {
	tr := New()
	for i := 0; i < 50; i++ {
		tr.Insert(Key{TS: event.Time(i), Seq: uint64(i)}, Of(event.Int(int64(i))), i)
	}
	perm := rand.New(rand.NewSource(7)).Perm(50)
	for _, i := range perm {
		aux, ok := tr.Delete(Key{TS: event.Time(i), Seq: uint64(i)})
		if !ok || aux.(int) != i {
			t.Fatalf("delete %d: %v %v", i, aux, ok)
		}
	}
	if tr.Size() != 0 || tr.Height() != 0 {
		t.Fatalf("tree not empty: size %d height %d", tr.Size(), tr.Height())
	}
	if _, ok := tr.First(); ok {
		t.Fatal("First on empty tree")
	}
	if tot := tr.Total(); tot.Count != 0 {
		t.Fatalf("total on empty: %+v", tot)
	}
	// Reuse after emptying.
	tr.Insert(Key{TS: 5, Seq: 1}, Of(event.Int(5)), nil)
	if tr.Size() != 1 {
		t.Fatalf("reinsert: %d", tr.Size())
	}
}

func TestDeleteMissing(t *testing.T) {
	tr := New()
	if _, ok := tr.Delete(Key{TS: 1}); ok {
		t.Fatal("delete on empty succeeded")
	}
	tr.Insert(Key{TS: 1, Seq: 1}, CountOnly(), nil)
	if _, ok := tr.Delete(Key{TS: 1, Seq: 2}); ok {
		t.Fatal("delete of missing key succeeded")
	}
}

func TestAscendRange(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert(Key{TS: event.Time(i), Seq: uint64(i)}, Of(event.Int(int64(i))), nil)
	}
	var got []event.Time
	tr.Ascend(Key{TS: 10, Seq: MaxSeq}, Key{TS: 20, Seq: MaxSeq}, func(k Key, _ Partial, _ any) bool {
		got = append(got, k.TS)
		return true
	})
	if len(got) != 10 || got[0] != 11 || got[9] != 20 {
		t.Fatalf("ascend (10,20]: %v", got)
	}
	// Early stop.
	n := 0
	tr.Ascend(Key{}, Key{TS: 1 << 40}, func(Key, Partial, any) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop: %d", n)
	}
}

// TestDifferentialVsNaive drives random interleaved inserts (mostly near the
// frontier, as a K-slack stream would), deletes, purges, and range queries
// against the flat-list model.
func TestDifferentialVsNaive(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		tr := New()
		ref := &naive{}
		frontier := event.Time(0)
		var purged event.Time
		live := map[Key]bool{}
		var liveKeys []Key
		seq := uint64(0)
		for step := 0; step < 400; step++ {
			switch op := rng.Intn(10); {
			case op < 6: // insert, usually near the frontier
				frontier += event.Time(rng.Intn(4))
				ts := frontier
				if rng.Intn(4) == 0 { // late insert within distance 30
					back := event.Time(rng.Intn(30))
					if ts-back > purged {
						ts -= back
					}
				}
				seq++
				k := Key{TS: ts, Seq: seq}
				var p Partial
				if rng.Intn(5) == 0 {
					p = Of(event.Float(float64(rng.Intn(100)) / 2))
				} else {
					p = Of(event.Int(int64(rng.Intn(100) - 50)))
				}
				tr.Insert(k, p, seq)
				ref.insert(k, p)
				live[k] = true
				liveKeys = append(liveKeys, k)
			case op < 7 && len(liveKeys) > 0: // delete a random live key
				k := liveKeys[rng.Intn(len(liveKeys))]
				if !live[k] {
					continue
				}
				aux, ok := tr.Delete(k)
				if !ok {
					t.Fatalf("trial %d: delete of live key %v failed", trial, k)
				}
				if aux.(uint64) != k.Seq {
					t.Fatalf("trial %d: aux mismatch", trial)
				}
				ref.delete(k)
				delete(live, k)
			case op < 8: // purge a prefix
				cut := purged + event.Time(rng.Intn(10))
				k := Key{TS: cut, Seq: MaxSeq}
				n := tr.PurgeThrough(k, nil)
				if rn := ref.purgeThrough(k); rn != n {
					t.Fatalf("trial %d: purge removed %d, ref %d", trial, n, rn)
				}
				purged = cut
				for lk := range live {
					if !k.Less(lk) {
						delete(live, lk)
					}
				}
			default: // range query
				lo := Key{TS: purged + event.Time(rng.Intn(40)), Seq: MaxSeq}
				hi := Key{TS: lo.TS + event.Time(rng.Intn(40)), Seq: MaxSeq}
				got, want := tr.Query(lo, hi), ref.query(lo, hi)
				if !samePartial(got, want) {
					t.Fatalf("trial %d step %d: query (%v,%v]: %+v vs %+v", trial, step, lo, hi, got, want)
				}
			}
			if tr.Size() != len(ref.keys) {
				t.Fatalf("trial %d step %d: size %d vs %d", trial, step, tr.Size(), len(ref.keys))
			}
			if !samePartial(tr.Total(), ref.query(Key{TS: -1 << 60}, Key{TS: 1 << 60})) {
				t.Fatalf("trial %d step %d: total mismatch", trial, step)
			}
		}
		// Drain and confirm the empty identity.
		tr.PurgeThrough(Key{TS: 1 << 60, Seq: MaxSeq}, nil)
		if tr.Size() != 0 || tr.Total().Count != 0 {
			t.Fatalf("trial %d: drain left %d elements", trial, tr.Size())
		}
	}
}

func TestLateInsertClimbsNotFullSearch(t *testing.T) {
	tr := New()
	for i := 0; i < 10000; i++ {
		tr.Insert(Key{TS: event.Time(i), Seq: uint64(i)}, CountOnly(), nil)
	}
	base := tr.Stats().Climbs
	// An insert 3 behind the frontier should climb far fewer levels than the
	// tree height.
	tr.Insert(Key{TS: 9996, Seq: 1 << 32}, CountOnly(), nil)
	climbed := tr.Stats().Climbs - base
	if int(climbed) >= tr.Height() {
		t.Fatalf("near-frontier insert climbed %d of %d levels", climbed, tr.Height())
	}
}
