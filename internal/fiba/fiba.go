// Package fiba implements a finger balanced aggregation tree (FiBA) for
// out-of-order sliding-window aggregation, after Tangwongsan, Hirzel &
// Schneider's "Optimal and General Out-of-Order Sliding-Window Aggregation".
//
// The tree is a small-fanout B+-tree keyed by (timestamp, sequence) with a
// partial aggregate cached at every node and finger pointers to the leftmost
// and rightmost leaves. In-order appends and front purges touch only a
// finger and its ancestors (amortized O(1)); a late insert at time distance d
// from the frontier climbs from the right finger just far enough to cover d,
// giving amortized O(log d) — matching the disorder profile of a K-slack
// stream, where most late events land within K of the frontier.
//
// Aggregates are kept as a Partial monoid covering COUNT/SUM/AVG/MIN/MAX
// simultaneously; a window query merges O(log n) cached partials instead of
// rescanning elements. Deletions are relaxed (no rebalancing): removing
// elements can only shrink nodes, and the sliding-window workload purges
// whole prefixes, so underfull nodes are short-lived. Correctness under the
// relaxation is enforced by the differential harness in internal/difftest.
package fiba

import (
	"oostream/internal/event"
)

// Key orders tree elements: by timestamp, then by an arbitrary unique
// sequence number so that simultaneous elements remain distinct.
type Key struct {
	TS  event.Time `json:"ts"`
	Seq uint64     `json:"seq"`
}

// Less reports strict (TS, Seq) lexicographic order.
func (k Key) Less(o Key) bool {
	return k.TS < o.TS || (k.TS == o.TS && k.Seq < o.Seq)
}

// MaxSeq is the largest sequence component; Key{TS: t, Seq: MaxSeq} is the
// supremum of all keys at time t, which makes half-open window queries
// (lo, hi] expressible over inclusive key bounds.
const MaxSeq = ^uint64(0)

// Partial is the aggregation monoid: one struct carries enough to answer
// COUNT, SUM, AVG, MIN, and MAX at once. The zero value is the identity
// (Count == 0). Sums are kept in both integer and float form: SumI is exact
// while every contribution is an int (Floaty == false); SumF is the float
// fallback that also feeds AVG.
type Partial struct {
	Count  int64
	SumI   int64
	SumF   float64
	Min    event.Value
	Max    event.Value
	Floaty bool
}

// CountOnly builds a counting partial carrying no summed value.
func CountOnly() Partial { return Partial{Count: 1} }

// Of builds the singleton partial for one numeric value. Non-numeric values
// yield the identity (callers are expected to have kind-checked upstream).
func Of(v event.Value) Partial {
	f, ok := v.AsFloat()
	if !ok {
		return Partial{}
	}
	p := Partial{Count: 1, SumF: f, Min: v, Max: v}
	if i, isInt := v.AsInt(); isInt {
		p.SumI = i
	} else {
		p.Floaty = true
	}
	return p
}

// Merge combines two partials; the zero Partial is the identity.
func (p Partial) Merge(o Partial) Partial {
	if p.Count == 0 {
		return o
	}
	if o.Count == 0 {
		return p
	}
	out := Partial{
		Count:  p.Count + o.Count,
		SumI:   p.SumI + o.SumI,
		SumF:   p.SumF + o.SumF,
		Floaty: p.Floaty || o.Floaty,
		Min:    minValue(p.Min, o.Min),
		Max:    maxValue(p.Max, o.Max),
	}
	return out
}

func minValue(a, b event.Value) event.Value {
	if !a.Valid() {
		return b
	}
	if !b.Valid() {
		return a
	}
	if c, err := a.Compare(b); err == nil && c > 0 {
		return b
	}
	return a
}

func maxValue(a, b event.Value) event.Value {
	if !a.Valid() {
		return b
	}
	if !b.Valid() {
		return a
	}
	if c, err := a.Compare(b); err == nil && c < 0 {
		return b
	}
	return a
}

// Stats counts structural operations for observability: FingerHits are
// inserts that landed directly in a finger leaf (the in-order and
// near-frontier fast path); Climbs are parent steps taken by out-of-order
// inserts before descending.
type Stats struct {
	Inserts    uint64
	FingerHits uint64
	Climbs     uint64
}

// maxKeys bounds leaf occupancy and internal fanout. Small enough that
// per-node scans stay in cache, large enough to keep the tree shallow.
const maxKeys = 32

type node struct {
	parent *node
	leaf   bool

	// Leaf payload: keys sorted ascending, parts/aux aligned.
	keys  []Key
	parts []Partial
	aux   []any
	next  *node
	prev  *node

	// Internal payload: children ordered by their low keys.
	children []*node

	// Cached subtree summaries, maintained on every structural change.
	agg  Partial
	low  Key
	high Key
}

// Tree is the finger aggregation tree. Not safe for concurrent use.
type Tree struct {
	root      *node
	leftLeaf  *node
	rightLeaf *node
	size      int
	height    int
	stats     Stats
}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

// Size returns the number of live elements.
func (t *Tree) Size() int { return t.size }

// Height returns the number of node levels (0 when empty).
func (t *Tree) Height() int { return t.height }

// Stats returns the operation counters.
func (t *Tree) Stats() Stats { return t.stats }

// Total returns the aggregate over every live element in O(1).
func (t *Tree) Total() Partial {
	if t.root == nil {
		return Partial{}
	}
	return t.root.agg
}

// First returns the minimum live key, in O(1) via the left finger.
func (t *Tree) First() (Key, bool) {
	if t.leftLeaf == nil {
		return Key{}, false
	}
	return t.leftLeaf.keys[0], true
}

// Last returns the maximum live key, in O(1) via the right finger.
func (t *Tree) Last() (Key, bool) {
	if t.rightLeaf == nil {
		return Key{}, false
	}
	return t.rightLeaf.keys[len(t.rightLeaf.keys)-1], true
}

// Insert adds one element. Keys must be unique (callers stamp a fresh Seq);
// inserting a duplicate key panics.
func (t *Tree) Insert(k Key, p Partial, aux any) {
	t.stats.Inserts++
	if t.root == nil {
		l := &node{leaf: true, keys: []Key{k}, parts: []Partial{p}, aux: []any{aux}}
		t.root, t.leftLeaf, t.rightLeaf = l, l, l
		t.height = 1
		t.size = 1
		t.stats.FingerHits++
		refresh(l)
		return
	}
	leaf := t.targetLeaf(k)
	i := 0
	for i < len(leaf.keys) && leaf.keys[i].Less(k) {
		i++
	}
	if i < len(leaf.keys) && leaf.keys[i] == k {
		panic("fiba: duplicate key insert")
	}
	leaf.keys = append(leaf.keys, Key{})
	copy(leaf.keys[i+1:], leaf.keys[i:])
	leaf.keys[i] = k
	leaf.parts = append(leaf.parts, Partial{})
	copy(leaf.parts[i+1:], leaf.parts[i:])
	leaf.parts[i] = p
	leaf.aux = append(leaf.aux, nil)
	copy(leaf.aux[i+1:], leaf.aux[i:])
	leaf.aux[i] = aux
	t.size++
	t.splitUp(leaf, k, p)
}

// targetLeaf locates the leaf that should hold k, using the fingers: the
// right finger absorbs frontier and near-frontier keys, the left finger
// absorbs keys before everything seen, and anything else climbs from the
// right finger until its ancestor's subtree covers k, then descends.
func (t *Tree) targetLeaf(k Key) *node {
	if !k.Less(t.rightLeaf.low) {
		t.stats.FingerHits++
		return t.rightLeaf
	}
	if k.Less(t.leftLeaf.low) || t.leftLeaf == t.rightLeaf {
		t.stats.FingerHits++
		return t.leftLeaf
	}
	n := t.rightLeaf
	for n.parent != nil && k.Less(n.low) {
		n = n.parent
		t.stats.Climbs++
	}
	for !n.leaf {
		// Route to the last child whose low is <= k; k >= n.low here, so
		// such a child exists except at the root (where child 0 catches).
		c := n.children[0]
		for _, cand := range n.children[1:] {
			if k.Less(cand.low) {
				break
			}
			c = cand
		}
		n = c
	}
	return n
}

// splitUp splits overfull nodes from leaf to root and maintains cached
// summaries along the way. (k, p) is the element the insert just added:
// a node that needs no split gained exactly that one element, so its
// cache updates incrementally — one monoid merge and a bounds widen —
// instead of a full re-merge of its payload. Only nodes that split (and
// their new siblings) pay a recompute.
func (t *Tree) splitUp(n *node, k Key, p Partial) {
	for n != nil {
		over := false
		if n.leaf {
			over = len(n.keys) > maxKeys
		} else {
			over = len(n.children) > maxKeys
		}
		if !over {
			n.agg = n.agg.Merge(p)
			if k.Less(n.low) {
				n.low = k
			}
			if n.high.Less(k) {
				n.high = k
			}
			n = n.parent
			continue
		}
		r := t.splitNode(n)
		refresh(n)
		refresh(r)
		if n.parent == nil {
			root := &node{children: []*node{n, r}}
			n.parent, r.parent = root, root
			t.root = root
			t.height++
			refresh(root)
			n = nil
			continue
		}
		p := n.parent
		idx := childIndex(p, n)
		p.children = append(p.children, nil)
		copy(p.children[idx+2:], p.children[idx+1:])
		p.children[idx+1] = r
		r.parent = p
		n = p
	}
}

// splitNode moves the upper half of n into a new right sibling and returns it.
func (t *Tree) splitNode(n *node) *node {
	r := &node{leaf: n.leaf, parent: n.parent}
	if n.leaf {
		mid := len(n.keys) / 2
		r.keys = append(r.keys, n.keys[mid:]...)
		r.parts = append(r.parts, n.parts[mid:]...)
		r.aux = append(r.aux, n.aux[mid:]...)
		n.keys = n.keys[:mid]
		n.parts = n.parts[:mid]
		n.aux = n.aux[:mid]
		r.next = n.next
		r.prev = n
		if n.next != nil {
			n.next.prev = r
		} else {
			t.rightLeaf = r
		}
		n.next = r
	} else {
		mid := len(n.children) / 2
		r.children = append(r.children, n.children[mid:]...)
		n.children = n.children[:mid]
		for _, c := range r.children {
			c.parent = r
		}
	}
	return r
}

func childIndex(p *node, c *node) int {
	for i, x := range p.children {
		if x == c {
			return i
		}
	}
	panic("fiba: orphaned child")
}

// refresh recomputes one node's cached low/high/agg from its payload.
func refresh(n *node) {
	if n.leaf {
		var p Partial
		for i := range n.parts {
			p = p.Merge(n.parts[i])
		}
		n.agg = p
		if len(n.keys) > 0 {
			n.low = n.keys[0]
			n.high = n.keys[len(n.keys)-1]
		}
		return
	}
	var p Partial
	for _, c := range n.children {
		p = p.Merge(c.agg)
	}
	n.agg = p
	if len(n.children) > 0 {
		n.low = n.children[0].low
		n.high = n.children[len(n.children)-1].high
	}
}

func refreshUp(n *node) {
	for n != nil {
		refresh(n)
		n = n.parent
	}
}

// findLeaf locates the leaf whose range covers k, or nil.
func (t *Tree) findLeaf(k Key) *node {
	if t.root == nil {
		return nil
	}
	n := t.root
	for !n.leaf {
		c := n.children[0]
		for _, cand := range n.children[1:] {
			if k.Less(cand.low) {
				break
			}
			c = cand
		}
		n = c
	}
	return n
}

// Delete removes the element with key k, returning its aux value. Deletion
// is relaxed — no rebalancing; empty nodes unlink and cascade upward — which
// keeps late retractions cheap and is safe because the sliding window purges
// whole prefixes before imbalance accumulates.
func (t *Tree) Delete(k Key) (any, bool) {
	leaf := t.findLeaf(k)
	if leaf == nil {
		return nil, false
	}
	i := 0
	for i < len(leaf.keys) && leaf.keys[i].Less(k) {
		i++
	}
	if i >= len(leaf.keys) || leaf.keys[i] != k {
		return nil, false
	}
	aux := leaf.aux[i]
	leaf.keys = append(leaf.keys[:i], leaf.keys[i+1:]...)
	leaf.parts = append(leaf.parts[:i], leaf.parts[i+1:]...)
	leaf.aux = append(leaf.aux[:i], leaf.aux[i+1:]...)
	t.size--
	if len(leaf.keys) == 0 {
		t.removeNode(leaf)
	} else {
		refreshUp(leaf)
	}
	return aux, true
}

// removeNode unlinks an empty node, cascading through empty ancestors, and
// refreshes summaries on the surviving path.
func (t *Tree) removeNode(n *node) {
	if n.leaf {
		if n.prev != nil {
			n.prev.next = n.next
		} else {
			t.leftLeaf = n.next
		}
		if n.next != nil {
			n.next.prev = n.prev
		} else {
			t.rightLeaf = n.prev
		}
	}
	p := n.parent
	if p == nil {
		t.root = nil
		t.leftLeaf, t.rightLeaf = nil, nil
		t.height = 0
		return
	}
	idx := childIndex(p, n)
	p.children = append(p.children[:idx], p.children[idx+1:]...)
	n.parent = nil
	if len(p.children) == 0 {
		t.removeNode(p)
		return
	}
	refreshUp(p)
	t.collapseRoot()
}

// collapseRoot shrinks trivial single-child root chains left by relaxed
// deletion so Height reflects the live structure.
func (t *Tree) collapseRoot() {
	for t.root != nil && !t.root.leaf && len(t.root.children) == 1 {
		c := t.root.children[0]
		c.parent = nil
		t.root = c
		t.height--
	}
}

// PurgeThrough removes every element with key <= k, calling onRemove (when
// non-nil) with each removed element's aux value, oldest first. Returns the
// number of elements removed. Amortized O(1) per removal: only the left
// finger and its ancestors are touched.
func (t *Tree) PurgeThrough(k Key, onRemove func(aux any)) int {
	removed := 0
	for t.leftLeaf != nil && !k.Less(t.leftLeaf.keys[0]) {
		leaf := t.leftLeaf
		i := 0
		for i < len(leaf.keys) && !k.Less(leaf.keys[i]) {
			if onRemove != nil {
				onRemove(leaf.aux[i])
			}
			i++
		}
		removed += i
		t.size -= i
		if i == len(leaf.keys) {
			leaf.keys = nil
			leaf.parts = nil
			leaf.aux = nil
			t.removeNode(leaf)
			continue
		}
		leaf.keys = append(leaf.keys[:0], leaf.keys[i:]...)
		leaf.parts = append(leaf.parts[:0], leaf.parts[i:]...)
		leaf.aux = append(leaf.aux[:0], leaf.aux[i:]...)
		refreshUp(leaf)
		break
	}
	return removed
}

// Query aggregates the half-open key range (lo, hi] by merging O(log n)
// cached partials.
func (t *Tree) Query(lo, hi Key) Partial {
	if t.root == nil || !lo.Less(hi) {
		return Partial{}
	}
	return querySeg(t.root, lo, hi)
}

func querySeg(n *node, lo, hi Key) Partial {
	if !lo.Less(n.high) || hi.Less(n.low) {
		return Partial{} // disjoint
	}
	if lo.Less(n.low) && !hi.Less(n.high) {
		return n.agg // contained
	}
	var p Partial
	if n.leaf {
		for i, k := range n.keys {
			if lo.Less(k) && !hi.Less(k) {
				p = p.Merge(n.parts[i])
			}
		}
		return p
	}
	for _, c := range n.children {
		p = p.Merge(querySeg(c, lo, hi))
	}
	return p
}

// All walks every element in ascending key order, calling f for each; f
// returning false stops the walk.
func (t *Tree) All(f func(k Key, p Partial, aux any) bool) {
	for leaf := t.leftLeaf; leaf != nil; leaf = leaf.next {
		for i, k := range leaf.keys {
			if !f(k, leaf.parts[i], leaf.aux[i]) {
				return
			}
		}
	}
}

// Ascend walks elements with key in (lo, hi] in ascending order, calling f
// for each; f returning false stops the walk.
func (t *Tree) Ascend(lo, hi Key, f func(k Key, p Partial, aux any) bool) {
	for leaf := t.leftLeaf; leaf != nil; leaf = leaf.next {
		if !lo.Less(leaf.high) {
			continue // entire leaf <= lo
		}
		for i, k := range leaf.keys {
			if !lo.Less(k) {
				continue
			}
			if hi.Less(k) {
				return
			}
			if !f(k, leaf.parts[i], leaf.aux[i]) {
				return
			}
		}
	}
}
