// Package event defines the event model shared by every component of the
// library: typed events carrying a logical application timestamp, an arrival
// sequence number, and a flat attribute map of dynamically typed values.
//
// Timestamps are logical milliseconds (int64). Application time (TS) is
// assigned by the event source and may disagree arbitrarily with arrival
// order; the arrival sequence (Seq) is assigned by the ingesting engine and
// is strictly monotone. All ordering comparisons in the pattern semantics
// are on (TS, Seq) pairs with TS dominant.
package event

import (
	"fmt"
	"sort"
	"strings"
)

// Time is a logical application timestamp in milliseconds.
type Time = int64

// Seq is an arrival sequence number assigned at ingestion.
type Seq = uint64

// Event is a single occurrence on the stream. Events are immutable once
// ingested; operators must not mutate Attrs in place.
type Event struct {
	// Type is the event type name, e.g. "SHELF" or "TRADE".
	Type string `json:"type"`
	// TS is the application timestamp (logical milliseconds).
	TS Time `json:"ts"`
	// Seq is the arrival sequence number; 0 until assigned by an ingestor.
	Seq Seq `json:"seq"`
	// Attrs carries the event payload.
	Attrs Attrs `json:"attrs,omitempty"`
}

// Attrs is the payload of an event: attribute name to value.
type Attrs map[string]Value

// New constructs an event with a copy of the given attributes.
func New(typ string, ts Time, attrs Attrs) Event {
	cp := make(Attrs, len(attrs))
	for k, v := range attrs {
		cp[k] = v
	}
	return Event{Type: typ, TS: ts, Attrs: cp}
}

// Attr returns the named attribute and whether it is present.
func (e Event) Attr(name string) (Value, bool) {
	v, ok := e.Attrs[name]
	return v, ok
}

// Before reports whether e is strictly earlier than other in the total
// order used by the pattern semantics: application timestamp first,
// arrival sequence as tiebreaker.
func (e Event) Before(other Event) bool {
	if e.TS != other.TS {
		return e.TS < other.TS
	}
	return e.Seq < other.Seq
}

// String renders the event compactly for logs and test failures.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s@%d#%d{", e.Type, e.TS, e.Seq)
	names := make([]string, 0, len(e.Attrs))
	for k := range e.Attrs {
		names = append(names, k)
	}
	sort.Strings(names)
	for i, k := range names {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%s", k, e.Attrs[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Clone returns a deep copy of the event.
func (e Event) Clone() Event {
	cp := e
	cp.Attrs = make(Attrs, len(e.Attrs))
	for k, v := range e.Attrs {
		cp.Attrs[k] = v
	}
	return cp
}

// ByTime sorts events by (TS, Seq). It implements sort.Interface.
type ByTime []Event

func (s ByTime) Len() int           { return len(s) }
func (s ByTime) Less(i, j int) bool { return s[i].Before(s[j]) }
func (s ByTime) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

// SortByTime sorts the slice in place by (TS, Seq).
func SortByTime(events []Event) {
	sort.Sort(ByTime(events))
}

// IsSortedByTime reports whether events are in nondecreasing (TS, Seq) order.
func IsSortedByTime(events []Event) bool {
	return sort.IsSorted(ByTime(events))
}
