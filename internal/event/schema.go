package event

import (
	"fmt"
	"sort"
)

// Schema declares the event types a query or workload uses and, per type,
// the attributes with their kinds. Schemas make attribute references in
// queries checkable at compile time instead of failing silently at runtime.
type Schema struct {
	types map[string]TypeDef
}

// TypeDef describes one event type.
type TypeDef struct {
	// Name is the event type name.
	Name string
	// Fields maps attribute name to its kind.
	Fields map[string]Kind
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{types: make(map[string]TypeDef)}
}

// Declare registers an event type. Redeclaring a type replaces it.
func (s *Schema) Declare(name string, fields map[string]Kind) {
	cp := make(map[string]Kind, len(fields))
	for k, v := range fields {
		cp[k] = v
	}
	s.types[name] = TypeDef{Name: name, Fields: cp}
}

// Type returns the definition of an event type.
func (s *Schema) Type(name string) (TypeDef, bool) {
	t, ok := s.types[name]
	return t, ok
}

// Field returns the declared kind of typ.attr.
func (s *Schema) Field(typ, attr string) (Kind, bool) {
	t, ok := s.types[typ]
	if !ok {
		return KindInvalid, false
	}
	k, ok := t.Fields[attr]
	return k, ok
}

// Types returns the declared type names in sorted order.
func (s *Schema) Types() []string {
	names := make([]string, 0, len(s.types))
	for n := range s.types {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Validate checks an event against the schema: the type must be declared and
// every declared field must be present with the declared kind. Extra fields
// are allowed (events may carry transport metadata).
func (s *Schema) Validate(e Event) error {
	t, ok := s.types[e.Type]
	if !ok {
		return fmt.Errorf("event type %q not declared", e.Type)
	}
	for name, kind := range t.Fields {
		v, ok := e.Attrs[name]
		if !ok {
			return fmt.Errorf("event %s: missing attribute %q", e.Type, name)
		}
		if v.Kind() != kind {
			// Int is acceptable where float is declared; everything else
			// must match exactly.
			if !(kind == KindFloat && v.Kind() == KindInt) {
				return fmt.Errorf("event %s: attribute %q has kind %s, want %s",
					e.Type, name, v.Kind(), kind)
			}
		}
	}
	return nil
}
