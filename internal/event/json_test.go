package event

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestValueJSONRoundTrip(t *testing.T) {
	for _, v := range []Value{Int(-42), Float(2.5), Str("hé\"llo"), Bool(true), Bool(false)} {
		raw, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var back Value
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", raw, err)
		}
		if !back.Equal(v) || back.Kind() != v.Kind() {
			t.Errorf("round trip %v -> %s -> %v", v, raw, back)
		}
	}
}

func TestValueJSONInvalid(t *testing.T) {
	if _, err := json.Marshal(Value{}); err == nil {
		t.Error("invalid value marshaled")
	}
	var v Value
	for _, raw := range []string{`{}`, `{"int":1,"str":"x"}`, `[1]`} {
		if err := json.Unmarshal([]byte(raw), &v); err == nil {
			t.Errorf("unmarshal %s should fail", raw)
		}
	}
}

func TestEventJSONRoundTrip(t *testing.T) {
	e := New("TRADE", 123, Attrs{"sym": Int(4), "price": Float(99.5), "flag": Bool(true)})
	e.Seq = 7
	raw, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"type":"TRADE"`, `"ts":123`, `"seq":7`} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("json %s missing %s", raw, want)
		}
	}
	var back Event
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Type != e.Type || back.TS != e.TS || back.Seq != e.Seq || len(back.Attrs) != 3 {
		t.Errorf("round trip: %v vs %v", e, back)
	}
	if !back.Attrs["price"].Equal(Float(99.5)) {
		t.Errorf("price = %v", back.Attrs["price"])
	}
}

func TestEventJSONOmitsEmptyAttrs(t *testing.T) {
	raw, err := json.Marshal(Event{Type: "A", TS: 1, Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "attrs") {
		t.Errorf("empty attrs serialized: %s", raw)
	}
}
