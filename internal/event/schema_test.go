package event

import (
	"strings"
	"testing"
)

func rfidSchema() *Schema {
	s := NewSchema()
	s.Declare("SHELF", map[string]Kind{"id": KindInt, "aisle": KindString})
	s.Declare("EXIT", map[string]Kind{"id": KindInt})
	return s
}

func TestSchemaDeclareAndLookup(t *testing.T) {
	s := rfidSchema()
	if _, ok := s.Type("SHELF"); !ok {
		t.Fatal("SHELF not found")
	}
	if _, ok := s.Type("NOPE"); ok {
		t.Fatal("NOPE should not exist")
	}
	if k, ok := s.Field("SHELF", "aisle"); !ok || k != KindString {
		t.Errorf("Field(SHELF, aisle) = %v, %v", k, ok)
	}
	if _, ok := s.Field("SHELF", "nope"); ok {
		t.Error("missing field should not resolve")
	}
	if _, ok := s.Field("NOPE", "id"); ok {
		t.Error("missing type should not resolve fields")
	}
}

func TestSchemaTypesSorted(t *testing.T) {
	s := rfidSchema()
	got := s.Types()
	if len(got) != 2 || got[0] != "EXIT" || got[1] != "SHELF" {
		t.Errorf("Types() = %v", got)
	}
}

func TestSchemaRedeclareReplaces(t *testing.T) {
	s := rfidSchema()
	s.Declare("SHELF", map[string]Kind{"id": KindString})
	if k, _ := s.Field("SHELF", "id"); k != KindString {
		t.Errorf("redeclare did not replace: id kind = %v", k)
	}
	if _, ok := s.Field("SHELF", "aisle"); ok {
		t.Error("redeclare should drop old fields")
	}
}

func TestSchemaDeclareCopiesFields(t *testing.T) {
	fields := map[string]Kind{"id": KindInt}
	s := NewSchema()
	s.Declare("A", fields)
	fields["id"] = KindString
	if k, _ := s.Field("A", "id"); k != KindInt {
		t.Error("Declare did not copy the field map")
	}
}

func TestSchemaValidate(t *testing.T) {
	s := rfidSchema()
	tests := []struct {
		name    string
		e       Event
		wantErr string
	}{
		{"valid", New("SHELF", 1, Attrs{"id": Int(7), "aisle": Str("a3")}), ""},
		{"extra field ok", New("EXIT", 1, Attrs{"id": Int(7), "meta": Str("x")}), ""},
		{"unknown type", New("NOPE", 1, nil), "not declared"},
		{"missing attr", New("SHELF", 1, Attrs{"id": Int(7)}), "missing attribute"},
		{"wrong kind", New("EXIT", 1, Attrs{"id": Str("7")}), "has kind"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := s.Validate(tt.e)
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("error = %v, want containing %q", err, tt.wantErr)
			}
		})
	}
}

func TestSchemaValidateIntWhereFloatDeclared(t *testing.T) {
	s := NewSchema()
	s.Declare("T", map[string]Kind{"price": KindFloat})
	if err := s.Validate(New("T", 1, Attrs{"price": Int(10)})); err != nil {
		t.Fatalf("int should satisfy declared float: %v", err)
	}
	if err := s.Validate(New("T", 1, Attrs{"price": Str("10")})); err == nil {
		t.Fatal("string should not satisfy declared float")
	}
}
