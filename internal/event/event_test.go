package event

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewCopiesAttrs(t *testing.T) {
	attrs := Attrs{"x": Int(1)}
	e := New("A", 10, attrs)
	attrs["x"] = Int(99)
	if v, _ := e.Attr("x"); !v.Equal(Int(1)) {
		t.Fatalf("attrs were not copied: got %v", v)
	}
}

func TestAttrPresence(t *testing.T) {
	e := New("A", 1, Attrs{"x": Int(1)})
	if _, ok := e.Attr("x"); !ok {
		t.Error("x should be present")
	}
	if _, ok := e.Attr("y"); ok {
		t.Error("y should be absent")
	}
}

func TestBefore(t *testing.T) {
	tests := []struct {
		name string
		a, b Event
		want bool
	}{
		{"earlier ts", Event{TS: 1, Seq: 9}, Event{TS: 2, Seq: 1}, true},
		{"later ts", Event{TS: 3, Seq: 1}, Event{TS: 2, Seq: 9}, false},
		{"tie broken by seq", Event{TS: 2, Seq: 1}, Event{TS: 2, Seq: 2}, true},
		{"equal", Event{TS: 2, Seq: 2}, Event{TS: 2, Seq: 2}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Before(tt.b); got != tt.want {
				t.Errorf("Before() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCloneIsDeep(t *testing.T) {
	e := New("A", 5, Attrs{"x": Int(1)})
	c := e.Clone()
	c.Attrs["x"] = Int(2)
	if v, _ := e.Attr("x"); !v.Equal(Int(1)) {
		t.Fatal("clone shares attrs with original")
	}
}

func TestStringDeterministic(t *testing.T) {
	e := New("A", 5, Attrs{"b": Int(2), "a": Int(1), "c": Str("x")})
	e.Seq = 7
	got := e.String()
	want := `A@5#7{a=1, b=2, c="x"}`
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if !strings.HasPrefix(got, "A@") {
		t.Errorf("String() missing type prefix: %q", got)
	}
}

func TestSortByTime(t *testing.T) {
	events := []Event{
		{TS: 3, Seq: 1}, {TS: 1, Seq: 2}, {TS: 2, Seq: 3}, {TS: 1, Seq: 1},
	}
	SortByTime(events)
	if !IsSortedByTime(events) {
		t.Fatal("not sorted after SortByTime")
	}
	if events[0].Seq != 1 || events[0].TS != 1 {
		t.Errorf("tie not broken by seq: first = %+v", events[0])
	}
}

func TestSortByTimeProperty(t *testing.T) {
	f := func(ts []int16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		events := make([]Event, len(ts))
		for i, v := range ts {
			events[i] = Event{TS: Time(v), Seq: Seq(rng.Uint64())}
		}
		SortByTime(events)
		return IsSortedByTime(events) &&
			sort.SliceIsSorted(events, func(i, j int) bool {
				if events[i].TS != events[j].TS {
					return events[i].TS < events[j].TS
				}
				return events[i].Seq < events[j].Seq
			})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
