package event

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	tests := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Int(42), KindInt, "42"},
		{Float(2.5), KindFloat, "2.5"},
		{Str("hi"), KindString, `"hi"`},
		{Bool(true), KindBool, "true"},
		{Value{}, KindInvalid, "<invalid>"},
	}
	for _, tt := range tests {
		if tt.v.Kind() != tt.kind {
			t.Errorf("%v: kind = %v, want %v", tt.v, tt.v.Kind(), tt.kind)
		}
		if got := tt.v.String(); got != tt.str {
			t.Errorf("String() = %q, want %q", got, tt.str)
		}
		if tt.v.Valid() != (tt.kind != KindInvalid) {
			t.Errorf("%v: Valid() mismatch", tt.v)
		}
	}
}

func TestValueAccessors(t *testing.T) {
	if v, ok := Int(3).AsInt(); !ok || v != 3 {
		t.Error("AsInt on Int failed")
	}
	if _, ok := Str("x").AsInt(); ok {
		t.Error("AsInt on Str should fail")
	}
	if v, ok := Int(3).AsFloat(); !ok || v != 3.0 {
		t.Error("AsFloat should convert ints")
	}
	if v, ok := Float(2.5).AsFloat(); !ok || v != 2.5 {
		t.Error("AsFloat on Float failed")
	}
	if _, ok := Bool(true).AsFloat(); ok {
		t.Error("AsFloat on Bool should fail")
	}
	if v, ok := Str("s").AsString(); !ok || v != "s" {
		t.Error("AsString failed")
	}
	if v, ok := Bool(true).AsBool(); !ok || !v {
		t.Error("AsBool failed")
	}
}

func TestValueEqual(t *testing.T) {
	tests := []struct {
		a, b Value
		want bool
	}{
		{Int(3), Int(3), true},
		{Int(3), Int(4), false},
		{Int(3), Float(3.0), true},
		{Float(3.0), Int(3), true},
		{Float(2.5), Float(2.5), true},
		{Str("a"), Str("a"), true},
		{Str("a"), Str("b"), false},
		{Bool(true), Bool(true), true},
		{Bool(true), Bool(false), false},
		{Str("3"), Int(3), false},
		{Bool(true), Int(1), false},
		{Value{}, Value{}, false},
	}
	for _, tt := range tests {
		if got := tt.a.Equal(tt.b); got != tt.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestValueCompare(t *testing.T) {
	tests := []struct {
		a, b    Value
		want    int
		wantErr bool
	}{
		{Int(1), Int(2), -1, false},
		{Int(2), Int(2), 0, false},
		{Int(3), Int(2), 1, false},
		{Int(1), Float(1.5), -1, false},
		{Float(2.5), Int(2), 1, false},
		{Str("a"), Str("b"), -1, false},
		{Str("b"), Str("b"), 0, false},
		{Str("c"), Str("b"), 1, false},
		{Bool(false), Bool(true), -1, false},
		{Bool(true), Bool(true), 0, false},
		{Bool(true), Bool(false), 1, false},
		{Str("a"), Int(1), 0, true},
		{Bool(true), Float(1), 0, true},
		{Value{}, Value{}, 0, true},
	}
	for _, tt := range tests {
		got, err := tt.a.Compare(tt.b)
		if tt.wantErr {
			if !errors.Is(err, ErrIncomparable) {
				t.Errorf("%v.Compare(%v): want ErrIncomparable, got %v", tt.a, tt.b, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("%v.Compare(%v): unexpected error %v", tt.a, tt.b, err)
			continue
		}
		if got != tt.want {
			t.Errorf("%v.Compare(%v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		x, err1 := Int(a).Compare(Int(b))
		y, err2 := Int(b).Compare(Int(a))
		return err1 == nil && err2 == nil && x == -y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompareEqualConsistencyProperty(t *testing.T) {
	f := func(a int64, bf float64) bool {
		av, bv := Int(a), Float(bf)
		c, err := av.Compare(bv)
		if err != nil {
			return false
		}
		return (c == 0) == av.Equal(bv)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
