package event

import (
	"encoding/json"
	"fmt"
)

// jsonValue is the tagged-union wire form of a Value; exactly one field is
// set. It matches the trace format's value encoding.
type jsonValue struct {
	Int   *int64   `json:"int,omitempty"`
	Float *float64 `json:"float,omitempty"`
	Str   *string  `json:"str,omitempty"`
	Bool  *bool    `json:"bool,omitempty"`
}

// MarshalJSON implements json.Marshaler. Invalid values fail rather than
// serializing silently.
func (v Value) MarshalJSON() ([]byte, error) {
	var w jsonValue
	switch v.kind {
	case KindInt:
		w.Int = &v.i
	case KindFloat:
		w.Float = &v.f
	case KindString:
		w.Str = &v.s
	case KindBool:
		w.Bool = &v.b
	default:
		return nil, fmt.Errorf("cannot marshal %s value", v.kind)
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler.
func (v *Value) UnmarshalJSON(data []byte) error {
	var w jsonValue
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	set := 0
	if w.Int != nil {
		set++
		*v = Int(*w.Int)
	}
	if w.Float != nil {
		set++
		*v = Float(*w.Float)
	}
	if w.Str != nil {
		set++
		*v = Str(*w.Str)
	}
	if w.Bool != nil {
		set++
		*v = Bool(*w.Bool)
	}
	if set != 1 {
		return fmt.Errorf("value must set exactly one of int/float/str/bool, got %d", set)
	}
	return nil
}
