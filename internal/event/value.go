package event

import (
	"errors"
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the dynamic types an attribute value can take.
type Kind int

// Value kinds. KindInvalid is deliberately the zero value so that the zero
// Value is recognizably invalid.
const (
	KindInvalid Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return "invalid"
	}
}

// ErrIncomparable is returned when two values cannot be compared, e.g. a
// string against a number.
var ErrIncomparable = errors.New("values are not comparable")

// Value is a dynamically typed attribute value: one of int64, float64,
// string, or bool. The zero Value is invalid.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// Int wraps an int64.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float wraps a float64.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Str wraps a string.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Bool wraps a bool.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// Kind returns the dynamic type of the value.
func (v Value) Kind() Kind { return v.kind }

// Valid reports whether the value holds data.
func (v Value) Valid() bool { return v.kind != KindInvalid }

// AsInt returns the int64 payload; ok is false if the kind is not int.
func (v Value) AsInt() (int64, bool) { return v.i, v.kind == KindInt }

// AsFloat returns the value as a float64, converting ints; ok is false for
// non-numeric kinds.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindFloat:
		return v.f, true
	case KindInt:
		return float64(v.i), true
	default:
		return 0, false
	}
}

// AsString returns the string payload; ok is false if the kind is not string.
func (v Value) AsString() (string, bool) { return v.s, v.kind == KindString }

// AsBool returns the bool payload; ok is false if the kind is not bool.
func (v Value) AsBool() (bool, bool) { return v.b, v.kind == KindBool }

// IsNumeric reports whether the value is an int or a float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// String renders the value for display.
func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.s)
	case KindBool:
		return strconv.FormatBool(v.b)
	default:
		return "<invalid>"
	}
}

// MapKey returns a canonical form of the value for use as a Go map key:
// values that compare Equal canonicalize to identical keys. Integral floats
// collapse to ints, so Int(3) and Float(3.0) land in the same key group,
// mirroring Equal's cross-kind semantics. Floats of magnitude >= 2^63 keep
// their float identity (Equal is not a congruence at that precision
// boundary; such keys only ever group with bit-identical floats).
func (v Value) MapKey() Value {
	if v.kind == KindFloat && v.f == math.Trunc(v.f) &&
		v.f >= math.MinInt64 && v.f < math.MaxInt64 {
		return Value{kind: KindInt, i: int64(v.f)}
	}
	return v
}

// Equal reports deep equality with numeric cross-kind comparison
// (Int(3) equals Float(3.0)).
func (v Value) Equal(o Value) bool {
	if v.IsNumeric() && o.IsNumeric() {
		if v.kind == KindInt && o.kind == KindInt {
			return v.i == o.i
		}
		vf, _ := v.AsFloat()
		of, _ := o.AsFloat()
		return vf == of
	}
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindString:
		return v.s == o.s
	case KindBool:
		return v.b == o.b
	default:
		return false
	}
}

// Compare orders two values: -1, 0, or +1. Numeric kinds compare across int
// and float; strings compare lexicographically; bools compare false < true.
// Mixed non-numeric kinds return ErrIncomparable.
func (v Value) Compare(o Value) (int, error) {
	if v.IsNumeric() && o.IsNumeric() {
		if v.kind == KindInt && o.kind == KindInt {
			return cmpInt64(v.i, o.i), nil
		}
		vf, _ := v.AsFloat()
		of, _ := o.AsFloat()
		return cmpFloat64(vf, of), nil
	}
	if v.kind != o.kind {
		return 0, fmt.Errorf("compare %s with %s: %w", v.kind, o.kind, ErrIncomparable)
	}
	switch v.kind {
	case KindString:
		switch {
		case v.s < o.s:
			return -1, nil
		case v.s > o.s:
			return 1, nil
		}
		return 0, nil
	case KindBool:
		switch {
		case !v.b && o.b:
			return -1, nil
		case v.b && !o.b:
			return 1, nil
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("compare %s values: %w", v.kind, ErrIncomparable)
	}
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
