package plan

import (
	"strings"
	"testing"

	"oostream/internal/event"
)

func mkMatch(kind MatchKind, seqs ...event.Seq) Match {
	events := make([]event.Event, len(seqs))
	for i, s := range seqs {
		events[i] = event.Event{Type: "T", TS: event.Time(10 * (i + 1)), Seq: s}
	}
	return Match{Kind: kind, Events: events}
}

func TestMatchKey(t *testing.T) {
	m := mkMatch(Insert, 3, 7, 9)
	if m.Key() != "3|7|9" {
		t.Errorf("Key() = %q", m.Key())
	}
	// Key is independent of kind.
	if mkMatch(Retract, 3, 7, 9).Key() != m.Key() {
		t.Error("kind must not affect key")
	}
}

func TestMatchAccessors(t *testing.T) {
	m := mkMatch(Insert, 1, 2, 3)
	if m.First().Seq != 1 || m.Last().Seq != 3 {
		t.Errorf("First/Last = %v/%v", m.First(), m.Last())
	}
	if m.Span() != 20 {
		t.Errorf("Span() = %d", m.Span())
	}
}

func TestMatchString(t *testing.T) {
	if s := mkMatch(Retract, 1).String(); !strings.HasPrefix(s, "-[") {
		t.Errorf("retract String() = %q", s)
	}
	if s := mkMatch(Insert, 1).String(); strings.HasPrefix(s, "-") {
		t.Errorf("insert String() = %q", s)
	}
}

func TestKeySetWithRetractions(t *testing.T) {
	matches := []Match{
		mkMatch(Insert, 1, 2),
		mkMatch(Insert, 3, 4),
		mkMatch(Insert, 1, 2), // duplicate key
		mkMatch(Retract, 3, 4),
	}
	ks := KeySet(matches)
	if ks["1|2"] != 2 {
		t.Errorf("count(1|2) = %d", ks["1|2"])
	}
	if _, ok := ks["3|4"]; ok {
		t.Error("retracted key should be removed")
	}
}

func TestSameResults(t *testing.T) {
	a := []Match{mkMatch(Insert, 1, 2), mkMatch(Insert, 3, 4)}
	b := []Match{mkMatch(Insert, 3, 4), mkMatch(Insert, 1, 2)}
	if ok, diff := SameResults(a, b); !ok {
		t.Errorf("order must not matter: %s", diff)
	}
	c := []Match{mkMatch(Insert, 1, 2)}
	if ok, diff := SameResults(a, c); ok || diff == "" {
		t.Error("missing match must be detected")
	}
	d := []Match{mkMatch(Insert, 1, 2), mkMatch(Insert, 3, 4), mkMatch(Insert, 5, 6)}
	if ok, diff := SameResults(a, d); ok || !strings.Contains(diff, "5|6") {
		t.Errorf("extra match must be detected: %s", diff)
	}
	// Speculative stream with retraction converges to plain stream.
	spec := []Match{mkMatch(Insert, 1, 2), mkMatch(Insert, 9, 9), mkMatch(Retract, 9, 9), mkMatch(Insert, 3, 4)}
	if ok, diff := SameResults(a, spec); !ok {
		t.Errorf("retraction should cancel: %s", diff)
	}
}

func TestMatchKindString(t *testing.T) {
	if Insert.String() != "insert" || Retract.String() != "retract" {
		t.Error("kind names wrong")
	}
	if !strings.Contains(MatchKind(99).String(), "99") {
		t.Error("unknown kind should include number")
	}
}
