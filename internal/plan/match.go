package plan

import (
	"strconv"
	"strings"

	"oostream/internal/event"
	"oostream/internal/provenance"
)

// MatchKind distinguishes normal results from speculative revisions.
type MatchKind int

// Match kinds. Insert is the ordinary (and default) kind; Retract is only
// produced by the speculative engine to compensate premature output.
const (
	Insert MatchKind = iota + 1
	Retract
)

// String names the kind.
func (k MatchKind) String() string {
	switch k {
	case Insert:
		return "insert"
	case Retract:
		return "retract"
	default:
		return "matchkind(" + strconv.Itoa(int(k)) + ")"
	}
}

// Match is one pattern occurrence: one event per positive component, in
// sequence order.
type Match struct {
	// Kind is Insert for results, Retract for compensations.
	Kind MatchKind
	// Events holds the matched events, one per positive position.
	Events []event.Event
	// Fields holds the projected RETURN values, aligned with the plan's
	// Return columns; nil when the query has no RETURN clause.
	Fields []event.Value
	// EmitSeq is the arrival sequence number of the event whose processing
	// emitted this match, used for latency accounting.
	EmitSeq event.Seq
	// EmitClock is the engine's max-seen timestamp at emission.
	EmitClock event.Time
	// Prov is the match's lineage record; nil unless the engine was built
	// with Config.Provenance. It is excluded from multiset comparison
	// (Key/SameResults) — two matches over the same events are the same
	// match regardless of how their construction was traced.
	Prov *provenance.Record
	// Query is the id of the owning query when the match was produced by a
	// multi-query Set (internal/queryset); empty for single-query engines.
	// Like Prov it is excluded from Key/SameResults: identity is the event
	// set, and per-query comparison filters on this field first.
	Query string
	// Agg is the window value for aggregate matches, nil for pattern
	// matches. Aggregate matches carry a single placeholder window event in
	// Events (type WindowType, TS = window end) so positional accessors and
	// emission restamping work unchanged.
	Agg *AggValue
}

// Key is a canonical identity for the match: the arrival sequence numbers of
// its events. Two matches over the same events have equal keys regardless of
// arrival interleaving, so keys implement exactly-once checks and multiset
// comparison between engines.
func (m Match) Key() string {
	if m.Agg != nil {
		return m.Agg.key()
	}
	var b strings.Builder
	for i, e := range m.Events {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(strconv.FormatUint(e.Seq, 10))
	}
	return b.String()
}

// First returns the earliest event of the match.
func (m Match) First() event.Event { return m.Events[0] }

// Last returns the latest event of the match.
func (m Match) Last() event.Event { return m.Events[len(m.Events)-1] }

// Span is the time extent Last.TS − First.TS.
func (m Match) Span() event.Time { return m.Last().TS - m.First().TS }

// String renders the match for logs and test failures.
func (m Match) String() string {
	var b strings.Builder
	if m.Kind == Retract {
		b.WriteString("-")
	}
	if m.Agg != nil {
		b.WriteString("[")
		b.WriteString(m.Agg.String())
		b.WriteString("]")
		return b.String()
	}
	b.WriteString("[")
	for i, e := range m.Events {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(e.String())
	}
	b.WriteString("]")
	return b.String()
}

// KeySet collects the keys of a slice of matches into a multiset
// (key -> count). Retractions subtract.
func KeySet(matches []Match) map[string]int {
	out := make(map[string]int, len(matches))
	for _, m := range matches {
		if m.Kind == Retract {
			out[m.Key()]--
			if out[m.Key()] == 0 {
				delete(out, m.Key())
			}
		} else {
			out[m.Key()]++
			if out[m.Key()] == 0 {
				delete(out, m.Key())
			}
		}
	}
	return out
}

// SameResults reports whether two match slices are equal as multisets of
// keys (after applying retractions), and returns a human-readable diff of
// up to a few divergent keys when they are not.
func SameResults(a, b []Match) (bool, string) {
	ka, kb := KeySet(a), KeySet(b)
	var diff []string
	for k, n := range ka {
		if kb[k] != n {
			diff = append(diff, "key "+k+": "+strconv.Itoa(n)+" vs "+strconv.Itoa(kb[k]))
		}
	}
	for k, n := range kb {
		if _, seen := ka[k]; !seen {
			diff = append(diff, "key "+k+": 0 vs "+strconv.Itoa(n))
		}
	}
	if len(diff) == 0 {
		return true, ""
	}
	if len(diff) > 8 {
		diff = append(diff[:8], "…")
	}
	return false, strings.Join(diff, "\n")
}
