// Package plan lowers an analyzed query into the executable form shared by
// every engine (in-order baseline, native out-of-order, speculative) and by
// the brute-force oracle:
//
//   - positive sequence steps with their *local* predicates (conjuncts
//     referencing exactly one positive variable), applied at insertion time
//     to keep the active instance stacks small;
//   - cross predicates (conjuncts over two or more positive variables),
//     indexed by referenced slot so enumeration can prune partial bindings
//     as soon as every referenced slot is bound, in any binding order —
//     out-of-order construction binds slots middle-out, so a fixed
//     evaluation schedule would not do;
//   - negation steps anchored to their gap, each with local predicates on
//     the negative event and cross predicates relating it to the positive
//     binding;
//   - the window and the RETURN projection.
package plan

import (
	"fmt"

	"oostream/internal/event"
	"oostream/internal/predicate"
	"oostream/internal/query"
)

// Plan is a compiled, immutable query plan. It is safe for concurrent use.
type Plan struct {
	// Positives are the positive sequence steps in order.
	Positives []PosStep
	// Negatives are the negation steps.
	Negatives []NegStep
	// Cross are predicates spanning two or more positive slots.
	Cross []CrossPred
	// CrossBySlot maps each positive slot to the indices (into Cross) of
	// predicates referencing it.
	CrossBySlot [][]int
	// Window is the WITHIN length in logical milliseconds.
	Window event.Time
	// Return is the projection; empty means no RETURN clause.
	Return []ReturnCol
	// ConstFalse is set when a constant conjunct is false: no match can
	// ever be produced.
	ConstFalse bool
	// Source is the canonical query text.
	Source string
	// EqLinks records same-attribute equality conjuncts between positive
	// slots (a.id = b.id), used to decide key-partitionability.
	EqLinks []EqLink
	// NegEqLinks records same-attribute equalities between a negation and
	// a positive slot.
	NegEqLinks []NegEqLink
	// PartitionKey is the attribute engines should partition their state
	// by, chosen automatically at compile time (see autoPartitionKey), or
	// "" when the query is not partitionable by any equality-linked
	// attribute.
	PartitionKey string
	// Agg is the compiled AGGREGATE clause, or nil for a plain pattern
	// query. When set, engines wrap their match stream in the windowed
	// aggregation operator and emit aggregate matches (Match.Agg) instead.
	Agg *AggSpec

	typeIndex    map[string][]int
	negTypeIndex map[string][]int
}

// EqLink is an equality v_i.Attr = v_j.Attr between positive slots.
type EqLink struct {
	SlotA, SlotB int
	Attr         string
	// CrossIdx is the index into Plan.Cross of the conjunct this link was
	// derived from; engines that partition state by Attr may skip it as
	// structurally pre-satisfied.
	CrossIdx int
}

// NegEqLink is an equality between a negation's variable and a positive
// slot on the same attribute.
type NegEqLink struct {
	NegIdx int
	Slot   int
	Attr   string
	// CrossIdx is the index into Negatives[NegIdx].Cross of the conjunct
	// this link was derived from.
	CrossIdx int
}

// PosStep is one positive component of the sequence.
type PosStep struct {
	// Type is the event type to match.
	Type string
	// Var is the bound variable name.
	Var string
	// Local are single-event predicates, evaluated with the candidate
	// event in slot 0.
	Local []*predicate.Compiled
}

// NegStep is one negated component.
type NegStep struct {
	// Type is the event type of the negative component.
	Type string
	// Var is the negative variable name.
	Var string
	// GapAfter is the number of positive components preceding the
	// negation (0 = leading, len(Positives) = trailing).
	GapAfter int
	// Local are single-event predicates over the negative event (slot 0).
	Local []*predicate.Compiled
	// Cross relate the negative event to the positive binding. They are
	// compiled against a binding of len(Positives)+1 slots, the negative
	// event in the last slot.
	Cross []*predicate.Compiled
}

// CrossPred is a compiled predicate over multiple positive slots.
type CrossPred struct {
	Pred *predicate.Compiled
	// Mask is the referenced-slot bitmask.
	Mask uint64
}

// ReturnCol is one projected output column.
type ReturnCol struct {
	Name string
	Expr *predicate.Compiled
}

// Compile lowers an analyzed query.
func Compile(a *query.Analyzed) (*Plan, error) {
	n := len(a.Positives)
	p := &Plan{
		Window:       a.Query.Within,
		Source:       a.Query.String(),
		CrossBySlot:  make([][]int, n),
		typeIndex:    make(map[string][]int),
		negTypeIndex: make(map[string][]int),
	}
	for i, c := range a.Positives {
		p.Positives = append(p.Positives, PosStep{Type: c.Type, Var: c.Var})
		p.typeIndex[c.Type] = append(p.typeIndex[c.Type], i)
	}
	for i, neg := range a.Negatives {
		p.Negatives = append(p.Negatives, NegStep{
			Type:     neg.Component.Type,
			Var:      neg.Component.Var,
			GapAfter: neg.GapAfter,
		})
		p.negTypeIndex[neg.Component.Type] = append(p.negTypeIndex[neg.Component.Type], i)
	}

	if err := p.distributeWhere(a); err != nil {
		return nil, err
	}
	if err := p.compileReturn(a); err != nil {
		return nil, err
	}
	if a.Query.Agg != nil {
		if err := p.compileAggregate(a); err != nil {
			return nil, err
		}
	}
	p.PartitionKey = p.autoPartitionKey()
	return p, nil
}

// distributeWhere splits the WHERE clause into local, cross, negative, and
// constant conjuncts.
func (p *Plan) distributeWhere(a *query.Analyzed) error {
	for _, conj := range query.Conjuncts(a.Query.Where) {
		vars := query.Vars(conj)
		var posVars, negVars []string
		for v := range vars {
			if _, ok := a.VarPosition[v]; ok {
				posVars = append(posVars, v)
			} else {
				negVars = append(negVars, v)
			}
		}
		switch {
		case len(negVars) > 1:
			return fmt.Errorf("predicate %s at %s references multiple negated variables; relate each negation to positives separately", conj, conj.Pos())
		case len(negVars) == 1:
			if err := p.addNegativePred(a, conj, negVars[0]); err != nil {
				return err
			}
		case len(posVars) == 0:
			if err := p.addConstPred(conj); err != nil {
				return err
			}
		case len(posVars) == 1:
			if err := p.addLocalPred(a, conj, posVars[0]); err != nil {
				return err
			}
		default:
			if err := p.addCrossPred(a, conj); err != nil {
				return err
			}
		}
	}
	return nil
}

func (p *Plan) addConstPred(conj query.Expr) error {
	c, err := predicate.Compile(conj, func(string) (int, bool) { return 0, false })
	if err != nil {
		return err
	}
	ok, err := c.EvalBool(nil)
	if err != nil {
		return fmt.Errorf("constant predicate %s: %w", conj, err)
	}
	if !ok {
		p.ConstFalse = true
	}
	return nil
}

func (p *Plan) addLocalPred(a *query.Analyzed, conj query.Expr, varName string) error {
	// Local predicates are evaluated against a single-event binding.
	c, err := predicate.Compile(conj, func(v string) (int, bool) {
		if v == varName {
			return 0, true
		}
		return 0, false
	})
	if err != nil {
		return err
	}
	pos := a.VarPosition[varName]
	p.Positives[pos].Local = append(p.Positives[pos].Local, c)
	return nil
}

func (p *Plan) addCrossPred(a *query.Analyzed, conj query.Expr) error {
	c, err := predicate.Compile(conj, func(v string) (int, bool) {
		pos, ok := a.VarPosition[v]
		return pos, ok
	})
	if err != nil {
		return err
	}
	idx := len(p.Cross)
	p.Cross = append(p.Cross, CrossPred{Pred: c, Mask: c.Mask()})
	for _, slot := range c.Refs() {
		p.CrossBySlot[slot] = append(p.CrossBySlot[slot], idx)
	}
	if varA, varB, attr, ok := sameAttrEquality(conj); ok {
		p.EqLinks = append(p.EqLinks, EqLink{
			SlotA:    a.VarPosition[varA],
			SlotB:    a.VarPosition[varB],
			Attr:     attr,
			CrossIdx: idx,
		})
	}
	return nil
}

// sameAttrEquality recognizes conjuncts of the form x.attr = y.attr (same
// attribute on both sides).
func sameAttrEquality(conj query.Expr) (varA, varB, attr string, ok bool) {
	b, isBin := conj.(*query.BinaryExpr)
	if !isBin || b.Op != query.OpEq {
		return "", "", "", false
	}
	l, lok := b.Left.(*query.AttrRef)
	r, rok := b.Right.(*query.AttrRef)
	if !lok || !rok || l.Attr != r.Attr {
		return "", "", "", false
	}
	return l.Var, r.Var, l.Attr, true
}

func (p *Plan) addNegativePred(a *query.Analyzed, conj query.Expr, negVar string) error {
	negIdx := a.NegVarIndex[negVar]
	negSlot := len(p.Positives)
	vars := query.Vars(conj)
	localOnly := len(vars) == 1 // references only the negative variable
	if localOnly {
		c, err := predicate.Compile(conj, func(v string) (int, bool) {
			if v == negVar {
				return 0, true
			}
			return 0, false
		})
		if err != nil {
			return err
		}
		p.Negatives[negIdx].Local = append(p.Negatives[negIdx].Local, c)
		return nil
	}
	c, err := predicate.Compile(conj, func(v string) (int, bool) {
		if v == negVar {
			return negSlot, true
		}
		pos, ok := a.VarPosition[v]
		return pos, ok
	})
	if err != nil {
		return err
	}
	p.Negatives[negIdx].Cross = append(p.Negatives[negIdx].Cross, c)
	if varA, varB, attr, ok := sameAttrEquality(conj); ok {
		posVar := varA
		if varA == negVar {
			posVar = varB
		}
		if pos, isPos := a.VarPosition[posVar]; isPos {
			p.NegEqLinks = append(p.NegEqLinks, NegEqLink{
				NegIdx:   negIdx,
				Slot:     pos,
				Attr:     attr,
				CrossIdx: len(p.Negatives[negIdx].Cross) - 1,
			})
		}
	}
	return nil
}

// PartitionableBy reports whether the plan's matches are confined to one
// partition when the stream is hash-partitioned on the given attribute:
// the same-attribute equality conjuncts must connect every positive
// component into one group, and every negation must be equality-linked on
// the attribute to some positive. Under that condition a partitioned run
// over shards produces exactly the unpartitioned result set.
func (p *Plan) PartitionableBy(attr string) bool {
	n := len(p.Positives)
	if n == 0 {
		return false
	}
	if n == 1 && len(p.Negatives) == 0 {
		return true
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, l := range p.EqLinks {
		if l.Attr == attr {
			parent[find(l.SlotA)] = find(l.SlotB)
		}
	}
	root := find(0)
	for i := 1; i < n; i++ {
		if find(i) != root {
			return false
		}
	}
	linked := make([]bool, len(p.Negatives))
	for _, l := range p.NegEqLinks {
		if l.Attr == attr {
			linked[l.NegIdx] = true
		}
	}
	for _, ok := range linked {
		if !ok {
			return false
		}
	}
	return true
}

// autoPartitionKey picks the attribute the engines should key their state
// by: among the attributes appearing in EqLinks for which the plan is
// PartitionableBy, the one connecting the most slot pairs wins; ties break
// lexicographically, keeping the choice deterministic. "" when no
// equality-linked attribute partitions the plan (single-component queries
// without equality links gain nothing from keying and stay unkeyed).
func (p *Plan) autoPartitionKey() string {
	counts := make(map[string]int)
	for _, l := range p.EqLinks {
		counts[l.Attr]++
	}
	best := ""
	for attr, n := range counts {
		if !p.PartitionableBy(attr) {
			continue
		}
		if best == "" || n > counts[best] || (n == counts[best] && attr < best) {
			best = attr
		}
	}
	return best
}

// KeyOf extracts the canonical partition-key value of an event for the
// given attribute, resolving the "ts" pseudo-attribute exactly as predicate
// evaluation does (payload attribute first, timestamp fallback). ok is
// false when the event carries no such key: for a plan partitioned on the
// attribute, such an event cannot participate in any match (the key
// equality predicate would fail on it).
func KeyOf(e event.Event, attr string) (event.Value, bool) {
	if v, ok := e.Attr(attr); ok {
		return v.MapKey(), true
	}
	if attr == predicate.TSAttr {
		return event.Int(e.TS), true
	}
	return event.Value{}, false
}

// CrossView is a slot-indexed view over a subset of the plan's cross
// predicates. Engines that prove some predicates structurally satisfied
// (key-partitioned state pre-satisfies the key equalities) evaluate
// construction through a view excluding them; a nil-skip view is the full
// predicate set and behaves exactly like Plan.CrossSatisfiedAt.
type CrossView struct {
	cross  []CrossPred
	bySlot [][]int
}

// CrossView builds a view excluding the cross predicates (by index into
// Plan.Cross) for which skip returns true. A nil skip keeps all.
func (p *Plan) CrossView(skip func(crossIdx int) bool) *CrossView {
	v := &CrossView{cross: p.Cross, bySlot: make([][]int, len(p.CrossBySlot))}
	for slot, idxs := range p.CrossBySlot {
		for _, idx := range idxs {
			if skip != nil && skip(idx) {
				continue
			}
			v.bySlot[slot] = append(v.bySlot[slot], idx)
		}
	}
	return v
}

// SatisfiedAt is Plan.CrossSatisfiedAt restricted to the view's predicate
// subset: it evaluates the retained cross predicates that become fully
// bound by binding the given slot.
func (v *CrossView) SatisfiedAt(slot int, boundMask uint64, binding []event.Event, errSink func(error)) bool {
	prevMask := boundMask &^ (1 << uint(slot))
	for _, idx := range v.bySlot[slot] {
		cp := v.cross[idx]
		if cp.Mask&^boundMask != 0 {
			continue // not all referenced slots bound yet
		}
		if cp.Mask&^prevMask == 0 {
			continue // was already fully bound before this slot; fired earlier
		}
		ok, err := cp.Pred.EvalBool(binding)
		if err != nil {
			if errSink != nil {
				errSink(err)
			}
			return false
		}
		if !ok {
			return false
		}
	}
	return true
}

func (p *Plan) compileReturn(a *query.Analyzed) error {
	for _, item := range a.Query.Return {
		c, err := predicate.Compile(item.Expr, func(v string) (int, bool) {
			pos, ok := a.VarPosition[v]
			return pos, ok
		})
		if err != nil {
			return err
		}
		p.Return = append(p.Return, ReturnCol{Name: item.Name, Expr: c})
	}
	return nil
}

// Len returns the number of positive steps.
func (p *Plan) Len() int { return len(p.Positives) }

// PositionsForType returns the positive positions an event type occupies.
// A type may occur at multiple positions (e.g. SEQ(TRADE a, TRADE b)).
func (p *Plan) PositionsForType(typ string) []int { return p.typeIndex[typ] }

// NegativesForType returns the negation indices an event type occupies.
func (p *Plan) NegativesForType(typ string) []int { return p.negTypeIndex[typ] }

// Relevant reports whether the event type occurs anywhere in the pattern.
func (p *Plan) Relevant(typ string) bool {
	return len(p.typeIndex[typ]) > 0 || len(p.negTypeIndex[typ]) > 0
}

// HasNegation reports whether the plan contains negated components.
func (p *Plan) HasNegation() bool { return len(p.Negatives) > 0 }

// EvalLocal evaluates a step's local predicates on one event. A predicate
// evaluation error counts as non-match; the error is reported through
// errSink when non-nil (engines route it to metrics).
func EvalLocal(preds []*predicate.Compiled, e event.Event, errSink func(error)) bool {
	return EvalLocalScratch(preds, e, nil, errSink)
}

// EvalLocalScratch is EvalLocal reusing a caller-owned binding buffer of at
// least one slot (slot 0 is overwritten), avoiding a per-event allocation
// on engine hot paths. A nil scratch allocates.
func EvalLocalScratch(preds []*predicate.Compiled, e event.Event, scratch []event.Event, errSink func(error)) bool {
	if len(preds) == 0 {
		return true
	}
	binding := scratch
	if len(binding) == 0 {
		binding = []event.Event{e}
	} else {
		binding[0] = e
	}
	for _, c := range preds {
		ok, err := c.EvalBool(binding)
		if err != nil {
			if errSink != nil {
				errSink(err)
			}
			return false
		}
		if !ok {
			return false
		}
	}
	return true
}

// CrossSatisfiedAt evaluates the cross predicates that become fully bound by
// binding the given slot. boundMask must include slot. Predicates whose mask
// is not fully covered by boundMask are skipped (they will be checked when
// their last slot binds). A predicate whose referenced slots were all bound
// BEFORE slot was bound is also skipped here, to keep evaluation
// exactly-once: it fired when its own last slot bound.
func (p *Plan) CrossSatisfiedAt(slot int, boundMask uint64, binding []event.Event, errSink func(error)) bool {
	prevMask := boundMask &^ (1 << uint(slot))
	for _, idx := range p.CrossBySlot[slot] {
		cp := p.Cross[idx]
		if cp.Mask&^boundMask != 0 {
			continue // not all referenced slots bound yet
		}
		if cp.Mask&^prevMask == 0 {
			continue // was already fully bound before this slot; fired earlier
		}
		ok, err := cp.Pred.EvalBool(binding)
		if err != nil {
			if errSink != nil {
				errSink(err)
			}
			return false
		}
		if !ok {
			return false
		}
	}
	return true
}

// NegMatches reports whether the negative event t invalidates the positive
// binding, i.e. all local and cross predicates of the negation hold.
// The time containment check (t inside the gap) is the caller's job.
func (p *Plan) NegMatches(negIdx int, t event.Event, positives []event.Event, errSink func(error)) bool {
	return p.NegMatchesScratch(negIdx, t, positives, nil, nil, errSink)
}

// NegMatchesScratch is NegMatches with two hot-path refinements: cross
// predicates whose index (into Negatives[negIdx].Cross) is marked in skip
// are treated as pre-satisfied (key-partitioned stores prove their key
// equalities structurally), and scratch — when non-nil, len(Positives)+1
// capacity — is reused as the evaluation binding instead of allocating.
func (p *Plan) NegMatchesScratch(negIdx int, t event.Event, positives []event.Event, skip []bool, scratch []event.Event, errSink func(error)) bool {
	step := p.Negatives[negIdx]
	if !EvalLocalScratch(step.Local, t, scratch, errSink) {
		return false
	}
	if len(step.Cross) == 0 {
		return true
	}
	binding := scratch
	if len(binding) < len(p.Positives)+1 {
		binding = make([]event.Event, len(p.Positives)+1)
	}
	copy(binding, positives)
	binding[len(p.Positives)] = t
	for ci, c := range step.Cross {
		if ci < len(skip) && skip[ci] {
			continue
		}
		ok, err := c.EvalBool(binding)
		if err != nil {
			if errSink != nil {
				errSink(err)
			}
			return false
		}
		if !ok {
			return false
		}
	}
	return true
}

// GapBounds returns the timestamp interval (lo, hi), exclusive on both ends,
// within which a negative event of negation negIdx invalidates the binding.
// For leading negation lo is first.TS−Window; for trailing, hi is
// first.TS+Window.
func (p *Plan) GapBounds(negIdx int, positives []event.Event) (lo, hi event.Time) {
	gap := p.Negatives[negIdx].GapAfter
	switch {
	case gap == 0:
		lo = positives[0].TS - p.Window
		hi = positives[0].TS
	case gap == len(p.Positives):
		lo = positives[len(positives)-1].TS
		hi = positives[0].TS + p.Window
	default:
		lo = positives[gap-1].TS
		hi = positives[gap].TS
	}
	return lo, hi
}

// Project computes the RETURN columns for a complete positive binding.
// With no RETURN clause it returns nil.
func (p *Plan) Project(positives []event.Event) ([]event.Value, error) {
	if len(p.Return) == 0 {
		return nil, nil
	}
	out := make([]event.Value, len(p.Return))
	for i, col := range p.Return {
		v, err := col.Expr.Eval(positives)
		if err != nil {
			return nil, fmt.Errorf("RETURN %s: %w", col.Name, err)
		}
		out[i] = v
	}
	return out, nil
}

// ParseAndCompile is a convenience: parse, analyze against an optional
// schema, and compile.
func ParseAndCompile(src string, schema *event.Schema) (*Plan, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	a, err := query.Analyze(q, schema)
	if err != nil {
		return nil, err
	}
	return Compile(a)
}
