package plan

import (
	"strings"
	"testing"
)

func TestDescribeFullQuery(t *testing.T) {
	p := compile(t, `
		PATTERN SEQ(SHELF s, !(COUNTER c), EXIT e)
		WHERE s.id = e.id AND s.id = c.id AND s.price > 100
		WITHIN 6s
		RETURN s.id AS item`)
	out := p.Describe()
	for _, want := range []string{
		"window: 6000ms",
		"[0] SHELF AS s",
		"[1] EXIT AS e",
		"local: (s.price > 100)",
		"slots {0,1}: (s.id = e.id)",
		"negation !COUNTER AS c in gap after position 1",
		"vs binding: (s.id = c.id)",
		"item := s.id",
		"partitionable by: id",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe() missing %q:\n%s", want, out)
		}
	}
}

func TestDescribeConstFalse(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a) WHERE 1 = 2 WITHIN 5")
	if !strings.Contains(p.Describe(), "matches nothing") {
		t.Error("ConstFalse not described")
	}
}

func TestDescribeLeadingTrailingNegation(t *testing.T) {
	lead := compile(t, "PATTERN SEQ(!(N n), A a) WHERE n.x > 0 WITHIN 5")
	if !strings.Contains(lead.Describe(), "leading") {
		t.Error("leading negation not annotated")
	}
	if !strings.Contains(lead.Describe(), "local: (n.x > 0)") {
		t.Error("negation local predicate missing")
	}
	trail := compile(t, "PATTERN SEQ(A a, !(N n)) WITHIN 5")
	if !strings.Contains(trail.Describe(), "trailing") {
		t.Error("trailing negation not annotated")
	}
}

func TestDescribeAggregate(t *testing.T) {
	p := compile(t, `
		AGGREGATE AVG(e.price) OVER SEQ(SHELF s, EXIT e)
		WHERE s.id = e.id
		WITHIN 6s SLIDE 2s
		GROUP BY s.id
		HAVING w.value > 10`)
	out := p.Describe()
	for _, want := range []string{
		"aggregate: AVG([1].price)",
		"sliding every 2000",
		"group by: [0].id",
		"having:",
		"w.value",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe() missing %q:\n%s", want, out)
		}
	}
	tumbling := compile(t, "AGGREGATE COUNT(*) OVER SEQ(A a, B b) WHERE a.id = b.id WITHIN 10")
	if !strings.Contains(tumbling.Describe(), "aggregate: COUNT(*)") {
		t.Error("COUNT(*) not described")
	}
	if !strings.Contains(tumbling.Describe(), "tumbling") {
		t.Error("default slide not described as tumbling")
	}
}

func TestDescribeNotPartitionable(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b, C c) WHERE a.id = b.id WITHIN 5")
	if strings.Contains(p.Describe(), "partitionable by") {
		t.Error("partially linked query reported partitionable")
	}
}
