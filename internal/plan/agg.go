package plan

import (
	"fmt"
	"strconv"
	"strings"

	"oostream/internal/event"
	"oostream/internal/fiba"
	"oostream/internal/predicate"
	"oostream/internal/query"
)

// WindowType is the synthetic event type of the pseudo-event HAVING
// predicates evaluate against, and of the placeholder event carried by
// aggregate matches (Match.Events holds one such event stamped with the
// window end so Last()/Span()/restamping work unchanged).
const WindowType = "$window"

// AggSpec is the compiled AGGREGATE clause: which function, over which
// attribute of which positive slot, on what window-end grid, grouped and
// filtered how. Like the rest of the plan it is immutable and safe for
// concurrent use.
type AggSpec struct {
	// Func is the aggregation function.
	Func query.AggFunc
	// ArgSlot/ArgAttr locate the aggregated attribute on the positive
	// binding; ArgSlot is -1 for COUNT(*).
	ArgSlot int
	ArgAttr string
	// Slide is the window-end grid pitch; window ends are the multiples of
	// Slide. Defaults to the plan window (tumbling) when the SLIDE clause
	// was absent.
	Slide event.Time
	// GroupSlot/GroupAttr locate the GROUP BY key on the positive binding;
	// GroupSlot is -1 without GROUP BY.
	GroupSlot int
	GroupAttr string
	// Having is the compiled window filter (the pseudo-variable w bound to
	// slot 0), or nil.
	Having *predicate.Compiled
}

// compileAggregate lowers the AGGREGATE clause onto the plan.
func (p *Plan) compileAggregate(a *query.Analyzed) error {
	agg := a.Query.Agg
	spec := &AggSpec{
		Func:      agg.Func,
		ArgSlot:   -1,
		GroupSlot: -1,
		Slide:     agg.Slide,
	}
	if spec.Slide == 0 {
		spec.Slide = p.Window
	}
	if agg.Arg != nil {
		spec.ArgSlot = a.VarPosition[agg.Arg.Var]
		spec.ArgAttr = agg.Arg.Attr
	}
	if agg.GroupBy != nil {
		spec.GroupSlot = a.VarPosition[agg.GroupBy.Var]
		spec.GroupAttr = agg.GroupBy.Attr
	}
	if agg.Having != nil {
		c, err := predicate.Compile(agg.Having, func(v string) (int, bool) {
			return 0, v == query.HavingVar
		})
		if err != nil {
			return err
		}
		spec.Having = c
	}
	p.Agg = spec
	return nil
}

// HasTrailingNegation reports whether any negation is anchored after the
// last positive component. Such matches are withheld until the trailing gap
// seals, which widens the lateness bound aggregation must absorb by one
// window length.
func (p *Plan) HasTrailingNegation() bool {
	for _, n := range p.Negatives {
		if n.GapAfter == len(p.Positives) {
			return true
		}
	}
	return false
}

// AlignUp returns the smallest multiple of slide that is >= ts — the first
// window end whose window can contain an element at ts.
func AlignUp(ts, slide event.Time) event.Time {
	q := ts / slide
	if q*slide < ts {
		q++
	}
	return q * slide
}

// ElementOf maps one inner match to its aggregation-tree element: the
// element timestamp (the match's last event — the moment the match
// completes), its partial aggregate, and its GROUP BY key. ok is false when
// the argument or group attribute is missing or (for the argument)
// non-numeric; such matches contribute nothing, and the error is reported
// through errSink (engines route it to the PredErrors counter).
func (s *AggSpec) ElementOf(m Match, errSink func(error)) (ts event.Time, p fiba.Partial, group event.Value, ok bool) {
	ts = m.Last().TS
	if s.ArgSlot < 0 {
		p = fiba.CountOnly()
	} else {
		e := m.Events[s.ArgSlot]
		v, found := e.Attr(s.ArgAttr)
		if !found {
			if s.ArgAttr == predicate.TSAttr {
				v = event.Int(e.TS)
			} else {
				sink(errSink, fmt.Errorf("%s: event %s has no attribute %q", s.Func, e.Type, s.ArgAttr))
				return 0, fiba.Partial{}, event.Value{}, false
			}
		}
		if !v.IsNumeric() {
			sink(errSink, fmt.Errorf("%s: attribute %q is %s, not numeric", s.Func, s.ArgAttr, v.Kind()))
			return 0, fiba.Partial{}, event.Value{}, false
		}
		p = fiba.Of(v)
	}
	if s.GroupSlot >= 0 {
		g, found := KeyOf(m.Events[s.GroupSlot], s.GroupAttr)
		if !found {
			sink(errSink, fmt.Errorf("GROUP BY %s: event %s has no attribute %q", s.GroupAttr, m.Events[s.GroupSlot].Type, s.GroupAttr))
			return 0, fiba.Partial{}, event.Value{}, false
		}
		group = g
	}
	return ts, p, group, true
}

func sink(errSink func(error), err error) {
	if errSink != nil {
		errSink(err)
	}
}

// Result turns a merged partial into the aggregate's output value. ok is
// false for the empty window (Count == 0): empty windows emit nothing.
// SUM stays exact-integer while every contribution was an int.
func (s *AggSpec) Result(p fiba.Partial) (v event.Value, count int64, ok bool) {
	if p.Count == 0 {
		return event.Value{}, 0, false
	}
	switch s.Func {
	case query.AggCount:
		return event.Int(p.Count), p.Count, true
	case query.AggSum:
		if p.Floaty {
			return event.Float(p.SumF), p.Count, true
		}
		return event.Int(p.SumI), p.Count, true
	case query.AggAvg:
		return event.Float(p.SumF / float64(p.Count)), p.Count, true
	case query.AggMin:
		return p.Min, p.Count, true
	case query.AggMax:
		return p.Max, p.Count, true
	default:
		return event.Value{}, 0, false
	}
}

// EvalHaving applies the HAVING filter to a candidate window value. Without
// a HAVING clause every window passes. Evaluation errors count as
// non-passing and are reported through errSink.
func (s *AggSpec) EvalHaving(v *AggValue, errSink func(error)) bool {
	if s.Having == nil {
		return true
	}
	attrs := event.Attrs{
		query.HavingValue: v.Value,
		query.HavingCount: event.Int(v.Count),
		query.HavingStart: event.Int(int64(v.WindowStart)),
		query.HavingEnd:   event.Int(int64(v.WindowEnd)),
	}
	if v.HasGroup {
		attrs[query.HavingKey] = v.Group
	}
	w := event.Event{Type: WindowType, TS: v.WindowEnd, Attrs: attrs}
	ok, err := s.Having.EvalBool([]event.Event{w})
	if err != nil {
		sink(errSink, fmt.Errorf("HAVING: %w", err))
		return false
	}
	return ok
}

// AggValue is the payload of an aggregate match: one window's value. The
// window is the half-open interval (WindowStart, WindowEnd].
type AggValue struct {
	// Func is the aggregation function name (COUNT/SUM/AVG/MIN/MAX).
	Func string
	// WindowStart is the exclusive window start (WindowEnd − WITHIN).
	WindowStart event.Time
	// WindowEnd is the inclusive window end, a multiple of SLIDE.
	WindowEnd event.Time
	// Group is the GROUP BY key; valid only when HasGroup.
	Group    event.Value
	HasGroup bool
	// Value is the aggregate result.
	Value event.Value
	// Count is the number of contributing elements (matches).
	Count int64
}

// key is the aggregate counterpart of Match.Key: window identity plus the
// emitted value, so a speculative retract+insert revision of the same
// window cancels in KeySet exactly like a pattern retraction does.
func (v *AggValue) key() string {
	var b strings.Builder
	b.WriteString("agg|")
	b.WriteString(v.Func)
	b.WriteByte('|')
	b.WriteString(strconv.FormatInt(int64(v.WindowEnd), 10))
	b.WriteByte('|')
	if v.HasGroup {
		b.WriteString(v.Group.MapKey().String())
	}
	b.WriteByte('|')
	b.WriteString(v.Value.String())
	b.WriteByte('|')
	b.WriteString(strconv.FormatInt(v.Count, 10))
	return b.String()
}

// Same reports whether o would emit as the same match (equal keys): a
// revision that changes nothing needs no retract+insert pair.
func (v *AggValue) Same(o *AggValue) bool { return v.key() == o.key() }

func (v *AggValue) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%d,%d]", v.Func, v.WindowStart, v.WindowEnd)
	if v.HasGroup {
		fmt.Fprintf(&b, " key=%s", v.Group)
	}
	fmt.Fprintf(&b, " = %s (n=%d)", v.Value, v.Count)
	return b.String()
}

// WindowEvent builds the placeholder event aggregate matches carry in
// Events: type WindowType, stamped with the window end.
func WindowEvent(end event.Time) event.Event {
	return event.Event{Type: WindowType, TS: end}
}
