package plan

import (
	"strings"
	"testing"

	"oostream/internal/event"
)

func compile(t *testing.T, src string) *Plan {
	t.Helper()
	p, err := ParseAndCompile(src, nil)
	if err != nil {
		t.Fatalf("ParseAndCompile(%q): %v", src, err)
	}
	return p
}

func TestCompileDistributesPredicates(t *testing.T) {
	p := compile(t, `
		PATTERN SEQ(A a, B b, C c)
		WHERE a.x > 1 AND b.y = 2 AND a.id = c.id AND a.id = b.id AND 1 = 1
		WITHIN 100`)
	if len(p.Positives) != 3 {
		t.Fatalf("positives = %d", len(p.Positives))
	}
	if len(p.Positives[0].Local) != 1 || len(p.Positives[1].Local) != 1 || len(p.Positives[2].Local) != 0 {
		t.Errorf("local counts = %d,%d,%d",
			len(p.Positives[0].Local), len(p.Positives[1].Local), len(p.Positives[2].Local))
	}
	if len(p.Cross) != 2 {
		t.Fatalf("cross = %d", len(p.Cross))
	}
	if p.ConstFalse {
		t.Error("1=1 should not mark ConstFalse")
	}
	// a.id = c.id has mask {0,2}; a.id = b.id has mask {0,1}.
	masks := map[uint64]bool{}
	for _, c := range p.Cross {
		masks[c.Mask] = true
	}
	if !masks[0b101] || !masks[0b011] {
		t.Errorf("cross masks = %v", masks)
	}
	// CrossBySlot: slot 0 referenced by both.
	if len(p.CrossBySlot[0]) != 2 || len(p.CrossBySlot[1]) != 1 || len(p.CrossBySlot[2]) != 1 {
		t.Errorf("CrossBySlot = %v", p.CrossBySlot)
	}
}

func TestCompileConstFalse(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a) WHERE 1 = 2 WITHIN 10")
	if !p.ConstFalse {
		t.Error("1=2 should mark ConstFalse")
	}
}

func TestCompileNegativePredicates(t *testing.T) {
	p := compile(t, `
		PATTERN SEQ(A a, !(N n), B b)
		WHERE n.x > 0 AND a.id = n.id AND a.id = b.id
		WITHIN 100`)
	if len(p.Negatives) != 1 {
		t.Fatalf("negatives = %d", len(p.Negatives))
	}
	neg := p.Negatives[0]
	if neg.GapAfter != 1 {
		t.Errorf("GapAfter = %d", neg.GapAfter)
	}
	if len(neg.Local) != 1 || len(neg.Cross) != 1 {
		t.Errorf("neg local=%d cross=%d", len(neg.Local), len(neg.Cross))
	}
	if len(p.Cross) != 1 {
		t.Errorf("positive cross = %d", len(p.Cross))
	}
}

func TestCompileRejectsTwoNegVarsInOnePredicate(t *testing.T) {
	_, err := ParseAndCompile(`
		PATTERN SEQ(A a, !(N n), !(M m), B b)
		WHERE n.id = m.id
		WITHIN 100`, nil)
	if err == nil || !strings.Contains(err.Error(), "multiple negated") {
		t.Fatalf("want multiple-negated error, got %v", err)
	}
}

func TestTypeIndex(t *testing.T) {
	p := compile(t, "PATTERN SEQ(T a, U b, T c, !(V n)) WITHIN 10")
	if got := p.PositionsForType("T"); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("PositionsForType(T) = %v", got)
	}
	if got := p.PositionsForType("U"); len(got) != 1 || got[0] != 1 {
		t.Errorf("PositionsForType(U) = %v", got)
	}
	if got := p.NegativesForType("V"); len(got) != 1 || got[0] != 0 {
		t.Errorf("NegativesForType(V) = %v", got)
	}
	if !p.Relevant("T") || !p.Relevant("V") || p.Relevant("X") {
		t.Error("Relevant misclassifies")
	}
	if !p.HasNegation() {
		t.Error("HasNegation should be true")
	}
}

func TestEvalLocal(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WHERE a.x > 5 AND a.x < 10 WITHIN 100")
	local := p.Positives[0].Local
	if len(local) != 2 {
		t.Fatalf("local = %d", len(local))
	}
	if !EvalLocal(local, event.New("A", 1, event.Attrs{"x": event.Int(7)}), nil) {
		t.Error("7 should pass (5,10)")
	}
	if EvalLocal(local, event.New("A", 1, event.Attrs{"x": event.Int(3)}), nil) {
		t.Error("3 should fail")
	}
	var errs int
	sink := func(error) { errs++ }
	if EvalLocal(local, event.New("A", 1, event.Attrs{}), sink) {
		t.Error("missing attr should fail")
	}
	if errs != 1 {
		t.Errorf("errSink calls = %d, want 1", errs)
	}
}

func TestCrossSatisfiedAtExactlyOnce(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b, C c) WHERE a.id = c.id WITHIN 100")
	binding := []event.Event{
		event.New("A", 1, event.Attrs{"id": event.Int(1)}),
		event.New("B", 2, event.Attrs{"id": event.Int(9)}),
		event.New("C", 3, event.Attrs{"id": event.Int(1)}),
	}
	// Binding order c(2), a(0), b(1): predicate {0,2} fires when slot 0
	// binds, not when slot 1 binds.
	if !p.CrossSatisfiedAt(2, 1<<2, binding, nil) {
		t.Error("binding slot 2 alone: predicate not fully bound, must pass")
	}
	if !p.CrossSatisfiedAt(0, 1<<2|1<<0, binding, nil) {
		t.Error("binding slot 0 with {0,2} bound: predicate should hold")
	}
	if !p.CrossSatisfiedAt(1, 1<<2|1<<0|1<<1, binding, nil) {
		t.Error("binding slot 1: predicate already fired, must be skipped")
	}
	// Now a failing binding, detected exactly when the last referenced
	// slot binds.
	binding[2] = event.New("C", 3, event.Attrs{"id": event.Int(5)})
	if p.CrossSatisfiedAt(0, 1<<2|1<<0, binding, nil) {
		t.Error("mismatched ids must fail when slot 0 completes the mask")
	}
}

func TestNegMatches(t *testing.T) {
	p := compile(t, `
		PATTERN SEQ(A a, !(N n), B b)
		WHERE n.x > 0 AND a.id = n.id
		WITHIN 100`)
	positives := []event.Event{
		event.New("A", 1, event.Attrs{"id": event.Int(7)}),
		event.New("B", 50, event.Attrs{"id": event.Int(7)}),
	}
	tests := []struct {
		name string
		neg  event.Event
		want bool
	}{
		{"matches", event.New("N", 10, event.Attrs{"id": event.Int(7), "x": event.Int(1)}), true},
		{"wrong id", event.New("N", 10, event.Attrs{"id": event.Int(8), "x": event.Int(1)}), false},
		{"fails local", event.New("N", 10, event.Attrs{"id": event.Int(7), "x": event.Int(0)}), false},
	}
	for _, tt := range tests {
		if got := p.NegMatches(0, tt.neg, positives, nil); got != tt.want {
			t.Errorf("%s: NegMatches = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestGapBounds(t *testing.T) {
	mk := func(ts ...event.Time) []event.Event {
		out := make([]event.Event, len(ts))
		for i, v := range ts {
			out[i] = event.Event{TS: v}
		}
		return out
	}
	p := compile(t, "PATTERN SEQ(A a, !(N n), B b) WITHIN 100")
	lo, hi := p.GapBounds(0, mk(10, 60))
	if lo != 10 || hi != 60 {
		t.Errorf("middle gap = (%d,%d), want (10,60)", lo, hi)
	}
	p = compile(t, "PATTERN SEQ(!(N n), A a, B b) WITHIN 100")
	lo, hi = p.GapBounds(0, mk(10, 60))
	if lo != -90 || hi != 10 {
		t.Errorf("leading gap = (%d,%d), want (-90,10)", lo, hi)
	}
	p = compile(t, "PATTERN SEQ(A a, B b, !(N n)) WITHIN 100")
	lo, hi = p.GapBounds(0, mk(10, 60))
	if lo != 60 || hi != 110 {
		t.Errorf("trailing gap = (%d,%d), want (60,110)", lo, hi)
	}
}

func TestProject(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 100 RETURN a.x + b.x AS sum, a.x AS ax")
	binding := []event.Event{
		event.New("A", 1, event.Attrs{"x": event.Int(2)}),
		event.New("B", 2, event.Attrs{"x": event.Int(3)}),
	}
	vals, err := p.Project(binding)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || !vals[0].Equal(event.Int(5)) || !vals[1].Equal(event.Int(2)) {
		t.Errorf("Project = %v", vals)
	}
	p2 := compile(t, "PATTERN SEQ(A a) WITHIN 100")
	if vals, err := p2.Project(binding[:1]); err != nil || vals != nil {
		t.Errorf("no RETURN: %v, %v", vals, err)
	}
	// Projection error propagates.
	p3 := compile(t, "PATTERN SEQ(A a) WITHIN 100 RETURN a.nope")
	if _, err := p3.Project(binding[:1]); err == nil {
		t.Error("missing attr in RETURN should error")
	}
}

func TestAutoPartitionKey(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		// Single equality chain.
		{"PATTERN SEQ(A a, B b) WHERE a.id = b.id WITHIN 100", "id"},
		// Full chain over three slots and a negation.
		{"PATTERN SEQ(A a, !(N n), B b) WHERE a.id = n.id AND a.id = b.id WITHIN 100", "id"},
		// Two candidate attributes: the one in more equality predicates wins.
		{"PATTERN SEQ(A a, B b, C c) WHERE a.id = b.id AND b.id = c.id AND a.z = c.z WITHIN 100", "id"},
		// Chain does not reach the negation: not partitionable.
		{"PATTERN SEQ(A a, !(N n), B b) WHERE a.id = b.id WITHIN 100", ""},
		// No cross predicates at all.
		{"PATTERN SEQ(A a, B b) WITHIN 100", ""},
		// Chain does not connect all positive slots.
		{"PATTERN SEQ(A a, B b, C c) WHERE a.id = b.id WITHIN 100", ""},
	}
	for _, tt := range tests {
		if got := compile(t, tt.src).PartitionKey; got != tt.want {
			t.Errorf("%s: PartitionKey = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestKeyOf(t *testing.T) {
	e := event.New("A", 42, event.Attrs{"id": event.Float(3.0), "s": event.Str("x")})
	if k, ok := KeyOf(e, "id"); !ok || !k.Equal(event.Int(3)) {
		t.Errorf("KeyOf float id = %v, %v (want canonical Int(3))", k, ok)
	}
	if k, ok := KeyOf(e, "s"); !ok || !k.Equal(event.Str("x")) {
		t.Errorf("KeyOf string = %v, %v", k, ok)
	}
	// The "ts" pseudo-attribute falls back to the event timestamp.
	if k, ok := KeyOf(e, "ts"); !ok || !k.Equal(event.Int(42)) {
		t.Errorf("KeyOf ts = %v, %v", k, ok)
	}
	if _, ok := KeyOf(e, "missing"); ok {
		t.Error("KeyOf missing attr should report !ok")
	}
}

func TestCrossViewSkipsKeyEqualities(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WHERE a.id = b.id AND a.x < b.x WITHIN 100")
	skip := make(map[int]bool)
	for _, l := range p.EqLinks {
		if l.Attr == "id" {
			skip[l.CrossIdx] = true
		}
	}
	v := p.CrossView(func(i int) bool { return skip[i] })
	// Different ids but ascending x: with the id equality skipped (the keyed
	// engine guarantees it structurally), the view must accept the binding.
	binding := []event.Event{
		event.New("A", 1, event.Attrs{"id": event.Int(1), "x": event.Int(1)}),
		event.New("B", 2, event.Attrs{"id": event.Int(2), "x": event.Int(5)}),
	}
	if !v.SatisfiedAt(1, 1<<0|1<<1, binding, nil) {
		t.Error("view with id skipped should accept ascending x")
	}
	// Descending x must still be rejected by the remaining predicate.
	binding[1].Attrs["x"] = event.Int(0)
	if v.SatisfiedAt(1, 1<<0|1<<1, binding, nil) {
		t.Error("view must still evaluate non-key predicates")
	}
	// The unfiltered view rejects mismatched ids.
	binding[1].Attrs["x"] = event.Int(5)
	if p.CrossView(nil).SatisfiedAt(1, 1<<0|1<<1, binding, nil) {
		t.Error("unfiltered view must evaluate the id equality")
	}
}
