package plan

import (
	"fmt"
	"strings"
)

// Describe renders a human-readable explanation of the compiled plan: the
// sequence steps with their local predicates, the cross predicates with
// the slots they bind, the negation gaps, and the projection. Used by
// `esprun -explain` and handy when debugging predicate distribution.
func (p *Plan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan for: %s\n", p.Source)
	fmt.Fprintf(&b, "window: %dms\n", p.Window)
	if p.ConstFalse {
		b.WriteString("constant-false WHERE clause: the query matches nothing\n")
		return b.String()
	}
	b.WriteString("sequence:\n")
	for i, step := range p.Positives {
		fmt.Fprintf(&b, "  [%d] %s AS %s", i, step.Type, step.Var)
		if len(step.Local) > 0 {
			b.WriteString("  local: ")
			for j, c := range step.Local {
				if j > 0 {
					b.WriteString(" AND ")
				}
				b.WriteString(c.String())
			}
		}
		b.WriteByte('\n')
	}
	if len(p.Cross) > 0 {
		b.WriteString("cross predicates (fire when all referenced slots bind):\n")
		for _, cp := range p.Cross {
			fmt.Fprintf(&b, "  slots %s: %s\n", maskSlots(cp.Mask), cp.Pred)
		}
	}
	for _, neg := range p.Negatives {
		fmt.Fprintf(&b, "negation !%s AS %s in gap after position %d", neg.Type, neg.Var, neg.GapAfter)
		switch neg.GapAfter {
		case 0:
			b.WriteString(" (leading: one window before the first element)")
		case len(p.Positives):
			b.WriteString(" (trailing: until one window after the first element)")
		}
		b.WriteByte('\n')
		for _, c := range neg.Local {
			fmt.Fprintf(&b, "  local: %s\n", c)
		}
		for _, c := range neg.Cross {
			fmt.Fprintf(&b, "  vs binding: %s\n", c)
		}
	}
	if len(p.Return) > 0 {
		b.WriteString("return:\n")
		for _, col := range p.Return {
			fmt.Fprintf(&b, "  %s := %s\n", col.Name, col.Expr)
		}
	}
	if a := p.Agg; a != nil {
		arg := "*"
		if a.ArgSlot >= 0 {
			arg = fmt.Sprintf("[%d].%s", a.ArgSlot, a.ArgAttr)
		}
		fmt.Fprintf(&b, "aggregate: %s(%s) over matches, windows (end−%d, end]", a.Func, arg, p.Window)
		if a.Slide == p.Window {
			b.WriteString(" tumbling\n")
		} else {
			fmt.Fprintf(&b, " sliding every %d\n", a.Slide)
		}
		if a.GroupSlot >= 0 {
			fmt.Fprintf(&b, "  group by: [%d].%s (one aggregation tree per key)\n", a.GroupSlot, a.GroupAttr)
		}
		if a.Having != nil {
			fmt.Fprintf(&b, "  having: %s\n", a.Having)
		}
	}
	if len(p.EqLinks) > 0 {
		attrs := map[string]bool{}
		for _, l := range p.EqLinks {
			attrs[l.Attr] = true
		}
		var parts []string
		for a := range attrs {
			if p.PartitionableBy(a) {
				parts = append(parts, a)
			}
		}
		if len(parts) > 0 {
			fmt.Fprintf(&b, "partitionable by: %s\n", strings.Join(parts, ", "))
		}
	}
	return b.String()
}

func maskSlots(mask uint64) string {
	var parts []string
	for i := 0; i < 64; i++ {
		if mask&(1<<uint(i)) != 0 {
			parts = append(parts, fmt.Sprintf("%d", i))
		}
	}
	return "{" + strings.Join(parts, ",") + "}"
}
