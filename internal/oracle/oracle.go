// Package oracle implements a brute-force pattern matcher used as ground
// truth in tests and correctness experiments. It enumerates candidate
// bindings by direct recursion over the (sorted) event slice, with none of
// the stack machinery, incremental triggering, or purging the real engines
// use — so a bug in those mechanisms cannot hide here. It is exponential in
// the pattern length and must only be run on bounded inputs.
package oracle

import (
	"oostream/internal/event"
	"oostream/internal/plan"
)

// Matches computes the complete, exact result set of the plan over the
// finite event slice, in no particular order. The input is not mutated.
func Matches(p *plan.Plan, events []event.Event) []plan.Match {
	if p.ConstFalse {
		return nil
	}
	sorted := make([]event.Event, len(events))
	copy(sorted, events)
	event.SortByTime(sorted)

	// Candidate lists per positive position, local predicates pre-applied.
	n := p.Len()
	candidates := make([][]event.Event, n)
	for pos := 0; pos < n; pos++ {
		step := p.Positives[pos]
		for _, e := range sorted {
			if e.Type == step.Type && plan.EvalLocal(step.Local, e, nil) {
				candidates[pos] = append(candidates[pos], e)
			}
		}
	}

	var out []plan.Match
	binding := make([]event.Event, n)
	var rec func(pos int)
	rec = func(pos int) {
		if pos == n {
			if !crossOK(p, binding) {
				return
			}
			if violatedByNegation(p, binding, sorted) {
				return
			}
			events := make([]event.Event, n)
			copy(events, binding)
			fields, err := p.Project(events)
			if err != nil {
				return
			}
			out = append(out, plan.Match{Kind: plan.Insert, Events: events, Fields: fields})
			return
		}
		for _, e := range candidates[pos] {
			if pos > 0 {
				if e.TS <= binding[pos-1].TS {
					continue
				}
				if e.TS-binding[0].TS > p.Window {
					break // candidates sorted: all later ones overflow too
				}
			}
			binding[pos] = e
			rec(pos + 1)
		}
	}
	rec(0)
	return out
}

// crossOK evaluates every cross predicate on the full binding.
func crossOK(p *plan.Plan, binding []event.Event) bool {
	for _, cp := range p.Cross {
		ok, err := cp.Pred.EvalBool(binding)
		if err != nil || !ok {
			return false
		}
	}
	return true
}

// violatedByNegation reports whether any negative event invalidates the
// binding: type match, local and cross predicates hold, and the timestamp
// falls strictly inside the negation's gap interval.
func violatedByNegation(p *plan.Plan, binding []event.Event, sorted []event.Event) bool {
	for negIdx := range p.Negatives {
		lo, hi := p.GapBounds(negIdx, binding)
		typ := p.Negatives[negIdx].Type
		for _, t := range sorted {
			if t.TS >= hi {
				break
			}
			if t.TS <= lo || t.Type != typ {
				continue
			}
			if p.NegMatches(negIdx, t, binding, nil) {
				return true
			}
		}
	}
	return false
}
