package oracle

import (
	"testing"

	"oostream/internal/event"
	"oostream/internal/plan"
)

func compile(t *testing.T, src string) *plan.Plan {
	t.Helper()
	p, err := plan.ParseAndCompile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

var nextSeq event.Seq

func ev(typ string, ts event.Time, attrs event.Attrs) event.Event {
	nextSeq++
	e := event.New(typ, ts, attrs)
	e.Seq = nextSeq
	return e
}

func keys(ms []plan.Match) map[string]int { return plan.KeySet(ms) }

func TestSimpleSequence(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 100")
	a1 := ev("A", 10, nil)
	a2 := ev("A", 20, nil)
	b1 := ev("B", 30, nil)
	ms := Matches(p, []event.Event{a1, a2, b1})
	if len(ms) != 2 {
		t.Fatalf("matches = %d: %v", len(ms), ms)
	}
	ks := keys(ms)
	if ks[key(a1, b1)] != 1 || ks[key(a2, b1)] != 1 {
		t.Errorf("keys = %v", ks)
	}
}

// key builds a match key from events for test readability.
func key(events ...event.Event) string {
	return plan.Match{Kind: plan.Insert, Events: events}.Key()
}

func TestWindowBoundary(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 20")
	a := ev("A", 10, nil)
	bIn := ev("B", 30, nil)  // span 20 == W: inside (<=)
	bOut := ev("B", 31, nil) // span 21 > W: outside
	ms := Matches(p, []event.Event{a, bIn, bOut})
	if len(ms) != 1 || ms[0].Last().Seq != bIn.Seq {
		t.Fatalf("matches = %v", ms)
	}
}

func TestStrictTimestampOrder(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 100")
	a := ev("A", 10, nil)
	bTie := ev("B", 10, nil) // same timestamp: not a successor
	ms := Matches(p, []event.Event{a, bTie})
	if len(ms) != 0 {
		t.Fatalf("tie should not match: %v", ms)
	}
}

func TestPredicates(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WHERE a.id = b.id AND a.x > 5 WITHIN 100")
	events := []event.Event{
		ev("A", 1, event.Attrs{"id": event.Int(1), "x": event.Int(10)}),
		ev("A", 2, event.Attrs{"id": event.Int(2), "x": event.Int(10)}),
		ev("A", 3, event.Attrs{"id": event.Int(1), "x": event.Int(3)}), // fails local
		ev("B", 5, event.Attrs{"id": event.Int(1)}),
		ev("B", 6, event.Attrs{"id": event.Int(3)}),
	}
	ms := Matches(p, events)
	if len(ms) != 1 {
		t.Fatalf("matches = %v", ms)
	}
	if ms[0].Events[0].Seq != events[0].Seq || ms[0].Events[1].Seq != events[3].Seq {
		t.Errorf("wrong match: %v", ms[0])
	}
}

func TestThreeStepAllCombinations(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b, C c) WITHIN 100")
	events := []event.Event{
		ev("A", 1, nil), ev("A", 2, nil),
		ev("B", 3, nil), ev("B", 4, nil),
		ev("C", 5, nil),
	}
	ms := Matches(p, events)
	if len(ms) != 4 { // 2 A x 2 B x 1 C
		t.Fatalf("matches = %d, want 4", len(ms))
	}
}

func TestNegationMiddle(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, !(N n), B b) WHERE a.id = n.id WITHIN 100")
	a := ev("A", 10, event.Attrs{"id": event.Int(1)})
	n := ev("N", 20, event.Attrs{"id": event.Int(1)})
	b := ev("B", 30, nil)
	if ms := Matches(p, []event.Event{a, n, b}); len(ms) != 0 {
		t.Fatalf("negation should suppress: %v", ms)
	}
	// Different id: negation does not apply.
	n2 := ev("N", 20, event.Attrs{"id": event.Int(2)})
	if ms := Matches(p, []event.Event{a, n2, b}); len(ms) != 1 {
		t.Fatalf("non-matching negative suppressed: %v", ms)
	}
	// Negative outside the gap (after b): no suppression.
	n3 := ev("N", 40, event.Attrs{"id": event.Int(1)})
	if ms := Matches(p, []event.Event{a, n3, b}); len(ms) != 1 {
		t.Fatalf("out-of-gap negative suppressed: %v", ms)
	}
	// Negative at exactly a's or b's timestamp: exclusive bounds.
	nEdge1 := ev("N", 10, event.Attrs{"id": event.Int(1)})
	nEdge2 := ev("N", 30, event.Attrs{"id": event.Int(1)})
	if ms := Matches(p, []event.Event{a, nEdge1, nEdge2, b}); len(ms) != 1 {
		t.Fatalf("edge negatives should not suppress: %v", ms)
	}
}

func TestNegationLeadingAndTrailing(t *testing.T) {
	lead := compile(t, "PATTERN SEQ(!(N n), A a) WITHIN 50")
	a := ev("A", 100, nil)
	nIn := ev("N", 60, nil)  // within (50, 100): suppresses
	nOut := ev("N", 50, nil) // at window edge: exclusive, no suppression
	if ms := Matches(lead, []event.Event{nIn, a}); len(ms) != 0 {
		t.Errorf("leading negation failed: %v", ms)
	}
	if ms := Matches(lead, []event.Event{nOut, a}); len(ms) != 1 {
		t.Errorf("leading negation edge: %v", ms)
	}
	trail := compile(t, "PATTERN SEQ(A a, !(N n)) WITHIN 50")
	nTrail := ev("N", 120, nil) // within (100, 150): suppresses
	if ms := Matches(trail, []event.Event{a, nTrail}); len(ms) != 0 {
		t.Errorf("trailing negation failed: %v", ms)
	}
	nFar := ev("N", 150, nil) // at first+W: exclusive, no suppression
	if ms := Matches(trail, []event.Event{a, nFar}); len(ms) != 1 {
		t.Errorf("trailing negation edge: %v", ms)
	}
}

func TestRepeatedType(t *testing.T) {
	p := compile(t, "PATTERN SEQ(T a, T b) WHERE b.x > a.x WITHIN 100")
	events := []event.Event{
		ev("T", 1, event.Attrs{"x": event.Int(5)}),
		ev("T", 2, event.Attrs{"x": event.Int(3)}),
		ev("T", 3, event.Attrs{"x": event.Int(7)}),
	}
	ms := Matches(p, events)
	// (1,3): 7>5 yes; (2,3): 7>3 yes; (1,2): 3>5 no.
	if len(ms) != 2 {
		t.Fatalf("matches = %d: %v", len(ms), ms)
	}
}

func TestConstFalse(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a) WHERE 1 = 2 WITHIN 10")
	if ms := Matches(p, []event.Event{ev("A", 1, nil)}); len(ms) != 0 {
		t.Fatal("ConstFalse plan must match nothing")
	}
}

func TestProjection(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 100 RETURN a.x + b.x AS s")
	events := []event.Event{
		ev("A", 1, event.Attrs{"x": event.Int(2)}),
		ev("B", 2, event.Attrs{"x": event.Int(3)}),
	}
	ms := Matches(p, events)
	if len(ms) != 1 || len(ms[0].Fields) != 1 || !ms[0].Fields[0].Equal(event.Int(5)) {
		t.Fatalf("projection: %v", ms)
	}
}

func TestInputNotMutated(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 100")
	events := []event.Event{ev("B", 9, nil), ev("A", 1, nil)}
	cp := make([]event.Event, len(events))
	copy(cp, events)
	Matches(p, events)
	for i := range events {
		if events[i].Seq != cp[i].Seq || events[i].TS != cp[i].TS {
			t.Fatal("input slice was reordered")
		}
	}
}
