package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"oostream/internal/event"
	"oostream/internal/gen"
)

func TestRoundTripAllKinds(t *testing.T) {
	in := []event.Event{
		{Type: "A", TS: 10, Seq: 1, Attrs: event.Attrs{
			"i": event.Int(-42),
			"f": event.Float(2.5),
			"s": event.Str("hé\"llo\n"),
			"b": event.Bool(true),
		}},
		{Type: "B", TS: -5, Seq: 2},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteAll(in); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	out, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("count = %d", len(out))
	}
	for i := range in {
		a, b := in[i], out[i]
		if a.Type != b.Type || a.TS != b.TS || a.Seq != b.Seq || len(a.Attrs) != len(b.Attrs) {
			t.Fatalf("event %d header mismatch: %v vs %v", i, a, b)
		}
		for k, v := range a.Attrs {
			if !b.Attrs[k].Equal(v) || b.Attrs[k].Kind() != v.Kind() {
				t.Fatalf("event %d attr %s: %v vs %v", i, k, v, b.Attrs[k])
			}
		}
	}
}

func TestRoundTripWorkloadPreservesArrivalOrder(t *testing.T) {
	events := gen.Shuffle(gen.RFID(gen.DefaultRFID(50, 3)), gen.Disorder{Ratio: 0.3, MaxDelay: 500, Seed: 4})
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteAll(events); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	out, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := range events {
		if out[i].Seq != events[i].Seq {
			t.Fatalf("arrival order changed at %d", i)
		}
	}
}

func TestReadErrors(t *testing.T) {
	tests := []struct {
		name, input string
	}{
		{"bad json", "{not json}\n"},
		{"no value fields", `{"type":"A","ts":1,"seq":1,"attrs":{"x":{}}}` + "\n"},
		{"two value fields", `{"type":"A","ts":1,"seq":1,"attrs":{"x":{"int":1,"str":"s"}}}` + "\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewReader(strings.NewReader(tt.input)).ReadAll()
			if err == nil {
				t.Fatal("want error")
			}
			if !strings.Contains(err.Error(), "line 1") {
				t.Errorf("error should cite the line: %v", err)
			}
		})
	}
}

func TestEmptyLinesSkipped(t *testing.T) {
	input := "\n" + `{"type":"A","ts":1,"seq":1}` + "\n\n" + `{"type":"B","ts":2,"seq":2}` + "\n"
	out, err := NewReader(strings.NewReader(input)).ReadAll()
	if err != nil || len(out) != 2 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestReadEOF(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestWriteInvalidValue(t *testing.T) {
	w := NewWriter(io.Discard)
	err := w.Write(event.Event{Type: "A", Attrs: event.Attrs{"x": {}}})
	if err == nil {
		t.Fatal("invalid value should not serialize")
	}
}

func TestGzipRoundTrip(t *testing.T) {
	events := gen.Uniform(200, []string{"A", "B"}, 4, 10, 5)
	var buf bytes.Buffer
	w := NewGzipWriter(&buf)
	if err := w.WriteAll(events); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, closer, err := NewAutoReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if closer == nil {
		t.Fatal("gzip input should return a closer")
	}
	if err := closer.Close(); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(events) {
		t.Fatalf("round trip lost events: %d vs %d", len(out), len(events))
	}
	for i := range out {
		if out[i].Seq != events[i].Seq {
			t.Fatal("order changed")
		}
	}
}

func TestAutoReaderPlainInput(t *testing.T) {
	input := `{"type":"A","ts":1,"seq":1}` + "\n"
	r, closer, err := NewAutoReader(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if closer != nil {
		t.Fatal("plain input should not return a closer")
	}
	out, err := r.ReadAll()
	if err != nil || len(out) != 1 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestAutoReaderEmptyAndShortInput(t *testing.T) {
	for _, input := range []string{"", "{"} {
		if _, _, err := NewAutoReader(strings.NewReader(input)); err != nil {
			t.Errorf("input %q: %v", input, err)
		}
	}
	// Corrupt gzip header after magic fails cleanly.
	if _, _, err := NewAutoReader(strings.NewReader("\x1f\x8bgarbage")); err == nil {
		t.Error("corrupt gzip accepted")
	}
}
