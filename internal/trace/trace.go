// Package trace serializes event streams as JSON Lines, one event per
// line, for the command-line tools (espgen writes traces, esprun replays
// them). The format keeps arrival order — a shuffled trace replayed from a
// file reproduces the disorder exactly — and round-trips every value kind.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"oostream/internal/event"
)

// wireEvent is the serialized event shape.
type wireEvent struct {
	Type  string               `json:"type"`
	TS    int64                `json:"ts"`
	Seq   uint64               `json:"seq"`
	Attrs map[string]wireValue `json:"attrs,omitempty"`
}

// wireValue is a tagged union; exactly one pointer field is set.
type wireValue struct {
	Int   *int64   `json:"int,omitempty"`
	Float *float64 `json:"float,omitempty"`
	Str   *string  `json:"str,omitempty"`
	Bool  *bool    `json:"bool,omitempty"`
}

func toWire(e event.Event) (wireEvent, error) {
	w := wireEvent{Type: e.Type, TS: e.TS, Seq: e.Seq}
	if len(e.Attrs) > 0 {
		w.Attrs = make(map[string]wireValue, len(e.Attrs))
		for k, v := range e.Attrs {
			wv, err := valueToWire(v)
			if err != nil {
				return wireEvent{}, fmt.Errorf("attribute %q: %w", k, err)
			}
			w.Attrs[k] = wv
		}
	}
	return w, nil
}

func valueToWire(v event.Value) (wireValue, error) {
	switch v.Kind() {
	case event.KindInt:
		i, _ := v.AsInt()
		return wireValue{Int: &i}, nil
	case event.KindFloat:
		f, _ := v.AsFloat()
		return wireValue{Float: &f}, nil
	case event.KindString:
		s, _ := v.AsString()
		return wireValue{Str: &s}, nil
	case event.KindBool:
		b, _ := v.AsBool()
		return wireValue{Bool: &b}, nil
	default:
		return wireValue{}, fmt.Errorf("cannot serialize %s value", v.Kind())
	}
}

func fromWire(w wireEvent) (event.Event, error) {
	e := event.Event{Type: w.Type, TS: w.TS, Seq: w.Seq}
	if len(w.Attrs) > 0 {
		e.Attrs = make(event.Attrs, len(w.Attrs))
		for k, wv := range w.Attrs {
			v, err := valueFromWire(wv)
			if err != nil {
				return event.Event{}, fmt.Errorf("attribute %q: %w", k, err)
			}
			e.Attrs[k] = v
		}
	}
	return e, nil
}

func valueFromWire(w wireValue) (event.Value, error) {
	set := 0
	var v event.Value
	if w.Int != nil {
		set++
		v = event.Int(*w.Int)
	}
	if w.Float != nil {
		set++
		v = event.Float(*w.Float)
	}
	if w.Str != nil {
		set++
		v = event.Str(*w.Str)
	}
	if w.Bool != nil {
		set++
		v = event.Bool(*w.Bool)
	}
	if set != 1 {
		return event.Value{}, fmt.Errorf("value must set exactly one field, got %d", set)
	}
	return v, nil
}

// Writer encodes events to a stream.
type Writer struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{bw: bw, enc: json.NewEncoder(bw)}
}

// Write appends one event.
func (w *Writer) Write(e event.Event) error {
	we, err := toWire(e)
	if err != nil {
		return err
	}
	return w.enc.Encode(we)
}

// WriteAll appends a slice of events.
func (w *Writer) WriteAll(events []event.Event) error {
	for _, e := range events {
		if err := w.Write(e); err != nil {
			return err
		}
	}
	return nil
}

// Flush flushes buffered output; call before closing the underlying file.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Reader decodes events from a stream.
type Reader struct {
	scanner *bufio.Scanner
	line    int
}

// NewReader wraps r. Lines up to 16 MiB are accepted.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &Reader{scanner: sc}
}

// Read returns the next event, or io.EOF at end of stream.
func (r *Reader) Read() (event.Event, error) {
	for r.scanner.Scan() {
		r.line++
		raw := r.scanner.Bytes()
		if len(raw) == 0 {
			continue
		}
		var w wireEvent
		if err := json.Unmarshal(raw, &w); err != nil {
			return event.Event{}, fmt.Errorf("line %d: %w", r.line, err)
		}
		e, err := fromWire(w)
		if err != nil {
			return event.Event{}, fmt.Errorf("line %d: %w", r.line, err)
		}
		return e, nil
	}
	if err := r.scanner.Err(); err != nil {
		return event.Event{}, err
	}
	return event.Event{}, io.EOF
}

// ReadAll consumes the remaining events.
func (r *Reader) ReadAll() ([]event.Event, error) {
	var out []event.Event
	for {
		e, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
}
