package trace

import (
	"bufio"
	"compress/gzip"
	"io"
)

// gzipMagic is the two-byte gzip header.
var gzipMagic = []byte{0x1f, 0x8b}

// NewAutoReader wraps r, transparently decompressing gzip input (detected
// by its magic bytes); plain JSONL passes through. The returned closer is
// non-nil only for gzip input and must be closed after reading.
func NewAutoReader(r io.Reader) (*Reader, io.Closer, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(2)
	if err != nil && err != io.EOF {
		return nil, nil, err
	}
	if len(head) == 2 && head[0] == gzipMagic[0] && head[1] == gzipMagic[1] {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, nil, err
		}
		return NewReader(zr), zr, nil
	}
	return NewReader(br), nil, nil
}

// GzipWriter is a trace writer that compresses its output. Close flushes
// both layers.
type GzipWriter struct {
	*Writer
	zw *gzip.Writer
}

// NewGzipWriter wraps w with gzip compression.
func NewGzipWriter(w io.Writer) *GzipWriter {
	zw := gzip.NewWriter(w)
	return &GzipWriter{Writer: NewWriter(zw), zw: zw}
}

// Close flushes the JSONL buffer and finalizes the gzip stream.
func (w *GzipWriter) Close() error {
	if err := w.Flush(); err != nil {
		return err
	}
	return w.zw.Close()
}
