// Package engine defines the interface every pattern-matching engine in
// this library implements: the in-order baseline, the K-slack levee, the
// native out-of-order engine (the paper's contribution), and the
// speculative extension. The benchmark harness, the runtime pipeline, and
// the public facade all program against this interface.
package engine

import (
	"io"

	"oostream/internal/event"
	"oostream/internal/metrics"
	"oostream/internal/obsv"
	"oostream/internal/plan"
	"oostream/internal/provenance"
)

// Engine consumes a stream of events one at a time and produces matches.
//
// Events must carry unique, pre-assigned Seq numbers (the generator or
// ingestor assigns them); engines use Seq for tie-breaking and match
// identity, never for ordering assumptions. Engines are not safe for
// concurrent Process calls; wrap them in a runtime pipeline for
// channel-based use.
type Engine interface {
	// Name identifies the strategy, e.g. "inorder", "kslack", "native".
	Name() string
	// Process ingests one event and returns any matches it emits.
	Process(e event.Event) []plan.Match
	// Flush signals end-of-stream: the engine seals all pending state and
	// returns the final matches. After Flush, Process must not be called.
	Flush() []plan.Match
	// Metrics returns a snapshot of the engine's counters.
	Metrics() metrics.Snapshot
	// StateSize returns the current number of buffered items (stack
	// instances, reorder buffers, negative stores, pending matches).
	StateSize() int
}

// Observable is implemented by engines that can bind their measurements
// to the live observability layer. Observe must be called before the first
// Process call: series points the engine's collector at a registry-owned
// obsv.Series (nil keeps the private one), and hook installs a TraceHook
// fired on match-lifecycle steps (nil disables tracing at one-branch
// cost). Wrapper engines forward Observe to their inner engine where that
// is meaningful.
type Observable interface {
	Observe(series *obsv.Series, hook obsv.TraceHook)
}

// LatencySampled is implemented by engines that stamp wall-clock stage
// boundaries on sampled event spans. SetLatencySampler must be called
// before the first Process call; a nil sampler (the default) keeps every
// stamp site a one-branch no-op. Wrapper engines forward to the layers
// that own a stage boundary.
type LatencySampled interface {
	SetLatencySampler(ls *obsv.LatencySampler)
}

// SetLatencySampler installs the sampler on en when it participates in
// latency attribution; engines without stage boundaries are skipped.
func SetLatencySampler(en Engine, ls *obsv.LatencySampler) {
	if l, ok := en.(LatencySampled); ok {
		l.SetLatencySampler(ls)
	}
}

// Provenancer is implemented by engines that can attach lineage records
// to the matches they emit. EnableProvenance must be called before the
// first Process call; once on, every emitted match carries a non-nil
// Prov. Wrapper engines forward to their inner engine and augment the
// records they relay (shard index, restamped emit clock).
type Provenancer interface {
	EnableProvenance()
}

// Introspectable is implemented by engines that can report a read-only
// view of their live state. StateSnapshot is NOT safe to call concurrently
// with Process — callers that serve snapshots over HTTP take them from the
// processing goroutine and publish via an atomic pointer (see cmd/esprun).
type Introspectable interface {
	StateSnapshot() *provenance.StateSnapshot
}

// Checkpointer is implemented by engines whose full state can be
// serialized for crash recovery: a restored engine continues the stream
// exactly where the checkpointed one stopped. The native engine and the
// sequential sharded engine over native parts implement it.
type Checkpointer interface {
	// Checkpoint serializes the engine's state. The engine may keep
	// processing afterwards; the snapshot is taken synchronously.
	Checkpoint(w io.Writer) error
}

// Advancer is implemented by engines that support heartbeats
// (punctuation): Advance tells the engine that the source guarantees no
// future event will carry a timestamp below ts − K, letting it seal
// pending output and purge state during stream silence.
type Advancer interface {
	// Advance moves the engine's clock to at least ts and returns any
	// matches that become emittable.
	Advance(ts event.Time) []plan.Match
}

// BatchProcessor is implemented by engines with a first-class batch
// admission path. ProcessBatch(batch) must return exactly the
// concatenation of Process(e) over the batch in order — same matches,
// same retractions, same lineage, same trace operations (purge timing
// excepted: engines for which purge cadence is provably output-invisible
// may defer it to the batch boundary). The contract is enforced by the
// differential harness (difftest.RunBatch).
type BatchProcessor interface {
	// ProcessBatch ingests a batch of events in order and returns the
	// matches they emit, amortizing per-call overhead (shared output
	// slice, deferred purge and gauge publication).
	ProcessBatch(batch []event.Event) []plan.Match
}

// ProcessBatch feeds a batch through an engine's native batch path when
// it has one, falling back to per-event Process calls otherwise. Either
// way the result equals the per-event concatenation.
func ProcessBatch(en Engine, batch []event.Event) []plan.Match {
	if bp, ok := en.(BatchProcessor); ok {
		return bp.ProcessBatch(batch)
	}
	var out []plan.Match
	for _, e := range batch {
		out = append(out, en.Process(e)...)
	}
	return out
}

// Drain runs a whole finite stream through an engine and returns every
// match (Process results plus Flush).
func Drain(en Engine, events []event.Event) []plan.Match {
	var out []plan.Match
	for _, e := range events {
		out = append(out, en.Process(e)...)
	}
	return append(out, en.Flush()...)
}
