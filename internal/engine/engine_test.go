package engine_test

import (
	"testing"

	"oostream/internal/core"
	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/inorder"
	"oostream/internal/kslack"
	"oostream/internal/plan"
	"oostream/internal/speculate"
)

func testPlan(t *testing.T) *plan.Plan {
	t.Helper()
	p, err := plan.ParseAndCompile("PATTERN SEQ(A a, B b) WITHIN 100", nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestAllEnginesImplementInterfaces pins the interface contracts: every
// strategy is an engine.Engine and an engine.Advancer.
func TestAllEnginesImplementInterfaces(t *testing.T) {
	p := testPlan(t)
	engines := []engine.Engine{
		core.MustNew(p, core.Options{K: 10}),
		inorder.New(p),
		kslack.NewEngine(10, inorder.New(p)),
		speculate.MustNew(p, speculate.Options{K: 10}),
	}
	names := map[string]bool{}
	for _, en := range engines {
		if _, ok := en.(engine.Advancer); !ok {
			t.Errorf("%s does not support heartbeats", en.Name())
		}
		names[en.Name()] = true
	}
	for _, want := range []string{"native", "inorder", "kslack", "speculate"} {
		if !names[want] {
			t.Errorf("missing engine name %q (got %v)", want, names)
		}
	}
}

func TestDrainIncludesFlush(t *testing.T) {
	// A trailing-negation query defers emission to Flush; Drain must
	// include it.
	p, err := plan.ParseAndCompile("PATTERN SEQ(A a, B b, !(N n)) WITHIN 100", nil)
	if err != nil {
		t.Fatal(err)
	}
	events := []event.Event{
		{Type: "A", TS: 10, Seq: 1},
		{Type: "B", TS: 20, Seq: 2},
	}
	got := engine.Drain(core.MustNew(p, core.Options{K: 10}), events)
	if len(got) != 1 {
		t.Fatalf("Drain missed the flush-time match: %v", got)
	}
}
