package adaptive

import (
	"math/bits"

	"oostream/internal/event"
)

// Estimator is an online, exponentially decayed lag-quantile estimator.
// It mirrors the power-of-two bucket layout of obsv.Hist — bucket i counts
// values whose bit length is i, so bucket 0 holds the value 0 and bucket
// i ≥ 1 holds [2^(i−1), 2^i−1] — but keeps float counts so the whole
// histogram can be decayed multiplicatively at every decision boundary.
// Decay turns the lifetime histogram into a recency-weighted window: after
// d decision windows an observation's weight is Decay^d, so the estimate
// tracks a drifting delay distribution instead of averaging over all time.
//
// Quantile interpolates linearly inside the winning bucket, so the
// estimate's resolution is bounded by the bucket width (a factor of two),
// which is plenty for sizing a slack that gets a safety margin anyway.
//
// The zero value is ready to use. Not safe for concurrent use: the owning
// controller serializes access.
type Estimator struct {
	buckets [65]float64
	total   float64
	// samples counts lifetime observations (undecayed), for cold-start
	// detection.
	samples uint64
	// max tracks the largest observation ever seen (undecayed).
	max event.Time
}

// Observe records one lag observation (negative lags clamp to 0).
func (e *Estimator) Observe(lag event.Time) {
	if lag < 0 {
		lag = 0
	}
	e.buckets[bits.Len64(uint64(lag))]++
	e.total++
	e.samples++
	if lag > e.max {
		e.max = lag
	}
}

// Decay multiplies every bucket by f (0 < f < 1), aging out old
// observations. Counts decayed below a small epsilon are zeroed so the
// histogram empties completely during long stable periods.
func (e *Estimator) Decay(f float64) {
	if f <= 0 || f >= 1 {
		return
	}
	const epsilon = 1e-9
	var total float64
	for i := range e.buckets {
		e.buckets[i] *= f
		if e.buckets[i] < epsilon {
			e.buckets[i] = 0
		}
		total += e.buckets[i]
	}
	e.total = total
}

// Samples returns the lifetime (undecayed) observation count.
func (e *Estimator) Samples() uint64 { return e.samples }

// Max returns the largest observation ever seen.
func (e *Estimator) Max() event.Time { return e.max }

// Quantile returns the q-quantile (0 < q ≤ 1) of the decayed distribution,
// interpolated linearly within the winning bucket. Returns 0 when the
// histogram is empty.
func (e *Estimator) Quantile(q float64) event.Time {
	if e.total <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * e.total
	var cum float64
	for i, n := range e.buckets {
		if n <= 0 {
			continue
		}
		if cum+n >= target {
			if i == 0 {
				return 0
			}
			lo := event.Time(1) << uint(i-1)
			hi := event.Time(1)<<uint(i) - 1
			frac := (target - cum) / n
			est := lo + event.Time(frac*float64(hi-lo)+0.5)
			if est > e.max {
				est = e.max
			}
			return est
		}
		cum += n
	}
	return e.max
}

// export copies the decayed histogram for checkpointing (only non-zero
// buckets matter, but the fixed array keeps the format trivial).
func (e *Estimator) export() ([]float64, float64, uint64, event.Time) {
	return append([]float64(nil), e.buckets[:]...), e.total, e.samples, e.max
}

// restore loads a checkpointed histogram.
func (e *Estimator) restore(buckets []float64, total float64, samples uint64, max event.Time) {
	for i := range e.buckets {
		e.buckets[i] = 0
	}
	copy(e.buckets[:], buckets)
	e.total = total
	e.samples = samples
	e.max = max
}
