// Package adaptive closes the control loop the paper leaves open: the
// disorder bound K is not a constant the operator tunes offline but a
// quantity derived online from the watermark-lag distribution the engines
// already measure. A Controller owns a decayed lag-quantile Estimator, fed
// from the same observation point as Series.WatermarkLag (per admitted
// event: how far its timestamp lags the max timestamp seen), and re-derives
// K every decision window as a configured quantile times a safety margin,
// with hysteresis so K moves only on sustained evidence.
//
// Dynamic K is made safe by the monotone-frontier discipline the engines
// implement on top of it: an engine never uses clock − K(t) directly as its
// safe clock but rather frontier = max over time of (clock − K(t)), which
// is monotone non-decreasing. Growing K takes effect immediately (the
// frontier merely stops advancing); shrinking K can never retract the
// frontier — it only lets future clock advances move it faster, which is
// exactly the "shrink only at release/purge boundaries" rule, strengthened
// into an invariant the differential harness can prove: every admitted
// event's lag is bounded by the maximum K the controller ever published, so
// the adaptive run's net output equals a static-K run with K = max K
// observed over the admitted stream.
//
// The Controller also carries the robustness policy knobs: SLO (the hybrid
// meta-engine's switch thresholds) and Limits (overload degradation — when
// buffered state exceeds Limits.MaxBufferedEvents the controller enters
// degraded mode and clamps the effective K to MinK, advancing the frontier
// so state drains; Limits.MaxLag caps the derived K outright, bounding
// result latency). EffectiveK is an atomic load, so concurrent readers
// (parallel shards, external resizers via SetK) never race the owner
// feeding observations.
package adaptive

import (
	"fmt"
	"sync/atomic"

	"oostream/internal/event"
)

// SLO is the service-level objective the hybrid meta-engine enforces:
// it speculates (low latency, revisable output) while the observed
// disorder is cheap and seals (final output, bounded-lag latency) when a
// threshold is breached.
type SLO struct {
	// MaxLatency bounds the tolerable result-finality latency in logical
	// ms: when the derived K (the lag quantile, which is how long sealing
	// — or speculative finality — lags the clock) exceeds it, the hybrid
	// switches to sealing. 0 disables the latency trigger.
	MaxLatency event.Time `json:"maxLatency,omitempty"`
	// MaxRetractionRate bounds retractions per admitted event over a
	// decision window: above it, speculation is churning and the hybrid
	// switches to sealing. 0 disables the retraction trigger.
	MaxRetractionRate float64 `json:"maxRetractionRate,omitempty"`
}

// Limits is the overload-degradation policy: instead of growing state or
// latency unboundedly under a disorder storm, the engine sheds
// deterministically and reports it.
type Limits struct {
	// MaxBufferedEvents bounds buffered state (the kslack reorder buffer;
	// total live state for the native engine). Above it the engine sheds
	// oldest-first (kslack) and the controller enters degraded mode,
	// clamping the effective K to MinK so the frontier advances and state
	// drains. 0 disables.
	MaxBufferedEvents int `json:"maxBufferedEvents,omitempty"`
	// MaxLag caps the derived K outright: events later than MaxLag are
	// dropped no matter what the quantiles say, bounding both buffering
	// state and result latency. 0 disables.
	MaxLag event.Time `json:"maxLag,omitempty"`
}

// Config configures a Controller. The zero value is not useful; use
// Normalized (the facade applies defaults through it).
type Config struct {
	// Enabled turns dynamic K derivation on. A disabled controller still
	// feeds the estimator (the hybrid's SLO checks read it) but keeps K
	// fixed at InitialK.
	Enabled bool `json:"enabled"`
	// InitialK is the starting bound (and the permanent one when
	// Enabled is false) — the facade passes Config.K.
	InitialK event.Time `json:"initialK"`
	// Quantile is the lag quantile K tracks, e.g. 0.999. Default 0.999.
	Quantile float64 `json:"quantile"`
	// Margin is the multiplicative safety margin applied to the quantile
	// (1.25 = 25% headroom). Default 1.25.
	Margin float64 `json:"margin"`
	// MinK and MaxK clamp the derived K. MinK defaults to 0; MaxK 0 means
	// unclamped (Limits.MaxLag still applies).
	MinK event.Time `json:"minK"`
	MaxK event.Time `json:"maxK,omitempty"`
	// DecisionEvery re-derives K every this many lag observations (one
	// decision window). Default 256.
	DecisionEvery int `json:"decisionEvery"`
	// Decay is the per-decision-window multiplicative decay of the lag
	// histogram (recency weighting). Default 0.7.
	Decay float64 `json:"decay"`
	// GrowAfter and ShrinkAfter are the hysteresis streaks: the derived
	// target must exceed (fall below) the tolerance band for this many
	// consecutive decision windows before K grows (shrinks). Growing
	// defaults to 1 window (late drops are worse than buffering); shrinking
	// to 3.
	GrowAfter   int `json:"growAfter"`
	ShrinkAfter int `json:"shrinkAfter"`
	// Tolerance is the relative dead band around the current K: a target
	// within ±Tolerance·K (or within ToleranceAbs for small K) does not
	// count as evidence in either direction. Default 0.15.
	Tolerance float64 `json:"tolerance"`

	// SLO is the hybrid meta-engine's switch policy.
	SLO SLO `json:"slo"`
	// Limits is the overload-degradation policy.
	Limits Limits `json:"limits"`
}

// minSamples is the cold-start threshold: until this many lifetime
// observations the controller keeps InitialK (the estimate is noise).
const minSamples = 64

// toleranceAbs is the absolute dead band floor (logical ms): for tiny K a
// relative band would be zero and every jitter would count as evidence.
const toleranceAbs = 4

// Normalized applies defaults and validates.
func (c Config) Normalized() (Config, error) {
	if c.Quantile == 0 {
		c.Quantile = 0.999
	}
	if c.Quantile <= 0 || c.Quantile > 1 {
		return c, fmt.Errorf("adaptive quantile must be in (0, 1], got %g", c.Quantile)
	}
	if c.Margin == 0 {
		c.Margin = 1.25
	}
	if c.Margin < 1 {
		return c, fmt.Errorf("adaptive margin must be >= 1, got %g", c.Margin)
	}
	if c.InitialK < 0 {
		return c, fmt.Errorf("adaptive initial K must be >= 0, got %d", c.InitialK)
	}
	if c.MinK < 0 {
		return c, fmt.Errorf("adaptive MinK must be >= 0, got %d", c.MinK)
	}
	if c.MaxK < 0 {
		return c, fmt.Errorf("adaptive MaxK must be >= 0, got %d", c.MaxK)
	}
	if c.MaxK > 0 && c.MinK > c.MaxK {
		return c, fmt.Errorf("adaptive MinK %d exceeds MaxK %d", c.MinK, c.MaxK)
	}
	if c.DecisionEvery == 0 {
		c.DecisionEvery = 256
	}
	if c.DecisionEvery < 0 {
		return c, fmt.Errorf("adaptive DecisionEvery must be > 0, got %d", c.DecisionEvery)
	}
	if c.Decay == 0 {
		c.Decay = 0.7
	}
	if c.Decay <= 0 || c.Decay >= 1 {
		return c, fmt.Errorf("adaptive decay must be in (0, 1), got %g", c.Decay)
	}
	if c.GrowAfter == 0 {
		c.GrowAfter = 1
	}
	if c.ShrinkAfter == 0 {
		c.ShrinkAfter = 3
	}
	if c.GrowAfter < 0 || c.ShrinkAfter < 0 {
		return c, fmt.Errorf("adaptive hysteresis streaks must be > 0, got grow=%d shrink=%d", c.GrowAfter, c.ShrinkAfter)
	}
	if c.Tolerance == 0 {
		c.Tolerance = 0.15
	}
	if c.Tolerance < 0 || c.Tolerance >= 1 {
		return c, fmt.Errorf("adaptive tolerance must be in [0, 1), got %g", c.Tolerance)
	}
	if c.SLO.MaxLatency < 0 || c.SLO.MaxRetractionRate < 0 {
		return c, fmt.Errorf("SLO thresholds must be >= 0, got %+v", c.SLO)
	}
	if c.Limits.MaxBufferedEvents < 0 || c.Limits.MaxLag < 0 {
		return c, fmt.Errorf("limits must be >= 0, got %+v", c.Limits)
	}
	return c, nil
}

// Controller derives the effective disorder bound online. One engine owns
// it (feeds ObserveLag/NoteState from its processing loop); any number of
// goroutines may read EffectiveK/NominalK/Degraded or call SetK — those
// paths are atomic-only.
type Controller struct {
	cfg Config

	// Published state: atomically readable from any goroutine.
	effK     atomic.Int64 // the bound engines enforce (nominal, or MinK when degraded)
	nomK     atomic.Int64 // the quantile-derived bound before degradation
	maxK     atomic.Int64 // max effective K ever published (the static-K equivalence bound)
	degraded atomic.Bool

	// Owner-only estimation state.
	est           Estimator
	sinceDecision int
	growStreak    int
	shrinkStreak  int
	decisions     uint64
	resizes       uint64
}

// NewController builds a controller from a normalized config (call
// Config.Normalized first; NewController re-normalizes defensively).
func NewController(cfg Config) (*Controller, error) {
	cfg, err := cfg.Normalized()
	if err != nil {
		return nil, err
	}
	c := &Controller{cfg: cfg}
	k := cfg.clamp(cfg.InitialK)
	c.nomK.Store(int64(k))
	c.publish()
	return c, nil
}

// MustController is NewController for known-good configs.
func MustController(cfg Config) *Controller {
	c, err := NewController(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// clamp applies MinK, MaxK, and Limits.MaxLag to a candidate bound.
func (c Config) clamp(k event.Time) event.Time {
	if k < c.MinK {
		k = c.MinK
	}
	if c.MaxK > 0 && k > c.MaxK {
		k = c.MaxK
	}
	if c.Limits.MaxLag > 0 && k > c.Limits.MaxLag {
		k = c.Limits.MaxLag
	}
	return k
}

// publish recomputes the effective K from the nominal K and the degraded
// flag, and maintains the max-K watermark.
func (c *Controller) publish() {
	eff := event.Time(c.nomK.Load())
	if c.degraded.Load() {
		eff = c.cfg.MinK
	}
	eff = c.cfg.clamp(eff)
	c.effK.Store(int64(eff))
	for {
		m := c.maxK.Load()
		if int64(eff) <= m || c.maxK.CompareAndSwap(m, int64(eff)) {
			return
		}
	}
}

// Config returns the controller's normalized configuration.
func (c *Controller) Config() Config { return c.cfg }

// Limits returns the overload-degradation policy.
func (c *Controller) Limits() Limits { return c.cfg.Limits }

// SLO returns the hybrid switch policy.
func (c *Controller) SLO() SLO { return c.cfg.SLO }

// EffectiveK returns the bound engines must enforce right now. Atomic.
func (c *Controller) EffectiveK() event.Time { return event.Time(c.effK.Load()) }

// NominalK returns the quantile-derived bound before degradation clamping;
// engines use it to classify a drop as shed (dropped only because of
// degradation) versus late (violates the nominal bound too). Atomic.
func (c *Controller) NominalK() event.Time { return event.Time(c.nomK.Load()) }

// MaxKObserved returns the largest effective K ever published — the K of
// the static run the adaptive run is output-equivalent to. Atomic.
func (c *Controller) MaxKObserved() event.Time { return event.Time(c.maxK.Load()) }

// Degraded reports whether the controller is in overload degradation.
// Atomic.
func (c *Controller) Degraded() bool { return c.degraded.Load() }

// Resizes returns how many times the derived K actually changed.
func (c *Controller) Resizes() uint64 { return c.resizes }

// SetK overrides the nominal bound directly (external resize; also the
// hybrid's restore path). Safe to call concurrently with readers; the
// owner's next decision window may re-derive it.
func (c *Controller) SetK(k event.Time) {
	if k < 0 {
		k = 0
	}
	c.nomK.Store(int64(c.cfg.clamp(k)))
	c.publish()
}

// ObserveLag feeds one watermark-lag observation (the same signal
// Series.WatermarkLag records: 0 for in-order arrivals, clock − TS for
// out-of-order ones — including bound violators, so a storm of drops is
// evidence to grow K, not invisible). Owner-only. Every DecisionEvery
// observations it closes a decision window: re-derive the target K, apply
// hysteresis, decay the histogram.
func (c *Controller) ObserveLag(lag event.Time) {
	c.est.Observe(lag)
	c.sinceDecision++
	if c.sinceDecision < c.cfg.DecisionEvery {
		return
	}
	c.sinceDecision = 0
	c.decide()
	c.est.Decay(c.cfg.Decay)
}

// LagQuantile returns the current decayed estimate of the configured
// quantile (no margin). Owner-side read (the hybrid's SLO check).
func (c *Controller) LagQuantile() event.Time { return c.est.Quantile(c.cfg.Quantile) }

// decide closes one decision window: derive the margin-padded quantile
// target and move K only on a sustained streak outside the tolerance band.
func (c *Controller) decide() {
	c.decisions++
	if !c.cfg.Enabled {
		return
	}
	if c.est.Samples() < minSamples {
		return // cold start: keep InitialK until the estimate means something
	}
	q := c.est.Quantile(c.cfg.Quantile)
	target := c.cfg.clamp(event.Time(float64(q)*c.cfg.Margin + 0.5))
	cur := event.Time(c.nomK.Load())
	band := event.Time(float64(cur) * c.cfg.Tolerance)
	if band < toleranceAbs {
		band = toleranceAbs
	}
	switch {
	case target > cur+band:
		c.growStreak++
		c.shrinkStreak = 0
		if c.growStreak >= c.cfg.GrowAfter {
			c.resize(target)
		}
	case target < cur-band:
		c.shrinkStreak++
		c.growStreak = 0
		if c.shrinkStreak >= c.cfg.ShrinkAfter {
			c.resize(target)
		}
	default:
		c.growStreak = 0
		c.shrinkStreak = 0
	}
}

func (c *Controller) resize(k event.Time) {
	c.growStreak = 0
	c.shrinkStreak = 0
	if event.Time(c.nomK.Load()) == k {
		return
	}
	c.nomK.Store(int64(k))
	c.resizes++
	c.publish()
}

// NoteState feeds the live buffered-state size for overload detection,
// with enter/exit hysteresis: degradation starts above MaxBufferedEvents
// and ends once state drains to three quarters of it. Owner-only.
func (c *Controller) NoteState(size int) {
	limit := c.cfg.Limits.MaxBufferedEvents
	if limit <= 0 {
		return
	}
	if !c.degraded.Load() {
		if size > limit {
			c.degraded.Store(true)
			c.publish()
		}
		return
	}
	if size <= limit-limit/4 {
		c.degraded.Store(false)
		c.publish()
	}
}

// State is the controller's serializable state, embedded in the native
// engine's checkpoint so a restored engine resumes with the learned K and
// lag distribution instead of re-learning from InitialK.
type State struct {
	Config   Config     `json:"config"`
	NominalK event.Time `json:"nominalK"`
	MaxK     event.Time `json:"maxK"`
	Degraded bool       `json:"degraded"`

	SinceDecision int        `json:"sinceDecision"`
	GrowStreak    int        `json:"growStreak"`
	ShrinkStreak  int        `json:"shrinkStreak"`
	Decisions     uint64     `json:"decisions"`
	Resizes       uint64     `json:"resizes"`
	Buckets       []float64  `json:"buckets"`
	Total         float64    `json:"total"`
	Samples       uint64     `json:"samples"`
	MaxLag        event.Time `json:"maxLag"`
}

// Export captures the controller state for checkpointing. Owner-only (the
// engine checkpoints synchronously from its processing context).
func (c *Controller) Export() State {
	buckets, total, samples, maxLag := c.est.export()
	return State{
		Config:        c.cfg,
		NominalK:      event.Time(c.nomK.Load()),
		MaxK:          event.Time(c.maxK.Load()),
		Degraded:      c.degraded.Load(),
		SinceDecision: c.sinceDecision,
		GrowStreak:    c.growStreak,
		ShrinkStreak:  c.shrinkStreak,
		Decisions:     c.decisions,
		Resizes:       c.resizes,
		Buckets:       buckets,
		Total:         total,
		Samples:       samples,
		MaxLag:        maxLag,
	}
}

// Restore rebuilds a controller from checkpointed state.
func Restore(st State) (*Controller, error) {
	c, err := NewController(st.Config)
	if err != nil {
		return nil, err
	}
	c.nomK.Store(int64(st.NominalK))
	c.degraded.Store(st.Degraded)
	c.sinceDecision = st.SinceDecision
	c.growStreak = st.GrowStreak
	c.shrinkStreak = st.ShrinkStreak
	c.decisions = st.Decisions
	c.resizes = st.Resizes
	c.est.restore(st.Buckets, st.Total, st.Samples, st.MaxLag)
	c.publish()
	// publish never lowers maxK; force the checkpointed watermark if it is
	// higher than anything re-derived above.
	for {
		m := c.maxK.Load()
		if int64(st.MaxK) <= m || c.maxK.CompareAndSwap(m, int64(st.MaxK)) {
			break
		}
	}
	return c, nil
}

// Snapshot is a read-only view of the controller for state introspection.
type Snapshot struct {
	Enabled      bool
	EffectiveK   event.Time
	NominalK     event.Time
	MaxKObserved event.Time
	Degraded     bool
	Resizes      uint64
}

// Snapshot returns the introspection view. The atomic fields are exact;
// Resizes is owner-side and only consistent when called from the
// processing context (like StateSnapshot itself).
func (c *Controller) Snapshot() Snapshot {
	return Snapshot{
		Enabled:      c.cfg.Enabled,
		EffectiveK:   c.EffectiveK(),
		NominalK:     c.NominalK(),
		MaxKObserved: c.MaxKObserved(),
		Degraded:     c.Degraded(),
		Resizes:      c.resizes,
	}
}
