package adaptive

import (
	"math/rand"
	"sort"
	"testing"

	"oostream/internal/event"
)

// exactQuantile computes the true q-quantile of a sample by sorting.
func exactQuantile(samples []event.Time, q float64) event.Time {
	if len(samples) == 0 {
		return 0
	}
	s := append([]event.Time(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q*float64(len(s))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// TestEstimatorAccuracy checks the bucketed quantile against the exact one:
// the power-of-two layout bounds the error to a factor of two, and the
// max clamp bounds it above.
func TestEstimatorAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dist := range []struct {
		name string
		draw func() event.Time
	}{
		{"uniform", func() event.Time { return event.Time(rng.Intn(1000)) }},
		{"exponential", func() event.Time { return event.Time(rng.ExpFloat64() * 200) }},
		{"constant", func() event.Time { return 337 }},
	} {
		var est Estimator
		var samples []event.Time
		for i := 0; i < 20000; i++ {
			v := dist.draw()
			est.Observe(v)
			samples = append(samples, v)
		}
		for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
			got := est.Quantile(q)
			want := exactQuantile(samples, q)
			// Bucket resolution: got must be within [want/2, 2*want+1].
			if got < want/2 || got > 2*want+1 {
				t.Errorf("%s q=%g: estimator %d vs exact %d outside 2x bucket bound", dist.name, q, got, want)
			}
		}
		if est.Quantile(1) > est.Max() {
			t.Errorf("%s: q=1 %d exceeds max %d", dist.name, est.Quantile(1), est.Max())
		}
	}
}

func TestEstimatorEmptyAndClamp(t *testing.T) {
	var est Estimator
	if got := est.Quantile(0.99); got != 0 {
		t.Fatalf("empty estimator quantile = %d, want 0", got)
	}
	est.Observe(-5)
	if got := est.Quantile(1); got != 0 {
		t.Fatalf("negative lag should clamp to 0, quantile(1) = %d", got)
	}
	est.Observe(1000)
	// All mass at 0 and 1000; q=1 must return exactly max (clamped), not
	// the bucket upper bound 1023.
	if got := est.Quantile(1); got != 1000 {
		t.Fatalf("quantile(1) = %d, want max 1000", got)
	}
}

// TestEstimatorDecay checks that old observations age out: after a
// distribution shift and enough decayed windows, the estimate tracks the
// new distribution, not the lifetime mixture.
func TestEstimatorDecay(t *testing.T) {
	var est Estimator
	// Phase 1: heavy mass at ~2000.
	for i := 0; i < 10000; i++ {
		est.Observe(2000)
	}
	// Phase 2: mass at ~50, decaying each window of 256. p99.9 needs the
	// old mass under 0.1% of the decayed total, i.e. ~40 windows at 0.7.
	for w := 0; w < 40; w++ {
		for i := 0; i < 256; i++ {
			est.Observe(50)
		}
		est.Decay(0.7)
	}
	got := est.Quantile(0.999)
	if got > 100 {
		t.Fatalf("after decay, q999 = %d; old phase-1 mass (2000) should have aged out", got)
	}
	if est.Samples() != 10000+40*256 {
		t.Fatalf("lifetime samples = %d, want %d", est.Samples(), 10000+40*256)
	}
	if est.Max() != 2000 {
		t.Fatalf("max = %d, want 2000 (undecayed)", est.Max())
	}
}

func TestConfigNormalizedDefaults(t *testing.T) {
	cfg, err := Config{Enabled: true, InitialK: 100}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Quantile != 0.999 || cfg.Margin != 1.25 || cfg.DecisionEvery != 256 ||
		cfg.Decay != 0.7 || cfg.GrowAfter != 1 || cfg.ShrinkAfter != 3 || cfg.Tolerance != 0.15 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestConfigNormalizedRejects(t *testing.T) {
	bad := []Config{
		{Quantile: 1.5},
		{Quantile: -0.1},
		{Margin: 0.5},
		{InitialK: -1},
		{MinK: -1},
		{MaxK: -1},
		{MinK: 100, MaxK: 50},
		{DecisionEvery: -1},
		{Decay: 1.5},
		{GrowAfter: -1},
		{Tolerance: -0.5},
		{SLO: SLO{MaxLatency: -1}},
		{Limits: Limits{MaxBufferedEvents: -1}},
		{Limits: Limits{MaxLag: -1}},
	}
	for i, c := range bad {
		if _, err := c.Normalized(); err == nil {
			t.Errorf("case %d: config %+v normalized without error", i, c)
		}
	}
}

// feed pushes n observations of constant lag through the controller.
func feed(c *Controller, lag event.Time, n int) {
	for i := 0; i < n; i++ {
		c.ObserveLag(lag)
	}
}

// TestControllerColdStart: before minSamples observations the controller
// must keep InitialK no matter what it sees.
func TestControllerColdStart(t *testing.T) {
	c := MustController(Config{Enabled: true, InitialK: 500, DecisionEvery: 8})
	feed(c, 5000, minSamples-8) // several decision windows, all under the cold-start bar
	if got := c.EffectiveK(); got != 500 {
		t.Fatalf("cold start moved K to %d, want InitialK 500", got)
	}
	feed(c, 5000, 2*int(minSamples)) // past cold start: now it must grow
	if got := c.EffectiveK(); got <= 500 {
		t.Fatalf("post cold start K = %d, want growth above 500", got)
	}
}

// TestControllerTracksQuantile: with steady lag the derived K converges to
// quantile × margin (within bucket resolution).
func TestControllerTracksQuantile(t *testing.T) {
	c := MustController(Config{Enabled: true, InitialK: 10, DecisionEvery: 64, Margin: 1.25})
	feed(c, 800, 1024)
	got := c.EffectiveK()
	want := event.Time(800 * 1.25)
	if got < want/2 || got > 2*want {
		t.Fatalf("K = %d, want ~%d (quantile 800 x margin 1.25, within bucket bound)", got, want)
	}
	if c.MaxKObserved() < got {
		t.Fatalf("MaxKObserved %d < current K %d", c.MaxKObserved(), got)
	}
}

// TestControllerHysteresis drives decision windows white-box (fresh
// estimator per window, then decide()) so each window's target is exactly
// the fed lag: growth fires only after GrowAfter windows; shrink needs
// ShrinkAfter consecutive windows and resets on a contradicting window.
func TestControllerHysteresis(t *testing.T) {
	c := MustController(Config{Enabled: true, InitialK: 1000, Margin: 1,
		GrowAfter: 2, ShrinkAfter: 3})
	// window closes one decision window whose margin-padded target is
	// exactly lag (single-bucket estimator, q-interpolation clamps to max).
	window := func(lag event.Time) {
		c.est = Estimator{}
		for i := 0; i < minSamples; i++ {
			c.est.Observe(lag)
		}
		c.decide()
	}

	// Growth: one high window is not enough with GrowAfter=2.
	window(4000)
	if got := c.NominalK(); got != 1000 {
		t.Fatalf("K grew to %d after 1 high window, want 1000 (GrowAfter=2)", got)
	}
	window(4000)
	if got := c.NominalK(); got != 4000 {
		t.Fatalf("K = %d after 2 high windows, want 4000", got)
	}

	// Shrink: two low windows do nothing...
	window(100)
	window(100)
	if got := c.NominalK(); got != 4000 {
		t.Fatalf("K shrank to %d after 2 low windows, want 4000 (ShrinkAfter=3)", got)
	}
	// ...the third fires.
	window(100)
	if got := c.NominalK(); got != 100 {
		t.Fatalf("K = %d after 3 low windows, want 100", got)
	}

	// Streak reset: grow back up, two low windows, an in-band window, then
	// two more low windows — no shrink (the streak was broken).
	window(4000)
	window(4000)
	base := c.NominalK()
	window(100)
	window(100)
	window(base) // in-band window resets the shrink streak
	window(100)
	window(100)
	if got := c.NominalK(); got != base {
		t.Fatalf("K = %d, want %d: the in-band window should reset the shrink streak", got, base)
	}
	// A contradicting (high) window also resets it. (An in-band window
	// first zeroes the streak left over from the section above.)
	window(base)
	window(100)
	window(100)
	window(9000) // grow evidence: resets shrink streak (and starts a grow streak)
	window(100)
	window(100)
	if got := c.NominalK(); got != base {
		t.Fatalf("K = %d, want %d: the high window should reset the shrink streak", got, base)
	}
}

// TestControllerToleranceBand: targets within the dead band produce no
// resizes.
func TestControllerToleranceBand(t *testing.T) {
	c := MustController(Config{Enabled: true, InitialK: 1000, DecisionEvery: 64, Tolerance: 0.5})
	feed(c, 1000, 1024)
	// Estimator q999 of constant 1000 is ~1000–1023; target with margin
	// 1.25 is ~1250–1280, within ±50% of 1000.
	if got := c.Resizes(); got != 0 {
		t.Fatalf("resizes = %d inside tolerance band, want 0 (K=%d)", got, c.NominalK())
	}
}

// TestControllerClamps: MinK/MaxK and Limits.MaxLag bound the derived K.
func TestControllerClamps(t *testing.T) {
	c := MustController(Config{Enabled: true, InitialK: 100, DecisionEvery: 64, MinK: 50, MaxK: 400})
	feed(c, 10000, 1024)
	if got := c.EffectiveK(); got != 400 {
		t.Fatalf("K = %d, want MaxK clamp 400", got)
	}
	feed(c, 0, 4096)
	if got := c.EffectiveK(); got != 50 {
		t.Fatalf("K = %d, want MinK clamp 50", got)
	}

	c2 := MustController(Config{Enabled: true, InitialK: 100, DecisionEvery: 64,
		Limits: Limits{MaxLag: 300}})
	feed(c2, 10000, 1024)
	if got := c2.EffectiveK(); got != 300 {
		t.Fatalf("K = %d, want Limits.MaxLag clamp 300", got)
	}
}

// TestControllerDisabled: a disabled controller never moves K but still
// feeds the estimator for SLO reads.
func TestControllerDisabled(t *testing.T) {
	c := MustController(Config{InitialK: 77, DecisionEvery: 64})
	feed(c, 9000, 2048)
	if got := c.EffectiveK(); got != 77 {
		t.Fatalf("disabled controller moved K to %d, want 77", got)
	}
	if got := c.LagQuantile(); got < 4500 {
		t.Fatalf("disabled controller quantile = %d, want estimator still fed", got)
	}
}

// TestControllerDegradation: NoteState enters degraded mode above the
// limit (clamping effective K to MinK), exits at 3/4 of it, and nominal K
// is preserved throughout.
func TestControllerDegradation(t *testing.T) {
	c := MustController(Config{Enabled: true, InitialK: 1000, MinK: 10,
		Limits: Limits{MaxBufferedEvents: 100}})
	if c.Degraded() {
		t.Fatal("fresh controller degraded")
	}
	c.NoteState(100) // at the limit: not over yet
	if c.Degraded() {
		t.Fatal("degraded at exactly the limit, want strictly above")
	}
	c.NoteState(101)
	if !c.Degraded() {
		t.Fatal("not degraded above the limit")
	}
	if got := c.EffectiveK(); got != 10 {
		t.Fatalf("degraded effective K = %d, want MinK 10", got)
	}
	if got := c.NominalK(); got != 1000 {
		t.Fatalf("degraded nominal K = %d, want preserved 1000", got)
	}
	c.NoteState(80) // above the 3/4 exit threshold (75): still degraded
	if !c.Degraded() {
		t.Fatal("exited degradation above 3/4 threshold")
	}
	c.NoteState(75)
	if c.Degraded() {
		t.Fatal("still degraded at 3/4 threshold")
	}
	if got := c.EffectiveK(); got != 1000 {
		t.Fatalf("post-degradation effective K = %d, want nominal 1000", got)
	}
	// MaxKObserved includes the pre-degradation K, not the clamped one only.
	if got := c.MaxKObserved(); got != 1000 {
		t.Fatalf("MaxKObserved = %d, want 1000", got)
	}
}

// TestControllerSetK: external resizes clamp and publish atomically.
func TestControllerSetK(t *testing.T) {
	c := MustController(Config{Enabled: true, InitialK: 100, MinK: 10, MaxK: 500})
	c.SetK(9999)
	if got := c.EffectiveK(); got != 500 {
		t.Fatalf("SetK(9999) -> %d, want MaxK clamp 500", got)
	}
	c.SetK(-3)
	if got := c.EffectiveK(); got != 10 {
		t.Fatalf("SetK(-3) -> %d, want MinK clamp 10", got)
	}
	if got := c.MaxKObserved(); got != 500 {
		t.Fatalf("MaxKObserved = %d, want 500", got)
	}
}

// TestControllerExportRestore round-trips the full controller state.
func TestControllerExportRestore(t *testing.T) {
	c := MustController(Config{Enabled: true, InitialK: 10, DecisionEvery: 64,
		Limits: Limits{MaxBufferedEvents: 1000}})
	feed(c, 700, 500)
	c.NoteState(1001)
	st := c.Export()

	r, err := Restore(st)
	if err != nil {
		t.Fatal(err)
	}
	if r.EffectiveK() != c.EffectiveK() || r.NominalK() != c.NominalK() ||
		r.MaxKObserved() != c.MaxKObserved() || r.Degraded() != c.Degraded() {
		t.Fatalf("restore mismatch: %+v vs %+v", r.Snapshot(), c.Snapshot())
	}
	if r.est.Samples() != c.est.Samples() || r.LagQuantile() != c.LagQuantile() {
		t.Fatalf("estimator restore mismatch: samples %d vs %d, q %d vs %d",
			r.est.Samples(), c.est.Samples(), r.LagQuantile(), c.LagQuantile())
	}
	// The restored controller keeps learning identically.
	feed(c, 700, 300)
	feed(r, 700, 300)
	if r.NominalK() != c.NominalK() {
		t.Fatalf("post-restore divergence: %d vs %d", r.NominalK(), c.NominalK())
	}
}

// TestControllerConcurrentReads exercises the atomic read paths while the
// owner feeds observations (run with -race).
func TestControllerConcurrentReads(t *testing.T) {
	c := MustController(Config{Enabled: true, InitialK: 100, DecisionEvery: 16,
		Limits: Limits{MaxBufferedEvents: 50}})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20000; i++ {
			_ = c.EffectiveK()
			_ = c.NominalK()
			_ = c.MaxKObserved()
			_ = c.Degraded()
			if i%100 == 0 {
				c.SetK(event.Time(i % 1000))
			}
		}
	}()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		c.ObserveLag(event.Time(rng.Intn(2000)))
		if i%50 == 0 {
			c.NoteState(rng.Intn(100))
		}
	}
	<-done
}
