// Package runtime provides the concurrent plumbing around the (inherently
// single-threaded) pattern engines: channel-based pipelines with clean
// shutdown, and multi-query fan-out where one input stream drives several
// engines on their own goroutines.
//
// Following the project's concurrency rules: every goroutine started here
// is owned by a Pipeline/Fanout object, is stoppable through the context,
// and is waited for before Run returns. Channels are unbuffered or size 1.
package runtime

import (
	"context"
	"time"

	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/obsv"
	"oostream/internal/plan"
)

// Pipeline drives one engine from an event channel to a match channel.
type Pipeline struct {
	engine engine.Engine
	// lat, when non-nil, opens spans at channel receive and closes them
	// after the event's matches are sent downstream, so the emit stage
	// covers output-channel backpressure.
	lat *obsv.LatencySampler
}

// NewPipeline wraps an engine.
func NewPipeline(en engine.Engine) *Pipeline {
	return &Pipeline{engine: en}
}

// WithLatency installs a sampler on the pipeline and returns it (chained
// at construction by the facade's Run entry).
func (p *Pipeline) WithLatency(ls *obsv.LatencySampler) *Pipeline {
	p.lat = ls
	return p
}

// Run consumes events from in until it is closed or ctx is cancelled,
// forwarding matches to out. On normal end-of-stream the engine is flushed
// and its final matches forwarded. Run closes out before returning and
// returns ctx.Err() when cancelled early, nil otherwise.
func (p *Pipeline) Run(ctx context.Context, in <-chan event.Event, out chan<- plan.Match) error {
	defer close(out)
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case e, ok := <-in:
			if !ok {
				return emitAll(ctx, p.engine.Flush(), out)
			}
			p.lat.Begin(e.Seq)
			if err := emitAll(ctx, p.engine.Process(e), out); err != nil {
				return err
			}
			p.lat.Finish(e.Seq)
		}
	}
}

// RunBatched is Run over the engine's batch path: it blocks for the first
// event of a batch, then fills greedily up to size — without waiting when
// linger is zero (whatever is queued on in forms the batch), or waiting up
// to linger for stragglers otherwise — and hands the batch to
// engine.ProcessBatch in one call. Output is identical to Run by the
// BatchProcessor contract; only throughput and latency change. size <= 1
// falls back to Run.
func (p *Pipeline) RunBatched(ctx context.Context, in <-chan event.Event, out chan<- plan.Match, size int, linger time.Duration) error {
	if size <= 1 {
		return p.Run(ctx, in, out)
	}
	defer close(out)
	batch := make([]event.Event, 0, size)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		for i := range batch {
			// Time from channel receive to dispatch is batching linger:
			// the event sat in the batch waiting for stragglers.
			p.lat.StageEnd(batch[i].Seq, obsv.StageQueue)
		}
		err := emitAll(ctx, engine.ProcessBatch(p.engine, batch), out)
		for i := range batch {
			p.lat.Finish(batch[i].Seq)
		}
		batch = batch[:0]
		return err
	}
	finish := func() error {
		if err := flush(); err != nil {
			return err
		}
		return emitAll(ctx, p.engine.Flush(), out)
	}
	var timer *time.Timer
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case e, ok := <-in:
			if !ok {
				return finish()
			}
			p.lat.Begin(e.Seq)
			batch = append(batch, e)
		}
		var deadline <-chan time.Time
		if linger > 0 {
			if timer == nil {
				timer = time.NewTimer(linger)
			} else {
				timer.Reset(linger)
			}
			deadline = timer.C
		}
	fill:
		for len(batch) < size {
			if linger > 0 {
				select {
				case <-ctx.Done():
					return ctx.Err()
				case e, ok := <-in:
					if !ok {
						return finish()
					}
					p.lat.Begin(e.Seq)
					batch = append(batch, e)
				case <-deadline:
					deadline = nil // fired and drained; don't re-stop below
					break fill
				}
			} else {
				select {
				case e, ok := <-in:
					if !ok {
						return finish()
					}
					p.lat.Begin(e.Seq)
					batch = append(batch, e)
				default:
					break fill
				}
			}
		}
		if deadline != nil && !timer.Stop() {
			<-timer.C
		}
		if err := flush(); err != nil {
			return err
		}
	}
}

func emitAll(ctx context.Context, matches []plan.Match, out chan<- plan.Match) error {
	for _, m := range matches {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case out <- m:
		}
	}
	return nil
}

// Tagged is a match labelled with the engine that produced it.
type Tagged struct {
	// Engine is the producing engine's name.
	Engine string
	// Match is the emitted match.
	Match plan.Match
}

// Fanout broadcasts one event stream to several engines, each running on
// its own goroutine, and merges their matches.
type Fanout struct {
	engines []engine.Engine
}

// NewFanout wraps the engines. Engine names should be distinct if the
// consumer needs to attribute matches.
func NewFanout(engines ...engine.Engine) *Fanout {
	return &Fanout{engines: engines}
}

// Run consumes in until closed or cancelled, feeding every engine, and
// sends all matches to out (closing it before returning). Each engine runs
// on its own goroutine with a one-slot feed channel, so a slow engine
// backpressures the broadcast rather than being skipped.
func (f *Fanout) Run(ctx context.Context, in <-chan event.Event, out chan<- Tagged) error {
	defer close(out)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	feeds := make([]chan event.Event, len(f.engines))
	errs := make(chan error, len(f.engines))
	merged := make(chan Tagged, 1)
	done := make(chan struct{})

	workers := 0
	for i, en := range f.engines {
		feeds[i] = make(chan event.Event, 1)
		workers++
		go func(en engine.Engine, feed <-chan event.Event) {
			errs <- runEngine(ctx, en, feed, merged)
		}(en, feeds[i])
	}

	// Forwarder: moves merged matches to out until all workers finish.
	forwardErr := make(chan error, 1)
	go func() {
		defer close(forwardErr)
		for {
			select {
			case <-done:
				// Drain anything still buffered.
				for {
					select {
					case t := <-merged:
						select {
						case out <- t:
						case <-ctx.Done():
							forwardErr <- ctx.Err()
							return
						}
					default:
						return
					}
				}
			case t := <-merged:
				select {
				case out <- t:
				case <-ctx.Done():
					forwardErr <- ctx.Err()
					return
				}
			}
		}
	}()

	var runErr error
broadcast:
	for {
		select {
		case <-ctx.Done():
			runErr = ctx.Err()
			break broadcast
		case e, ok := <-in:
			if !ok {
				break broadcast
			}
			for _, feed := range feeds {
				select {
				case <-ctx.Done():
					runErr = ctx.Err()
					break broadcast
				case feed <- e:
				}
			}
		}
	}
	for _, feed := range feeds {
		close(feed)
	}
	for i := 0; i < workers; i++ {
		if err := <-errs; err != nil && runErr == nil {
			runErr = err
		}
	}
	close(done)
	if err := <-forwardErr; err != nil && runErr == nil {
		runErr = err
	}
	return runErr
}

func runEngine(ctx context.Context, en engine.Engine, feed <-chan event.Event, merged chan<- Tagged) error {
	send := func(matches []plan.Match) error {
		for _, m := range matches {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case merged <- Tagged{Engine: en.Name(), Match: m}:
			}
		}
		return nil
	}
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case e, ok := <-feed:
			if !ok {
				return send(en.Flush())
			}
			if err := send(en.Process(e)); err != nil {
				return err
			}
		}
	}
}

// FeedSlice pushes a finite event slice into a channel, respecting ctx, and
// closes it. Intended to be run on its own goroutine by callers.
func FeedSlice(ctx context.Context, events []event.Event, out chan<- event.Event) error {
	defer close(out)
	for _, e := range events {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case out <- e:
		}
	}
	return nil
}
