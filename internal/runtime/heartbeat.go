package runtime

import (
	"context"
	"errors"
	"time"

	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/plan"
)

// HeartbeatPipeline drives an engine like Pipeline, additionally injecting
// punctuation when the input goes quiet: if no event arrives for Every of
// wall time, Clock() is read and passed to the engine's Advance, sealing
// pending negation output and purging state. Deployments map wall time to
// stream time in Clock (for a stream stamped with real epochs, Clock is
// simply time.Now translated to logical milliseconds).
type HeartbeatPipeline struct {
	engine engine.Engine
	// Every is the idle interval between heartbeats.
	Every time.Duration
	// Clock supplies the punctuation timestamp for an idle heartbeat.
	Clock func() event.Time
}

// NewHeartbeatPipeline wraps an engine. every must be positive and clock
// non-nil.
func NewHeartbeatPipeline(en engine.Engine, every time.Duration, clock func() event.Time) *HeartbeatPipeline {
	return &HeartbeatPipeline{engine: en, Every: every, Clock: clock}
}

// Run consumes events from in until closed or cancelled, forwarding
// matches to out (closed before returning) and heartbeating on idle. When
// the engine does not implement engine.Advancer the heartbeats are no-ops.
//
// Cancellation is prompt even mid-heartbeat or with out blocked: every
// send selects on ctx, and the idle timer is owned by this goroutine and
// stopped before Run returns — nothing leaks.
func (p *HeartbeatPipeline) Run(ctx context.Context, in <-chan event.Event, out chan<- plan.Match) error {
	defer close(out)
	adv, _ := p.engine.(engine.Advancer)
	if p.Every <= 0 {
		return errors.New("heartbeat: Every must be positive (a zero interval busy-loops the idle timer)")
	}
	if adv != nil && p.Clock == nil {
		return errors.New("heartbeat: Clock is required for an engine that supports Advance")
	}
	timer := time.NewTimer(p.Every)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-timer.C:
			if adv != nil {
				if err := emitAll(ctx, adv.Advance(p.Clock()), out); err != nil {
					return err
				}
			}
			timer.Reset(p.Every)
		case e, ok := <-in:
			if !ok {
				return emitAll(ctx, p.engine.Flush(), out)
			}
			if err := emitAll(ctx, p.engine.Process(e), out); err != nil {
				return err
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(p.Every)
		}
	}
}
