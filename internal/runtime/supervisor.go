package runtime

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/metrics"
	"oostream/internal/obsv"
	"oostream/internal/plan"
	"oostream/internal/provenance"
	"oostream/internal/recovery"
)

// AdmitPolicy decides what happens to events the admission-control layer
// rejects: duplicates (an already-seen Seq) and bound violators (timestamp
// below the admission clock minus K).
type AdmitPolicy int

const (
	// AdmitDrop silently drops rejected events, counting them.
	AdmitDrop AdmitPolicy = iota
	// AdmitDeadLetter routes rejected events to the DeadLetter channel
	// (best-effort, never blocking the hot path) and counts them.
	AdmitDeadLetter
	// AdmitBestEffort forwards bound violators to the engine anyway — the
	// engine's own late policy decides what partial use it makes of them.
	// Duplicates are still suppressed: replaying an event the engine has
	// already consumed would fabricate duplicate matches.
	AdmitBestEffort
)

// String names the policy.
func (p AdmitPolicy) String() string {
	switch p {
	case AdmitDeadLetter:
		return "deadletter"
	case AdmitBestEffort:
		return "besteffort"
	default:
		return "drop"
	}
}

// SupervisorOptions configure a Supervisor.
type SupervisorOptions struct {
	// New builds a fresh engine. Required.
	New func() (engine.Engine, error)
	// Restore rebuilds an engine from a snapshot written by its
	// Checkpoint method. When nil (or when the engine does not implement
	// engine.Checkpointer) the supervisor runs WAL-only: no checkpoint
	// files are written and recovery replays the full log.
	Restore func(r io.Reader) (engine.Engine, error)
	// K is the admission disorder bound: an event with TS < clock−K is a
	// bound violator (clock = max admitted timestamp). Use the engine's K.
	K event.Time
	// Policy is the admission policy for duplicates and bound violators.
	Policy AdmitPolicy
	// DeadLetter receives rejected events under AdmitDeadLetter. Sends
	// never block: if the channel is full the event is counted but lost.
	DeadLetter chan<- event.Event
	// CheckpointEvery takes a durable checkpoint every this many offered
	// events (when the engine supports snapshots). 0 disables periodic
	// checkpoints.
	CheckpointEvery int
	// MaxRestarts bounds consecutive panic restarts before the supervisor
	// fails sticky; the counter resets after a restart whose replay
	// completes. Default 3.
	MaxRestarts int
	// Backoff is the delay before the first restart, doubling per
	// consecutive restart up to BackoffMax. Defaults 10ms and 1s.
	Backoff    time.Duration
	BackoffMax time.Duration
	// Sleep replaces time.Sleep between restarts (test hook).
	Sleep func(time.Duration)
	// FaultHook runs before every engine Process call (test hook for
	// panic injection). A panic from the hook is supervised exactly like
	// an engine panic.
	FaultHook func(e event.Event)
}

// supervMeta is the supervisor's own state stored alongside an engine
// snapshot: the admission clock and the duplicate horizon.
type supervMeta struct {
	Clock   event.Time            `json:"clock"`
	Started bool                  `json:"started"`
	Seen    map[uint64]event.Time `json:"seen,omitempty"`
}

// Supervisor wraps an engine with the fault-tolerance runtime: every
// offered event is logged to a durable store before processing, matches
// carry monotone sequence numbers committed to the log on emission,
// engine panics trigger restart-from-checkpoint with capped exponential
// backoff, and an admission-control layer filters duplicates and disorder
// bound violators under a configurable policy.
//
// Supervisor implements engine.Engine, so it drops into pipelines,
// fan-outs, and shard parts unchanged. The error-free Engine methods
// record failures in Err (sticky); callers that can handle errors use
// ProcessE/FlushE.
//
// Crash model: the process may die at any event boundary, plus a torn
// final WAL record from dying mid-append. Reopening the store and calling
// Start restores the engine from the newest valid checkpoint, replays the
// WAL suffix, suppresses match emissions already committed before the
// crash, and returns the emissions the crash interrupted. Exactly-once
// delivery holds under the transactional-sink assumption: a match
// returned by ProcessE is considered delivered (its commit marker is
// logged before the call returns).
type Supervisor struct {
	opts  SupervisorOptions
	store *recovery.Store
	en    engine.Engine
	met   metrics.Collector

	// Admission state (rebuilt deterministically on replay).
	clock    event.Time
	started  bool
	seen     map[uint64]event.Time
	admitted uint64

	matchSeq  uint64 // cumulative match emissions (monotone)
	committed uint64 // highest commit marker written to the WAL
	durable   uint64 // suppression horizon from the last recovery

	sinceCkpt      int
	consecRestarts int

	running bool
	flushed bool
	err     error

	// Observability bindings, remembered so they survive restarts: every
	// rebuild constructs a fresh inner engine that must be re-observed.
	obsSeries *obsv.Series
	obsHook   obsv.TraceHook
	traceName string
	// lat, when non-nil, stamps wall-clock stage boundaries on sampled
	// spans (StageWAL around the append and commit barriers). Remembered
	// like the observability bindings so rebuilds re-forward it.
	lat *obsv.LatencySampler
}

// NewSupervisor wraps store and opts. Call Start before processing: it
// performs recovery (a no-op on a fresh directory) and builds the engine.
func NewSupervisor(store *recovery.Store, opts SupervisorOptions) (*Supervisor, error) {
	if opts.New == nil {
		return nil, errors.New("supervisor: New factory is required")
	}
	if opts.MaxRestarts <= 0 {
		opts.MaxRestarts = 3
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 10 * time.Millisecond
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = time.Second
	}
	if opts.Sleep == nil {
		opts.Sleep = time.Sleep
	}
	return &Supervisor{
		opts:  opts,
		store: store,
		seen:  make(map[uint64]event.Time),
	}, nil
}

// Start recovers durable state and readies the supervisor: on a fresh
// directory it just builds the engine; on a crashed one it restores the
// newest valid checkpoint, replays the WAL, and returns the matches that
// the crash interrupted (completed but not yet committed as delivered).
func (s *Supervisor) Start() ([]plan.Match, error) {
	if s.running {
		return nil, errors.New("supervisor: already started")
	}
	if s.err != nil {
		return nil, s.err
	}
	out, panicked, err := s.rebuild()
	if err != nil {
		return nil, s.fail(err)
	}
	if panicked {
		out, err = s.restartLoop()
		if err != nil {
			return nil, err
		}
	}
	s.consecRestarts = 0
	s.running = true
	return out, nil
}

// Err returns the sticky failure recorded by the error-free Engine
// methods, if any.
func (s *Supervisor) Err() error { return s.err }

func (s *Supervisor) fail(err error) error {
	if s.err == nil {
		s.err = err
	}
	return s.err
}

// Name implements engine.Engine.
func (s *Supervisor) Name() string {
	if s.en == nil {
		return "supervised"
	}
	return "supervised(" + s.en.Name() + ")"
}

// Observe implements engine.Observable. The supervisor and the inner
// engine share the series — their instrument sets are disjoint (engines
// never write the fault-tolerance counters), so one named series carries
// the full picture. The binding is remembered and re-applied after every
// restart, since a rebuild constructs a fresh inner engine.
func (s *Supervisor) Observe(series *obsv.Series, hook obsv.TraceHook) {
	s.met.Bind(series)
	s.obsSeries = series
	s.obsHook = hook
	if series != nil && series.Name() != "" {
		s.traceName = series.Name()
	} else if s.traceName == "" {
		s.traceName = "supervised"
	}
	s.applyObserve()
}

// applyObserve forwards the remembered bindings to the current engine.
func (s *Supervisor) applyObserve() {
	if s.en == nil {
		return
	}
	if s.lat != nil {
		engine.SetLatencySampler(s.en, s.lat)
	}
	if s.obsSeries == nil && s.obsHook == nil {
		return
	}
	if obs, ok := s.en.(engine.Observable); ok {
		obs.Observe(s.obsSeries, s.obsHook)
	}
}

// SetLatencySampler implements engine.LatencySampled: the supervisor owns
// the WAL stage (append + commit) and forwards the sampler to the inner
// engine, re-applying it after every restart rebuild.
func (s *Supervisor) SetLatencySampler(ls *obsv.LatencySampler) {
	s.lat = ls
	if s.en != nil {
		engine.SetLatencySampler(s.en, ls)
	}
}

// Process implements engine.Engine; failures park in Err.
func (s *Supervisor) Process(e event.Event) []plan.Match {
	out, err := s.ProcessE(e)
	if err != nil {
		s.fail(err)
	}
	return out
}

// ProcessE offers one event: it is logged to the WAL, filtered by
// admission control, processed under the panic guard (restarting from the
// latest checkpoint on panic), and any surviving matches are committed as
// delivered before they are returned.
func (s *Supervisor) ProcessE(e event.Event) ([]plan.Match, error) {
	if s.err != nil {
		return nil, s.err
	}
	if !s.running {
		return nil, errors.New("supervisor: Start not called")
	}
	if s.flushed {
		return nil, errors.New("supervisor: stream already flushed")
	}
	if err := s.store.Append(e); err != nil {
		return nil, s.fail(err)
	}
	s.lat.StageEnd(e.Seq, obsv.StageWAL)
	out, panicked, err := s.offer(e, false)
	// Second WAL stamp: the commit barrier inside offer/emit. The two
	// stamps sum into one StageWAL total per span; the inner engine's
	// construction stamp between them keeps the segments disjoint.
	s.lat.StageEnd(e.Seq, obsv.StageWAL)
	if err != nil {
		return nil, s.fail(err)
	}
	if panicked {
		out, err = s.restartLoop()
		if err != nil {
			return nil, err
		}
	}
	s.sinceCkpt++
	if s.shouldCheckpoint() {
		if err := s.checkpoint(); err != nil {
			return out, s.fail(err)
		}
	}
	return out, nil
}

// ProcessBatchE offers a batch of events. The fault-tolerance machinery is
// strictly per event — each event is WAL-appended before it is processed,
// and each event's matches are committed past the durable horizon before
// the next event is offered — so an interrupted batch behaves exactly like
// an interrupted per-event stream: recovery replays the logged prefix and
// suppresses matches already delivered, never double-emitting past the
// commit horizon. The batch entry therefore amortizes only the call and
// output-slice overhead, deliberately not the durability barriers.
// Processing stops at the first error; matches from events already
// committed are returned alongside it.
func (s *Supervisor) ProcessBatchE(batch []event.Event) ([]plan.Match, error) {
	var out []plan.Match
	for _, e := range batch {
		ms, err := s.ProcessE(e)
		if err != nil {
			return out, err
		}
		out = append(out, ms...)
	}
	return out, nil
}

// ProcessBatch implements engine.BatchProcessor; failures park in Err.
func (s *Supervisor) ProcessBatch(batch []event.Event) []plan.Match {
	out, err := s.ProcessBatchE(batch)
	if err != nil {
		s.fail(err)
	}
	return out
}

// Flush implements engine.Engine; failures park in Err.
func (s *Supervisor) Flush() []plan.Match {
	out, err := s.FlushE()
	if err != nil {
		s.fail(err)
	}
	return out
}

// FlushE seals the stream: end-of-stream is logged first, so a crash
// mid-flush replays to the same final matches.
func (s *Supervisor) FlushE() ([]plan.Match, error) {
	if s.err != nil {
		return nil, s.err
	}
	if !s.running {
		return nil, errors.New("supervisor: Start not called")
	}
	if s.flushed {
		return nil, nil
	}
	if err := s.store.AppendFlush(); err != nil {
		return nil, s.fail(err)
	}
	s.flushed = true
	ms, panicked := s.guardedFlush()
	if panicked {
		out, err := s.restartLoop() // rebuild replays the flush marker too
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	out, err := s.emit(ms)
	if err != nil {
		return nil, s.fail(err)
	}
	return out, nil
}

// Metrics implements engine.Engine: the inner engine's counters with the
// supervisor's fault-tolerance counters merged in. Those counters are
// written only by the supervisor, so assignment is exact whether or not
// the inner engine shares the supervisor's series (it does under Observe).
func (s *Supervisor) Metrics() metrics.Snapshot {
	var snap metrics.Snapshot
	if s.en != nil {
		snap = s.en.Metrics()
	}
	sup := s.met.Snapshot()
	snap.EventsDropped = sup.EventsDropped
	snap.EventsDeadLettered = sup.EventsDeadLettered
	snap.DuplicatesSuppressed = sup.DuplicatesSuppressed
	snap.Restarts = sup.Restarts
	snap.Checkpoints = sup.Checkpoints
	snap.CheckpointBytes = sup.CheckpointBytes
	snap.CheckpointDuration = sup.CheckpointDuration
	return snap
}

// StateSize implements engine.Engine.
func (s *Supervisor) StateSize() int {
	if s.en == nil {
		return 0
	}
	return s.en.StateSize()
}

// MatchSeq returns the cumulative match-emission count (the monotone
// sequence number the exactly-once machinery is built on).
func (s *Supervisor) MatchSeq() uint64 { return s.matchSeq }

// Engine exposes the live inner engine for read-only inspection (query
// listings, per-query metrics). The instance is replaced on every restart;
// do not retain it across calls. Mutations must go through Mutate.
func (s *Supervisor) Engine() engine.Engine { return s.en }

// Mutate applies a control-plane change (e.g. a multi-query Register or
// Unregister) to the live engine and makes it durable by forcing a
// checkpoint, so the mutation survives a kill/recover: the WAL only
// replays events, never mutations, so a mutation is durable exactly when
// a checkpoint capturing it is.
//
// Matches returned by fn (an Unregister's final flush) are handed back
// OUTSIDE the exactly-once horizon: they carry no match sequence numbers
// and no commit marker, because replay cannot regenerate them — counting
// them against the horizon would misalign suppression for every later
// event-driven emission. A crash racing the mutation therefore re-runs it
// from the caller's perspective (the pre-mutation checkpoint restores),
// making mutation-flush output at-least-once rather than exactly-once.
//
// An error from fn leaves the supervisor healthy (the mutation is assumed
// rejected before changing state); a checkpoint failure is sticky.
func (s *Supervisor) Mutate(fn func(en engine.Engine) ([]plan.Match, error)) ([]plan.Match, error) {
	if s.err != nil {
		return nil, s.err
	}
	if !s.running {
		return nil, errors.New("supervisor: Start not called")
	}
	if s.flushed {
		return nil, errors.New("supervisor: stream already flushed")
	}
	if !s.canSnapshot() {
		return nil, errors.New("supervisor: mutations require a checkpoint-capable engine and a Restore factory")
	}
	ms, err := fn(s.en)
	if err != nil {
		return nil, err
	}
	if err := s.checkpoint(); err != nil {
		return ms, s.fail(err)
	}
	return ms, nil
}

// StateSnapshot implements engine.Introspectable: the inner engine's view
// annotated with the supervisor's match-sequence and commit horizons.
// Returns nil when no engine is built yet or the inner engine exposes no
// introspection.
func (s *Supervisor) StateSnapshot() *provenance.StateSnapshot {
	if s.en == nil {
		return nil
	}
	intr, ok := s.en.(engine.Introspectable)
	if !ok {
		return nil
	}
	snap := intr.StateSnapshot()
	if snap == nil {
		return nil
	}
	snap.Engine = s.Name()
	snap.MatchSeq = s.matchSeq
	snap.Committed = s.committed
	return snap
}

// Kill simulates a crash: the store's handles are dropped without
// syncing and the supervisor fails sticky. Reopen the directory with a
// fresh Store and Supervisor to recover.
func (s *Supervisor) Kill() {
	s.store.Kill()
	s.fail(errors.New("supervisor: killed"))
}

// Close cleanly seals the durable store.
func (s *Supervisor) Close() error {
	return s.store.Close()
}

// offer runs one event through admission and the guarded engine,
// returning the surviving (committed) matches.
func (s *Supervisor) offer(e event.Event, replaying bool) ([]plan.Match, bool, error) {
	if !s.admit(e, replaying) {
		if !replaying {
			// Admission-rejected (duplicate/late) events leave the pipeline
			// here; their spans must not skew the wall histogram.
			s.lat.Abandon(e.Seq)
		}
		return nil, false, nil
	}
	ms, panicked := s.guardedProcess(e)
	if panicked {
		return nil, true, nil
	}
	out, err := s.emit(ms)
	return out, false, err
}

// admit decides whether the engine sees e. It must be deterministic in
// the event sequence alone: replay re-runs it to rebuild the clock and
// duplicate horizon. Metrics and dead-letter delivery are suppressed
// during replay (they already happened the first time).
func (s *Supervisor) admit(e event.Event, replaying bool) bool {
	if _, dup := s.seen[e.Seq]; dup {
		if !replaying {
			s.met.IncDupSuppressed()
			if s.opts.Policy == AdmitDeadLetter {
				s.deadLetter(e)
			}
		}
		return false
	}
	if s.started && e.TS < s.clock-s.opts.K && s.opts.Policy != AdmitBestEffort {
		if !replaying {
			if s.opts.Policy == AdmitDeadLetter {
				s.deadLetter(e)
			} else {
				s.met.IncDropped()
			}
		}
		return false
	}
	s.seen[e.Seq] = e.TS
	s.started = true
	if e.TS > s.clock {
		s.clock = e.TS
	}
	s.admitted++
	if s.admitted%1024 == 0 {
		s.purgeSeen()
	}
	return true
}

// purgeSeen drops duplicate-horizon entries no duplicate can reuse: an
// event below clock−K fails the bound check before the duplicate check
// matters. (Under AdmitBestEffort a duplicate older than the horizon can
// slip back in; exact dedup is guaranteed within the bound only.)
func (s *Supervisor) purgeSeen() {
	horizon := s.clock - s.opts.K
	for seq, ts := range s.seen {
		if ts < horizon {
			delete(s.seen, seq)
		}
	}
}

func (s *Supervisor) deadLetter(e event.Event) {
	s.met.IncDeadLettered()
	if s.opts.DeadLetter != nil {
		select {
		case s.opts.DeadLetter <- e:
		default:
		}
	}
}

// emit assigns sequence numbers to a batch of matches, suppresses those
// already delivered before a crash, and commits the rest to the WAL.
func (s *Supervisor) emit(ms []plan.Match) ([]plan.Match, error) {
	if len(ms) == 0 {
		return nil, nil
	}
	var out []plan.Match
	for _, m := range ms {
		s.matchSeq++
		if s.matchSeq <= s.durable {
			s.met.IncDupSuppressed()
			continue
		}
		out = append(out, m)
	}
	if s.matchSeq > s.committed {
		if err := s.store.CommitMatches(s.matchSeq); err != nil {
			return out, err
		}
		s.committed = s.matchSeq
	}
	return out, nil
}

func (s *Supervisor) guardedProcess(e event.Event) (out []plan.Match, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			out, panicked = nil, true
		}
	}()
	if s.opts.FaultHook != nil {
		s.opts.FaultHook(e)
	}
	return s.en.Process(e), false
}

func (s *Supervisor) guardedFlush() (out []plan.Match, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			out, panicked = nil, true
		}
	}()
	return s.en.Flush(), false
}

func (s *Supervisor) canSnapshot() bool {
	if s.opts.Restore == nil || s.en == nil {
		return false
	}
	_, ok := s.en.(engine.Checkpointer)
	return ok
}

func (s *Supervisor) shouldCheckpoint() bool {
	return s.opts.CheckpointEvery > 0 && s.sinceCkpt >= s.opts.CheckpointEvery && s.canSnapshot()
}

// checkpoint durably snapshots the engine plus the supervisor's admission
// state and rotates the WAL.
func (s *Supervisor) checkpoint() error {
	cp := s.en.(engine.Checkpointer)
	meta := supervMeta{Clock: s.clock, Started: s.started, Seen: s.seen}
	start := time.Now()
	n, err := s.store.Checkpoint(cp.Checkpoint, meta, s.matchSeq)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	s.met.ObserveCheckpoint(n, time.Since(start))
	if s.obsHook != nil {
		s.obsHook.Trace(obsv.TraceEvent{Op: obsv.OpCheckpoint, Engine: s.traceName, TS: s.clock, N: n})
	}
	s.sinceCkpt = 0
	return nil
}

// rebuild reconstructs the supervisor from durable state: restore the
// newest valid checkpoint (or a fresh engine), replay the WAL suffix
// through the same admission logic, suppress emissions numbered at or
// below the durable commit horizon, and return the rest. panicked reports
// that replay hit a panic (the caller retries through the restart loop).
func (s *Supervisor) rebuild() (out []plan.Match, panicked bool, err error) {
	rec, err := s.store.Recover()
	if err != nil {
		return nil, false, err
	}
	var en engine.Engine
	if len(rec.Snapshot) > 0 {
		if s.opts.Restore == nil {
			return nil, false, errors.New("supervisor: found an engine snapshot but no Restore factory")
		}
		en, err = s.opts.Restore(bytes.NewReader(rec.Snapshot))
		if err != nil {
			return nil, false, fmt.Errorf("restore engine snapshot: %w", err)
		}
	} else {
		en, err = s.opts.New()
		if err != nil {
			return nil, false, err
		}
	}
	s.en = en
	s.clock, s.started = 0, false
	s.seen = make(map[uint64]event.Time)
	if len(rec.Snapshot) > 0 && len(rec.Meta) > 0 {
		var meta supervMeta
		if err := json.Unmarshal(rec.Meta, &meta); err != nil {
			return nil, false, fmt.Errorf("decode supervisor meta: %w", err)
		}
		s.clock, s.started = meta.Clock, meta.Started
		if meta.Seen != nil {
			s.seen = meta.Seen
		}
	}
	s.matchSeq = rec.CkptMatches
	s.committed = rec.Matches
	s.durable = rec.Matches
	s.flushed = false
	s.sinceCkpt = 0
	s.applyObserve()

	for _, e := range rec.Replay {
		ms, p, err := s.offer(e, true)
		if err != nil {
			return out, false, err
		}
		if p {
			return out, true, nil
		}
		out = append(out, ms...)
	}
	if rec.Flushed {
		ms, p := s.guardedFlush()
		if p {
			return out, true, nil
		}
		s.flushed = true
		emitted, err := s.emit(ms)
		if err != nil {
			return out, false, err
		}
		out = append(out, emitted...)
	}
	// Collapse a non-trivial WAL into a fresh checkpoint so the next
	// crash replays from here instead of re-walking this log.
	if len(rec.Replay) > 0 && s.opts.CheckpointEvery > 0 && s.canSnapshot() && !s.flushed {
		if err := s.checkpoint(); err != nil {
			return out, false, err
		}
	}
	return out, false, nil
}

// restartLoop recovers from an engine panic: restore the latest
// checkpoint and replay, backing off exponentially between attempts. A
// deterministic panic (a poison event at the WAL tail) re-fires on every
// replay and exhausts MaxRestarts into a sticky failure; a transient one
// clears and the replay's new emissions are returned.
func (s *Supervisor) restartLoop() ([]plan.Match, error) {
	backoff := s.opts.Backoff
	for {
		s.consecRestarts++
		if s.consecRestarts > s.opts.MaxRestarts {
			return nil, s.fail(fmt.Errorf("supervisor: engine panicked %d consecutive times; giving up", s.consecRestarts-1))
		}
		s.met.IncRestart()
		if s.obsHook != nil {
			s.obsHook.Trace(obsv.TraceEvent{Op: obsv.OpRestart, Engine: s.traceName, TS: s.clock, N: s.consecRestarts})
		}
		s.opts.Sleep(backoff)
		backoff *= 2
		if backoff > s.opts.BackoffMax {
			backoff = s.opts.BackoffMax
		}
		out, panicked, err := s.rebuild()
		if err != nil {
			return nil, s.fail(err)
		}
		if !panicked {
			s.consecRestarts = 0
			return out, nil
		}
	}
}
