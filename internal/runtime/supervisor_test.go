package runtime

import (
	"io"
	"strings"
	"testing"
	"time"

	"oostream/internal/core"
	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/gen"
	"oostream/internal/plan"
	"oostream/internal/recovery"
)

const supervQuery = "PATTERN SEQ(A a, B b) WHERE a.id = b.id WITHIN 50"

func supervStream(t *testing.T, n int, seed int64) []event.Event {
	t.Helper()
	sorted := gen.Uniform(n, []string{"A", "B", "C"}, 3, 5, seed)
	return gen.Shuffle(sorted, gen.Disorder{Ratio: 0.3, MaxDelay: 40, Seed: seed + 1})
}

// noSleep removes restart backoff from tests.
func noSleep(time.Duration) {}

func supervOpts(t *testing.T, p *plan.Plan, k event.Time) SupervisorOptions {
	t.Helper()
	return SupervisorOptions{
		New: func() (engine.Engine, error) {
			return core.New(p, core.Options{K: k})
		},
		Restore: func(r io.Reader) (engine.Engine, error) {
			return core.Restore(p, r)
		},
		K:     k,
		Sleep: noSleep,
	}
}

func openSuperv(t *testing.T, dir string, opts SupervisorOptions) *Supervisor {
	t.Helper()
	st, err := recovery.Open(dir, recovery.Options{DisableFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSupervisor(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// driveAll offers every event and flushes, accumulating emissions.
func driveAll(t *testing.T, s *Supervisor, events []event.Event) []plan.Match {
	t.Helper()
	var out []plan.Match
	for _, e := range events {
		ms, err := s.ProcessE(e)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, ms...)
	}
	ms, err := s.FlushE()
	if err != nil {
		t.Fatal(err)
	}
	return append(out, ms...)
}

// baseline runs the raw engine without supervision.
func baseline(t *testing.T, p *plan.Plan, k event.Time, events []event.Event) []plan.Match {
	t.Helper()
	return engine.Drain(core.MustNew(p, core.Options{K: k}), events)
}

// TestSupervisedMatchesUnsupervised: with no faults, supervision is
// transparent — same matches as a bare engine run.
func TestSupervisedMatchesUnsupervised(t *testing.T) {
	p := compile(t, supervQuery)
	events := supervStream(t, 300, 11)
	want := baseline(t, p, 40, events)

	opts := supervOpts(t, p, 40)
	opts.CheckpointEvery = 16
	s := openSuperv(t, t.TempDir(), opts)
	if _, err := s.Start(); err != nil {
		t.Fatal(err)
	}
	got := driveAll(t, s, events)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if ok, diff := plan.SameResults(want, got); !ok {
		t.Fatalf("supervised output differs:\n%s", diff)
	}
	snap := s.Metrics()
	if snap.Checkpoints == 0 {
		t.Error("no checkpoints taken")
	}
	if snap.CheckpointBytes == 0 || snap.Restarts != 0 {
		t.Errorf("bytes=%d restarts=%d", snap.CheckpointBytes, snap.Restarts)
	}
}

// TestCrashRecoveryExactMatchSet is the tentpole acceptance check at unit
// level: kill at every tested offset, reopen, and the combined emissions
// (pre-crash + recovered run) equal an uninterrupted run's, in order,
// with zero duplicates.
func TestCrashRecoveryExactMatchSet(t *testing.T) {
	p := compile(t, supervQuery)
	events := supervStream(t, 200, 21)

	opts := supervOpts(t, p, 40)
	opts.CheckpointEvery = 8
	dirOpts := opts
	wantS := openSuperv(t, t.TempDir(), dirOpts)
	if _, err := wantS.Start(); err != nil {
		t.Fatal(err)
	}
	want := driveAll(t, wantS, events)
	wantS.Close()

	for _, crashAt := range []int{0, 1, 7, 8, 9, 63, 100, 199} {
		dir := t.TempDir()
		s := openSuperv(t, dir, opts)
		if _, err := s.Start(); err != nil {
			t.Fatal(err)
		}
		var got []plan.Match
		for _, e := range events[:crashAt] {
			ms, err := s.ProcessE(e)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, ms...)
		}
		s.Kill()
		if _, err := s.ProcessE(events[crashAt]); err == nil {
			t.Fatal("ProcessE after Kill succeeded")
		}

		s2 := openSuperv(t, dir, opts)
		recovered, err := s2.Start()
		if err != nil {
			t.Fatalf("crash at %d: recovery: %v", crashAt, err)
		}
		got = append(got, recovered...)
		for _, e := range events[crashAt:] {
			ms, err := s2.ProcessE(e)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, ms...)
		}
		ms, err := s2.FlushE()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ms...)
		s2.Close()

		if len(got) != len(want) {
			t.Fatalf("crash at %d: %d matches, want %d", crashAt, len(got), len(want))
		}
		for i := range want {
			if want[i].Key() != got[i].Key() {
				t.Fatalf("crash at %d: match %d is %s, want %s (order or identity diverged)",
					crashAt, i, got[i].Key(), want[i].Key())
			}
		}
	}
}

// TestCrashDuringFlushRecovers: killing after FlushE's marker is durable
// but before its matches are delivered replays to the same final set.
func TestCrashDuringFlushRecovers(t *testing.T) {
	p := compile(t, supervQuery)
	events := supervStream(t, 120, 31)
	want := baseline(t, p, 40, events)

	dir := t.TempDir()
	opts := supervOpts(t, p, 40)
	opts.CheckpointEvery = 16
	opts.FaultHook = func(event.Event) {}
	s := openSuperv(t, dir, opts)
	if _, err := s.Start(); err != nil {
		t.Fatal(err)
	}
	var got []plan.Match
	for _, e := range events {
		ms, err := s.ProcessE(e)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ms...)
	}
	// Simulate dying inside Flush: log the marker, then kill before the
	// engine flushes.
	if err := s.store.AppendFlush(); err != nil {
		t.Fatal(err)
	}
	s.Kill()

	s2 := openSuperv(t, dir, supervOpts(t, p, 40))
	recovered, err := s2.Start()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, recovered...)
	if _, err := s2.ProcessE(events[0]); err == nil || !strings.Contains(err.Error(), "flushed") {
		t.Fatalf("recovered supervisor accepted events after durable flush: %v", err)
	}
	if ok, diff := plan.SameResults(want, got); !ok {
		t.Fatalf("flush-crash output differs:\n%s", diff)
	}
}

// TestPanicRestartIsTransparent: a one-shot panic mid-stream restarts the
// engine from the last checkpoint and the total output is unchanged.
func TestPanicRestartIsTransparent(t *testing.T) {
	p := compile(t, supervQuery)
	events := supervStream(t, 200, 41)
	want := baseline(t, p, 40, events)

	for _, panicAt := range []int{0, 5, 99, 199} {
		opts := supervOpts(t, p, 40)
		opts.CheckpointEvery = 16
		fired := false
		opts.FaultHook = func(e event.Event) {
			if !fired && e.Seq == events[panicAt].Seq {
				fired = true
				panic("injected fault")
			}
		}
		s := openSuperv(t, t.TempDir(), opts)
		if _, err := s.Start(); err != nil {
			t.Fatal(err)
		}
		got := driveAll(t, s, events)
		s.Close()
		if ok, diff := plan.SameResults(want, got); !ok {
			t.Fatalf("panic at %d: output differs:\n%s", panicAt, diff)
		}
		if snap := s.Metrics(); snap.Restarts != 1 {
			t.Fatalf("panic at %d: %d restarts, want 1", panicAt, snap.Restarts)
		}
	}
}

// TestPoisonEventExhaustsRestarts: a deterministic panic replays into the
// same panic until MaxRestarts, then the supervisor fails sticky.
func TestPoisonEventExhaustsRestarts(t *testing.T) {
	p := compile(t, supervQuery)
	events := supervStream(t, 50, 51)

	opts := supervOpts(t, p, 40)
	opts.MaxRestarts = 2
	poison := events[20].Seq
	opts.FaultHook = func(e event.Event) {
		if e.Seq == poison {
			panic("poison")
		}
	}
	var slept []time.Duration
	opts.Backoff = 10 * time.Millisecond
	opts.BackoffMax = 15 * time.Millisecond
	opts.Sleep = func(d time.Duration) { slept = append(slept, d) }

	s := openSuperv(t, t.TempDir(), opts)
	if _, err := s.Start(); err != nil {
		t.Fatal(err)
	}
	var gotErr error
	for _, e := range events {
		if _, err := s.ProcessE(e); err != nil {
			gotErr = err
			break
		}
	}
	if gotErr == nil || !strings.Contains(gotErr.Error(), "giving up") {
		t.Fatalf("poison event did not exhaust restarts: %v", gotErr)
	}
	if s.Err() == nil {
		t.Fatal("failure not sticky")
	}
	if _, err := s.ProcessE(events[0]); err == nil {
		t.Fatal("sticky-failed supervisor accepted an event")
	}
	// Backoff doubled then capped: 10ms, 15ms.
	if len(slept) != 2 || slept[0] != 10*time.Millisecond || slept[1] != 15*time.Millisecond {
		t.Fatalf("backoff schedule = %v", slept)
	}
	if snap := s.Metrics(); snap.Restarts != 2 {
		t.Fatalf("restarts = %d, want 2", snap.Restarts)
	}
}

// TestAdmissionPolicies: duplicates and bound violators are handled per
// policy, with the right counters; the engine never sees a duplicate.
func TestAdmissionPolicies(t *testing.T) {
	p := compile(t, supervQuery)
	mk := func(typ string, ts event.Time, seq uint64) event.Event {
		return event.Event{Type: typ, TS: ts, Seq: seq,
			Attrs: map[string]event.Value{"id": event.Int(1)}}
	}
	stream := []event.Event{
		mk("A", 100, 1),
		mk("A", 100, 1), // duplicate
		mk("C", 200, 2), // advances the clock
		mk("B", 120, 3), // violates the bound (120 < 200-50)
		mk("B", 180, 4), // in-bound, but outside A@100's window (180-100 > WITHIN 50): no match
		mk("A", 190, 5), // fresh A
		mk("B", 210, 6), // matches A@190
	}

	t.Run("drop", func(t *testing.T) {
		opts := supervOpts(t, p, 50)
		opts.Policy = AdmitDrop
		s := openSuperv(t, t.TempDir(), opts)
		if _, err := s.Start(); err != nil {
			t.Fatal(err)
		}
		got := driveAll(t, s, stream)
		snap := s.Metrics()
		if snap.DuplicatesSuppressed != 1 || snap.EventsDropped != 1 {
			t.Fatalf("dup=%d dropped=%d, want 1 and 1", snap.DuplicatesSuppressed, snap.EventsDropped)
		}
		if len(got) != 1 {
			t.Fatalf("%d matches, want 1", len(got))
		}
	})

	t.Run("deadletter", func(t *testing.T) {
		dl := make(chan event.Event, 8)
		opts := supervOpts(t, p, 50)
		opts.Policy = AdmitDeadLetter
		opts.DeadLetter = dl
		s := openSuperv(t, t.TempDir(), opts)
		if _, err := s.Start(); err != nil {
			t.Fatal(err)
		}
		driveAll(t, s, stream)
		snap := s.Metrics()
		if snap.EventsDeadLettered != 2 {
			t.Fatalf("deadlettered=%d, want 2 (one dup, one violator)", snap.EventsDeadLettered)
		}
		close(dl)
		var seqs []uint64
		for e := range dl {
			seqs = append(seqs, e.Seq)
		}
		if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 3 {
			t.Fatalf("dead-letter channel got %v, want [1 3]", seqs)
		}
	})

	t.Run("besteffort", func(t *testing.T) {
		opts := supervOpts(t, p, 50)
		opts.Policy = AdmitBestEffort
		s := openSuperv(t, t.TempDir(), opts)
		if _, err := s.Start(); err != nil {
			t.Fatal(err)
		}
		driveAll(t, s, stream)
		snap := s.Metrics()
		// The violator reached the engine (the engine's own late counter
		// picks it up); only the duplicate was suppressed.
		if snap.DuplicatesSuppressed != 1 || snap.EventsDropped != 0 {
			t.Fatalf("dup=%d dropped=%d, want 1 and 0", snap.DuplicatesSuppressed, snap.EventsDropped)
		}
		// 6 events reached the engine (all but the duplicate): 5 relevant
		// plus the C, which the engine counts as irrelevant. (The engine
		// itself doesn't flag the violator late: the irrelevant C never
		// advanced its internal clock, only the admission clock.)
		if snap.EventsIn != 5 || snap.Irrelevant != 1 {
			t.Fatalf("in=%d irrelevant=%d, want 5 and 1",
				snap.EventsIn, snap.Irrelevant)
		}
	})
}

// TestAdmissionSurvivesCrash: the duplicate horizon and clock are part of
// checkpoint metadata, so a duplicate of a pre-crash event is still
// rejected after recovery.
func TestAdmissionSurvivesCrash(t *testing.T) {
	p := compile(t, supervQuery)
	events := supervStream(t, 60, 61)

	dir := t.TempDir()
	opts := supervOpts(t, p, 40)
	opts.CheckpointEvery = 8
	s := openSuperv(t, dir, opts)
	if _, err := s.Start(); err != nil {
		t.Fatal(err)
	}
	for _, e := range events[:40] {
		if _, err := s.ProcessE(e); err != nil {
			t.Fatal(err)
		}
	}
	s.Kill()

	s2 := openSuperv(t, dir, opts)
	if _, err := s2.Start(); err != nil {
		t.Fatal(err)
	}
	// Re-offer a recent pre-crash event: must be suppressed as duplicate.
	recent := events[39]
	before := s2.Metrics().DuplicatesSuppressed
	if _, err := s2.ProcessE(recent); err != nil {
		t.Fatal(err)
	}
	if after := s2.Metrics().DuplicatesSuppressed; after != before+1 {
		t.Fatalf("pre-crash duplicate not suppressed after recovery (%d -> %d)", before, after)
	}
}

// TestWALOnlySupervision: a strategy with no snapshot support (Restore
// nil) still crash-recovers by full WAL replay.
func TestWALOnlySupervision(t *testing.T) {
	p := compile(t, supervQuery)
	events := supervStream(t, 150, 71)
	want := baseline(t, p, 40, events)

	dir := t.TempDir()
	opts := supervOpts(t, p, 40)
	opts.Restore = nil
	opts.CheckpointEvery = 8 // ignored without Restore
	s := openSuperv(t, dir, opts)
	if _, err := s.Start(); err != nil {
		t.Fatal(err)
	}
	var got []plan.Match
	for _, e := range events[:90] {
		ms, err := s.ProcessE(e)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ms...)
	}
	if s.Metrics().Checkpoints != 0 {
		t.Fatal("WAL-only supervisor wrote checkpoints")
	}
	s.Kill()

	s2 := openSuperv(t, dir, opts)
	recovered, err := s2.Start()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, recovered...)
	for _, e := range events[90:] {
		ms, err := s2.ProcessE(e)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ms...)
	}
	ms, err := s2.FlushE()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, ms...)
	if ok, diff := plan.SameResults(want, got); !ok {
		t.Fatalf("WAL-only recovery differs:\n%s", diff)
	}
}

// TestCorruptCheckpointFallbackEndToEnd: flipping a byte in the newest
// checkpoint after a crash falls back to the previous one and still
// reproduces the exact match stream.
func TestCorruptCheckpointFallbackEndToEnd(t *testing.T) {
	p := compile(t, supervQuery)
	events := supervStream(t, 160, 81)

	wantS := openSuperv(t, t.TempDir(), supervOpts(t, p, 40))
	if _, err := wantS.Start(); err != nil {
		t.Fatal(err)
	}
	want := driveAll(t, wantS, events)
	wantS.Close()

	dir := t.TempDir()
	opts := supervOpts(t, p, 40)
	opts.CheckpointEvery = 16
	s := openSuperv(t, dir, opts)
	if _, err := s.Start(); err != nil {
		t.Fatal(err)
	}
	var got []plan.Match
	for _, e := range events[:100] {
		ms, err := s.ProcessE(e)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ms...)
	}
	s.Kill()
	if err := recovery.CorruptNewestCheckpoint(dir); err != nil {
		t.Fatal(err)
	}

	s2 := openSuperv(t, dir, opts)
	recovered, err := s2.Start()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, recovered...)
	for _, e := range events[100:] {
		ms, err := s2.ProcessE(e)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ms...)
	}
	ms, err := s2.FlushE()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, ms...)

	if len(got) != len(want) {
		t.Fatalf("%d matches, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i].Key() != got[i].Key() {
			t.Fatalf("match %d is %s, want %s", i, got[i].Key(), want[i].Key())
		}
	}
}
