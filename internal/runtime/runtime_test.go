package runtime

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"oostream/internal/core"
	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/gen"
	"oostream/internal/inorder"
	"oostream/internal/plan"
)

func compile(t *testing.T, src string) *plan.Plan {
	t.Helper()
	p, err := plan.ParseAndCompile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPipelineEndToEnd(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 100")
	sorted := gen.Uniform(200, []string{"A", "B"}, 3, 5, 1)
	shuffled := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.3, MaxDelay: 50, Seed: 2})

	want := engine.Drain(core.MustNew(p, core.Options{K: 50}), shuffled)

	in := make(chan event.Event)
	out := make(chan plan.Match, 1)
	pl := NewPipeline(core.MustNew(p, core.Options{K: 50}))

	ctx := context.Background()
	feedErr := make(chan error, 1)
	go func() { feedErr <- FeedSlice(ctx, shuffled, in) }()

	var got []plan.Match
	runErr := make(chan error, 1)
	go func() { runErr <- pl.Run(ctx, in, out) }()
	for m := range out {
		got = append(got, m)
	}
	if err := <-runErr; err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := <-feedErr; err != nil {
		t.Fatalf("FeedSlice: %v", err)
	}
	if ok, diff := plan.SameResults(want, got); !ok {
		t.Fatalf("pipeline output differs:\n%s", diff)
	}
}

func TestPipelineCancellation(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 100")
	in := make(chan event.Event)
	out := make(chan plan.Match)
	pl := NewPipeline(core.MustNew(p, core.Options{K: 10}))
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- pl.Run(ctx, in, out) }()
	in <- event.Event{Type: "A", TS: 1, Seq: 1}
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pipeline did not stop on cancel")
	}
	// out must be closed.
	if _, ok := <-out; ok {
		t.Fatal("out not closed (got a value)")
	}
}

func TestFanoutAllEnginesSeeAllEvents(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 100")
	sorted := gen.Uniform(150, []string{"A", "B"}, 3, 5, 4)
	shuffled := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.3, MaxDelay: 40, Seed: 5})

	native := core.MustNew(p, core.Options{K: 40})
	naive := inorder.New(p)
	f := NewFanout(native, naive)

	in := make(chan event.Event)
	out := make(chan Tagged, 1)
	ctx := context.Background()
	go func() { _ = FeedSlice(ctx, shuffled, in) }()

	byEngine := map[string][]plan.Match{}
	errCh := make(chan error, 1)
	go func() { errCh <- f.Run(ctx, in, out) }()
	for tg := range out {
		byEngine[tg.Engine] = append(byEngine[tg.Engine], tg.Match)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("Run: %v", err)
	}

	wantNative := engine.Drain(core.MustNew(p, core.Options{K: 40}), shuffled)
	if ok, diff := plan.SameResults(wantNative, byEngine["native"]); !ok {
		t.Fatalf("native through fanout differs:\n%s", diff)
	}
	wantNaive := engine.Drain(inorder.New(p), shuffled)
	if ok, diff := plan.SameResults(wantNaive, byEngine["inorder"]); !ok {
		t.Fatalf("inorder through fanout differs:\n%s", diff)
	}
	if native.Metrics().EventsIn == 0 || naive.Metrics().EventsIn == 0 {
		t.Fatal("engines did not see events")
	}
}

func TestFanoutCancellation(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 100")
	f := NewFanout(core.MustNew(p, core.Options{K: 10}), inorder.New(p))
	in := make(chan event.Event)
	out := make(chan Tagged)
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- f.Run(ctx, in, out) }()
	in <- event.Event{Type: "A", TS: 1, Seq: 1}
	cancel()
	// Consumer keeps draining so the fanout can exit.
	go func() {
		for range out {
		}
	}()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("fanout did not stop on cancel")
	}
}

func TestNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		TestPipelineEndToEndHelper(t)
	}
	// Give straggler goroutines a moment to exit.
	time.Sleep(50 * time.Millisecond)
	after := runtime.NumGoroutine()
	if after > before+3 {
		t.Errorf("goroutines grew from %d to %d", before, after)
	}
}

// TestPipelineEndToEndHelper is a non-test helper wrapper used by the leak
// check (name keeps the linter happy about test helpers calling t.Fatal).
func TestPipelineEndToEndHelper(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 50")
	events := gen.Uniform(50, []string{"A", "B"}, 2, 5, 7)
	in := make(chan event.Event)
	out := make(chan plan.Match, 1)
	ctx := context.Background()
	go func() { _ = FeedSlice(ctx, events, in) }()
	pl := NewPipeline(core.MustNew(p, core.Options{K: 10}))
	errCh := make(chan error, 1)
	go func() { errCh <- pl.Run(ctx, in, out) }()
	for range out {
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}
