package runtime

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"oostream/internal/core"
	"oostream/internal/event"
	"oostream/internal/plan"
)

// TestHeartbeatSealsIdleNegation: a pending negation match must surface
// through idle-time punctuation, with no further events on the stream.
func TestHeartbeatSealsIdleNegation(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, !(N n), B b) WITHIN 100")
	en := core.MustNew(p, core.Options{K: 50})

	var logical atomic.Int64
	logical.Store(40)
	hb := NewHeartbeatPipeline(en, 5*time.Millisecond, func() event.Time {
		return event.Time(logical.Load())
	})

	in := make(chan event.Event)
	out := make(chan plan.Match, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errCh := make(chan error, 1)
	go func() { errCh <- hb.Run(ctx, in, out) }()

	in <- event.Event{Type: "A", TS: 10, Seq: 1}
	in <- event.Event{Type: "B", TS: 30, Seq: 2}
	// Nothing yet: the gap (10,30) is unsealed at safe clock -10.
	select {
	case m := <-out:
		t.Fatalf("premature emission: %v", m)
	case <-time.After(30 * time.Millisecond):
	}
	// Advance stream time past seal (30+K=80): the idle heartbeat should
	// deliver the match without any event.
	logical.Store(90)
	select {
	case m := <-out:
		if m.Key() != "1|2" {
			t.Fatalf("wrong match: %v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("heartbeat never sealed the match")
	}
	close(in)
	for range out {
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

func TestHeartbeatPipelineFlushOnClose(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b, !(N n)) WITHIN 100")
	en := core.MustNew(p, core.Options{K: 50})
	hb := NewHeartbeatPipeline(en, time.Hour, func() event.Time { return 0 })
	in := make(chan event.Event)
	out := make(chan plan.Match, 1)
	errCh := make(chan error, 1)
	go func() { errCh <- hb.Run(context.Background(), in, out) }()
	in <- event.Event{Type: "A", TS: 10, Seq: 1}
	in <- event.Event{Type: "B", TS: 20, Seq: 2}
	close(in)
	var got []plan.Match
	for m := range out {
		got = append(got, m)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("flush through heartbeat pipeline: %v", got)
	}
}

// TestHeartbeatCancelWhileOutBlocked: the consumer stops reading out while
// the pipeline has matches to deliver; cancellation must still return Run
// promptly instead of deadlocking on the send.
func TestHeartbeatCancelWhileOutBlocked(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 100")
	en := core.MustNew(p, core.Options{K: 0})
	hb := NewHeartbeatPipeline(en, time.Hour, func() event.Time { return 0 })
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan event.Event)
	out := make(chan plan.Match) // unbuffered and never read
	errCh := make(chan error, 1)
	go func() { errCh <- hb.Run(ctx, in, out) }()
	in <- event.Event{Type: "A", TS: 10, Seq: 1}
	in <- event.Event{Type: "B", TS: 20, Seq: 2} // K=0: seals the match; Run now blocks sending it
	time.Sleep(10 * time.Millisecond)            // let Run reach the blocked send
	cancel()
	select {
	case err := <-errCh:
		if err != context.Canceled {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run wedged on the blocked match send")
	}
}

// TestHeartbeatCancelMidHeartbeat: cancellation while an idle heartbeat is
// emitting into a blocked out channel returns promptly and leaks no
// goroutine.
func TestHeartbeatCancelMidHeartbeat(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, !(N n), B b) WITHIN 100")
	en := core.MustNew(p, core.Options{K: 50})
	before := runtime.NumGoroutine()
	hb := NewHeartbeatPipeline(en, time.Millisecond, func() event.Time { return 200 })
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan event.Event)
	out := make(chan plan.Match) // never read: the heartbeat's emission blocks
	errCh := make(chan error, 1)
	go func() { errCh <- hb.Run(ctx, in, out) }()
	// Feed a pending negation match, then go idle so the heartbeat (clock
	// 200 seals everything) finds it and blocks emitting it.
	in <- event.Event{Type: "A", TS: 10, Seq: 1}
	in <- event.Event{Type: "B", TS: 30, Seq: 2}
	time.Sleep(20 * time.Millisecond) // heartbeat fires and blocks on out
	cancel()
	select {
	case err := <-errCh:
		if err != context.Canceled {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run wedged mid-heartbeat")
	}
	// The runner goroutine exited and the timer was stopped: goroutine
	// count settles back to the baseline.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutines leaked: %d -> %d", before, now)
	}
}

// TestHeartbeatValidation: misconfiguration fails fast with a clear error
// instead of busy-looping or panicking mid-stream.
func TestHeartbeatValidation(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 100")
	run := func(hb *HeartbeatPipeline) error {
		in := make(chan event.Event)
		close(in)
		out := make(chan plan.Match, 1)
		return hb.Run(context.Background(), in, out)
	}
	if err := run(&HeartbeatPipeline{engine: core.MustNew(p, core.Options{K: 0})}); err == nil {
		t.Error("zero Every accepted")
	}
	hb := &HeartbeatPipeline{engine: core.MustNew(p, core.Options{K: 0}), Every: time.Second}
	if err := run(hb); err == nil {
		t.Error("nil Clock accepted for an Advancer engine")
	}
}

func TestHeartbeatPipelineCancel(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 100")
	en := core.MustNew(p, core.Options{K: 50})
	hb := NewHeartbeatPipeline(en, time.Millisecond, func() event.Time { return 0 })
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan event.Event)
	out := make(chan plan.Match)
	errCh := make(chan error, 1)
	go func() { errCh <- hb.Run(ctx, in, out) }()
	cancel()
	select {
	case err := <-errCh:
		if err != context.Canceled {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no shutdown")
	}
}
