package recovery

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"oostream/internal/event"
)

func testStore(t *testing.T, opts Options) *Store {
	t.Helper()
	opts.DisableFsync = true
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mkEvent(i int) event.Event {
	return event.Event{
		Type:  "A",
		TS:    event.Time(i * 10),
		Seq:   uint64(i + 1),
		Attrs: map[string]event.Value{"id": event.Int(int64(i % 3))},
	}
}

func appendN(t *testing.T, s *Store, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		if err := s.Append(mkEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRecoverEmptyDir: a fresh directory recovers to nothing.
func TestRecoverEmptyDir(t *testing.T) {
	s := testStore(t, Options{})
	rec, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot != nil || len(rec.Replay) != 0 || rec.Matches != 0 || rec.Flushed {
		t.Fatalf("fresh dir recovered state: %+v", rec)
	}
}

// TestWALRoundTripAfterKill: events, commit markers, and the flush marker
// appended before an in-process kill all recover, in order.
func TestWALRoundTripAfterKill(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{DisableFsync: true, SegmentEvents: 4})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 0, 10) // spans three segments (4+4+2)
	if err := s.CommitMatches(3); err != nil {
		t.Fatal(err)
	}
	if err := s.CommitMatches(7); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFlush(); err != nil {
		t.Fatal(err)
	}
	s.Kill()
	if err := s.Append(mkEvent(99)); err == nil {
		t.Fatal("append after kill succeeded")
	}

	s2, err := Open(dir, Options{DisableFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Replay) != 10 {
		t.Fatalf("replay has %d events, want 10", len(rec.Replay))
	}
	for i, e := range rec.Replay {
		if e.Seq != uint64(i+1) {
			t.Fatalf("replay[%d].Seq = %d, want %d", i, e.Seq, i+1)
		}
	}
	if rec.Matches != 7 {
		t.Fatalf("Matches = %d, want 7 (highest commit marker)", rec.Matches)
	}
	if !rec.Flushed {
		t.Fatal("flush marker lost")
	}
	if rec.Ingested != 10 || s2.Ingested() != 10 {
		t.Fatalf("Ingested = %d/%d, want 10", rec.Ingested, s2.Ingested())
	}
}

// TestCheckpointTrimsReplay: events before a checkpoint come back in the
// snapshot, events after it in the replay, and counters carry across.
func TestCheckpointTrimsReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{DisableFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 0, 5)
	if err := s.CommitMatches(2); err != nil {
		t.Fatal(err)
	}
	type meta struct{ Clock int }
	bytesWritten, err := s.Checkpoint(func(w io.Writer) error {
		_, err := w.Write([]byte("ENGINE-STATE"))
		return err
	}, meta{Clock: 40}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if bytesWritten <= 15 {
		t.Fatalf("checkpoint reported %d bytes", bytesWritten)
	}
	appendN(t, s, 5, 3)
	if err := s.CommitMatches(4); err != nil {
		t.Fatal(err)
	}
	s.Kill()

	s2, err := Open(dir, Options{DisableFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Snapshot) != "ENGINE-STATE" {
		t.Fatalf("snapshot = %q", rec.Snapshot)
	}
	if !strings.Contains(string(rec.Meta), `"Clock":40`) {
		t.Fatalf("meta = %s", rec.Meta)
	}
	if len(rec.Replay) != 3 || rec.Replay[0].Seq != 6 {
		t.Fatalf("replay = %d events starting at seq %d, want 3 from 6",
			len(rec.Replay), rec.Replay[0].Seq)
	}
	if rec.CkptMatches != 2 || rec.Matches != 4 {
		t.Fatalf("matches ckpt=%d durable=%d, want 2 and 4", rec.CkptMatches, rec.Matches)
	}
	if rec.Ingested != 8 {
		t.Fatalf("Ingested = %d, want 8", rec.Ingested)
	}
}

// TestTornTailTolerated: a partial final record (simulating a crash
// mid-write) is dropped silently; everything before it recovers.
func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{DisableFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 0, 4)
	s.Kill()

	segs, err := filepath.Glob(filepath.Join(dir, walPrefix+"*"+walSuffix))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	blob, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 4, len(blob) - 20, len(blob) - 1} {
		if err := os.WriteFile(segs[0], blob[:len(blob)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir, Options{DisableFsync: true})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := s2.Recover()
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(rec.Replay) >= 4 {
			t.Fatalf("cut %d: torn record replayed (%d events)", cut, len(rec.Replay))
		}
		if rec.TornSegments != 1 && cut != len(blob)-20 {
			// cutting exactly at a record boundary is a clean (not torn) tail
			if got := len(rec.Replay); got != 3 {
				t.Fatalf("cut %d: %d events, torn=%d", cut, got, rec.TornSegments)
			}
		}
	}
}

// TestMidLogCorruptionErrors: damage to a durable record with records
// behind it must fail recovery loudly, not silently drop events.
func TestMidLogCorruptionErrors(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{DisableFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 0, 6)
	s.Kill()

	segs, _ := filepath.Glob(filepath.Join(dir, walPrefix+"*"+walSuffix))
	blob, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	blob[12] ^= 0xFF // payload byte of the first record
	if err := os.WriteFile(segs[0], blob, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{DisableFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Recover(); err == nil {
		t.Fatal("mid-log corruption recovered silently")
	}
}

// TestCorruptCheckpointFallsBack: a damaged newest checkpoint is skipped
// and recovery proceeds from the previous valid one, with the longer WAL
// replay that entails.
func TestCorruptCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{DisableFsync: true, Retain: 3})
	if err != nil {
		t.Fatal(err)
	}
	save := func(tag string) func(io.Writer) error {
		return func(w io.Writer) error { _, err := w.Write([]byte(tag)); return err }
	}
	appendN(t, s, 0, 3)
	if _, err := s.Checkpoint(save("CKPT-1"), nil, 1); err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 3, 3)
	if _, err := s.Checkpoint(save("CKPT-2"), nil, 2); err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 6, 2)
	s.Kill()

	ckpts, err := filepath.Glob(filepath.Join(dir, ckptPrefix+"*"+ckptSuffix))
	if err != nil || len(ckpts) != 2 {
		t.Fatalf("checkpoints: %v %v", ckpts, err)
	}
	for name, damage := range map[string]func([]byte) []byte{
		"bitflip":  func(b []byte) []byte { b = append([]byte(nil), b...); b[len(b)/2] ^= 0x01; return b },
		"truncate": func(b []byte) []byte { return b[:len(b)/2] },
		"empty":    func([]byte) []byte { return nil },
	} {
		t.Run(name, func(t *testing.T) {
			newest := ckpts[len(ckpts)-1]
			orig, err := os.ReadFile(newest)
			if err != nil {
				t.Fatal(err)
			}
			defer os.WriteFile(newest, orig, 0o644)
			if err := os.WriteFile(newest, damage(orig), 0o644); err != nil {
				t.Fatal(err)
			}
			s2, err := Open(dir, Options{DisableFsync: true})
			if err != nil {
				t.Fatal(err)
			}
			rec, err := s2.Recover()
			if err != nil {
				t.Fatal(err)
			}
			if string(rec.Snapshot) != "CKPT-1" {
				t.Fatalf("fell back to %q, want CKPT-1", rec.Snapshot)
			}
			if rec.CorruptCheckpoints != 1 {
				t.Fatalf("CorruptCheckpoints = %d", rec.CorruptCheckpoints)
			}
			// Replay covers everything since checkpoint 1: events 4..8.
			if len(rec.Replay) != 5 || rec.Replay[0].Seq != 4 {
				t.Fatalf("replay = %d events from seq %d, want 5 from 4",
					len(rec.Replay), rec.Replay[0].Seq)
			}
			if rec.CkptMatches != 1 {
				t.Fatalf("CkptMatches = %d, want 1", rec.CkptMatches)
			}
		})
	}

	// Both checkpoints damaged: recovery degrades to whatever WAL suffix
	// retention kept (segments behind the oldest retained checkpoint were
	// legitimately pruned), reporting the damage instead of failing.
	t.Run("all-corrupt", func(t *testing.T) {
		var origs [][]byte
		for _, p := range ckpts {
			b, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			origs = append(origs, b)
			if err := os.WriteFile(p, []byte("junk"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		defer func() {
			for i, p := range ckpts {
				os.WriteFile(p, origs[i], 0o644)
			}
		}()
		s2, err := Open(dir, Options{DisableFsync: true})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := s2.Recover()
		if err != nil {
			t.Fatal(err)
		}
		if rec.Snapshot != nil || rec.CorruptCheckpoints != 2 {
			t.Fatalf("snapshot=%q corrupt=%d", rec.Snapshot, rec.CorruptCheckpoints)
		}
		// Checkpoint 1 pruned the segment holding events 1..3.
		if len(rec.Replay) != 5 || rec.Replay[0].Seq != 4 {
			t.Fatalf("replay = %d events from seq %d, want 5 from 4",
				len(rec.Replay), rec.Replay[0].Seq)
		}
	})
}

// TestRetentionPrunes: only Retain checkpoints survive, and WAL segments
// older than the oldest retained checkpoint's resume point are removed.
func TestRetentionPrunes(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{DisableFsync: true, Retain: 2})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		appendN(t, s, round*4, 4)
		if _, err := s.Checkpoint(nil, nil, uint64(round)); err != nil {
			t.Fatal(err)
		}
	}
	ckpts, segs, err := s.scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(ckpts) != 2 {
		t.Fatalf("%d checkpoints retained, want 2", len(ckpts))
	}
	// Segments before the oldest retained checkpoint's WalSeg are gone.
	oldest, err := readCkptFile(s.ckptPath(ckpts[0]))
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range segs {
		if seg < oldest.WalSeg {
			t.Fatalf("segment %d predates oldest retained checkpoint (walSeg %d)", seg, oldest.WalSeg)
		}
	}
	// The fallback chain still recovers: corrupt the newest checkpoint.
	s.Kill()
	os.WriteFile(s.ckptPath(ckpts[1]), []byte("junk"), 0o644)
	s2, err := Open(dir, Options{DisableFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.CkptMatches != 3 {
		t.Fatalf("fallback recovered matches=%d, want checkpoint 4's count 3", rec.CkptMatches)
	}
	// Round 4's events (seq 17..20) follow the fallback checkpoint.
	if len(rec.Replay) != 4 || rec.Replay[0].Seq != 17 {
		t.Fatalf("fallback replay = %d events from seq %d, want 4 from 17",
			len(rec.Replay), rec.Replay[0].Seq)
	}
}

// TestResumeAppendsFreshSegment: reopening never appends to an existing
// segment (its tail may be torn); new records land in a new file and both
// generations replay in order.
func TestResumeAppendsFreshSegment(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{DisableFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 0, 3)
	s.Kill()

	s2, err := Open(dir, Options{DisableFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	appendN(t, s2, 3, 3)
	s2.Kill()

	segs, _ := filepath.Glob(filepath.Join(dir, walPrefix+"*"+walSuffix))
	if len(segs) != 2 {
		t.Fatalf("%d segments, want 2 (one per generation)", len(segs))
	}
	s3, err := Open(dir, Options{DisableFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s3.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Replay) != 6 {
		t.Fatalf("replay = %d events, want 6", len(rec.Replay))
	}
	for i, e := range rec.Replay {
		if e.Seq != uint64(i+1) {
			t.Fatalf("replay out of order at %d: seq %d", i, e.Seq)
		}
	}
}

// TestEventAttrsSurviveWAL: attribute values round-trip through the WAL's
// JSON encoding.
func TestEventAttrsSurviveWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{DisableFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	in := event.Event{Type: "T", TS: 5, Seq: 9, Attrs: map[string]event.Value{
		"id":   event.Int(42),
		"name": event.Str("x y"),
		"temp": event.Float(3.5),
	}}
	if err := s.Append(in); err != nil {
		t.Fatal(err)
	}
	s.Kill()
	s2, err := Open(dir, Options{DisableFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Replay) != 1 {
		t.Fatal("event lost")
	}
	got := rec.Replay[0]
	if got.Type != in.Type || got.TS != in.TS || got.Seq != in.Seq || len(got.Attrs) != 3 {
		t.Fatalf("got %+v", got)
	}
	for k, v := range in.Attrs {
		if !got.Attrs[k].Equal(v) {
			t.Fatalf("attr %s: got %v want %v", k, got.Attrs[k], v)
		}
	}
}

// TestCleanCloseThenReopen: Close seals the segment; reopen recovers all.
func TestCleanCloseThenReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{DisableFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 0, 2)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{DisableFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Replay) != 2 || rec.TornSegments != 0 {
		t.Fatalf("replay=%d torn=%d", len(rec.Replay), rec.TornSegments)
	}
}

func TestParseSegmentRejectsImplausibleLength(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 12; i++ {
		buf.WriteByte(0xFF)
	}
	buf.WriteString("trailing data so the bad frame is not the final record")
	if _, err := parseSegment(buf.Bytes()); err == nil {
		t.Fatal("implausible record length accepted")
	}
}

func TestOpenRejectsUnwritableDir(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root; permission bits are not enforced")
	}
	parent := t.TempDir()
	if err := os.Chmod(parent, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(parent, 0o755)
	if _, err := Open(filepath.Join(parent, "sub"), Options{}); err == nil {
		t.Fatal("unwritable dir accepted")
	}
}

func BenchmarkAppend(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir, Options{DisableFsync: true, SegmentEvents: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	e := mkEvent(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append(e); err != nil {
			b.Fatal(err)
		}
	}
	fmt.Fprint(io.Discard, s.Ingested())
}

// TestSegmentNumberingSurvivesCrashAfterCheckpoint: a checkpoint rotates
// to a new segment whose number the checkpoint references as its replay
// horizon. A crash before any post-rotation append must not let the next
// generation reuse a number below that horizon — events appended after
// reopen would then replay as pre-checkpoint history and be skipped.
// (Regression: segment files were materialized lazily on first append, so
// the rotated-to number never reached the directory and reopen's scan
// restarted numbering below the checkpoint's WalSeg.)
func TestSegmentNumberingSurvivesCrashAfterCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{DisableFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 0, 5)
	if _, err := s.Checkpoint(func(w io.Writer) error {
		_, err := w.Write([]byte("STATE"))
		return err
	}, nil, 0); err != nil {
		t.Fatal(err)
	}
	// Crash at the checkpoint boundary: nothing appended to the fresh
	// segment yet.
	s.Kill()

	s2, err := Open(dir, Options{DisableFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec, err := s2.Recover(); err != nil {
		t.Fatal(err)
	} else if len(rec.Replay) != 0 {
		t.Fatalf("replay has %d events, want 0", len(rec.Replay))
	}
	appendN(t, s2, 5, 3)
	s2.Kill()

	s3, err := Open(dir, Options{DisableFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s3.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Snapshot) != "STATE" {
		t.Fatalf("snapshot = %q", rec.Snapshot)
	}
	if len(rec.Replay) != 3 {
		t.Fatalf("replay has %d events, want the 3 appended after the crash", len(rec.Replay))
	}
	if rec.Replay[0].Seq != 6 {
		t.Fatalf("replay starts at seq %d, want 6", rec.Replay[0].Seq)
	}
}
