package recovery

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"

	"oostream/internal/event"
)

// The write-ahead log is a sequence of segment files, each a concatenation
// of CRC-framed records:
//
//	length  uint32le payload byte count
//	crc     uint32le CRC32 (IEEE) of the payload
//	payload []byte   JSON walRecord
//
// A record is written with a single Write call on the segment file, so an
// in-process "kill" (dropping the Store without closing) loses nothing:
// every framed record already reached the OS. A real process crash can
// tear the final record mid-write; parseSegment detects the torn tail by
// length or CRC and stops cleanly there — a torn record never became
// durable, so under the durability contract its event was never processed.
type walRecord struct {
	// E is an ingested event (appended before the engine processes it).
	E *event.Event `json:"e,omitempty"`
	// N is a match-commit marker: the cumulative count of match emissions
	// that are now durably delivered.
	N *uint64 `json:"n,omitempty"`
	// F marks end-of-stream: the engine was flushed.
	F bool `json:"f,omitempty"`
}

// maxWALRecord bounds a record's payload; anything larger is corruption
// (a single event is a few hundred bytes).
const maxWALRecord = 16 << 20

// appendRecord frames and writes one record with a single Write call.
func appendRecord(f *os.File, rec walRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)
	_, err = f.Write(buf)
	return err
}

// segmentResult is the parsed content of one WAL segment.
type segmentResult struct {
	events  []event.Event
	matches uint64 // highest commit marker in the segment (0 if none)
	flushed bool
	torn    bool // the segment ended in a torn (partially written) record
}

// parseSegment parses a segment's bytes. A torn tail — truncated frame,
// short payload, or a CRC mismatch on the final record — is reported via
// torn, not as an error; damage with more data behind it is corruption of
// durable records and errors.
func parseSegment(data []byte) (segmentResult, error) {
	var res segmentResult
	off := 0
	for off < len(data) {
		if len(data)-off < 8 {
			res.torn = true
			return res, nil
		}
		size := int(binary.LittleEndian.Uint32(data[off : off+4]))
		want := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if size > maxWALRecord {
			return res, fmt.Errorf("wal record at offset %d: implausible length %d", off, size)
		}
		if len(data)-off-8 < size {
			res.torn = true
			return res, nil
		}
		payload := data[off+8 : off+8+size]
		last := off+8+size == len(data)
		if got := crc32.ChecksumIEEE(payload); got != want {
			if last {
				res.torn = true
				return res, nil
			}
			return res, fmt.Errorf("wal record at offset %d: CRC32 %08x, want %08x", off, got, want)
		}
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			if last {
				res.torn = true
				return res, nil
			}
			return res, fmt.Errorf("wal record at offset %d: %w", off, err)
		}
		if rec.E != nil {
			res.events = append(res.events, *rec.E)
		}
		if rec.N != nil && *rec.N > res.matches {
			res.matches = *rec.N
		}
		if rec.F {
			res.flushed = true
		}
		off += 8 + size
	}
	return res, nil
}
