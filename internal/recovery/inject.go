package recovery

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// CountValidCheckpoints reports how many of dir's checkpoint files
// currently parse and pass their integrity checks. Fault-injection
// harnesses use it to decide whether corrupting the newest still leaves
// a valid fallback (corrupting the last valid checkpoint is legitimate
// data loss: its WAL prefix was pruned when it was written).
func CountValidCheckpoints(dir string) int {
	names, err := filepath.Glob(filepath.Join(dir, ckptPrefix+"*"+ckptSuffix))
	if err != nil {
		return 0
	}
	valid := 0
	for _, name := range names {
		if _, err := readCkptFile(name); err == nil {
			valid++
		}
	}
	return valid
}

// CorruptNewestCheckpoint flips one payload byte in dir's newest
// checkpoint file. It exists for fault-injection harnesses (the
// supervisor tests and the crash differential check) to exercise the
// corrupt-checkpoint fallback path; it errors if dir holds no checkpoint.
func CorruptNewestCheckpoint(dir string) error {
	names, err := filepath.Glob(filepath.Join(dir, ckptPrefix+"*"+ckptSuffix))
	if err != nil {
		return err
	}
	if len(names) == 0 {
		return fmt.Errorf("no checkpoint in %s", dir)
	}
	sort.Strings(names)
	path := names[len(names)-1]
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(blob) == 0 {
		return fmt.Errorf("%s is empty", path)
	}
	// Flip a byte past the header so the CRC check (not the magic check)
	// catches it when possible.
	pos := len(blob) / 2
	blob[pos] ^= 0x01
	return os.WriteFile(path, blob, 0o644)
}
