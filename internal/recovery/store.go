// Package recovery provides the durable substrate of the fault-tolerant
// runtime: a directory holding periodic engine checkpoints plus a
// segmented write-ahead log (WAL) of every event offered since the last
// checkpoint. Together they let a crashed pipeline restore and replay to
// exactly its pre-crash state.
//
// Durability protocol:
//
//   - every offered event is appended to the WAL before the engine
//     processes it (no admitted event can be lost to a crash);
//   - after a processing step emits matches, a commit marker records the
//     new cumulative emission count (the monotone match sequence number
//     that replay uses to suppress duplicate emissions);
//   - every CheckpointEvery events the supervisor snapshots the engine:
//     the checkpoint file is written atomically (temp file + fsync +
//     rename + directory fsync), carries a magic/version header and a
//     CRC32 over its payload, and names the WAL segment replay resumes
//     from; the WAL rotates to a fresh segment at the same instant.
//
// Recovery (Store.Recover) scans checkpoints newest-first, skips any that
// are truncated or corrupt (falling back to the previous valid one — a
// fallback is always replayable because segment pruning never outruns the
// oldest retained checkpoint), then reads the WAL from the checkpoint's
// segment onward, tolerating a torn final record.
//
// The last Retain checkpoints are kept; older checkpoints and the WAL
// segments only they referenced are pruned after each new checkpoint.
package recovery

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"oostream/internal/event"
)

// File naming. Sequence numbers are zero-padded hex so lexical order is
// numeric order.
const (
	ckptPrefix = "ckpt-"
	ckptSuffix = ".ck"
	walPrefix  = "wal-"
	walSuffix  = ".seg"
)

// Checkpoint file envelope (same framing as the core engine's):
//
//	magic   [6]byte  "OORCPT"
//	version byte     1
//	length  uint32le payload byte count
//	crc     uint32le CRC32 (IEEE) of the payload
//	payload []byte   JSON ckptPayload
var storeMagic = [6]byte{'O', 'O', 'R', 'C', 'P', 'T'}

const storeVersion = 1

// ckptPayload is the recovery-level checkpoint: supervisor counters, the
// WAL resume point, opaque supervisor metadata, and the engine snapshot.
type ckptPayload struct {
	// Matches is the cumulative match-emission count at the checkpoint.
	Matches uint64 `json:"matches"`
	// Ingested is the cumulative offered-event count at the checkpoint.
	Ingested uint64 `json:"ingested"`
	// WalSeg is the first WAL segment to replay after this checkpoint.
	WalSeg uint64 `json:"walSeg"`
	// Meta is supervisor state (admission clock, duplicate horizon).
	Meta json.RawMessage `json:"meta,omitempty"`
	// Engine is the engine snapshot; empty for WAL-only engines.
	Engine []byte `json:"engine,omitempty"`
}

// Options configure a Store.
type Options struct {
	// Retain is how many checkpoints to keep; default 3, minimum 1.
	Retain int
	// SegmentEvents rotates the WAL after this many event records even
	// without a checkpoint; default 4096.
	SegmentEvents int
	// Sync fsyncs the WAL after every record. Default off: records reach
	// the OS per-append (surviving process death) and are fsynced at
	// rotation and checkpoint; full per-record durability against power
	// loss costs a disk flush per event.
	Sync bool
	// DisableFsync turns off all fsync calls (checkpoints included) for
	// harnesses that simulate crashes in-process, where the page cache
	// survives by construction. Never set it in production.
	DisableFsync bool
}

func (o Options) withDefaults() Options {
	if o.Retain < 1 {
		o.Retain = 3
	}
	if o.SegmentEvents <= 0 {
		o.SegmentEvents = 4096
	}
	return o
}

// Store manages one pipeline's durable directory.
type Store struct {
	dir  string
	opts Options

	seg       *os.File // current WAL segment (nil until first append)
	segSeq    uint64   // sequence of the current (or next) segment
	segEvents int      // event records in the current segment
	nextCkpt  uint64   // sequence for the next checkpoint file
	appended  uint64   // cumulative offered events (continues across recovery)
	killed    bool
}

// Open prepares a Store over dir, creating it if needed. Existing state is
// not read until Recover; call Recover before the first Append when
// resuming an existing directory.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts}
	ckpts, segs, err := s.scan()
	if err != nil {
		return nil, err
	}
	if n := len(ckpts); n > 0 {
		s.nextCkpt = ckpts[n-1] + 1
	}
	if n := len(segs); n > 0 {
		// Never append to a pre-existing segment (its tail may be torn);
		// fresh appends start a new one.
		s.segSeq = segs[n-1] + 1
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Ingested returns the cumulative offered-event count.
func (s *Store) Ingested() uint64 { return s.appended }

// scan lists checkpoint and segment sequence numbers in ascending order.
func (s *Store) scan() (ckpts, segs []uint64, err error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, nil, err
	}
	parse := func(name, prefix, suffix string) (uint64, bool) {
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			return 0, false
		}
		v, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 16, 64)
		return v, err == nil
	}
	for _, e := range entries {
		if v, ok := parse(e.Name(), ckptPrefix, ckptSuffix); ok {
			ckpts = append(ckpts, v)
		} else if v, ok := parse(e.Name(), walPrefix, walSuffix); ok {
			segs = append(segs, v)
		}
	}
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] < ckpts[j] })
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return ckpts, segs, nil
}

func (s *Store) ckptPath(seq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%016x%s", ckptPrefix, seq, ckptSuffix))
}

func (s *Store) segPath(seq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%016x%s", walPrefix, seq, walSuffix))
}

func (s *Store) append(rec walRecord) error {
	if s.killed {
		return fmt.Errorf("recovery store is killed")
	}
	if s.seg == nil {
		f, err := os.OpenFile(s.segPath(s.segSeq), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		s.seg = f
		s.segEvents = 0
	}
	if err := appendRecord(s.seg, rec); err != nil {
		return err
	}
	if s.opts.Sync && !s.opts.DisableFsync {
		return s.seg.Sync()
	}
	return nil
}

// Append logs one offered event ahead of processing.
func (s *Store) Append(e event.Event) error {
	if err := s.append(walRecord{E: &e}); err != nil {
		return err
	}
	s.appended++
	s.segEvents++
	if s.segEvents >= s.opts.SegmentEvents {
		return s.rotate()
	}
	return nil
}

// CommitMatches records that n cumulative match emissions are delivered.
func (s *Store) CommitMatches(n uint64) error {
	return s.append(walRecord{N: &n})
}

// AppendFlush records end-of-stream.
func (s *Store) AppendFlush() error {
	return s.append(walRecord{F: true})
}

// rotate seals the current segment and directs future appends to a new
// one. The new segment's file is created eagerly: a checkpoint written
// right after a rotation references the new segment by number, and a
// reopening Store derives its numbering from the files it finds — a
// number that never reached the directory would be reused by the next
// generation, silently placing new events below the checkpoint's replay
// horizon.
func (s *Store) rotate() error {
	if s.seg != nil {
		if !s.opts.DisableFsync {
			if err := s.seg.Sync(); err != nil {
				s.seg.Close()
				s.seg = nil
				return err
			}
		}
		if err := s.seg.Close(); err != nil {
			s.seg = nil
			return err
		}
		s.seg = nil
	}
	s.segSeq++
	s.segEvents = 0
	f, err := os.OpenFile(s.segPath(s.segSeq), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	s.seg = f
	if !s.opts.DisableFsync {
		return s.syncDir()
	}
	return nil
}

// Checkpoint durably snapshots the pipeline: save serializes the engine
// (nil for WAL-only engines, recording counters and metadata alone), meta
// carries supervisor state, and matches is the cumulative emission count.
// The WAL rotates so replay after this checkpoint starts at a fresh
// segment; obsolete checkpoints and segments are pruned. Returns the
// checkpoint's byte size.
func (s *Store) Checkpoint(save func(w io.Writer) error, meta any, matches uint64) (int, error) {
	if s.killed {
		return 0, fmt.Errorf("recovery store is killed")
	}
	if err := s.rotate(); err != nil {
		return 0, err
	}
	pl := ckptPayload{Matches: matches, Ingested: s.appended, WalSeg: s.segSeq}
	if meta != nil {
		raw, err := json.Marshal(meta)
		if err != nil {
			return 0, err
		}
		pl.Meta = raw
	}
	if save != nil {
		var buf strings.Builder
		bw := &countWriter{w: &buf}
		if err := save(bw); err != nil {
			return 0, fmt.Errorf("engine snapshot: %w", err)
		}
		pl.Engine = []byte(buf.String())
	}
	payload, err := json.Marshal(pl)
	if err != nil {
		return 0, err
	}
	blob := make([]byte, 15+len(payload))
	copy(blob[:6], storeMagic[:])
	blob[6] = storeVersion
	binary.LittleEndian.PutUint32(blob[7:11], uint32(len(payload)))
	binary.LittleEndian.PutUint32(blob[11:15], crc32.ChecksumIEEE(payload))
	copy(blob[15:], payload)
	if err := s.writeFileAtomic(s.ckptPath(s.nextCkpt), blob); err != nil {
		return 0, err
	}
	s.nextCkpt++
	s.prune()
	return len(blob), nil
}

// countWriter wraps a strings.Builder as an io.Writer.
type countWriter struct{ w *strings.Builder }

func (c *countWriter) Write(p []byte) (int, error) { return c.w.Write(p) }

// writeFileAtomic writes data so a crash leaves either the old state or
// the complete new file: temp file in the same directory, write, fsync,
// rename, directory fsync.
func (s *Store) writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, ".tmp-ckpt-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if !s.opts.DisableFsync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	return s.syncDir()
}

func (s *Store) syncDir() error {
	if s.opts.DisableFsync {
		return nil
	}
	d, err := os.Open(s.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// prune removes checkpoints beyond the retention horizon and WAL segments
// no retained checkpoint can replay from. Pruning is best-effort: an
// undeletable file is left for the next pass.
func (s *Store) prune() {
	ckpts, segs, err := s.scan()
	if err != nil {
		return
	}
	if len(ckpts) > s.opts.Retain {
		for _, seq := range ckpts[:len(ckpts)-s.opts.Retain] {
			os.Remove(s.ckptPath(seq))
		}
		ckpts = ckpts[len(ckpts)-s.opts.Retain:]
	}
	// The oldest retained checkpoint needs segments >= its WalSeg. Its
	// WalSeg requires reading the file; a corrupt one is treated as
	// needing everything from its own sequence on (conservative: never
	// prune a segment a fallback might replay).
	minSeg := s.segSeq
	for _, seq := range ckpts {
		if pl, err := readCkptFile(s.ckptPath(seq)); err == nil {
			if pl.WalSeg < minSeg {
				minSeg = pl.WalSeg
			}
		} else {
			minSeg = 0
		}
	}
	for _, seq := range segs {
		if seq < minSeg && seq != s.segSeq {
			os.Remove(s.segPath(seq))
		}
	}
}

// readCkptFile reads and validates one checkpoint file.
func readCkptFile(path string) (*ckptPayload, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(blob) < 15 {
		return nil, fmt.Errorf("%s: checkpoint header truncated", filepath.Base(path))
	}
	if [6]byte(blob[:6]) != storeMagic {
		return nil, fmt.Errorf("%s: bad checkpoint magic %q", filepath.Base(path), blob[:6])
	}
	if blob[6] != storeVersion {
		return nil, fmt.Errorf("%s: checkpoint version %d, want %d", filepath.Base(path), blob[6], storeVersion)
	}
	size := binary.LittleEndian.Uint32(blob[7:11])
	want := binary.LittleEndian.Uint32(blob[11:15])
	if int(size) != len(blob)-15 {
		return nil, fmt.Errorf("%s: checkpoint truncated: want %d payload bytes, got %d", filepath.Base(path), size, len(blob)-15)
	}
	if got := crc32.ChecksumIEEE(blob[15:]); got != want {
		return nil, fmt.Errorf("%s: checkpoint corrupt: CRC32 %08x, want %08x", filepath.Base(path), got, want)
	}
	var pl ckptPayload
	if err := json.Unmarshal(blob[15:], &pl); err != nil {
		return nil, fmt.Errorf("%s: decode checkpoint: %w", filepath.Base(path), err)
	}
	return &pl, nil
}

// Recovered is the durable state read back after a crash.
type Recovered struct {
	// Snapshot is the engine snapshot to restore from; nil means start a
	// fresh engine and replay from the beginning.
	Snapshot []byte
	// Meta is the supervisor metadata recorded with the snapshot.
	Meta json.RawMessage
	// Replay holds the WAL events after the snapshot, in offer order.
	Replay []event.Event
	// CkptMatches is the cumulative emission count as of the snapshot.
	CkptMatches uint64
	// Matches is the durable emission count at the crash: replayed
	// emissions numbered at or below it were already delivered and must
	// be suppressed.
	Matches uint64
	// Ingested is the total offered-event count (snapshot + replay).
	Ingested uint64
	// Flushed reports that end-of-stream was durably recorded.
	Flushed bool
	// CorruptCheckpoints counts checkpoint files skipped as damaged.
	CorruptCheckpoints int
	// TornSegments counts WAL segments that ended in a torn record.
	TornSegments int
}

// Recover reads the directory's durable state: the newest valid
// checkpoint (skipping damaged ones) plus the WAL suffix after it. The
// store continues appending after the recovered state; call it before the
// first Append when resuming an existing directory.
func (s *Store) Recover() (*Recovered, error) {
	ckpts, segs, err := s.scan()
	if err != nil {
		return nil, err
	}
	rec := &Recovered{}
	var chosen *ckptPayload
	for i := len(ckpts) - 1; i >= 0; i-- {
		pl, err := readCkptFile(s.ckptPath(ckpts[i]))
		if err != nil {
			rec.CorruptCheckpoints++
			continue
		}
		chosen = pl
		break
	}
	replayFrom := uint64(0)
	if chosen != nil {
		rec.Snapshot = chosen.Engine
		rec.Meta = chosen.Meta
		rec.CkptMatches = chosen.Matches
		rec.Matches = chosen.Matches
		rec.Ingested = chosen.Ingested
		replayFrom = chosen.WalSeg
	}
	for i, seq := range segs {
		if seq < replayFrom {
			continue
		}
		data, err := os.ReadFile(s.segPath(seq))
		if err != nil {
			return nil, err
		}
		res, err := parseSegment(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", filepath.Base(s.segPath(seq)), err)
		}
		if res.torn {
			rec.TornSegments++
			if i != len(segs)-1 {
				// A torn record in a non-final segment means durable
				// records vanished; replaying past the gap would diverge.
				return nil, fmt.Errorf("%s: torn record before the final segment", filepath.Base(s.segPath(seq)))
			}
		}
		rec.Replay = append(rec.Replay, res.events...)
		if res.matches > rec.Matches {
			rec.Matches = res.matches
		}
		if res.flushed {
			rec.Flushed = true
		}
	}
	rec.Ingested += uint64(len(rec.Replay))
	s.appended = rec.Ingested
	return rec, nil
}

// Kill simulates a crash for tests: file handles are dropped without
// syncing and every subsequent operation fails. Data already appended
// survives (each record reached the OS in a single write).
func (s *Store) Kill() {
	if s.seg != nil {
		s.seg.Close()
		s.seg = nil
	}
	s.killed = true
}

// Close cleanly seals the current segment.
func (s *Store) Close() error {
	if s.killed {
		return nil
	}
	s.killed = true
	if s.seg == nil {
		return nil
	}
	var err error
	if !s.opts.DisableFsync {
		err = s.seg.Sync()
	}
	if cerr := s.seg.Close(); err == nil {
		err = cerr
	}
	s.seg = nil
	return err
}
