package httpx

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"oostream/internal/obsv"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := obsv.NewRegistry()
	s := reg.Series("native")
	s.EventsIn.Add(5)
	s.Matches.Add(2)
	flight := obsv.NewFlightRecorder(8)
	flight.Trace(obsv.TraceEvent{Op: obsv.OpEmit, Engine: "native", TS: 42})

	srv, err := Listen("127.0.0.1:0", reg, flight)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	if code, body := get(t, base+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", code, body)
	}
	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	for _, want := range []string{
		`oostream_events_in_total{engine="native"} 5`,
		`oostream_matches_total{engine="native"} 2`,
		"# TYPE oostream_events_in_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}
	code, body = get(t, base+"/varz")
	if code != 200 || !strings.Contains(body, `"native"`) || !strings.Contains(body, `"events_in": 5`) {
		t.Fatalf("varz: %d %q", code, body)
	}
	code, body = get(t, base+"/debug/flight")
	if code != 200 || !strings.Contains(body, "emit") {
		t.Fatalf("flight: %d %q", code, body)
	}
	if code, _ := get(t, base+"/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("pprof cmdline status %d", code)
	}
}

func TestFlightDisabled(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", obsv.NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if code, _ := get(t, "http://"+srv.Addr()+"/debug/flight"); code != http.StatusNotFound {
		t.Fatalf("flight should 404 when disabled, got %d", code)
	}
}
