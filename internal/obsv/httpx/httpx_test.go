package httpx

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"oostream/internal/obsv"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := obsv.NewRegistry()
	s := reg.Series("native")
	s.EventsIn.Add(5)
	s.Matches.Add(2)
	flight := obsv.NewFlightRecorder(8)
	flight.Trace(obsv.TraceEvent{Op: obsv.OpEmit, Engine: "native", TS: 42})

	srv, err := Listen("127.0.0.1:0", reg, flight, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	if code, body := get(t, base+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", code, body)
	}
	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	for _, want := range []string{
		`oostream_events_in_total{engine="native"} 5`,
		`oostream_matches_total{engine="native"} 2`,
		"# TYPE oostream_events_in_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}
	code, body = get(t, base+"/varz")
	if code != 200 || !strings.Contains(body, `"native"`) || !strings.Contains(body, `"events_in": 5`) {
		t.Fatalf("varz: %d %q", code, body)
	}
	code, body = get(t, base+"/debug/flight")
	if code != 200 || !strings.Contains(body, "emit") {
		t.Fatalf("flight: %d %q", code, body)
	}
	if code, _ := get(t, base+"/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("pprof cmdline status %d", code)
	}
}

func TestFlightDisabled(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", obsv.NewRegistry(), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	if code, _ := get(t, base+"/debug/flight"); code != http.StatusNotFound {
		t.Fatalf("flight should 404 when disabled, got %d", code)
	}
	if code, _ := get(t, base+"/debug/state"); code != http.StatusNotFound {
		t.Fatalf("state should 404 when disabled, got %d", code)
	}
	if code, _ := get(t, base+"/debug/latency"); code != http.StatusNotFound {
		t.Fatalf("latency should 404 when disabled, got %d", code)
	}
}

func TestFlightJSONFormat(t *testing.T) {
	flight := obsv.NewFlightRecorder(8)
	flight.Trace(obsv.TraceEvent{Op: obsv.OpEmit, Engine: "native", TS: 42, N: 3, Match: "1|2|3"})
	srv, err := Listen("127.0.0.1:0", obsv.NewRegistry(), flight, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body := get(t, "http://"+srv.Addr()+"/debug/flight?format=json")
	if code != 200 {
		t.Fatalf("flight json status %d", code)
	}
	var te obsv.TraceEvent
	if err := json.Unmarshal([]byte(strings.TrimSpace(body)), &te); err != nil {
		t.Fatalf("flight json not parseable: %v\n%s", err, body)
	}
	if te.Op != obsv.OpEmit || te.TS != 42 || te.Match != "1|2|3" {
		t.Fatalf("flight json round-trip mismatch: %+v", te)
	}
}

func TestStateEndpoint(t *testing.T) {
	var doc any
	state := func() any { return doc }
	srv, err := Listen("127.0.0.1:0", obsv.NewRegistry(), nil, state, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// Enabled but nothing published yet: 404.
	if code, _ := get(t, base+"/debug/state"); code != http.StatusNotFound {
		t.Fatalf("state should 404 before first publication, got %d", code)
	}
	doc = map[string]any{"engine": "native", "stackDepths": []int{3, 1}}
	code, body := get(t, base+"/debug/state")
	if code != 200 {
		t.Fatalf("state status %d", code)
	}
	var got map[string]any
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("state not JSON: %v\n%s", err, body)
	}
	if got["engine"] != "native" {
		t.Fatalf("state round-trip mismatch: %v", got)
	}
}

func TestLatencyEndpoint(t *testing.T) {
	// The poll func returns a typed-nil *LatencyReport inside the any until
	// the first publication — the handler must treat that as 404, not
	// serve "null".
	var report *obsv.LatencyReport
	latency := func() any { return report }
	srv, err := Listen("127.0.0.1:0", obsv.NewRegistry(), nil, nil, latency)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	if code, _ := get(t, base+"/debug/latency"); code != http.StatusNotFound {
		t.Fatalf("latency should 404 before first publication, got %d", code)
	}
	report = &obsv.LatencyReport{
		SampleEvery:  256,
		SpansSampled: 12,
		Wall:         obsv.HistSummary{Count: 12, P95Us: 340},
		Stages:       map[string]obsv.HistSummary{"construct": {Count: 12, P95Us: 200}},
	}
	code, body := get(t, base+"/debug/latency")
	if code != 200 {
		t.Fatalf("latency status %d: %s", code, body)
	}
	var got obsv.LatencyReport
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("latency not JSON: %v\n%s", err, body)
	}
	if got.SampleEvery != 256 || got.Wall.P95Us != 340 || got.Stages["construct"].Count != 12 {
		t.Fatalf("latency round-trip mismatch: %+v", got)
	}
}
