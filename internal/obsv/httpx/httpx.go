// Package httpx serves the live observability layer over HTTP: the
// Prometheus text exposition of a Registry on /metrics, a JSON state
// document on /varz, a liveness probe on /healthz, the flight recorder's
// recent trace on /debug/flight (text, or JSON Lines with ?format=json),
// a live engine-state snapshot on /debug/state, the wall-clock latency
// attribution digest on /debug/latency, and the standard pprof profiles
// under /debug/pprof/. The CLIs mount it behind their -listen flag; it has
// no dependencies beyond the standard library.
package httpx

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"reflect"
	"time"

	"oostream/internal/obsv"
)

// NewMux builds the observability mux over reg. flight may be nil, which
// disables /debug/flight with a 404 explanation instead of a handler.
// state, when non-nil, is polled by /debug/state for a JSON-encodable
// live-state document (typically a *provenance.StateSnapshot published by
// the processing loop); latency, when non-nil, is polled the same way by
// /debug/latency (typically a *obsv.LatencyReport). A nil func — or a
// func returning a nil document — leaves its endpoint answering 404.
func NewMux(reg *obsv.Registry, flight *obsv.FlightRecorder, state, latency func() any) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			// Headers are gone; all we can do is cut the connection short.
			return
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/varz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Varz())
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		if flight == nil {
			http.Error(w, "flight recorder not enabled", http.StatusNotFound)
			return
		}
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/x-ndjson")
			_ = flight.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = flight.WriteTo(w)
	})
	serveDoc := func(pattern, missing string, poll func() any) {
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			if poll == nil {
				http.Error(w, missing+" not enabled", http.StatusNotFound)
				return
			}
			doc := poll()
			// A typed-nil pointer inside the any is still "no document":
			// encode it and a bare "null" would read as an empty report.
			if doc == nil || reflect.ValueOf(doc).Kind() == reflect.Pointer && reflect.ValueOf(doc).IsNil() {
				http.Error(w, "no "+missing+" published yet", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(doc)
		})
	}
	serveDoc("/debug/state", "state snapshot", state)
	serveDoc("/debug/latency", "latency report", latency)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a started observability endpoint.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Listen binds addr (e.g. ":9090" or "127.0.0.1:0") and serves the
// observability mux on it in a background goroutine. The returned Server
// reports the bound address (useful with port 0) and is closed with Close.
// flight, state, and latency are forwarded to NewMux; all may be nil.
func Listen(addr string, reg *obsv.Registry, flight *obsv.FlightRecorder, state, latency func() any) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("observability listener: %w", err)
	}
	srv := &http.Server{
		Handler:           NewMux(reg, flight, state, latency),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	return &Server{srv: srv, ln: ln}, nil
}

// Addr returns the bound address, e.g. "127.0.0.1:9090".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and any in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }
