package obsv

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHist(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("counter = %d, want 5", c.Load())
	}

	var g Gauge
	g.Set(7)
	g.Set(3)
	if g.Load() != 3 || g.Peak() != 7 {
		t.Fatalf("gauge = %d peak %d, want 3 peak 7", g.Load(), g.Peak())
	}

	var h Hist
	for _, v := range []uint64{0, 1, 2, 3, 100} {
		h.Observe(v)
	}
	v := h.View()
	if v.Count != 5 || v.Sum != 106 || v.Max != 100 {
		t.Fatalf("hist view = %+v", v)
	}
	if v.Buckets[0] != 1 || v.Buckets[1] != 1 || v.Buckets[2] != 2 || v.Buckets[7] != 1 {
		t.Fatalf("hist buckets = %v", v.Buckets[:8])
	}
	if m := v.Mean(); m < 21.1 || m > 21.3 {
		t.Fatalf("mean = %v", m)
	}
}

func TestConcurrentPublishAndView(t *testing.T) {
	s := NewSeries("x")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10_000; i++ {
			s.EventsIn.Inc()
			s.LiveState.Set(int64(i))
			s.WatermarkLag.Observe(uint64(i % 128))
		}
		close(stop)
	}()
	for {
		select {
		case <-stop:
			wg.Wait()
			if s.EventsIn.Load() != 10_000 {
				t.Fatalf("events in = %d", s.EventsIn.Load())
			}
			return
		default:
			_ = s.EventsIn.Load()
			_ = s.LiveState.Peak()
			_ = s.WatermarkLag.View()
		}
	}
}

func TestRegistrySeriesGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Series("native")
	b := r.Series("native")
	if a != b {
		t.Fatal("Series must get-or-create")
	}
	c := r.NewSeries("native")
	if c == a {
		t.Fatal("NewSeries must not reuse a taken name")
	}
	if c.Name() != "native#2" {
		t.Fatalf("uniquified name = %q", c.Name())
	}
	want := []string{"native", "native#2"}
	got := r.Names()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("names = %v, want %v", got, want)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	s := r.Series("native")
	s.EventsIn.Add(3)
	s.Matches.Inc()
	s.LiveState.Set(42)
	s.WatermarkLag.Observe(0)
	s.WatermarkLag.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE oostream_events_in_total counter",
		`oostream_events_in_total{engine="native"} 3`,
		`oostream_matches_total{engine="native"} 1`,
		"# TYPE oostream_state_live gauge",
		`oostream_state_live{engine="native"} 42`,
		`oostream_state_peak{engine="native"} 42`,
		"# TYPE oostream_watermark_lag_ms histogram",
		`oostream_watermark_lag_ms_bucket{engine="native",le="0"} 1`,
		`oostream_watermark_lag_ms_bucket{engine="native",le="7"} 2`,
		`oostream_watermark_lag_ms_bucket{engine="native",le="+Inf"} 2`,
		`oostream_watermark_lag_ms_sum{engine="native"} 5`,
		`oostream_watermark_lag_ms_count{engine="native"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
	// Cumulative buckets must be monotone: le="1" covers le="0".
	if !strings.Contains(out, `oostream_watermark_lag_ms_bucket{engine="native",le="1"} 1`) {
		t.Errorf("cumulative bucket le=1 wrong\n%s", out)
	}
}

func TestVarz(t *testing.T) {
	r := NewRegistry()
	s := r.Series("native")
	s.Matches.Add(2)
	r.RegisterVarz("soak", func() any { return map[string]int{"trials": 7} })
	doc := r.Varz()
	engines, ok := doc["engines"].(map[string]any)
	if !ok {
		t.Fatalf("varz engines missing: %v", doc)
	}
	nat, ok := engines["native"].(map[string]any)
	if !ok || nat["matches"].(uint64) != 2 {
		t.Fatalf("native varz = %v", nat)
	}
	if doc["soak"] == nil {
		t.Fatalf("provider missing: %v", doc)
	}
}
