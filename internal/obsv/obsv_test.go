package obsv

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHist(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("counter = %d, want 5", c.Load())
	}

	var g Gauge
	g.Set(7)
	g.Set(3)
	if g.Load() != 3 || g.Peak() != 7 {
		t.Fatalf("gauge = %d peak %d, want 3 peak 7", g.Load(), g.Peak())
	}

	var h Hist
	for _, v := range []uint64{0, 1, 2, 3, 100} {
		h.Observe(v)
	}
	v := h.View()
	if v.Count != 5 || v.Sum != 106 || v.Max != 100 {
		t.Fatalf("hist view = %+v", v)
	}
	if v.Buckets[0] != 1 || v.Buckets[1] != 1 || v.Buckets[2] != 2 || v.Buckets[7] != 1 {
		t.Fatalf("hist buckets = %v", v.Buckets[:8])
	}
	if m := v.Mean(); m < 21.1 || m > 21.3 {
		t.Fatalf("mean = %v", m)
	}
}

func TestConcurrentPublishAndView(t *testing.T) {
	s := NewSeries("x")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10_000; i++ {
			s.EventsIn.Inc()
			s.LiveState.Set(int64(i))
			s.WatermarkLag.Observe(uint64(i % 128))
		}
		close(stop)
	}()
	for {
		select {
		case <-stop:
			wg.Wait()
			if s.EventsIn.Load() != 10_000 {
				t.Fatalf("events in = %d", s.EventsIn.Load())
			}
			return
		default:
			_ = s.EventsIn.Load()
			_ = s.LiveState.Peak()
			_ = s.WatermarkLag.View()
		}
	}
}

func TestRegistrySeriesGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Series("native")
	b := r.Series("native")
	if a != b {
		t.Fatal("Series must get-or-create")
	}
	c := r.NewSeries("native")
	if c == a {
		t.Fatal("NewSeries must not reuse a taken name")
	}
	if c.Name() != "native#2" {
		t.Fatalf("uniquified name = %q", c.Name())
	}
	want := []string{"native", "native#2"}
	got := r.Names()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("names = %v, want %v", got, want)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	s := r.Series("native")
	s.EventsIn.Add(3)
	s.Matches.Inc()
	s.LiveState.Set(42)
	s.WatermarkLag.Observe(0)
	s.WatermarkLag.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE oostream_events_in_total counter",
		`oostream_events_in_total{engine="native"} 3`,
		`oostream_matches_total{engine="native"} 1`,
		"# TYPE oostream_state_live gauge",
		`oostream_state_live{engine="native"} 42`,
		`oostream_state_peak{engine="native"} 42`,
		"# TYPE oostream_watermark_lag_ms histogram",
		`oostream_watermark_lag_ms_bucket{engine="native",le="0"} 1`,
		`oostream_watermark_lag_ms_bucket{engine="native",le="7"} 2`,
		`oostream_watermark_lag_ms_bucket{engine="native",le="+Inf"} 2`,
		`oostream_watermark_lag_ms_sum{engine="native"} 5`,
		`oostream_watermark_lag_ms_count{engine="native"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
	// Cumulative buckets must be monotone: le="1" covers le="0".
	if !strings.Contains(out, `oostream_watermark_lag_ms_bucket{engine="native",le="1"} 1`) {
		t.Errorf("cumulative bucket le=1 wrong\n%s", out)
	}
}

// TestWritePromHistEdgeCases pins the histogram-rendering corners the
// writePromHist doc comment names: an empty series stays a well-formed
// family, the bit-length-64 bucket's upper bound survives the deliberate
// shift wraparound, and the +Inf cumulative count agrees with _count even
// when a scrape races the writer mid-observation.
func TestWritePromHistEdgeCases(t *testing.T) {
	maxBucket := HistView{Count: 1, Sum: 18446744073709551615, Max: 18446744073709551615}
	maxBucket.Buckets[64] = 1
	racing := HistView{Count: 1, Max: 3} // bucket landed, count increment not yet visible
	racing.Buckets[2] = 2

	cases := []struct {
		name string
		view HistView
		want []string
	}{
		{"empty", HistView{}, []string{
			`m_bucket{engine="e",le="0"} 0`,
			`m_bucket{engine="e",le="+Inf"} 0`,
			`m_sum{engine="e"} 0`,
			`m_count{engine="e"} 0`,
		}},
		{"max-bucket", maxBucket, []string{
			`m_bucket{engine="e",le="18446744073709551615"} 1`,
			`m_bucket{engine="e",le="+Inf"} 1`,
			`m_count{engine="e"} 1`,
		}},
		{"racing-scrape", racing, []string{
			// Buckets sum to 2 but Count reads 1: +Inf and _count must
			// render the max of the two so cumulative buckets stay monotone.
			`m_bucket{engine="e",le="3"} 2`,
			`m_bucket{engine="e",le="+Inf"} 2`,
			`m_count{engine="e"} 2`,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var b strings.Builder
			if err := writePromHist(&b, "m", "e", "", tc.view); err != nil {
				t.Fatal(err)
			}
			out := b.String()
			for _, want := range tc.want {
				if !strings.Contains(out, want) {
					t.Errorf("missing %q\n%s", want, out)
				}
			}
		})
	}

	// Stage-labelled form: both labels render.
	var b strings.Builder
	v := HistView{Count: 1, Sum: 4, Max: 4}
	v.Buckets[3] = 1
	if err := writePromHist(&b, "oostream_stage_latency_us", "latency", "construct", v); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `oostream_stage_latency_us_bucket{engine="latency",stage="construct",le="7"} 1`) {
		t.Errorf("stage label missing\n%s", b.String())
	}
}

// TestWritePrometheusSkipsEmptyWallFamilies checks the wall/stage families
// render only for series the sampler populated — an unsampled engine adds
// no all-zero noise — and appear once populated.
func TestWritePrometheusSkipsEmptyWallFamilies(t *testing.T) {
	r := NewRegistry()
	s := r.Series("native")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "oostream_wall_latency_us") ||
		strings.Contains(b.String(), "oostream_stage_latency_us") {
		t.Fatalf("wall families rendered with no observations\n%s", b.String())
	}

	s.WallLat.Observe(12)
	s.StageLat[StageConstruct].Observe(12)
	b.Reset()
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE oostream_wall_latency_us histogram",
		`oostream_wall_latency_us_count{engine="native"} 1`,
		`oostream_stage_latency_us_bucket{engine="native",stage="construct",le="15"} 1`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("missing %q\n%s", want, b.String())
		}
	}
}

func TestVarz(t *testing.T) {
	r := NewRegistry()
	s := r.Series("native")
	s.Matches.Add(2)
	r.RegisterVarz("soak", func() any { return map[string]int{"trials": 7} })
	doc := r.Varz()
	engines, ok := doc["engines"].(map[string]any)
	if !ok {
		t.Fatalf("varz engines missing: %v", doc)
	}
	nat, ok := engines["native"].(map[string]any)
	if !ok || nat["matches"].(uint64) != 2 {
		t.Fatalf("native varz = %v", nat)
	}
	if doc["soak"] == nil {
		t.Fatalf("provider missing: %v", doc)
	}
}
