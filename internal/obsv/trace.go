package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"oostream/internal/event"
)

// Op enumerates the match-lifecycle steps a TraceHook observes.
type Op uint8

// Trace operations, in rough lifecycle order.
const (
	// OpAdmit: a pattern-relevant event entered the engine.
	OpAdmit Op = iota + 1
	// OpDrop: an event was rejected (disorder-bound violation or
	// admission-control drop). N is 0.
	OpDrop
	// OpStackPush: an event was inserted into an active instance stack.
	// N is the pattern position.
	OpStackPush
	// OpRepair: an out-of-order insertion repointed predecessor (RIP)
	// pointers. N is the number of repaired instances.
	OpRepair
	// OpTrigger: construction was triggered. N is the trigger position.
	OpTrigger
	// OpEmit: an Insert match was emitted. N is the match's event count.
	OpEmit
	// OpRetract: a Retract compensation was emitted.
	OpRetract
	// OpPurge: a purge pass reclaimed state. N is the item count.
	OpPurge
	// OpHeartbeat: an Advance punctuation moved the clock. TS is the
	// promised time.
	OpHeartbeat
	// OpCheckpoint: a durable checkpoint was written. N is its byte size.
	OpCheckpoint
	// OpRestart: a supervised engine restarted from a checkpoint. N is the
	// consecutive-restart count.
	OpRestart
	// OpFlush: the stream was sealed.
	OpFlush
	// OpShed: an event was deliberately discarded by overload degradation
	// (the Limits policy), distinct from OpDrop's bound violation. N is 0.
	OpShed
	// OpSwitch: the hybrid meta-engine switched strategy. Type carries the
	// new mode ("speculate" or "native"); TS is the sealed handoff
	// watermark; N is the number of tail events replayed.
	OpSwitch
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpAdmit:
		return "admit"
	case OpDrop:
		return "drop"
	case OpStackPush:
		return "push"
	case OpRepair:
		return "repair"
	case OpTrigger:
		return "trigger"
	case OpEmit:
		return "emit"
	case OpRetract:
		return "retract"
	case OpPurge:
		return "purge"
	case OpHeartbeat:
		return "heartbeat"
	case OpCheckpoint:
		return "checkpoint"
	case OpRestart:
		return "restart"
	case OpFlush:
		return "flush"
	case OpShed:
		return "shed"
	case OpSwitch:
		return "switch"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// TraceEvent is one lifecycle observation. Fields beyond Op are
// op-dependent (see the Op constants); zero values mean "not applicable".
type TraceEvent struct {
	// Op is the lifecycle step.
	Op Op `json:"op"`
	// Engine names the reporting engine (its series name, or Name()).
	Engine string `json:"engine,omitempty"`
	// Type is the event type involved, when one is.
	Type string `json:"type,omitempty"`
	// TS is the event or punctuation timestamp.
	TS event.Time `json:"ts"`
	// Seq is the involved event's sequence number, when one is.
	Seq event.Seq `json:"seq,omitempty"`
	// N is the op-dependent count (position, purged items, repaired
	// pointers, checkpoint bytes).
	N int `json:"n,omitempty"`
	// Match is the canonical match identity ("|"-joined event Seqs) on
	// emit/retract ops when provenance is enabled; it joins trace events
	// against lineage records (espexplain's "why did match M emit?").
	Match string `json:"match,omitempty"`
}

// String renders the trace event on one line.
func (t TraceEvent) String() string {
	s := fmt.Sprintf("%-10s engine=%s type=%s ts=%d seq=%d n=%d",
		t.Op, t.Engine, t.Type, t.TS, t.Seq, t.N)
	if t.Match != "" {
		s += " match=" + t.Match
	}
	return s
}

// TraceHook observes match-lifecycle steps. Implementations must be safe
// for concurrent use (parallel shard execution calls from several
// goroutines) and must not retain the TraceEvent beyond the call. Engines
// guard every call site with a nil check, so an unhooked engine pays one
// branch per site and constructs no TraceEvent.
type TraceHook interface {
	Trace(TraceEvent)
}

// TraceFunc adapts a function to the TraceHook interface.
type TraceFunc func(TraceEvent)

// Trace implements TraceHook.
func (f TraceFunc) Trace(ev TraceEvent) { f(ev) }

// MultiHook fans one trace stream out to several hooks.
type MultiHook []TraceHook

// Trace implements TraceHook.
func (m MultiHook) Trace(ev TraceEvent) {
	for _, h := range m {
		if h != nil {
			h.Trace(ev)
		}
	}
}

// FlightRecorder is the ring-buffer TraceHook: it retains the most recent
// observations at a fixed memory cost, for dumping on panic or on demand
// (the /debug/flight endpoint). It is safe for concurrent use.
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []TraceEvent
	next  int
	full  bool
	total uint64
}

// NewFlightRecorder creates a recorder retaining the last n events
// (minimum 1).
func NewFlightRecorder(n int) *FlightRecorder {
	if n < 1 {
		n = 1
	}
	return &FlightRecorder{buf: make([]TraceEvent, n)}
}

// Trace implements TraceHook.
func (f *FlightRecorder) Trace(ev TraceEvent) {
	f.mu.Lock()
	f.buf[f.next] = ev
	f.next++
	if f.next == len(f.buf) {
		f.next = 0
		f.full = true
	}
	f.total++
	f.mu.Unlock()
}

// Total returns how many events were ever recorded (including overwritten
// ones).
func (f *FlightRecorder) Total() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Dump returns the retained events, oldest first.
func (f *FlightRecorder) Dump() []TraceEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.full {
		return append([]TraceEvent(nil), f.buf[:f.next]...)
	}
	out := make([]TraceEvent, 0, len(f.buf))
	out = append(out, f.buf[f.next:]...)
	return append(out, f.buf[:f.next]...)
}

// WriteTo renders the retained events as text, oldest first — the same
// order Dump returns — the dump-on-panic format.
func (f *FlightRecorder) WriteTo(w io.Writer) (int64, error) {
	var written int64
	for _, ev := range f.Dump() {
		n, err := fmt.Fprintln(w, ev)
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// WriteJSON renders the retained events as JSON Lines, oldest first — the
// machine-readable dump espexplain replays (one TraceEvent object per
// line).
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range f.Dump() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}
