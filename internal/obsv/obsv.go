// Package obsv is the live observability layer: a lock-cheap metrics
// registry every engine publishes into, and the trace-hook plumbing the
// flight recorder and external tracers attach to.
//
// The design splits responsibilities three ways:
//
//   - Counter, Gauge, and Hist are single-word atomic instruments. Engines
//     are single-writer on the hot path, so publication is one uncontended
//     atomic add per signal; readers (HTTP scrapes, monitors, tests) load
//     the same words without stopping the writer. No mutex is taken on
//     either side.
//   - Series groups the instruments of one engine instance under a name
//     ("native", "native/shard3", "supervisor"). internal/metrics.Collector
//     is a veneer over a Series, so binding an engine's collector to a
//     registry-owned Series turns its existing counters into live,
//     scrapeable time series without touching call sites.
//   - Registry names and enumerates Series and renders them as
//     Prometheus text (see WritePrometheus) or a JSON /varz snapshot.
//
// Trace hooks (trace.go) are the event-granular complement: a TraceHook
// receives one TraceEvent per lifecycle step (admit, drop, push, repair,
// trigger, emit, retract, purge, checkpoint, restart) with a nil fast path
// — an unhooked engine pays one predictable branch per site.
package obsv

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotone atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value that also tracks its peak.
type Gauge struct {
	v    atomic.Int64
	peak atomic.Int64
}

// Set records the current value and raises the peak if exceeded.
func (g *Gauge) Set(n int64) {
	g.v.Store(n)
	for {
		p := g.peak.Load()
		if n <= p || g.peak.CompareAndSwap(p, n) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Peak returns the largest value ever Set.
func (g *Gauge) Peak() int64 { return g.peak.Load() }

// Hist is an atomic fixed-bucket histogram of uint64 observations. Bucket
// i counts values whose bit length is i (bucket 0: the value 0), so bucket
// i's inclusive upper bound is 2^i − 1 — the same layout as
// internal/metrics.Histogram, which snapshots convert into.
type Hist struct {
	buckets [65]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
}

// Observe records one value.
func (h *Hist) Observe(v uint64) {
	h.buckets[bits.Len64(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// HistView is a point-in-time copy of a Hist. Loads are individually
// atomic, not mutually consistent — a scrape racing the writer can be off
// by the in-flight observation, which monitoring tolerates by design.
type HistView struct {
	Buckets [65]uint64
	Count   uint64
	Sum     uint64
	Max     uint64
}

// View copies the histogram.
func (h *Hist) View() HistView {
	var v HistView
	for i := range h.buckets {
		v.Buckets[i] = h.buckets[i].Load()
	}
	v.Count = h.count.Load()
	v.Sum = h.sum.Load()
	v.Max = h.max.Load()
	return v
}

// Mean returns the average observation, or 0 with none.
func (v HistView) Mean() float64 {
	if v.Count == 0 {
		return 0
	}
	return float64(v.Sum) / float64(v.Count)
}

// Series is the named instrument set one engine instance publishes into.
// Field meanings mirror internal/metrics.Snapshot; WatermarkLag is the new
// live signal: per admitted event, how far (logical ms) its timestamp lags
// the engine's watermark (max timestamp seen) — the measured disorder that
// adaptive K selection needs.
type Series struct {
	name string

	EventsIn    Counter
	EventsOOO   Counter
	EventsLate  Counter
	Irrelevant  Counter
	Matches     Counter
	Retractions Counter
	PredErrors  Counter
	Purged      Counter
	PurgeCalls  Counter
	Probes      Counter
	EmptyProbes Counter
	Repairs     Counter

	Dropped       Counter
	DeadLettered  Counter
	DupSuppressed Counter
	Restarts      Counter
	Checkpoints   Counter

	// LineageRecords counts lineage records built by the provenance layer;
	// LineageLive/LineageBytes gauge what is currently retained, so the
	// overhead of provenance is itself observable.
	LineageRecords Counter

	// SheddedEvents counts events discarded by overload degradation (the
	// Limits policy) — deliberately shed, distinct from EventsLate (bound
	// violators) and Dropped (admission control). Switches counts hybrid
	// meta-engine strategy switches.
	SheddedEvents Counter
	Switches      Counter

	// Windowed-aggregation instruments. AggWindows counts emitted window
	// values; AggRevisions counts speculative revisions (a retract+insert
	// pair replacing a previously emitted window value); AggInserts counts
	// elements inserted into the FiBA tree and AggFingerHits the subset that
	// landed directly in a finger leaf (the in-order/near-frontier fast
	// path), so finger_hits/inserts is the live finger hit rate.
	AggWindows    Counter
	AggRevisions  Counter
	AggInserts    Counter
	AggFingerHits Counter

	LiveState       Gauge
	KeyGroups       Gauge
	CheckpointBytes Gauge
	CheckpointNanos Gauge
	LineageLive     Gauge
	LineageBytes    Gauge

	// CurrentK gauges the effective disorder bound the engine is enforcing
	// right now (the adaptive controller's output; constant for static K).
	// Degraded is 1 while overload degradation is active.
	CurrentK Gauge
	Degraded Gauge

	// AggTreeHeight gauges the tallest live aggregation tree across groups;
	// AggElements gauges the live elements across all trees.
	AggTreeHeight Gauge
	AggElements   Gauge

	LogicalLat   Hist
	ArrivalLat   Hist
	WatermarkLag Hist

	// Wall-clock latency attribution (latency.go). WallLat is end-to-end
	// wall latency (µs) of sampled spans; StageLat decomposes it by
	// pipeline stage. SpansSampled/SpansAbandoned/SpansDropped account the
	// sampler's span lifecycle.
	WallLat        Hist
	StageLat       [NumStages]Hist
	SpansSampled   Counter
	SpansAbandoned Counter
	SpansDropped   Counter

	// Backpressure instruments (useful with sampling off): QueueDepth
	// gauges live ring/feed occupancy; BlockedPushes counts producer
	// pushes that had to park on a full ring; FullRejects counts TryPush
	// rejections.
	QueueDepth    Gauge
	BlockedPushes Counter
	FullRejects   Counter
}

// NewSeries creates an unregistered series (engines own one by default;
// binding swaps in a registry-owned one).
func NewSeries(name string) *Series { return &Series{name: name} }

// Name returns the series name ("" for unregistered private series).
func (s *Series) Name() string { return s.name }

// Registry names and serves the Series of one process. All methods are
// safe for concurrent use; registration locks, publication never does.
type Registry struct {
	mu    sync.RWMutex
	named map[string]*Series
	order []string
	varz  map[string]func() any
	prom  []func(io.Writer) error
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		named: make(map[string]*Series),
		varz:  make(map[string]func() any),
	}
}

// Series returns the series registered under name, creating it on first
// use (get-or-create: shard factories can resolve the same name safely).
func (r *Registry) Series(name string) *Series {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.named[name]; ok {
		return s
	}
	s := NewSeries(name)
	r.named[name] = s
	r.order = append(r.order, name)
	return s
}

// NewSeries registers a fresh series under prefix, uniquifying with a
// "#n" suffix when the name is taken — engine constructors use it so two
// engines of the same strategy never share counters.
func (r *Registry) NewSeries(prefix string) *Series {
	r.mu.Lock()
	defer r.mu.Unlock()
	name := prefix
	for n := 2; ; n++ {
		if _, taken := r.named[name]; !taken {
			break
		}
		name = fmt.Sprintf("%s#%d", prefix, n)
	}
	s := NewSeries(name)
	r.named[name] = s
	r.order = append(r.order, name)
	return s
}

// Each calls f for every registered series, in registration order.
func (r *Registry) Each(f func(*Series)) {
	r.mu.RLock()
	names := append([]string(nil), r.order...)
	r.mu.RUnlock()
	for _, n := range names {
		r.mu.RLock()
		s := r.named[n]
		r.mu.RUnlock()
		if s != nil {
			f(s)
		}
	}
}

// Names returns the registered series names, in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// RegisterVarz attaches a named snapshot provider to the /varz JSON
// document (process-level state that is not an engine counter: soak
// progress, checkpoint topology, build info).
func (r *Registry) RegisterVarz(name string, fn func() any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.varz[name] = fn
}

// RegisterPrometheus appends an extra exposition block to WritePrometheus
// output — metric families that are not per-series instruments (the SLO
// burn-rate windows, for example).
func (r *Registry) RegisterPrometheus(fn func(io.Writer) error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.prom = append(r.prom, fn)
}

// Varz returns the JSON-ready snapshot document: one entry per series
// (counter map) plus every registered provider's value.
func (r *Registry) Varz() map[string]any {
	doc := make(map[string]any)
	engines := make(map[string]any)
	r.Each(func(s *Series) {
		engines[s.Name()] = s.varz()
	})
	doc["engines"] = engines
	r.mu.RLock()
	names := make([]string, 0, len(r.varz))
	for n := range r.varz {
		names = append(names, n)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	for _, n := range names {
		r.mu.RLock()
		fn := r.varz[n]
		r.mu.RUnlock()
		doc[n] = fn()
	}
	return doc
}

// varz renders one series as a flat map.
func (s *Series) varz() map[string]any {
	lag := s.WatermarkLag.View()
	lat := s.LogicalLat.View()
	wall := s.WallLat.View()
	return map[string]any{
		"events_in":             s.EventsIn.Load(),
		"events_ooo":            s.EventsOOO.Load(),
		"events_late":           s.EventsLate.Load(),
		"irrelevant":            s.Irrelevant.Load(),
		"matches":               s.Matches.Load(),
		"retractions":           s.Retractions.Load(),
		"pred_errors":           s.PredErrors.Load(),
		"purged":                s.Purged.Load(),
		"purge_calls":           s.PurgeCalls.Load(),
		"probes":                s.Probes.Load(),
		"empty_probes":          s.EmptyProbes.Load(),
		"repairs":               s.Repairs.Load(),
		"dropped":               s.Dropped.Load(),
		"dead_lettered":         s.DeadLettered.Load(),
		"dup_suppressed":        s.DupSuppressed.Load(),
		"restarts":              s.Restarts.Load(),
		"checkpoints":           s.Checkpoints.Load(),
		"checkpoint_bytes":      s.CheckpointBytes.Load(),
		"checkpoint_nanos":      s.CheckpointNanos.Load(),
		"state_live":            s.LiveState.Load(),
		"state_peak":            s.LiveState.Peak(),
		"key_groups":            s.KeyGroups.Load(),
		"key_groups_peak":       s.KeyGroups.Peak(),
		"lineage_records":       s.LineageRecords.Load(),
		"lineage_live":          s.LineageLive.Load(),
		"lineage_bytes":         s.LineageBytes.Load(),
		"shedded_events":        s.SheddedEvents.Load(),
		"hybrid_switches":       s.Switches.Load(),
		"agg_windows":           s.AggWindows.Load(),
		"agg_revisions":         s.AggRevisions.Load(),
		"agg_inserts":           s.AggInserts.Load(),
		"agg_finger_hits":       s.AggFingerHits.Load(),
		"agg_tree_height":       s.AggTreeHeight.Load(),
		"agg_elements":          s.AggElements.Load(),
		"current_k":             s.CurrentK.Load(),
		"max_k":                 s.CurrentK.Peak(),
		"degraded":              s.Degraded.Load(),
		"watermark_lag_mean_ms": lag.Mean(),
		"watermark_lag_max_ms":  lag.Max,
		"latency_mean_ms":       lat.Mean(),
		"latency_max_ms":        lat.Max,
		"spans_sampled":         s.SpansSampled.Load(),
		"spans_abandoned":       s.SpansAbandoned.Load(),
		"spans_dropped":         s.SpansDropped.Load(),
		"wall_latency_count":    wall.Count,
		"wall_latency_mean_us":  wall.Mean(),
		"wall_latency_p95_us":   wall.Quantile(0.95),
		"wall_latency_max_us":   wall.Max,
		"queue_depth":           s.QueueDepth.Load(),
		"queue_depth_peak":      s.QueueDepth.Peak(),
		"blocked_pushes":        s.BlockedPushes.Load(),
		"full_rejects":          s.FullRejects.Load(),
	}
}

// promCounters maps Prometheus metric names to series counters; the order
// is the rendering order.
var promCounters = []struct {
	metric string
	help   string
	load   func(*Series) uint64
}{
	{"oostream_events_in_total", "Pattern-relevant events ingested", func(s *Series) uint64 { return s.EventsIn.Load() }},
	{"oostream_events_ooo_total", "Events that arrived out of timestamp order (within the bound)", func(s *Series) uint64 { return s.EventsOOO.Load() }},
	{"oostream_events_late_total", "Events that violated the disorder bound K", func(s *Series) uint64 { return s.EventsLate.Load() }},
	{"oostream_events_irrelevant_total", "Events whose type the pattern does not mention", func(s *Series) uint64 { return s.Irrelevant.Load() }},
	{"oostream_matches_total", "Insert matches emitted", func(s *Series) uint64 { return s.Matches.Load() }},
	{"oostream_retractions_total", "Retract compensations emitted", func(s *Series) uint64 { return s.Retractions.Load() }},
	{"oostream_pred_errors_total", "Predicate evaluation errors (treated as non-match)", func(s *Series) uint64 { return s.PredErrors.Load() }},
	{"oostream_purged_total", "State items reclaimed by purge passes", func(s *Series) uint64 { return s.Purged.Load() }},
	{"oostream_purge_calls_total", "Purge passes that reclaimed at least one item", func(s *Series) uint64 { return s.PurgeCalls.Load() }},
	{"oostream_probes_total", "Construction probes triggered", func(s *Series) uint64 { return s.Probes.Load() }},
	{"oostream_empty_probes_total", "Construction probes that enumerated no match", func(s *Series) uint64 { return s.EmptyProbes.Load() }},
	{"oostream_repairs_total", "Predecessor (RIP) pointer repairs caused by out-of-order insertion", func(s *Series) uint64 { return s.Repairs.Load() }},
	{"oostream_events_dropped_total", "Events rejected by admission control", func(s *Series) uint64 { return s.Dropped.Load() }},
	{"oostream_events_dead_lettered_total", "Events routed to the dead-letter channel", func(s *Series) uint64 { return s.DeadLettered.Load() }},
	{"oostream_duplicates_suppressed_total", "Duplicate events and replayed emissions suppressed", func(s *Series) uint64 { return s.DupSuppressed.Load() }},
	{"oostream_restarts_total", "Supervised restarts from a checkpoint after a panic", func(s *Series) uint64 { return s.Restarts.Load() }},
	{"oostream_checkpoints_total", "Durable checkpoints written", func(s *Series) uint64 { return s.Checkpoints.Load() }},
	{"oostream_lineage_records_total", "Lineage records built by the provenance layer", func(s *Series) uint64 { return s.LineageRecords.Load() }},
	{"oostream_shedded_events_total", "Events discarded by overload degradation (Limits policy)", func(s *Series) uint64 { return s.SheddedEvents.Load() }},
	{"oostream_hybrid_switches_total", "Hybrid meta-engine strategy switches", func(s *Series) uint64 { return s.Switches.Load() }},
	{"oostream_agg_windows_total", "Aggregate window values emitted", func(s *Series) uint64 { return s.AggWindows.Load() }},
	{"oostream_agg_revisions_total", "Speculative aggregate revisions (retract+insert pairs)", func(s *Series) uint64 { return s.AggRevisions.Load() }},
	{"oostream_agg_inserts_total", "Elements inserted into the aggregation tree", func(s *Series) uint64 { return s.AggInserts.Load() }},
	{"oostream_agg_finger_hits_total", "Aggregation-tree inserts that landed in a finger leaf", func(s *Series) uint64 { return s.AggFingerHits.Load() }},
	{"oostream_spans_sampled_total", "Wall-latency spans opened by the sampler", func(s *Series) uint64 { return s.SpansSampled.Load() }},
	{"oostream_spans_abandoned_total", "Wall-latency spans abandoned (dropped/shed events)", func(s *Series) uint64 { return s.SpansAbandoned.Load() }},
	{"oostream_spans_dropped_total", "Wall-latency spans dropped at open (slot table full)", func(s *Series) uint64 { return s.SpansDropped.Load() }},
	{"oostream_ring_blocked_pushes_total", "Producer pushes that parked on a full ring", func(s *Series) uint64 { return s.BlockedPushes.Load() }},
	{"oostream_ring_full_rejects_total", "Non-blocking ring pushes rejected because the ring was full", func(s *Series) uint64 { return s.FullRejects.Load() }},
}

// promGauges maps Prometheus gauge names to series gauges.
var promGauges = []struct {
	metric string
	help   string
	load   func(*Series) int64
}{
	{"oostream_state_live", "Live buffered items (stack instances, negatives, pending matches)", func(s *Series) int64 { return s.LiveState.Load() }},
	{"oostream_state_peak", "Peak of oostream_state_live", func(s *Series) int64 { return s.LiveState.Peak() }},
	{"oostream_key_groups", "Live key-partitioned stack groups (0 when unkeyed)", func(s *Series) int64 { return s.KeyGroups.Load() }},
	{"oostream_key_groups_peak", "Peak of oostream_key_groups", func(s *Series) int64 { return s.KeyGroups.Peak() }},
	{"oostream_checkpoint_bytes", "Size of the most recent durable checkpoint", func(s *Series) int64 { return s.CheckpointBytes.Load() }},
	{"oostream_checkpoint_duration_ns", "Wall time of the most recent durable checkpoint", func(s *Series) int64 { return s.CheckpointNanos.Load() }},
	{"oostream_lineage_live", "Lineage records currently retained by pending matches", func(s *Series) int64 { return s.LineageLive.Load() }},
	{"oostream_lineage_bytes", "Estimated heap retained by live lineage records", func(s *Series) int64 { return s.LineageBytes.Load() }},
	{"oostream_current_k", "Effective disorder bound being enforced (logical ms)", func(s *Series) int64 { return s.CurrentK.Load() }},
	{"oostream_max_k", "Largest effective disorder bound ever enforced", func(s *Series) int64 { return s.CurrentK.Peak() }},
	{"oostream_degraded", "1 while overload degradation is shedding events", func(s *Series) int64 { return s.Degraded.Load() }},
	{"oostream_agg_tree_height", "Tallest live aggregation tree across groups", func(s *Series) int64 { return s.AggTreeHeight.Load() }},
	{"oostream_agg_elements", "Live aggregation-tree elements across all groups", func(s *Series) int64 { return s.AggElements.Load() }},
	{"oostream_queue_depth", "Live ring/feed occupancy (events waiting for a consumer)", func(s *Series) int64 { return s.QueueDepth.Load() }},
	{"oostream_queue_depth_peak", "Peak of oostream_queue_depth", func(s *Series) int64 { return s.QueueDepth.Peak() }},
}

// promHists maps Prometheus histogram names to series histograms.
var promHists = []struct {
	metric string
	help   string
	view   func(*Series) HistView
}{
	{"oostream_result_latency_ms", "Logical result latency: emission clock minus the match's last timestamp", func(s *Series) HistView { return s.LogicalLat.View() }},
	{"oostream_arrival_latency_events", "Arrivals between a match's completion and its emission", func(s *Series) HistView { return s.ArrivalLat.View() }},
	{"oostream_watermark_lag_ms", "Per-event lag behind the watermark (max timestamp seen)", func(s *Series) HistView { return s.WatermarkLag.View() }},
}

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4), one {engine="<name>"} label per
// series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var snaps []*Series
	r.Each(func(s *Series) { snaps = append(snaps, s) })

	for _, c := range promCounters {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", c.metric, c.help, c.metric); err != nil {
			return err
		}
		for _, s := range snaps {
			if _, err := fmt.Fprintf(w, "%s{engine=%q} %d\n", c.metric, s.Name(), c.load(s)); err != nil {
				return err
			}
		}
	}
	for _, g := range promGauges {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", g.metric, g.help, g.metric); err != nil {
			return err
		}
		for _, s := range snaps {
			if _, err := fmt.Fprintf(w, "%s{engine=%q} %d\n", g.metric, s.Name(), g.load(s)); err != nil {
				return err
			}
		}
	}
	for _, h := range promHists {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.metric, h.help, h.metric); err != nil {
			return err
		}
		for _, s := range snaps {
			if err := writePromHist(w, h.metric, s.Name(), "", h.view(s)); err != nil {
				return err
			}
		}
	}
	// Wall-clock latency families render only for series the sampler
	// populated: with sampling off they would be all-zero noise on every
	// engine.
	if err := writeWallHists(w, snaps); err != nil {
		return err
	}
	r.mu.RLock()
	extras := append([]func(io.Writer) error(nil), r.prom...)
	r.mu.RUnlock()
	for _, fn := range extras {
		if err := fn(w); err != nil {
			return err
		}
	}
	return nil
}

// writeWallHists renders the sampled wall/stage histograms, skipping
// series with no observations.
func writeWallHists(w io.Writer, snaps []*Series) error {
	const wallMetric = "oostream_wall_latency_us"
	wroteHelp := false
	for _, s := range snaps {
		v := s.WallLat.View()
		if v.Count == 0 {
			continue
		}
		if !wroteHelp {
			if _, err := fmt.Fprintf(w, "# HELP %s End-to-end wall-clock latency of sampled events\n# TYPE %s histogram\n", wallMetric, wallMetric); err != nil {
				return err
			}
			wroteHelp = true
		}
		if err := writePromHist(w, wallMetric, s.Name(), "", v); err != nil {
			return err
		}
	}
	const stageMetric = "oostream_stage_latency_us"
	wroteHelp = false
	for _, s := range snaps {
		for st := Stage(0); st < NumStages; st++ {
			v := s.StageLat[st].View()
			if v.Count == 0 {
				continue
			}
			if !wroteHelp {
				if _, err := fmt.Fprintf(w, "# HELP %s Per-stage wall-clock latency of sampled events\n# TYPE %s histogram\n", stageMetric, stageMetric); err != nil {
					return err
				}
				wroteHelp = true
			}
			if err := writePromHist(w, stageMetric, s.Name(), st.String(), v); err != nil {
				return err
			}
		}
	}
	return nil
}

// writePromHist renders one histogram in cumulative le-bucket form. The
// power-of-two layout maps bucket i to le = 2^i − 1; empty high buckets
// past the max observation collapse into +Inf. stage, when non-empty,
// adds a stage label (the per-stage wall-latency family).
//
// Edge cases this guards deliberately (see obsv_test.go):
//   - an empty histogram renders one le="0" bucket and zero counts —
//     still a well-formed family, never skipped mid-series;
//   - the max bucket (bit length 64) relies on Go shift semantics:
//     1<<64 on uint64 is 0, so le = 0−1 = MaxUint64 — exactly bucket
//     64's true inclusive upper bound, not an accident to "fix";
//   - the +Inf cumulative count must agree with _count, but a scrape
//     racing the writer can observe a bucket increment before the count
//     increment; render the max of the two so cumulative buckets are
//     monotone as Prometheus requires.
func writePromHist(w io.Writer, metric, engine, stage string, v HistView) error {
	labels := fmt.Sprintf("engine=%q", engine)
	if stage != "" {
		labels = fmt.Sprintf("engine=%q,stage=%q", engine, stage)
	}
	top := bits.Len64(v.Max)
	var cum uint64
	for i := 0; i <= top; i++ {
		cum += v.Buckets[i]
		le := uint64(1)<<uint(i) - 1
		if _, err := fmt.Fprintf(w, "%s_bucket{%s,le=\"%d\"} %d\n", metric, labels, le, cum); err != nil {
			return err
		}
	}
	inf := v.Count
	if cum > inf {
		inf = cum
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", metric, labels, inf); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum{%s} %d\n", metric, labels, v.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count{%s} %d\n", metric, labels, inf)
	return err
}
