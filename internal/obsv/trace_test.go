package obsv

import (
	"strings"
	"sync"
	"testing"
)

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(3)
	for i := 1; i <= 5; i++ {
		f.Trace(TraceEvent{Op: OpAdmit, N: i})
	}
	got := f.Dump()
	if len(got) != 3 {
		t.Fatalf("dump len = %d, want 3", len(got))
	}
	for i, want := range []int{3, 4, 5} {
		if got[i].N != want {
			t.Fatalf("dump[%d].N = %d, want %d (oldest first)", i, got[i].N, want)
		}
	}
	if f.Total() != 5 {
		t.Fatalf("total = %d, want 5", f.Total())
	}
}

func TestFlightRecorderPartial(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Trace(TraceEvent{Op: OpEmit})
	f.Trace(TraceEvent{Op: OpPurge})
	got := f.Dump()
	if len(got) != 2 || got[0].Op != OpEmit || got[1].Op != OpPurge {
		t.Fatalf("dump = %v", got)
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(16)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				f.Trace(TraceEvent{Op: OpStackPush, N: i})
			}
		}()
	}
	wg.Wait()
	if f.Total() != 4000 {
		t.Fatalf("total = %d", f.Total())
	}
	if len(f.Dump()) != 16 {
		t.Fatalf("dump len = %d", len(f.Dump()))
	}
}

func TestTraceWriteTo(t *testing.T) {
	f := NewFlightRecorder(4)
	f.Trace(TraceEvent{Op: OpEmit, Engine: "native", Type: "EXIT", TS: 42, Seq: 7, N: 2})
	var b strings.Builder
	if _, err := f.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "emit") || !strings.Contains(b.String(), "engine=native") {
		t.Fatalf("dump text = %q", b.String())
	}
}

func TestOpStrings(t *testing.T) {
	ops := []Op{OpAdmit, OpDrop, OpStackPush, OpRepair, OpTrigger, OpEmit,
		OpRetract, OpPurge, OpHeartbeat, OpCheckpoint, OpRestart, OpFlush}
	seen := map[string]bool{}
	for _, op := range ops {
		s := op.String()
		if s == "" || seen[s] {
			t.Fatalf("op %d has bad/duplicate name %q", op, s)
		}
		seen[s] = true
	}
	if Op(99).String() != "op(99)" {
		t.Fatalf("unknown op = %q", Op(99).String())
	}
}

func TestMultiHookAndTraceFunc(t *testing.T) {
	var a, b int
	m := MultiHook{TraceFunc(func(TraceEvent) { a++ }), nil, TraceFunc(func(TraceEvent) { b++ })}
	m.Trace(TraceEvent{Op: OpAdmit})
	if a != 1 || b != 1 {
		t.Fatalf("multi hook fanout a=%d b=%d", a, b)
	}
}
