package obsv

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"oostream/internal/event"
)

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(3)
	for i := 1; i <= 5; i++ {
		f.Trace(TraceEvent{Op: OpAdmit, N: i})
	}
	got := f.Dump()
	if len(got) != 3 {
		t.Fatalf("dump len = %d, want 3", len(got))
	}
	for i, want := range []int{3, 4, 5} {
		if got[i].N != want {
			t.Fatalf("dump[%d].N = %d, want %d (oldest first)", i, got[i].N, want)
		}
	}
	if f.Total() != 5 {
		t.Fatalf("total = %d, want 5", f.Total())
	}
}

// TestFlightRecorderWrapOrder pins Dump's oldest-first ordering around
// the ring's wrap boundary: exactly at capacity (next has wrapped to 0,
// so the buffer IS the ordered dump), one past capacity (the dump starts
// mid-buffer), and cases on either side. WriteTo and WriteJSON must
// stream the same order Dump returns.
func TestFlightRecorderWrapOrder(t *testing.T) {
	const capacity = 4
	tests := []struct {
		name string
		n    int // events traced, numbered 1..n
		want []int
	}{
		{"under capacity", 3, []int{1, 2, 3}},
		{"exactly capacity", capacity, []int{1, 2, 3, 4}},
		{"capacity plus one", capacity + 1, []int{2, 3, 4, 5}},
		{"two full wraps", 2*capacity + 2, []int{7, 8, 9, 10}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			f := NewFlightRecorder(capacity)
			for i := 1; i <= tt.n; i++ {
				f.Trace(TraceEvent{Op: OpAdmit, Seq: event.Seq(i), N: i})
			}
			got := f.Dump()
			if len(got) != len(tt.want) {
				t.Fatalf("dump len = %d, want %d", len(got), len(tt.want))
			}
			for i, want := range tt.want {
				if got[i].N != want {
					t.Fatalf("dump[%d].N = %d, want %d (oldest first)", i, got[i].N, want)
				}
			}

			// WriteTo streams the same order.
			var text strings.Builder
			if _, err := f.WriteTo(&text); err != nil {
				t.Fatal(err)
			}
			lines := nonEmptyLines(text.String())
			if len(lines) != len(tt.want) {
				t.Fatalf("WriteTo emitted %d lines, want %d", len(lines), len(tt.want))
			}
			for i, want := range tt.want {
				if !strings.Contains(lines[i], fmt.Sprintf("n=%d", want)) {
					t.Errorf("WriteTo line %d = %q, want n=%d", i, lines[i], want)
				}
			}

			// WriteJSON streams the same order, decodably.
			var jsonl strings.Builder
			if err := f.WriteJSON(&jsonl); err != nil {
				t.Fatal(err)
			}
			jlines := nonEmptyLines(jsonl.String())
			if len(jlines) != len(tt.want) {
				t.Fatalf("WriteJSON emitted %d lines, want %d", len(jlines), len(tt.want))
			}
			for i, want := range tt.want {
				var te TraceEvent
				if err := json.Unmarshal([]byte(jlines[i]), &te); err != nil {
					t.Fatalf("WriteJSON line %d not JSON: %v", i, err)
				}
				if te.N != want || te.Op != OpAdmit {
					t.Errorf("WriteJSON line %d = %+v, want N=%d", i, te, want)
				}
			}
		})
	}
}

func nonEmptyLines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.TrimSpace(l) != "" {
			out = append(out, l)
		}
	}
	return out
}

func TestFlightRecorderPartial(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Trace(TraceEvent{Op: OpEmit})
	f.Trace(TraceEvent{Op: OpPurge})
	got := f.Dump()
	if len(got) != 2 || got[0].Op != OpEmit || got[1].Op != OpPurge {
		t.Fatalf("dump = %v", got)
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(16)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				f.Trace(TraceEvent{Op: OpStackPush, N: i})
			}
		}()
	}
	wg.Wait()
	if f.Total() != 4000 {
		t.Fatalf("total = %d", f.Total())
	}
	if len(f.Dump()) != 16 {
		t.Fatalf("dump len = %d", len(f.Dump()))
	}
}

func TestTraceWriteTo(t *testing.T) {
	f := NewFlightRecorder(4)
	f.Trace(TraceEvent{Op: OpEmit, Engine: "native", Type: "EXIT", TS: 42, Seq: 7, N: 2})
	var b strings.Builder
	if _, err := f.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "emit") || !strings.Contains(b.String(), "engine=native") {
		t.Fatalf("dump text = %q", b.String())
	}
}

func TestOpStrings(t *testing.T) {
	ops := []Op{OpAdmit, OpDrop, OpStackPush, OpRepair, OpTrigger, OpEmit,
		OpRetract, OpPurge, OpHeartbeat, OpCheckpoint, OpRestart, OpFlush}
	seen := map[string]bool{}
	for _, op := range ops {
		s := op.String()
		if s == "" || seen[s] {
			t.Fatalf("op %d has bad/duplicate name %q", op, s)
		}
		seen[s] = true
	}
	if Op(99).String() != "op(99)" {
		t.Fatalf("unknown op = %q", Op(99).String())
	}
}

func TestMultiHookAndTraceFunc(t *testing.T) {
	var a, b int
	m := MultiHook{TraceFunc(func(TraceEvent) { a++ }), nil, TraceFunc(func(TraceEvent) { b++ })}
	m.Trace(TraceEvent{Op: OpAdmit})
	if a != 1 || b != 1 {
		t.Fatalf("multi hook fanout a=%d b=%d", a, b)
	}
}
