package obsv

import (
	"io"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock replaces nowNanos with a manually advanced clock and returns
// (advance, restore). Tests using it must not run in parallel.
func fakeClock() (advance func(time.Duration), restore func()) {
	saved := nowNanos
	var now int64
	nowNanos = func() int64 { return now }
	return func(d time.Duration) { now += int64(d) }, func() { nowNanos = saved }
}

// TestStageSumEqualsWall drives one span through five stage boundaries on
// a fake clock and checks the accounting identity the package doc
// promises: the per-stage sums add up to the end-to-end wall time exactly
// (whole-microsecond durations, so no truncation slack is needed).
func TestStageSumEqualsWall(t *testing.T) {
	advance, restore := fakeClock()
	defer restore()

	ls := NewLatencySampler(1, NewSeries("t"), nil)
	ls.Begin(0)
	advance(5 * time.Microsecond)
	ls.StageEnd(0, StageQueue)
	advance(11 * time.Microsecond)
	ls.StageEnd(0, StageBuffer)
	advance(7 * time.Microsecond)
	ls.StageEnd(0, StageWAL)
	advance(23 * time.Microsecond)
	ls.StageEnd(0, StageConstruct)
	advance(3 * time.Microsecond)
	ls.Finish(0) // tail → StageEmit

	r := ls.Report()
	if r.Wall.Count != 1 || r.Wall.SumUs != 49 {
		t.Fatalf("wall = %+v, want count 1 sum 49", r.Wall)
	}
	want := map[string]uint64{"queue": 5, "buffer": 11, "wal": 7, "construct": 23, "emit": 3}
	if len(r.Stages) != len(want) {
		t.Fatalf("stages %v, want %d entries", r.Stages, len(want))
	}
	var sum uint64
	for name, us := range want {
		st, ok := r.Stages[name]
		if !ok || st.SumUs != us {
			t.Errorf("stage %q = %+v, want sum %d", name, st, us)
		}
		sum += st.SumUs
	}
	if sum != r.Wall.SumUs {
		t.Fatalf("stage sum %d != wall %d", sum, r.Wall.SumUs)
	}
}

// TestSamplingDeterministic pins the sampling decision: a pure function of
// Seq, SampleEvery rounded up to a power of two.
func TestSamplingDeterministic(t *testing.T) {
	ls := NewLatencySampler(100, NewSeries("t"), nil)
	if got := ls.SampleEvery(); got != 128 {
		t.Fatalf("SampleEvery() = %d, want 128 (100 rounded up)", got)
	}
	for seq := uint64(0); seq < 1024; seq++ {
		if got, want := ls.Sampled(seq), seq%128 == 0; got != want {
			t.Fatalf("Sampled(%d) = %v, want %v", seq, got, want)
		}
	}
	var nilLS *LatencySampler
	if nilLS.Sampled(0) || nilLS.SampleEvery() != 0 {
		t.Fatal("nil sampler must sample nothing")
	}
}

// TestBeginFirstWins checks the outermost-layer-wins claim: a second Begin
// on a live seq neither re-anchors the span nor double-counts it.
func TestBeginFirstWins(t *testing.T) {
	advance, restore := fakeClock()
	defer restore()

	ls := NewLatencySampler(1, NewSeries("t"), nil)
	ls.Begin(7)
	advance(10 * time.Microsecond)
	ls.Begin(7) // inner layer: no-op
	advance(5 * time.Microsecond)
	ls.Finish(7)

	r := ls.Report()
	if r.SpansSampled != 1 {
		t.Fatalf("SpansSampled = %d, want 1", r.SpansSampled)
	}
	if r.Wall.SumUs != 15 {
		t.Fatalf("wall sum %d, want 15 (anchored at the first Begin)", r.Wall.SumUs)
	}
}

// TestHoldFinishHeldAbandon exercises the buffering protocol: Hold makes
// the outer Finish a no-op, FinishHeld closes regardless, Abandon frees
// without observing.
func TestHoldFinishHeldAbandon(t *testing.T) {
	advance, restore := fakeClock()
	defer restore()

	ls := NewLatencySampler(1, NewSeries("t"), nil)

	ls.Begin(1)
	ls.Hold(1)
	advance(time.Microsecond)
	ls.Finish(1) // held: must not close
	if r := ls.Report(); r.Wall.Count != 0 {
		t.Fatalf("held span closed by Finish: %+v", r.Wall)
	}
	advance(time.Microsecond)
	ls.FinishHeld(1)
	if r := ls.Report(); r.Wall.Count != 1 || r.Wall.SumUs != 2 {
		t.Fatalf("FinishHeld: wall %+v, want count 1 sum 2", r.Wall)
	}

	ls.Begin(2)
	advance(time.Microsecond)
	ls.Abandon(2)
	r := ls.Report()
	if r.SpansAbandoned != 1 {
		t.Fatalf("SpansAbandoned = %d, want 1", r.SpansAbandoned)
	}
	if r.Wall.Count != 1 {
		t.Fatalf("abandoned span polluted the wall histogram: %+v", r.Wall)
	}
	// The slot is free again: a new span for the same seq works.
	ls.Begin(2)
	advance(3 * time.Microsecond)
	ls.Finish(2)
	if r := ls.Report(); r.Wall.Count != 2 {
		t.Fatalf("slot not reusable after Abandon: %+v", r.Wall)
	}
}

// TestStageIntoMirrors checks per-query attribution: the duration lands in
// the sampler's own series (preserving wall = Σ stages) and is copied into
// the extra series; passing the sampler's own series must not double count.
func TestStageIntoMirrors(t *testing.T) {
	advance, restore := fakeClock()
	defer restore()

	own := NewSeries("own")
	per := NewSeries("per")
	ls := NewLatencySampler(1, own, nil)

	ls.Begin(0)
	advance(4 * time.Microsecond)
	ls.StageInto(per, 0, StageConstruct)
	advance(6 * time.Microsecond)
	ls.StageInto(own, 0, StageConstruct) // same series: one observation
	ls.Finish(0)

	if got := own.StageLat[StageConstruct].View(); got.Count != 2 || got.Sum != 10 {
		t.Fatalf("own construct = %+v, want count 2 sum 10", got)
	}
	if got := per.StageLat[StageConstruct].View(); got.Count != 1 || got.Sum != 4 {
		t.Fatalf("mirrored construct = %+v, want count 1 sum 4", got)
	}
	if r := ls.Report(); r.Wall.SumUs != 10 {
		t.Fatalf("wall sum %d, want 10", r.Wall.SumUs)
	}
}

// TestSlotTableOverflow opens more concurrent spans than the table can
// hold and checks the overflow is counted, not silently lost: every Begin
// is accounted either sampled or dropped, and dropped events proceed
// unmeasured (StageEnd/Finish on them are no-ops).
func TestSlotTableOverflow(t *testing.T) {
	ls := NewLatencySampler(1, NewSeries("t"), nil)
	const n = 4 * slotCount
	for seq := uint64(0); seq < n; seq++ {
		ls.Begin(seq)
	}
	r := ls.Report()
	if r.SpansDropped == 0 {
		t.Fatal("expected drops with 4x slotCount live spans")
	}
	if r.SpansSampled+r.SpansDropped != n {
		t.Fatalf("sampled %d + dropped %d != %d begins", r.SpansSampled, r.SpansDropped, n)
	}
	// Closing a dropped span is a harmless no-op; closing the live ones
	// must observe exactly the live population.
	for seq := uint64(0); seq < n; seq++ {
		ls.StageEnd(seq, StageConstruct)
		ls.Finish(seq)
	}
	if got := ls.Report(); got.Wall.Count != r.SpansSampled {
		t.Fatalf("wall count %d, want %d (live spans)", got.Wall.Count, r.SpansSampled)
	}
}

// TestNilSamplerSafe calls every method on a nil receiver — the off
// configuration — and checks nothing panics and Report is nil.
func TestNilSamplerSafe(t *testing.T) {
	var ls *LatencySampler
	ls.Begin(0)
	ls.StageEnd(0, StageConstruct)
	ls.StageInto(NewSeries("x"), 0, StageConstruct)
	ls.Hold(0)
	ls.Finish(0)
	ls.FinishHeld(0)
	ls.Abandon(0)
	if ls.Report() != nil || ls.Series() != nil || ls.SLO() != nil {
		t.Fatal("nil sampler must report nil")
	}
}

// TestQuantileEdges pins the bucket-edge quantile convention, including
// the bit-length-64 bucket whose upper bound relies on shift wraparound.
func TestQuantileEdges(t *testing.T) {
	var v HistView
	if v.Quantile(0.5) != 0 {
		t.Fatal("empty view quantile must be 0")
	}
	var h Hist
	h.Observe(0)
	h.Observe(3)
	h.Observe(math.MaxUint64)
	view := h.View()
	if got := view.Quantile(0.5); got != 3 {
		t.Fatalf("p50 = %d, want 3 (bucket upper bound)", got)
	}
	if got := view.Quantile(1); got != math.MaxUint64 {
		t.Fatalf("p100 = %d, want MaxUint64", got)
	}
	if got := view.Quantile(0.99); got != math.MaxUint64 {
		t.Fatalf("p99 = %d, want MaxUint64 (rank lands in bucket 64)", got)
	}
}

// TestSLOTrackerWindows marches a fake clock through bucket recycling and
// checks window sums, good ratios, and burn-rate normalization.
func TestSLOTrackerWindows(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{
		Objective: time.Millisecond,
		Target:    0.9,
		Windows:   []time.Duration{5 * time.Second, time.Minute},
	})
	var now int64
	tr.now = func() int64 { return now }

	// Seconds 0..9: one good and one bad observation per second.
	for s := 0; s < 10; s++ {
		now = int64(s) * int64(time.Second)
		tr.Observe(int64(500 * time.Microsecond)) // good
		tr.Observe(int64(2 * time.Millisecond))   // bad
	}
	snap := tr.Snapshot()
	if snap.ObjectiveMs != 1 || snap.Target != 0.9 {
		t.Fatalf("config round-trip: %+v", snap)
	}
	w5 := snap.Windows[0]
	if w5.Window != "5s" || w5.Good != 5 || w5.Bad != 5 {
		t.Fatalf("5s window = %+v, want 5 good 5 bad", w5)
	}
	if w5.GoodRatio != 0.5 || math.Abs(w5.BurnRate-5.0) > 1e-9 {
		t.Fatalf("5s ratio/burn = %v/%v, want 0.5/5.0", w5.GoodRatio, w5.BurnRate)
	}
	w60 := snap.Windows[1]
	if w60.Window != "1m" || w60.Good != 10 || w60.Bad != 10 {
		t.Fatalf("1m window = %+v, want 10 good 10 bad", w60)
	}

	// Jump far ahead: everything ages out; an empty window reads ratio 1,
	// burn 0.
	now = int64(time.Hour)
	w := tr.Snapshot().Windows[1]
	if w.Good != 0 || w.Bad != 0 || w.GoodRatio != 1 || w.BurnRate != 0 {
		t.Fatalf("aged-out window = %+v", w)
	}

	if NewSLOTracker(SLOConfig{}) != nil {
		t.Fatal("zero objective must disable the tracker")
	}
	var nilTr *SLOTracker
	nilTr.Observe(1)
	if nilTr.Snapshot() != nil {
		t.Fatal("nil tracker must snapshot nil")
	}
}

// TestSLOPrometheus checks the registered exposition block renders both
// families with engine and window labels.
func TestSLOPrometheus(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{Objective: time.Millisecond, Target: 0.99})
	var now int64
	tr.now = func() int64 { return now }
	tr.Observe(int64(time.Microsecond))

	var sb strings.Builder
	if err := tr.WritePrometheus(&sb, "latency"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE oostream_slo_burn_rate gauge",
		`oostream_slo_burn_rate{engine="latency",window="1m"} 0`,
		`oostream_slo_good_ratio{engine="latency",window="30m"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

// TestConcurrentObserveAndScrape races span writers against Report and
// the Prometheus scrape — the -race exercise for the sampler's atomics
// and the SLO bucket recycling.
func TestConcurrentObserveAndScrape(t *testing.T) {
	reg := NewRegistry()
	series := reg.Series("latency")
	slo := NewSLOTracker(SLOConfig{Objective: time.Millisecond, Target: 0.99})
	ls := NewLatencySampler(4, series, slo)
	reg.RegisterPrometheus(func(w io.Writer) error { return slo.WritePrometheus(w, "latency") })

	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for seq := uint64(g * 100_000); seq < uint64(g*100_000+20_000); seq++ {
				ls.Begin(seq)
				ls.StageEnd(seq, StageQueue)
				ls.StageEnd(seq, StageConstruct)
				if seq%32 == 0 {
					ls.Abandon(seq)
				} else {
					ls.Finish(seq)
				}
			}
		}(g)
	}
	stop := make(chan struct{})
	scraper := make(chan struct{})
	go func() {
		defer close(scraper)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = ls.Report()
			_ = reg.WritePrometheus(io.Discard)
		}
	}()
	writers.Wait()
	close(stop)
	<-scraper
}

// TestSamplerZeroAllocations pins the zero-cost claims (E22's structural
// half): the nil receiver (sampling off), the non-sampled fast path, and
// the sampled span protocol itself all allocate nothing per event — the
// slot table is fixed and every instrument is an atomic word.
func TestSamplerZeroAllocations(t *testing.T) {
	var off *LatencySampler
	if a := testing.AllocsPerRun(200, func() {
		off.Begin(3)
		off.StageEnd(3, StageConstruct)
		off.Finish(3)
	}); a != 0 {
		t.Fatalf("nil sampler allocated %v per event", a)
	}
	ls := NewLatencySampler(256, NewSeries("t"), nil)
	if a := testing.AllocsPerRun(200, func() {
		ls.Begin(3) // 3 & 255 != 0: not sampled
		ls.StageEnd(3, StageConstruct)
		ls.Finish(3)
	}); a != 0 {
		t.Fatalf("non-sampled path allocated %v per event", a)
	}
	var seq uint64
	if a := testing.AllocsPerRun(200, func() {
		ls.Begin(seq)
		ls.StageEnd(seq, StageConstruct)
		ls.Finish(seq)
		seq += 256
	}); a != 0 {
		t.Fatalf("sampled span protocol allocated %v per span", a)
	}
}
