// Wall-clock latency attribution: a sampled span pipeline decomposing the
// real (wall-clock) path an event takes through the engine into stage
// durations, complementing the logical instruments (result latency,
// watermark lag) that measure stream time.
//
// The design is built around three constraints:
//
//   - Zero cost when off. A nil *LatencySampler is a valid receiver for
//     every method; each call site pays one predictable nil-check branch
//     and allocates nothing. Call sites are therefore unconditional —
//     there is a single code path whether sampling is on or off, which is
//     what makes the on/off differential (identical match output) hold
//     structurally rather than by luck.
//   - Deterministic sampling. Whether an event is sampled is a pure
//     function of its Seq (seq & mask == 0 with SampleEvery rounded up to
//     a power of two), never of time or randomness, so two runs over the
//     same stream sample the same events and the decision cannot perturb
//     engine behavior.
//   - Allocation-free spans. Live spans occupy a fixed open-addressed
//     slot table keyed by Seq; when the table is full the span is counted
//     dropped and the event proceeds unmeasured. All slot fields are
//     atomics: spans legally cross goroutines (router → shard consumer)
//     and scrapes race writers by design.
//
// # Span protocol
//
//	Begin(seq)            first-wins: claims a slot at ingest (outermost
//	                      layer wins; inner Begins on a live seq are no-ops)
//	StageEnd(seq, stage)  folds (now − last) into the stage histogram and
//	                      advances last; a stage may be stamped repeatedly
//	                      (WAL append + commit) — the sum is preserved
//	Hold(seq)             marks the span as buffered (kslack residency,
//	                      shared-admission buffer): the outer Finish
//	                      becomes a no-op so a still-buffered span is not
//	                      closed early
//	Finish(seq)           unless held: folds the tail into StageEmit,
//	                      observes end-to-end wall latency, feeds the SLO
//	                      tracker, frees the slot
//	FinishHeld(seq)       Finish that ignores the held bit — called by the
//	                      buffering layer when it releases the event
//	Abandon(seq)          frees the slot without observing (dropped, shed,
//	                      or admission-rejected events must not pollute
//	                      the wall histogram)
//
// Because Finish folds the residual tail into StageEmit, the stage sums
// equal the end-to-end wall time exactly (up to integer-microsecond
// truncation per stage): attribution is an accounting identity, not an
// approximation.
package obsv

import (
	"math"
	"sync/atomic"
	"time"
)

// Stage names one segment of a sampled event's wall-clock journey.
type Stage uint8

// Stages, in pipeline order.
const (
	// StageQueue is ring/channel wait: push into a shard feed (or batch
	// linger) until the consumer pops it.
	StageQueue Stage = iota
	// StageBuffer is reorder-buffer residency: kslack/adaptive buffering or
	// the QuerySet shared-admission buffer, from admission to release.
	StageBuffer
	// StageWAL is durability work in the supervised runtime: write-ahead
	// append plus commit recording.
	StageWAL
	// StageConstruct is strategy-engine processing: admission checks, stack
	// insertion, match construction and sealing.
	StageConstruct
	// StageEmit is everything after construction until the span closes:
	// delivery, merge-send, downstream channel backpressure. It is the
	// residual tail folded in at Finish, which is what makes the stage sum
	// equal the wall total.
	StageEmit
	// NumStages sizes per-stage arrays.
	NumStages
)

var stageNames = [NumStages]string{"queue", "buffer", "wal", "construct", "emit"}

// String returns the stage's label ("queue", "buffer", "wal", "construct",
// "emit").
func (st Stage) String() string {
	if st < NumStages {
		return stageNames[st]
	}
	return "unknown"
}

// baseTime anchors nowNanos: time.Since reads the monotonic clock and a
// duration-since-base fits int64 for centuries, with no allocation.
var baseTime = time.Now()

// nowNanos is the span clock: monotonic nanoseconds since process start.
// A variable so tests can substitute a fake clock.
var nowNanos = func() int64 { return int64(time.Since(baseTime)) }

// Slot-table geometry. 1024 live sampled spans is far above any real
// in-flight population (spans live for one event's pipeline transit);
// probeLen bounds the collision scan so lookup cost is constant.
const (
	slotCount = 1024
	probeLen  = 8
)

// latencySlot is one live span. key is the event's Seq+1 (0 = free); all
// fields are atomics because a span crosses the router→consumer ring
// handoff and races concurrent scrapes.
type latencySlot struct {
	key   atomic.Uint64
	start atomic.Int64
	last  atomic.Int64
	held  atomic.Uint32
}

// LatencySampler owns the span slot table and publishes stage and wall
// histograms into a Series (plus an optional SLO tracker). All methods are
// safe on a nil receiver and cost one branch there.
type LatencySampler struct {
	mask   uint64 // sampling mask: seq&mask==0 => sampled
	every  int    // rounded SampleEvery, for reports
	series *Series
	slo    *SLOTracker
	slots  [slotCount]latencySlot
}

// NewLatencySampler builds a sampler observing roughly 1 in every 'every'
// events (rounded up to a power of two so the decision is a mask test)
// into the series' WallLat/StageLat instruments. slo may be nil.
func NewLatencySampler(every int, series *Series, slo *SLOTracker) *LatencySampler {
	if every < 1 {
		every = 1
	}
	pow := 1
	for pow < every {
		pow <<= 1
	}
	if series == nil {
		series = NewSeries("")
	}
	return &LatencySampler{mask: uint64(pow - 1), every: pow, series: series, slo: slo}
}

// SampleEvery returns the effective (power-of-two) sampling interval.
func (ls *LatencySampler) SampleEvery() int {
	if ls == nil {
		return 0
	}
	return ls.every
}

// Series returns the series the sampler publishes into.
func (ls *LatencySampler) Series() *Series {
	if ls == nil {
		return nil
	}
	return ls.series
}

// SLO returns the sampler's SLO tracker (nil when untracked).
func (ls *LatencySampler) SLO() *SLOTracker {
	if ls == nil {
		return nil
	}
	return ls.slo
}

// Sampled reports whether seq is in the sample. Pure function of seq.
func (ls *LatencySampler) Sampled(seq uint64) bool {
	return ls != nil && seq&ls.mask == 0
}

// slotIndex spreads sampled seqs (multiples of the sampling interval)
// across the table with a Fibonacci multiplicative hash.
func slotIndex(seq uint64) uint64 {
	return (seq * 0x9E3779B97F4A7C15) >> 54 % slotCount
}

// find returns the live slot for seq, or nil.
func (ls *LatencySampler) find(seq uint64) *latencySlot {
	h := slotIndex(seq)
	for i := uint64(0); i < probeLen; i++ {
		s := &ls.slots[(h+i)%slotCount]
		if s.key.Load() == seq+1 {
			return s
		}
	}
	return nil
}

// Begin opens a span for seq at the current instant. First-wins: if a span
// for seq is already live the call is a no-op, so every layer can call it
// unconditionally and the outermost claim anchors the wall measurement.
func (ls *LatencySampler) Begin(seq uint64) {
	if ls == nil || seq&ls.mask != 0 {
		return
	}
	h := slotIndex(seq)
	var free *latencySlot
	for i := uint64(0); i < probeLen; i++ {
		s := &ls.slots[(h+i)%slotCount]
		k := s.key.Load()
		if k == seq+1 {
			return // already live: first Begin wins
		}
		if k == 0 && free == nil {
			free = s
		}
	}
	if free == nil || !free.key.CompareAndSwap(0, seq+1) {
		ls.series.SpansDropped.Inc()
		return
	}
	now := nowNanos()
	free.held.Store(0)
	free.start.Store(now)
	free.last.Store(now)
	ls.series.SpansSampled.Inc()
}

// StageEnd attributes the time since the span's previous stamp to stage
// and advances the stamp.
func (ls *LatencySampler) StageEnd(seq uint64, stage Stage) {
	if ls == nil || seq&ls.mask != 0 {
		return
	}
	s := ls.find(seq)
	if s == nil {
		return
	}
	now := nowNanos()
	prev := s.last.Swap(now)
	ls.series.StageLat[stage].Observe(uint64(now-prev) / 1_000)
}

// StageInto is StageEnd that additionally mirrors the observation into
// another series' stage histogram — per-query attribution in the QuerySet,
// where one shared span's construct time is split across the queries the
// event dispatched to. The duration still lands in the sampler's own
// series, so the wall = Σ stages accounting identity is unaffected; the
// extra series receives a per-query copy of its segment.
func (ls *LatencySampler) StageInto(series *Series, seq uint64, stage Stage) {
	if ls == nil || seq&ls.mask != 0 {
		return
	}
	s := ls.find(seq)
	if s == nil {
		return
	}
	now := nowNanos()
	prev := s.last.Swap(now)
	d := uint64(now-prev) / 1_000
	ls.series.StageLat[stage].Observe(d)
	if series != nil && series != ls.series {
		series.StageLat[stage].Observe(d)
	}
}

// Hold marks seq's span as buffered: the event was admitted into a
// reorder buffer and will be processed later, so the outer layer's
// unconditional Finish must not close the span.
func (ls *LatencySampler) Hold(seq uint64) {
	if ls == nil || seq&ls.mask != 0 {
		return
	}
	if s := ls.find(seq); s != nil {
		s.held.Store(1)
	}
}

// Finish closes seq's span unless it is held: the residual tail since the
// last stamp goes to StageEmit, the end-to-end wall time to WallLat and
// the SLO tracker, and the slot is freed.
func (ls *LatencySampler) Finish(seq uint64) {
	if ls == nil || seq&ls.mask != 0 {
		return
	}
	s := ls.find(seq)
	if s == nil || s.held.Load() != 0 {
		return
	}
	ls.finish(s)
}

// FinishHeld closes seq's span regardless of the held bit — the buffering
// layer calls it when it releases and finishes processing the event.
func (ls *LatencySampler) FinishHeld(seq uint64) {
	if ls == nil || seq&ls.mask != 0 {
		return
	}
	if s := ls.find(seq); s != nil {
		ls.finish(s)
	}
}

func (ls *LatencySampler) finish(s *latencySlot) {
	now := nowNanos()
	prev := s.last.Swap(now)
	ls.series.StageLat[StageEmit].Observe(uint64(now-prev) / 1_000)
	wall := now - s.start.Load()
	ls.series.WallLat.Observe(uint64(wall) / 1_000)
	ls.slo.Observe(wall)
	s.key.Store(0)
}

// Abandon frees seq's span without observing: dropped, shed, and
// admission-rejected events leave the pipeline early and must not skew
// the wall histogram.
func (ls *LatencySampler) Abandon(seq uint64) {
	if ls == nil || seq&ls.mask != 0 {
		return
	}
	s := ls.find(seq)
	if s == nil {
		return
	}
	s.key.Store(0)
	ls.series.SpansAbandoned.Inc()
}

// Quantile returns the q-quantile (0..1) of the observations as the upper
// bound of the bucket containing that rank, clamped to the observed max —
// the same bucket-edge convention as internal/metrics.Histogram.Quantile.
func (v HistView) Quantile(q float64) uint64 {
	if v.Count == 0 {
		return 0
	}
	if q >= 1 {
		return v.Max
	}
	if q < 0 {
		q = 0
	}
	target := uint64(math.Ceil(q * float64(v.Count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := range v.Buckets {
		cum += v.Buckets[i]
		if cum >= target {
			// Bucket i holds values of bit length i: upper bound 2^i − 1.
			// At i=64 the shift wraps to 0 and the subtraction yields
			// MaxUint64 — exactly bucket 64's true upper bound.
			upper := uint64(1)<<uint(i) - 1
			if upper > v.Max {
				upper = v.Max
			}
			return upper
		}
	}
	return v.Max
}

// HistSummary is the JSON-ready digest of one histogram.
type HistSummary struct {
	Count  uint64  `json:"count"`
	MeanUs float64 `json:"meanUs"`
	P50Us  uint64  `json:"p50Us"`
	P95Us  uint64  `json:"p95Us"`
	P99Us  uint64  `json:"p99Us"`
	MaxUs  uint64  `json:"maxUs"`
	SumUs  uint64  `json:"sumUs"`
}

func summarize(v HistView) HistSummary {
	return HistSummary{
		Count:  v.Count,
		MeanUs: v.Mean(),
		P50Us:  v.Quantile(0.50),
		P95Us:  v.Quantile(0.95),
		P99Us:  v.Quantile(0.99),
		MaxUs:  v.Max,
		SumUs:  v.Sum,
	}
}

// LatencyReport is the /debug/latency and StateSnapshot payload: the
// sampler's configuration, span accounting, the end-to-end wall histogram,
// the per-stage decomposition, and the SLO window state.
type LatencyReport struct {
	// SampleEvery is the effective sampling interval (1 in N, power of two).
	SampleEvery int `json:"sampleEvery"`
	// SpansSampled/SpansAbandoned/SpansDropped account every opened span:
	// completed (the wall histogram's count), abandoned (dropped/shed
	// events), or dropped at open because the slot table was full.
	SpansSampled   uint64 `json:"spansSampled"`
	SpansAbandoned uint64 `json:"spansAbandoned"`
	SpansDropped   uint64 `json:"spansDropped"`
	// Wall is the end-to-end wall-clock latency of completed spans (µs).
	Wall HistSummary `json:"wall"`
	// Stages decomposes Wall by pipeline stage; only stages that observed
	// at least one duration appear.
	Stages map[string]HistSummary `json:"stages,omitempty"`
	// SLO is the burn-rate tracker's window state, when configured.
	SLO *SLOSnapshot `json:"slo,omitempty"`
}

// Report digests the sampler's current state. Nil-safe: a nil sampler
// returns nil, which callers serialize as absent.
func (ls *LatencySampler) Report() *LatencyReport {
	if ls == nil {
		return nil
	}
	r := &LatencyReport{
		SampleEvery:    ls.every,
		SpansSampled:   ls.series.SpansSampled.Load(),
		SpansAbandoned: ls.series.SpansAbandoned.Load(),
		SpansDropped:   ls.series.SpansDropped.Load(),
		Wall:           summarize(ls.series.WallLat.View()),
	}
	for st := Stage(0); st < NumStages; st++ {
		v := ls.series.StageLat[st].View()
		if v.Count == 0 {
			continue
		}
		if r.Stages == nil {
			r.Stages = make(map[string]HistSummary, NumStages)
		}
		r.Stages[st.String()] = summarize(v)
	}
	if ls.slo != nil {
		r.SLO = ls.slo.Snapshot()
	}
	return r
}
