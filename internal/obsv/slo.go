// SLO burn-rate tracking over the sampled wall-clock latency: every
// completed span is classified good (wall ≤ objective) or bad, counted
// into a ring of per-second buckets, and read back as good/bad ratios
// over multiple rolling windows — the multi-window burn-rate alerting
// shape (a short window catches fast burns, a long window slow ones).
//
// The tracker is single-allocation and lock-free: writers touch one
// bucket with atomic adds; an expired bucket is recycled by an epoch CAS
// whose winner clears the counts. A scrape racing a recycle can misread
// one second's worth of counts — tolerated, like every other instrument
// in this package.
package obsv

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// Default SLO windows: the classic fast/mid/slow burn triple.
var defaultSLOWindows = []time.Duration{time.Minute, 5 * time.Minute, 30 * time.Minute}

// SLOConfig configures a tracker.
type SLOConfig struct {
	// Objective is the per-event wall-latency objective: a sampled event
	// finishing within it is good.
	Objective time.Duration
	// Target is the fraction of events that must be good (e.g. 0.99).
	// Burn rate normalizes against the error budget 1 − Target: burn 1.0
	// consumes the budget exactly at the sustainable rate.
	Target float64
	// Windows are the rolling windows to report; nil selects 1m/5m/30m.
	Windows []time.Duration
}

// sloBucket is one second of good/bad counts. epoch is the absolute
// second the counts belong to; a writer landing in a bucket with a stale
// epoch recycles it (CAS winner clears).
type sloBucket struct {
	epoch atomic.Int64
	good  atomic.Uint64
	bad   atomic.Uint64
}

// SLOTracker classifies wall-latency observations against an objective
// and serves rolling good/bad windows.
type SLOTracker struct {
	objectiveNs int64
	target      float64
	windows     []time.Duration
	buckets     []sloBucket
	// now returns nanoseconds on the span clock; a variable so tests can
	// march time deterministically.
	now func() int64
}

// NewSLOTracker builds a tracker. Objective must be positive; Target is
// clamped into [0, 1).
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	if cfg.Objective <= 0 {
		return nil
	}
	if cfg.Target < 0 {
		cfg.Target = 0
	}
	if cfg.Target >= 1 {
		cfg.Target = 0.999
	}
	windows := cfg.Windows
	if len(windows) == 0 {
		windows = defaultSLOWindows
	}
	maxSec := int64(1)
	for _, w := range windows {
		if s := int64(w / time.Second); s > maxSec {
			maxSec = s
		}
	}
	return &SLOTracker{
		objectiveNs: int64(cfg.Objective),
		target:      cfg.Target,
		windows:     windows,
		// One spare bucket so the oldest in-window second is never the one
		// being recycled by the current second's writer.
		buckets: make([]sloBucket, maxSec+1),
		now:     func() int64 { return nowNanos() },
	}
}

// Objective returns the configured latency objective.
func (t *SLOTracker) Objective() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.objectiveNs)
}

// Observe classifies one completed span's wall time. Nil-safe.
func (t *SLOTracker) Observe(wallNs int64) {
	if t == nil {
		return
	}
	sec := t.now() / int64(time.Second)
	b := &t.buckets[sec%int64(len(t.buckets))]
	if e := b.epoch.Load(); e != sec {
		if b.epoch.CompareAndSwap(e, sec) {
			b.good.Store(0)
			b.bad.Store(0)
		}
	}
	if wallNs <= t.objectiveNs {
		b.good.Add(1)
	} else {
		b.bad.Add(1)
	}
}

// SLOWindow is one rolling window's state.
type SLOWindow struct {
	// Window is the window length, rendered ("1m0s" → formatted short).
	Window string `json:"window"`
	// Good/Bad count sampled events inside the window.
	Good uint64 `json:"good"`
	Bad  uint64 `json:"bad"`
	// GoodRatio is Good/(Good+Bad); 1 with no observations.
	GoodRatio float64 `json:"goodRatio"`
	// BurnRate is (1 − GoodRatio)/(1 − Target): the rate the error budget
	// is being consumed, 1.0 = exactly sustainable.
	BurnRate float64 `json:"burnRate"`
}

// SLOSnapshot is the JSON-ready tracker state.
type SLOSnapshot struct {
	ObjectiveMs float64     `json:"objectiveMs"`
	Target      float64     `json:"target"`
	Windows     []SLOWindow `json:"windows"`
}

// fmtWindow renders a window compactly ("1m", "5m", "30m", "90s").
func fmtWindow(d time.Duration) string {
	if d%time.Minute == 0 {
		return fmt.Sprintf("%dm", int64(d/time.Minute))
	}
	return fmt.Sprintf("%ds", int64(d/time.Second))
}

// Snapshot reads every configured window. Nil-safe.
func (t *SLOTracker) Snapshot() *SLOSnapshot {
	if t == nil {
		return nil
	}
	nowSec := t.now() / int64(time.Second)
	snap := &SLOSnapshot{
		ObjectiveMs: float64(t.objectiveNs) / 1e6,
		Target:      t.target,
	}
	for _, w := range t.windows {
		winSec := int64(w / time.Second)
		if winSec < 1 {
			winSec = 1
		}
		var good, bad uint64
		for i := range t.buckets {
			b := &t.buckets[i]
			e := b.epoch.Load()
			if e > nowSec-winSec && e <= nowSec {
				good += b.good.Load()
				bad += b.bad.Load()
			}
		}
		sw := SLOWindow{Window: fmtWindow(w), Good: good, Bad: bad, GoodRatio: 1}
		if total := good + bad; total > 0 {
			sw.GoodRatio = float64(good) / float64(total)
		}
		sw.BurnRate = (1 - sw.GoodRatio) / (1 - t.target)
		snap.Windows = append(snap.Windows, sw)
	}
	return snap
}

// WritePrometheus renders the tracker's windows as gauges under the given
// engine label, for Registry.RegisterPrometheus.
func (t *SLOTracker) WritePrometheus(w io.Writer, engine string) error {
	if t == nil {
		return nil
	}
	snap := t.Snapshot()
	if _, err := fmt.Fprintf(w, "# HELP oostream_slo_burn_rate Error-budget burn rate over a rolling window (1.0 = sustainable)\n# TYPE oostream_slo_burn_rate gauge\n"); err != nil {
		return err
	}
	for _, win := range snap.Windows {
		if _, err := fmt.Fprintf(w, "oostream_slo_burn_rate{engine=%q,window=%q} %g\n", engine, win.Window, win.BurnRate); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# HELP oostream_slo_good_ratio Fraction of sampled events meeting the latency objective\n# TYPE oostream_slo_good_ratio gauge\n"); err != nil {
		return err
	}
	for _, win := range snap.Windows {
		if _, err := fmt.Fprintf(w, "oostream_slo_good_ratio{engine=%q,window=%q} %g\n", engine, win.Window, win.GoodRatio); err != nil {
			return err
		}
	}
	return nil
}
