package core

import (
	"sort"

	"oostream/internal/event"
)

// negStore buffers negative events (those passing the negation's local
// predicates) sorted by (timestamp, sequence), supporting out-of-order
// insertion, exclusive-range gap queries, and prefix purging.
type negStore struct {
	items []event.Event
}

func (s *negStore) len() int { return len(s.items) }

// insert places e at its sorted position.
func (s *negStore) insert(e event.Event) {
	idx := sort.Search(len(s.items), func(i int) bool {
		return e.Before(s.items[i])
	})
	s.items = append(s.items, event.Event{})
	copy(s.items[idx+1:], s.items[idx:])
	s.items[idx] = e
}

// firstAfter returns the first index whose event has TS > lo.
func (s *negStore) firstAfter(lo event.Time) int {
	return sort.Search(len(s.items), func(i int) bool {
		return s.items[i].TS > lo
	})
}

// anyInGap reports whether any stored event with lo < TS < hi satisfies
// check.
func (s *negStore) anyInGap(lo, hi event.Time, check func(event.Event) bool) bool {
	for i := s.firstAfter(lo); i < len(s.items) && s.items[i].TS < hi; i++ {
		if check(s.items[i]) {
			return true
		}
	}
	return false
}

// purgeBefore drops every event with TS < horizon, returning the count.
func (s *negStore) purgeBefore(horizon event.Time) int {
	cut := sort.Search(len(s.items), func(i int) bool {
		return s.items[i].TS >= horizon
	})
	if cut == 0 {
		return 0
	}
	n := copy(s.items, s.items[cut:])
	for i := n; i < len(s.items); i++ {
		s.items[i] = event.Event{}
	}
	s.items = s.items[:n]
	return cut
}
