package core

import (
	"bufio"
	"container/heap"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"oostream/internal/adaptive"
	"oostream/internal/ais"
	"oostream/internal/event"
	"oostream/internal/plan"
)

// checkpointVersion guards the JSON payload shape.
const checkpointVersion = 1

// Checkpoint envelope: a fixed binary header protects the JSON payload
// against truncation and bit rot. Layout:
//
//	magic   [6]byte  "OOCKPT"
//	version byte     envelopeVersion
//	length  uint32le payload byte count
//	crc     uint32le CRC32 (IEEE) of the payload
//	payload []byte   JSON checkpointFile
//
// Version 1 checkpoints (bare JSON, written before the envelope existed)
// are still restorable: Restore sniffs the first byte.
var checkpointMagic = [6]byte{'O', 'O', 'C', 'K', 'P', 'T'}

const envelopeVersion = 2

// checkpointFile is the serialized engine state. Stack instances are
// stored as plain events; RIP pointers are rebuilt on restore by
// re-insertion (the RIP invariant is a pure function of stack contents).
// Keyed state flattens to the same shape — groups merge into one sorted
// list per position / negation, and restore re-derives each event's key —
// so keyed and unkeyed engines share a checkpoint format.
type checkpointFile struct {
	Version    int                 `json:"version"`
	PlanSource string              `json:"planSource"`
	K          event.Time          `json:"k"`
	LatePolicy int                 `json:"latePolicy"`
	NoTrigOpt  bool                `json:"noTriggerOpt"`
	NoKeyed    bool                `json:"noKeyed,omitempty"`
	PurgeEvery int                 `json:"purgeEvery"`
	Clock      event.Time          `json:"clock"`
	Started    bool                `json:"started"`
	Arrival    uint64              `json:"arrival"`
	Enumerated uint64              `json:"enumerated"`
	Since      int                 `json:"since"`
	Stacks     [][]event.Event     `json:"stacks"`
	NegStores  [][]event.Event     `json:"negStores"`
	Pending    []checkpointPending `json:"pending"`
	// Frontier and Adaptive carry the dynamic-K state: the monotone safe
	// clock and the controller (config, learned histogram, hysteresis
	// streaks), so a restored engine resumes with the learned bound instead
	// of re-learning from InitialK. Absent (zero/nil) for static-K engines
	// — and absent from pre-adaptive checkpoints, which therefore restore
	// unchanged.
	Frontier event.Time      `json:"frontier,omitempty"`
	Adaptive *adaptive.State `json:"adaptive,omitempty"`
}

type checkpointPending struct {
	Events  []event.Event `json:"events"`
	SealTS  event.Time    `json:"sealTS"`
	MadeSeq uint64        `json:"madeSeq"`
}

// flatStacks returns the engine's stack contents as one (TS, Seq)-sorted
// event list per position, merging key groups when the engine is keyed
// (map iteration order must not leak into the serialized form).
func (en *Engine) flatStacks() [][]event.Event {
	out := make([][]event.Event, en.plan.Len())
	appendStack := func(pos int, s *ais.Stack) {
		for i := 0; i < s.Len(); i++ {
			out[pos] = append(out[pos], s.At(i).Event)
		}
	}
	if en.Keyed() {
		en.kstacks.Range(func(_ event.Value, st *ais.Stacks) {
			for pos := 0; pos < st.Len(); pos++ {
				appendStack(pos, st.Stack(pos))
			}
		})
		for pos := range out {
			sortEvents(out[pos])
		}
		return out
	}
	for pos := 0; pos < en.stacks.Len(); pos++ {
		appendStack(pos, en.stacks.Stack(pos))
	}
	return out
}

// flatNegStores returns the buffered negatives as one sorted list per
// negation, merging key groups when keyed.
func (en *Engine) flatNegStores() [][]event.Event {
	out := make([][]event.Event, len(en.plan.Negatives))
	if en.Keyed() {
		for i, m := range en.knegs {
			for _, ns := range m {
				out[i] = append(out[i], ns.items...)
			}
			sortEvents(out[i])
		}
		return out
	}
	for i, ns := range en.negStores {
		out[i] = append([]event.Event(nil), ns.items...)
	}
	return out
}

func sortEvents(events []event.Event) {
	sort.Slice(events, func(i, j int) bool { return events[i].Before(events[j]) })
}

// Checkpoint serializes the engine's full state (stacks, negative stores,
// pending matches, clocks) so that a Restore'd engine continues the stream
// exactly where this one stopped. The engine can keep processing after a
// checkpoint; the snapshot is taken synchronously.
//
// Metrics counters are NOT checkpointed: a restored engine starts fresh
// counters (operational metrics describe a process, not the computation).
func (en *Engine) Checkpoint(w io.Writer) error {
	cf := checkpointFile{
		Version:    checkpointVersion,
		PlanSource: en.plan.Source,
		K:          en.opts.K,
		LatePolicy: int(en.opts.LatePolicy),
		NoTrigOpt:  en.opts.DisableTriggerOpt,
		NoKeyed:    en.opts.DisableKeying,
		PurgeEvery: en.opts.PurgeEvery,
		Clock:      en.clock,
		Started:    en.started,
		Arrival:    en.arrival,
		Enumerated: en.enumerated,
		Since:      en.since,
		Stacks:     en.flatStacks(),
		NegStores:  en.flatNegStores(),
	}
	if ad := en.opts.Adaptive; ad != nil {
		st := ad.Export()
		cf.Adaptive = &st
		cf.Frontier = en.frontier
	}
	for _, pm := range en.pending {
		cf.Pending = append(cf.Pending, checkpointPending{
			Events:  pm.events,
			SealTS:  pm.sealTS,
			MadeSeq: pm.madeSeq,
		})
	}
	payload, err := json.Marshal(cf)
	if err != nil {
		return err
	}
	var hdr [15]byte
	copy(hdr[:6], checkpointMagic[:])
	hdr[6] = envelopeVersion
	binary.LittleEndian.PutUint32(hdr[7:11], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[11:15], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// readEnvelope consumes a version-2 envelope and returns the validated
// payload. The reader must be positioned at the magic.
func readEnvelope(r io.Reader) ([]byte, error) {
	var hdr [15]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("checkpoint header truncated: %w", err)
	}
	if [6]byte(hdr[:6]) != checkpointMagic {
		return nil, fmt.Errorf("bad checkpoint magic %q", hdr[:6])
	}
	if hdr[6] != envelopeVersion {
		return nil, fmt.Errorf("checkpoint envelope version %d, want %d", hdr[6], envelopeVersion)
	}
	size := binary.LittleEndian.Uint32(hdr[7:11])
	want := binary.LittleEndian.Uint32(hdr[11:15])
	payload := make([]byte, size)
	if n, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("checkpoint truncated: want %d payload bytes, got %d", size, n)
	}
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("checkpoint corrupt: CRC32 %08x, want %08x", got, want)
	}
	return payload, nil
}

// restoreInsertPositive re-inserts a checkpointed stack event, routing it
// to its key group when the engine is keyed. An event without the key
// (possible only in checkpoints written by an unkeyed engine) is dropped:
// it can never satisfy the key-equality predicates, so no match is lost.
func (en *Engine) restoreInsertPositive(pos int, e event.Event) {
	if en.Keyed() {
		key, ok := plan.KeyOf(e, en.keyAttr)
		if !ok {
			en.met.IncPredError(errMissingKey)
			return
		}
		en.kstacks.Insert(key, pos, e)
	} else {
		en.stacks.Insert(pos, e)
	}
	en.liveStack++
}

// restoreInsertNegative re-inserts a checkpointed negative event.
func (en *Engine) restoreInsertNegative(negIdx int, e event.Event) {
	if en.Keyed() {
		key, ok := plan.KeyOf(e, en.keyAttr)
		if !ok {
			en.met.IncPredError(errMissingKey)
			return
		}
		en.insertKeyedNeg(negIdx, key, e)
		return
	}
	en.negStores[negIdx].insert(e)
	en.liveNeg++
}

// Restore rebuilds an engine from a checkpoint. The plan must be compiled
// from the same query text the checkpointed engine ran (verified against
// the recorded canonical source); options are restored from the checkpoint.
// A keyed engine restores from an unkeyed engine's checkpoint (and vice
// versa, modulo the recorded DisableKeying option): the format carries
// plain events and keys are recomputed on insertion.
//
// Truncated or corrupted checkpoints are rejected with a descriptive
// error: the envelope's length and CRC32 are validated before any state is
// deserialized, so a damaged snapshot can never restore garbage state.
func Restore(p *plan.Plan, r io.Reader) (*Engine, error) {
	br := bufio.NewReader(r)
	first, err := br.Peek(1)
	if err != nil {
		return nil, fmt.Errorf("read checkpoint: %w", err)
	}
	var cf checkpointFile
	if first[0] == '{' {
		// Legacy version-1 checkpoint: bare JSON, no envelope.
		if err := json.NewDecoder(br).Decode(&cf); err != nil {
			return nil, fmt.Errorf("decode checkpoint: %w", err)
		}
	} else {
		payload, err := readEnvelope(br)
		if err != nil {
			return nil, err
		}
		if err := json.Unmarshal(payload, &cf); err != nil {
			return nil, fmt.Errorf("decode checkpoint: %w", err)
		}
	}
	if cf.Version != checkpointVersion {
		return nil, fmt.Errorf("checkpoint version %d, want %d", cf.Version, checkpointVersion)
	}
	if cf.PlanSource != p.Source {
		return nil, fmt.Errorf("checkpoint is for query %q, not %q", cf.PlanSource, p.Source)
	}
	if len(cf.Stacks) != p.Len() || len(cf.NegStores) != len(p.Negatives) {
		return nil, fmt.Errorf("checkpoint shape mismatch: %d stacks / %d negstores", len(cf.Stacks), len(cf.NegStores))
	}
	opts := Options{
		K:                 cf.K,
		LatePolicy:        LatePolicy(cf.LatePolicy),
		DisableTriggerOpt: cf.NoTrigOpt,
		DisableKeying:     cf.NoKeyed,
		PurgeEvery:        cf.PurgeEvery,
	}
	if cf.Adaptive != nil {
		ctrl, err := adaptive.Restore(*cf.Adaptive)
		if err != nil {
			return nil, fmt.Errorf("restore adaptive controller: %w", err)
		}
		opts.Adaptive = ctrl
		opts.AdaptiveFeed = true
	}
	en, err := New(p, opts)
	if err != nil {
		return nil, err
	}
	if cf.Adaptive != nil {
		en.frontier = cf.Frontier
	}
	en.clock = cf.Clock
	en.started = cf.Started
	en.arrival = cf.Arrival
	en.enumerated = cf.Enumerated
	en.since = cf.Since
	for pos, events := range cf.Stacks {
		for _, e := range events {
			en.restoreInsertPositive(pos, e)
		}
	}
	for i, events := range cf.NegStores {
		for _, e := range events {
			en.restoreInsertNegative(i, e)
		}
	}
	for _, pm := range cf.Pending {
		key := event.Value{}
		if en.Keyed() && len(pm.Events) > 0 {
			// Every slot of a complete binding carries the partition key
			// (the equality chain spans all positions), so slot 0 is
			// representative.
			key, _ = plan.KeyOf(pm.Events[0], en.keyAttr)
		}
		en.pending = append(en.pending, pendingMatch{
			events:  pm.Events,
			key:     key,
			sealTS:  pm.SealTS,
			madeSeq: pm.MadeSeq,
		})
	}
	// Restore heap order on the pending queue.
	heap.Init(&en.pending)
	// Lineage is not checkpointed: restored pendings have nil prov, so if
	// provenance is enabled on the restored engine their matches emit
	// truncated records, and the state snapshot reports the truncation.
	en.restored = true
	en.met.SetLiveState(en.StateSize())
	if en.Keyed() {
		en.met.SetKeyGroups(en.kstacks.Groups())
	}
	return en, nil
}
