package core

import (
	"container/heap"
	"encoding/json"
	"fmt"
	"io"

	"oostream/internal/event"
	"oostream/internal/plan"
)

// checkpointVersion guards the on-disk format.
const checkpointVersion = 1

// checkpointFile is the serialized engine state. Stack instances are
// stored as plain events; RIP pointers are rebuilt on restore by
// re-insertion (the RIP invariant is a pure function of stack contents).
type checkpointFile struct {
	Version    int                 `json:"version"`
	PlanSource string              `json:"planSource"`
	K          event.Time          `json:"k"`
	LatePolicy int                 `json:"latePolicy"`
	NoTrigOpt  bool                `json:"noTriggerOpt"`
	PurgeEvery int                 `json:"purgeEvery"`
	Clock      event.Time          `json:"clock"`
	Started    bool                `json:"started"`
	Arrival    uint64              `json:"arrival"`
	Enumerated uint64              `json:"enumerated"`
	Since      int                 `json:"since"`
	Stacks     [][]event.Event     `json:"stacks"`
	NegStores  [][]event.Event     `json:"negStores"`
	Pending    []checkpointPending `json:"pending"`
}

type checkpointPending struct {
	Events  []event.Event `json:"events"`
	SealTS  event.Time    `json:"sealTS"`
	MadeSeq uint64        `json:"madeSeq"`
}

// Checkpoint serializes the engine's full state (stacks, negative stores,
// pending matches, clocks) so that a Restore'd engine continues the stream
// exactly where this one stopped. The engine can keep processing after a
// checkpoint; the snapshot is taken synchronously.
//
// Metrics counters are NOT checkpointed: a restored engine starts fresh
// counters (operational metrics describe a process, not the computation).
func (en *Engine) Checkpoint(w io.Writer) error {
	cf := checkpointFile{
		Version:    checkpointVersion,
		PlanSource: en.plan.Source,
		K:          en.opts.K,
		LatePolicy: int(en.opts.LatePolicy),
		NoTrigOpt:  en.opts.DisableTriggerOpt,
		PurgeEvery: en.opts.PurgeEvery,
		Clock:      en.clock,
		Started:    en.started,
		Arrival:    en.arrival,
		Enumerated: en.enumerated,
		Since:      en.since,
	}
	for pos := 0; pos < en.stacks.Len(); pos++ {
		s := en.stacks.Stack(pos)
		events := make([]event.Event, s.Len())
		for i := 0; i < s.Len(); i++ {
			events[i] = s.At(i).Event
		}
		cf.Stacks = append(cf.Stacks, events)
	}
	for _, ns := range en.negStores {
		events := make([]event.Event, ns.len())
		copy(events, ns.items)
		cf.NegStores = append(cf.NegStores, events)
	}
	for _, pm := range en.pending {
		cf.Pending = append(cf.Pending, checkpointPending{
			Events:  pm.events,
			SealTS:  pm.sealTS,
			MadeSeq: pm.madeSeq,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(cf)
}

// Restore rebuilds an engine from a checkpoint. The plan must be compiled
// from the same query text the checkpointed engine ran (verified against
// the recorded canonical source); options are restored from the checkpoint.
func Restore(p *plan.Plan, r io.Reader) (*Engine, error) {
	var cf checkpointFile
	if err := json.NewDecoder(r).Decode(&cf); err != nil {
		return nil, fmt.Errorf("decode checkpoint: %w", err)
	}
	if cf.Version != checkpointVersion {
		return nil, fmt.Errorf("checkpoint version %d, want %d", cf.Version, checkpointVersion)
	}
	if cf.PlanSource != p.Source {
		return nil, fmt.Errorf("checkpoint is for query %q, not %q", cf.PlanSource, p.Source)
	}
	if len(cf.Stacks) != p.Len() || len(cf.NegStores) != len(p.Negatives) {
		return nil, fmt.Errorf("checkpoint shape mismatch: %d stacks / %d negstores", len(cf.Stacks), len(cf.NegStores))
	}
	en, err := New(p, Options{
		K:                 cf.K,
		LatePolicy:        LatePolicy(cf.LatePolicy),
		DisableTriggerOpt: cf.NoTrigOpt,
		PurgeEvery:        cf.PurgeEvery,
	})
	if err != nil {
		return nil, err
	}
	en.clock = cf.Clock
	en.started = cf.Started
	en.arrival = cf.Arrival
	en.enumerated = cf.Enumerated
	en.since = cf.Since
	for pos, events := range cf.Stacks {
		for _, e := range events {
			en.stacks.Insert(pos, e)
		}
	}
	for i, events := range cf.NegStores {
		for _, e := range events {
			en.negStores[i].insert(e)
		}
	}
	for _, pm := range cf.Pending {
		en.pending = append(en.pending, pendingMatch{
			events:  pm.Events,
			sealTS:  pm.SealTS,
			madeSeq: pm.MadeSeq,
		})
	}
	// Restore heap order on the pending queue.
	heap.Init(&en.pending)
	en.met.SetLiveState(en.StateSize())
	return en, nil
}
